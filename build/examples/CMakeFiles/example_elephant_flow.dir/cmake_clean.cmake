file(REMOVE_RECURSE
  "CMakeFiles/example_elephant_flow.dir/elephant_flow.cpp.o"
  "CMakeFiles/example_elephant_flow.dir/elephant_flow.cpp.o.d"
  "example_elephant_flow"
  "example_elephant_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_elephant_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
