# Empty dependencies file for example_elephant_flow.
# This may be replaced when dependencies are built.
