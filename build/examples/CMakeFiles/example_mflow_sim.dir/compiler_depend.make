# Empty compiler generated dependencies file for example_mflow_sim.
# This may be replaced when dependencies are built.
