file(REMOVE_RECURSE
  "CMakeFiles/example_mflow_sim.dir/mflow_sim.cpp.o"
  "CMakeFiles/example_mflow_sim.dir/mflow_sim.cpp.o.d"
  "example_mflow_sim"
  "example_mflow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mflow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
