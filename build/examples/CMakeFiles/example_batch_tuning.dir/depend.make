# Empty dependencies file for example_batch_tuning.
# This may be replaced when dependencies are built.
