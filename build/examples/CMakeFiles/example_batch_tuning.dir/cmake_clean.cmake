file(REMOVE_RECURSE
  "CMakeFiles/example_batch_tuning.dir/batch_tuning.cpp.o"
  "CMakeFiles/example_batch_tuning.dir/batch_tuning.cpp.o.d"
  "example_batch_tuning"
  "example_batch_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_batch_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
