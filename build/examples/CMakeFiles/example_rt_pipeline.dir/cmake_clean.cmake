file(REMOVE_RECURSE
  "CMakeFiles/example_rt_pipeline.dir/rt_pipeline.cpp.o"
  "CMakeFiles/example_rt_pipeline.dir/rt_pipeline.cpp.o.d"
  "example_rt_pipeline"
  "example_rt_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rt_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
