# Empty dependencies file for example_rt_pipeline.
# This may be replaced when dependencies are built.
