# Empty dependencies file for example_webserving_demo.
# This may be replaced when dependencies are built.
