file(REMOVE_RECURSE
  "CMakeFiles/example_webserving_demo.dir/webserving_demo.cpp.o"
  "CMakeFiles/example_webserving_demo.dir/webserving_demo.cpp.o.d"
  "example_webserving_demo"
  "example_webserving_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_webserving_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
