# Empty dependencies file for test_tcp_rx.
# This may be replaced when dependencies are built.
