file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_rx.dir/test_tcp_rx.cpp.o"
  "CMakeFiles/test_tcp_rx.dir/test_tcp_rx.cpp.o.d"
  "test_tcp_rx"
  "test_tcp_rx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_rx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
