file(REMOVE_RECURSE
  "CMakeFiles/test_costs.dir/test_costs.cpp.o"
  "CMakeFiles/test_costs.dir/test_costs.cpp.o.d"
  "test_costs"
  "test_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
