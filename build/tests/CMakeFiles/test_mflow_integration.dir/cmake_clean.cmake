file(REMOVE_RECURSE
  "CMakeFiles/test_mflow_integration.dir/test_mflow_integration.cpp.o"
  "CMakeFiles/test_mflow_integration.dir/test_mflow_integration.cpp.o.d"
  "test_mflow_integration"
  "test_mflow_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mflow_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
