# Empty compiler generated dependencies file for test_mflow_integration.
# This may be replaced when dependencies are built.
