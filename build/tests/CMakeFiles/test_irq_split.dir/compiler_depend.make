# Empty compiler generated dependencies file for test_irq_split.
# This may be replaced when dependencies are built.
