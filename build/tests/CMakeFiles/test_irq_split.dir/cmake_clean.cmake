file(REMOVE_RECURSE
  "CMakeFiles/test_irq_split.dir/test_irq_split.cpp.o"
  "CMakeFiles/test_irq_split.dir/test_irq_split.cpp.o.d"
  "test_irq_split"
  "test_irq_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_irq_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
