# Empty dependencies file for test_rt_engine.
# This may be replaced when dependencies are built.
