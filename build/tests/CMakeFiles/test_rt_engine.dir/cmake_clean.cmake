file(REMOVE_RECURSE
  "CMakeFiles/test_rt_engine.dir/test_rt_engine.cpp.o"
  "CMakeFiles/test_rt_engine.dir/test_rt_engine.cpp.o.d"
  "test_rt_engine"
  "test_rt_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
