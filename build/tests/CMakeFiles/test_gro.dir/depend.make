# Empty dependencies file for test_gro.
# This may be replaced when dependencies are built.
