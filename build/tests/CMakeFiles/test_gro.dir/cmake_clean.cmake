file(REMOVE_RECURSE
  "CMakeFiles/test_gro.dir/test_gro.cpp.o"
  "CMakeFiles/test_gro.dir/test_gro.cpp.o.d"
  "test_gro"
  "test_gro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
