file(REMOVE_RECURSE
  "CMakeFiles/test_splitter.dir/test_splitter.cpp.o"
  "CMakeFiles/test_splitter.dir/test_splitter.cpp.o.d"
  "test_splitter"
  "test_splitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
