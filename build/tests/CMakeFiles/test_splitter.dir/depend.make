# Empty dependencies file for test_splitter.
# This may be replaced when dependencies are built.
