# Empty compiler generated dependencies file for test_ring_nic.
# This may be replaced when dependencies are built.
