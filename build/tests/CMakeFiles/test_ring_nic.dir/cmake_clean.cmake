file(REMOVE_RECURSE
  "CMakeFiles/test_ring_nic.dir/test_ring_nic.cpp.o"
  "CMakeFiles/test_ring_nic.dir/test_ring_nic.cpp.o.d"
  "test_ring_nic"
  "test_ring_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
