file(REMOVE_RECURSE
  "CMakeFiles/test_driver_napi.dir/test_driver_napi.cpp.o"
  "CMakeFiles/test_driver_napi.dir/test_driver_napi.cpp.o.d"
  "test_driver_napi"
  "test_driver_napi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driver_napi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
