# Empty dependencies file for test_driver_napi.
# This may be replaced when dependencies are built.
