file(REMOVE_RECURSE
  "CMakeFiles/test_reassembler.dir/test_reassembler.cpp.o"
  "CMakeFiles/test_reassembler.dir/test_reassembler.cpp.o.d"
  "test_reassembler"
  "test_reassembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reassembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
