# Empty dependencies file for test_reassembler.
# This may be replaced when dependencies are built.
