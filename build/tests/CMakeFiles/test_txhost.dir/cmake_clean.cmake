file(REMOVE_RECURSE
  "CMakeFiles/test_txhost.dir/test_txhost.cpp.o"
  "CMakeFiles/test_txhost.dir/test_txhost.cpp.o.d"
  "test_txhost"
  "test_txhost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_txhost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
