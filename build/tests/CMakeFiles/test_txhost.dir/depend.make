# Empty dependencies file for test_txhost.
# This may be replaced when dependencies are built.
