file(REMOVE_RECURSE
  "CMakeFiles/test_core_sim.dir/test_core_sim.cpp.o"
  "CMakeFiles/test_core_sim.dir/test_core_sim.cpp.o.d"
  "test_core_sim"
  "test_core_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
