# Empty dependencies file for test_core_sim.
# This may be replaced when dependencies are built.
