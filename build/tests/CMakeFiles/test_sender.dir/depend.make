# Empty dependencies file for test_sender.
# This may be replaced when dependencies are built.
