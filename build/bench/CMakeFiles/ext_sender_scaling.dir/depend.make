# Empty dependencies file for ext_sender_scaling.
# This may be replaced when dependencies are built.
