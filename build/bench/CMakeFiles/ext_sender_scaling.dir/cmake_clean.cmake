file(REMOVE_RECURSE
  "CMakeFiles/ext_sender_scaling.dir/ext_sender_scaling.cpp.o"
  "CMakeFiles/ext_sender_scaling.dir/ext_sender_scaling.cpp.o.d"
  "ext_sender_scaling"
  "ext_sender_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sender_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
