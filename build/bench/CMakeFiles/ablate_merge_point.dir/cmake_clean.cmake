file(REMOVE_RECURSE
  "CMakeFiles/ablate_merge_point.dir/ablate_merge_point.cpp.o"
  "CMakeFiles/ablate_merge_point.dir/ablate_merge_point.cpp.o.d"
  "ablate_merge_point"
  "ablate_merge_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_merge_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
