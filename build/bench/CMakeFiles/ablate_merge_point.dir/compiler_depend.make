# Empty compiler generated dependencies file for ablate_merge_point.
# This may be replaced when dependencies are built.
