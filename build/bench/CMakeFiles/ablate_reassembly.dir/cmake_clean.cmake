file(REMOVE_RECURSE
  "CMakeFiles/ablate_reassembly.dir/ablate_reassembly.cpp.o"
  "CMakeFiles/ablate_reassembly.dir/ablate_reassembly.cpp.o.d"
  "ablate_reassembly"
  "ablate_reassembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_reassembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
