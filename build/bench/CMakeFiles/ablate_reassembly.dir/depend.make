# Empty dependencies file for ablate_reassembly.
# This may be replaced when dependencies are built.
