
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_datacaching.cpp" "bench/CMakeFiles/fig13_datacaching.dir/fig13_datacaching.cpp.o" "gcc" "bench/CMakeFiles/fig13_datacaching.dir/fig13_datacaching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mflow_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_steering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
