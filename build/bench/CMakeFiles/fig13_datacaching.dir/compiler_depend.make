# Empty compiler generated dependencies file for fig13_datacaching.
# This may be replaced when dependencies are built.
