file(REMOVE_RECURSE
  "CMakeFiles/fig13_datacaching.dir/fig13_datacaching.cpp.o"
  "CMakeFiles/fig13_datacaching.dir/fig13_datacaching.cpp.o.d"
  "fig13_datacaching"
  "fig13_datacaching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_datacaching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
