file(REMOVE_RECURSE
  "CMakeFiles/ablate_cores.dir/ablate_cores.cpp.o"
  "CMakeFiles/ablate_cores.dir/ablate_cores.cpp.o.d"
  "ablate_cores"
  "ablate_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
