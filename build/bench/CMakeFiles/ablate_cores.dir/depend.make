# Empty dependencies file for ablate_cores.
# This may be replaced when dependencies are built.
