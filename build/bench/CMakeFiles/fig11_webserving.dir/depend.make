# Empty dependencies file for fig11_webserving.
# This may be replaced when dependencies are built.
