file(REMOVE_RECURSE
  "CMakeFiles/fig11_webserving.dir/fig11_webserving.cpp.o"
  "CMakeFiles/fig11_webserving.dir/fig11_webserving.cpp.o.d"
  "fig11_webserving"
  "fig11_webserving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_webserving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
