# Empty dependencies file for ablate_batch.
# This may be replaced when dependencies are built.
