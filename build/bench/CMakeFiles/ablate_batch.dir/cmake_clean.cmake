file(REMOVE_RECURSE
  "CMakeFiles/ablate_batch.dir/ablate_batch.cpp.o"
  "CMakeFiles/ablate_batch.dir/ablate_batch.cpp.o.d"
  "ablate_batch"
  "ablate_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
