# Empty compiler generated dependencies file for fig10_multiflow.
# This may be replaced when dependencies are built.
