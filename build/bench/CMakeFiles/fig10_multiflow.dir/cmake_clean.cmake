file(REMOVE_RECURSE
  "CMakeFiles/fig10_multiflow.dir/fig10_multiflow.cpp.o"
  "CMakeFiles/fig10_multiflow.dir/fig10_multiflow.cpp.o.d"
  "fig10_multiflow"
  "fig10_multiflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multiflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
