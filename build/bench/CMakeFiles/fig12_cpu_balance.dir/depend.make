# Empty dependencies file for fig12_cpu_balance.
# This may be replaced when dependencies are built.
