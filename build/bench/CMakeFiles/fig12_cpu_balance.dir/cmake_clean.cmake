file(REMOVE_RECURSE
  "CMakeFiles/fig12_cpu_balance.dir/fig12_cpu_balance.cpp.o"
  "CMakeFiles/fig12_cpu_balance.dir/fig12_cpu_balance.cpp.o.d"
  "fig12_cpu_balance"
  "fig12_cpu_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cpu_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
