# Empty compiler generated dependencies file for fig07_batch_size.
# This may be replaced when dependencies are built.
