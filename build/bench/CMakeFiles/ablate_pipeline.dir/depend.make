# Empty dependencies file for ablate_pipeline.
# This may be replaced when dependencies are built.
