file(REMOVE_RECURSE
  "CMakeFiles/ablate_pipeline.dir/ablate_pipeline.cpp.o"
  "CMakeFiles/ablate_pipeline.dir/ablate_pipeline.cpp.o.d"
  "ablate_pipeline"
  "ablate_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
