# Empty compiler generated dependencies file for micro_mflow.
# This may be replaced when dependencies are built.
