file(REMOVE_RECURSE
  "CMakeFiles/micro_mflow.dir/micro_mflow.cpp.o"
  "CMakeFiles/micro_mflow.dir/micro_mflow.cpp.o.d"
  "micro_mflow"
  "micro_mflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
