file(REMOVE_RECURSE
  "CMakeFiles/ablate_copy_scaling.dir/ablate_copy_scaling.cpp.o"
  "CMakeFiles/ablate_copy_scaling.dir/ablate_copy_scaling.cpp.o.d"
  "ablate_copy_scaling"
  "ablate_copy_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_copy_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
