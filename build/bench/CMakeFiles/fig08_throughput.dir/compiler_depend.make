# Empty compiler generated dependencies file for fig08_throughput.
# This may be replaced when dependencies are built.
