file(REMOVE_RECURSE
  "CMakeFiles/fig08_throughput.dir/fig08_throughput.cpp.o"
  "CMakeFiles/fig08_throughput.dir/fig08_throughput.cpp.o.d"
  "fig08_throughput"
  "fig08_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
