file(REMOVE_RECURSE
  "CMakeFiles/cost_model_report.dir/cost_model_report.cpp.o"
  "CMakeFiles/cost_model_report.dir/cost_model_report.cpp.o.d"
  "cost_model_report"
  "cost_model_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_model_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
