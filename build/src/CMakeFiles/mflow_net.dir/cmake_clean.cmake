file(REMOVE_RECURSE
  "CMakeFiles/mflow_net.dir/net/checksum.cpp.o"
  "CMakeFiles/mflow_net.dir/net/checksum.cpp.o.d"
  "CMakeFiles/mflow_net.dir/net/flow.cpp.o"
  "CMakeFiles/mflow_net.dir/net/flow.cpp.o.d"
  "CMakeFiles/mflow_net.dir/net/gro.cpp.o"
  "CMakeFiles/mflow_net.dir/net/gro.cpp.o.d"
  "CMakeFiles/mflow_net.dir/net/headers.cpp.o"
  "CMakeFiles/mflow_net.dir/net/headers.cpp.o.d"
  "CMakeFiles/mflow_net.dir/net/nic.cpp.o"
  "CMakeFiles/mflow_net.dir/net/nic.cpp.o.d"
  "CMakeFiles/mflow_net.dir/net/packet.cpp.o"
  "CMakeFiles/mflow_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/mflow_net.dir/net/ring.cpp.o"
  "CMakeFiles/mflow_net.dir/net/ring.cpp.o.d"
  "libmflow_net.a"
  "libmflow_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mflow_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
