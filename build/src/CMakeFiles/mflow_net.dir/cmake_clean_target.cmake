file(REMOVE_RECURSE
  "libmflow_net.a"
)
