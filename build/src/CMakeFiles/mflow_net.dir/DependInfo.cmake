
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cpp" "src/CMakeFiles/mflow_net.dir/net/checksum.cpp.o" "gcc" "src/CMakeFiles/mflow_net.dir/net/checksum.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "src/CMakeFiles/mflow_net.dir/net/flow.cpp.o" "gcc" "src/CMakeFiles/mflow_net.dir/net/flow.cpp.o.d"
  "/root/repo/src/net/gro.cpp" "src/CMakeFiles/mflow_net.dir/net/gro.cpp.o" "gcc" "src/CMakeFiles/mflow_net.dir/net/gro.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/CMakeFiles/mflow_net.dir/net/headers.cpp.o" "gcc" "src/CMakeFiles/mflow_net.dir/net/headers.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/CMakeFiles/mflow_net.dir/net/nic.cpp.o" "gcc" "src/CMakeFiles/mflow_net.dir/net/nic.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/mflow_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/mflow_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/ring.cpp" "src/CMakeFiles/mflow_net.dir/net/ring.cpp.o" "gcc" "src/CMakeFiles/mflow_net.dir/net/ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mflow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
