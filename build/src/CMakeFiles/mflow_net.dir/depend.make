# Empty dependencies file for mflow_net.
# This may be replaced when dependencies are built.
