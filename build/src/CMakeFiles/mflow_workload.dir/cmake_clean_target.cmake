file(REMOVE_RECURSE
  "libmflow_workload.a"
)
