file(REMOVE_RECURSE
  "CMakeFiles/mflow_workload.dir/workload/injector.cpp.o"
  "CMakeFiles/mflow_workload.dir/workload/injector.cpp.o.d"
  "CMakeFiles/mflow_workload.dir/workload/sender.cpp.o"
  "CMakeFiles/mflow_workload.dir/workload/sender.cpp.o.d"
  "CMakeFiles/mflow_workload.dir/workload/txhost.cpp.o"
  "CMakeFiles/mflow_workload.dir/workload/txhost.cpp.o.d"
  "libmflow_workload.a"
  "libmflow_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mflow_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
