# Empty dependencies file for mflow_workload.
# This may be replaced when dependencies are built.
