# Empty compiler generated dependencies file for mflow_util.
# This may be replaced when dependencies are built.
