file(REMOVE_RECURSE
  "libmflow_util.a"
)
