file(REMOVE_RECURSE
  "CMakeFiles/mflow_util.dir/util/cli.cpp.o"
  "CMakeFiles/mflow_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/mflow_util.dir/util/histogram.cpp.o"
  "CMakeFiles/mflow_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/mflow_util.dir/util/log.cpp.o"
  "CMakeFiles/mflow_util.dir/util/log.cpp.o.d"
  "CMakeFiles/mflow_util.dir/util/rng.cpp.o"
  "CMakeFiles/mflow_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/mflow_util.dir/util/stats.cpp.o"
  "CMakeFiles/mflow_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/mflow_util.dir/util/table.cpp.o"
  "CMakeFiles/mflow_util.dir/util/table.cpp.o.d"
  "libmflow_util.a"
  "libmflow_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mflow_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
