file(REMOVE_RECURSE
  "libmflow_rt.a"
)
