# Empty dependencies file for mflow_rt.
# This may be replaced when dependencies are built.
