
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/calibrate.cpp" "src/CMakeFiles/mflow_rt.dir/rt/calibrate.cpp.o" "gcc" "src/CMakeFiles/mflow_rt.dir/rt/calibrate.cpp.o.d"
  "/root/repo/src/rt/engine.cpp" "src/CMakeFiles/mflow_rt.dir/rt/engine.cpp.o" "gcc" "src/CMakeFiles/mflow_rt.dir/rt/engine.cpp.o.d"
  "/root/repo/src/rt/reassembler.cpp" "src/CMakeFiles/mflow_rt.dir/rt/reassembler.cpp.o" "gcc" "src/CMakeFiles/mflow_rt.dir/rt/reassembler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mflow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
