file(REMOVE_RECURSE
  "CMakeFiles/mflow_rt.dir/rt/calibrate.cpp.o"
  "CMakeFiles/mflow_rt.dir/rt/calibrate.cpp.o.d"
  "CMakeFiles/mflow_rt.dir/rt/engine.cpp.o"
  "CMakeFiles/mflow_rt.dir/rt/engine.cpp.o.d"
  "CMakeFiles/mflow_rt.dir/rt/reassembler.cpp.o"
  "CMakeFiles/mflow_rt.dir/rt/reassembler.cpp.o.d"
  "libmflow_rt.a"
  "libmflow_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mflow_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
