file(REMOVE_RECURSE
  "libmflow_overlay.a"
)
