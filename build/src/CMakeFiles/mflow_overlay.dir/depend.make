# Empty dependencies file for mflow_overlay.
# This may be replaced when dependencies are built.
