file(REMOVE_RECURSE
  "CMakeFiles/mflow_overlay.dir/overlay/container.cpp.o"
  "CMakeFiles/mflow_overlay.dir/overlay/container.cpp.o.d"
  "CMakeFiles/mflow_overlay.dir/overlay/topology.cpp.o"
  "CMakeFiles/mflow_overlay.dir/overlay/topology.cpp.o.d"
  "libmflow_overlay.a"
  "libmflow_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mflow_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
