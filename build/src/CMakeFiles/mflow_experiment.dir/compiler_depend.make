# Empty compiler generated dependencies file for mflow_experiment.
# This may be replaced when dependencies are built.
