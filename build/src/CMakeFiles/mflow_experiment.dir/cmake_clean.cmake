file(REMOVE_RECURSE
  "CMakeFiles/mflow_experiment.dir/experiment/datacaching.cpp.o"
  "CMakeFiles/mflow_experiment.dir/experiment/datacaching.cpp.o.d"
  "CMakeFiles/mflow_experiment.dir/experiment/report.cpp.o"
  "CMakeFiles/mflow_experiment.dir/experiment/report.cpp.o.d"
  "CMakeFiles/mflow_experiment.dir/experiment/scenario.cpp.o"
  "CMakeFiles/mflow_experiment.dir/experiment/scenario.cpp.o.d"
  "CMakeFiles/mflow_experiment.dir/experiment/webserving.cpp.o"
  "CMakeFiles/mflow_experiment.dir/experiment/webserving.cpp.o.d"
  "libmflow_experiment.a"
  "libmflow_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mflow_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
