file(REMOVE_RECURSE
  "libmflow_experiment.a"
)
