# Empty compiler generated dependencies file for mflow_steering.
# This may be replaced when dependencies are built.
