file(REMOVE_RECURSE
  "CMakeFiles/mflow_steering.dir/steering/modes.cpp.o"
  "CMakeFiles/mflow_steering.dir/steering/modes.cpp.o.d"
  "CMakeFiles/mflow_steering.dir/steering/policy.cpp.o"
  "CMakeFiles/mflow_steering.dir/steering/policy.cpp.o.d"
  "libmflow_steering.a"
  "libmflow_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mflow_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
