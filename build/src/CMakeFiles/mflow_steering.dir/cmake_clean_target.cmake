file(REMOVE_RECURSE
  "libmflow_steering.a"
)
