file(REMOVE_RECURSE
  "CMakeFiles/mflow_sim.dir/sim/core.cpp.o"
  "CMakeFiles/mflow_sim.dir/sim/core.cpp.o.d"
  "CMakeFiles/mflow_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/mflow_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/mflow_sim.dir/sim/interference.cpp.o"
  "CMakeFiles/mflow_sim.dir/sim/interference.cpp.o.d"
  "CMakeFiles/mflow_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/mflow_sim.dir/sim/simulator.cpp.o.d"
  "libmflow_sim.a"
  "libmflow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mflow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
