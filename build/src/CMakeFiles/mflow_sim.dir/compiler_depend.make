# Empty compiler generated dependencies file for mflow_sim.
# This may be replaced when dependencies are built.
