file(REMOVE_RECURSE
  "libmflow_sim.a"
)
