file(REMOVE_RECURSE
  "CMakeFiles/mflow_stack.dir/stack/bridge.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/bridge.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/costs.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/costs.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/driver.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/driver.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/gro_stage.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/gro_stage.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/ip_rx.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/ip_rx.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/machine.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/machine.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/socket.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/socket.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/stage.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/stage.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/tcp_rx.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/tcp_rx.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/tx_stages.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/tx_stages.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/udp_rx.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/udp_rx.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/veth.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/veth.cpp.o.d"
  "CMakeFiles/mflow_stack.dir/stack/vxlan.cpp.o"
  "CMakeFiles/mflow_stack.dir/stack/vxlan.cpp.o.d"
  "libmflow_stack.a"
  "libmflow_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mflow_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
