file(REMOVE_RECURSE
  "libmflow_stack.a"
)
