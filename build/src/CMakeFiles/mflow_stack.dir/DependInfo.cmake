
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stack/bridge.cpp" "src/CMakeFiles/mflow_stack.dir/stack/bridge.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/bridge.cpp.o.d"
  "/root/repo/src/stack/costs.cpp" "src/CMakeFiles/mflow_stack.dir/stack/costs.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/costs.cpp.o.d"
  "/root/repo/src/stack/driver.cpp" "src/CMakeFiles/mflow_stack.dir/stack/driver.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/driver.cpp.o.d"
  "/root/repo/src/stack/gro_stage.cpp" "src/CMakeFiles/mflow_stack.dir/stack/gro_stage.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/gro_stage.cpp.o.d"
  "/root/repo/src/stack/ip_rx.cpp" "src/CMakeFiles/mflow_stack.dir/stack/ip_rx.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/ip_rx.cpp.o.d"
  "/root/repo/src/stack/machine.cpp" "src/CMakeFiles/mflow_stack.dir/stack/machine.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/machine.cpp.o.d"
  "/root/repo/src/stack/socket.cpp" "src/CMakeFiles/mflow_stack.dir/stack/socket.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/socket.cpp.o.d"
  "/root/repo/src/stack/stage.cpp" "src/CMakeFiles/mflow_stack.dir/stack/stage.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/stage.cpp.o.d"
  "/root/repo/src/stack/tcp_rx.cpp" "src/CMakeFiles/mflow_stack.dir/stack/tcp_rx.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/tcp_rx.cpp.o.d"
  "/root/repo/src/stack/tx_stages.cpp" "src/CMakeFiles/mflow_stack.dir/stack/tx_stages.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/tx_stages.cpp.o.d"
  "/root/repo/src/stack/udp_rx.cpp" "src/CMakeFiles/mflow_stack.dir/stack/udp_rx.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/udp_rx.cpp.o.d"
  "/root/repo/src/stack/veth.cpp" "src/CMakeFiles/mflow_stack.dir/stack/veth.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/veth.cpp.o.d"
  "/root/repo/src/stack/vxlan.cpp" "src/CMakeFiles/mflow_stack.dir/stack/vxlan.cpp.o" "gcc" "src/CMakeFiles/mflow_stack.dir/stack/vxlan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
