# Empty compiler generated dependencies file for mflow_stack.
# This may be replaced when dependencies are built.
