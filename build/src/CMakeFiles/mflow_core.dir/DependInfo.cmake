
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/CMakeFiles/mflow_core.dir/core/adaptive.cpp.o" "gcc" "src/CMakeFiles/mflow_core.dir/core/adaptive.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/mflow_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/mflow_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/irq_split.cpp" "src/CMakeFiles/mflow_core.dir/core/irq_split.cpp.o" "gcc" "src/CMakeFiles/mflow_core.dir/core/irq_split.cpp.o.d"
  "/root/repo/src/core/mflow.cpp" "src/CMakeFiles/mflow_core.dir/core/mflow.cpp.o" "gcc" "src/CMakeFiles/mflow_core.dir/core/mflow.cpp.o.d"
  "/root/repo/src/core/reassembler.cpp" "src/CMakeFiles/mflow_core.dir/core/reassembler.cpp.o" "gcc" "src/CMakeFiles/mflow_core.dir/core/reassembler.cpp.o.d"
  "/root/repo/src/core/splitter.cpp" "src/CMakeFiles/mflow_core.dir/core/splitter.cpp.o" "gcc" "src/CMakeFiles/mflow_core.dir/core/splitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mflow_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_steering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mflow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
