# Empty dependencies file for mflow_core.
# This may be replaced when dependencies are built.
