file(REMOVE_RECURSE
  "CMakeFiles/mflow_core.dir/core/adaptive.cpp.o"
  "CMakeFiles/mflow_core.dir/core/adaptive.cpp.o.d"
  "CMakeFiles/mflow_core.dir/core/config.cpp.o"
  "CMakeFiles/mflow_core.dir/core/config.cpp.o.d"
  "CMakeFiles/mflow_core.dir/core/irq_split.cpp.o"
  "CMakeFiles/mflow_core.dir/core/irq_split.cpp.o.d"
  "CMakeFiles/mflow_core.dir/core/mflow.cpp.o"
  "CMakeFiles/mflow_core.dir/core/mflow.cpp.o.d"
  "CMakeFiles/mflow_core.dir/core/reassembler.cpp.o"
  "CMakeFiles/mflow_core.dir/core/reassembler.cpp.o.d"
  "CMakeFiles/mflow_core.dir/core/splitter.cpp.o"
  "CMakeFiles/mflow_core.dir/core/splitter.cpp.o.d"
  "libmflow_core.a"
  "libmflow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mflow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
