file(REMOVE_RECURSE
  "libmflow_core.a"
)
