// Scenario: the MFLOW split/process/merge structure on REAL threads — the
// rt engine processes packets with calibrated busy-work, splitting
// micro-flow batches round-robin over worker threads through lock-free SPSC
// rings and merging them back in order with the batch-based reassembler.
//
// On a multi-core host the 2- and 4-worker rows show wall-clock speedup; on
// a single-CPU machine they demonstrate correctness under time-slicing.
//
//   $ ./example_rt_pipeline [--packets=100000] [--cost-ns=300]
#include <iostream>

#include "rt/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mflow;
  util::Cli cli(argc, argv);
  const auto packets =
      static_cast<std::uint64_t>(cli.get_int("packets", 100000));
  const auto cost =
      static_cast<std::uint32_t>(cli.get_int("cost-ns", 300));

  std::cout << "Real-thread MFLOW pipeline: " << packets << " packets, "
            << cost << "ns of work each, batch size 256.\n"
            << "(hardware threads available: "
            << std::thread::hardware_concurrency() << ")\n\n";

  util::Table table({"workers", "packets/s", "batches merged", "in order",
                     "wall (ms)"});
  double base_rate = 0;
  for (std::size_t workers : {1u, 2u, 4u}) {
    rt::EngineConfig cfg;
    cfg.workers = workers;
    cfg.batch_size = 256;
    cfg.cost_ns_per_packet = cost;
    const auto res = rt::Engine(cfg).run(packets);
    if (workers == 1) base_rate = res.packets_per_second();
    table.add({static_cast<int>(workers),
               util::Table::Cell(res.packets_per_second(), 0),
               static_cast<unsigned long long>(res.batches_merged),
               res.in_order ? "yes" : "NO (bug!)",
               util::Table::Cell(res.wall_seconds * 1000.0, 1)});
  }
  table.print(std::cout, "Split/process/merge on real threads");
  if (base_rate > 0)
    std::cout << "\nEvery row must say 'in order: yes' — the batch-based "
                 "reassembler preserves the\noriginal sequence no matter "
                 "how the OS schedules the workers.\n";
  return 0;
}
