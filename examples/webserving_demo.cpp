// Scenario: a containerized web stack (nginx + database + cache tiers, 200
// concurrent users) on a Docker overlay network — the CloudSuite Web
// Serving setup of the paper's §V-B — with and without MFLOW.
//
//   $ ./example_webserving_demo [--users=200]
#include <iostream>

#include "experiment/webserving.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mflow;
  util::Cli cli(argc, argv);

  exp::WebservingConfig cfg;
  cfg.users = static_cast<int>(cli.get_int("users", 200));

  std::cout << "Web serving with " << cfg.users
            << " users: client requests + database/cache responses all "
               "cross the\nweb host's overlay receive path. Backend "
               "connections are elephants; MFLOW splits them.\n\n";

  util::Table table({"mode", "success ops/s", "success rate", "avg response",
                     "backend traffic"});
  for (exp::Mode mode : {exp::Mode::kVanilla, exp::Mode::kMflow}) {
    cfg.mode = mode;
    const auto res = exp::run_webserving(cfg);
    table.add({res.mode, util::Table::Cell(res.success_per_sec, 0),
               util::fmt_pct(res.success_fraction),
               util::fmt_us(res.avg_response_us * 1000.0),
               util::fmt_gbps(res.backend_goodput_gbps)});

    util::Table ops({"operation", "ok ops/s", "avg response (us)",
                     "avg delay (us)"});
    for (const auto& op : res.per_op)
      ops.add({op.name, util::Table::Cell(op.success_per_sec, 0),
               util::Table::Cell(op.response_us.mean(), 0),
               util::Table::Cell(op.delay_us.mean(), 0)});
    ops.print(std::cout, res.mode + ": per-operation breakdown");
    std::cout << "\n";
  }
  table.print(std::cout, "Summary");
  return 0;
}
