// Quickstart: run one elephant TCP flow through a Docker-style VXLAN overlay
// receive path, first vanilla, then with MFLOW packet-level parallelism, and
// print the difference.
//
//   $ ./example_quickstart
//
// See README.md for a walk-through of what happens under the hood.
#include <iostream>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"

int main() {
  using namespace mflow;

  // One elephant TCP flow, 64KB messages fragmented into MSS segments.
  exp::ScenarioBuilder scenario;
  scenario.tcp(1).message_size(65536);

  std::cout << "Simulating a single elephant TCP flow into a container\n"
               "behind a VXLAN overlay network...\n\n";

  const auto vanilla =
      exp::run_scenario(scenario.mode(exp::Mode::kVanilla).build());
  std::cout << "  " << exp::throughput_row(vanilla) << "\n";

  // Paper defaults: IRQ splitting, batch 256, two splitting cores, merge
  // before TCP.
  const auto mflow =
      exp::run_scenario(scenario.mode(exp::Mode::kMflow).build());
  std::cout << "  " << exp::throughput_row(mflow) << "\n\n";

  std::cout << "MFLOW speedup: " << mflow.goodput_gbps / vanilla.goodput_gbps
            << "x  (paper: ~1.81x)\n\n";
  exp::print_core_breakdown(std::cout, "MFLOW per-core CPU utilization",
                            mflow);
  return 0;
}
