// Scenario: a live-HD-streaming style elephant UDP flow into a container
// (one of the HPC/cloud workloads the paper's introduction motivates).
// Compares every packet-steering approach on the same flow and shows where
// each one's bottleneck core sits.
//
//   $ ./example_elephant_flow [--msg=65536] [--measure-ms=30]
#include <iostream>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mflow;
  util::Cli cli(argc, argv);

  exp::ScenarioConfig cfg;
  cfg.protocol = net::Ipv4Header::kProtoUdp;
  cfg.message_size =
      static_cast<std::uint32_t>(cli.get_int("msg", 65536));
  cfg.measure = sim::ms(cli.get_double("measure-ms", 30));

  std::cout << "One elephant UDP flow (" << cfg.message_size
            << "B messages, 3 sender processes) into a VXLAN overlay.\n\n";

  util::Table table({"mode", "goodput", "p99 latency", "busiest core",
                     "its utilization"});
  for (exp::Mode mode :
       {exp::Mode::kNative, exp::Mode::kVanilla, exp::Mode::kRps,
        exp::Mode::kFalconDev, exp::Mode::kFalconFun, exp::Mode::kMflow}) {
    cfg.mode = mode;
    const auto res = exp::run_scenario(cfg);
    int busiest = 0;
    double util = 0;
    for (const auto& c : res.cores)
      if (c.total > util) {
        util = c.total;
        busiest = c.core_id;
      }
    table.add({res.mode, util::fmt_gbps(res.goodput_gbps),
               util::fmt_us(static_cast<double>(res.latency.p99())),
               std::string("core ") + std::to_string(busiest),
               util::fmt_pct(util)});

    if (mode == exp::Mode::kVanilla || mode == exp::Mode::kMflow) {
      exp::print_core_breakdown(std::cout,
                                res.mode + ": per-core CPU breakdown", res,
                                6);
      std::cout << "\n";
    }
  }
  table.print(std::cout, "Elephant flow: all steering approaches");
  std::cout << "\nMFLOW splits the flow into micro-flow batches processed "
               "in parallel on cores 2 and 3,\nthen reassembles them in "
               "order inside recvmsg — no other approach can spread a "
               "single flow.\n";
  return 0;
}
