// General-purpose scenario driver: run any mode/protocol/size/flow-count
// combination from the command line and get throughput, latency, CPU
// breakdown and MFLOW statistics. The "product" entry point for exploring
// the simulator without writing code.
//
//   $ ./example_mflow_sim --mode=mflow --proto=tcp --msg=65536
//   $ ./example_mflow_sim --mode=vanilla --proto=udp --clients=3 --cpu
//   $ ./example_mflow_sim --mode=mflow --batch=64 --cores=2,3,4 --split=vxlan
#include <iostream>
#include <sstream>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"

using namespace mflow;

namespace {

exp::Mode parse_mode(const std::string& s) {
  if (s == "native") return exp::Mode::kNative;
  if (s == "vanilla") return exp::Mode::kVanilla;
  if (s == "rps") return exp::Mode::kRps;
  if (s == "falcon-dev") return exp::Mode::kFalconDev;
  if (s == "falcon-fun" || s == "falcon") return exp::Mode::kFalconFun;
  if (s == "mflow") return exp::Mode::kMflow;
  throw std::invalid_argument("unknown --mode: " + s);
}

std::vector<int> parse_cores(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout <<
        "usage: example_mflow_sim [options]\n"
        "  --mode=native|vanilla|rps|falcon-dev|falcon-fun|mflow\n"
        "  --proto=tcp|udp          --msg=BYTES        --flows=N\n"
        "  --clients=N (udp)        --measure-ms=N     --seed=N\n"
        "  --batch=N                --cores=2,3[,...]  --split=irq|vxlan\n"
        "  --adaptive               --readers=N        --cpu (breakdown)\n";
    return 0;
  }

  exp::ScenarioConfig cfg;
  cfg.mode = parse_mode(cli.get("mode", "mflow"));
  cfg.protocol = cli.get("proto", "tcp") == "tcp"
                     ? net::Ipv4Header::kProtoTcp
                     : net::Ipv4Header::kProtoUdp;
  cfg.message_size = static_cast<std::uint32_t>(cli.get_int("msg", 65536));
  cfg.num_flows = static_cast<int>(cli.get_int("flows", 1));
  cfg.udp_clients = static_cast<int>(cli.get_int("clients", 3));
  cfg.measure = sim::ms(cli.get_double("measure-ms", 30));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.adaptive_batch = cli.get_bool("adaptive", false);
  for (int r = 1; r < cli.get_int("readers", 1); ++r)
    cfg.extra_reader_cores.push_back(5 + r);

  if (cfg.mode == exp::Mode::kMflow &&
      (cli.has("batch") || cli.has("cores") || cli.has("split"))) {
    const bool tcp = cfg.protocol == net::Ipv4Header::kProtoTcp;
    core::MflowConfig mcfg = tcp ? core::tcp_full_path_config()
                                 : core::udp_device_scaling_config();
    mcfg.batch_size =
        static_cast<std::uint32_t>(cli.get_int("batch", 256));
    if (cli.has("cores")) {
      mcfg.splitting_cores = parse_cores(cli.get("cores", "2,3"));
      mcfg.pipeline_pairs.clear();
    }
    if (cli.get("split", "") == "irq")
      mcfg.split_point = core::SplitPoint::kIrq;
    else if (cli.get("split", "") == "vxlan")
      mcfg.split_point = core::SplitPoint::kBeforeStage;
    cfg.mflow = mcfg;
  }

  for (const auto& key : cli.unused())
    std::cerr << "warning: unused flag --" << key << "\n";

  const auto res = exp::run_scenario(cfg);
  std::cout << exp::throughput_row(res) << "\n";
  if (res.ooo_arrivals || res.batches_merged)
    std::cout << "mflow: batches merged " << res.batches_merged
              << ", merge-point ooo " << res.ooo_arrivals
              << (res.final_batch ? ", final batch " +
                                        std::to_string(res.final_batch)
                                  : "")
              << "\n";
  if (res.nic_drops) std::cout << "nic drops: " << res.nic_drops << "\n";
  if (cli.get_bool("cpu", false))
    exp::print_core_breakdown(std::cout, "per-core CPU", res);
  return 0;
}
