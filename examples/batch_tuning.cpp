// Scenario: tuning MFLOW for a deployment. Sweeps the three parameters the
// paper identifies (§III-A "Parameters for packet-level parallelism"):
// batch size, splitting-core count, and split point — and prints the
// throughput / reordering / latency trade-off so an operator can pick a
// configuration. Demonstrates building custom MflowConfig objects against
// the public API.
//
//   $ ./example_batch_tuning [--proto=tcp|udp]
#include <iostream>

#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mflow;
  util::Cli cli(argc, argv);
  const bool tcp = cli.get("proto", "tcp") == "tcp";

  exp::ScenarioConfig base;
  base.mode = exp::Mode::kMflow;
  base.protocol =
      tcp ? net::Ipv4Header::kProtoTcp : net::Ipv4Header::kProtoUdp;
  base.message_size = 65536;
  base.measure = sim::ms(15);

  util::Table table({"split point", "cores", "batch", "goodput",
                     "ooo arrivals", "p99 (us)"});
  for (core::SplitPoint split :
       {core::SplitPoint::kBeforeStage, core::SplitPoint::kIrq}) {
    for (int cores : {2, 4}) {
      for (std::uint32_t batch : {32u, 256u}) {
        core::MflowConfig mcfg;
        mcfg.split_point = split;
        mcfg.split_before = stack::StageId::kVxlan;
        mcfg.tcp_in_reader = tcp;
        mcfg.batch_size = batch;
        mcfg.splitting_cores.clear();
        for (int c = 0; c < cores; ++c)
          mcfg.splitting_cores.push_back(2 + c);
        auto cfg = base;
        cfg.mflow = mcfg;
        const auto res = exp::run_scenario(cfg);
        table.add({split == core::SplitPoint::kIrq ? "IRQ (full path)"
                                                   : "before VXLAN",
                   cores, static_cast<int>(batch),
                   util::fmt_gbps(res.goodput_gbps),
                   static_cast<unsigned long long>(res.ooo_arrivals),
                   util::Table::Cell(res.p99_latency_us(), 1)});
      }
    }
  }
  table.print(std::cout,
              std::string("MFLOW parameter sweep (") +
                  (tcp ? "TCP" : "UDP") + " 64KB elephant flow)");
  std::cout << "\nRules of thumb (matching the paper): batch>=256 makes "
               "order preservation free;\ntwo splitting cores already beat "
               "the native host network; IRQ splitting is the\nonly way to "
               "scale skb allocation itself.\n";
  return 0;
}
