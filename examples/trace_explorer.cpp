// Trace explorer: run one traced MFLOW scenario, write the event stream as
// Chrome trace-event JSON (open trace.json in https://ui.perfetto.dev or
// chrome://tracing — virtual cores are tracks, stage service times are
// spans, each sampled packet is stitched across cores with flow arrows) and
// print the per-phase latency attribution table.
//
//   ./example_trace_explorer [--mode=mflow|vanilla|rps|native]
//                            [--measure-ms=10] [--sample=4]
//                            [--out=trace.json] [--csv=trace.csv]
#include <fstream>
#include <iostream>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  if (!trace::compiled_in()) {
    std::cerr << "tracing is compiled out (-DMFLOW_TRACE=OFF); rebuild with "
                 "-DMFLOW_TRACE=ON\n";
    return 1;
  }

  util::Cli cli(argc, argv);
  const std::string mode_str = cli.get("mode", "mflow");
  const std::string out_path = cli.get("out", "trace.json");
  const std::string csv_path = cli.get("csv", "");

  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  if (mode_str == "vanilla") cfg.mode = exp::Mode::kVanilla;
  if (mode_str == "rps") cfg.mode = exp::Mode::kRps;
  if (mode_str == "native") cfg.mode = exp::Mode::kNative;
  cfg.warmup = sim::ms(3);
  cfg.measure = sim::ms(cli.get_double("measure-ms", 10));
  cfg.trace.enabled = true;
  cfg.trace.sample_period =
      static_cast<std::uint64_t>(cli.get_int("sample", 4));

  std::cout << "running " << mode_str << " scenario with tracing (1/"
            << cfg.trace.sample_period << " packets sampled)...\n";
  const auto res = exp::run_scenario(cfg);
  if (!res.tracer) {
    std::cerr << "scenario produced no tracer\n";
    return 1;
  }

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  trace::export_chrome_json(*res.tracer, json);
  std::cout << "wrote " << out_path << " (" << res.tracer->recorded()
            << " events recorded";
  if (res.tracer->overwritten() > 0)
    std::cout << ", " << res.tracer->overwritten()
              << " oldest overwritten — raise ring_capacity or sample "
                 "more sparsely to keep them";
  std::cout << ")\n";

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    trace::export_csv(*res.tracer, csv);
    std::cout << "wrote " << csv_path << "\n";
  }

  std::cout << "\n" << exp::throughput_row(res) << "\n\n";
  exp::print_phase_breakdown(
      std::cout, "Per-packet latency by phase (" + res.mode + ")", res);
  std::cout << "\n";
  exp::print_counters(std::cout, "Trace registry", res);
  std::cout << "\nopen " << out_path
            << " in https://ui.perfetto.dev to explore per-core timelines "
               "and packet flow arrows.\n";
  return 0;
}
