// Ablation: the elastic autoscaler tier (src/control/autoscaler) against
// static full-capacity provisioning, over long-horizon load curves.
//
// Three DES workloads (experiment/workloads.hpp), each run twice over
// identical traffic — autoscaled (cold start at 1 worker, capacity follows
// the measured aggregate load) vs static (all splitting lanes active for
// the whole run):
//
//   diurnal   : one elephant sweeping a raised-cosine between mouse rates
//               and peak demand, over a crowd of steady mice
//   flash     : all senders idle, surging together mid-measurement and
//               falling back (the scale-up reaction path)
//   elephants : a mouse crowd with one saturating elephant rotating
//               round-robin (capacity must follow the split flow around)
//
// The headline metrics per workload pair:
//
//   <wl>/slo_attainment   = min(p99_static / p99_elastic,
//                               success_elastic / success_static), each
//                           capped at 1 — how much of the static run's SLO
//                           the autoscaled run keeps (target >= 0.95)
//   <wl>/core_seconds_frac = elastic core-seconds / static core-seconds
//                           over the measurement window (target <= 0.7)
//
// i.e. the elastic claim: ~full SLO at a fraction of the provisioned
// cores. Both are deterministic in the DES and guarded tightly by CI
// (bench/baselines/elastic-des/, 2% tolerance); the rt live-capacity case
// is wall-clock and guarded loosely (bench/baselines/, 50%).
#include <algorithm>
#include <iostream>
#include <thread>

#include "bench/harness.hpp"
#include "experiment/scenario.hpp"
#include "experiment/workloads.hpp"
#include "rt/engine.hpp"
#include "util/cli.hpp"

using namespace mflow;

namespace {

struct Setup {
  /// Steady mouse crowd behind the frontline senders. 20 mice x one 64KB
  /// message per 8ms ~= 112k segs/s: just under one worker's assumed
  /// capacity, so the crowd alone keeps exactly one lane busy and the
  /// elephants drive all capacity changes. The elephants workload swaps
  /// in a wider, slower crowd (300 senders) at the same aggregate rate.
  int mice = 20;
  sim::Time mouse_pace = sim::ms(8);
  sim::Time warmup = sim::ms(4);
  sim::Time measure = sim::ms(24);
  std::uint64_t seed = 42;
};

core::MflowConfig mflow_config() {
  core::MflowConfig mcfg = core::udp_device_scaling_config();
  mcfg.tcp_in_reader = true;
  mcfg.splitting_cores = {2, 3, 4, 5};
  return mcfg;
}

/// Shared base: TCP into the 8-core receiver, 4 splitting lanes, control
/// plane on a 4ms monitor window (windowed TCP is bursty at ~1ms).
exp::ScenarioBuilder base_builder(const Setup& s, int senders) {
  return exp::ScenarioBuilder(exp::Mode::kMflow)
      .tcp(senders)
      .message_size(65536)
      .layout(8, 1, 1, 7)
      .windows(s.warmup, s.measure)
      .seed(s.seed)
      .mflow(mflow_config())
      .control([](auto& c) {
        c.interval = sim::us(100);
        c.params.monitor.window = sim::ms(4);
        c.params.monitor.max_samples = 64;
        c.params.classifier.promote_pps = 200'000.0;
        c.params.classifier.demote_pps = 100'000.0;
        c.params.classifier.dwell = sim::us(300);
      });
}

void add_elastic(exp::ScenarioBuilder& b) {
  b.elastic([](auto& e) {
    e.interval = sim::us(200);
    e.params.per_worker_pps = 150'000.0;
    e.params.headroom = 1.25;
    e.params.cooldown = sim::us(400);
    e.params.down_dwell = sim::ms(1);
  });
}

// --- workloads ---------------------------------------------------------------

/// Flow 0 sweeps one raised-cosine diurnal cycle (trough at mouse rates,
/// peak around 375k pps of demand — 4 workers with the crowd underneath)
/// over the middle 16ms of the window, idling at the trough on both
/// sides: capacity must ride the whole hill up AND back down with real
/// trough time at each end. Flows 1..mice are steady mice.
exp::ScenarioConfig diurnal_config(const Setup& s, bool elastic) {
  auto b = base_builder(s, 1 + s.mice);
  std::vector<exp::ScenarioConfig::RateChange> schedule;
  schedule.push_back({0, 1, sim::ms(4)});  // trough until the cycle starts
  exp::append_diurnal(schedule, /*senders=*/1, /*start=*/sim::ms(6),
                      /*period=*/sim::ms(16), /*steps=*/16,
                      /*trough_pace=*/sim::ms(4), /*peak_pace=*/sim::us(120));
  for (int i = 1; i <= s.mice; ++i) schedule.push_back({i, 1, s.mouse_pace});
  b.tweak([&](exp::ScenarioConfig& c) {
    c.rate_changes = std::move(schedule);
  });
  if (elastic) add_elastic(b);
  return b.build();
}

/// All four frontline senders idle until the crowd hits at 10ms and drains
/// at 18ms; the mouse crowd is steady throughout.
exp::ScenarioConfig flash_config(const Setup& s, bool elastic) {
  constexpr int kSurge = 4;
  auto b = base_builder(s, kSurge + s.mice);
  std::vector<exp::ScenarioConfig::RateChange> schedule;
  exp::append_flash_crowd(schedule, kSurge, /*start=*/1, /*at=*/sim::ms(10),
                          /*duration=*/sim::ms(8), /*idle_pace=*/sim::ms(4),
                          /*crowd_pace=*/sim::us(400));
  for (int i = kSurge; i < kSurge + s.mice; ++i)
    schedule.push_back({i, 1, s.mouse_pace});
  b.tweak([&](exp::ScenarioConfig& c) {
    c.rate_changes = std::move(schedule);
  });
  if (elastic) add_elastic(b);
  return b.build();
}

/// An elephant rotating round-robin over four senders every 6ms, above a
/// WIDE mouse crowd (300 slow senders at the same aggregate rate as the
/// regular crowd): the split flow — and the capacity serving it — has to
/// follow the rotation while the flow table churns through hundreds of
/// live mice.
exp::ScenarioConfig elephants_config(const Setup& s, bool elastic) {
  constexpr int kRotating = 4;
  constexpr int kCrowd = 300;
  auto b = base_builder(s, kRotating + kCrowd);
  std::vector<exp::ScenarioConfig::RateChange> schedule;
  exp::append_rotating_elephants(schedule, kRotating, /*start=*/1,
                                 /*end=*/s.warmup + s.measure,
                                 /*rotation=*/sim::ms(6),
                                 /*mouse_pace=*/sim::ms(4),
                                 /*elephant_pace=*/sim::us(100));
  for (int i = kRotating; i < kRotating + kCrowd; ++i)
    schedule.push_back({i, 1, sim::ms(120)});
  b.tweak([&](exp::ScenarioConfig& c) {
    c.rate_changes = std::move(schedule);
  });
  if (elastic) add_elastic(b);
  return b.build();
}

// --- metrics -----------------------------------------------------------------

double success_rate(const exp::ScenarioResult& r) {
  return r.offered_gbps > 0 ? r.goodput_gbps / r.offered_gbps : 0.0;
}

/// min(p99 ratio, success ratio), each capped at 1: the fraction of the
/// static run's SLO the autoscaled run attains.
double slo_attainment(const exp::ScenarioResult& elastic,
                      const exp::ScenarioResult& statik) {
  const double p99_e = elastic.p99_latency_us();
  const double p99_s = statik.p99_latency_us();
  const double p99_att = p99_e > 0 ? std::min(1.0, p99_s / p99_e) : 1.0;
  const double succ_s = success_rate(statik);
  const double succ_att =
      succ_s > 0 ? std::min(1.0, success_rate(elastic) / succ_s) : 1.0;
  return std::min(p99_att, succ_att);
}

bool g_dump = false;  // --dump: print each elastic run's scale timeline

void record_pair(bench::Harness& h, const std::string& wl,
                 const exp::ScenarioResult& el,
                 const exp::ScenarioResult& st) {
  if (g_dump) {
    std::cout << wl << " timeline (" << el.elastic.vetoes << " vetoes):\n";
    for (const auto& ev : el.elastic.history)
      std::cout << "  " << ev.at / 1000 << "us  " << ev.from << " -> "
                << ev.to << "\n";
  }
  h.record(wl + "/slo_attainment", "ratio", true, slo_attainment(el, st));
  h.record(wl + "/core_seconds_frac", "ratio", false,
           el.elastic.core_seconds / el.elastic.core_seconds_static);
  h.record(wl + "/elastic_p99", "us", false, el.p99_latency_us());
  h.record(wl + "/static_p99", "us", false, st.p99_latency_us());
  h.record(wl + "/elastic.scale_ups", "count", true,
           static_cast<double>(el.elastic.scale_ups));
  h.record(wl + "/elastic.scale_downs", "count", true,
           static_cast<double>(el.elastic.scale_downs));
}

// --- rt live capacity --------------------------------------------------------

/// Wall-clock: the rt engine with a controller thread cycling the live
/// capacity request 1->W->1 through the EngineCapacityAdapter while the
/// stream runs — the price of elasticity on real threads.
double rt_live_capacity_pps(std::uint64_t packets) {
  rt::EngineConfig cfg;
  cfg.workers = std::min<std::size_t>(
      4, std::max(1u, std::thread::hardware_concurrency() / 2));
  cfg.batch_size = 256;
  cfg.cost_ns_per_packet = 300;
  rt::Engine eng(cfg);
  rt::EngineCapacityAdapter adapter(eng);

  std::atomic<bool> done{false};
  std::thread controller([&] {
    std::uint32_t w = 1;
    while (!done.load(std::memory_order_relaxed)) {
      adapter.set_active_workers(w);
      w = w % adapter.worker_limit() + 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const rt::EngineResult res = eng.run(packets);
  done.store(true, std::memory_order_relaxed);
  controller.join();
  if (!res.in_order || res.packets != packets) return 0.0;  // poison the case
  return res.packets_per_second();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);

  Setup s;
  s.mice = static_cast<int>(cli.get_int("mice", 20));
  g_dump = cli.get_bool("dump", false);

  bench::HarnessConfig hc;
  hc.bench_name = "ablate_elastic";
  hc.warmup = static_cast<int>(cli.get_int("warmup", 1));
  hc.repeats = static_cast<int>(cli.get_int("repeats", 3));
  hc.json_dir = cli.get("json-dir", ".");
  hc.config["mice"] = std::to_string(s.mice);
  bench::Harness harness(hc);

  // --- DES workload pairs (deterministic) -----------------------------------
  const auto di_el = exp::run_scenario(diurnal_config(s, true));
  const auto di_st = exp::run_scenario(diurnal_config(s, false));
  record_pair(harness, "diurnal", di_el, di_st);

  const auto fl_el = exp::run_scenario(flash_config(s, true));
  const auto fl_st = exp::run_scenario(flash_config(s, false));
  record_pair(harness, "flash", fl_el, fl_st);
  // Reaction: virtual time from the surge to the first committed scale-up
  // at or after it.
  double reaction_us = -1.0;
  for (const auto& ev : fl_el.elastic.history)
    if (ev.at >= sim::ms(10) && ev.to > ev.from) {
      reaction_us = static_cast<double>(ev.at - sim::ms(10)) / 1000.0;
      break;
    }
  harness.record("flash/reaction_to_surge", "us", false, reaction_us);

  const auto ro_el = exp::run_scenario(elephants_config(s, true));
  const auto ro_st = exp::run_scenario(elephants_config(s, false));
  record_pair(harness, "elephants", ro_el, ro_st);

  // Same seed, same curves: the whole elastic timeline must be
  // bit-identical across runs.
  const auto di_el2 = exp::run_scenario(diurnal_config(s, true));
  const bool deterministic =
      di_el2.messages == di_el.messages &&
      di_el2.elastic.core_seconds == di_el.elastic.core_seconds &&
      di_el2.elastic.history.size() == di_el.elastic.history.size();
  harness.record("elastic/deterministic", "bool", true,
                 deterministic ? 1.0 : 0.0);

  // --- rt live capacity (wall clock) ----------------------------------------
  const auto rt_packets =
      static_cast<std::uint64_t>(cli.get_int("rt-packets", 2'000'000));
  harness.run_case("rt/live_capacity_pps", "pps", true,
                   [&] { return rt_live_capacity_pps(rt_packets); });

  const std::string json = harness.finish(std::cout);
  std::cout << "\ndiurnal: slo " << slo_attainment(di_el, di_st)
            << " at core-seconds frac "
            << di_el.elastic.core_seconds / di_el.elastic.core_seconds_static
            << " (" << di_el.elastic.scale_ups << " ups, "
            << di_el.elastic.scale_downs << " downs, "
            << di_el.elastic.vetoes << " vetoes)\n";
  if (!json.empty()) std::cout << "wrote " << json << "\n";
  return 0;
}
