// Figure 8 reproduction: single-flow throughput across modes (8a) and
// MFLOW's flow-splitting layout with per-core CPU breakdown (8b).
//
//   8a: TCP and UDP goodput for native / vanilla overlay / RPS / FALCON /
//       MFLOW at message sizes 16B, 4KB, 64KB.
//   8b: per-core utilization for MFLOW at 64KB (TCP full-path scaling,
//       UDP single-device scaling).
//
// Paper anchors checked: TCP 64KB — MFLOW ~1.81x vanilla, above native
// (29.8 vs 26.6 Gbps); UDP 64KB — MFLOW ~2.39x vanilla, ~1.2x FALCON,
// below native (clients throttled by the overlay TX path).
#include <iostream>
#include <map>

#include "bench/harness.hpp"
#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 40));
  const bool csv = cli.get_bool("csv", false);
  const bool cpu = cli.get_bool("cpu", true);

  // DES results are deterministic, so each goodput is record()ed once
  // (repeats=1) into BENCH_fig08_throughput.json for the perf trajectory.
  bench::HarnessConfig hc;
  hc.bench_name = "fig08_throughput";
  hc.warmup = 0;
  hc.repeats = 1;
  hc.json_dir = cli.get("json-dir", ".");
  hc.config = {{"measure_ms", std::to_string(measure / 1'000'000)}};
  bench::Harness harness(hc);

  const std::vector<std::uint32_t> sizes = {16, 4096, 65536};
  std::map<std::pair<std::string, std::uint32_t>, double> tcp_gbps, udp_gbps;

  for (std::uint8_t proto :
       {net::Ipv4Header::kProtoTcp, net::Ipv4Header::kProtoUdp}) {
    const bool is_tcp = proto == net::Ipv4Header::kProtoTcp;
    util::Table table({"mode", "msg=16B", "msg=4KB", "msg=64KB"});
    for (exp::Mode mode : exp::evaluation_modes()) {
      std::vector<std::string> row{std::string(exp::mode_name(mode))};
      for (std::uint32_t size : sizes) {
        exp::ScenarioConfig cfg;
        cfg.mode = mode;
        cfg.protocol = proto;
        cfg.message_size = size;
        cfg.measure = measure;
        const auto res = exp::run_scenario(cfg);
        row.push_back(util::fmt_gbps(res.goodput_gbps));
        auto& store = is_tcp ? tcp_gbps : udp_gbps;
        store[{res.mode, size}] = res.goodput_gbps;
        harness.record((is_tcp ? "tcp." : "udp.") + res.mode + ".msg" +
                           std::to_string(size),
                       "Gbps", true, res.goodput_gbps);

        if (cpu && mode == exp::Mode::kMflow && size == 65536) {
          exp::print_core_breakdown(
              std::cout,
              std::string("Fig 8b: MFLOW per-core CPU, ") +
                  (is_tcp ? "TCP (full path scaling)"
                          : "UDP (device scaling)"),
              res);
          std::cout << "  split batches merged: " << res.batches_merged
                    << ", merge-point ooo arrivals: " << res.ooo_arrivals
                    << "\n\n";
        }
      }
      table.add_row(std::move(row));
    }
    if (csv)
      table.print_csv(std::cout);
    else
      table.print(std::cout, std::string("Fig 8a single-flow throughput, ") +
                                 (is_tcp ? "TCP" : "UDP"));
    std::cout << "\n";
  }

  // Shape checks against the paper's headline numbers.
  const double t_van = tcp_gbps[{"vanilla-overlay", 65536}];
  const double t_nat = tcp_gbps[{"native", 65536}];
  const double t_mf = tcp_gbps[{"mflow", 65536}];
  const double t_fal = tcp_gbps[{"falcon-fun", 65536}];
  const double u_van = udp_gbps[{"vanilla-overlay", 65536}];
  const double u_nat = udp_gbps[{"native", 65536}];
  const double u_mf = udp_gbps[{"mflow", 65536}];
  const double u_fal = udp_gbps[{"falcon-fun", 65536}];

  exp::print_expectations(
      std::cout, "Fig 8 shape checks (64KB)",
      {
          {"TCP mflow/vanilla", 1.81, t_van > 0 ? t_mf / t_van : 0, 0.30},
          {"TCP mflow vs native (>1)", 1.12, t_nat > 0 ? t_mf / t_nat : 0,
           0.25},
          {"TCP mflow/falcon", 1.22, t_fal > 0 ? t_mf / t_fal : 0, 0.30},
          {"TCP vanilla/native", 0.60, t_nat > 0 ? t_van / t_nat : 0, 0.25},
          {"UDP mflow/vanilla", 2.39, u_van > 0 ? u_mf / u_van : 0, 0.35},
          {"UDP mflow/falcon", 1.21, u_fal > 0 ? u_mf / u_fal : 0, 0.30},
          {"UDP mflow < native", 1.0,
           u_nat > 0 ? (u_mf < u_nat ? 1.0 : 0.0) : 0, 0.01},
          {"UDP vanilla/native", 0.25, u_nat > 0 ? u_van / u_nat : 0, 0.60},
      });
  harness.finish(std::cout);
  return 0;
}
