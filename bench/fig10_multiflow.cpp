// Figure 10 reproduction: multi-flow TCP throughput.
//
// Setup per the paper: 5 dedicated application cores, 10 dedicated kernel
// packet-processing cores; 1..20 concurrent TCP flows at 16B / 4KB / 64KB.
//
// Paper shape: 16B scales linearly everywhere (clients are the bottleneck);
// at 4KB/64KB MFLOW leads vanilla by ~24% at 5 flows, shrinking to ~5% at
// 20 flows as spare CPU to scale onto disappears; MFLOW ~5% over FALCON at
// 10 flows, equal at 20.
#include <iostream>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

namespace {

exp::ScenarioConfig multiflow_config(exp::Mode mode, int flows,
                                     std::uint32_t size, sim::Time measure) {
  exp::ScenarioConfig cfg;
  cfg.mode = mode;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.message_size = size;
  cfg.num_flows = flows;
  cfg.measure = measure;
  // Paper layout: 5 app cores (0-4), 10 kernel cores (5-14).
  cfg.server_cores = 15;
  cfg.app_cores = 5;
  cfg.first_kernel_core = 5;
  cfg.kernel_cores = 10;
  cfg.nic_queues = 10;  // RSS spreads flows over all kernel cores

  if (mode == exp::Mode::kMflow) {
    // Device scaling with merge-before-TCP: with many flows there is no
    // room for per-branch pipelining, exactly the regime the paper studies.
    core::MflowConfig mcfg = core::udp_device_scaling_config();
    mcfg.tcp_in_reader = true;
    mcfg.splitting_cores.clear();
    for (int c = 5; c < 15; ++c) mcfg.splitting_cores.push_back(c);
    cfg.mflow = mcfg;
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 25));

  const std::vector<int> flow_counts = {1, 2, 5, 10, 15, 20};
  const std::vector<exp::Mode> modes = {exp::Mode::kVanilla,
                                        exp::Mode::kFalconDev,
                                        exp::Mode::kMflow};
  std::map<std::tuple<std::string, int, std::uint32_t>, double> gbps;

  for (std::uint32_t size : {16u, 4096u, 65536u}) {
    std::vector<std::string> headers = {"mode"};
    for (int f : flow_counts) headers.push_back(std::to_string(f) + " flows");
    util::Table table(std::move(headers));
    for (exp::Mode mode : modes) {
      std::vector<std::string> row{std::string(exp::mode_name(mode))};
      for (int flows : flow_counts) {
        const auto res =
            exp::run_scenario(multiflow_config(mode, flows, size, measure));
        gbps[{res.mode, flows, size}] = res.goodput_gbps;
        row.push_back(util::Table::Cell(res.goodput_gbps, 2).text);
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout, "Fig 10 multi-flow TCP throughput (Gbps), msg=" +
                               std::to_string(size) + "B");
    std::cout << "\n";
  }

  auto ratio = [&](const char* a, const char* b, int flows,
                   std::uint32_t size) {
    const double den = gbps[{b, flows, size}];
    return den > 0 ? gbps[{a, flows, size}] / den : 0.0;
  };
  exp::print_expectations(
      std::cout, "Fig 10 shape checks",
      {
          {"4KB mflow/vanilla @5 flows", 1.24, ratio("mflow", "vanilla-overlay", 5, 4096), 0.35},
          {"4KB mflow/vanilla @10 flows", 1.11, ratio("mflow", "vanilla-overlay", 10, 4096), 0.30},
          {"4KB mflow/vanilla @20 flows", 1.05, ratio("mflow", "vanilla-overlay", 20, 4096), 0.30},
          {"64KB mflow/falcon @10 flows", 1.05, ratio("mflow", "falcon-dev", 10, 65536), 0.30},
          {"64KB mflow/falcon @20 flows", 1.00, ratio("mflow", "falcon-dev", 20, 65536), 0.30},
          {"16B scales with flows (20/5)", 4.0,
           gbps[{"mflow", 5, 16}] > 0
               ? gbps[{"mflow", 20, 16}] / gbps[{"mflow", 5, 16}]
               : 0,
           0.40},
      });
  return 0;
}
