// Ablation: micro-flow batch size under BOTH scaling regimes.
//
// Complements Fig 7: under single-device scaling (underloaded splitting
// cores) reordering falls monotonically with batch size; under full-path
// scaling (saturated branches) very large batches also build per-branch
// queues, re-introducing boundary skew — so "bigger is better" has a limit,
// which is why the paper settles on 256 rather than "as large as possible".
//
// Deterministic DES results; each point is record()ed once into
// BENCH_ablate_batch.json (see docs/BENCHMARKS.md).
#include <iostream>

#include "bench/harness.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 25));

  bench::HarnessConfig hc;
  hc.bench_name = "ablate_batch";
  hc.warmup = 0;
  hc.repeats = 1;
  hc.json_dir = cli.get("json-dir", ".");
  hc.config = {{"measure_ms", std::to_string(measure / 1'000'000)}};
  bench::Harness harness(hc);

  for (bool full_path : {false, true}) {
    const std::string regime = full_path ? "full_path" : "device";
    util::Table table({"batch", "goodput", "ooo arrivals", "batches",
                       "p99 latency (us)"});
    for (std::uint32_t batch : {8u, 32u, 128u, 256u, 1024u, 4096u}) {
      exp::ScenarioConfig cfg;
      cfg.mode = exp::Mode::kMflow;
      cfg.protocol = net::Ipv4Header::kProtoTcp;
      cfg.message_size = 65536;
      cfg.measure = measure;
      core::MflowConfig mcfg = full_path
                                   ? core::tcp_full_path_config()
                                   : core::udp_device_scaling_config();
      mcfg.tcp_in_reader = true;
      mcfg.batch_size = batch;
      cfg.mflow = mcfg;
      const auto res = exp::run_scenario(cfg);
      table.add({static_cast<int>(batch), util::fmt_gbps(res.goodput_gbps),
                 static_cast<unsigned long long>(res.ooo_arrivals),
                 static_cast<unsigned long long>(res.batches_merged),
                 util::Table::Cell(res.p99_latency_us(), 1)});
      harness.record(regime + ".batch" + std::to_string(batch) + ".goodput",
                     "Gbps", true, res.goodput_gbps);
      harness.record(regime + ".batch" + std::to_string(batch) + ".p99_us",
                     "us", false, res.p99_latency_us());
    }
    table.print(std::cout, full_path
                               ? "Ablation: batch size, full-path scaling"
                               : "Ablation: batch size, device scaling");
    std::cout << "\n";
  }
  harness.finish(std::cout);
  return 0;
}
