// Ablation: flow-state lifecycle under churn — the sharded, expiring
// FlowTable (src/control/flowtable) and the Controller's TTL sweep.
//
// Three measurement groups:
//
//   table/*    : raw FlowTable throughput (wall-clock) under insert/touch/
//                expire churn at 2M and 8M resident entries, single- and
//                multi-threaded. Machine-dependent — baselined in
//                bench/baselines/ at the loose cross-runner tolerance.
//
//   churn/*    : a Controller driven through >= 1M cumulative short flows
//                (closed-form synthetic churn, exp::append_churn_totals,
//                reverse twins included) plus one mid-run elephant surge.
//                Checks the bounded-state invariant — peak tracked flows
//                scales with the LIVE window, not cumulative arrivals —
//                and measures control-plane reaction time to the surge.
//                Deterministic (virtual clock, no threads) — baselined in
//                bench/baselines/churn/ at 2%.
//
//   des/*      : a small full-DES scenario with the churn source merged
//                into the engine's real flow totals, exercising the
//                release_flow drain handshake end to end. Deterministic,
//                same 2% baseline directory.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "control/flowtable.hpp"
#include "control/policy.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"

using namespace mflow;

namespace {

// --- raw table throughput ----------------------------------------------------

/// Sliding-window churn against one table: thread t inserts keys
/// base+0..base+ops-1 stamped with its loop index, touches each once, and
/// sweeps periodically with ttl = capacity — so occupancy rides at the
/// capacity bound (every insert past it evicts the shard LRU) and all four
/// hot paths (upsert, touch, expire, evict) stay exercised. Returns ops/s
/// counting upsert + touch as two ops.
double churn_table_ops(std::size_t capacity, std::uint64_t ops_per_thread,
                       int threads) {
  control::FlowTableParams p;
  p.shards = 8;
  p.capacity = capacity;
  p.ttl = static_cast<sim::Time>(capacity);
  control::FlowTable<std::uint64_t> table(p);

  auto worker = [&table, ops_per_thread](int t) {
    const net::FlowId base = static_cast<net::FlowId>(t) << 40;
    for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
      const auto now = static_cast<sim::Time>(i);
      table.upsert_apply(base + i, now, [i](std::uint64_t& v) { v = i; });
      table.touch(base + i, now);
      if ((i & 0xFFFF) == 0) table.expire_idle(now);
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double total_ops =
      2.0 * static_cast<double>(ops_per_thread) * std::max(threads, 1);
  return secs > 0 ? total_ops / secs : 0.0;
}

// --- controller under synthetic churn ---------------------------------------

/// Accepts every degree change and release — the control plane's cost and
/// state bounds are what this drive measures, not a data path.
struct NullTarget final : control::CapacityTarget {
  void set_flow_degree(net::FlowId, std::uint32_t) override {}
  std::uint32_t max_degree() const override { return 4; }
};

struct ChurnDrive {
  std::uint64_t cumulative_flows = 0;
  std::uint64_t peak_tracked = 0;
  std::uint64_t tracked_end = 0;
  std::uint64_t expired = 0;
  std::uint64_t rescales = 0;
  /// Surge onset -> first committed promotion for the surge flow (us);
  /// negative if it never promoted.
  double reaction_us = -1.0;
};

ChurnDrive drive_controller_churn() {
  control::ControllerParams cp;
  cp.monitor.window = sim::ms(2);
  cp.monitor.max_samples = 32;
  cp.monitor.table.shards = 8;
  cp.monitor.table.capacity = 1 << 21;  // the 2M-entry regime
  cp.monitor.table.ttl = sim::ms(1);
  cp.classifier.table = cp.monitor.table;
  cp.classifier.promote_pps = 200'000;
  cp.classifier.demote_pps = 100'000;
  cp.classifier.dwell = sim::ms(1);
  cp.scaling.per_core_pps = 150'000;

  exp::ScenarioConfig::ControlPlane::Churn churn;
  churn.enabled = true;
  churn.flows_per_sec = 2e6;
  churn.flow_lifetime = sim::us(500);
  churn.rate_pps = 20'000;  // mice: churn must not promote anything
  churn.reverse = true;
  churn.first_flow_id = 1ull << 20;

  const sim::Time interval = sim::us(200);
  const sim::Time end = sim::ms(300);
  const sim::Time surge_at = sim::ms(150);
  constexpr net::FlowId kSurgeFlow = 999;

  sim::Time now = 0;
  auto source = [&churn, &now, surge_at] {
    std::vector<control::Controller::FlowTotals> v;
    exp::append_churn_totals(churn, now, v);
    if (now >= surge_at) {
      const double active = sim::to_seconds(now - surge_at);
      const auto segs = static_cast<std::uint64_t>(1e6 * active) + 1;
      v.push_back({kSurgeFlow, segs, segs * net::kTcpMss});
    }
    return v;
  };

  NullTarget target;
  control::Controller ctl(cp, source, &target);
  for (now = interval; now <= end; now += interval) ctl.tick(now);

  ChurnDrive d;
  d.cumulative_flows =
      (static_cast<std::uint64_t>(sim::to_seconds(end) *
                                  churn.flows_per_sec) +
       1) *
      2;
  d.peak_tracked = ctl.peak_tracked();
  d.tracked_end = ctl.tracked_flows();
  d.expired = ctl.expired_flows();
  d.rescales = ctl.rescales();
  for (const auto& ev : ctl.history()) {
    if (ev.flow == kSurgeFlow && ev.new_degree > ev.old_degree) {
      d.reaction_us = sim::to_seconds(ev.at - surge_at) * 1e6;
      break;
    }
  }
  return d;
}

// --- full DES scenario with churn --------------------------------------------

exp::ScenarioConfig des_churn_config() {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.message_size = 65536;
  cfg.num_flows = 2;
  cfg.server_cores = 8;
  cfg.app_cores = 1;
  cfg.first_kernel_core = 1;
  cfg.kernel_cores = 7;
  cfg.warmup = sim::ms(4);
  cfg.measure = sim::ms(16);
  core::MflowConfig mcfg = core::udp_device_scaling_config();
  mcfg.tcp_in_reader = true;
  mcfg.splitting_cores = {2, 3, 4, 5};
  cfg.mflow = mcfg;
  cfg.control.enabled = true;
  cfg.control.interval = sim::us(100);
  cfg.control.params.monitor.window = sim::ms(4);
  cfg.control.params.monitor.max_samples = 64;
  cfg.control.params.monitor.table.ttl = sim::ms(2);
  cfg.control.params.classifier.promote_pps = 200'000;
  cfg.control.params.classifier.demote_pps = 100'000;
  cfg.control.params.classifier.dwell = sim::ms(1);
  cfg.control.params.scaling.per_core_pps = 150'000;
  cfg.control.churn.enabled = true;
  cfg.control.churn.flows_per_sec = 200'000;
  cfg.control.churn.flow_lifetime = sim::ms(1);
  cfg.control.churn.rate_pps = 20'000;
  cfg.control.churn.reverse = true;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);

  bench::HarnessConfig hc;
  hc.bench_name = "ablate_churn";
  hc.warmup = static_cast<int>(cli.get_int("warmup", 1));
  hc.repeats = static_cast<int>(cli.get_int("repeats", 3));
  hc.json_dir = cli.get("json-dir", ".");
  const auto ops_2m = static_cast<std::uint64_t>(
      cli.get_int("ops", 4'000'000));
  hc.config["table_ops"] = std::to_string(ops_2m);
  bench::Harness harness(hc);

  // --- raw table throughput (wall clock; loose cross-runner baseline) -------
  harness.run_case("table/ops_2m", "ops/s", true, [&] {
    return churn_table_ops(1 << 21, ops_2m, 1);
  });
  harness.run_case("table/ops_2m_mt4", "ops/s", true, [&] {
    return churn_table_ops(1 << 21, ops_2m / 4, 4);
  });
  harness.run_case("table/ops_8m", "ops/s", true, [&] {
    return churn_table_ops(1 << 23, ops_2m * 2, 1);
  });

  // --- controller under >= 1M cumulative flows (deterministic) --------------
  const ChurnDrive d = drive_controller_churn();
  harness.record("churn/cumulative_flows", "count", true,
                 static_cast<double>(d.cumulative_flows));
  harness.record("churn/peak_tracked", "count", false,
                 static_cast<double>(d.peak_tracked));
  harness.record("churn/tracked_end", "count", false,
                 static_cast<double>(d.tracked_end));
  harness.record("churn/expired", "count", true,
                 static_cast<double>(d.expired));
  // The bounded-state invariant itself: the live window is flows_per_sec *
  // (lifetime + ttl + tick slack) * 2 directions ~= 7k flows; 20k gives
  // comfortable slack while cumulative is > 1M. A leak trips this long
  // before it trips a tolerance check.
  harness.record("churn/bounded_by_live_window", "bool", true,
                 d.peak_tracked <= 20'000 ? 1.0 : 0.0);
  harness.record("churn/reaction_to_surge", "us", false, d.reaction_us);

  const ChurnDrive d2 = drive_controller_churn();
  harness.record("churn/deterministic", "bool", true,
                 (d2.peak_tracked == d.peak_tracked &&
                  d2.expired == d.expired && d2.rescales == d.rescales &&
                  d2.reaction_us == d.reaction_us)
                     ? 1.0
                     : 0.0);

  // --- full DES scenario: churn against the real engine ---------------------
  const exp::ScenarioResult des = exp::run_scenario(des_churn_config());
  harness.record("des/goodput", "Gbps", true, des.goodput_gbps);
  harness.record("des/control.peak", "count", false,
                 static_cast<double>(des.control.peak));
  harness.record("des/control.tracked", "count", false,
                 static_cast<double>(des.control.tracked));
  harness.record("des/control.expired", "count", true,
                 static_cast<double>(des.control.expired));

  const std::string json = harness.finish(std::cout);
  std::cout << "\nchurn: " << d.cumulative_flows << " cumulative flows, peak "
            << d.peak_tracked << " tracked, " << d.expired
            << " expired; surge promoted after " << d.reaction_us << " us\n"
            << "des: " << des.goodput_gbps << " Gbps, peak "
            << des.control.peak << " tracked, "
            << des.control.expired << " expired\n";
  if (!json.empty()) std::cout << "wrote " << json << "\n";
  return 0;
}
