// Microbenchmarks for the real-thread engine: lock-free ring throughput
// (scalar vs batched, same-thread vs cross-thread) and the full
// split/process/merge pipeline at various worker counts.
//
// This is the CI perf-smoke bench: BENCH_micro_rt.json is compared against
// bench/baselines/BENCH_micro_rt.json by bench/compare_bench.py, so the
// case set and knobs here must stay stable (see docs/BENCHMARKS.md before
// renaming anything).
//
// NOTE: on a single-CPU host the multi-worker configurations time-slice, so
// packets/sec does not show parallel speedup here; the numbers demonstrate
// framework overhead (cost=0) and calibrated processing (cost=200ns), not
// scaling.
#include <chrono>
#include <iostream>
#include <thread>

#include "bench/harness.hpp"
#include "rt/engine.hpp"
#include "util/cli.hpp"

using namespace mflow;
using namespace mflow::rt;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Same-thread ring round trip: push/pop `n` items one at a time.
double ring_scalar_ops_per_sec(std::uint64_t n) {
  SpscRing<std::uint64_t> ring(1024);
  const double t0 = now_seconds();
  for (std::uint64_t i = 0; i < n; ++i) {
    (void)ring.try_push(i);
    volatile auto v = ring.try_pop();
    (void)v;
  }
  return static_cast<double>(n) / (now_seconds() - t0);
}

/// Same-thread ring round trip in batches of `b`.
double ring_batch_ops_per_sec(std::uint64_t n, std::size_t b) {
  SpscRing<std::uint64_t> ring(1024);
  std::vector<std::uint64_t> in(b), out(b);
  const double t0 = now_seconds();
  for (std::uint64_t i = 0; i < n; i += b) {
    (void)ring.try_push_batch(in.data(), b);
    volatile auto m = ring.try_pop_batch(out.data(), b);
    (void)m;
  }
  return static_cast<double>(n) / (now_seconds() - t0);
}

/// Producer thread -> consumer thread transfer of `n` items.
double ring_xthread_items_per_sec(std::uint64_t n, std::size_t batch) {
  SpscRing<std::uint64_t> ring(1024);
  const double t0 = now_seconds();
  std::jthread producer([&] {
    if (batch <= 1) {
      for (std::uint64_t i = 0; i < n; ++i)
        while (!ring.try_push(i)) std::this_thread::yield();
    } else {
      std::vector<std::uint64_t> buf(batch);
      std::uint64_t sent = 0;
      while (sent < n) {
        const std::size_t want =
            static_cast<std::size_t>(std::min<std::uint64_t>(batch, n - sent));
        std::size_t done = 0;
        while (done < want) {
          const std::size_t k =
              ring.try_push_batch(buf.data() + done, want - done);
          done += k;
          if (k == 0) std::this_thread::yield();
        }
        sent += want;
      }
    }
  });
  std::uint64_t got = 0;
  if (batch <= 1) {
    while (got < n) {
      if (ring.try_pop()) ++got;
      else std::this_thread::yield();
    }
  } else {
    std::vector<std::uint64_t> buf(batch);
    while (got < n) {
      const std::size_t k = ring.try_pop_batch(buf.data(), batch);
      if (k == 0) std::this_thread::yield();
      got += k;
    }
  }
  producer.join();
  return static_cast<double>(n) / (now_seconds() - t0);
}

/// Full pipeline run; returns delivered packets/sec.
double engine_pps(std::size_t workers, std::uint32_t cost_ns,
                  std::uint64_t total) {
  EngineConfig cfg;
  cfg.workers = workers;
  cfg.batch_size = 256;
  cfg.cost_ns_per_packet = cost_ns;
  Engine engine(cfg);
  const auto res = engine.run(total);
  if (!res.in_order || res.packets_dropped != 0) {
    std::cerr << "micro_rt: engine run violated order/conservation\n";
    std::exit(1);
  }
  return res.packets_per_second();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::HarnessConfig hc;
  hc.bench_name = "micro_rt";
  hc.warmup = static_cast<int>(cli.get_int("warmup", 1));
  hc.repeats = static_cast<int>(cli.get_int("repeats", 5));
  hc.json_dir = cli.get("json-dir", ".");
  const std::uint64_t ring_items = 4'000'000;
  const std::uint64_t pkts_c0 = 200'000;   // cost=0: framework overhead
  const std::uint64_t pkts_c200 = 20'000;  // cost=200ns: calibrated work
  hc.config = {{"ring_items", std::to_string(ring_items)},
               {"packets_cost0", std::to_string(pkts_c0)},
               {"packets_cost200", std::to_string(pkts_c200)},
               {"batch_size", "256"},
               {"ring_capacity", "1024"}};
  bench::Harness h(hc);

  h.run_case("ring.scalar", "ops/s", true,
             [&] { return ring_scalar_ops_per_sec(ring_items); });
  h.run_case("ring.batch32", "ops/s", true,
             [&] { return ring_batch_ops_per_sec(ring_items, 32); });
  h.run_case("ring.xthread.scalar", "items/s", true,
             [&] { return ring_xthread_items_per_sec(ring_items / 4, 1); });
  h.run_case("ring.xthread.batch32", "items/s", true,
             [&] { return ring_xthread_items_per_sec(ring_items / 4, 32); });

  h.run_case("engine.w1.cost0", "pkts/s", true,
             [&] { return engine_pps(1, 0, pkts_c0); });
  h.run_case("engine.w2.cost0", "pkts/s", true,
             [&] { return engine_pps(2, 0, pkts_c0); });
  h.run_case("engine.w1.cost200", "pkts/s", true,
             [&] { return engine_pps(1, 200, pkts_c200); });
  h.run_case("engine.w2.cost200", "pkts/s", true,
             [&] { return engine_pps(2, 200, pkts_c200); });
  h.run_case("engine.w4.cost200", "pkts/s", true,
             [&] { return engine_pps(4, 200, pkts_c200); });

  h.finish(std::cout);
  return 0;
}
