// google-benchmark for the real-thread engine: lock-free ring throughput
// and the full split/process/merge pipeline at various worker counts.
//
// NOTE: on a single-CPU host the multi-worker configurations time-slice, so
// packets/sec does not show parallel speedup here; the numbers demonstrate
// overhead and correctness, not scaling.
#include <benchmark/benchmark.h>

#include <thread>

#include "rt/engine.hpp"

using namespace mflow::rt;

static void BM_SpscRingRoundTrip(benchmark::State& state) {
  SpscRing<std::uint64_t> ring(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ring.try_push(i++);
    benchmark::DoNotOptimize(ring.try_pop());
  }
}
BENCHMARK(BM_SpscRingRoundTrip);

static void BM_SpscRingCrossThread(benchmark::State& state) {
  for (auto _ : state) {
    SpscRing<std::uint64_t> ring(1024);
    constexpr std::uint64_t kN = 100000;
    std::jthread producer([&] {
      for (std::uint64_t i = 0; i < kN; ++i)
        while (!ring.try_push(i)) std::this_thread::yield();
    });
    std::uint64_t got = 0;
    while (got < kN) {
      if (ring.try_pop()) ++got;
      else std::this_thread::yield();
    }
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SpscRingCrossThread)->Unit(benchmark::kMillisecond);

static void BM_RtEnginePipeline(benchmark::State& state) {
  EngineConfig cfg;
  cfg.workers = static_cast<std::size_t>(state.range(0));
  cfg.batch_size = 256;
  cfg.cost_ns_per_packet = 200;
  for (auto _ : state) {
    Engine engine(cfg);
    const auto res = engine.run(20000);
    if (!res.in_order) state.SkipWithError("order violated");
    benchmark::DoNotOptimize(res.packets);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_RtEnginePipeline)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
