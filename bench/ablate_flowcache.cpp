// Fast-path cache ablation (the experiment ONCache and the paper never ran
// together): what does a per-flow encap/decap cache do to overlay
// throughput, latency, and — the MFLOW question — to the optimal split
// degree of the very stage the cache shrinks?
//
//   A. fig08-style steady-state throughput, vanilla overlay, cache off/on
//      (TCP and UDP elephants at 64KB). Acceptance: cache-on >= 1.20x off.
//   B. fig09-style latency at equal offered load, cache off/on.
//   C. cache-miss storm: 32 concurrent flows churning through a 4-entry
//      cache — eviction thrash holds the hit rate near zero, and goodput
//      must degrade no further than the probe overhead.
//   D. MFLOW split-degree sweep (UDP device scaling), cache off/on: cached
//      encap shrinks the VXLAN stage, so the minimal degree that reaches
//      the plateau drops.
//   E. rt engine overlay mode: per-worker cache hit rates (lossless config,
//      so the counts are deterministic; wall-clock pps is NOT recorded —
//      it would flake any tight-tolerance baseline).
//
// All recorded values are DES-deterministic (plus the deterministic rt
// counters), so CI compares them at a tight tolerance; see ci.yml.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "rt/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

namespace {

std::string fmt(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

exp::ScenarioConfig base_config(std::uint8_t proto, bool cache,
                                sim::Time measure) {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kVanilla;
  cfg.protocol = proto;
  cfg.message_size = 65536;
  cfg.measure = measure;
  cfg.fastpath.enabled = cache;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 40));

  bench::HarnessConfig hc;
  hc.bench_name = "ablate_flowcache";
  hc.warmup = 0;
  hc.repeats = 1;
  hc.json_dir = cli.get("json-dir", ".");
  hc.config = {{"measure_ms", std::to_string(measure / 1'000'000)}};
  bench::Harness harness(hc);

  std::vector<exp::Expectation> checks;

  // --- A: steady-state throughput, cache off/on ------------------------------
  util::Table tput({"workload", "cache off", "cache on", "ratio",
                    "hit rate"});
  double tcp_off = 0, tcp_on = 0, udp_off = 0, udp_on = 0;
  for (std::uint8_t proto :
       {net::Ipv4Header::kProtoTcp, net::Ipv4Header::kProtoUdp}) {
    const bool is_tcp = proto == net::Ipv4Header::kProtoTcp;
    const std::string label = is_tcp ? "tcp" : "udp";
    const auto off = exp::run_scenario(base_config(proto, false, measure));
    const auto on = exp::run_scenario(base_config(proto, true, measure));
    (is_tcp ? tcp_off : udp_off) = off.goodput_gbps;
    (is_tcp ? tcp_on : udp_on) = on.goodput_gbps;
    harness.record(label + ".vanilla.msg65536.cacheoff", "Gbps", true,
                   off.goodput_gbps);
    harness.record(label + ".vanilla.msg65536.cacheon", "Gbps", true,
                   on.goodput_gbps);
    harness.record(label + ".vanilla.msg65536.hit_rate_pct", "%", true,
                   on.cache_hit_rate() * 100.0);
    tput.add_row({label + " 64KB elephant", util::fmt_gbps(off.goodput_gbps),
                  util::fmt_gbps(on.goodput_gbps),
                  fmt(off.goodput_gbps > 0
                          ? on.goodput_gbps / off.goodput_gbps
                          : 0, 2),
                  fmt(on.cache_hit_rate() * 100.0, 1) + "%"});
    checks.push_back({label + " cache-on/off >= 1.20", 1.0,
                      off.goodput_gbps > 0 &&
                              on.goodput_gbps >= 1.20 * off.goodput_gbps
                          ? 1.0
                          : 0.0,
                      0.01});
  }
  tput.print(std::cout, "A: vanilla-overlay throughput, cache off/on");
  std::cout << "\n";

  // --- B: latency at equal offered load, cache off/on ------------------------
  // Offer ~70% of the cache-OFF UDP capacity to both variants so the
  // comparison is pure data-path + queueing (fig09 methodology).
  {
    const double msgs_per_sec =
        udp_off > 0 ? udp_off * 1e9 / 8.0 / 65536.0 : 1.0;
    util::Table lat({"variant", "mean us", "p50 us", "p99 us"});
    double mean_off = 0;
    for (bool cache : {false, true}) {
      auto cfg = base_config(net::Ipv4Header::kProtoUdp, cache, measure);
      cfg.pace_per_message = static_cast<sim::Time>(
          1e9 * cfg.udp_clients / (msgs_per_sec * 0.7));
      const auto res = exp::run_scenario(cfg);
      const std::string label = cache ? "cacheon" : "cacheoff";
      harness.record("udp.paced70.p99_us." + label, "us", false,
                     res.p99_latency_us());
      harness.record("udp.paced70.mean_us." + label, "us", false,
                     res.mean_latency_us());
      lat.add_row({label, fmt(res.mean_latency_us(), 1),
                   fmt(res.p50_latency_us(), 1),
                   fmt(res.p99_latency_us(), 1)});
      if (!cache)
        mean_off = res.mean_latency_us();
      else
        checks.push_back({"udp paced mean latency on < off", 1.0,
                          res.mean_latency_us() < mean_off ? 1.0 : 0.0, 0.01});
    }
    lat.print(std::cout, "B: UDP latency at 70% of cache-off capacity");
    std::cout << "\n";
  }

  // --- C: cache-miss storm under flow churn ----------------------------------
  // 32 TCP flows through a 4-entry cache: every arrival evicts, the hit
  // rate collapses, and the cost paid is probe + futile insert — bounded
  // overhead, not a cliff.
  {
    auto storm_cfg = [&](bool cache, std::size_t capacity) {
      auto cfg = base_config(net::Ipv4Header::kProtoTcp, cache, measure);
      cfg.num_flows = 32;
      cfg.app_cores = 1;
      if (cache) cfg.fastpath.capacity = capacity;
      return cfg;
    };
    const auto off = exp::run_scenario(storm_cfg(false, 0));
    const auto ample = exp::run_scenario(storm_cfg(true, 1024));
    const auto storm = exp::run_scenario(storm_cfg(true, 4));
    harness.record("tcp.flows32.cacheoff", "Gbps", true, off.goodput_gbps);
    harness.record("tcp.flows32.ample1024", "Gbps", true, ample.goodput_gbps);
    harness.record("tcp.flows32.storm4", "Gbps", true, storm.goodput_gbps);
    harness.record("tcp.flows32.storm4.hit_rate_pct", "%", false,
                   storm.cache_hit_rate() * 100.0);
    util::Table st({"variant", "Gbps", "hit rate", "evictions"});
    st.add_row({"cache off", util::fmt_gbps(off.goodput_gbps), "-", "-"});
    st.add_row({"capacity 1024", util::fmt_gbps(ample.goodput_gbps),
                fmt(ample.cache_hit_rate() * 100.0, 1) + "%",
                std::to_string(ample.cache_evictions)});
    st.add_row({"capacity 4 (storm)", util::fmt_gbps(storm.goodput_gbps),
                fmt(storm.cache_hit_rate() * 100.0, 1) + "%",
                std::to_string(storm.cache_evictions)});
    st.print(std::cout, "C: 32-flow churn vs 4-entry cache");
    std::cout << "\n";
    checks.push_back({"storm hit rate collapses (< 35%)", 1.0,
                      storm.cache_hit_rate() < 0.35 ? 1.0 : 0.0, 0.01});
    checks.push_back({"storm goodput >= 0.90x cache-off", 1.0,
                      off.goodput_gbps > 0 &&
                              storm.goodput_gbps >= 0.90 * off.goodput_gbps
                          ? 1.0
                          : 0.0,
                      0.01});
  }

  // --- D: MFLOW split-degree sweep, cache off/on ------------------------------
  // Does the optimal split degree drop when encap is cached? Report the
  // minimal degree reaching >= 97% of that variant's best goodput.
  {
    util::Table sweep({"cache", "d=1", "d=2", "d=3", "d=4", "min d @97%"});
    int opt_off = 0, opt_on = 0;
    for (bool cache : {false, true}) {
      std::vector<double> gbps;
      std::vector<std::string> row{cache ? "on" : "off"};
      for (int degree = 1; degree <= 4; ++degree) {
        exp::ScenarioConfig cfg;
        cfg.mode = exp::Mode::kMflow;
        cfg.protocol = net::Ipv4Header::kProtoUdp;
        cfg.message_size = 65536;
        cfg.measure = measure;
        cfg.fastpath.enabled = cache;
        auto mcfg = core::udp_device_scaling_config();
        mcfg.splitting_cores.clear();
        for (int c = 0; c < degree; ++c)
          mcfg.splitting_cores.push_back(2 + c);
        cfg.mflow = mcfg;
        const auto res = exp::run_scenario(cfg);
        gbps.push_back(res.goodput_gbps);
        row.push_back(util::fmt_gbps(res.goodput_gbps));
        harness.record(std::string("mflow.udp.sweep.") +
                           (cache ? "on" : "off") + ".d" +
                           std::to_string(degree),
                       "Gbps", true, res.goodput_gbps);
      }
      double best = 0;
      for (double g : gbps) best = std::max(best, g);
      int min_d = 1;
      for (int d = 1; d <= 4; ++d)
        if (gbps[static_cast<std::size_t>(d - 1)] >= 0.97 * best) {
          min_d = d;
          break;
        }
      (cache ? opt_on : opt_off) = min_d;
      row.push_back(std::to_string(min_d));
      sweep.add_row(std::move(row));
    }
    sweep.print(std::cout,
                "D: MFLOW UDP device-scaling split-degree sweep");
    std::cout << "  cached encap shrinks the split stage: plateau degree "
              << opt_off << " (off) -> " << opt_on << " (on)\n\n";
    harness.record("mflow.udp.sweep.plateau_degree.off", "cores", false,
                   opt_off);
    harness.record("mflow.udp.sweep.plateau_degree.on", "cores", false,
                   opt_on);
    checks.push_back({"plateau degree(on) <= degree(off)", 1.0,
                      opt_on <= opt_off ? 1.0 : 0.0, 0.01});
  }

  // --- E: rt engine overlay cache, deterministic hit counts ------------------
  {
    rt::EngineConfig rc;
    rc.workers = 2;
    rc.batch_size = 64;
    rc.cost_ns_per_packet = 0;
    rc.max_push_spins = 0;  // lossless => per-worker sequences deterministic
    rc.overlay.enabled = true;
    rc.overlay.flows = 8;
    constexpr std::uint64_t kTotal = 20000;
    rc.overlay.cache = false;
    const auto off = rt::Engine(rc).run(kTotal);
    rc.overlay.cache = true;
    const auto on = rt::Engine(rc).run(kTotal);
    rc.rescales = {{8000, 1}, {14000, 2}};
    const auto resc = rt::Engine(rc).run(kTotal);
    const double hit_pct =
        100.0 * static_cast<double>(on.cache_hits) /
        static_cast<double>(std::max<std::uint64_t>(
            on.cache_hits + on.cache_misses, 1));
    std::cout << "E: rt overlay — cache off decap_failures=" <<
        off.decap_failures << "; cache on hit rate " << hit_pct
              << "%, invalidations under rescale=" << resc.cache_invalidations
              << "\n\n";
    harness.record("rt.overlay.hit_rate_pct", "%", true, hit_pct);
    harness.record("rt.overlay.rescale_invalidations", "count", false,
                   static_cast<double>(resc.cache_invalidations));
    checks.push_back({"rt overlay decap ok (off)", 1.0,
                      off.decap_failures == 0 && off.packets == kTotal ? 1.0
                                                                      : 0.0,
                      0.01});
    checks.push_back({"rt cache hit rate > 95%", 1.0,
                      hit_pct > 95.0 ? 1.0 : 0.0, 0.01});
    checks.push_back({"rt rescale invalidates entries", 1.0,
                      resc.cache_invalidations > 0 ? 1.0 : 0.0, 0.01});
  }

  exp::print_expectations(std::cout, "Flow-cache ablation checks", checks);
  harness.finish(std::cout);
  return 0;
}
