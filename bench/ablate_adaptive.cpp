// Extension: online batch-size adaptation vs fixed batch sizes.
//
// The controller should converge near the knee the paper found offline
// (Fig. 7): large enough that reordering is rare. Compared against fixed
// batches under both mild and heavy core interference.
#include <iostream>

#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

namespace {

exp::ScenarioResult run_one(bool adaptive, std::uint32_t batch,
                            sim::Time interference, sim::Time measure) {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.message_size = 65536;
  cfg.measure = measure;
  cfg.warmup = sim::ms(5);
  cfg.interference.mean_interval = interference;
  auto mcfg = core::udp_device_scaling_config();
  mcfg.tcp_in_reader = true;
  mcfg.batch_size = batch;
  cfg.mflow = mcfg;
  cfg.adaptive_batch = adaptive;
  return exp::run_scenario(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 40));

  for (sim::Time interval : {sim::us(50), sim::us(15)}) {
    util::Table table(
        {"policy", "goodput", "ooo arrivals", "final batch"});
    for (std::uint32_t batch : {16u, 256u}) {
      const auto res = run_one(false, batch, interval, measure);
      table.add({"fixed " + std::to_string(batch),
                 util::fmt_gbps(res.goodput_gbps),
                 static_cast<unsigned long long>(res.ooo_arrivals),
                 static_cast<int>(res.final_batch)});
    }
    const auto res = run_one(true, 16, interval, measure);
    table.add({"adaptive (start 16)", util::fmt_gbps(res.goodput_gbps),
               static_cast<unsigned long long>(res.ooo_arrivals),
               static_cast<int>(res.final_batch)});
    table.print(std::cout,
                std::string("Extension: adaptive batch sizing, "
                            "interference every ~") +
                    std::to_string(interval / 1000) + "us");
    std::cout << "\n";
  }
  std::cout << "Expected: starting from a deliberately bad batch (16), the "
               "controller grows the batch\nuntil reordering stops, ending "
               "near the fixed-256 operating point.\n";
  return 0;
}
