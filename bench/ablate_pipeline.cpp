// Ablation: per-branch pipelining for TCP full-path scaling.
//
// The paper's §V observation: with IRQ splitting, a single splitting core
// per branch saturates (MFLOW raises throughput enough that skb allocation
// PLUS the rest of the path exceed one core); adding a partner core per
// branch (2->4, 3->5) relieves it, moving the bottleneck to the copy thread
// on core 0 — the paper's "new bottleneck".
#include <iostream>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 25));

  util::Table table({"variant", "goodput", "core0 (copy)", "busiest split"});
  exp::ScenarioResult with_pairs, without_pairs;

  for (bool paired : {false, true}) {
    exp::ScenarioConfig cfg;
    cfg.mode = exp::Mode::kMflow;
    cfg.protocol = net::Ipv4Header::kProtoTcp;
    cfg.message_size = 65536;
    cfg.measure = measure;
    // Remove the copy-thread and client-side ceilings (the paper's "future
    // work" bottlenecks) so the splitting branches themselves are the
    // constrained resource — the regime where per-branch pipelining matters.
    cfg.costs.copy_per_byte = 0.08;
    cfg.costs.client_tcp_per_seg_overlay = 200;
    cfg.costs.client_per_msg = 800;
    auto mcfg = core::tcp_full_path_config();
    if (!paired) mcfg.pipeline_pairs.clear();
    cfg.mflow = mcfg;
    const auto res = exp::run_scenario(cfg);

    double split_util = 0;
    for (int c : {2, 3})
      split_util = std::max(split_util,
                            res.cores.at(static_cast<std::size_t>(c)).total);
    table.add({paired ? "per-branch pipelining (2->4, 3->5)"
                      : "single core per branch",
               util::fmt_gbps(res.goodput_gbps),
               util::fmt_pct(res.cores.at(0).total),
               util::fmt_pct(split_util)});
    (paired ? with_pairs : without_pairs) = res;
  }
  table.print(std::cout,
              "Ablation: per-branch pipelining (TCP 64KB, IRQ split)");
  std::cout << "\n";

  exp::print_expectations(
      std::cout, "Expectations",
      {{"pipelining helps (paired/unpaired)", 1.15,
        without_pairs.goodput_gbps > 0
            ? with_pairs.goodput_gbps / without_pairs.goodput_gbps
            : 0,
        0.3}});
  return 0;
}
