// Figure 9 reproduction: single-flow per-message latency under load, TCP and
// UDP, across message sizes and modes.
//
// Method (sockperf "overloaded" scenario): each case is first driven to its
// maximum sustainable throughput; the latency run then offers 90% of that
// capacity and reports mean / p50 / p99 message latency.
//
// Paper shape (64KB TCP vs vanilla overlay): MFLOW cuts median latency ~46%
// and p99 ~21%; a gap to native remains (the overlay path is still longer).
#include <iostream>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

namespace {

// Methodology note: the paper drives each case to its own saturation point;
// on real hardware saturation queueing is bounded by ring/backlog sizes and
// drops, so per-packet latency still reflects the data path. In simulation,
// queue depth at saturation is bounded only by the TCP window / pacing, so
// we use the standard equal-load comparison instead: every mode is offered
// the same absolute load — `load_fraction` of the *vanilla overlay*
// capacity, the highest load all overlay modes can sustain. Differences are
// then pure data-path + queueing effects. (Documented in EXPERIMENTS.md.)
exp::ScenarioResult run_loaded(exp::Mode mode, std::uint8_t proto,
                               std::uint32_t size, sim::Time measure,
                               double vanilla_msgs_per_sec,
                               double load_fraction) {
  exp::ScenarioConfig cfg;
  cfg.mode = mode;
  cfg.protocol = proto;
  cfg.message_size = size;
  cfg.measure = measure;
  const int senders = proto == net::Ipv4Header::kProtoTcp ? 1 : 3;
  cfg.pace_per_message = static_cast<sim::Time>(
      1e9 * senders / (vanilla_msgs_per_sec * load_fraction));
  // Latency figures read the trace registry (latency.* gauges) and the
  // per-phase attribution instead of the ad-hoc result fields; sample every
  // 8th packet per flow to bound trace memory at these rates.
  cfg.trace.enabled = true;
  cfg.trace.sample_period = 8;
  return exp::run_scenario(cfg);
}

// Latency numbers come from the registry snapshot; the direct histogram
// fields remain only as the fallback for -DMFLOW_TRACE=OFF builds (the
// snapshot is empty then).
double mean_us(const exp::ScenarioResult& r) {
  return r.stats.empty() ? r.mean_latency_us()
                         : r.stats.gauge("latency.mean_us");
}
double p50_us(const exp::ScenarioResult& r) {
  return r.stats.empty() ? r.p50_latency_us()
                         : r.stats.gauge("latency.p50_us");
}
double p99_us(const exp::ScenarioResult& r) {
  return r.stats.empty() ? r.p99_latency_us()
                         : r.stats.gauge("latency.p99_us");
}

double probe_capacity_msgs(std::uint8_t proto, std::uint32_t size,
                           sim::Time measure) {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kVanilla;
  cfg.protocol = proto;
  cfg.message_size = size;
  cfg.measure = measure;
  const auto probe = exp::run_scenario(cfg);
  return probe.goodput_gbps * 1e9 / 8.0 / static_cast<double>(size);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 30));
  const double load = cli.get_double("load", 0.9);

  std::map<std::pair<std::string, bool>, exp::ScenarioResult> at64k;

  for (std::uint8_t proto :
       {net::Ipv4Header::kProtoTcp, net::Ipv4Header::kProtoUdp}) {
    const bool is_tcp = proto == net::Ipv4Header::kProtoTcp;
    for (std::uint32_t size : {4096u, 65536u}) {
      util::Table table({"mode", "mean (us)", "p50 (us)", "p99 (us)",
                         "offered Gbps"});
      const double cap = probe_capacity_msgs(proto, size, measure);
      for (exp::Mode mode : exp::evaluation_modes()) {
        auto res = run_loaded(mode, proto, size, measure, cap, load);
        table.add({res.mode, util::Table::Cell(mean_us(res), 1),
                   util::Table::Cell(p50_us(res), 1),
                   util::Table::Cell(p99_us(res), 1),
                   util::Table::Cell(res.offered_gbps, 2)});
        if (size == 65536) at64k.insert({{res.mode, is_tcp}, std::move(res)});
      }
      table.print(std::cout, std::string("Fig 9 latency, ") +
                                 (is_tcp ? "TCP" : "UDP") + ", msg=" +
                                 std::to_string(size / 1024) + "KB @" +
                                 std::to_string(static_cast<int>(load * 100)) +
                                 "% load");
      std::cout << "\n";
    }
  }

  const auto& tvan = at64k.at({"vanilla-overlay", true});
  const auto& tmfl = at64k.at({"mflow", true});
  const auto& tnat = at64k.at({"native", true});
  const auto& uvan = at64k.at({"vanilla-overlay", false});
  const auto& umfl = at64k.at({"mflow", false});

  // Where the latency goes: per-phase attribution of the two headline cases.
  exp::print_phase_breakdown(std::cout,
                             "Per-packet phases, TCP 64KB, vanilla-overlay",
                             tvan);
  std::cout << "\n";
  exp::print_phase_breakdown(std::cout, "Per-packet phases, TCP 64KB, mflow",
                             tmfl);
  std::cout << "\n";

  exp::print_expectations(
      std::cout, "Fig 9 shape checks (64KB)",
      {
          {"TCP p50 mflow/vanilla", 0.54,
           p50_us(tvan) > 0 ? p50_us(tmfl) / p50_us(tvan) : 0, 0.5},
          {"TCP p99 mflow/vanilla", 0.79,
           p99_us(tvan) > 0 ? p99_us(tmfl) / p99_us(tvan) : 0, 0.5},
          {"TCP mflow above native (gap remains)", 1.5,
           p50_us(tnat) > 0 ? p50_us(tmfl) / p50_us(tnat) : 0, 1.0},
          {"UDP mean mflow/vanilla < 1", 0.6,
           mean_us(uvan) > 0 ? mean_us(umfl) / mean_us(uvan) : 0, 0.7},
      });
  return 0;
}
