// Figure 7 reproduction: out-of-order packet deliveries at the merge point
// vs micro-flow batch size (TCP, 64KB messages, 2 splitting cores,
// background interference on).
//
// Paper shape: the ooo count falls sharply as batch size grows; at 256+ the
// order-preservation overhead becomes negligible. We report both the raw
// merge-point reordering events and the achieved throughput, plus the
// merge bookkeeping cost per delivered packet.
#include <iostream>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 30));

  util::Table table({"batch", "ooo arrivals", "ooo/pkt %", "batches merged",
                     "goodput"});
  std::vector<std::uint64_t> ooo_series;

  for (std::uint32_t batch : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    exp::ScenarioConfig cfg;
    cfg.protocol = net::Ipv4Header::kProtoTcp;
    cfg.mode = exp::Mode::kMflow;
    cfg.message_size = 65536;
    cfg.measure = measure;
    // Single-device scaling: the splitting cores run below saturation, so
    // reordering comes from batch-boundary skew + interference jitter — the
    // regime of the paper's Figure 7. (Under full-path scaling, very large
    // batches additionally build per-branch queues; see ablate_batch.)
    auto mcfg = core::udp_device_scaling_config();
    mcfg.tcp_in_reader = true;  // TCP still merges before the transport layer
    mcfg.batch_size = batch;
    cfg.mflow = mcfg;

    const auto res = exp::run_scenario(cfg);
    // Packets delivered ~ goodput / MSS over the window.
    const double pkts = res.goodput_gbps * 1e9 / 8.0 *
                        sim::to_seconds(measure) / net::kTcpMss;
    ooo_series.push_back(res.ooo_arrivals);
    table.add({static_cast<int>(batch),
               static_cast<unsigned long long>(res.ooo_arrivals),
               util::Table::Cell(pkts > 0 ? 100.0 * static_cast<double>(
                                                res.ooo_arrivals) / pkts
                                          : 0.0,
                                 2),
               static_cast<unsigned long long>(res.batches_merged),
               util::fmt_gbps(res.goodput_gbps)});
  }
  table.print(std::cout,
              "Fig 7: out-of-order deliveries vs micro-flow batch size "
              "(TCP 64KB, 2 splitting cores)");

  // Shape: monotone-ish decrease, and batch>=256 causes at most a tiny
  // fraction of the batch-8 reordering.
  const double small = static_cast<double>(ooo_series.front());
  const double big = static_cast<double>(ooo_series[5]);  // batch 256
  exp::print_expectations(
      std::cout, "Fig 7 shape checks",
      {{"ooo(256)/ooo(8) << 1", 0.05, small > 0 ? big / small : 0.0, 4.0}});
  return 0;
}
