// Ablation: batch-based reassembly vs the kernel's per-packet out-of-order
// queue (paper §III-B: "'re-ordered' on a per-batch basis ... extremely
// efficient, especially compared to the kernel's existing per-packet
// reordering mechanism").
//
// Variant (a): MFLOW as designed — merge before TCP via the reassembler.
// Variant (b): splitting WITHOUT the reassembler — micro-flows land in the
// softirq TCP stage in whatever order the cores finish, and the kernel ofo
// queue pays tcp_ofo_insert per reordered packet.
#include <iostream>

#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 25));

  util::Table table({"variant", "batch", "goodput", "p99 latency (us)"});

  for (std::uint32_t batch : {16u, 256u}) {
    // (a) batch-based reassembling (merge before the stateful layer).
    {
      exp::ScenarioConfig cfg;
      cfg.mode = exp::Mode::kMflow;
      cfg.protocol = net::Ipv4Header::kProtoTcp;
      cfg.message_size = 65536;
      cfg.measure = measure;
      auto mcfg = core::udp_device_scaling_config();
      mcfg.tcp_in_reader = true;
      mcfg.batch_size = batch;
      cfg.mflow = mcfg;
      const auto res = exp::run_scenario(cfg);
      table.add({"batch-based reassembler", static_cast<int>(batch),
                 util::fmt_gbps(res.goodput_gbps),
                 util::Table::Cell(res.p99_latency_us(), 1)});
    }
    // (b) kernel per-packet ofo queue: split, but no merge buffer — the
    //     softirq TCP stage absorbs the reordering.
    {
      exp::ScenarioConfig cfg;
      cfg.mode = exp::Mode::kMflow;
      cfg.protocol = net::Ipv4Header::kProtoTcp;
      cfg.message_size = 65536;
      cfg.measure = measure;
      auto mcfg = core::udp_device_scaling_config();
      mcfg.tcp_in_reader = false;  // TCP stays in softirq context
      mcfg.batch_size = batch;
      cfg.mflow = mcfg;
      cfg.mflow_reassembler = false;  // the ofo queue absorbs reordering
      const auto res = exp::run_scenario(cfg);
      table.add({"kernel per-packet ofo queue", static_cast<int>(batch),
                 util::fmt_gbps(res.goodput_gbps),
                 util::Table::Cell(res.p99_latency_us(), 1)});
    }
  }
  table.print(std::cout,
              "Ablation: reassembly mechanism (TCP 64KB, device split)");
  std::cout << "\nExpected: the reassembler matches or beats the ofo queue, "
               "most visibly at small batch sizes where reordering is "
               "frequent.\n";
  return 0;
}
