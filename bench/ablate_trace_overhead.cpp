// Ablation: what does per-packet tracing cost?
//
// Runs the fig08-style TCP throughput scenario three ways and compares
// *wall-clock* simulation time (virtual-time results are identical by
// construction — the tracer never schedules events or charges CPU):
//
//   off        tracing compiled in, TraceConfig.enabled = false — the
//              default everyone pays: one global load + branch per
//              tracepoint
//   on         tracing enabled, every packet sampled
//   sampled    tracing enabled, every 64th packet per flow
//
// Build with -DMFLOW_TRACE=OFF and rerun to measure the compiled-out
// baseline (the binary prints which variant it is). The guard test
// (tests/test_trace.cpp) separately asserts the virtual-time results agree
// within the 2% acceptance bound.
#include <chrono>
#include <iostream>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

namespace {

struct Run {
  std::string label;
  double wall_s = 0.0;
  double goodput = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t events_recorded = 0;
};

Run timed(const std::string& label, exp::ScenarioConfig cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = exp::run_scenario(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  Run r;
  r.label = label;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.goodput = res.goodput_gbps;
  r.messages = res.messages;
  r.events_recorded = res.tracer ? res.tracer->recorded() : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 30));
  const int reps = static_cast<int>(cli.get_double("reps", 3));

  std::cout << "tracing "
            << (trace::compiled_in() ? "compiled in" : "COMPILED OUT")
            << " (rebuild with -DMFLOW_TRACE=OFF for the other variant)\n\n";

  exp::ScenarioConfig base;
  base.mode = exp::Mode::kMflow;
  base.measure = measure;

  auto best_of = [&](const std::string& label, exp::ScenarioConfig cfg) {
    Run best = timed(label, cfg);
    for (int i = 1; i < reps; ++i) {
      Run r = timed(label, cfg);
      if (r.wall_s < best.wall_s) best = r;
    }
    return best;
  };

  exp::ScenarioConfig on = base;
  on.trace.enabled = true;
  exp::ScenarioConfig sampled = base;
  sampled.trace.enabled = true;
  sampled.trace.sample_period = 64;

  const Run off = best_of("off", base);
  const Run full = best_of("on", on);
  const Run samp = best_of("sampled /64", sampled);

  util::Table t({"variant", "wall s", "vs off", "goodput", "msgs",
                 "events recorded"});
  for (const Run& r : {off, full, samp}) {
    t.add({r.label, util::Table::Cell(r.wall_s, 3),
           util::Table::Cell(off.wall_s > 0 ? r.wall_s / off.wall_s : 0.0, 2),
           util::fmt_gbps(r.goodput), r.messages, r.events_recorded});
  }
  t.print(std::cout, "Trace overhead ablation (best of " +
                         std::to_string(reps) + ", fig08 TCP scenario)");

  // Virtual-time invariance: the same messages must come out regardless.
  std::cout << "\nvirtual-time invariance: "
            << (off.messages == full.messages &&
                        off.messages == samp.messages
                    ? "OK (identical message counts)"
                    : "VIOLATED")
            << "\n";
  return 0;
}
