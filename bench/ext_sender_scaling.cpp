// Extension (paper §VII future work): the sender side.
//
// With MFLOW on the receiver, the paper's UDP clients throttle on their own
// overlay egress path (veth -> bridge -> VXLAN encap -> IP -> driver TX).
// Here that path is modeled as a real pipeline on the client machine
// (workload/txhost.hpp), and MFLOW's flow-splitting function is applied to
// the *egress* side too: encapsulation of a single flow spreads over client
// cores, with batch-based reassembly before the wire.
//
// Expected: single-core TX caps the offered load; MFLOW-TX roughly doubles
// it, shifting the end-to-end bottleneck back to the receiver.
#include <iostream>

#include "core/mflow.hpp"
#include "overlay/topology.hpp"
#include "steering/modes.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/txhost.hpp"

using namespace mflow;

namespace {

struct RunResult {
  double offered_gbps;
  double delivered_gbps;
  double sender_app_core_util;
  double sender_max_split_util;
};

RunResult run_case(bool mflow_tx, sim::Time measure) {
  sim::Simulator sim(17);

  // --- receiver: MFLOW UDP device scaling (the paper's best RX config) ---
  stack::MachineParams mp;
  mp.num_cores = 16;
  mp.irq_affinity = {1};
  stack::Machine rx(sim, mp);
  overlay::PathSpec spec;
  spec.protocol = net::Ipv4Header::kProtoUdp;
  rx.set_path(overlay::build_rx_path(rx.costs(), spec));
  rx.set_steering(steer::make_policy(exp::Mode::kVanilla));
  stack::SocketConfig sc;
  sc.protocol = net::Ipv4Header::kProtoUdp;
  sc.message_size = 65536;
  rx.add_socket(5000, sc);
  rx.start();
  auto mcfg = core::udp_device_scaling_config();
  mcfg.splitting_cores = {2, 3, 4};
  core::MflowEngine engine(rx, mcfg);
  engine.attach_socket(5000, rx.socket(5000));
  engine.install();

  // --- sender: detailed TX host ------------------------------------------
  workload::WireLink wire(sim, rx, rx.costs().wire_latency);
  workload::TxHost::Config tc;
  tc.mflow_tx = mflow_tx;
  tc.flow = net::FlowKey{net::Ipv4Addr(10, 0, 1, 2),
                         net::Ipv4Addr(10, 0, 1, 3), 41000, 5000,
                         net::Ipv4Header::kProtoUdp};
  tc.outer_src = net::Ipv4Addr(192, 168, 1, 2);
  tc.outer_dst = net::Ipv4Addr(192, 168, 1, 3);
  workload::TxHost tx(sim, tc, wire);
  tx.start();

  const sim::Time warmup = sim::ms(5);
  sim.run_until(warmup);
  rx.reset_measurement();
  for (int c = 0; c < tc.cores; ++c) tx.machine().core(c).reset_accounting();
  const auto bytes0 = rx.socket(5000).stats().payload_bytes;
  (void)bytes0;  // stats were just reset
  sim.run_until(warmup + measure);

  RunResult res;
  res.delivered_gbps =
      static_cast<double>(rx.socket(5000).stats().payload_bytes) * 8.0 /
      sim::to_seconds(measure) / 1e9;
  res.offered_gbps = tx.offered_gbps(measure + warmup);  // approx: cumulative
  res.sender_app_core_util = tx.machine().core(0).utilization(measure);
  res.sender_max_split_util =
      std::max(tx.machine().core(1).utilization(measure),
               tx.machine().core(2).utilization(measure));
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 25));

  util::Table table({"sender egress", "delivered", "sender app core",
                     "busiest encap core"});
  const auto single = run_case(false, measure);
  const auto split = run_case(true, measure);
  table.add({"single core (stock)", util::fmt_gbps(single.delivered_gbps),
             util::fmt_pct(single.sender_app_core_util),
             util::fmt_pct(single.sender_max_split_util)});
  table.add({"MFLOW-TX (encap split over 2 cores)",
             util::fmt_gbps(split.delivered_gbps),
             util::fmt_pct(split.sender_app_core_util),
             util::fmt_pct(split.sender_max_split_util)});
  table.print(std::cout,
              "Extension: sender-side MFLOW (single UDP elephant flow)");
  std::cout << "\nSpeedup from splitting the sender's encapsulation path: "
            << (single.delivered_gbps > 0
                    ? split.delivered_gbps / single.delivered_gbps
                    : 0)
            << "x\n";
  return 0;
}
