// Figure 11 reproduction: CloudSuite-style Web Serving with 200 users,
// comparing vanilla overlay / FALCON / MFLOW on the web host.
//
//   11a: successful operations per second, per operation type;
//   11b: average response time per operation type;
//   11c: average delay (response - target) per operation type.
//
// Paper anchors: MFLOW improves the success rate 2.3x-7.5x over vanilla and
// 1.5x-3.6x over FALCON; response time drops 35-65% vs vanilla; delay drops
// up to 75% vs vanilla.
#include <iostream>

#include "experiment/report.hpp"
#include "experiment/webserving.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);

  std::vector<exp::WebservingResult> results;
  for (exp::Mode mode :
       {exp::Mode::kVanilla, exp::Mode::kFalconDev, exp::Mode::kMflow}) {
    exp::WebservingConfig cfg;
    cfg.mode = mode;
    cfg.users = static_cast<int>(cli.get_int("users", 200));
    cfg.measure = sim::ms(cli.get_double("measure-ms", 50));
    results.push_back(exp::run_webserving(cfg));
  }

  util::Table ops11a({"operation", "vanilla (ops/s)", "falcon (ops/s)",
                      "mflow (ops/s)", "mflow/vanilla", "mflow/falcon"});
  util::Table resp11b({"operation", "vanilla (us)", "falcon (us)",
                       "mflow (us)"});
  util::Table delay11c({"operation", "vanilla (us)", "falcon (us)",
                        "mflow (us)"});
  for (std::size_t i = 0; i < results[0].per_op.size(); ++i) {
    const auto& v = results[0].per_op[i];
    const auto& f = results[1].per_op[i];
    const auto& m = results[2].per_op[i];
    ops11a.add({v.name, util::Table::Cell(v.success_per_sec, 0),
                util::Table::Cell(f.success_per_sec, 0),
                util::Table::Cell(m.success_per_sec, 0),
                util::Table::Cell(v.success_per_sec > 0
                                      ? m.success_per_sec / v.success_per_sec
                                      : 0.0,
                                  2),
                util::Table::Cell(f.success_per_sec > 0
                                      ? m.success_per_sec / f.success_per_sec
                                      : 0.0,
                                  2)});
    resp11b.add({v.name, util::Table::Cell(v.response_us.mean(), 0),
                 util::Table::Cell(f.response_us.mean(), 0),
                 util::Table::Cell(m.response_us.mean(), 0)});
    delay11c.add({v.name, util::Table::Cell(v.delay_us.mean(), 0),
                  util::Table::Cell(f.delay_us.mean(), 0),
                  util::Table::Cell(m.delay_us.mean(), 0)});
  }
  ops11a.print(std::cout, "Fig 11a: successful operation rate (200 users)");
  std::cout << "\n";
  resp11b.print(std::cout, "Fig 11b: average response time");
  std::cout << "\n";
  delay11c.print(std::cout, "Fig 11c: average delay time");
  std::cout << "\n";

  util::Table totals({"mode", "success ops/s", "all ops/s", "success frac",
                      "avg resp (us)", "backend Gbps"});
  for (const auto& r : results)
    totals.add({r.mode, util::Table::Cell(r.success_per_sec, 0),
                util::Table::Cell(r.ops_per_sec, 0),
                util::fmt_pct(r.success_fraction),
                util::Table::Cell(r.avg_response_us, 0),
                util::Table::Cell(r.backend_goodput_gbps, 2)});
  totals.print(std::cout, "Aggregate");
  std::cout << "\n";

  const auto& van = results[0];
  const auto& fal = results[1];
  const auto& mfl = results[2];
  exp::print_expectations(
      std::cout, "Fig 11 shape checks",
      {
          {"success rate mflow/vanilla (2.3x-7.5x)", 4.0,
           van.success_per_sec > 0
               ? mfl.success_per_sec / van.success_per_sec
               : 99.0,
           0.9},
          {"success rate mflow/falcon (1.5x-3.6x)", 2.5,
           fal.success_per_sec > 0
               ? mfl.success_per_sec / fal.success_per_sec
               : 99.0,
           0.9},
          {"avg response mflow/vanilla (0.35-0.65)", 0.50,
           van.avg_response_us > 0
               ? mfl.avg_response_us / van.avg_response_us
               : 0.0,
           0.7},
          {"avg delay mflow/vanilla (<=0.65)", 0.35,
           van.avg_delay_us > 0 ? mfl.avg_delay_us / van.avg_delay_us : 0.0,
           1.2},
      });
  return 0;
}
