// Figure 4 reproduction: the motivation study.
//
//   4a: single-flow throughput of native / vanilla overlay / RPS /
//       FALCON-dev / FALCON-fun for TCP and UDP across message sizes.
//   4b: per-core CPU utilization breakdown at 64KB for each case, showing
//       which core saturates and why (the softirq pile-up on core one).
//
// Paper anchors: overlay loses ~40% (TCP) / ~80% (UDP) vs native; RPS helps
// a little (+24% TCP, +6% UDP); FALCON-dev helps UDP (+80%) but not TCP;
// FALCON-fun adds ~+20% TCP over RPS. Known modeling deviation: our
// FALCON-dev TCP lands above RPS (see EXPERIMENTS.md).
#include <iostream>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 30));
  const bool cpu = cli.get_bool("cpu", true);

  const std::vector<std::uint32_t> sizes = {16, 1024, 4096, 16384, 65536};
  std::map<std::pair<std::string, bool>, double> at64k;

  for (std::uint8_t proto :
       {net::Ipv4Header::kProtoTcp, net::Ipv4Header::kProtoUdp}) {
    const bool is_tcp = proto == net::Ipv4Header::kProtoTcp;
    std::vector<std::string> headers = {"mode"};
    for (auto s : sizes)
      headers.push_back(s >= 1024 ? std::to_string(s / 1024) + "KB"
                                  : std::to_string(s) + "B");
    util::Table table(std::move(headers));

    for (exp::Mode mode : exp::motivation_modes()) {
      std::vector<std::string> row{std::string(exp::mode_name(mode))};
      for (std::uint32_t size : sizes) {
        exp::ScenarioConfig cfg;
        cfg.mode = mode;
        cfg.protocol = proto;
        cfg.message_size = size;
        cfg.measure = measure;
        const auto res = exp::run_scenario(cfg);
        row.push_back(util::Table::Cell(res.goodput_gbps, 2).text);
        if (size == 65536) at64k[{res.mode, is_tcp}] = res.goodput_gbps;

        if (cpu && size == 65536) {
          exp::print_core_breakdown(
              std::cout,
              "Fig 4b CPU breakdown: " + res.mode + " " +
                  (is_tcp ? "TCP" : "UDP") + " 64KB",
              res, /*max_cores=*/6);
          std::cout << "\n";
        }
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout,
                std::string("Fig 4a throughput (Gbps), ") +
                    (is_tcp ? "TCP" : "UDP"));
    std::cout << "\n";
  }

  const double tn = at64k[{"native", true}], tv = at64k[{"vanilla-overlay", true}];
  const double tr = at64k[{"rps", true}], tff = at64k[{"falcon-fun", true}];
  const double un = at64k[{"native", false}], uv = at64k[{"vanilla-overlay", false}];
  const double ur = at64k[{"rps", false}], ufd = at64k[{"falcon-dev", false}];
  exp::print_expectations(
      std::cout, "Fig 4 shape checks (64KB)",
      {
          {"TCP overlay drop (vanilla/native)", 0.60, tv / tn, 0.25},
          {"UDP overlay drop (vanilla/native)", 0.20, uv / un, 0.80},
          {"TCP rps/vanilla", 1.24, tr / tv, 0.20},
          {"UDP rps/vanilla", 1.06, ur / uv, 0.20},
          {"UDP falcon-dev/vanilla", 1.80, ufd / uv, 0.30},
          {"TCP falcon-fun/rps", 1.20, tff / tr, 0.40},
      });
  return 0;
}
