// Extension (paper §VII future work): the receiver-side single
// data-copying thread is MFLOW's new bottleneck at ~30 Gbps. This bench
// implements and evaluates the obvious fix — parallel reader (copy)
// threads on multiple application cores — and shows the single elephant
// flow scaling beyond the paper's 29.8 Gbps ceiling until the next
// resource (splitting branches / clients) binds.
#include <iostream>

#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 25));

  util::Table table({"reader threads", "goodput", "copy-core utils",
                     "busiest kernel core"});
  for (int readers = 1; readers <= 4; ++readers) {
    exp::ScenarioConfig cfg;
    cfg.mode = exp::Mode::kMflow;
    cfg.protocol = net::Ipv4Header::kProtoTcp;
    cfg.message_size = 65536;
    cfg.measure = measure;
    // Lift the client-side ceiling so receiver scaling is visible.
    cfg.costs.client_tcp_per_seg_overlay = 180;
    cfg.costs.client_per_msg = 800;
    cfg.mflow = core::tcp_full_path_config();
    cfg.extra_reader_cores.clear();
    // Reader 0 on core 0; extras on cores 6,7,8 (outside the split lanes).
    for (int r = 1; r < readers; ++r)
      cfg.extra_reader_cores.push_back(5 + r);
    const auto res = exp::run_scenario(cfg);

    std::string copies;
    for (int c : {0, 6, 7, 8}) {
      const double u = res.cores.at(static_cast<std::size_t>(c)).total;
      if (u > 0.01)
        copies += "c" + std::to_string(c) + "=" +
                  std::to_string(static_cast<int>(u * 100)) + "% ";
    }
    double busiest = 0;
    for (int c = 1; c <= 5; ++c)
      busiest = std::max(busiest,
                         res.cores.at(static_cast<std::size_t>(c)).total);
    table.add({readers, util::fmt_gbps(res.goodput_gbps), copies,
               util::fmt_pct(busiest)});
  }
  table.print(std::cout,
              "Extension: parallel data-copy threads (TCP 64KB, MFLOW "
              "full-path)");
  std::cout << "\n1 reader reproduces the paper's copy-thread ceiling; more "
               "readers push the single\nflow further until the splitting "
               "branches saturate.\n";
  return 0;
}
