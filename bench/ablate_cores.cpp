// Ablation: number of splitting cores (paper §III-A: "the performance
// benefit may diminish as the core number increases").
//
// Expected shape: 1 -> 2 splitting cores is the big win (the paper's
// default); beyond that, returns diminish because a different resource (the
// copy thread / the clients) becomes the bottleneck.
#include <iostream>

#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 25));

  for (std::uint8_t proto :
       {net::Ipv4Header::kProtoTcp, net::Ipv4Header::kProtoUdp}) {
    const bool is_tcp = proto == net::Ipv4Header::kProtoTcp;
    util::Table table({"splitting cores", "goodput", "max core util",
                       "bottleneck"});
    for (int cores = 1; cores <= 6; ++cores) {
      exp::ScenarioConfig cfg;
      cfg.mode = exp::Mode::kMflow;
      cfg.protocol = proto;
      cfg.message_size = 65536;
      cfg.measure = measure;
      core::MflowConfig mcfg = is_tcp ? core::tcp_full_path_config()
                                      : core::udp_device_scaling_config();
      mcfg.pipeline_pairs.clear();  // isolate the core-count effect
      mcfg.splitting_cores.clear();
      for (int c = 0; c < cores; ++c) mcfg.splitting_cores.push_back(2 + c);
      cfg.mflow = mcfg;
      const auto res = exp::run_scenario(cfg);

      int busiest = 0;
      double best = 0;
      for (const auto& c : res.cores)
        if (c.total > best) {
          best = c.total;
          busiest = c.core_id;
        }
      table.add({cores, util::fmt_gbps(res.goodput_gbps),
                 util::fmt_pct(res.max_core_utilization()),
                 std::string("core ") + std::to_string(busiest)});
    }
    table.print(std::cout, std::string("Ablation: splitting cores, ") +
                               (is_tcp ? "TCP" : "UDP") + " 64KB");
    std::cout << "\n";
  }
  return 0;
}
