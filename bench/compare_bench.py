#!/usr/bin/env python3
"""Compare BENCH_*.json results against a baseline directory.

Usage:
    compare_bench.py BASELINE_DIR NEW_DIR [--tolerance 0.15] [--strict]

For every BENCH_<name>.json present in BOTH directories, each case is
compared direction-aware: a throughput case (higher_is_better) regresses
when new < baseline * (1 - tolerance); a latency case regresses when
new > baseline * (1 + tolerance). Exit code 1 if any case regresses.

A bench or case present in the BASELINE but missing from the new run is a
hard failure (exit 1): a silently skipped benchmark would hide exactly the
regression the guard exists to catch. Benches/cases present only in the
new run are warnings (they don't fail the run unless --strict is given) so
adding a bench case does not break CI until the baseline is refreshed —
see docs/BENCHMARKS.md for the refresh procedure.
"""

import argparse
import json
import re
import sys
from pathlib import Path


def load_benches(directory: Path) -> dict:
    benches = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path) as f:
            data = json.load(f)
        benches[data.get("bench", path.stem)] = data
    return benches


def compare_case(base: dict, new: dict, tolerance: float):
    """Returns (status, ratio) with status in {ok, regression, improvement}."""
    b, n = base["best"], new["best"]
    higher = base.get("higher_is_better", True)
    if b == 0:
        return ("ok", float("nan"))
    ratio = n / b
    if higher:
        if ratio < 1 - tolerance:
            return ("regression", ratio)
        if ratio > 1 + tolerance:
            return ("improvement", ratio)
    else:
        if ratio > 1 + tolerance:
            return ("regression", ratio)
        if ratio < 1 - tolerance:
            return ("improvement", ratio)
    return ("ok", ratio)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline_dir", type=Path)
    ap.add_argument("new_dir", type=Path)
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative change before a case counts as a "
                         "regression (default 0.15 = 15%%)")
    ap.add_argument("--strict", action="store_true",
                    help="missing/new cases and files fail the run too")
    args = ap.parse_args()

    baselines = load_benches(args.baseline_dir)
    news = load_benches(args.new_dir)
    if not baselines:
        print(f"error: no BENCH_*.json in {args.baseline_dir}")
        return 1

    regressions, missing, warnings = [], [], []
    rows = []  # every compared case, for the end-of-run summary table
    for bench_name, base in sorted(baselines.items()):
        new = news.get(bench_name)
        if new is None:
            missing.append(f"bench '{bench_name}' missing from {args.new_dir}")
            continue
        base_cases = {c["name"]: c for c in base.get("results", [])}
        new_cases = {c["name"]: c for c in new.get("results", [])}
        for name, bcase in sorted(base_cases.items()):
            ncase = new_cases.get(name)
            if ncase is None:
                missing.append(f"{bench_name}: case '{name}' missing from new run")
                continue
            status, ratio = compare_case(bcase, ncase, args.tolerance)
            unit = bcase.get("unit", "")
            # Direction-normalized severity: how far the case moved in the
            # REGRESSING direction (positive = worse), regardless of whether
            # higher or lower is better for it.
            if ratio == ratio:  # not NaN
                worse = (1 - ratio) if bcase.get("higher_is_better", True) \
                    else (ratio - 1)
                rows.append((worse, f"{bench_name}/{name}", bcase["best"],
                             ncase["best"], unit, status))
            line = (f"{bench_name}/{name}: {bcase['best']:.6g} -> "
                    f"{ncase['best']:.6g} {unit} ({ratio:+.1%} of baseline)")
            if status == "regression":
                regressions.append(line)
                print(f"REGRESSION  {line}")
            elif status == "improvement":
                print(f"improved    {line}")
            else:
                print(f"ok          {line}")
        for name in sorted(set(new_cases) - set(base_cases)):
            warnings.append(f"{bench_name}: new case '{name}' not in baseline "
                            f"(refresh the baseline to track it)")
    for bench_name in sorted(set(news) - set(baselines)):
        warnings.append(f"bench '{bench_name}' has no checked-in baseline")

    for m in missing:
        print(f"MISSING     {m}")
    for w in warnings:
        print(f"warning     {w}")

    # End-of-run summary: the cases that moved furthest in the regressing
    # direction, worst first, so a long scroll of per-case lines never buries
    # the headline. Shown whenever anything moved at all.
    movers = sorted((r for r in rows if r[0] > 0), reverse=True)[:10]
    if movers:
        print("\nworst regressions (direction-normalized, worst first):")
        name_w = max(len(r[1]) for r in movers)
        print(f"  {'case':<{name_w}}  {'baseline':>12}  {'new':>12}  "
              f"{'change':>8}  flag")
        for worse, name, b, n, unit, status in movers:
            flag = "REGRESSION" if status == "regression" else ""
            print(f"  {name:<{name_w}}  {b:>12.6g}  {n:>12.6g}  "
                  f"{-worse:>+7.1%}  {flag}".rstrip())

    # Elastic SLO-vs-cost view: workloads following the autoscaler naming
    # convention (`<wl>/slo_attainment` paired with `<wl>/core_seconds_frac`
    # in the same bench) summarized as attainment per core-seconds fraction
    # — the "how much SLO does each provisioned core-second buy" ratio.
    # > 1 means the autoscaled run beats proportional provisioning; a drop
    # between baseline and new that the per-case tolerances individually
    # missed still shows up here.
    slo, frac = {}, {}
    for worse, name, b, n, unit, status in rows:
        if name.endswith("/slo_attainment"):
            slo[name.rsplit("/", 1)[0]] = (b, n)
        elif name.endswith("/core_seconds_frac"):
            frac[name.rsplit("/", 1)[0]] = (b, n)
    paired = sorted(set(slo) & set(frac))
    if paired:
        print("\nSLO attainment per core-seconds fraction "
              "(elastic efficiency, higher is better):")
        name_w = max(len(p) for p in paired)
        print(f"  {'workload':<{name_w}}  {'baseline':>9}  {'new':>9}")
        for p in paired:
            sb, sn = slo[p]
            fb, fn = frac[p]
            eb = sb / fb if fb else float("nan")
            en = sn / fn if fn else float("nan")
            print(f"  {p:<{name_w}}  {eb:>9.3f}  {en:>9.3f}")

    # Per-worker-count view: cases following the sweep naming convention
    # (`...w<N>` as a dotted component, e.g. engine.cost200.w4 or
    # prof.w4.pps) grouped by N, so a scaling regression confined to one
    # worker count reads as such instead of being buried among scalar
    # cases. Shown whenever any sweep case was compared.
    by_workers = {}
    for row in rows:
        m = re.search(r"\.w(\d+)(?:\.|$)", row[1])
        if m:
            by_workers.setdefault(int(m.group(1)), []).append(row)
    if by_workers:
        print("\nper-worker-count summary:")
        print(f"  {'workers':>7}  {'cases':>5}  {'regressed':>9}  "
              f"worst case (change)")
        for n in sorted(by_workers):
            group = by_workers[n]
            regressed = sum(1 for r in group if r[5] == "regression")
            worst = max(group, key=lambda r: r[0])
            worst_txt = (f"{worst[1]} ({-worst[0]:+.1%})"
                         if worst[0] > 0 else "-")
            print(f"  {n:>7}  {len(group):>5}  {regressed:>9}  {worst_txt}")

    failed = False
    if missing:
        print(f"\n{len(missing)} baseline bench(es)/case(s) missing from the "
              f"new run — a skipped benchmark cannot prove the absence of a "
              f"regression; run it, or remove it from the baseline if it was "
              f"retired on purpose")
        failed = True
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance")
        failed = True
    if failed:
        return 1
    if args.strict and warnings:
        print(f"\n--strict: {len(warnings)} warning(s) treated as failure")
        return 1
    print("\nall benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
