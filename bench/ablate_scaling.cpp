// Scaling ablation for the rt engine: worker-count sweep with
// scaling-efficiency curves, plus a profiled run whose lost-throughput
// attribution is checked against the measured loss.
//
// This is a CI perf-smoke bench: BENCH_ablate_scaling.json is compared
// against bench/baselines/scaling/BENCH_ablate_scaling.json by
// bench/compare_bench.py at a wide tolerance (throughput and efficiency
// are machine-dependent — see docs/BENCHMARKS.md for the refresh
// procedure). Cases:
//
//   engine.cost{0,200}.w<N>      sweep throughput at N workers
//   engine.cost{0,200}.eff.w<N>  scaling efficiency vs linear from w1
//   faults.recycle_ring_share    drop-return fan-in: slabs returned via
//                                per-worker rings / all drop returns
//   prof.w<N>.pps                throughput with the profiler enabled
//   prof.attr_gap.w<N>           |1 - attribution coverage| — how much of
//                                the lost throughput the profiler's named
//                                contention points fail to explain.
//                                EMITTED ONLY when the host has >= N+2
//                                logical CPUs (the pipeline needs its own
//                                CPU per thread for stall attribution to
//                                mean anything); on smaller hosts the case
//                                is absent and compare_bench treats it as
//                                new/missing-in-baseline accordingly.
//
// Flags (beyond the usual --warmup/--repeats/--json-dir):
//   --max-workers=N           clip the sweep (default 4)
//   --pin=0                   disable topology pinning for profiled runs
//   --enforce-attribution     exit 1 when a prof.attr_gap case (on capable
//                             hardware) exceeds 0.10 — the CI guard from
//                             docs/SCALING.md §5
//   --enforce-scaling=X       exit 1 when the cost200 w4/w1 speedup is
//                             below X (checked only with >= 6 CPUs)
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "rt/engine.hpp"
#include "rt/profiler.hpp"
#include "util/cli.hpp"

using namespace mflow;
using namespace mflow::rt;

namespace {

EngineConfig base_cfg(std::size_t workers, std::uint32_t cost_ns, bool pin) {
  EngineConfig cfg;
  cfg.workers = workers;
  cfg.batch_size = 256;
  cfg.cost_ns_per_packet = cost_ns;
  cfg.topology.pin_threads = pin;
  return cfg;
}

/// Lossless pipeline run; order/conservation violations are fatal (a
/// scaling number from a broken run is worse than no number).
EngineResult run_checked(const EngineConfig& cfg, std::uint64_t total) {
  Engine engine(cfg);
  EngineResult res = engine.run(total);
  if (!res.in_order ||
      (cfg.fault_drop_rate <= 0.0 && res.packets_dropped != 0)) {
    std::cerr << "ablate_scaling: engine run violated order/conservation\n";
    std::exit(1);
  }
  return res;
}

double engine_pps(std::size_t workers, std::uint32_t cost_ns,
                  std::uint64_t total, bool pin) {
  return run_checked(base_cfg(workers, cost_ns, pin), total)
      .packets_per_second();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::HarnessConfig hc;
  hc.bench_name = "ablate_scaling";
  hc.warmup = static_cast<int>(cli.get_int("warmup", 1));
  hc.repeats = static_cast<int>(cli.get_int("repeats", 3));
  hc.json_dir = cli.get("json-dir", ".");
  const std::uint64_t pkts_c0 =
      static_cast<std::uint64_t>(cli.get_int("packets-cost0", 200'000));
  const std::uint64_t pkts_c200 =
      static_cast<std::uint64_t>(cli.get_int("packets-cost200", 20'000));
  const std::size_t max_workers =
      static_cast<std::size_t>(cli.get_int("max-workers", 4));
  const bool pin = cli.get_bool("pin", true);
  const bool enforce_attr = cli.has("enforce-attribution");
  const double enforce_scaling = cli.get_double("enforce-scaling", 0.0);
  const unsigned cpus = std::thread::hardware_concurrency();

  std::vector<std::size_t> counts;
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}})
    if (n <= max_workers) counts.push_back(n);

  hc.config = {{"packets_cost0", std::to_string(pkts_c0)},
               {"packets_cost200", std::to_string(pkts_c200)},
               {"max_workers", std::to_string(max_workers)},
               {"pin", pin ? "1" : "0"},
               {"host_cpus", std::to_string(cpus)},
               {"batch_size", "256"}};
  bench::Harness h(hc);

  // Worker-count sweeps: throughput per count plus the derived
  // scaling-efficiency curve (run_sweep records both case families).
  h.run_sweep("engine.cost0", "pkts/s", true, counts,
              [&](std::size_t n) { return engine_pps(n, 0, pkts_c0, pin); });
  const std::vector<double> c200 = h.run_sweep(
      "engine.cost200", "pkts/s", true, counts,
      [&](std::size_t n) { return engine_pps(n, 200, pkts_c200, pin); });

  // Drop-return fan-in health: under injected faults, what fraction of
  // dropped slabs went back through the per-worker SPSC rings instead of
  // CAS-contending on the pool free list.
  h.run_case("faults.recycle_ring_share", "ratio", true, [&] {
    EngineConfig cfg = base_cfg(2, 0, pin);
    cfg.fault_drop_rate = 0.05;
    const EngineResult res = run_checked(cfg, pkts_c0 / 2);
    const double total_returns = static_cast<double>(
        res.recycle_ring_returns + res.recycle_cas_fallbacks);
    return total_returns > 0
               ? static_cast<double>(res.recycle_ring_returns) / total_returns
               : 1.0;
  });

  // Profiled runs: anchor at 1 worker, then attribute each multi-worker
  // run's lost throughput to the profiler's named contention points. The
  // gap |1 - coverage| is the profiler's own acceptance metric — but only
  // on hosts where every pipeline thread gets its own CPU.
  const auto profiled_best = [&](std::size_t n) {
    EngineConfig cfg = base_cfg(n, 200, pin);
    cfg.profile = true;
    EngineResult best;
    for (int r = 0; r < std::max(1, hc.repeats); ++r) {
      EngineResult res = run_checked(cfg, pkts_c200);
      if (r == 0 || res.packets_per_second() > best.packets_per_second())
        best = std::move(res);
    }
    return best;
  };
  const EngineResult anchor = profiled_best(1);
  const double anchor_pps = anchor.packets_per_second();
  h.record("prof.w1.pps", "pkts/s", true, anchor_pps);

  bool attr_failed = false;
  EngineResult last;
  ScalingAttribution last_attr;
  for (std::size_t n : counts) {
    if (n == 1) continue;
    EngineResult res = profiled_best(n);
    const double pps = res.packets_per_second();
    h.record("prof.w" + std::to_string(n) + ".pps", "pkts/s", true, pps);
    ScalingAttribution attr =
        attribute_scaling(res.profile, anchor_pps, pps);
    const bool hw_ok = cpus >= n + 2;
    if (hw_ok) {
      // Tiny losses make coverage a ratio of near-zeros; near-linear
      // scaling counts as fully explained.
      const double gap = attr.lost_pps < 0.05 * attr.ideal_pps
                             ? 0.0
                             : std::fabs(1.0 - attr.coverage);
      h.record("prof.attr_gap.w" + std::to_string(n), "frac", false, gap);
      if (enforce_attr && gap > 0.10) {
        std::cerr << "ablate_scaling: attribution gap " << gap << " at w"
                  << n << " exceeds 0.10\n";
        attr_failed = true;
      }
    }
    last = std::move(res);
    last_attr = std::move(attr);
  }
  if (last.profile.enabled)
    std::cout << format_profile(last.profile, &last_attr)
              << "threads pinned in last profiled run: "
              << last.threads_pinned << "\n";

  h.finish(std::cout);

  if (attr_failed) return 1;
  if (enforce_scaling > 0.0 && cpus >= 6 && counts.back() == 4 &&
      c200.size() == counts.size() && c200.front() > 0.0) {
    const double speedup = c200.back() / c200.front();
    if (speedup < enforce_scaling) {
      std::cerr << "ablate_scaling: cost200 w4/w1 speedup " << speedup
                << " below required " << enforce_scaling << "\n";
      return 1;
    }
  }
  return 0;
}
