// Ablation: packet loss vs micro-flow batch size.
//
// The paper's reassembler assumes the splitting-core -> merge-point handoff
// is lossless; this sweep injects drops there (splitting-queue deposit and
// inter-core handoff) and measures what loss tolerance costs. Goodput,
// recovered segments, evictions, and late (out-of-order) deliveries together
// show the degradation staying graceful — the seed behaviour was a permanent
// per-flow wedge on the first loss.
//
// The sweep runs UDP (sockperf-style, device scaling): with no transport
// retransmission, goodput degrades in proportion to the injected loss, so
// the merge layer's own behaviour is visible. Under TCP the go-back-N
// sender model collapses offered load at these loss rates (every hole costs
// a full RTO), drowning the signal this ablation is after.
#include <iostream>
#include <string>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

namespace {

// Recovery stats come from the trace registry snapshot; the result-struct
// fields remain only as the -DMFLOW_TRACE=OFF fallback.
unsigned long long stat(const exp::ScenarioResult& r, std::string_view name,
                        std::uint64_t fallback) {
  return r.stats.empty() ? fallback : r.stats.counter(name);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 25));
  const double corrupt = cli.get_double("corrupt", 0.0);
  // A slice of packets delayed past the eviction timeout: the only way a
  // loss reaches the merge point unannounced (drops at these points are
  // retracted synchronously), so this is what makes the eviction backstop
  // and its recovery latency visible in the sweep.
  const double delay = cli.get_double("delay", 0.001);

  exp::ScenarioResult phase_case;
  for (std::uint32_t batch : {32u, 256u, 1024u}) {
    util::Table table({"loss %", "goodput", "offered", "recovered segs",
                       "evictions", "recovery mean (us)", "late deliveries",
                       "ooo arrivals", "p99 latency (us)"});
    for (double loss : {0.0, 0.001, 0.01, 0.05}) {
      exp::ScenarioConfig cfg;
      cfg.mode = exp::Mode::kMflow;
      cfg.protocol = net::Ipv4Header::kProtoUdp;
      cfg.message_size = 1448;  // one datagram per message: per-packet loss
                                // costs one message, not a whole 64K batch
      cfg.measure = measure;
      core::MflowConfig mcfg = core::udp_device_scaling_config();
      mcfg.batch_size = batch;
      cfg.mflow = mcfg;
      cfg.faults.split_queue.drop = loss;
      cfg.faults.split_queue.delay = delay;
      cfg.faults.split_queue.delay_ns = sim::ms(2);  // > eviction timeout
      // Corruption goes on the split queue: in MFLOW mode the splitter hook
      // owns stage transitions, so the generic handoff point never fires.
      cfg.faults.split_queue.corrupt = corrupt;
      cfg.faults.nic_ring.drop = loss / 2;
      cfg.trace.enabled = true;
      cfg.trace.sample_period = 8;
      const auto res = exp::run_scenario(cfg);
      const double recovery_us =
          (res.stats.empty() ? res.recovery_latency_ns.mean()
                             : res.stats.gauge(
                                   "fault.recovery_latency_mean_ns")) /
          1000.0;
      const double p99 = res.stats.empty()
                             ? res.p99_latency_us()
                             : res.stats.gauge("latency.p99_us");
      table.add({util::Table::Cell(loss * 100.0, 2),
                 util::fmt_gbps(res.goodput_gbps),
                 util::fmt_gbps(res.offered_gbps),
                 stat(res, "reasm.drops_recovered", res.drops_recovered),
                 stat(res, "reasm.evictions", res.evictions),
                 util::Table::Cell(recovery_us, 1),
                 stat(res, "reasm.late_deliveries", res.late_deliveries),
                 stat(res, "reasm.ooo_arrivals", res.ooo_arrivals),
                 util::Table::Cell(p99, 1)});
      if (batch == 256 && loss == 0.05) phase_case = res;
    }
    table.print(std::cout,
                "Ablation: injected loss, batch size " + std::to_string(batch));
    std::cout << "\n";
  }
  // Where the surviving packets spend their time under loss: the eviction
  // backstop shows up as a fat reasm_hold tail.
  exp::print_phase_breakdown(std::cout,
                             "Per-packet phases at 5% loss, batch 256",
                             phase_case);
  exp::print_counters(std::cout, "Trace registry, 5% loss, batch 256",
                      phase_case);
  return 0;
}
