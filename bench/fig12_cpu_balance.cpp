// Figure 12 reproduction: CPU load distribution across the 10 kernel cores
// with 10 concurrent 64KB TCP flows — FALCON vs MFLOW — plus the MFLOW
// overhead numbers quoted in §V-A.
//
// Paper anchors: utilization std-dev across the 10 cores ~20.5 (FALCON) vs
// ~11.6 (MFLOW) percent points; MFLOW burns ~15% more CPU than FALCON for
// ~5% more throughput at 10 flows (the worst case), converging at 20 flows.
#include <iostream>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

namespace {

// Both systems are offered the same fixed load (below either's saturation)
// so the comparison isolates how each *distributes* that work over the 10
// kernel cores — the quantity Figure 12 plots. Per-flow pacing at ~6.5 Gbps
// keeps 10 flows at ~65 Gbps aggregate.
constexpr double kPerFlowGbps = 6.5;

exp::ScenarioConfig balance_config(exp::Mode mode, int flows,
                                   sim::Time measure) {
  exp::ScenarioConfig cfg;
  cfg.mode = mode;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.message_size = 65536;
  cfg.num_flows = flows;
  cfg.measure = measure;
  cfg.server_cores = 15;
  cfg.app_cores = 5;
  cfg.first_kernel_core = 5;
  cfg.kernel_cores = 10;
  cfg.nic_queues = 10;
  cfg.pace_per_message = static_cast<sim::Time>(
      65536.0 * 8.0 / (kPerFlowGbps * 1e9) * 1e9);
  if (mode == exp::Mode::kMflow) {
    // Full-path scaling: only the light driver-poll first half stays pinned
    // to each flow's RSS core; skb allocation and every later stage spread
    // over all kernel cores in micro-flow batches.
    core::MflowConfig mcfg = core::tcp_full_path_config();
    mcfg.pipeline_pairs.clear();  // no spare cores for per-branch pipelining
    mcfg.splitting_cores.clear();
    for (int c = 5; c < 15; ++c) mcfg.splitting_cores.push_back(c);
    cfg.mflow = mcfg;
  }
  return cfg;
}

double kernel_cpu_total(const exp::ScenarioResult& r) {
  double total = 0;
  for (const auto& c : r.cores)
    if (c.core_id >= 5 && c.core_id < 15) total += c.total;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 25));

  struct Run {
    exp::ScenarioResult res;
    double stddev, cpu;
  };
  std::map<std::pair<std::string, int>, Run> runs;

  for (int flows : {5, 10, 20}) {
    for (exp::Mode mode : {exp::Mode::kFalconDev, exp::Mode::kMflow}) {
      auto res = exp::run_scenario(balance_config(mode, flows, measure));
      const double sd = res.utilization_stddev_pct(5, 10);
      const double cpu = kernel_cpu_total(res);
      runs.insert({{res.mode, flows}, Run{std::move(res), sd, cpu}});
    }
  }

  util::Table table({"mode", "flows", "goodput", "kernel CPU (cores)",
                     "util stddev (pts)"});
  for (const auto& [key, run] : runs)
    table.add({key.first, key.second, util::fmt_gbps(run.res.goodput_gbps),
               util::Table::Cell(run.cpu, 2),
               util::Table::Cell(run.stddev, 1)});
  table.print(std::cout, "Fig 12: CPU balance, 64KB TCP multi-flow");
  std::cout << "\n";

  for (int flows : {10}) {
    const auto& fal = runs.at({"falcon-dev", flows});
    const auto& mfl = runs.at({"mflow", flows});
    exp::print_core_breakdown(
        std::cout, "FALCON per-core CPU (10 flows)", fal.res, 16, 0.01);
    std::cout << "\n";
    exp::print_core_breakdown(
        std::cout, "MFLOW per-core CPU (10 flows)", mfl.res, 16, 0.01);
    std::cout << "\n";
    exp::print_expectations(
        std::cout, "Fig 12 / §V-A shape checks (10 flows)",
        {
            {"stddev: mflow more balanced (mflow/falcon)", 11.6 / 20.5,
             fal.stddev > 0 ? mfl.stddev / fal.stddev : 0, 0.60},
            {"mflow CPU overhead vs falcon", 1.15,
             fal.cpu > 0 ? mfl.cpu / fal.cpu : 0, 0.20},
            {"mflow throughput gain vs falcon", 1.05,
             fal.res.goodput_gbps > 0
                 ? mfl.res.goodput_gbps / fal.res.goodput_gbps
                 : 0,
             0.15},
        });
  }
  return 0;
}
