// Ablation: the dynamic flow control plane (elephant detection + runtime
// micro-flow scaling, src/control) against static MFLOW and vanilla.
//
// One many-flow scenario — num_flows well above the kernel-core count: a
// few unpaced elephants plus a crowd of paced mice into one receiver.
// Three systems over identical traffic:
//
//   dynamic : MFLOW + control plane; split degree follows each flow's
//             measured rate (mice stay unsplit, elephants scale out)
//   static  : MFLOW splitting every flow at the full degree (the paper's
//             configuration, oblivious to per-flow rates)
//   vanilla : no splitting at all
//
// plus a transition run where every elephant throttles to mouse rates
// mid-measurement: the classifier demotes them (after the hysteresis
// dwell) and the splitting lanes drain — visible as the split-core
// utilization dropping between the before/after windows.
//
// Checked properties (CI perf-smoke compares the JSON against
// bench/baselines/BENCH_ablate_dynamic_scaling.json):
//   - dynamic elephant goodput within a few % of static MFLOW
//   - dynamic mouse p99 no worse than vanilla's
//   - split-core utilization collapses after the elephants demote
//   - two same-seed dynamic runs are bit-identical (DES determinism)
#include <cmath>
#include <iostream>

#include "bench/harness.hpp"
#include "experiment/scenario.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

using namespace mflow;

namespace {

struct Setup {
  int flows = 20;
  int elephants = 4;
  sim::Time warmup = sim::ms(8);
  sim::Time measure = sim::ms(24);
  /// One 64KB message per 8ms ≈ 5.6k segs/s per mouse: mice together are
  /// ~5% of the elephant load, so their (deliberately unsplit) path work
  /// on the IRQ core doesn't skew the elephant goodput comparison.
  sim::Time mouse_pace = sim::ms(8);
  std::uint64_t seed = 42;
};

/// Receiver layout: 1 app core, IRQ on core 1, four splitting lanes.
/// 20 flows into 7 kernel cores is the num_flows >> kernel_cores regime.
exp::ScenarioBuilder base_builder(const Setup& s) {
  exp::ScenarioBuilder b;
  b.tcp(s.flows)
      .message_size(65536)
      .layout(/*server_cores=*/8, /*app_cores=*/1, /*first_kernel_core=*/1,
              /*kernel_cores=*/7)
      .windows(s.warmup, s.measure)
      .seed(s.seed);
  // Senders all start unpaced; the mice throttle immediately (t = 1ns) via
  // the runtime rate-change hook — the same mechanism the transition run
  // uses mid-measurement.
  for (int i = s.elephants; i < s.flows; ++i)
    b.rate_change(i, 1, s.mouse_pace);
  return b;
}

core::MflowConfig mflow_config() {
  core::MflowConfig mcfg = core::udp_device_scaling_config();
  mcfg.tcp_in_reader = true;
  mcfg.splitting_cores = {2, 3, 4, 5};
  return mcfg;
}

exp::ScenarioBuilder dynamic_builder(const Setup& s) {
  return base_builder(s)
      .mode(exp::Mode::kMflow)
      .mflow(mflow_config())
      .control([](exp::ScenarioConfig::ControlPlane& cp) {
        cp.interval = sim::us(100);
        // Rate over a multi-ms window: windowed TCP is bursty at the ~1ms
        // scale (window drain / ACK clumping), and a monitor faster than
        // that feeds the scaler an oscillating rate it would chase.
        // Measure over the timescale the degree is meant to be stable on.
        cp.params.monitor.window = sim::ms(4);
        cp.params.monitor.max_samples = 64;
        // Elephants run at hundreds of k segs/s, mice at ~23k: thresholds
        // sit in the gap, and the band + dwell keep a mouse's per-message
        // burst from promoting it.
        cp.params.classifier.promote_pps = 200'000;
        cp.params.classifier.demote_pps = 100'000;
        cp.params.classifier.dwell = sim::ms(1);
        cp.params.scaling.per_core_pps = 150'000;
      });
}

double elephant_goodput_gbps(const exp::ScenarioResult& r, int elephants) {
  double total = 0.0;
  for (int i = 0; i < elephants; ++i)
    total += r.per_port[static_cast<std::size_t>(i)].goodput_gbps;
  return total;
}

double mouse_p99_us(const exp::ScenarioResult& r, const Setup& s) {
  util::Histogram merged{6};
  for (int i = s.elephants; i < s.flows; ++i)
    merged.merge(r.per_port[static_cast<std::size_t>(i)].latency);
  return static_cast<double>(merged.p99()) / 1000.0;
}

/// Mean utilization of the splitting lanes in one CoreUsage vector.
double split_util_pct(const std::vector<exp::CoreUsage>& cores) {
  double sum = 0.0;
  int n = 0;
  for (const auto& c : cores)
    if (c.core_id >= 2 && c.core_id <= 5) {
      sum += c.total * 100.0;
      ++n;
    }
  return n ? sum / n : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  Setup s;
  s.flows = static_cast<int>(cli.get_int("flows", s.flows));
  s.elephants = static_cast<int>(cli.get_int("elephants", s.elephants));
  s.warmup = sim::ms(cli.get_double("warmup-ms", 8));
  s.measure = sim::ms(cli.get_double("measure-ms", 24));
  s.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  bench::HarnessConfig hc;
  hc.bench_name = "ablate_dynamic_scaling";
  hc.json_dir = cli.get("json-dir", ".");
  hc.config["flows"] = std::to_string(s.flows);
  hc.config["elephants"] = std::to_string(s.elephants);
  hc.config["measure_ms"] = std::to_string(sim::to_seconds(s.measure) * 1e3);
  hc.config["seed"] = std::to_string(s.seed);
  bench::Harness harness(hc);

  // --- steady state: dynamic vs static vs vanilla ---------------------------
  const exp::ScenarioResult dyn = exp::run_scenario(dynamic_builder(s).build());

  auto static_mcfg = mflow_config();
  static_mcfg.elephant_threshold_pkts = 0;  // split every flow, always
  const exp::ScenarioResult sta = exp::run_scenario(
      base_builder(s).mode(exp::Mode::kMflow).mflow(static_mcfg).build());

  const exp::ScenarioResult van =
      exp::run_scenario(base_builder(s).mode(exp::Mode::kVanilla).build());

  const double dyn_eleph = elephant_goodput_gbps(dyn, s.elephants);
  const double sta_eleph = elephant_goodput_gbps(sta, s.elephants);
  const double dyn_p99 = mouse_p99_us(dyn, s);
  const double van_p99 = mouse_p99_us(van, s);

  harness.record("dynamic/elephant_goodput", "Gbps", true, dyn_eleph);
  harness.record("static/elephant_goodput", "Gbps", true, sta_eleph);
  harness.record("dynamic_vs_static/elephant_ratio", "ratio", true,
                 sta_eleph > 0 ? dyn_eleph / sta_eleph : 0.0);
  harness.record("dynamic/mouse_p99", "us", false, dyn_p99);
  harness.record("vanilla/mouse_p99", "us", false, van_p99);
  harness.record("dynamic_vs_vanilla/mouse_p99_ratio", "ratio", false,
                 van_p99 > 0 ? dyn_p99 / van_p99 : 0.0);
  harness.record("dynamic/control.rescales", "count", true,
                 static_cast<double>(dyn.control.rescales));

  // --- transition: every elephant throttles to mouse rates mid-run ----------
  exp::ScenarioBuilder trans = dynamic_builder(s);
  const sim::Time t_mid = s.warmup + (s.measure * 2) / 5;
  for (int i = 0; i < s.elephants; ++i) trans.rate_change(i, t_mid, s.mouse_pace);
  trans.usage_split_at(s.warmup + (s.measure * 3) / 5);
  const exp::ScenarioResult trans_res = exp::run_scenario(trans.build());

  const double util_before = split_util_pct(trans_res.cores_before);
  const double util_after = split_util_pct(trans_res.cores_after);
  std::uint64_t demotions = 0;
  for (const auto& ev : trans_res.control.history)
    if (ev.new_degree < ev.old_degree) ++demotions;
  harness.record("transition/split_util_before", "pct", true, util_before);
  harness.record("transition/split_util_after", "pct", false, util_after);
  harness.record("transition/demotions", "count", true,
                 static_cast<double>(demotions));

  // --- determinism: same seed, same numbers ---------------------------------
  const exp::ScenarioResult dyn2 = exp::run_scenario(dynamic_builder(s).build());
  const bool identical = dyn2.goodput_gbps == dyn.goodput_gbps &&
                         dyn2.messages == dyn.messages &&
                         dyn2.control.rescales == dyn.control.rescales;
  harness.record("deterministic_same_seed", "bool", true,
                 identical ? 1.0 : 0.0);

  const std::string json = harness.finish(std::cout);
  std::cout << "\nmouse p99: dynamic " << dyn_p99 << " us vs vanilla "
            << van_p99 << " us; elephants: dynamic " << dyn_eleph
            << " Gbps vs static " << sta_eleph << " Gbps\n"
            << "transition: split-core util " << util_before << "% -> "
            << util_after << "% after " << demotions << " demotion(s)\n";
  if (!json.empty()) std::cout << "wrote " << json << "\n";
  return 0;
}
