// Stateful-NF ablation: what does a stateful middlebox chain cost under
// MFLOW's packet-level parallelism, and which state strategy keeps the
// split worth having?
//
//   A. DES goodput/p99 sweep: UDP elephant through chain {fw, nat+fw+lb}
//      x strategy {lock, affinity, scr} x steering {vanilla, mflow d=2,
//      mflow d=3}, plus the NF-off baseline per steering. The shared lock
//      pays a contention penalty on every core the split spreads the flow
//      over; flow affinity un-splits the flow at the NF; SCR keeps the
//      split and pays only the compact replicated update.
//      Acceptance: scr >= 1.3x lock at split degree >= 2 on >= 1 chain.
//   B. State-strategy equality (DES): paced lossless TCP through all three
//      strategies — the merged per-flow state digest must be identical
//      (SCR's merge is exact, not approximate).
//   C. rt engine: the same chain over real threads, lossless — packet
//      conservation (state segs == delivered packets) and digest equality
//      across strategies; in overlay mode the NAT stage rewrites real
//      decapsulated header bytes.
//
// All recorded values are DES-deterministic (plus deterministic rt
// counters), so CI compares them at a tight tolerance; see ci.yml.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "rt/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

namespace {

std::string fmt(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

struct ChainCase {
  std::string label;
  std::vector<nf::Kind> chain;
};

struct SteerCase {
  std::string label;
  int degree;  // 1 = vanilla (no split), >1 = mflow split degree
};

exp::ScenarioConfig des_config(const SteerCase& steer, sim::Time measure) {
  exp::ScenarioConfig cfg;
  cfg.protocol = net::Ipv4Header::kProtoUdp;
  cfg.message_size = 65536;
  cfg.measure = measure;
  if (steer.degree <= 1) {
    cfg.mode = exp::Mode::kVanilla;
  } else {
    cfg.mode = exp::Mode::kMflow;
    auto mcfg = core::udp_device_scaling_config();
    mcfg.splitting_cores.clear();
    for (int c = 0; c < steer.degree; ++c)
      mcfg.splitting_cores.push_back(2 + c);
    cfg.mflow = mcfg;
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 25));

  bench::HarnessConfig hc;
  hc.bench_name = "ablate_nf";
  hc.warmup = 0;
  hc.repeats = 1;
  hc.json_dir = cli.get("json-dir", ".");
  hc.config = {{"measure_ms", std::to_string(measure / 1'000'000)}};
  bench::Harness harness(hc);

  std::vector<exp::Expectation> checks;

  const std::vector<ChainCase> chains = {
      {"fw", {nf::Kind::kFirewall}},
      {"natfwlb",
       {nf::Kind::kNat, nf::Kind::kFirewall, nf::Kind::kLoadBalancer}},
  };
  const std::vector<SteerCase> steers = {
      {"vanilla", 1}, {"mflow.d2", 2}, {"mflow.d3", 3}};
  const std::vector<std::pair<std::string, nf::Strategy>> strategies = {
      {"lock", nf::Strategy::kSharedLock},
      {"affinity", nf::Strategy::kFlowAffinity},
      {"scr", nf::Strategy::kScr},
  };

  // --- A: goodput/p99 sweep ---------------------------------------------------
  bool scr_beats_lock = false;
  util::Table sweep({"steering", "chain", "nf off", "lock", "affinity",
                     "scr", "scr/lock"});
  for (const SteerCase& steer : steers) {
    const auto off = exp::run_scenario(des_config(steer, measure));
    harness.record("des." + steer.label + ".nfoff", "Gbps", true,
                   off.goodput_gbps);
    for (const ChainCase& chain : chains) {
      double lock_gbps = 0;
      std::vector<std::string> row{steer.label, chain.label,
                                   util::fmt_gbps(off.goodput_gbps)};
      for (const auto& [sname, strat] : strategies) {
        auto cfg = des_config(steer, measure);
        cfg.nf.enabled = true;
        cfg.nf.strategy = strat;
        cfg.nf.chain.chain = chain.chain;
        const auto res = exp::run_scenario(cfg);
        const std::string key =
            "des." + steer.label + "." + chain.label + "." + sname;
        harness.record(key + ".gbps", "Gbps", true, res.goodput_gbps);
        harness.record(key + ".p99_us", "us", /*higher_is_better=*/false,
                       res.p99_latency_us());
        row.push_back(util::fmt_gbps(res.goodput_gbps));
        if (sname == "lock") lock_gbps = res.goodput_gbps;
        if (sname == "scr") {
          const double ratio =
              lock_gbps > 0 ? res.goodput_gbps / lock_gbps : 0;
          row.push_back(fmt(ratio, 2));
          if (steer.degree >= 2 && ratio >= 1.3) scr_beats_lock = true;
        }
      }
      sweep.add_row(std::move(row));
    }
  }
  sweep.print(std::cout,
              "A: UDP elephant goodput, chain x strategy x steering");
  std::cout << "\n";
  checks.push_back({"scr >= 1.3x lock at split degree >= 2", 1.0,
                    scr_beats_lock ? 1.0 : 0.0, 0.01});

  // --- B: merged-state digest equality across strategies (DES) ---------------
  // Paced lossless TCP, 4 flows, with the senders quiesced half-way through
  // the measurement window so the in-flight tail drains before the run
  // ends: every strategy then processes the IDENTICAL message multiset,
  // and the merged lattice state must be bit-identical — counters
  // included, not just bindings.
  {
    std::vector<std::uint64_t> digests;
    std::uint64_t flows = 0;
    for (const auto& [sname, strat] : strategies) {
      exp::ScenarioConfig cfg;
      cfg.mode = exp::Mode::kMflow;
      cfg.protocol = net::Ipv4Header::kProtoTcp;
      cfg.num_flows = 4;
      cfg.message_size = 65536;
      cfg.measure = measure;
      cfg.pace_per_message = sim::ms(1);  // well under every capacity
      for (int f = 0; f < cfg.num_flows; ++f)
        cfg.rate_changes.push_back(
            {f, cfg.warmup + measure / 2, sim::seconds(10)});  // stop sending
      cfg.nf.enabled = true;
      cfg.nf.strategy = strat;
      cfg.nf.chain.chain = {nf::Kind::kNat, nf::Kind::kFirewall,
                            nf::Kind::kLoadBalancer};
      const auto res = exp::run_scenario(cfg);
      digests.push_back(res.nf_state_digest);
      flows = res.nf_flows_live;
    }
    const bool equal = digests.size() == strategies.size() &&
                       std::all_of(digests.begin(), digests.end(),
                                   [&](std::uint64_t d) {
                                     return d == digests.front();
                                   });
    std::cout << "B: DES merged-state digest over " << flows
              << " flows: " << (equal ? "EQUAL" : "MISMATCH")
              << " across lock/affinity/scr\n\n";
    checks.push_back({"DES state digest equal across strategies", 1.0,
                      equal ? 1.0 : 0.0, 0.01});
    harness.record("des.tcp.paced.state_flows", "flows", true,
                   static_cast<double>(flows));
  }

  // --- C: rt engine, lossless conservation + digest equality -----------------
  {
    constexpr std::uint64_t kTotal = 20000;
    std::vector<std::uint64_t> digests;
    std::uint64_t delivered = 0, state_segs = 0, rewrites = 0;
    for (const auto& [sname, strat] : strategies) {
      rt::EngineConfig rc;
      rc.workers = 2;
      rc.batch_size = 64;
      rc.cost_ns_per_packet = 0;
      rc.max_push_spins = 0;  // lossless
      rc.overlay.enabled = true;
      rc.overlay.flows = 8;
      rc.nf.enabled = true;
      rc.nf.strategy = strat;
      rc.nf.chain.chain = {nf::Kind::kNat, nf::Kind::kFirewall,
                           nf::Kind::kLoadBalancer};
      const auto res = rt::Engine(rc).run(kTotal);
      digests.push_back(res.nf_state_digest);
      delivered = res.packets;
      rewrites = res.nf_nat_rewrites;
      state_segs = 0;
      for (const auto& [fid, st] : res.nf_state) state_segs += st.fw.segs;
    }
    const bool equal = std::all_of(
        digests.begin(), digests.end(),
        [&](std::uint64_t d) { return d == digests.front(); });
    std::cout << "C: rt lossless — delivered=" << delivered
              << " state_segs=" << state_segs << " nat_rewrites=" << rewrites
              << "; digest " << (equal ? "EQUAL" : "MISMATCH")
              << " across strategies\n\n";
    harness.record("rt.nf.delivered", "pkts", true,
                   static_cast<double>(delivered));
    harness.record("rt.nf.state_segs", "segs", true,
                   static_cast<double>(state_segs));
    checks.push_back({"rt conservation: state segs == delivered", 1.0,
                      state_segs == delivered && delivered == kTotal ? 1.0
                                                                    : 0.0,
                      0.01});
    checks.push_back({"rt state digest equal across strategies", 1.0,
                      equal ? 1.0 : 0.0, 0.01});
    checks.push_back({"rt NAT rewrote real bytes", 1.0,
                      rewrites == kTotal ? 1.0 : 0.0, 0.01});
  }

  exp::print_expectations(std::cout, "NF ablation checks", checks);
  harness.finish(std::cout);
  return 0;
}
