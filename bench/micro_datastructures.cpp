// Microbenchmarks for the hot data structures: flow hash, header codecs,
// checksum, RX ring, GRO, histogram, and pooled-vs-heap packet
// construction. Emits BENCH_micro_datastructures.json via bench::Harness
// (part of the CI perf-smoke comparison — see docs/BENCHMARKS.md).
#include <chrono>
#include <iostream>

#include "bench/harness.hpp"
#include "net/checksum.hpp"
#include "net/gro.hpp"
#include "net/nic.hpp"
#include "rt/pool.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

using namespace mflow;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Time `iters` calls of `body` and return calls/sec.
template <typename Fn>
double rate(std::uint64_t iters, Fn&& body) {
  const double t0 = now_seconds();
  for (std::uint64_t i = 0; i < iters; ++i) body(i);
  return static_cast<double>(iters) / (now_seconds() - t0);
}

volatile std::uint64_t g_sink;  // defeats dead-code elimination

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::HarnessConfig hc;
  hc.bench_name = "micro_datastructures";
  hc.warmup = static_cast<int>(cli.get_int("warmup", 1));
  hc.repeats = static_cast<int>(cli.get_int("repeats", 5));
  hc.json_dir = cli.get("json-dir", ".");
  const std::uint64_t n = cli.get_int("iters", 2'000'000);
  hc.config = {{"iters", std::to_string(n)}};
  bench::Harness h(hc);

  h.run_case("flow_hash", "ops/s", true, [&] {
    net::FlowKey key{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                     1234, 80, net::Ipv4Header::kProtoTcp};
    return rate(n, [&](std::uint64_t) {
      key.src_port++;
      g_sink = net::flow_hash(key);
    });
  });

  h.run_case("ipv4_encode_verify", "ops/s", true, [&] {
    net::Ipv4Header hdr;
    hdr.src = net::Ipv4Addr(10, 0, 0, 1);
    hdr.dst = net::Ipv4Addr(10, 0, 0, 2);
    std::array<std::uint8_t, net::Ipv4Header::kSize> buf{};
    return rate(n, [&](std::uint64_t) {
      hdr.identification++;
      hdr.encode(buf);
      g_sink = net::Ipv4Header::verify(buf);
    });
  });

  for (const std::size_t bytes : {std::size_t{64}, std::size_t{1500}}) {
    std::vector<std::uint8_t> data(bytes);
    util::Rng rng(1);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
    h.run_case("checksum_" + std::to_string(bytes), "ops/s", true, [&] {
      return rate(n / 4, [&](std::uint64_t) {
        g_sink = net::internet_checksum(data);
      });
    });
  }

  h.run_case("vxlan_encap_decap", "ops/s", true, [&] {
    const net::FlowKey flow{net::Ipv4Addr(10, 0, 1, 2),
                            net::Ipv4Addr(10, 0, 1, 3), 40000, 5001,
                            net::Ipv4Header::kProtoTcp};
    return rate(n / 16, [&](std::uint64_t) {
      auto pkt = net::make_tcp_segment(flow, 0, 1448);
      net::vxlan_encap(*pkt, net::Ipv4Addr(192, 168, 1, 2),
                       net::Ipv4Addr(192, 168, 1, 3), 42);
      g_sink = net::vxlan_decap(*pkt).ok;
    });
  });

  h.run_case("packet_make.heap", "ops/s", true, [&] {
    const net::FlowKey flow{net::Ipv4Addr(10, 0, 1, 2),
                            net::Ipv4Addr(10, 0, 1, 3), 40000, 5001,
                            net::Ipv4Header::kProtoTcp};
    return rate(n / 16, [&](std::uint64_t i) {
      auto pkt = net::make_tcp_segment(flow, i, 1448);
      g_sink = pkt->wire_len();
    });
  });

  h.run_case("packet_make.pooled", "ops/s", true, [&] {
    const net::FlowKey flow{net::Ipv4Addr(10, 0, 1, 2),
                            net::Ipv4Addr(10, 0, 1, 3), 40000, 5001,
                            net::Ipv4Header::kProtoTcp};
    rt::PacketPool pool({.slabs = 64});
    return rate(n / 16, [&](std::uint64_t i) {
      auto pkt = net::make_tcp_segment(pool.acquire(), flow, i, 1448);
      g_sink = pkt->wire_len();
    });
  });

  h.run_case("rxring_push_pop", "ops/s", true, [&] {
    net::RxRing ring(4096);
    const net::FlowKey flow{net::Ipv4Addr(1, 1, 1, 1),
                            net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                            net::Ipv4Header::kProtoUdp};
    return rate(n / 16, [&](std::uint64_t) {
      ring.push(net::make_udp_datagram(flow, 100));
      auto p = ring.pop();
      g_sink = p ? 1 : 0;
    });
  });

  h.run_case("gro_merge44", "segs/s", true, [&] {
    const net::FlowKey flow{net::Ipv4Addr(1, 1, 1, 1),
                            net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                            net::Ipv4Header::kProtoTcp};
    const std::uint64_t rounds = n / 512;
    const double t0 = now_seconds();
    for (std::uint64_t r = 0; r < rounds; ++r) {
      net::GroEngine gro({.max_segs = 44});
      int emitted = 0;
      auto sink = [&emitted](net::PacketPtr) { ++emitted; };
      for (int i = 0; i < 44; ++i) {
        auto p = net::make_tcp_segment(
            flow, static_cast<std::uint64_t>(i) * 1448, 1448);
        p->flow_id = 1;
        gro.add(std::move(p), sink);
      }
      gro.flush(sink);
      g_sink = static_cast<std::uint64_t>(emitted);
    }
    return static_cast<double>(rounds * 44) / (now_seconds() - t0);
  });

  h.run_case("histogram_record", "ops/s", true, [&] {
    util::Histogram hist;
    util::Rng rng(2);
    const double r = rate(n, [&](std::uint64_t) {
      hist.record(rng.uniform(10'000'000));
    });
    g_sink = static_cast<std::uint64_t>(hist.p99());
    return r;
  });

  h.finish(std::cout);
  return 0;
}
