// google-benchmark micro-benchmarks for the hot data structures: flow hash,
// header codecs, checksum, RX ring, GRO, histogram.
#include <benchmark/benchmark.h>

#include "net/checksum.hpp"
#include "net/gro.hpp"
#include "net/nic.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

using namespace mflow;

static void BM_FlowHash(benchmark::State& state) {
  net::FlowKey key{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                   1234, 80, net::Ipv4Header::kProtoTcp};
  for (auto _ : state) {
    key.src_port++;
    benchmark::DoNotOptimize(net::flow_hash(key));
  }
}
BENCHMARK(BM_FlowHash);

static void BM_Ipv4EncodeVerify(benchmark::State& state) {
  net::Ipv4Header h;
  h.src = net::Ipv4Addr(10, 0, 0, 1);
  h.dst = net::Ipv4Addr(10, 0, 0, 2);
  std::array<std::uint8_t, net::Ipv4Header::kSize> buf{};
  for (auto _ : state) {
    h.identification++;
    h.encode(buf);
    benchmark::DoNotOptimize(net::Ipv4Header::verify(buf));
  }
}
BENCHMARK(BM_Ipv4EncodeVerify);

static void BM_Checksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto _ : state)
    benchmark::DoNotOptimize(net::internet_checksum(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Checksum)->Arg(64)->Arg(1500);

static void BM_VxlanEncapDecap(benchmark::State& state) {
  const net::FlowKey flow{net::Ipv4Addr(10, 0, 1, 2),
                          net::Ipv4Addr(10, 0, 1, 3), 40000, 5001,
                          net::Ipv4Header::kProtoTcp};
  for (auto _ : state) {
    auto pkt = net::make_tcp_segment(flow, 0, 1448);
    net::vxlan_encap(*pkt, net::Ipv4Addr(192, 168, 1, 2),
                     net::Ipv4Addr(192, 168, 1, 3), 42);
    benchmark::DoNotOptimize(net::vxlan_decap(*pkt).ok);
  }
}
BENCHMARK(BM_VxlanEncapDecap);

static void BM_RxRingPushPop(benchmark::State& state) {
  net::RxRing ring(4096);
  const net::FlowKey flow{net::Ipv4Addr(1, 1, 1, 1),
                          net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                          net::Ipv4Header::kProtoUdp};
  for (auto _ : state) {
    ring.push(net::make_udp_datagram(flow, 100));
    benchmark::DoNotOptimize(ring.pop());
  }
}
BENCHMARK(BM_RxRingPushPop);

static void BM_GroMergeBatch(benchmark::State& state) {
  const net::FlowKey flow{net::Ipv4Addr(1, 1, 1, 1),
                          net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                          net::Ipv4Header::kProtoTcp};
  for (auto _ : state) {
    net::GroEngine gro({.max_segs = 44});
    int emitted = 0;
    auto sink = [&emitted](net::PacketPtr) { ++emitted; };
    for (int i = 0; i < 44; ++i) {
      auto p = net::make_tcp_segment(
          flow, static_cast<std::uint64_t>(i) * 1448, 1448);
      p->flow_id = 1;
      gro.add(std::move(p), sink);
    }
    gro.flush(sink);
    benchmark::DoNotOptimize(emitted);
  }
  state.SetItemsProcessed(state.iterations() * 44);
}
BENCHMARK(BM_GroMergeBatch);

static void BM_HistogramRecord(benchmark::State& state) {
  util::Histogram h;
  util::Rng rng(2);
  for (auto _ : state) h.record(rng.uniform(10'000'000));
  benchmark::DoNotOptimize(h.p99());
}
BENCHMARK(BM_HistogramRecord);
