// Figure 13 reproduction: Data Caching (Memcached, 550-byte objects),
// average and p99 latency with 1 and 10 clients, for vanilla overlay /
// FALCON / MFLOW.
//
// Paper anchors: at one client MFLOW cuts p99 by ~26% vs vanilla; at ten
// clients by ~47-48% (avg and p99); vs FALCON, average -22% and p99 -33%.
#include <iostream>
#include <map>

#include "experiment/datacaching.hpp"
#include "experiment/report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 30));
  const double rate = cli.get_double("rate", 120000);

  std::map<std::pair<std::string, int>, exp::DataCachingResult> results;
  util::Table table({"mode", "clients", "achieved req/s", "avg (us)",
                     "p50 (us)", "p99 (us)"});
  for (int clients : {1, 10}) {
    for (exp::Mode mode :
         {exp::Mode::kVanilla, exp::Mode::kFalconDev, exp::Mode::kMflow}) {
      exp::DataCachingConfig cfg;
      cfg.mode = mode;
      cfg.clients = clients;
      cfg.measure = measure;
      cfg.requests_per_client = rate;
      const auto r = exp::run_datacaching(cfg);
      results.insert({{r.mode, clients}, r});
      table.add({r.mode, clients, util::Table::Cell(r.achieved_rps, 0),
                 util::Table::Cell(r.avg_latency_us, 1),
                 util::Table::Cell(r.p50_latency_us, 1),
                 util::Table::Cell(r.p99_latency_us, 1)});
    }
  }
  table.print(std::cout,
              "Fig 13: Memcached data caching latency (550B objects)");
  std::cout << "\n";

  const auto& v1 = results.at({"vanilla-overlay", 1});
  const auto& m1 = results.at({"mflow", 1});
  const auto& v10 = results.at({"vanilla-overlay", 10});
  const auto& f10 = results.at({"falcon-dev", 10});
  const auto& m10 = results.at({"mflow", 10});
  exp::print_expectations(
      std::cout, "Fig 13 shape checks",
      {
          {"p99 mflow/vanilla @1 client", 0.74,
           v1.p99_latency_us > 0 ? m1.p99_latency_us / v1.p99_latency_us : 0,
           0.35},
          {"avg mflow/vanilla @10 clients", 0.52,
           v10.avg_latency_us > 0
               ? m10.avg_latency_us / v10.avg_latency_us
               : 0,
           0.55},
          {"p99 mflow/vanilla @10 clients", 0.53,
           v10.p99_latency_us > 0
               ? m10.p99_latency_us / v10.p99_latency_us
               : 0,
           0.55},
          {"avg mflow/falcon @10 clients", 0.78,
           f10.avg_latency_us > 0
               ? m10.avg_latency_us / f10.avg_latency_us
               : 0,
           0.40},
          {"p99 mflow/falcon @10 clients", 0.67,
           f10.p99_latency_us > 0
               ? m10.p99_latency_us / f10.p99_latency_us
               : 0,
           0.45},
      });
  return 0;
}
