// Ablation: merge point — right after the heavy device vs "as late as
// possible" (paper §III-B argues late merging wins: fewer splitting cores
// cover more path, better locality).
//
// We compare UDP device-split configurations that keep different amounts of
// the post-VXLAN path on the splitting cores. "Early merge" is emulated by
// splitting only the VXLAN stage and merging at the socket with the rest of
// the path back on one core — i.e. splitting a shorter span.
#include <iostream>

#include "experiment/scenario.hpp"
#include "steering/policy.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mflow;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto measure = sim::ms(cli.get_double("measure-ms", 25));

  util::Table table({"variant", "goodput", "max core util",
                     "p99 latency (us)"});

  // Six clients and four splitting cores: enough offered load that the
  // merge-point choice decides whether the receiver keeps up.
  // (a) Late merge (paper's UDP default): split before VXLAN; everything
  //     through UDP runs on the splitting cores; merge in recvmsg.
  {
    exp::ScenarioConfig cfg;
    cfg.mode = exp::Mode::kMflow;
    cfg.protocol = net::Ipv4Header::kProtoUdp;
    cfg.message_size = 65536;
    cfg.udp_clients = 6;
    cfg.measure = measure;
    auto mcfg = core::udp_device_scaling_config();
    mcfg.splitting_cores = {2, 3, 4, 5};
    cfg.mflow = mcfg;
    const auto res = exp::run_scenario(cfg);
    table.add({"late merge (full remaining path split)",
               util::fmt_gbps(res.goodput_gbps),
               util::fmt_pct(res.max_core_utilization()),
               util::Table::Cell(res.p99_latency_us(), 1)});
  }

  // (b) Early merge: split the same point, but a paired-pipeline map sends
  //     every branch's post-VXLAN stages back to ONE shared core — the
  //     serialization an early merge re-introduces.
  {
    exp::ScenarioConfig cfg;
    cfg.mode = exp::Mode::kMflow;
    cfg.protocol = net::Ipv4Header::kProtoUdp;
    cfg.message_size = 65536;
    cfg.udp_clients = 6;
    cfg.measure = measure;
    auto mcfg = core::udp_device_scaling_config();
    mcfg.splitting_cores = {2, 3, 4, 5};
    // Post-vxlan stages converge on core 6 (single downstream lane).
    mcfg.pipeline_pairs = {{2, 6}, {3, 6}, {4, 6}, {5, 6}};
    mcfg.pipeline_at = stack::StageId::kBridge;  // first stage after VXLAN
    cfg.mflow = mcfg;
    const auto res = exp::run_scenario(cfg);
    table.add({"early merge (post-device stages re-serialized)",
               util::fmt_gbps(res.goodput_gbps),
               util::fmt_pct(res.max_core_utilization()),
               util::Table::Cell(res.p99_latency_us(), 1)});
  }

  table.print(std::cout,
              "Ablation: merge point (UDP 64KB, 2 splitting cores)");
  std::cout << "\nExpected: late merging sustains higher goodput — the "
               "shared downstream core of the early variant becomes the new "
               "serial bottleneck (paper §III-B).\n";
  return 0;
}
