// Cost-model report: prints the calibrated per-stage cost table and the
// capacities it implies, next to the paper anchors it was fitted to — the
// executable form of DESIGN.md's calibration section. Run after editing
// stack/costs.hpp to see what moved.
#include <iostream>

#include "experiment/scenario.hpp"
#include "util/table.hpp"

using namespace mflow;

int main() {
  const stack::CostModel c = stack::default_costs();

  util::Table stages({"stage", "cost", "unit"});
  stages.add({"IRQ top half", static_cast<long>(c.irq), "ns/interrupt"});
  stages.add({"driver poll", static_cast<long>(c.driver_poll_per_pkt),
              "ns/pkt"});
  stages.add({"skb alloc", static_cast<long>(c.skb_alloc), "ns/pkt"});
  stages.add({"GRO", static_cast<long>(c.gro_per_seg), "ns/segment"});
  stages.add({"IP rx", static_cast<long>(c.ip_rx_per_skb), "ns/skb"});
  stages.add({"VXLAN decap", static_cast<long>(c.vxlan_per_skb), "ns/skb"});
  stages.add({"VXLAN per-seg", static_cast<long>(c.vxlan_per_seg),
              "ns/segment"});
  stages.add({"bridge", static_cast<long>(c.bridge_per_skb), "ns/skb"});
  stages.add({"veth", static_cast<long>(c.veth_per_skb), "ns/skb"});
  stages.add({"TCP rx", static_cast<long>(c.tcp_rx_per_skb), "ns/skb"});
  stages.add({"TCP rx per-seg", static_cast<long>(c.tcp_rx_per_seg),
              "ns/segment"});
  stages.add({"TCP ofo insert", static_cast<long>(c.tcp_ofo_insert),
              "ns/pkt"});
  stages.add({"UDP rx", static_cast<long>(c.udp_rx_per_pkt), "ns/pkt"});
  stages.add({"copy", util::Table::Cell(c.copy_per_byte, 2), "ns/byte"});
  stages.add({"cross-core handoff", static_cast<long>(c.remote_enqueue),
              "ns/skb"});
  stages.add({"MFLOW split", static_cast<long>(c.mflow_split_per_pkt),
              "ns/pkt"});
  stages.add({"MFLOW batch dispatch",
              static_cast<long>(c.mflow_dispatch_per_batch), "ns/batch"});
  stages.add({"MFLOW merge", static_cast<long>(c.mflow_merge_per_skb),
              "ns/skb"});
  stages.print(std::cout, "Calibrated per-stage costs (stack/costs.hpp)");
  std::cout << "\n";

  // Derived single-core capacities the calibration implies.
  util::Table derived({"quantity", "value", "paper anchor"});
  const double copy_gbps = 8.0 / c.copy_per_byte;  // ns/B -> Gbps
  derived.add({"copy-thread ceiling (1 core)",
               util::fmt_gbps(copy_gbps / 1.35),  // + per-skb TCP work
               "~29.8 Gbps (Fig 8b)"});
  const double native_pkt = static_cast<double>(
      c.driver_poll_per_pkt + c.skb_alloc + c.gro_per_seg +
      c.tcp_rx_per_seg + (c.ip_rx_per_skb + c.tcp_rx_per_skb) / 44);
  derived.add({"native TCP core-1 path",
               util::Table::Cell(native_pkt, 0).text + " ns/pkt",
               "26.6 Gbps => ~430 ns/pkt"});
  derived.add({"VXLAN vs other devices",
               util::Table::Cell(
                   static_cast<double>(c.vxlan_per_skb) /
                       static_cast<double>(c.bridge_per_skb + c.veth_per_skb),
                   1)
                       .text +
                   "x heavier",
               "the heavyweight device (Fig 4b)"});
  derived.print(std::cout, "Derived quantities");

  // And the measured anchors, one quick run each.
  std::cout << "\nMeasured (quick runs):\n";
  for (exp::Mode mode : {exp::Mode::kNative, exp::Mode::kVanilla,
                         exp::Mode::kMflow}) {
    exp::ScenarioConfig cfg;
    cfg.mode = mode;
    cfg.protocol = net::Ipv4Header::kProtoTcp;
    cfg.measure = sim::ms(15);
    const auto res = exp::run_scenario(cfg);
    std::cout << "  TCP 64KB " << res.mode << ": "
              << util::fmt_gbps(res.goodput_gbps) << "\n";
  }
  return 0;
}
