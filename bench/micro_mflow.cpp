// google-benchmark micro-benchmarks for MFLOW's own mechanisms: the batch
// assigner, the reassembler's deposit/merge cycle, and the simulator.
#include <benchmark/benchmark.h>

#include "core/reassembler.hpp"
#include "core/splitter.hpp"
#include "sim/simulator.hpp"

using namespace mflow;

static void BM_BatchAssigner(benchmark::State& state) {
  core::MflowConfig cfg;
  cfg.batch_size = static_cast<std::uint32_t>(state.range(0));
  core::BatchAssigner assigner(cfg);
  for (auto _ : state)
    benchmark::DoNotOptimize(assigner.assign(1, 1).target_core);
}
BENCHMARK(BM_BatchAssigner)->Arg(8)->Arg(256);

static void BM_ReassemblerCycle(benchmark::State& state) {
  const auto batch = static_cast<std::uint32_t>(state.range(0));
  stack::CostModel costs;
  const net::FlowKey flow{net::Ipv4Addr(1, 1, 1, 1),
                          net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                          net::Ipv4Header::kProtoUdp};
  for (auto _ : state) {
    state.PauseTiming();
    core::Reassembler ra(costs);
    std::vector<net::PacketPtr> pkts;
    std::uint64_t b = 0;
    for (std::uint32_t i = 0; i < 1024; ++i) {
      if (i % batch == 0) {
        ++b;
        ra.note_batch_open(1, b);
      }
      ra.note_dispatch(1, b, 1);
      auto p = net::make_udp_datagram(flow, 100);
      p->flow_id = 1;
      p->wire_seq = i;
      p->microflow_id = b;
      pkts.push_back(std::move(p));
    }
    state.ResumeTiming();
    for (auto& p : pkts) ra.deposit(std::move(p), 2);
    std::uint64_t n = 0;
    while (auto p = ra.pop_ready()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ReassemblerCycle)->Arg(8)->Arg(64)->Arg(256);

static void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    for (int i = 0; i < 1000; ++i)
      sim.at(i, [&fired] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventLoop);
