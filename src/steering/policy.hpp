// Steering policy implementations: the baselines MFLOW is evaluated against.
//
//  - VanillaSteering: everything stays on the IRQ core (Linux default for a
//    single flow — the Figure 3 "vanilla" case).
//  - RpsSteering: software RSS; after the driver-side stages, a flow-hash
//    picks the backlog core. Inter-flow parallelism only.
//  - FalconSteering: FALCON's device-level / function-level softirq
//    pipelining (EuroSys'21): fixed stage groups pinned to a per-flow
//    pipeline of cores, every skb crossing cores between groups.
//  - PairedPipelineSteering: MFLOW helper — after the splitting cores run
//    the first stage(s), forward each branch to a fixed partner core (the
//    paper's TCP full-path layout: cores 2->4 and 3->5).
#pragma once

#include <unordered_map>
#include <vector>

#include "control/flowtable.hpp"
#include "stack/machine.hpp"
#include "stack/stage.hpp"

namespace mflow::steer {

using stack::StageId;
using stack::SteeringPolicy;
using stack::Time;

class VanillaSteering final : public SteeringPolicy {
 public:
  int core_for(StageId, const net::Packet&, int from_core) override {
    return from_core;
  }
  std::string_view name() const override { return "vanilla"; }
};

class RpsSteering final : public SteeringPolicy {
 public:
  /// Steer the transition into `steer_at` onto hash-selected `targets`;
  /// all later stages stay local (kernel RPS enqueues to the remote
  /// backlog once and processing continues there).
  RpsSteering(std::vector<int> targets, StageId steer_at, Time hash_cost,
              std::uint32_t seed = 0x52505321);

  int core_for(StageId stage, const net::Packet& pkt, int from_core) override;
  Time steer_cost(StageId stage) const override {
    return stage == steer_at_ ? hash_cost_ : 0;
  }
  std::string_view name() const override { return "rps"; }

 private:
  std::vector<int> targets_;
  StageId steer_at_;
  Time hash_cost_;
  std::uint32_t seed_;
};

class FalconSteering final : public SteeringPolicy {
 public:
  enum class Level { kDevice, kFunction };

  /// `pool`: cores available for pipeline stages. Each flow gets a pipeline
  /// of consecutive pool cores (lazily, round-robin), so concurrent flows
  /// spread — mirroring FALCON's per-flow softirq pinning.
  FalconSteering(Level level, std::vector<int> pool, bool overlay_path);

  int core_for(StageId stage, const net::Packet& pkt, int from_core) override;
  std::string_view name() const override {
    return level_ == Level::kDevice ? "falcon-dev" : "falcon-fun";
  }

  /// Pipeline position for a stage: 0 = stay with the previous stage.
  int group_of(StageId stage) const;
  int groups() const;

  /// Flows currently holding a pinned pipeline base (bounded: the LRU flow
  /// is evicted at capacity, as a real per-flow steering table must under
  /// churn — re-pinning a returning flow recomputes the same base, so
  /// eviction never changes placement, only table occupancy).
  std::size_t flows_pinned() const { return flow_base_.size(); }
  std::uint64_t pins_evicted() const { return flow_base_.evictions(); }

 private:
  Level level_;
  std::vector<int> pool_;
  bool overlay_;
  /// flow -> pipeline base core index, LRU-bounded. Single-threaded (DES),
  /// so writing through upsert()'s reference is safe.
  control::FlowTable<int> flow_base_;
  sim::Time clock_ = 0;  // monotone access counter driving table recency
};

class PairedPipelineSteering final : public SteeringPolicy {
 public:
  /// At the transition into `pipeline_at`, branches running on a key core
  /// forward to its partner; everything else stays local.
  PairedPipelineSteering(std::unordered_map<int, int> pairs,
                         StageId pipeline_at)
      : pairs_(std::move(pairs)), pipeline_at_(pipeline_at) {}

  int core_for(StageId stage, const net::Packet&, int from_core) override {
    if (stage != pipeline_at_) return from_core;
    const auto it = pairs_.find(from_core);
    return it == pairs_.end() ? from_core : it->second;
  }
  std::string_view name() const override { return "mflow-paired"; }

 private:
  std::unordered_map<int, int> pairs_;
  StageId pipeline_at_;
};

}  // namespace mflow::steer
