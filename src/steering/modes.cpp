#include "steering/modes.hpp"

namespace mflow::steer {

std::unique_ptr<SteeringPolicy> make_policy(exp::Mode mode,
                                            const PolicyParams& params) {
  switch (mode) {
    case exp::Mode::kNative:
    case exp::Mode::kVanilla:
      return std::make_unique<VanillaSteering>();
    case exp::Mode::kRps:
      // For the overlay, outer IP receive, VXLAN decap, bridge and veth all
      // run inside the pNIC's first softirq; the paper observes that under
      // RPS "VxLAN (part of the first softirq) [was] still processed on
      // core one". RPS takes effect at the veth's netif_receive — the inner
      // IP stage — regardless of path kind.
      return std::make_unique<RpsSteering>(params.helper_cores, StageId::kIp,
                                           params.rps_hash_cost);
    case exp::Mode::kFalconDev:
      return std::make_unique<FalconSteering>(FalconSteering::Level::kDevice,
                                              params.helper_cores,
                                              params.overlay);
    case exp::Mode::kFalconFun:
      return std::make_unique<FalconSteering>(FalconSteering::Level::kFunction,
                                              params.helper_cores,
                                              params.overlay);
    case exp::Mode::kMflow:
      if (!params.pipeline_pairs.empty())
        return std::make_unique<PairedPipelineSteering>(params.pipeline_pairs,
                                                        params.pipeline_at);
      return std::make_unique<VanillaSteering>();
  }
  return std::make_unique<VanillaSteering>();
}

}  // namespace mflow::steer
