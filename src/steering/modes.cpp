#include "steering/modes.hpp"

namespace mflow::steer {

std::unique_ptr<SteeringPolicy> make_vanilla() {
  return std::make_unique<VanillaSteering>();
}

std::unique_ptr<SteeringPolicy> make_rps(std::vector<int> targets,
                                         bool overlay_path, Time hash_cost) {
  // For the overlay, outer IP receive, VXLAN decap, bridge and veth all run
  // inside the pNIC's first softirq; the paper observes that under RPS
  // "VxLAN (part of the first softirq) [was] still processed on core one".
  // RPS takes effect at the veth's netif_receive — the inner IP stage.
  (void)overlay_path;
  return std::make_unique<RpsSteering>(std::move(targets), StageId::kIp,
                                       hash_cost);
}

std::unique_ptr<SteeringPolicy> make_falcon(FalconSteering::Level level,
                                            std::vector<int> pool,
                                            bool overlay_path) {
  return std::make_unique<FalconSteering>(level, std::move(pool),
                                          overlay_path);
}

}  // namespace mflow::steer
