// One factory for all experiment steering modes.
//
// Every run_* entry point used to carry its own mode switch assembling a
// SteeringPolicy from per-mode helpers (make_vanilla/make_rps/make_falcon);
// the control plane gives the steering layer a second consumer, so the
// mode -> policy mapping now lives in exactly one place. New modes extend
// the switch in modes.cpp and nothing else.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "experiment/mode.hpp"
#include "steering/policy.hpp"

namespace mflow::steer {

/// Everything a mode's policy can be parameterized with. Fields a mode
/// ignores are simply unused; the empty default builds the vanilla policy
/// for any mode that needs no cores (kNative/kVanilla, pipeline-less
/// kMflow).
struct PolicyParams {
  /// Target cores: RPS backlog cores, or FALCON's pipeline pool.
  std::vector<int> helper_cores;
  /// Receive path kind (FALCON groups stages differently on the overlay).
  bool overlay = true;
  /// Per-packet flow-hash cost charged at the RPS steering point.
  Time rps_hash_cost = 0;
  /// MFLOW per-branch pipelining (splitting core -> partner core); empty
  /// means the splitting cores run their whole branch.
  std::unordered_map<int, int> pipeline_pairs;
  StageId pipeline_at = StageId::kGro;
};

/// Build the steering policy for an experiment mode. kNative and kVanilla
/// keep everything on the arrival core; kRps hashes onto helper_cores at
/// the inner-IP stage; the FALCON modes pipeline over helper_cores at
/// device or function granularity; kMflow installs the paired pipeline when
/// pairs are configured and is otherwise vanilla (the splitter, not the
/// steering policy, provides MFLOW's parallelism).
std::unique_ptr<SteeringPolicy> make_policy(exp::Mode mode,
                                            const PolicyParams& params = {});

}  // namespace mflow::steer
