// Factory helpers assembling steering policies for the experiment modes.
#pragma once

#include <memory>
#include <vector>

#include "steering/policy.hpp"

namespace mflow::steer {

std::unique_ptr<SteeringPolicy> make_vanilla();

/// RPS for the given path kind: steers the first post-GRO stage.
std::unique_ptr<SteeringPolicy> make_rps(std::vector<int> targets,
                                         bool overlay_path, Time hash_cost);

std::unique_ptr<SteeringPolicy> make_falcon(FalconSteering::Level level,
                                            std::vector<int> pool,
                                            bool overlay_path);

}  // namespace mflow::steer
