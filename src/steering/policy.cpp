#include "steering/policy.hpp"

#include <cassert>

namespace mflow::steer {

RpsSteering::RpsSteering(std::vector<int> targets, StageId steer_at,
                         Time hash_cost, std::uint32_t seed)
    : targets_(std::move(targets)),
      steer_at_(steer_at),
      hash_cost_(hash_cost),
      seed_(seed) {
  assert(!targets_.empty());
}

int RpsSteering::core_for(StageId stage, const net::Packet& pkt,
                          int from_core) {
  if (stage != steer_at_) return from_core;
  // Same hash family as hardware RSS: one flow always lands on one core —
  // which is precisely why RPS cannot split an elephant flow.
  const auto h = net::flow_hash(pkt.flow, seed_);
  return targets_[h % targets_.size()];
}

FalconSteering::FalconSteering(Level level, std::vector<int> pool,
                               bool overlay_path)
    : level_(level),
      pool_(std::move(pool)),
      overlay_(overlay_path),
      flow_base_(control::FlowTableParams{/*shards=*/1,
                                          /*capacity=*/1 << 12,
                                          /*ttl=*/0}) {
  assert(!pool_.empty());
}

int FalconSteering::group_of(StageId stage) const {
  // Stage grouping from the paper's Figure 3/4 description:
  //   device level: GRO stays on the driver core; {outer IP, VXLAN} form
  //     one pipeline stage; {bridge, veth, inner IP, transport} another.
  //   function level: GRO additionally gets its own core (the change that
  //     helped TCP), shifting the device groups down by one.
  switch (level_) {
    case Level::kDevice:
      switch (stage) {
        case StageId::kIpOuter:
        case StageId::kVxlan:
          return 1;
        case StageId::kBridge:
        case StageId::kVeth:
        case StageId::kIp:
        case StageId::kTcp:
        case StageId::kUdp:
          return overlay_ ? 2 : 1;
        default:
          return 0;
      }
    case Level::kFunction:
      switch (stage) {
        case StageId::kGro:
          return 1;
        case StageId::kIpOuter:
        case StageId::kVxlan:
          return 2;
        case StageId::kBridge:
        case StageId::kVeth:
        case StageId::kIp:
        case StageId::kTcp:
        case StageId::kUdp:
          return overlay_ ? 3 : 2;
        default:
          return 0;
      }
  }
  return 0;
}

int FalconSteering::groups() const {
  int deepest = 0;
  for (StageId s : {StageId::kGro, StageId::kIpOuter, StageId::kVxlan,
                    StageId::kBridge, StageId::kVeth, StageId::kIp,
                    StageId::kTcp, StageId::kUdp})
    deepest = std::max(deepest, group_of(s));
  return deepest;
}

int FalconSteering::core_for(StageId stage, const net::Packet& pkt,
                             int from_core) {
  const int group = group_of(stage);
  if (group == 0) return from_core;
  // Per-flow pipeline base: FALCON pins each flow's softirq stages to a
  // fixed set of cores chosen when the flow appears. Like RSS, independent
  // per-flow choices collide (two flows' heavy VXLAN stages landing on the
  // same core), which is what skews its load distribution in Figure 12.
  bool inserted = false;
  int& base = flow_base_.upsert(pkt.flow_id, ++clock_, &inserted);
  if (inserted)
    base = static_cast<int>((pkt.flow_id * 2654435761u) % pool_.size());
  const auto idx =
      static_cast<std::size_t>(base + group - 1) % pool_.size();
  return pool_[idx];
}

}  // namespace mflow::steer
