#include "util/rng.hpp"

#include <cmath>

namespace mflow::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // A zero state would be a fixed point of xoshiro; SplitMix64 cannot emit
  // four zeros in a row, but guard anyway for safety against future edits.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Lemire's nearly-divisionless method; bias is negligible for 64-bit.
  const std::uint64_t x = next();
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(x) * bound) >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::pareto(double min_value, double alpha, double cap) {
  double u = uniform01();
  if (u >= 1.0) u = 1.0 - 0x1.0p-53;
  const double v = min_value * std::pow(1.0 - u, -1.0 / alpha);
  return v < cap ? v : cap;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace mflow::util
