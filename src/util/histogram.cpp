#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace mflow::util {

Histogram::Histogram(int sub_bucket_bits)
    : sub_bits_(sub_bucket_bits),
      sub_count_(std::uint64_t{1} << sub_bucket_bits) {
  // 64 power-of-two ranges is enough for any uint64 value.
  buckets_.assign(static_cast<std::size_t>(64 - sub_bits_) * sub_count_, 0);
}

std::size_t Histogram::bucket_index(std::uint64_t value) const {
  // Values below sub_count_ land in the first (purely linear) range.
  if (value < sub_count_) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int range = msb - sub_bits_ + 1;  // >= 1
  const std::uint64_t offset = (value >> range) & (sub_count_ / 2 - 1);
  // Each range past the first contributes sub_count_/2 new buckets.
  const std::size_t base =
      sub_count_ + static_cast<std::size_t>(range - 1) * (sub_count_ / 2);
  return base + static_cast<std::size_t>(offset);
}

std::uint64_t Histogram::bucket_low(std::size_t index) const {
  if (index < sub_count_) return index;
  const std::size_t rel = index - sub_count_;
  const std::size_t half = sub_count_ / 2;
  const int range = static_cast<int>(rel / half) + 1;
  const std::uint64_t offset = rel % half;
  return ((half + offset) << range);
}

std::uint64_t Histogram::bucket_mid(std::size_t index) const {
  if (index < sub_count_) return index;
  const std::size_t rel = index - sub_count_;
  const std::size_t half = sub_count_ / 2;
  const int range = static_cast<int>(rel / half) + 1;
  const std::uint64_t width = std::uint64_t{1} << range;
  return bucket_low(index) + width / 2;
}

void Histogram::record(std::uint64_t value) { record_n(value, 1); }

void Histogram::record_n(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  const std::size_t idx = bucket_index(value);
  if (idx < buckets_.size()) buckets_[idx] += count;
  count_ += count;
  max_ = std::max(max_, value);
  if (!has_min_ || value < min_) {
    min_ = value;
    has_min_ = true;
  }
  const double v = static_cast<double>(value);
  sum_ += v * static_cast<double>(count);
  sum_sq_ += v * v * static_cast<double>(count);
}

void Histogram::merge(const Histogram& other) {
  if (other.sub_bits_ == sub_bits_) {
    for (std::size_t i = 0; i < buckets_.size(); ++i)
      buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    max_ = std::max(max_, other.max_);
    if (other.has_min_ && (!has_min_ || other.min_ < min_)) {
      min_ = other.min_;
      has_min_ = true;
    }
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    return;
  }
  // Different resolution: re-record bucket midpoints (lossy but rare).
  for (std::size_t i = 0; i < other.buckets_.size(); ++i)
    if (other.buckets_[i] > 0) record_n(other.bucket_mid(i), other.buckets_[i]);
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  max_ = 0;
  min_ = 0;
  has_min_ = false;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

std::uint64_t Histogram::min() const { return has_min_ ? min_ : 0; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  if (count_ == 0) return 0.0;
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  const double var = sum_sq_ / n - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) return bucket_mid(i);
  }
  return max_;
}

std::string Histogram::summary(double scale, const std::string& unit) const {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed;
  os << "n=" << count_ << " mean=" << mean() * scale << unit
     << " p50=" << static_cast<double>(p50()) * scale << unit
     << " p99=" << static_cast<double>(p99()) * scale << unit
     << " max=" << static_cast<double>(max_) * scale << unit;
  return os.str();
}

}  // namespace mflow::util
