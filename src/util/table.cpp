#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace mflow::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

Table::Cell::Cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  text = os.str();
}
Table::Cell::Cell(int v) : text(std::to_string(v)) {}
Table::Cell::Cell(long v) : text(std::to_string(v)) {}
Table::Cell::Cell(long long v) : text(std::to_string(v)) {}
Table::Cell::Cell(unsigned long v) : text(std::to_string(v)) {}
Table::Cell::Cell(unsigned long long v) : text(std::to_string(v)) {}

void Table::add(std::initializer_list<Cell> cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const auto& c : cells) row.push_back(c.text);
  add_row(std::move(row));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << quote(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_gbps(double gbps) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << gbps << " Gbps";
  return os.str();
}

std::string fmt_pct(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << fraction * 100.0 << "%";
  return os.str();
}

std::string fmt_us(double nanoseconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << nanoseconds / 1000.0 << " us";
  return os.str();
}

}  // namespace mflow::util
