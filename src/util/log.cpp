#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace mflow::util {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes sink swaps and emission: concurrent log_message calls from rt
// engine threads print whole lines, never interleaved fragments.
std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_slot() {
  static LogSink sink;
  return sink;
}
}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(log_mutex());
  sink_slot() = std::move(sink);
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(log_mutex());
  if (LogSink& sink = sink_slot()) {
    sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), msg.c_str());
}

}  // namespace mflow::util
