// Column-aligned plain-text tables and CSV output for the benchmark
// harness: every figure/table reproduction prints its series through this.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace mflow::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; its size must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision, keeps strings.
  struct Cell {
    std::string text;
    Cell(const char* s) : text(s) {}                 // NOLINT(runtime/explicit)
    Cell(std::string s) : text(std::move(s)) {}     // NOLINT(runtime/explicit)
    Cell(double v, int precision = 2);               // NOLINT(runtime/explicit)
    Cell(int v);                                     // NOLINT(runtime/explicit)
    Cell(long v);                                    // NOLINT(runtime/explicit)
    Cell(long long v);                               // NOLINT(runtime/explicit)
    Cell(unsigned long v);                           // NOLINT(runtime/explicit)
    Cell(unsigned long long v);                      // NOLINT(runtime/explicit)
  };
  void add(std::initializer_list<Cell> cells);

  /// Render with column alignment, a header separator, and optional title.
  void print(std::ostream& os, const std::string& title = "") const;

  /// RFC-4180-ish CSV (quotes cells containing commas or quotes).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used across benches.
std::string fmt_gbps(double gbps);
std::string fmt_pct(double fraction);  // 0.42 -> "42.0%"
std::string fmt_us(double nanoseconds);

}  // namespace mflow::util
