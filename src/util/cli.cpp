#include "util/cli.hpp"

#include <cstdlib>

namespace mflow::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg] = "true";
      } else {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& key) const {
  used_[key] = true;
  return kv_.count(key) > 0;
}

std::string Cli::get(const std::string& key, const std::string& def) const {
  used_[key] = true;
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  const auto s = get(key, "");
  if (s.empty()) return def;
  return std::strtoll(s.c_str(), nullptr, 0);
}

double Cli::get_double(const std::string& key, double def) const {
  const auto s = get(key, "");
  if (s.empty()) return def;
  return std::strtod(s.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool def) const {
  const auto s = get(key, "");
  if (s.empty()) return def;
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : kv_)
    if (!used_.count(k)) out.push_back(k);
  return out;
}

}  // namespace mflow::util
