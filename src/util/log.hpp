// Tiny leveled logger. Disabled levels compile to a cheap branch; the
// simulator's hot path never logs unless verbose mode is requested.
// Emission is serialized under a mutex so rt engine threads can log without
// interleaving lines (the level check itself stays lock-free).
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace mflow::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

const char* log_level_name(LogLevel level);

/// Redirect formatted lines somewhere other than stderr (tests, file
/// capture). Pass nullptr to restore stderr. Called under the log mutex.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mflow::util

#define MFLOW_LOG(level)                                       \
  if (static_cast<int>(level) < static_cast<int>(::mflow::util::log_level())) \
    ;                                                          \
  else                                                         \
    ::mflow::util::detail::LogLine(level)

#define MFLOW_DEBUG() MFLOW_LOG(::mflow::util::LogLevel::kDebug)
#define MFLOW_INFO() MFLOW_LOG(::mflow::util::LogLevel::kInfo)
#define MFLOW_WARN() MFLOW_LOG(::mflow::util::LogLevel::kWarn)
#define MFLOW_ERROR() MFLOW_LOG(::mflow::util::LogLevel::kError)
