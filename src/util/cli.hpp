// Minimal --key=value / --flag command-line parser for benches & examples.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mflow::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Positional (non --key) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were passed but never queried (typo detection).
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace mflow::util
