// Deterministic pseudo-random number generation for reproducible simulation.
//
// All stochastic behaviour in the simulator (background interference, workload
// arrival jitter, hash seeds, ...) draws from an Rng seeded explicitly by the
// experiment, so that a scenario re-run with the same seed replays the exact
// same event sequence. We use xoshiro256** (public domain, Blackman/Vigna):
// fast, high quality, and trivially embeddable, which keeps experiments
// independent of the C++ standard library's unspecified distributions.
#pragma once

#include <cstdint>
#include <limits>

namespace mflow::util {

/// xoshiro256** PRNG with SplitMix64 seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the full 256-bit state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <random> if desired).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  /// bound must be nonzero.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Bounded Pareto-ish heavy tail: min * (1-u)^(-1/alpha), capped at cap.
  double pareto(double min_value, double alpha, double cap);

  /// Bernoulli trial with probability p in [0, 1].
  bool chance(double p) { return uniform01() < p; }

  /// Derive an independent child generator (for per-component streams).
  Rng fork();

 private:
  std::uint64_t s_[4]{};
};

}  // namespace mflow::util
