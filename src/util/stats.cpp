#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mflow::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double stddev(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  // Linear interpolation between closest ranks (the "R-7" definition used
  // by numpy and spreadsheets). Nearest-rank with ceil() skewed p50/p99
  // high on the small samples the latency benches collect.
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

}  // namespace mflow::util
