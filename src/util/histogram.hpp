// Log-bucketed latency histogram (HDR-histogram style).
//
// Records non-negative integer values (we use nanoseconds) into buckets whose
// width grows geometrically, giving ~1.6% relative error across nine decades
// with a few KB of memory. Used for every latency distribution the
// benchmarks report (median / p99 / p99.9), mirroring how sockperf and the
// paper report tail latency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mflow::util {

class Histogram {
 public:
  /// sub_bucket_bits controls resolution: each power-of-two range is divided
  /// into 2^sub_bucket_bits linear buckets (default 64 -> <=1.6% error).
  explicit Histogram(int sub_bucket_bits = 6);

  void record(std::uint64_t value);
  void record_n(std::uint64_t value, std::uint64_t count);

  /// Merge another histogram (same sub_bucket_bits) into this one.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const;
  std::uint64_t max() const { return max_; }
  double mean() const;
  double stddev() const;

  /// Value at quantile q in [0, 1]. Returns 0 for an empty histogram.
  std::uint64_t quantile(double q) const;
  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p90() const { return quantile(0.90); }
  std::uint64_t p99() const { return quantile(0.99); }
  std::uint64_t p999() const { return quantile(0.999); }

  void clear();

  /// One-line summary, values scaled by `scale` and suffixed with `unit`
  /// (e.g. scale=1e-3, unit="us" to print nanoseconds as microseconds).
  std::string summary(double scale = 1.0, const std::string& unit = "") const;

 private:
  std::size_t bucket_index(std::uint64_t value) const;
  std::uint64_t bucket_low(std::size_t index) const;
  std::uint64_t bucket_mid(std::size_t index) const;

  int sub_bits_;
  std::uint64_t sub_count_;        // 2^sub_bits_
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = 0;
  bool has_min_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace mflow::util
