// Streaming statistics (Welford) and small helpers shared by the
// experiment harness and benchmarks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mflow::util {

/// Numerically stable running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void clear();

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Population standard deviation of a sample span.
double stddev(std::span<const double> xs);

/// Arithmetic mean of a sample span (0 for empty).
double mean(std::span<const double> xs);

/// Percentile of a copy-sorted sample, linearly interpolated between the
/// closest ranks (numpy's default). q is clamped to [0, 1]; q=0 is the
/// minimum, q=1 the maximum, and a single-element sample returns it for
/// every q.
double percentile(std::vector<double> xs, double q);

}  // namespace mflow::util
