#include "overlay/container.hpp"

// Header-only data for now; this TU anchors the library target.
namespace mflow::overlay {}
