// RX-path construction: assembles the stage pipeline a received packet
// traverses, for the physical host network ("native") or the Docker-style
// VXLAN overlay — and the MFLOW variants of the latter.
#pragma once

#include <memory>
#include <vector>

#include "net/gro.hpp"
#include "overlay/container.hpp"
#include "stack/bridge.hpp"
#include "stack/gro_stage.hpp"
#include "stack/ip_rx.hpp"
#include "stack/stage.hpp"
#include "stack/tcp_rx.hpp"
#include "stack/udp_rx.hpp"
#include "stack/veth.hpp"
#include "stack/vxlan.hpp"

namespace mflow::overlay {

struct PathSpec {
  bool overlay = true;
  std::uint8_t protocol = net::Ipv4Header::kProtoTcp;
  std::uint32_t vni = 42;
  /// Stateful transport handled in the socket reader (MFLOW TCP full-path
  /// mode): the kTcp stage is then omitted from the softirq path.
  bool tcp_in_reader = false;
  /// GRO aggregation limit. Encapsulated traffic aggregates far less in
  /// practice (inner-header matching across the VXLAN boundary), modeled as
  /// a lower cap; see DESIGN.md calibration notes.
  std::uint32_t gro_max_segs_native = 44;
  std::uint32_t gro_max_segs_overlay = 8;
};

/// Softirq TCP stage that owns its receiver (vanilla/RPS/FALCON paths).
class OwningTcpStage final : public stack::Stage {
 public:
  explicit OwningTcpStage(const stack::CostModel& costs)
      : receiver_(costs), inner_(costs, receiver_) {}

  stack::StageId id() const override { return inner_.id(); }
  sim::Tag tag() const override { return inner_.tag(); }
  stack::Time cost(const net::Packet& pkt) const override {
    return inner_.cost(pkt);
  }
  void process(net::PacketPtr pkt, stack::StageContext& ctx) override {
    inner_.process(std::move(pkt), ctx);
  }

  stack::TcpReceiver& receiver() { return receiver_; }

 private:
  stack::TcpReceiver receiver_;
  stack::TcpStage inner_;
};

/// Build the ordered post-driver stage list for `spec`.
std::vector<std::unique_ptr<stack::Stage>> build_rx_path(
    const stack::CostModel& costs, const PathSpec& spec);

/// Convenience: find the softirq-context TCP receiver in a built machine
/// path (nullptr when tcp_in_reader or UDP).
stack::TcpReceiver* find_softirq_tcp_receiver(stack::Machine& machine);

/// Install the per-flow fast-path cache onto a built overlay path: probe in
/// the VXLAN stage, record in the bridge, commit at veth, plus the machine-
/// level pointer the control plane invalidates through. Throws
/// std::invalid_argument if the machine's path has no overlay stages (a
/// native path has nothing to cache). `cache` must outlive the machine's
/// packet processing.
void install_flow_cache(stack::Machine& machine, stack::FlowCache& cache);

}  // namespace mflow::overlay
