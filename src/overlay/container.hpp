// Container endpoint model: a network namespace with a private IP behind a
// veth pair, reachable through the host's VXLAN overlay (the Docker overlay
// network arrangement of the paper's testbed).
#pragma once

#include <cstdint>
#include <string>

#include "net/headers.hpp"

namespace mflow::overlay {

struct Container {
  std::string name;
  net::Ipv4Addr ip;        // private (overlay) address
  net::MacAddr mac{};
  std::uint16_t port = 0;  // the containerized service's listen port
};

struct Host {
  std::string name;
  net::Ipv4Addr ip;  // underlay (physical network) address
};

/// One Docker-style overlay network: a VNI connecting containers on
/// participating hosts.
struct OverlayNetwork {
  std::uint32_t vni = 42;
  Host local;               // the receiver machine we simulate in detail
  Host remote;              // the client machine(s)
};

}  // namespace mflow::overlay
