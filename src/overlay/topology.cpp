#include "overlay/topology.hpp"

#include "stack/machine.hpp"

namespace mflow::overlay {

std::vector<std::unique_ptr<stack::Stage>> build_rx_path(
    const stack::CostModel& costs, const PathSpec& spec) {
  std::vector<std::unique_ptr<stack::Stage>> path;

  net::GroParams gro;
  gro.max_segs =
      spec.overlay ? spec.gro_max_segs_overlay : spec.gro_max_segs_native;
  path.push_back(std::make_unique<stack::GroStage>(costs, gro));

  if (spec.overlay) {
    // Host-side traversal: outer IP -> VXLAN decap -> bridge -> veth, then
    // the container-side stack ("goes through the network protocol stacks
    // twice", paper §II-A).
    path.push_back(std::make_unique<stack::IpRxStage>(costs, /*outer=*/true));
    path.push_back(std::make_unique<stack::VxlanStage>(costs, spec.vni));
    path.push_back(std::make_unique<stack::BridgeStage>(costs));
    path.push_back(std::make_unique<stack::VethStage>(costs));
  }
  path.push_back(std::make_unique<stack::IpRxStage>(costs, /*outer=*/false));

  if (spec.protocol == net::Ipv4Header::kProtoTcp) {
    if (!spec.tcp_in_reader)
      path.push_back(std::make_unique<OwningTcpStage>(costs));
    // else: stateful TCP runs in the socket reader after the MFLOW merge.
  } else {
    path.push_back(std::make_unique<stack::UdpStage>(costs));
  }
  return path;
}

void install_flow_cache(stack::Machine& machine, stack::FlowCache& cache) {
  if (!machine.has_stage(stack::StageId::kVxlan))
    throw std::invalid_argument(
        "install_flow_cache: machine path has no VXLAN stage (native paths "
        "have no overlay segment to cache)");
  auto& vxlan = static_cast<stack::VxlanStage&>(
      machine.stage_at(machine.stage_index(stack::StageId::kVxlan)));
  auto& bridge = static_cast<stack::BridgeStage&>(
      machine.stage_at(machine.stage_index(stack::StageId::kBridge)));
  auto& veth = static_cast<stack::VethStage&>(
      machine.stage_at(machine.stage_index(stack::StageId::kVeth)));
  vxlan.set_cache(&cache);
  bridge.set_cache(&cache);
  veth.set_cache(&cache);
  machine.set_flow_cache(&cache);
}

stack::TcpReceiver* find_softirq_tcp_receiver(stack::Machine& machine) {
  for (std::size_t i = 0; i < machine.path_length(); ++i) {
    if (machine.stage_at(i).id() == stack::StageId::kTcp)
      return &static_cast<OwningTcpStage&>(machine.stage_at(i)).receiver();
  }
  return nullptr;
}

}  // namespace mflow::overlay
