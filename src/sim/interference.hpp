// Background interference injection.
//
// The paper's out-of-order analysis (Figure 7) hinges on cores not having
// uniform effective speed: "each CPU core may have different processing
// capability and/or be interrupted by concurrent kernel tasks". We model
// that as a Poisson process of background tasks per core, each occupying the
// core for a random duration under Tag::kOther. Deterministic given the
// simulator seed.
#pragma once

#include <vector>

#include "sim/core.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mflow::sim {

struct InterferenceParams {
  Time mean_interval = us(50);  // mean gap between background tasks
  Time min_duration = us(1);    // task duration ~ U[min, max]
  Time max_duration = us(5);
  bool enabled = true;
};

/// Attaches an independent background-task process to each given core.
class Interference {
 public:
  Interference(Simulator& sim, InterferenceParams params, std::uint64_t seed);

  /// Start injecting on `core` (idempotent per core).
  void attach(Core& core);

  std::uint64_t events_injected() const { return events_; }
  Time total_injected_ns() const { return injected_ns_; }

 private:
  void schedule_next(Core& core, util::Rng rng);

  Simulator& sim_;
  InterferenceParams params_;
  util::Rng seed_rng_;
  std::uint64_t events_ = 0;
  Time injected_ns_ = 0;
  std::vector<const Core*> attached_;
};

}  // namespace mflow::sim
