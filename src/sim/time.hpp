// Virtual time for the discrete-event simulator. All simulation time is in
// integer nanoseconds; helpers below keep call sites readable.
#pragma once

#include <cstdint>

namespace mflow::sim {

using Time = std::int64_t;  // nanoseconds of virtual time

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1'000;
constexpr Time kMillisecond = 1'000'000;
constexpr Time kSecond = 1'000'000'000;

constexpr Time us(double v) { return static_cast<Time>(v * 1e3); }
constexpr Time ms(double v) { return static_cast<Time>(v * 1e6); }
constexpr Time seconds(double v) { return static_cast<Time>(v * 1e9); }

constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_us(Time t) { return static_cast<double>(t) * 1e-3; }

}  // namespace mflow::sim
