#include "sim/simulator.hpp"

namespace mflow::sim {

std::uint64_t Simulator::run_until(Time until) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.next_time() < until) {
    auto [when, fn] = queue_.pop();
    now_ = when;
    fn();
    ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

std::uint64_t Simulator::run() {
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    auto [when, fn] = queue_.pop();
    now_ = when;
    fn();
    ++fired;
  }
  return fired;
}

}  // namespace mflow::sim
