#include "sim/event_queue.hpp"

#include <memory>
#include <utility>

namespace mflow::sim {

void EventQueue::push(Time when, EventFn fn) {
  heap_.push(Entry{when, next_seq_++,
                   std::make_shared<EventFn>(std::move(fn))});
}

std::pair<Time, EventFn> EventQueue::pop() {
  Entry top = heap_.top();
  heap_.pop();
  return {top.when, std::move(*top.fn)};
}

void EventQueue::clear() {
  heap_ = {};
  next_seq_ = 0;
}

}  // namespace mflow::sim
