#include "sim/interference.hpp"

#include <algorithm>

namespace mflow::sim {

Interference::Interference(Simulator& sim, InterferenceParams params,
                           std::uint64_t seed)
    : sim_(sim), params_(params), seed_rng_(seed) {}

void Interference::attach(Core& core) {
  if (!params_.enabled) return;
  if (std::find(attached_.begin(), attached_.end(), &core) != attached_.end())
    return;
  attached_.push_back(&core);
  schedule_next(core, seed_rng_.fork());
}

void Interference::schedule_next(Core& core, util::Rng rng) {
  const Time gap = std::max<Time>(
      1, static_cast<Time>(
             rng.exponential(static_cast<double>(params_.mean_interval))));
  sim_.after(gap, [this, &core, rng]() mutable {
    const Time dur = rng.uniform_range(params_.min_duration,
                                       params_.max_duration);
    core.inject(Tag::kOther, dur);
    ++events_;
    injected_ns_ += dur;
    schedule_next(core, rng);
  });
}

}  // namespace mflow::sim
