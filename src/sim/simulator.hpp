// The discrete-event simulator driving all experiments.
//
// Why a simulator: the paper's results are scheduling/queueing phenomena on a
// 2x16-core server with a 100GbE NIC — hardware we cannot assume. A
// deterministic DES reproduces exactly those phenomena (which stage runs on
// which core, which core saturates, how queues back up) independent of the
// host machine, and makes every experiment replayable from a seed.
#pragma once

#include <cassert>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mflow::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Time now() const { return now_; }

  /// Schedule fn at absolute virtual time `when` (>= now()).
  void at(Time when, EventFn fn) {
    assert(when >= now_);
    queue_.push(when, std::move(fn));
  }

  /// Schedule fn `delay` ns from now.
  void after(Time delay, EventFn fn) { at(now_ + delay, std::move(fn)); }

  /// Run until the event queue drains or virtual time reaches `until`.
  /// Events at exactly `until` do not fire. Returns the number of events run.
  std::uint64_t run_until(Time until);

  /// Run until the queue drains completely.
  std::uint64_t run();

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

  util::Rng& rng() { return rng_; }

 private:
  Time now_ = 0;
  EventQueue queue_;
  util::Rng rng_;
};

}  // namespace mflow::sim
