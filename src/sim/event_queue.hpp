// Priority queue of timestamped events with deterministic FIFO tie-breaking.
//
// Determinism matters: two events scheduled for the same virtual instant must
// always fire in insertion order, so a re-run with the same seed replays the
// same interleaving. A plain std::priority_queue over (time, sequence) pairs
// gives exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mflow::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  void push(Time when, EventFn fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  Time next_time() const { return heap_.top().when; }

  /// Pop and return the earliest event (by time, then insertion order).
  /// Precondition: !empty().
  std::pair<Time, EventFn> pop();

  void clear();

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    // shared_ptr keeps Entry copyable for priority_queue while avoiding a
    // std::function copy on every heap swap.
    std::shared_ptr<EventFn> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mflow::sim
