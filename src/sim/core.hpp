// Virtual CPU cores with a softirq/NAPI-style run loop.
//
// Model: each core owns a round-robin list of `Pollable` work sources (NAPI
// instances, per-core backlog queues, application readers, traffic senders).
// When a source is raised on a core, the core — if idle — starts a "slice":
// it polls the source for up to a budget of work items; the source charges
// consumed CPU nanoseconds under an accounting tag; the core becomes busy for
// the charged duration and then runs the next pending source. This mirrors
// how Linux multiplexes softirqs of multiple network devices on one core in
// an interleaved, batched fashion — the behaviour the paper's Figure 3 shows
// and that MFLOW's flow-splitting function re-purposes.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string_view>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mflow::sim {

/// CPU accounting tags: one per network-stack stage so experiments can print
/// the per-core utilization breakdowns of the paper's Figures 4b / 8b / 12.
enum class Tag : std::uint8_t {
  kIrq,       // hardware interrupt top half
  kDriver,    // driver descriptor poll (first half of stage 1)
  kSkbAlloc,  // skb construction (second half of stage 1)
  kGro,       // generic receive offload
  kSteer,     // RPS / FALCON / MFLOW dispatch work (incl. IPI send)
  kVxlan,     // VXLAN decapsulation device
  kBridge,    // virtual bridge
  kVeth,      // container veth pair
  kIpRx,      // IP receive (outer or inner)
  kTcpRx,     // TCP receive processing
  kUdpRx,     // UDP receive processing
  kNf,        // stateful NF stages (NAT / firewall / LB, src/nf)
  kMerge,     // MFLOW batch reassembling
  kCopy,      // kernel->user data copy (packet delivery thread)
  kApp,       // application-level work
  kSender,    // client-side transmit path
  kOther,     // background interference / unrelated kernel tasks
  kCount,
};

std::string_view tag_name(Tag tag);
constexpr std::size_t kTagCount = static_cast<std::size_t>(Tag::kCount);

class Core;

/// A schedulable work source (analogous to a NAPI instance / softirq).
class Pollable {
 public:
  virtual ~Pollable() = default;

  /// Process up to `budget` items, charging CPU via core.charge().
  /// Return true if work remains (the core keeps it in its run list).
  virtual bool poll(Core& core, int budget) = 0;

  virtual std::string_view poll_name() const { return "pollable"; }

  bool scheduled() const { return scheduled_; }

 private:
  friend class Core;
  bool scheduled_ = false;
};

struct CoreParams {
  int napi_budget = 64;        // max items per slice per source
  Time ipi_wakeup_ns = 1500;   // latency before a remotely-raised idle core
                               // starts executing (IPI + softirq entry)
};

class Core {
 public:
  Core(Simulator& sim, int id, CoreParams params = {});

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  int id() const { return id_; }
  Simulator& simulator() { return sim_; }

  /// Make `src` runnable on this core. `remote` marks a cross-core raise
  /// (an IPI): if the core is idle it pays the wakeup latency first.
  /// Returns true when the core had to be woken (i.e. an IPI was actually
  /// sent) — callers charge the IPI send cost on their own core then.
  bool raise(Pollable& src, bool remote = false);

  /// Charge `ns` of CPU under `tag`. Only valid while a poll is running on
  /// this core (the usual case) or as external injection (see inject()).
  void charge(Tag tag, Time ns);

  /// Account CPU consumed outside any pollable (interrupt top halves,
  /// background interference). Extends the core's busy period.
  void inject(Tag tag, Time ns);

  bool idle() const { return !loop_scheduled_ && run_list_.empty(); }

  /// Earliest virtual time at which this core can start new work.
  Time free_at() const { return free_at_; }

  /// Virtual time at which the CPU work charged so far completes. Inside a
  /// poll this is the slice start plus everything charged in the slice, so
  /// consecutive per-packet tracepoints see service time advance even
  /// though event-queue time only moves between slices.
  Time vnow() const {
    if (in_poll_) return sim_.now() + slice_ns_;
    return free_at_ > sim_.now() ? free_at_ : sim_.now();
  }

  // --- accounting ----------------------------------------------------------
  Time busy_ns(Tag tag) const {
    return busy_[static_cast<std::size_t>(tag)];
  }
  Time total_busy_ns() const;
  /// Fraction of `window` ns this core spent busy (all tags).
  double utilization(Time window) const;
  void reset_accounting();

  std::uint64_t slices_run() const { return slices_; }

 private:
  void schedule_loop();
  void run_slice();

  Simulator& sim_;
  int id_;
  CoreParams params_;

  std::deque<Pollable*> run_list_;
  bool loop_scheduled_ = false;
  bool in_poll_ = false;
  Time slice_ns_ = 0;     // CPU charged during the current poll
  Time pending_inject_ = 0;
  Time free_at_ = 0;
  std::uint64_t slices_ = 0;

  std::array<Time, kTagCount> busy_{};
};

}  // namespace mflow::sim
