#include "sim/core.hpp"

#include <algorithm>
#include <cassert>

namespace mflow::sim {

std::string_view tag_name(Tag tag) {
  switch (tag) {
    case Tag::kIrq: return "irq";
    case Tag::kDriver: return "driver";
    case Tag::kSkbAlloc: return "skb_alloc";
    case Tag::kGro: return "gro";
    case Tag::kSteer: return "steer";
    case Tag::kVxlan: return "vxlan";
    case Tag::kBridge: return "bridge";
    case Tag::kVeth: return "veth";
    case Tag::kIpRx: return "ip_rx";
    case Tag::kTcpRx: return "tcp_rx";
    case Tag::kUdpRx: return "udp_rx";
    case Tag::kNf: return "nf";
    case Tag::kMerge: return "merge";
    case Tag::kCopy: return "copy";
    case Tag::kApp: return "app";
    case Tag::kSender: return "sender";
    case Tag::kOther: return "other";
    case Tag::kCount: break;
  }
  return "?";
}

Core::Core(Simulator& sim, int id, CoreParams params)
    : sim_(sim), id_(id), params_(params) {}

bool Core::raise(Pollable& src, bool remote) {
  if (!src.scheduled_) {
    src.scheduled_ = true;
    run_list_.push_back(&src);
  }
  if (!loop_scheduled_) {
    if (remote) {
      // An idle core woken by IPI pays interrupt-entry latency. (A busy core
      // notices new work when its current slice ends, like NAPI re-polling.)
      free_at_ = std::max(free_at_, sim_.now() + params_.ipi_wakeup_ns);
    }
    schedule_loop();
    return true;
  }
  return false;
}

void Core::charge(Tag tag, Time ns) {
  assert(ns >= 0);
  busy_[static_cast<std::size_t>(tag)] += ns;
  if (in_poll_) {
    slice_ns_ += ns;
  } else {
    // Charged outside a poll: treat as injection.
    if (loop_scheduled_) {
      pending_inject_ += ns;
    } else {
      free_at_ = std::max(free_at_, sim_.now()) + ns;
    }
  }
}

void Core::inject(Tag tag, Time ns) {
  assert(!in_poll_);
  busy_[static_cast<std::size_t>(tag)] += ns;
  if (loop_scheduled_) {
    pending_inject_ += ns;
  } else {
    free_at_ = std::max(free_at_, sim_.now()) + ns;
  }
}

void Core::schedule_loop() {
  loop_scheduled_ = true;
  const Time start = std::max(free_at_, sim_.now());
  sim_.at(start, [this] { run_slice(); });
}

void Core::run_slice() {
  assert(loop_scheduled_);
  if (run_list_.empty()) {
    loop_scheduled_ = false;
    return;
  }
  Pollable* src = run_list_.front();
  run_list_.pop_front();

  ++slices_;
  slice_ns_ = pending_inject_;
  pending_inject_ = 0;
  in_poll_ = true;
  const bool more = src->poll(*this, params_.napi_budget);
  in_poll_ = false;

  if (more) {
    // Round-robin: go to the back so other sources on this core make
    // progress (softirq fairness).
    run_list_.push_back(src);
  } else {
    src->scheduled_ = false;
  }

  free_at_ = sim_.now() + slice_ns_;
  slice_ns_ = 0;

  if (!run_list_.empty()) {
    sim_.at(free_at_, [this] { run_slice(); });
  } else {
    loop_scheduled_ = false;
  }
}

Time Core::total_busy_ns() const {
  Time total = 0;
  for (Time t : busy_) total += t;
  return total;
}

double Core::utilization(Time window) const {
  if (window <= 0) return 0.0;
  return std::min(1.0, static_cast<double>(total_busy_ns()) /
                           static_cast<double>(window));
}

void Core::reset_accounting() {
  busy_.fill(0);
  slices_ = 0;
}

}  // namespace mflow::sim
