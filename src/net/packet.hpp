// The packet / skb model.
//
// A Packet carries REAL header bytes (so encap/decap/parse/verify are genuine
// transformations) plus a VIRTUAL payload: only the payload length is
// tracked, never its bytes — at simulated 100GbE rates materializing payloads
// would dominate runtime without changing any result the paper reports.
//
// A Packet plays the role of both the raw DMA buffer (before skb allocation)
// and the skb (after): `skb_allocated` flips when the driver stage runs,
// which is exactly the boundary MFLOW's IRQ-splitting function exploits.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/flow.hpp"
#include "net/headers.hpp"
#include "sim/time.hpp"

namespace mflow::net {

/// skb-like byte buffer with headroom: push() prepends (encap), pull()
/// strips (decap).
class PacketBuffer {
 public:
  explicit PacketBuffer(std::size_t headroom = 64);

  /// Append `n` bytes at the tail; returns the writable region.
  std::span<std::uint8_t> append(std::size_t n);
  /// Prepend `n` bytes (requires headroom); returns the writable region.
  std::span<std::uint8_t> push(std::size_t n);
  /// Strip `n` bytes from the front. Requires n <= size().
  void pull(std::size_t n);

  std::span<const std::uint8_t> data() const {
    return {bytes_.data() + head_, bytes_.size() - head_};
  }
  std::span<std::uint8_t> data() {
    return {bytes_.data() + head_, bytes_.size() - head_};
  }
  std::size_t size() const { return bytes_.size() - head_; }
  std::size_t headroom() const { return head_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t head_;  // offset of first valid byte
};

constexpr std::uint32_t kMtu = 1500;
/// Inner MSS for MTU 1500 with our header sizes (IPv4 + TCP, no options),
/// further reduced by 50 bytes of VXLAN overhead when tunneled.
constexpr std::uint32_t kVxlanOverhead =
    EthernetHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize +
    VxlanHeader::kSize;  // 50 bytes
constexpr std::uint32_t kTcpMss = kMtu - Ipv4Header::kSize - TcpHeader::kSize;

struct Packet {
  PacketBuffer buf;              // real header bytes (+ nothing else)
  std::uint32_t payload_len = 0;  // virtual payload bytes

  FlowKey flow;                  // innermost 5-tuple
  FlowId flow_id = 0;            // dense workload-assigned id
  bool encapsulated = false;     // still carrying VXLAN outer headers

  std::uint64_t wire_seq = 0;    // per-flow arrival index at receiver NIC
  // 64-bit TCP stream offset of the first payload byte. The encoded wire
  // header carries the low 32 bits; the simulation keeps the full offset so
  // multi-gigabyte streams need no sequence-wrap handling.
  std::uint64_t tcp_seq = 0;
  std::uint64_t message_id = 0;  // application message this packet belongs to
  std::uint32_t message_bytes = 0;  // total payload bytes of that message
  bool skb_allocated = false;    // driver stage has built the skb

  sim::Time t_wire = 0;          // arrival time at the receiver NIC

  // GRO: number of original segments coalesced into this skb (>= 1).
  std::uint32_t gro_segs = 1;

  // MFLOW: micro-flow (batch) identifier; reflects the batch's position in
  // the original flow. 0 = not split. (Paper stores this in the skb.)
  std::uint64_t microflow_id = 0;

  std::uint32_t wire_len() const {
    return static_cast<std::uint32_t>(buf.size()) + payload_len;
  }
};

using PacketPtr = std::unique_ptr<Packet>;

// --- construction & tunnel operations ---------------------------------------

/// Build a TCP segment with real Eth/IPv4/TCP headers for `flow`. The wire
/// header's sequence field is the low 32 bits of `tcp_seq`.
PacketPtr make_tcp_segment(const FlowKey& flow, std::uint64_t tcp_seq,
                           std::uint32_t payload_len);

/// Build a UDP datagram (or fragment) with real Eth/IPv4/UDP headers.
PacketPtr make_udp_datagram(const FlowKey& flow, std::uint32_t payload_len);

/// VXLAN-encapsulate in place: prepends outer Eth/IPv4/UDP/VXLAN (50 bytes).
/// Outer UDP source port is derived from the inner flow hash, as RFC 7348
/// recommends (this is what lets RSS spread *different* tunneled flows).
void vxlan_encap(Packet& pkt, const Ipv4Addr& outer_src,
                 const Ipv4Addr& outer_dst, std::uint32_t vni);

/// Result of parsing+stripping the outer headers.
struct DecapResult {
  bool ok = false;
  std::uint32_t vni = 0;
};

/// VXLAN-decapsulate in place: verifies outer IPv4 checksum, UDP dst port
/// and VXLAN flags, then strips the 50-byte outer stack.
DecapResult vxlan_decap(Packet& pkt);

/// Parse the (current) outermost IPv4 header without modifying the packet.
Ipv4Header peek_ipv4(const Packet& pkt);

}  // namespace mflow::net
