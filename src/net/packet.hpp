// The packet / skb model.
//
// A Packet carries REAL header bytes (so encap/decap/parse/verify are genuine
// transformations) plus a VIRTUAL payload: only the payload length is
// tracked, never its bytes — at simulated 100GbE rates materializing payloads
// would dominate runtime without changing any result the paper reports.
//
// A Packet plays the role of both the raw DMA buffer (before skb allocation)
// and the skb (after): `skb_allocated` flips when the driver stage runs,
// which is exactly the boundary MFLOW's IRQ-splitting function exploits.
//
// Ownership: every packet travels as a `PacketPtr`, a unique_ptr whose
// deleter knows how the packet was obtained. Heap packets (make_packet) are
// deleted; pooled packets (rt::PacketPool, docs/PERFORMANCE.md) are handed
// back to their pool's free list when the pointer dies — drop, GRO merge,
// and copy-to-user all recycle through the exact same destructor path, so
// no call site needs to know which kind it holds.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/flow.hpp"
#include "net/headers.hpp"
#include "sim/time.hpp"

namespace mflow::net {

/// skb-like byte buffer with headroom: push() prepends (encap), pull()
/// strips (decap). Backed by a std::vector whose capacity is PRESERVED by
/// reset(), which is what lets a packet pool reuse buffers without touching
/// the allocator (the zero-allocation invariant of docs/PERFORMANCE.md).
class PacketBuffer {
 public:
  /// Default headroom leaves room for one full VXLAN outer stack (50 bytes)
  /// plus an inner Ethernet header in front of whatever is appended.
  explicit PacketBuffer(std::size_t headroom = 64);

  /// Append `n` bytes at the tail; returns the writable region. May grow
  /// the backing store (allocates when size exceeds reserved capacity).
  std::span<std::uint8_t> append(std::size_t n);
  /// Prepend `n` bytes (requires headroom); returns the writable region.
  std::span<std::uint8_t> push(std::size_t n);
  /// Strip `n` bytes from the front. Requires n <= size().
  void pull(std::size_t n);

  /// Pre-allocate backing capacity for `total_bytes` (headroom included),
  /// so later append()/reset() cycles never touch the heap.
  void reserve(std::size_t total_bytes);
  /// Drop all content and restore `headroom` bytes of headroom. Keeps the
  /// backing capacity — a reset buffer can be refilled allocation-free.
  void reset(std::size_t headroom = 64);

  /// Valid bytes (front of packet first).
  std::span<const std::uint8_t> data() const {
    return {bytes_.data() + head_, bytes_.size() - head_};
  }
  std::span<std::uint8_t> data() {
    return {bytes_.data() + head_, bytes_.size() - head_};
  }
  std::size_t size() const { return bytes_.size() - head_; }
  std::size_t headroom() const { return head_; }
  /// Total backing capacity currently reserved (diagnostics / pool sizing).
  std::size_t capacity() const { return bytes_.capacity(); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t head_;  // offset of first valid byte
};

constexpr std::uint32_t kMtu = 1500;
/// Inner MSS for MTU 1500 with our header sizes (IPv4 + TCP, no options),
/// further reduced by 50 bytes of VXLAN overhead when tunneled.
constexpr std::uint32_t kVxlanOverhead =
    EthernetHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize +
    VxlanHeader::kSize;  // 50 bytes
constexpr std::uint32_t kTcpMss = kMtu - Ipv4Header::kSize - TcpHeader::kSize;

struct Packet;

/// Something that takes dead packets back (rt::PacketPool implements this).
/// The indirection keeps src/net free of any dependency on the pool.
class PacketRecycler {
 public:
  /// Return `pkt` to the recycler's free list. Must be callable from any
  /// thread and must not throw — it runs inside unique_ptr destruction.
  virtual void recycle(Packet* pkt) noexcept = 0;

 protected:
  ~PacketRecycler() = default;  // never deleted through this interface
};

/// Deleter carried by every PacketPtr: recycles pooled packets, deletes
/// heap ones. Default-constructed (recycler == nullptr) means heap.
struct PacketDeleter {
  PacketRecycler* recycler = nullptr;
  void operator()(Packet* pkt) const noexcept;
};

/// The one way packets are owned and moved through the system.
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/// The packet itself. Aggregate on purpose: all metadata fields have
/// defaults, and Packet::reset() must restore exactly those defaults when a
/// pooled packet is recycled (keep the two in sync).
struct Packet {
  PacketBuffer buf;              // real header bytes (+ nothing else)
  std::uint32_t payload_len = 0;  // virtual payload bytes

  FlowKey flow;                  // innermost 5-tuple
  FlowId flow_id = 0;            // dense workload-assigned id
  bool encapsulated = false;     // still carrying VXLAN outer headers

  std::uint64_t wire_seq = 0;    // per-flow arrival index at receiver NIC
  // 64-bit TCP stream offset of the first payload byte. The encoded wire
  // header carries the low 32 bits; the simulation keeps the full offset so
  // multi-gigabyte streams need no sequence-wrap handling.
  std::uint64_t tcp_seq = 0;
  std::uint64_t message_id = 0;  // application message this packet belongs to
  std::uint32_t message_bytes = 0;  // total payload bytes of that message
  bool skb_allocated = false;    // driver stage has built the skb

  sim::Time t_wire = 0;          // arrival time at the receiver NIC

  // GRO: number of original segments coalesced into this skb (>= 1).
  std::uint32_t gro_segs = 1;

  // MFLOW: micro-flow (batch) identifier; reflects the batch's position in
  // the original flow. 0 = not split. (Paper stores this in the skb.)
  std::uint64_t microflow_id = 0;

  /// Header bytes + virtual payload bytes: what the wire would carry.
  std::uint32_t wire_len() const {
    return static_cast<std::uint32_t>(buf.size()) + payload_len;
  }

  /// Restore the pristine just-constructed state (buffer emptied with
  /// default headroom, every metadata field back to its default) WITHOUT
  /// releasing buffer capacity. Pools call this before handing a recycled
  /// packet out, so a reused packet is indistinguishable from a fresh one.
  void reset();
};

// --- construction & tunnel operations ---------------------------------------

/// Heap-allocate an empty packet (deleter in plain-delete mode).
PacketPtr make_packet();

/// Deep-copy `src` into a fresh HEAP packet (used by fault duplication and
/// batch-boundary splitting). The copy never aliases src's pool: duplicating
/// a pooled packet must not create two owners of one slab.
PacketPtr clone_packet(const Packet& src);

/// Build a TCP segment with real Eth/IPv4/TCP headers for `flow`. The wire
/// header's sequence field is the low 32 bits of `tcp_seq`.
PacketPtr make_tcp_segment(const FlowKey& flow, std::uint64_t tcp_seq,
                           std::uint32_t payload_len);

/// As above, but build into `recycled` (a pool slab or any packet to reuse)
/// instead of allocating. The slab is reset first; a null slab falls back
/// to the heap path, so callers can pass `pool->acquire()` unconditionally.
PacketPtr make_tcp_segment(PacketPtr recycled, const FlowKey& flow,
                           std::uint64_t tcp_seq, std::uint32_t payload_len);

/// Build a UDP datagram (or fragment) with real Eth/IPv4/UDP headers.
PacketPtr make_udp_datagram(const FlowKey& flow, std::uint32_t payload_len);

/// Slab-reusing variant of make_udp_datagram (see make_tcp_segment above).
PacketPtr make_udp_datagram(PacketPtr recycled, const FlowKey& flow,
                            std::uint32_t payload_len);

/// VXLAN-encapsulate in place: prepends outer Eth/IPv4/UDP/VXLAN (50 bytes).
/// Outer UDP source port is derived from the inner flow hash, as RFC 7348
/// recommends (this is what lets RSS spread *different* tunneled flows).
void vxlan_encap(Packet& pkt, const Ipv4Addr& outer_src,
                 const Ipv4Addr& outer_dst, std::uint32_t vni);

/// Result of parsing+stripping the outer headers.
struct DecapResult {
  bool ok = false;
  std::uint32_t vni = 0;
};

/// VXLAN-decapsulate in place: verifies outer IPv4 checksum, UDP dst port
/// and VXLAN flags, then strips the 50-byte outer stack.
DecapResult vxlan_decap(Packet& pkt);

/// Fast-path splice decap (stack/flowcache.hpp, rt overlay mode): a prior
/// packet of this flow already validated the outer stack, so only the VXLAN
/// header (flags + VNI) is re-checked before the 50-byte strip — no
/// ethertype parse, no outer IPv4 checksum verification, no UDP port check.
/// Returns false (packet untouched) when the VXLAN header disagrees, so a
/// stale or colliding cache entry falls back to the slow path.
bool vxlan_splice_decap(Packet& pkt, std::uint32_t expected_vni);

/// Parse the (current) outermost IPv4 header without modifying the packet.
Ipv4Header peek_ipv4(const Packet& pkt);

}  // namespace mflow::net
