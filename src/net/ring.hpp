// Fixed-capacity RX descriptor ring.
//
// Plays two roles, mirroring the mlx5 driver structures the paper hooks:
//  - the NIC's per-queue DMA ring (raw packets awaiting the driver poll),
//  - MFLOW's per-core "request ring buffers" created by the IRQ-splitting
//    function (packet requests dispatched to splitting cores before any skb
//    exists).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace mflow::net {

class RxRing {
 public:
  explicit RxRing(std::size_t capacity);

  /// Enqueue; returns false (and drops the packet) when full.
  bool push(PacketPtr pkt);

  /// Dequeue; returns nullptr when empty.
  PacketPtr pop();

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return slots_.size(); }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == slots_.size(); }

  std::uint64_t drops() const { return drops_; }
  std::uint64_t total_enqueued() const { return enqueued_; }

 private:
  std::vector<PacketPtr> slots_;
  std::size_t head_ = 0;  // next pop
  std::size_t tail_ = 0;  // next push
  std::size_t count_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t enqueued_ = 0;
};

}  // namespace mflow::net
