// Byte-exact protocol header codecs: Ethernet, IPv4, UDP, TCP, VXLAN.
//
// The simulated data path carries real header bytes (payload bytes are
// virtual — only their length is tracked), so encapsulation/decapsulation,
// checksum verification, and header rewriting in the stack are genuine,
// testable transformations, not bookkeeping.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace mflow::net {

using MacAddr = std::array<std::uint8_t, 6>;

/// IPv4 address in host byte order.
struct Ipv4Addr {
  std::uint32_t value = 0;

  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t v) : value(v) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | d) {}

  auto operator<=>(const Ipv4Addr&) const = default;
  std::string to_string() const;
};

// --- Ethernet ---------------------------------------------------------------

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  static constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

  MacAddr dst{};
  MacAddr src{};
  std::uint16_t ethertype = kEtherTypeIpv4;

  void encode(std::span<std::uint8_t> out) const;       // out.size() >= kSize
  static EthernetHeader decode(std::span<const std::uint8_t> in);
  bool operator==(const EthernetHeader&) const = default;
};

// --- IPv4 -------------------------------------------------------------------

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options
  static constexpr std::uint8_t kProtoTcp = 6;
  static constexpr std::uint8_t kProtoUdp = 17;

  std::uint8_t tos = 0;
  std::uint16_t total_length = kSize;  // header + payload bytes
  std::uint16_t identification = 0;
  bool dont_fragment = true;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kProtoUdp;
  Ipv4Addr src;
  Ipv4Addr dst;

  /// Encodes with a freshly computed header checksum.
  void encode(std::span<std::uint8_t> out) const;
  static Ipv4Header decode(std::span<const std::uint8_t> in);
  /// Verify the checksum of an encoded header in place.
  static bool verify(std::span<const std::uint8_t> in);
  bool operator==(const Ipv4Header&) const = default;
};

// --- UDP --------------------------------------------------------------------

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = kSize;  // header + payload

  /// We encode checksum 0 (legal for IPv4 UDP; hardware offload computes
  /// real ones on the paper's NIC anyway).
  void encode(std::span<std::uint8_t> out) const;
  static UdpHeader decode(std::span<const std::uint8_t> in);
  bool operator==(const UdpHeader&) const = default;
};

// --- TCP --------------------------------------------------------------------

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool flag_syn = false;
  bool flag_ack = false;
  bool flag_fin = false;
  bool flag_psh = false;
  std::uint16_t window = 0xFFFF;

  void encode(std::span<std::uint8_t> out) const;
  static TcpHeader decode(std::span<const std::uint8_t> in);
  bool operator==(const TcpHeader&) const = default;
};

// --- VXLAN (RFC 7348) ---------------------------------------------------------

struct VxlanHeader {
  static constexpr std::size_t kSize = 8;
  static constexpr std::uint16_t kUdpPort = 4789;

  std::uint32_t vni = 0;  // 24-bit virtual network identifier

  void encode(std::span<std::uint8_t> out) const;
  static VxlanHeader decode(std::span<const std::uint8_t> in);
  /// The I-flag must be set and reserved bits zero for a valid header.
  static bool valid(std::span<const std::uint8_t> in);
  bool operator==(const VxlanHeader&) const = default;
};

}  // namespace mflow::net
