// RFC 1071 Internet checksum, used by the IPv4/UDP/TCP header codecs.
#pragma once

#include <cstdint>
#include <span>

namespace mflow::net {

/// One's-complement sum of 16-bit words (odd trailing byte zero-padded),
/// folded to 16 bits. Returns the raw sum, NOT inverted.
std::uint16_t checksum_fold(std::span<const std::uint8_t> data,
                            std::uint32_t initial = 0);

/// Final inverted checksum as stored in headers.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint32_t initial = 0);

/// Verify: summing a region that includes a correct checksum yields 0xFFFF.
bool checksum_ok(std::span<const std::uint8_t> data,
                 std::uint32_t initial = 0);

}  // namespace mflow::net
