#include "net/checksum.hpp"

namespace mflow::net {

std::uint16_t checksum_fold(std::span<const std::uint8_t> data,
                            std::uint32_t initial) {
  std::uint64_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint32_t initial) {
  return static_cast<std::uint16_t>(~checksum_fold(data, initial));
}

bool checksum_ok(std::span<const std::uint8_t> data, std::uint32_t initial) {
  return checksum_fold(data, initial) == 0xFFFF;
}

}  // namespace mflow::net
