#include "net/ring.hpp"

namespace mflow::net {

RxRing::RxRing(std::size_t capacity) : slots_(capacity) {}

bool RxRing::push(PacketPtr pkt) {
  if (full()) {
    ++drops_;
    return false;  // pkt destroyed: tail drop, like a DMA ring overrun
  }
  slots_[tail_] = std::move(pkt);
  tail_ = (tail_ + 1) % slots_.size();
  ++count_;
  ++enqueued_;
  return true;
}

PacketPtr RxRing::pop() {
  if (empty()) return nullptr;
  PacketPtr pkt = std::move(slots_[head_]);
  head_ = (head_ + 1) % slots_.size();
  --count_;
  return pkt;
}

}  // namespace mflow::net
