// Generic Receive Offload.
//
// Coalesces consecutive in-order TCP segments of one flow into a single
// super-skb within a NAPI poll batch, so every later stage pays per-skb cost
// once for many wire packets. The paper leans on two GRO facts we model:
//  - GRO is effective for TCP but not UDP (paper footnote 2);
//  - GRO itself is a heavyweight *function* that FALCON-fun moves to its own
//    core and that MFLOW can split (it runs wherever the stage runs).
// Aggregation is bounded by max_segs/max_bytes; for VXLAN-encapsulated
// traffic the effective aggregation is much lower (inner-header parsing
// limits it), which we expose as a per-path cap.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/packet.hpp"

namespace mflow::net {

struct GroParams {
  std::uint32_t max_segs = 44;      // ~64KB / MSS
  std::uint32_t max_bytes = 65536;  // kernel GRO size cap
  bool enabled = true;
};

class GroEngine {
 public:
  using Sink = std::function<void(PacketPtr)>;

  explicit GroEngine(GroParams params) : params_(params) {}

  /// Offer a packet. Mergeable TCP segments are held; anything else (UDP,
  /// out-of-order, full super-skb) is emitted — possibly after flushing the
  /// held skb to preserve per-flow ordering.
  void add(PacketPtr pkt, const Sink& sink);

  /// End-of-batch flush (NAPI calls napi_gro_flush when the poll ends).
  void flush(const Sink& sink);

  std::uint64_t merged_segments() const { return merged_; }
  std::uint64_t emitted_skbs() const { return emitted_; }

 private:
  bool can_merge(const Packet& held, const Packet& pkt) const;

  GroParams params_;
  std::unordered_map<FlowId, PacketPtr> held_;
  std::uint64_t merged_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace mflow::net
