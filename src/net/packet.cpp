#include "net/packet.hpp"

#include <cassert>
#include <cstring>

namespace mflow::net {

PacketBuffer::PacketBuffer(std::size_t headroom)
    : bytes_(headroom), head_(headroom) {}

std::span<std::uint8_t> PacketBuffer::append(std::size_t n) {
  const std::size_t old = bytes_.size();
  bytes_.resize(old + n);
  return {bytes_.data() + old, n};
}

std::span<std::uint8_t> PacketBuffer::push(std::size_t n) {
  assert(head_ >= n && "insufficient headroom");
  head_ -= n;
  return {bytes_.data() + head_, n};
}

void PacketBuffer::pull(std::size_t n) {
  assert(n <= size());
  head_ += n;
}

void PacketBuffer::reserve(std::size_t total_bytes) {
  bytes_.reserve(total_bytes);
}

void PacketBuffer::reset(std::size_t headroom) {
  // resize() never shrinks capacity, so a reserved buffer stays reserved —
  // the whole point of recycling.
  bytes_.resize(headroom);
  head_ = headroom;
}

void Packet::reset() {
  buf.reset();
  payload_len = 0;
  flow = FlowKey{};
  flow_id = 0;
  encapsulated = false;
  wire_seq = 0;
  tcp_seq = 0;
  message_id = 0;
  message_bytes = 0;
  skb_allocated = false;
  t_wire = 0;
  gro_segs = 1;
  microflow_id = 0;
}

void PacketDeleter::operator()(Packet* pkt) const noexcept {
  if (pkt == nullptr) return;
  if (recycler != nullptr)
    recycler->recycle(pkt);
  else
    delete pkt;
}

PacketPtr make_packet() { return PacketPtr(new Packet()); }

PacketPtr clone_packet(const Packet& src) {
  return PacketPtr(new Packet(src));
}

namespace {

constexpr MacAddr kSrcMac{0x02, 0x42, 0xac, 0x11, 0x00, 0x02};
constexpr MacAddr kDstMac{0x02, 0x42, 0xac, 0x11, 0x00, 0x03};

void write_l2l3(PacketBuffer& buf, const FlowKey& flow,
                std::uint32_t l4_and_payload) {
  Ipv4Header ip;
  ip.protocol = flow.protocol;
  ip.src = flow.src;
  ip.dst = flow.dst;
  ip.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + l4_and_payload);
  ip.encode(buf.append(Ipv4Header::kSize));

  // Ethernet goes in front; we appended IP first, so push the L2 header.
  EthernetHeader eth;
  eth.src = kSrcMac;
  eth.dst = kDstMac;
  eth.encode(buf.push(EthernetHeader::kSize));
}

}  // namespace

PacketPtr make_tcp_segment(const FlowKey& flow, std::uint64_t tcp_seq,
                           std::uint32_t payload_len) {
  return make_tcp_segment(nullptr, flow, tcp_seq, payload_len);
}

PacketPtr make_tcp_segment(PacketPtr recycled, const FlowKey& flow,
                           std::uint64_t tcp_seq, std::uint32_t payload_len) {
  assert(flow.protocol == Ipv4Header::kProtoTcp);
  PacketPtr pkt = std::move(recycled);
  if (pkt)
    pkt->reset();
  else
    pkt = make_packet();
  pkt->flow = flow;
  pkt->payload_len = payload_len;
  pkt->tcp_seq = tcp_seq;

  // Build in layer order: IP appended, Ethernet pushed, then TCP appended
  // after IP. Simpler: append IP+TCP, then push Ethernet. write_l2l3 pushes
  // Ethernet already, so append TCP afterwards (it lands after IP).
  write_l2l3(pkt->buf, flow, TcpHeader::kSize + payload_len);
  TcpHeader tcp;
  tcp.src_port = flow.src_port;
  tcp.dst_port = flow.dst_port;
  tcp.seq = static_cast<std::uint32_t>(tcp_seq);
  tcp.flag_ack = true;
  tcp.encode(pkt->buf.append(TcpHeader::kSize));
  return pkt;
}

PacketPtr make_udp_datagram(const FlowKey& flow, std::uint32_t payload_len) {
  return make_udp_datagram(nullptr, flow, payload_len);
}

PacketPtr make_udp_datagram(PacketPtr recycled, const FlowKey& flow,
                            std::uint32_t payload_len) {
  assert(flow.protocol == Ipv4Header::kProtoUdp);
  PacketPtr pkt = std::move(recycled);
  if (pkt)
    pkt->reset();
  else
    pkt = make_packet();
  pkt->flow = flow;
  pkt->payload_len = payload_len;

  write_l2l3(pkt->buf, flow, UdpHeader::kSize + payload_len);
  UdpHeader udp;
  udp.src_port = flow.src_port;
  udp.dst_port = flow.dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload_len);
  udp.encode(pkt->buf.append(UdpHeader::kSize));
  return pkt;
}

void vxlan_encap(Packet& pkt, const Ipv4Addr& outer_src,
                 const Ipv4Addr& outer_dst, std::uint32_t vni) {
  assert(!pkt.encapsulated);
  const std::uint32_t inner_len = pkt.wire_len();

  // Prepend outermost-first via successive pushes in reverse layer order.
  VxlanHeader vx;
  vx.vni = vni;
  vx.encode(pkt.buf.push(VxlanHeader::kSize));

  UdpHeader udp;
  // RFC 7348 §4: source port from a hash of the inner headers for entropy.
  udp.src_port =
      static_cast<std::uint16_t>(0xC000 | (flow_hash(pkt.flow) & 0x3FFF));
  udp.dst_port = VxlanHeader::kUdpPort;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize +
                                          VxlanHeader::kSize + inner_len);
  udp.encode(pkt.buf.push(UdpHeader::kSize));

  Ipv4Header ip;
  ip.protocol = Ipv4Header::kProtoUdp;
  ip.src = outer_src;
  ip.dst = outer_dst;
  ip.total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + UdpHeader::kSize + VxlanHeader::kSize + inner_len);
  ip.encode(pkt.buf.push(Ipv4Header::kSize));

  EthernetHeader eth;
  eth.encode(pkt.buf.push(EthernetHeader::kSize));

  pkt.encapsulated = true;
}

DecapResult vxlan_decap(Packet& pkt) {
  DecapResult res;
  if (!pkt.encapsulated) return res;
  auto bytes = pkt.buf.data();
  if (bytes.size() < kVxlanOverhead) return res;

  const auto eth = EthernetHeader::decode(bytes);
  if (eth.ethertype != EthernetHeader::kEtherTypeIpv4) return res;
  auto l3 = bytes.subspan(EthernetHeader::kSize);
  if (!Ipv4Header::verify(l3)) return res;
  const auto ip = Ipv4Header::decode(l3);
  if (ip.protocol != Ipv4Header::kProtoUdp) return res;
  auto l4 = l3.subspan(Ipv4Header::kSize);
  const auto udp = UdpHeader::decode(l4);
  if (udp.dst_port != VxlanHeader::kUdpPort) return res;
  auto vx = l4.subspan(UdpHeader::kSize);
  if (!VxlanHeader::valid(vx)) return res;

  res.vni = VxlanHeader::decode(vx).vni;
  pkt.buf.pull(kVxlanOverhead);
  pkt.encapsulated = false;
  res.ok = true;
  return res;
}

bool vxlan_splice_decap(Packet& pkt, std::uint32_t expected_vni) {
  if (!pkt.encapsulated) return false;
  auto bytes = pkt.buf.data();
  if (bytes.size() < kVxlanOverhead) return false;
  auto vx = bytes.subspan(EthernetHeader::kSize + Ipv4Header::kSize +
                          UdpHeader::kSize);
  if (!VxlanHeader::valid(vx) || VxlanHeader::decode(vx).vni != expected_vni)
    return false;
  pkt.buf.pull(kVxlanOverhead);
  pkt.encapsulated = false;
  return true;
}

Ipv4Header peek_ipv4(const Packet& pkt) {
  auto bytes = pkt.buf.data();
  assert(bytes.size() >= EthernetHeader::kSize + Ipv4Header::kSize);
  return Ipv4Header::decode(bytes.subspan(EthernetHeader::kSize));
}

}  // namespace mflow::net
