// Deterministic fault injection for the packet path.
//
// The paper's prototype assumes a lossless handoff between the splitting
// cores and the merge point; real deployments see ring overruns, bit flips,
// and stalled cores. The injector perturbs packets at three points —
//   kNicRing    wire -> NIC RX ring (before any software touches the skb),
//   kHandoff    inter-core steering handoff (RPS/FALCON remote enqueue),
//   kSplitQueue MFLOW splitting-queue deposit (post-dispatch accounting),
// — under a seeded RNG so every faulty run is replayable. The injector is a
// decision oracle: the call site owns the mechanics (dropping the skb,
// scheduling the delayed delivery, cloning the duplicate) because only it
// knows the queues and clocks involved. Corruption flips real header bytes,
// so it is *checksum-visible*: the packet survives until a stage verifies
// (IP checksum, VXLAN flags) and is dropped there. Verifying stages report
// such deaths via Machine::note_lost_in_flight; losses that bypass even
// that (e.g. corruption before the flow was split, wedging the pre-split
// ordering gate) are what the reassembler's eviction backstop exists for.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mflow::net {

enum class FaultPoint : std::uint8_t { kNicRing, kHandoff, kSplitQueue };
constexpr std::size_t kFaultPointCount = 3;
std::string_view fault_point_name(FaultPoint p);

enum class FaultAction : std::uint8_t {
  kNone,
  kDrop,
  kCorrupt,
  kDuplicate,
  kDelay,
};

/// Per-point fault probabilities (independent Bernoulli draws, evaluated in
/// the order drop -> corrupt -> duplicate -> delay; the first hit wins).
struct FaultRates {
  double drop = 0.0;
  double corrupt = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  sim::Time delay_ns = sim::us(50);

  bool any() const {
    return drop > 0 || corrupt > 0 || duplicate > 0 || delay > 0;
  }
};

struct FaultPlan {
  FaultRates nic_ring;
  FaultRates handoff;
  FaultRates split_queue;
  std::uint64_t seed = 0x5eed;

  bool any() const {
    return nic_ring.any() || handoff.any() || split_queue.any();
  }
  const FaultRates& at(FaultPoint p) const;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Draw the fate of one packet crossing `point`. Advances the RNG only
  /// for rates that are non-zero, so enabling a new fault type does not
  /// reshuffle the others' decisions.
  FaultAction decide(FaultPoint point);

  /// Delay to apply when decide() returned kDelay at `point`.
  sim::Time delay_ns(FaultPoint point) const { return plan_.at(point).delay_ns; }

  /// Flip header bytes in place so a later checksum/flags verification
  /// fails. Touches the outermost IPv4 header checksum region (present in
  /// every packet this model builds).
  void corrupt(Packet& pkt);

  // --- accounting (per point and total) --------------------------------------
  std::uint64_t drops(FaultPoint p) const { return count(p, FaultAction::kDrop); }
  std::uint64_t corruptions(FaultPoint p) const {
    return count(p, FaultAction::kCorrupt);
  }
  std::uint64_t duplicates(FaultPoint p) const {
    return count(p, FaultAction::kDuplicate);
  }
  std::uint64_t delays(FaultPoint p) const {
    return count(p, FaultAction::kDelay);
  }
  std::uint64_t total_drops() const;
  std::uint64_t total_corruptions() const;
  std::uint64_t total_duplicates() const;
  std::uint64_t total_delays() const;
  /// Segment-weighted drop count: a dropped super-skb loses all its
  /// coalesced wire segments. Call sites add via note_dropped_segs().
  std::uint64_t dropped_segs() const { return dropped_segs_; }
  void note_dropped_segs(std::uint32_t segs) { dropped_segs_ += segs; }

  const FaultPlan& plan() const { return plan_; }

 private:
  std::uint64_t count(FaultPoint p, FaultAction a) const;

  FaultPlan plan_;
  util::Rng rng_;
  // counts_[point][action]
  std::array<std::array<std::uint64_t, 5>, kFaultPointCount> counts_{};
  std::uint64_t dropped_segs_ = 0;
};

}  // namespace mflow::net
