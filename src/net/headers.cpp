#include "net/headers.hpp"

#include <cassert>
#include <cstring>

#include "net/checksum.hpp"

namespace mflow::net {
namespace {

void put16(std::span<std::uint8_t> out, std::size_t off, std::uint16_t v) {
  out[off] = static_cast<std::uint8_t>(v >> 8);
  out[off + 1] = static_cast<std::uint8_t>(v & 0xFF);
}

void put32(std::span<std::uint8_t> out, std::size_t off, std::uint32_t v) {
  out[off] = static_cast<std::uint8_t>(v >> 24);
  out[off + 1] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  out[off + 2] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  out[off + 3] = static_cast<std::uint8_t>(v & 0xFF);
}

std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t off) {
  return static_cast<std::uint16_t>((in[off] << 8) | in[off + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t off) {
  return (static_cast<std::uint32_t>(in[off]) << 24) |
         (static_cast<std::uint32_t>(in[off + 1]) << 16) |
         (static_cast<std::uint32_t>(in[off + 2]) << 8) |
         static_cast<std::uint32_t>(in[off + 3]);
}

}  // namespace

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFF,
                (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

// --- Ethernet ----------------------------------------------------------------

void EthernetHeader::encode(std::span<std::uint8_t> out) const {
  assert(out.size() >= kSize);
  std::memcpy(out.data(), dst.data(), 6);
  std::memcpy(out.data() + 6, src.data(), 6);
  put16(out, 12, ethertype);
}

EthernetHeader EthernetHeader::decode(std::span<const std::uint8_t> in) {
  assert(in.size() >= kSize);
  EthernetHeader h;
  std::memcpy(h.dst.data(), in.data(), 6);
  std::memcpy(h.src.data(), in.data() + 6, 6);
  h.ethertype = get16(in, 12);
  return h;
}

// --- IPv4 --------------------------------------------------------------------

void Ipv4Header::encode(std::span<std::uint8_t> out) const {
  assert(out.size() >= kSize);
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = tos;
  put16(out, 2, total_length);
  put16(out, 4, identification);
  std::uint16_t frag = fragment_offset & 0x1FFF;
  if (dont_fragment) frag |= 0x4000;
  if (more_fragments) frag |= 0x2000;
  put16(out, 6, frag);
  out[8] = ttl;
  out[9] = protocol;
  put16(out, 10, 0);  // checksum placeholder
  put32(out, 12, src.value);
  put32(out, 16, dst.value);
  const std::uint16_t csum = internet_checksum(out.first(kSize));
  put16(out, 10, csum);
}

Ipv4Header Ipv4Header::decode(std::span<const std::uint8_t> in) {
  assert(in.size() >= kSize);
  Ipv4Header h;
  h.tos = in[1];
  h.total_length = get16(in, 2);
  h.identification = get16(in, 4);
  const std::uint16_t frag = get16(in, 6);
  h.dont_fragment = (frag & 0x4000) != 0;
  h.more_fragments = (frag & 0x2000) != 0;
  h.fragment_offset = frag & 0x1FFF;
  h.ttl = in[8];
  h.protocol = in[9];
  h.src = Ipv4Addr(get32(in, 12));
  h.dst = Ipv4Addr(get32(in, 16));
  return h;
}

bool Ipv4Header::verify(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return false;
  if ((in[0] >> 4) != 4) return false;
  return checksum_ok(in.first(kSize));
}

// --- UDP ---------------------------------------------------------------------

void UdpHeader::encode(std::span<std::uint8_t> out) const {
  assert(out.size() >= kSize);
  put16(out, 0, src_port);
  put16(out, 2, dst_port);
  put16(out, 4, length);
  put16(out, 6, 0);  // checksum 0 = not computed (valid for IPv4)
}

UdpHeader UdpHeader::decode(std::span<const std::uint8_t> in) {
  assert(in.size() >= kSize);
  UdpHeader h;
  h.src_port = get16(in, 0);
  h.dst_port = get16(in, 2);
  h.length = get16(in, 4);
  return h;
}

// --- TCP ---------------------------------------------------------------------

void TcpHeader::encode(std::span<std::uint8_t> out) const {
  assert(out.size() >= kSize);
  put16(out, 0, src_port);
  put16(out, 2, dst_port);
  put32(out, 4, seq);
  put32(out, 8, ack);
  out[12] = (kSize / 4) << 4;  // data offset in 32-bit words
  std::uint8_t flags = 0;
  if (flag_fin) flags |= 0x01;
  if (flag_syn) flags |= 0x02;
  if (flag_psh) flags |= 0x08;
  if (flag_ack) flags |= 0x10;
  out[13] = flags;
  put16(out, 14, window);
  put16(out, 16, 0);  // checksum: offloaded
  put16(out, 18, 0);  // urgent pointer
}

TcpHeader TcpHeader::decode(std::span<const std::uint8_t> in) {
  assert(in.size() >= kSize);
  TcpHeader h;
  h.src_port = get16(in, 0);
  h.dst_port = get16(in, 2);
  h.seq = get32(in, 4);
  h.ack = get32(in, 8);
  const std::uint8_t flags = in[13];
  h.flag_fin = flags & 0x01;
  h.flag_syn = flags & 0x02;
  h.flag_psh = flags & 0x08;
  h.flag_ack = flags & 0x10;
  h.window = get16(in, 14);
  return h;
}

// --- VXLAN -------------------------------------------------------------------

void VxlanHeader::encode(std::span<std::uint8_t> out) const {
  assert(out.size() >= kSize);
  out[0] = 0x08;  // I flag set
  out[1] = out[2] = out[3] = 0;
  put32(out, 4, (vni & 0xFFFFFF) << 8);
}

VxlanHeader VxlanHeader::decode(std::span<const std::uint8_t> in) {
  assert(in.size() >= kSize);
  VxlanHeader h;
  h.vni = get32(in, 4) >> 8;
  return h;
}

bool VxlanHeader::valid(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return false;
  return in[0] == 0x08 && in[1] == 0 && in[2] == 0 && in[3] == 0 &&
         (in[7] == 0);
}

}  // namespace mflow::net
