#include "net/gro.hpp"

#include <algorithm>
#include <vector>

namespace mflow::net {

bool GroEngine::can_merge(const Packet& held, const Packet& pkt) const {
  if (pkt.flow.protocol != Ipv4Header::kProtoTcp) return false;
  if (held.flow_id != pkt.flow_id) return false;
  if (held.microflow_id != pkt.microflow_id) return false;  // don't merge
  // across MFLOW batch boundaries: batches may diverge to different cores
  if (held.tcp_seq + held.payload_len != pkt.tcp_seq) return false;  // gap
  // Application senders set PSH on the last segment of a message, which
  // terminates GRO aggregation; equivalently, never merge across message
  // boundaries (this also keeps per-message accounting exact).
  if (held.message_id != pkt.message_id) return false;
  if (held.gro_segs + pkt.gro_segs > params_.max_segs) return false;
  if (held.payload_len + pkt.payload_len > params_.max_bytes) return false;
  return true;
}

void GroEngine::add(PacketPtr pkt, const Sink& sink) {
  if (!params_.enabled || pkt->flow.protocol != Ipv4Header::kProtoTcp) {
    ++emitted_;
    sink(std::move(pkt));
    return;
  }
  auto it = held_.find(pkt->flow_id);
  if (it != held_.end()) {
    Packet& held = *it->second;
    if (can_merge(held, *pkt)) {
      held.payload_len += pkt->payload_len;
      held.gro_segs += pkt->gro_segs;
      ++merged_;
      return;  // segment absorbed; its buffer is released
    }
    // Not mergeable: flush the held super-skb first to keep flow order.
    PacketPtr out = std::move(it->second);
    held_.erase(it);
    ++emitted_;
    sink(std::move(out));
  }
  held_.emplace(pkt->flow_id, std::move(pkt));
}

void GroEngine::flush(const Sink& sink) {
  // Deterministic flush order: ascending flow id (map iteration order of an
  // unordered_map is implementation-defined; sort tiny snapshot instead).
  if (held_.empty()) return;
  std::vector<FlowId> ids;
  ids.reserve(held_.size());
  for (auto& [id, _] : held_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (FlowId id : ids) {
    auto it = held_.find(id);
    ++emitted_;
    sink(std::move(it->second));
    held_.erase(it);
  }
}

}  // namespace mflow::net
