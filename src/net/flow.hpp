// Flow identification: 5-tuples and the hash used by RSS/RPS steering.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/headers.hpp"

namespace mflow::net {

/// Connection 5-tuple. Hardware RSS and kernel RPS both key on this; MFLOW's
/// whole point is that steering on it cannot parallelize a single flow.
struct FlowKey {
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = Ipv4Header::kProtoUdp;

  auto operator<=>(const FlowKey&) const = default;
  std::string to_string() const;
};

/// Deterministic flow hash (a jhash-style mix, stand-in for Toeplitz RSS).
/// All steering policies share it so "same flow -> same core" holds across
/// hardware (RSS) and software (RPS) steering, as in Linux.
std::uint32_t flow_hash(const FlowKey& key, std::uint32_t seed = 0);

/// Dense flow identifier assigned by workloads (not derived from the tuple).
using FlowId = std::uint64_t;

}  // namespace mflow::net

template <>
struct std::hash<mflow::net::FlowKey> {
  std::size_t operator()(const mflow::net::FlowKey& k) const noexcept {
    return mflow::net::flow_hash(k, 0x9747b28c);
  }
};
