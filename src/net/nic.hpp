// Physical NIC model: multi-queue RX rings with RSS, IRQ signalling.
//
// Stand-in for the Mellanox ConnectX-5 of the paper's testbed: packets
// arriving from the wire are hashed (RSS) to one of the RX queues; an IRQ
// callback fires unless the driver is already polling that queue (NAPI
// interrupt suppression).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/flow.hpp"
#include "net/ring.hpp"

namespace mflow::net {

struct NicParams {
  int num_queues = 1;
  std::size_t ring_capacity = 4096;
  std::uint32_t rss_seed = 0x6d5a6d5a;  // Toeplitz-key stand-in
};

class Nic {
 public:
  explicit Nic(NicParams params);

  /// Called for every wire arrival; the handler decides whether to charge an
  /// IRQ and wake the driver (NAPI may already be polling).
  using IrqHandler = std::function<void(int queue)>;
  void set_irq_handler(IrqHandler handler) { irq_ = std::move(handler); }

  /// Wire delivery: stamps the per-flow arrival index (ground truth for
  /// ordering checks), selects the RX queue via RSS, enqueues, signals.
  void deliver(PacketPtr pkt, sim::Time now);

  int num_queues() const { return static_cast<int>(rings_.size()); }
  RxRing& queue(int i) { return rings_[static_cast<std::size_t>(i)]; }
  const RxRing& queue(int i) const {
    return rings_[static_cast<std::size_t>(i)];
  }

  /// RSS queue selection for a flow (exposed for tests and steering logic).
  int rss_queue(const FlowKey& flow) const;

  std::uint64_t total_drops() const;
  std::uint64_t total_delivered() const { return delivered_; }

 private:
  NicParams params_;
  std::vector<RxRing> rings_;
  IrqHandler irq_;
  std::unordered_map<FlowId, std::uint64_t> flow_seq_;
  std::uint64_t delivered_ = 0;
};

}  // namespace mflow::net
