#include "net/nic.hpp"

#include "trace/trace.hpp"

namespace mflow::net {

Nic::Nic(NicParams params) : params_(params) {
  for (int i = 0; i < params_.num_queues; ++i)
    rings_.emplace_back(params_.ring_capacity);
}

int Nic::rss_queue(const FlowKey& flow) const {
  // The VXLAN outer UDP source port is derived from the inner flow hash
  // (see vxlan_encap), so hashing the inner tuple here matches what hardware
  // RSS computes on the outer tuple: one flow -> one queue, always.
  return static_cast<int>(flow_hash(flow, params_.rss_seed) %
                          static_cast<std::uint32_t>(rings_.size()));
}

void Nic::deliver(PacketPtr pkt, sim::Time now) {
  pkt->t_wire = now;
  pkt->wire_seq = flow_seq_[pkt->flow_id]++;
  const int q = rss_queue(pkt->flow);
  trace::Tracer* tr = trace::active();
  if (tr != nullptr) {
    tr->registry().add("nic.wire_packets");
    tr->packet(trace::EventKind::kWireArrival, now, /*core=*/-1,
               pkt->flow_id, pkt->wire_seq, pkt->microflow_id,
               static_cast<std::uint64_t>(q));
  }
  const std::uint64_t flow = pkt->flow_id;
  const std::uint64_t seq = pkt->wire_seq;
  if (rings_[static_cast<std::size_t>(q)].push(std::move(pkt))) {
    ++delivered_;
    if (tr != nullptr)
      tr->packet(trace::EventKind::kRingEnqueue, now, /*core=*/-1, flow, seq,
                 0, static_cast<std::uint64_t>(q));
    if (irq_) irq_(q);
  } else if (tr != nullptr) {
    tr->registry().add("nic.ring_drops");
    tr->packet(trace::EventKind::kRingDrop, now, /*core=*/-1, flow, seq, 0,
               static_cast<std::uint64_t>(q));
  }
}

std::uint64_t Nic::total_drops() const {
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r.drops();
  return total;
}

}  // namespace mflow::net
