#include "net/fault.hpp"

#include "net/headers.hpp"

namespace mflow::net {

std::string_view fault_point_name(FaultPoint p) {
  switch (p) {
    case FaultPoint::kNicRing: return "nic-ring";
    case FaultPoint::kHandoff: return "handoff";
    case FaultPoint::kSplitQueue: return "split-queue";
  }
  return "?";
}

const FaultRates& FaultPlan::at(FaultPoint p) const {
  switch (p) {
    case FaultPoint::kNicRing: return nic_ring;
    case FaultPoint::kHandoff: return handoff;
    case FaultPoint::kSplitQueue: return split_queue;
  }
  return nic_ring;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

FaultAction FaultInjector::decide(FaultPoint point) {
  const FaultRates& r = plan_.at(point);
  FaultAction action = FaultAction::kNone;
  if (r.drop > 0 && rng_.chance(r.drop)) {
    action = FaultAction::kDrop;
  } else if (r.corrupt > 0 && rng_.chance(r.corrupt)) {
    action = FaultAction::kCorrupt;
  } else if (r.duplicate > 0 && rng_.chance(r.duplicate)) {
    action = FaultAction::kDuplicate;
  } else if (r.delay > 0 && rng_.chance(r.delay)) {
    action = FaultAction::kDelay;
  }
  ++counts_[static_cast<std::size_t>(point)][static_cast<std::size_t>(action)];
  return action;
}

void FaultInjector::corrupt(Packet& pkt) {
  // Flip the outermost IPv4 header-checksum bytes: every verification point
  // (outer IP receive, VXLAN decap) recomputes this checksum, so the packet
  // is guaranteed to die at the next verifying stage, not silently pass.
  auto bytes = pkt.buf.data();
  constexpr std::size_t kIpv4ChecksumOff = EthernetHeader::kSize + 10;
  if (bytes.size() > kIpv4ChecksumOff + 1) {
    bytes[kIpv4ChecksumOff] ^= 0xFF;
    bytes[kIpv4ChecksumOff + 1] ^= 0xA5;
  }
}

std::uint64_t FaultInjector::count(FaultPoint p, FaultAction a) const {
  return counts_[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)];
}

namespace {
template <typename F>
std::uint64_t sum_points(F&& per_point) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kFaultPointCount; ++i)
    total += per_point(static_cast<FaultPoint>(i));
  return total;
}
}  // namespace

std::uint64_t FaultInjector::total_drops() const {
  return sum_points([this](FaultPoint p) { return drops(p); });
}
std::uint64_t FaultInjector::total_corruptions() const {
  return sum_points([this](FaultPoint p) { return corruptions(p); });
}
std::uint64_t FaultInjector::total_duplicates() const {
  return sum_points([this](FaultPoint p) { return duplicates(p); });
}
std::uint64_t FaultInjector::total_delays() const {
  return sum_points([this](FaultPoint p) { return delays(p); });
}

}  // namespace mflow::net
