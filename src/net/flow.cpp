#include "net/flow.hpp"

#include <sstream>

namespace mflow::net {
namespace {

// Bob Jenkins' final mix, as used by the kernel's jhash for flow dissection.
void jhash_mix(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c) {
  auto rot = [](std::uint32_t x, int k) { return (x << k) | (x >> (32 - k)); };
  c ^= b;
  c -= rot(b, 14);
  a ^= c;
  a -= rot(c, 11);
  b ^= a;
  b -= rot(a, 25);
  c ^= b;
  c -= rot(b, 16);
  a ^= c;
  a -= rot(c, 4);
  b ^= a;
  b -= rot(a, 14);
  c ^= b;
  c -= rot(b, 24);
}

}  // namespace

std::string FlowKey::to_string() const {
  std::ostringstream os;
  os << src.to_string() << ":" << src_port << "->" << dst.to_string() << ":"
     << dst_port << (protocol == Ipv4Header::kProtoTcp ? "/tcp" : "/udp");
  return os.str();
}

std::uint32_t flow_hash(const FlowKey& key, std::uint32_t seed) {
  std::uint32_t a = 0xdeadbeef + seed;
  std::uint32_t b = a + key.src.value;
  std::uint32_t c = a + key.dst.value;
  a += (static_cast<std::uint32_t>(key.src_port) << 16) | key.dst_port;
  a += key.protocol;
  jhash_mix(a, b, c);
  return c;
}

}  // namespace mflow::net
