#include "bench/harness.hpp"

#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <thread>

#include "util/table.hpp"

#ifndef MFLOW_GIT_SHA
#define MFLOW_GIT_SHA "unknown"
#endif

namespace mflow::bench {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

std::string utc_now_iso8601() {
  std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

std::string git_sha() {
  if (const char* env = std::getenv("MFLOW_GIT_SHA");
      env != nullptr && env[0] != '\0')
    return env;
  return MFLOW_GIT_SHA;
}

Harness::Harness(HarnessConfig cfg) : cfg_(std::move(cfg)) {}

const CaseResult& Harness::run_case(const std::string& name,
                                    const std::string& unit,
                                    bool higher_is_better,
                                    const std::function<double()>& fn) {
  CaseResult res;
  res.name = name;
  res.unit = unit;
  res.higher_is_better = higher_is_better;
  for (int i = 0; i < cfg_.warmup; ++i) (void)fn();
  for (int i = 0; i < cfg_.repeats; ++i) res.values.push_back(fn());
  res.best = res.values.front();
  for (double v : res.values) {
    if (higher_is_better ? v > res.best : v < res.best) res.best = v;
  }
  results_.push_back(std::move(res));
  return results_.back();
}

const CaseResult& Harness::record(const std::string& name,
                                  const std::string& unit,
                                  bool higher_is_better, double value) {
  CaseResult res;
  res.name = name;
  res.unit = unit;
  res.higher_is_better = higher_is_better;
  res.values.push_back(value);
  res.best = value;
  results_.push_back(std::move(res));
  return results_.back();
}

std::vector<double> Harness::run_sweep(
    const std::string& name, const std::string& unit, bool higher_is_better,
    const std::vector<std::size_t>& counts,
    const std::function<double(std::size_t)>& fn) {
  std::vector<double> bests;
  bests.reserve(counts.size());
  for (std::size_t n : counts) {
    const CaseResult& r = run_case(name + ".w" + std::to_string(n), unit,
                                   higher_is_better, [&] { return fn(n); });
    bests.push_back(r.best);
  }
  // Efficiency curve vs linear scaling from the first (anchor) point.
  if (counts.size() > 1 && bests.front() > 0.0 && counts.front() > 0) {
    const double anchor = bests.front();
    const double anchor_n = static_cast<double>(counts.front());
    for (std::size_t i = 1; i < counts.size(); ++i) {
      const double speedup = bests[i] / anchor;
      const double ideal = static_cast<double>(counts[i]) / anchor_n;
      record(name + ".eff.w" + std::to_string(counts[i]), "ratio", true,
             speedup / ideal);
    }
  }
  return bests;
}

std::string to_json(const HarnessConfig& cfg,
                    const std::vector<CaseResult>& results) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"" << json_escape(cfg.bench_name) << "\",\n";
  os << "  \"schema\": 1,\n";
  os << "  \"git_sha\": \"" << json_escape(git_sha()) << "\",\n";
  os << "  \"date\": \"" << utc_now_iso8601() << "\",\n";
  os << "  \"host\": {\"cpus\": " << std::thread::hardware_concurrency()
     << "},\n";
  os << "  \"warmup\": " << cfg.warmup << ",\n";
  os << "  \"repeats\": " << cfg.repeats << ",\n";
  os << "  \"config\": {";
  bool first = true;
  for (const auto& [k, v] : cfg.config) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << json_escape(k) << "\": \"" << json_escape(v) << "\"";
  }
  os << "},\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    os << "    {\"name\": \"" << json_escape(r.name) << "\", \"unit\": \""
       << json_escape(r.unit) << "\", \"higher_is_better\": "
       << (r.higher_is_better ? "true" : "false")
       << ", \"best\": " << json_number(r.best) << ", \"values\": [";
    for (std::size_t j = 0; j < r.values.size(); ++j) {
      if (j != 0) os << ", ";
      os << json_number(r.values[j]);
    }
    os << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::string Harness::finish(std::ostream& os) {
  util::Table table({"case", "best", "unit", "dir", "repetitions"});
  for (const CaseResult& r : results_) {
    std::ostringstream reps;
    reps << std::setprecision(6);
    for (std::size_t j = 0; j < r.values.size(); ++j) {
      if (j != 0) reps << " ";
      reps << r.values[j];
    }
    table.add({r.name, util::Table::Cell(r.best, 4), r.unit,
               r.higher_is_better ? "max" : "min", reps.str()});
  }
  table.print(os, "BENCH " + cfg_.bench_name + " (git " + git_sha() + ")");

  if (cfg_.json_dir.empty() || cfg_.json_dir == "-") return "";
  const std::string path =
      cfg_.json_dir + "/BENCH_" + cfg_.bench_name + ".json";
  std::ofstream out(path);
  if (!out) {
    os << "warning: could not write " << path << "\n";
    return "";
  }
  out << to_json(cfg_, results_);
  os << "wrote " << path << "\n";
  return path;
}

}  // namespace mflow::bench
