// Benchmark harness: warmup/repeat/best-of-N measurement with
// machine-readable output.
//
// Every bench binary in bench/ funnels its numbers through a Harness so the
// repo accumulates a perf trajectory instead of scrollback: alongside the
// human-readable util::Table, finish() writes one `BENCH_<name>.json` per
// binary (schema documented in docs/BENCHMARKS.md) that
// bench/compare_bench.py diffs against the checked-in baselines in
// bench/baselines/ — CI fails a PR that regresses a case by more than the
// tolerance.
//
// Two measurement styles:
//
//  - run_case(): wall-clock benches (the rt engine, ring microbenches).
//    Runs `warmup` throwaway repetitions, then `repeats` measured ones, and
//    reports the BEST repetition (max for throughput-like metrics, min for
//    latency-like ones) — best-of-N is the standard noise filter for
//    single-machine runs, since interference only ever slows a run down.
//
//  - record(): deterministic metrics (DES results are bit-identical across
//    runs), recorded once with repeats=1.
//
// Git provenance: the JSON carries a git sha resolved at configure time
// (MFLOW_GIT_SHA compile definition) and overridable with the MFLOW_GIT_SHA
// environment variable, so CI artifacts are attributable to a commit.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mflow::bench {

/// One measured case: `values` holds every measured repetition, `best` the
/// direction-aware pick (max if higher_is_better, else min).
struct CaseResult {
  std::string name;
  std::string unit;
  bool higher_is_better = true;
  double best = 0.0;
  std::vector<double> values;
};

struct HarnessConfig {
  /// Short bench identifier; the JSON lands at
  /// `<json_dir>/BENCH_<bench_name>.json`.
  std::string bench_name;
  /// Throwaway repetitions before measuring (warms caches/branch
  /// predictors and forces lazy init). Ignored by record().
  int warmup = 1;
  /// Measured repetitions per run_case() call.
  int repeats = 5;
  /// Output directory for the JSON ("" or "-" suppresses the file, for
  /// exploratory runs).
  std::string json_dir = ".";
  /// Free-form knobs echoed into the JSON `config` object, so a baseline
  /// records what it measured (packet counts, ring sizes, ...).
  std::map<std::string, std::string> config;
};

class Harness {
 public:
  explicit Harness(HarnessConfig cfg);

  /// Measure `fn` warmup+repeats times; `fn` returns the metric for one
  /// repetition (e.g. packets/s). Returns the recorded case (best already
  /// picked) for callers that also print their own tables.
  const CaseResult& run_case(const std::string& name, const std::string& unit,
                             bool higher_is_better,
                             const std::function<double()>& fn);

  /// Record a deterministic one-shot metric (no warmup/repeats — DES
  /// results don't vary across runs).
  const CaseResult& record(const std::string& name, const std::string& unit,
                           bool higher_is_better, double value);

  /// Worker-count sweep: measure `fn(counts[i])` as a full run_case() at
  /// each count, recording `<name>.w<N>` per point, then derive the
  /// scaling-efficiency curve against linear scaling from the FIRST count
  /// (the anchor — almost always 1): for every later point,
  ///
  ///   <name>.eff.w<N> = (best_N / best_anchor) / (N / anchor)
  ///
  /// recorded as a ratio in [0, 1]-ish (1.0 = perfectly linear, >1 =
  /// super-linear). Efficiency is derived from already-measured bests, so
  /// it is record()ed, not re-measured. Returns the per-count bests in
  /// `counts` order. docs/SCALING.md §6 explains how to read the curve.
  std::vector<double> run_sweep(const std::string& name,
                                const std::string& unit,
                                bool higher_is_better,
                                const std::vector<std::size_t>& counts,
                                const std::function<double(std::size_t)>& fn);

  /// Convenience for --json-dir style overrides after construction.
  void set_json_dir(std::string dir) { cfg_.json_dir = std::move(dir); }
  /// Add/overwrite one config note echoed into the JSON.
  void note(const std::string& key, const std::string& value) {
    cfg_.config[key] = value;
  }

  const std::vector<CaseResult>& results() const { return results_; }

  /// Print the summary table to `os` and write BENCH_<name>.json (unless
  /// json_dir suppresses it). Returns the JSON path ("" if suppressed).
  std::string finish(std::ostream& os);

 private:
  HarnessConfig cfg_;
  std::vector<CaseResult> results_;
};

/// Commit the binary was built from: $MFLOW_GIT_SHA if set, else the
/// configure-time sha baked in by CMake, else "unknown".
std::string git_sha();

/// Serialize a finished result set to the BENCH_*.json schema (exposed for
/// tests; finish() uses this).
std::string to_json(const HarnessConfig& cfg,
                    const std::vector<CaseResult>& results);

}  // namespace mflow::bench
