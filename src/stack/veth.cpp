#include "stack/veth.hpp"

namespace mflow::stack {

void VethStage::process(net::PacketPtr pkt, StageContext& ctx) {
  ++transited_;
  // The recorded decision carried this packet through the whole overlay
  // segment: seal it. The insert cost lands on the committing core under
  // the VXLAN tag — the fast path it buys lives there too.
  if (cache_ != nullptr && cache_->commit(*pkt))
    ctx.core.charge(tag(), costs_.fastpath_insert);
  ctx.forward(std::move(pkt));
}

}  // namespace mflow::stack
