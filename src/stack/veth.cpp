#include "stack/veth.hpp"

namespace mflow::stack {

void VethStage::process(net::PacketPtr pkt, StageContext& ctx) {
  ++transited_;
  ctx.forward(std::move(pkt));
}

}  // namespace mflow::stack
