#include "stack/tcp_rx.hpp"

#include "stack/machine.hpp"

namespace mflow::stack {

void TcpReceiver::on_segment(net::PacketPtr pkt, const DeliverFn& deliver,
                             const ChargeFn& charge) {
  const net::FlowId flow_id = pkt->flow_id;
  FlowState& st = flows_[flow_id];
  const std::uint64_t off = pkt->tcp_seq;  // 64-bit stream offset (see
                                           // Packet::tcp_seq doc)
  const std::uint64_t len = pkt->payload_len;

  if (off + len <= st.expected) {
    ++dups_;
    return;  // fully duplicate (e.g. spurious retransmit): drop
  }
  if (off > st.expected) {
    // Hole: kernel out-of-order queue, paid per packet. This is the cost
    // MFLOW's batch-based reassembling avoids.
    charge(costs_.tcp_ofo_insert);
    ++ofo_insertions_;
    st.ofo.emplace(off, std::move(pkt));
    return;
  }

  // In-order (possibly partially overlapping): accept and advance.
  st.expected = off + len;
  ++accepted_;
  deliver(std::move(pkt));

  // Drain any ofo segments made contiguous.
  auto it = st.ofo.begin();
  while (it != st.ofo.end() && it->first <= st.expected) {
    if (it->first + it->second->payload_len <= st.expected) {
      it = st.ofo.erase(it);  // stale duplicate
      continue;
    }
    st.expected = it->first + it->second->payload_len;
    ++accepted_;
    deliver(std::move(it->second));
    it = st.ofo.erase(it);
  }

  // Cumulative ACK for everything now contiguous (delayed-ACK-like: one ACK
  // per processed super-skb, not per wire segment).
  if (ack_) ack_(flow_id, st.expected);
}

std::uint64_t TcpReceiver::expected_offset(net::FlowId flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.expected;
}

void TcpStage::process(net::PacketPtr pkt, StageContext& ctx) {
  Machine& m = ctx.machine;
  sim::Core& core = ctx.core;
  const int from_core = ctx.core.id();
  receiver_.on_segment(
      std::move(pkt),
      [&m, from_core](net::PacketPtr p) {
        m.socket_ingest(std::move(p), from_core);
      },
      [&core](sim::Time ns) { core.charge(sim::Tag::kTcpRx, ns); });
}

}  // namespace mflow::stack
