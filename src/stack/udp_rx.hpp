// UDP receive: stateless socket lookup + delivery. Because UDP has no
// inter-packet dependency, MFLOW can run this whole stage on splitting cores
// and merge "as late as possible" — right before the user-space copy.
#pragma once

#include <cstdint>

#include "stack/stage.hpp"

namespace mflow::stack {

class UdpStage : public Stage {
 public:
  explicit UdpStage(const CostModel& costs) : costs_(costs) {}

  StageId id() const override { return StageId::kUdp; }
  sim::Tag tag() const override { return sim::Tag::kUdpRx; }
  Time cost(const net::Packet& pkt) const override {
    // UDP sees every wire packet individually (no GRO coalescing).
    return costs_.udp_rx_per_pkt * pkt.gro_segs;
  }

  void process(net::PacketPtr pkt, StageContext& ctx) override;

  std::uint64_t delivered() const { return delivered_; }

 private:
  const CostModel& costs_;
  std::uint64_t delivered_ = 0;
};

}  // namespace mflow::stack
