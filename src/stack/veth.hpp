// Container veth ingress: the namespace boundary crossing. The skb is
// re-injected into the (container-side) network stack — in the kernel this
// is the second netif_rx / softirq of the overlay path.
#pragma once

#include "stack/stage.hpp"

namespace mflow::stack {

class VethStage : public Stage {
 public:
  explicit VethStage(const CostModel& costs) : costs_(costs) {}

  StageId id() const override { return StageId::kVeth; }
  sim::Tag tag() const override { return sim::Tag::kVeth; }
  Time cost(const net::Packet&) const override { return costs_.veth_per_skb; }

  void process(net::PacketPtr pkt, StageContext& ctx) override;

  std::uint64_t transited() const { return transited_; }

 private:
  const CostModel& costs_;
  std::uint64_t transited_ = 0;
};

}  // namespace mflow::stack
