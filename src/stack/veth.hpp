// Container veth ingress: the namespace boundary crossing. The skb is
// re-injected into the (container-side) network stack — in the kernel this
// is the second netif_rx / softirq of the overlay path. It is also where a
// fast-path cache entry is COMMITTED: a packet reaching veth has cleared the
// whole vxlan -> bridge -> veth segment under the recorded decision, so the
// entry is proven safe to replay.
#pragma once

#include "stack/flowcache.hpp"
#include "stack/stage.hpp"

namespace mflow::stack {

class VethStage : public Stage {
 public:
  explicit VethStage(const CostModel& costs) : costs_(costs) {}

  StageId id() const override { return StageId::kVeth; }
  sim::Tag tag() const override { return sim::Tag::kVeth; }
  Time cost(const net::Packet&) const override { return costs_.veth_per_skb; }

  void process(net::PacketPtr pkt, StageContext& ctx) override;

  /// Install the fast-path cache (nullptr disables; non-owning).
  void set_cache(FlowCache* cache) { cache_ = cache; }

  std::uint64_t transited() const { return transited_; }

 private:
  const CostModel& costs_;
  FlowCache* cache_ = nullptr;
  std::uint64_t transited_ = 0;
};

}  // namespace mflow::stack
