// Stage framework: the in-kernel packet-processing pipeline.
//
// A Path is an ordered list of Stages (driver, GRO, IP, VXLAN, bridge, veth,
// transport). Packets move between stages through *stage transition
// functions* — in our model, Machine::forward_from() — which enqueue the skb
// into the next stage's per-core queue. Where that queue lives is decided by
// the installed SteeringPolicy (vanilla / RPS / FALCON) or intercepted by a
// TransitionHook (MFLOW's flow-splitting function re-purposes exactly this
// transition point, per paper §III-A).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "sim/core.hpp"
#include "stack/costs.hpp"

namespace mflow::stack {

class Machine;

/// Identifies a pipeline stage kind (a "network device" or function).
enum class StageId : std::uint8_t {
  kDriver,   // descriptor poll + skb allocation (stage 1)
  kGro,      // generic receive offload (a heavyweight *function*)
  kIpOuter,  // host-side IP receive of the encapsulated packet
  kVxlan,    // VXLAN decapsulation device
  kBridge,   // virtual bridge
  kVeth,     // container veth ingress
  kIp,       // (inner) IP receive
  kTcp,      // TCP receive
  kUdp,      // UDP receive
  kSocket,   // terminal: socket ingest
  kNf,       // stateful network function (src/nf: NAT / firewall / LB)
};

std::string_view stage_name(StageId id);

/// Steering decision interface implemented by vanilla/RPS/FALCON (steering/)
/// and consulted at every stage transition.
class SteeringPolicy {
 public:
  virtual ~SteeringPolicy() = default;

  /// Core that should run `stage` for this packet; `from_core` ran the
  /// previous stage ("stay local" policies return it unchanged).
  virtual int core_for(StageId stage, const net::Packet& pkt,
                       int from_core) = 0;

  /// Extra per-packet cost charged on `from_core` at this transition
  /// (e.g. the RPS hash computation).
  virtual Time steer_cost(StageId /*stage*/) const { return 0; }

  virtual std::string_view name() const = 0;
};

struct StageContext {
  Machine& machine;
  sim::Core& core;
  std::size_t stage_index;  // index of the *current* stage in the path

  /// Send the skb onward through the stage transition function.
  void forward(net::PacketPtr pkt);
};

/// A pipeline stage. Stateful stages keep per-core state internally (the
/// same Stage object serves its queues on every core).
class Stage {
 public:
  virtual ~Stage() = default;
  virtual StageId id() const = 0;
  virtual sim::Tag tag() const = 0;
  /// CPU cost of processing this skb at this stage.
  virtual Time cost(const net::Packet& pkt) const = 0;
  /// Act on the skb and forward (or absorb) it.
  virtual void process(net::PacketPtr pkt, StageContext& ctx) = 0;
  /// Called when a poll batch on `ctx.core` ends (GRO flush point).
  virtual void end_batch(StageContext& /*ctx*/) {}
};

/// Per-(stage, core) work queue; a Pollable scheduled on its core like the
/// per-device softirq backlog it models.
class StageQueue : public sim::Pollable {
 public:
  StageQueue(Machine& machine, Stage& stage, std::size_t stage_index,
             int core_id)
      : machine_(machine),
        stage_(stage),
        stage_index_(stage_index),
        core_id_(core_id) {}

  void enqueue(net::PacketPtr pkt) { fifo_.push_back(std::move(pkt)); }
  std::size_t depth() const { return fifo_.size(); }
  int core_id() const { return core_id_; }

  bool poll(sim::Core& core, int budget) override;
  std::string_view poll_name() const override {
    return stage_name(stage_.id());
  }

 private:
  Machine& machine_;
  Stage& stage_;
  std::size_t stage_index_;
  int core_id_;
  std::deque<net::PacketPtr> fifo_;
};

/// Hook intercepting the transition *into* path stage `next_index`.
/// MFLOW's flow-splitting function is implemented as one of these.
class TransitionHook {
 public:
  virtual ~TransitionHook() = default;
  virtual void on_forward(net::PacketPtr pkt, std::size_t next_index,
                          int from_core) = 0;
};

}  // namespace mflow::stack
