#include "stack/udp_rx.hpp"

#include "stack/machine.hpp"

namespace mflow::stack {

void UdpStage::process(net::PacketPtr pkt, StageContext& ctx) {
  ++delivered_;
  ctx.machine.socket_ingest(std::move(pkt), ctx.core.id());
}

}  // namespace mflow::stack
