// VXLAN decapsulation device — the heavyweight network device of container
// overlay networks (paper §II: "a heavy device (e.g., VxLAN) can still
// saturate one CPU core"). Performs real byte-level outer-header validation
// and stripping via net::vxlan_decap.
#pragma once

#include <cstdint>

#include "stack/stage.hpp"

namespace mflow::stack {

class VxlanStage : public Stage {
 public:
  VxlanStage(const CostModel& costs, std::uint32_t expected_vni)
      : costs_(costs), expected_vni_(expected_vni) {}

  StageId id() const override { return StageId::kVxlan; }
  sim::Tag tag() const override { return sim::Tag::kVxlan; }

  Time cost(const net::Packet& pkt) const override {
    return costs_.vxlan_per_skb + costs_.vxlan_per_seg * pkt.gro_segs;
  }

  void process(net::PacketPtr pkt, StageContext& ctx) override;

  std::uint64_t decap_failures() const { return failures_; }
  std::uint64_t decapsulated() const { return decapsulated_; }

 private:
  const CostModel& costs_;
  std::uint32_t expected_vni_;
  std::uint64_t failures_ = 0;
  std::uint64_t decapsulated_ = 0;
};

}  // namespace mflow::stack
