// VXLAN decapsulation device — the heavyweight network device of container
// overlay networks (paper §II: "a heavy device (e.g., VxLAN) can still
// saturate one CPU core"). Performs real byte-level outer-header validation
// and stripping via net::vxlan_decap.
//
// With a FlowCache installed (overlay::install_flow_cache) this stage is
// also the fast-path probe point: a committed entry replaces the whole
// vxlan -> bridge -> veth segment with a single header splice, and the
// packet jumps straight to the inner IP stage. The probe lives HERE, after
// the MFLOW splitter's transition hook, so split packets are probed too and
// the splitter's per-flow totals (the control plane's input) keep counting
// cached traffic.
#pragma once

#include <cstdint>

#include "stack/flowcache.hpp"
#include "stack/stage.hpp"

namespace mflow::stack {

class VxlanStage : public Stage {
 public:
  VxlanStage(const CostModel& costs, std::uint32_t expected_vni)
      : costs_(costs), expected_vni_(expected_vni) {}

  StageId id() const override { return StageId::kVxlan; }
  sim::Tag tag() const override { return sim::Tag::kVxlan; }

  /// Cost must predict what process() will do: StageQueue charges it
  /// BEFORE processing, so a hit is charged the splice cost instead of the
  /// full decap, and a miss additionally pays the probe that failed.
  Time cost(const net::Packet& pkt) const override {
    if (cache_ != nullptr) {
      if (cache_->would_hit(pkt))
        return costs_.fastpath_lookup + costs_.fastpath_splice +
               costs_.fastpath_per_seg * pkt.gro_segs;
      return costs_.fastpath_lookup + costs_.vxlan_per_skb +
             costs_.vxlan_per_seg * pkt.gro_segs;
    }
    return costs_.vxlan_per_skb + costs_.vxlan_per_seg * pkt.gro_segs;
  }

  void process(net::PacketPtr pkt, StageContext& ctx) override;

  /// Install the fast-path cache (nullptr disables; non-owning).
  void set_cache(FlowCache* cache) { cache_ = cache; }

  std::uint64_t decap_failures() const { return failures_; }
  std::uint64_t decapsulated() const { return decapsulated_; }
  std::uint64_t spliced() const { return spliced_; }

 private:
  const CostModel& costs_;
  std::uint32_t expected_vni_;
  FlowCache* cache_ = nullptr;
  std::uint64_t failures_ = 0;
  std::uint64_t decapsulated_ = 0;
  std::uint64_t spliced_ = 0;
};

}  // namespace mflow::stack
