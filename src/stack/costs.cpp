#include "stack/costs.hpp"

namespace mflow::stack {

CostModel default_costs() { return CostModel{}; }

}  // namespace mflow::stack
