#include "stack/ip_rx.hpp"

#include "stack/machine.hpp"

namespace mflow::stack {

void IpRxStage::process(net::PacketPtr pkt, StageContext& ctx) {
  // Genuine RFC 1071 verification of whatever IPv4 header is currently
  // outermost in the skb's real bytes.
  const auto bytes = pkt->buf.data();
  const auto l3 = bytes.subspan(net::EthernetHeader::kSize);
  if (!net::Ipv4Header::verify(l3)) {
    ++checksum_drops_;
    ctx.machine.note_lost_in_flight(*pkt);
    return;
  }
  ++accepted_;
  ctx.forward(std::move(pkt));
}

}  // namespace mflow::stack
