// GRO as a pipeline stage.
//
// In Linux, GRO runs inside the driver's NAPI poll; FALCON's function-level
// pipelining showed it can be treated as a detachable heavyweight function.
// We model it as a first-class stage so steering policies can place it
// (vanilla: driver core; FALCON-fun: its own core; MFLOW: on each splitting
// core). State is per-core: each core that runs GRO has its own merge table,
// exactly like per-CPU napi_gro state in the kernel.
#pragma once

#include <unordered_map>

#include "net/gro.hpp"
#include "stack/stage.hpp"

namespace mflow::stack {

class GroStage : public Stage {
 public:
  GroStage(const CostModel& costs, net::GroParams params)
      : costs_(costs), params_(params) {}

  StageId id() const override { return StageId::kGro; }
  sim::Tag tag() const override { return sim::Tag::kGro; }

  Time cost(const net::Packet& pkt) const override {
    if (pkt.flow.protocol != net::Ipv4Header::kProtoTcp || !params_.enabled)
      return costs_.gro_udp_passthrough;
    return costs_.gro_per_seg * pkt.gro_segs;
  }

  void process(net::PacketPtr pkt, StageContext& ctx) override;
  void end_batch(StageContext& ctx) override;

  std::uint64_t merged_segments() const;

 private:
  net::GroEngine& engine(int core_id);

  const CostModel& costs_;
  net::GroParams params_;
  std::unordered_map<int, net::GroEngine> engines_;
};

}  // namespace mflow::stack
