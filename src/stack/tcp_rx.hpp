// TCP receive processing: the *stateful* stage of the path.
//
// In-order segments advance the stream and are delivered; out-of-order
// segments pay the kernel's per-packet ofo-queue insertion penalty and wait.
// This is the stage MFLOW must merge micro-flows *before* ("in-order packet
// processing ... only when necessary, e.g. before packets enter the
// transport layer"). The logic lives in TcpReceiver so it can run either in
// softirq context (vanilla/RPS/FALCON: TcpStage below) or in the packet-
// delivery thread after MFLOW's reassembler (paper: merging added to
// tcp_recvmsg).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "stack/stage.hpp"

namespace mflow::stack {

class TcpReceiver {
 public:
  using DeliverFn = std::function<void(net::PacketPtr)>;
  /// Cumulative ACK callback: (flow, contiguous stream bytes received).
  using AckFn = std::function<void(net::FlowId, std::uint64_t)>;
  /// Charges extra CPU (the ofo-insert penalty) on the processing core.
  using ChargeFn = std::function<void(sim::Time)>;

  explicit TcpReceiver(const CostModel& costs) : costs_(costs) {}

  void set_ack_callback(AckFn fn) { ack_ = std::move(fn); }

  /// Process one segment. In-order data (and any ofo data it unblocks) is
  /// passed to `deliver`; out-of-order data is queued after charging the
  /// insert penalty through `charge`.
  void on_segment(net::PacketPtr pkt, const DeliverFn& deliver,
                  const ChargeFn& charge);

  std::uint64_t ofo_insertions() const { return ofo_insertions_; }
  std::uint64_t duplicates_dropped() const { return dups_; }
  std::uint64_t segments_accepted() const { return accepted_; }
  std::uint64_t expected_offset(net::FlowId flow) const;

 private:
  struct FlowState {
    std::uint64_t expected = 0;  // next in-order stream offset
    std::map<std::uint64_t, net::PacketPtr> ofo;  // keyed by stream offset
  };

  const CostModel& costs_;
  AckFn ack_;
  std::unordered_map<net::FlowId, FlowState> flows_;
  std::uint64_t ofo_insertions_ = 0;
  std::uint64_t dups_ = 0;
  std::uint64_t accepted_ = 0;
};

/// Softirq-context TCP stage (the vanilla/RPS/FALCON arrangement): delivers
/// in-order data straight into the destination socket.
class TcpStage : public Stage {
 public:
  TcpStage(const CostModel& costs, TcpReceiver& receiver)
      : costs_(costs), receiver_(receiver) {}

  StageId id() const override { return StageId::kTcp; }
  sim::Tag tag() const override { return sim::Tag::kTcpRx; }
  Time cost(const net::Packet& pkt) const override {
    return costs_.tcp_rx_per_skb + costs_.tcp_rx_per_seg * pkt.gro_segs;
  }
  void process(net::PacketPtr pkt, StageContext& ctx) override;

 private:
  const CostModel& costs_;
  TcpReceiver& receiver_;
};

}  // namespace mflow::stack
