// ONCache-style per-flow encap/decap fast-path cache (DES engine).
//
// Every packet of an overlay flow pays the same VXLAN decap, bridge FDB
// lookup and veth crossing — yet after the first packet all of those
// decisions are invariant. Following ONCache (PAPERS.md), the slow path
// records the resolved decision per inner 5-tuple (VNI, FDB port, dst MAC)
// while the first packets traverse vxlan -> bridge -> veth; once an entry is
// committed, VxlanStage applies the whole overlay segment as a single header
// splice and jumps the packet straight to the inner IP stage.
//
// Invalidation protocol (see docs/ARCHITECTURE.md §9):
//  - FDB relearn that MOVES a MAC to a different port erases every entry
//    recorded against that MAC (BridgeStage::learn -> invalidate_mac);
//  - a control-plane split-degree change erases the flow's entry
//    (MflowEngine::set_flow_degree -> invalidate_flow), so the first batch
//    under the new degree re-resolves through the slow path;
//  - topology teardown calls invalidate_all.
// A lookup NEVER returns an uncommitted or erased entry, so a stale
// decision cannot be applied: between invalidation and the next commit the
// flow simply takes the slow path again.
//
// The DES is single-threaded, so the cache needs no locking; counters are
// plain integers surfaced through trace::Registry ("flowcache.*").
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/flow.hpp"
#include "net/packet.hpp"

namespace mflow::stack {

struct FlowCacheConfig {
  /// Maximum committed + in-progress entries; inserting past this evicts.
  std::size_t capacity = 1024;
};

struct FlowCacheEntry {
  net::FlowId flow_id = 0;
  std::uint32_t vni = 0;
  int fdb_port = -1;           // -1: bridge flooded (no FDB entry)
  net::MacAddr dst_mac{};      // inner dst MAC the port was resolved for
  bool has_port = false;       // bridge stage contributed
  bool committed = false;      // veth stage sealed the entry (usable)
  std::uint64_t hit_segs = 0;  // wire segments spliced through this entry
};

class FlowCache {
 public:
  explicit FlowCache(FlowCacheConfig cfg = {}) : cfg_(cfg) {}

  const FlowCacheConfig& config() const { return cfg_; }

  /// Fast-path probe (counts a hit or a miss). Returns the committed entry
  /// for the packet's inner 5-tuple, or nullptr (slow path).
  const FlowCacheEntry* lookup(const net::Packet& pkt);

  /// Side-effect-free probe for cost accounting (Stage::cost is const).
  bool would_hit(const net::Packet& pkt) const;

  /// Account `segs` wire segments spliced through a hit entry.
  void note_hit_segs(const net::Packet& pkt, std::uint32_t segs);

  // --- slow-path recording ---------------------------------------------------
  /// VXLAN stage decapped the packet: open (or refresh) the entry. May
  /// evict an unrelated entry when the cache is full.
  void record_vni(const net::Packet& pkt, std::uint32_t vni);
  /// Bridge stage resolved the inner dst MAC (port -1 = flooded).
  void record_port(const net::Packet& pkt, const net::MacAddr& dst, int port);
  /// Veth stage: the packet cleared the whole overlay segment under the
  /// recorded decision — seal the entry for fast-path use. Returns true if
  /// a previously-uncommitted entry became usable (the insert to charge).
  bool commit(const net::Packet& pkt);

  // --- invalidation ----------------------------------------------------------
  /// FDB relearn moved `mac`: erase every entry resolved against it.
  void invalidate_mac(const net::MacAddr& mac);
  /// Control-plane rescale epoch for `flow`: erase its entry so the new
  /// split layout re-resolves through the slow path.
  void invalidate_flow(net::FlowId flow);
  void invalidate_all();

  // --- counters --------------------------------------------------------------
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t hit_segs() const { return hit_segs_; }
  std::uint64_t inserts() const { return inserts_; }
  std::uint64_t invalidations() const { return invalidations_; }
  std::uint64_t evictions() const { return evictions_; }
  std::size_t size() const { return entries_.size(); }

 private:
  FlowCacheConfig cfg_;
  std::unordered_map<net::FlowKey, FlowCacheEntry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t hit_segs_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mflow::stack
