#include "stack/flowcache.hpp"

namespace mflow::stack {

const FlowCacheEntry* FlowCache::lookup(const net::Packet& pkt) {
  const auto it = entries_.find(pkt.flow);
  if (it == entries_.end() || !it->second.committed) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

bool FlowCache::would_hit(const net::Packet& pkt) const {
  const auto it = entries_.find(pkt.flow);
  return it != entries_.end() && it->second.committed;
}

void FlowCache::note_hit_segs(const net::Packet& pkt, std::uint32_t segs) {
  hit_segs_ += segs;
  const auto it = entries_.find(pkt.flow);
  if (it != entries_.end()) it->second.hit_segs += segs;
}

void FlowCache::record_vni(const net::Packet& pkt, std::uint32_t vni) {
  auto it = entries_.find(pkt.flow);
  if (it == entries_.end()) {
    if (entries_.size() >= cfg_.capacity) {
      // Full: evict an arbitrary victim (unordered_map iteration order).
      // A victim flow simply re-resolves through the slow path; under
      // capacity pressure this thrashes, which is exactly the miss-storm
      // behavior bench/ablate_flowcache measures.
      entries_.erase(entries_.begin());
      ++evictions_;
    }
    it = entries_.emplace(pkt.flow, FlowCacheEntry{}).first;
  }
  it->second.flow_id = pkt.flow_id;
  it->second.vni = vni;
}

void FlowCache::record_port(const net::Packet& pkt, const net::MacAddr& dst,
                            int port) {
  const auto it = entries_.find(pkt.flow);
  if (it == entries_.end()) return;  // evicted between vxlan and bridge
  it->second.dst_mac = dst;
  it->second.fdb_port = port;
  it->second.has_port = true;
}

bool FlowCache::commit(const net::Packet& pkt) {
  const auto it = entries_.find(pkt.flow);
  if (it == entries_.end() || !it->second.has_port || it->second.committed)
    return false;
  it->second.committed = true;
  ++inserts_;
  return true;
}

void FlowCache::invalidate_mac(const net::MacAddr& mac) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.has_port && it->second.dst_mac == mac) {
      it = entries_.erase(it);
      ++invalidations_;
    } else {
      ++it;
    }
  }
}

void FlowCache::invalidate_flow(net::FlowId flow) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.flow_id == flow) {
      it = entries_.erase(it);
      ++invalidations_;
    } else {
      ++it;
    }
  }
}

void FlowCache::invalidate_all() {
  invalidations_ += entries_.size();
  entries_.clear();
}

}  // namespace mflow::stack
