#include "stack/socket.hpp"

#include "stack/machine.hpp"
#include "trace/trace.hpp"

namespace mflow::stack {

/// The packet-delivery pollable: models the kernel thread that wakes in
/// recvmsg, (optionally) merges micro-flows and runs deferred TCP
/// processing, then copies payload to the application buffer.
class Socket::Reader : public sim::Pollable {
 public:
  explicit Reader(Socket& sock) : sock_(sock) {}

  bool poll(sim::Core& core, int budget) override {
    Socket& s = sock_;
    const CostModel& costs = s.machine_.costs();
    core.charge(sim::Tag::kCopy, costs.recv_wakeup);
    int n = 0;
    trace::Tracer* tr = trace::active();
    while (n < budget) {
      net::PacketPtr pkt;
      const bool merged = s.merge_ != nullptr;
      if (merged) {
        pkt = s.merge_->pop_ready();
        const sim::Time merge_ns = s.merge_->take_pending_charge();
        if (merge_ns > 0) core.charge(sim::Tag::kMerge, merge_ns);
        if (!pkt) break;  // in-order head not arrived yet; a later deposit
                          // re-raises us
      } else {
        if (s.rx_queue_.empty()) break;
        pkt = std::move(s.rx_queue_.front());
        s.rx_queue_.pop_front();
      }
      if (tr != nullptr)
        tr->packet(merged ? trace::EventKind::kReasmRelease
                          : trace::EventKind::kReaderPop,
                   core.vnow(), core.id(), pkt->flow_id, pkt->wire_seq,
                   pkt->microflow_id);

      if (s.config_.tcp_in_reader &&
          pkt->flow.protocol == net::Ipv4Header::kProtoTcp) {
        // MFLOW full-path mode: stateful TCP runs here, after the merge,
        // in recvmsg context (paper §IV "Flow reassembling").
        core.charge(sim::Tag::kTcpRx,
                    costs.tcp_rx_per_skb + costs.tcp_rx_per_seg *
                                               static_cast<sim::Time>(
                                                   pkt->gro_segs));
        s.tcp_rx_.on_segment(
            std::move(pkt),
            [&s, &core](net::PacketPtr p) {
              s.deliver_to_app(std::move(p), core);
            },
            [&core](sim::Time ns) { core.charge(sim::Tag::kTcpRx, ns); });
      } else {
        s.deliver_to_app(std::move(pkt), core);
      }
      ++n;
    }
    if (s.merge_ != nullptr) return s.merge_->pop_ready_available();
    return !s.rx_queue_.empty();
  }

  std::string_view poll_name() const override { return "recvmsg"; }

 private:
  Socket& sock_;
};

Socket::Socket(Machine& machine, SocketConfig config)
    : machine_(machine), config_(config), tcp_rx_(machine.costs()) {
  reader_cores_.push_back(config_.app_core);
  for (int c : config_.extra_reader_cores)
    if (c != config_.app_core) reader_cores_.push_back(c);
  for (std::size_t i = 0; i < reader_cores_.size(); ++i)
    readers_.push_back(std::make_unique<Reader>(*this));
}

Socket::~Socket() = default;

int Socket::next_reader_core() {
  const std::size_t idx = reader_rr_ % reader_cores_.size();
  reader_rr_ = (reader_rr_ + 1) % reader_cores_.size();
  return reader_cores_[idx];
}

void Socket::ingest(net::PacketPtr pkt, int from_core) {
  if (trace::Tracer* tr = trace::active())
    tr->packet(merge_ != nullptr ? trace::EventKind::kReasmHold
                                 : trace::EventKind::kSocketEnqueue,
               machine_.core(from_core).vnow(), from_core, pkt->flow_id,
               pkt->wire_seq, pkt->microflow_id);
  if (merge_ != nullptr) {
    merge_->deposit(std::move(pkt), from_core);
  } else {
    rx_queue_.push_back(std::move(pkt));
  }
  const std::size_t idx = reader_rr_ % reader_cores_.size();
  const int reader_core = next_reader_core();
  const bool remote = from_core != reader_core;
  if (machine_.core(reader_core).raise(*readers_[idx], remote) && remote)
    machine_.core(from_core).charge(sim::Tag::kSteer,
                                    machine_.costs().ipi_cost);
}

void Socket::notify_merge_ready() {
  const std::size_t idx = reader_rr_ % reader_cores_.size();
  const int reader_core = next_reader_core();
  machine_.core(reader_core).raise(*readers_[idx], /*remote=*/false);
}

void Socket::deliver_to_app(net::PacketPtr pkt, sim::Core& core) {
  const CostModel& costs = machine_.costs();
  stats_.skbs += 1;
  stats_.segments += pkt->gro_segs;
  trace::Tracer* tr = trace::active();
  if (tr != nullptr)
    tr->packet(trace::EventKind::kCopyStart, core.vnow(), core.id(),
               pkt->flow_id, pkt->wire_seq, pkt->microflow_id);
  const auto copy_ns = static_cast<sim::Time>(
      costs.copy_per_byte * static_cast<double>(pkt->payload_len));
  core.charge(sim::Tag::kCopy, copy_ns);
  if (tr != nullptr) {
    tr->registry().add("socket.delivered_skbs");
    tr->packet(trace::EventKind::kCopyDone, core.vnow(), core.id(),
               pkt->flow_id, pkt->wire_seq, pkt->microflow_id, 0, copy_ns);
  }
  stats_.payload_bytes += pkt->payload_len;
  account_message_bytes(*pkt, machine_.simulator().now());
  // skb freed here: payload handed to the application.
}

void Socket::account_message_bytes(const net::Packet& pkt, sim::Time now) {
  const CostModel& costs = machine_.costs();
  auto& core0 = machine_.core(config_.app_core);

  if (pkt.flow.protocol == net::Ipv4Header::kProtoTcp &&
      !config_.per_message_accounting) {
    if (config_.message_size == 0) return;  // pure stream, no framing
    if (stream_msg_bytes_ == 0) stream_msg_start_ = pkt.t_wire;
    stream_msg_bytes_ += pkt.payload_len;
    while (stream_msg_bytes_ >= config_.message_size) {
      stream_msg_bytes_ -= config_.message_size;
      ++stats_.messages;
      const auto lat = static_cast<std::uint64_t>(
          std::max<sim::Time>(0, now - stream_msg_start_));
      stats_.latency.record(lat);
      if (listener_)
        listener_(pkt.flow_id, pkt.message_id, static_cast<sim::Time>(lat));
      core0.charge(sim::Tag::kCopy, costs.copy_per_msg);
      // The next message began inside this skb.
      stream_msg_start_ = pkt.t_wire;
    }
    return;
  }

  // Per-message-id accounting (UDP datagrams and variable-size TCP
  // request/response messages): bytes accumulate until message_bytes arrive.
  const std::uint64_t id = pkt.message_id;
  newest_msg_id_ = std::max(newest_msg_id_, id);
  UdpMsg& msg = udp_msgs_[id];
  if (msg.bytes == 0) msg.start = pkt.t_wire;
  msg.bytes += pkt.payload_len;
  if (msg.bytes >= pkt.message_bytes) {
    ++stats_.messages;
    const auto lat = static_cast<std::uint64_t>(
        std::max<sim::Time>(0, now - msg.start));
    stats_.latency.record(lat);
    if (listener_)
      listener_(pkt.flow_id, id, static_cast<sim::Time>(lat));
    core0.charge(sim::Tag::kCopy, costs.copy_per_msg);
    udp_msgs_.erase(id);
  } else if (udp_msgs_.size() > 8192) {
    // Lost fragments leave stale entries; prune far-behind message ids.
    const std::uint64_t horizon =
        newest_msg_id_ > 4096 ? newest_msg_id_ - 4096 : 0;
    for (auto it = udp_msgs_.begin(); it != udp_msgs_.end();) {
      it = it->first < horizon ? udp_msgs_.erase(it) : std::next(it);
    }
  }
}

}  // namespace mflow::stack
