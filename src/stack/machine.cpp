#include "stack/machine.hpp"

#include "stack/driver.hpp"
#include "trace/trace.hpp"

namespace mflow::stack {

Machine::Machine(sim::Simulator& sim, MachineParams params)
    : sim_(sim), params_(std::move(params)), nic_(params_.nic) {
  cores_.reserve(static_cast<std::size_t>(params_.num_cores));
  for (int i = 0; i < params_.num_cores; ++i)
    cores_.push_back(
        std::make_unique<sim::Core>(sim_, i, params_.core_params));
  if (params_.irq_affinity.empty()) {
    // Default: queue i handled by core 1 + i (core 0 is the app core).
    for (int q = 0; q < params_.nic.num_queues; ++q)
      params_.irq_affinity.push_back(1 + q % (params_.num_cores - 1));
  }
}

Machine::~Machine() = default;

void Machine::set_path(std::vector<std::unique_ptr<Stage>> stages) {
  path_ = std::move(stages);
  hooks_.assign(path_.size() + 1, nullptr);
  queues_.clear();
  queues_.resize(path_.size());
}

std::size_t Machine::stage_index(StageId id) const {
  for (std::size_t i = 0; i < path_.size(); ++i)
    if (path_[i]->id() == id) return i;
  throw std::out_of_range("stage not present in path");
}

bool Machine::has_stage(StageId id) const {
  for (const auto& s : path_)
    if (s->id() == id) return true;
  return false;
}

void Machine::set_steering(std::unique_ptr<SteeringPolicy> policy) {
  steering_ = std::move(policy);
}

void Machine::set_transition_hook(std::size_t index, TransitionHook* hook) {
  hooks_.at(index) = hook;
}

Socket& Machine::add_socket(std::uint16_t port, SocketConfig cfg) {
  auto [it, inserted] =
      sockets_.emplace(port, std::make_unique<Socket>(*this, cfg));
  if (!inserted) throw std::invalid_argument("port already bound");
  return *it->second;
}

Socket& Machine::socket(std::uint16_t port) {
  auto it = sockets_.find(port);
  if (it == sockets_.end()) throw std::out_of_range("no socket on port");
  return *it->second;
}

void Machine::start() {
  drivers_.clear();
  owned_drivers_.clear();
  for (int q = 0; q < nic_.num_queues(); ++q) {
    const int core_id =
        params_.irq_affinity[static_cast<std::size_t>(q) %
                             params_.irq_affinity.size()];
    owned_drivers_.push_back(
        std::make_unique<DriverPollable>(*this, nic_.queue(q), core_id));
    drivers_.push_back(DriverEntry{owned_drivers_.back().get(), core_id});
  }
  nic_.set_irq_handler([this](int q) {
    DriverEntry& d = drivers_[static_cast<std::size_t>(q)];
    sim::Core& c = core(d.core_id);
    // NAPI: the device interrupt is masked while its pollable is scheduled;
    // only a fresh wakeup pays top-half cost.
    if (!d.pollable->scheduled()) {
      c.inject(sim::Tag::kIrq, params_.costs.irq);
      if (trace::Tracer* tr = trace::active())
        tr->mark(trace::EventKind::kIrqRaise, sim_.now(), d.core_id,
                 static_cast<std::uint64_t>(q));
    }
    c.raise(*d.pollable, /*remote=*/false);
  });
}

void Machine::override_driver(int queue, sim::Pollable* driver, int core_id) {
  auto& d = drivers_.at(static_cast<std::size_t>(queue));
  d.pollable = driver;
  d.core_id = core_id;
}

StageQueue& Machine::queue(std::size_t index, int core_id) {
  auto& per_core = queues_.at(index);
  auto it = per_core.find(core_id);
  if (it == per_core.end()) {
    it = per_core
             .emplace(core_id, std::make_unique<StageQueue>(
                                   *this, *path_[index], index, core_id))
             .first;
  }
  return *it->second;
}

void Machine::inject_into_path(std::size_t index, int from_core,
                               net::PacketPtr pkt) {
  if (index >= path_.size()) {
    if (terminal_) {
      terminal_(std::move(pkt), from_core);
    } else {
      socket_ingest(std::move(pkt), from_core);
    }
    return;
  }
  if (TransitionHook* hook = hooks_[index]) {
    hook->on_forward(std::move(pkt), index, from_core);
    return;
  }
  const StageId next_id = path_[index]->id();
  int target = from_core;
  Time steer_cost = 0;
  if (steering_) {
    target = steering_->core_for(next_id, *pkt, from_core);
    steer_cost = steering_->steer_cost(next_id);
  }
  const bool handoff = target != from_core;
  sim::Core& fc = core(from_core);
  fc.charge(sim::Tag::kSteer,
            steer_cost + (handoff ? params_.costs.remote_enqueue
                                  : params_.costs.local_enqueue));
  trace::Tracer* tr = trace::active();
  if (handoff && tr != nullptr)
    tr->packet(trace::EventKind::kHandoff, fc.vnow(), from_core, pkt->flow_id,
               pkt->wire_seq, pkt->microflow_id,
               static_cast<std::uint64_t>(target));
  if (handoff && faults_ != nullptr) {
    const net::FaultAction action = faults_->decide(net::FaultPoint::kHandoff);
    if (tr != nullptr && action != net::FaultAction::kNone) {
      tr->registry().add("fault.handoff_verdicts");
      tr->packet(trace::EventKind::kFaultVerdict, fc.vnow(), from_core,
                 pkt->flow_id, pkt->wire_seq, pkt->microflow_id,
                 static_cast<std::uint64_t>(action));
    }
    switch (action) {
      case net::FaultAction::kDrop:
        faults_->note_dropped_segs(pkt->gro_segs);
        if (tr != nullptr)
          tr->packet(trace::EventKind::kDrop, fc.vnow(), from_core,
                     pkt->flow_id, pkt->wire_seq, pkt->microflow_id);
        note_lost_in_flight(*pkt);
        return;  // the skb vanishes between the cores
      case net::FaultAction::kCorrupt:
        faults_->corrupt(*pkt);
        break;
      case net::FaultAction::kDuplicate:
        deliver_to_stage(index, target, from_core,
                         net::clone_packet(*pkt),
                         /*charge_handoff=*/false);
        break;
      case net::FaultAction::kDelay: {
        // EventFn must be copyable, so the unique_ptr rides in a shared
        // holder; if the simulation ends before the event fires, the holder
        // still frees the packet.
        auto held = std::make_shared<net::PacketPtr>(std::move(pkt));
        sim_.after(faults_->delay_ns(net::FaultPoint::kHandoff),
                   [this, index, target, from_core, held] {
                     deliver_to_stage(index, target, from_core,
                                      std::move(*held),
                                      /*charge_handoff=*/false);
                   });
        return;
      }
      case net::FaultAction::kNone:
        break;
    }
  }
  deliver_to_stage(index, target, from_core, std::move(pkt),
                   /*charge_handoff=*/false);
}

void Machine::note_lost_in_flight(const net::Packet& pkt) {
  if (pkt.microflow_id != 0 && split_drop_) split_drop_(pkt);
}

void Machine::deliver_to_stage(std::size_t index, int target_core,
                               int from_core, net::PacketPtr pkt,
                               bool charge_handoff) {
  sim::Core& fc = core(from_core);
  if (charge_handoff)
    fc.charge(sim::Tag::kSteer, target_core != from_core
                                    ? params_.costs.remote_enqueue
                                    : params_.costs.local_enqueue);
  if (trace::Tracer* tr = trace::active())
    tr->packet(trace::EventKind::kEnqueue, fc.vnow(), target_core,
               pkt->flow_id, pkt->wire_seq, pkt->microflow_id,
               static_cast<std::uint64_t>(path_[index]->id()));
  StageQueue& q = queue(index, target_core);
  q.enqueue(std::move(pkt));
  const bool remote = target_core != from_core;
  if (core(target_core).raise(q, remote) && remote)
    fc.charge(sim::Tag::kSteer, params_.costs.ipi_cost);
}

void Machine::socket_ingest(net::PacketPtr pkt, int from_core) {
  ++ingested_;
  auto it = sockets_.find(pkt->flow.dst_port);
  if (it == sockets_.end()) return;  // no listener: drop (like ICMP unreach)
  core(from_core).charge(sim::Tag::kSteer, params_.costs.sock_enqueue);
  it->second->ingest(std::move(pkt), from_core);
}

void Machine::reset_measurement() {
  for (auto& c : cores_) c->reset_accounting();
  for (auto& [_, s] : sockets_) s->reset_stats();
}

}  // namespace mflow::stack
