#include "stack/tx_stages.hpp"

#include "stack/bridge.hpp"
#include "stack/ip_rx.hpp"
#include "stack/veth.hpp"

namespace mflow::stack {

void VxlanEncapStage::process(net::PacketPtr pkt, StageContext& ctx) {
  net::vxlan_encap(*pkt, src_, dst_, vni_);
  ++count_;
  ctx.forward(std::move(pkt));
}

std::vector<std::unique_ptr<Stage>> build_tx_path(const CostModel& costs,
                                                  net::Ipv4Addr outer_src,
                                                  net::Ipv4Addr outer_dst,
                                                  std::uint32_t vni) {
  std::vector<std::unique_ptr<Stage>> path;
  path.push_back(std::make_unique<VethStage>(costs));
  path.push_back(std::make_unique<BridgeStage>(costs));
  path.push_back(std::make_unique<VxlanEncapStage>(costs, outer_src,
                                                   outer_dst, vni));
  path.push_back(std::make_unique<IpRxStage>(costs, /*outer=*/true));
  path.push_back(std::make_unique<DriverTxStage>(costs));
  return path;
}

}  // namespace mflow::stack
