#include "stack/driver.hpp"

#include "stack/machine.hpp"
#include "trace/trace.hpp"

namespace mflow::stack {

bool DriverPollable::poll(sim::Core& core, int budget) {
  const CostModel& costs = machine_.costs();
  trace::Tracer* tr = trace::active();
  int n = 0;
  while (n < budget) {
    net::PacketPtr pkt = ring_.pop();
    if (!pkt) break;
    if (tr != nullptr)
      tr->packet(trace::EventKind::kRingDequeue, core.vnow(), core.id(),
                 pkt->flow_id, pkt->wire_seq, pkt->microflow_id);
    core.charge(sim::Tag::kDriver, costs.driver_poll_per_pkt);
    core.charge(sim::Tag::kSkbAlloc, costs.skb_alloc);
    pkt->skb_allocated = true;
    if (tr != nullptr)
      tr->packet(trace::EventKind::kSkbAlloc, core.vnow(), core.id(),
                 pkt->flow_id, pkt->wire_seq, pkt->microflow_id, 0,
                 costs.driver_poll_per_pkt + costs.skb_alloc);
    machine_.inject_into_path(0, core_id_, std::move(pkt));
    ++n;
  }
  return !ring_.empty();
}

}  // namespace mflow::stack
