#include "stack/driver.hpp"

#include "stack/machine.hpp"

namespace mflow::stack {

bool DriverPollable::poll(sim::Core& core, int budget) {
  const CostModel& costs = machine_.costs();
  int n = 0;
  while (n < budget) {
    net::PacketPtr pkt = ring_.pop();
    if (!pkt) break;
    core.charge(sim::Tag::kDriver, costs.driver_poll_per_pkt);
    core.charge(sim::Tag::kSkbAlloc, costs.skb_alloc);
    pkt->skb_allocated = true;
    machine_.inject_into_path(0, core_id_, std::move(pkt));
    ++n;
  }
  return !ring_.empty();
}

}  // namespace mflow::stack
