// Transmit-side stages: the container's overlay egress path.
//
// A packet sent by a containerized application traverses (veth egress ->
// bridge -> VXLAN *encapsulation* -> host IP -> physical driver TX). The
// paper's results repeatedly show this path throttling the clients (UDP
// senders saturating their cores, §V-A), and §VII names the sender side as
// future work — so we model it with the same Stage machinery as the receive
// path and let MFLOW's flow splitter parallelize it (see
// workload/txhost.hpp).
//
// Stage kinds reuse the RX StageId space: kVeth/kBridge/kIp keep their ids
// (their costs are symmetric enough); encapsulation and driver TX get
// dedicated classes below, reusing kVxlan/kDriver ids.
#pragma once

#include "stack/stage.hpp"

namespace mflow::stack {

/// VXLAN encapsulation: real outer-header construction (net::vxlan_encap).
class VxlanEncapStage : public Stage {
 public:
  VxlanEncapStage(const CostModel& costs, net::Ipv4Addr outer_src,
                  net::Ipv4Addr outer_dst, std::uint32_t vni)
      : costs_(costs), src_(outer_src), dst_(outer_dst), vni_(vni) {}

  StageId id() const override { return StageId::kVxlan; }
  sim::Tag tag() const override { return sim::Tag::kVxlan; }
  Time cost(const net::Packet& pkt) const override {
    // Encap is cheaper than decap (no validation), still per segment.
    return costs_.vxlan_per_skb / 2 + costs_.vxlan_per_seg * pkt.gro_segs;
  }
  void process(net::PacketPtr pkt, StageContext& ctx) override;

  std::uint64_t encapsulated() const { return count_; }

 private:
  const CostModel& costs_;
  net::Ipv4Addr src_, dst_;
  std::uint32_t vni_;
  std::uint64_t count_ = 0;
};

/// Physical driver TX: descriptor setup + doorbell; terminal stage (the
/// Machine's terminal callback represents the wire).
class DriverTxStage : public Stage {
 public:
  explicit DriverTxStage(const CostModel& costs) : costs_(costs) {}

  StageId id() const override { return StageId::kDriver; }
  sim::Tag tag() const override { return sim::Tag::kDriver; }
  Time cost(const net::Packet&) const override {
    return costs_.driver_poll_per_pkt;  // TX descriptor work ~ RX poll work
  }
  void process(net::PacketPtr pkt, StageContext& ctx) override {
    ++count_;
    ctx.forward(std::move(pkt));  // falls off the path -> terminal (wire)
  }

  std::uint64_t transmitted() const { return count_; }

 private:
  const CostModel& costs_;
  std::uint64_t count_ = 0;
};

/// Build the container-egress TX path:
///   veth -> bridge -> vxlan encap -> (outer) IP -> driver TX.
std::vector<std::unique_ptr<Stage>> build_tx_path(const CostModel& costs,
                                                  net::Ipv4Addr outer_src,
                                                  net::Ipv4Addr outer_dst,
                                                  std::uint32_t vni);

}  // namespace mflow::stack
