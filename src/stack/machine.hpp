// The receiving host: cores + NIC + software path + sockets, wired together.
//
// Machine owns the per-(stage, core) queues and implements the stage
// transition function (forward_from / inject_into_path): every skb movement
// between stages goes through it, consulting the installed SteeringPolicy or
// a TransitionHook (MFLOW's splitter). This is the single seam where
// vanilla, RPS, FALCON and MFLOW differ — everything else in the pipeline is
// shared, exactly as in the paper where MFLOW reuses the unmodified kernel
// stack and only re-purposes netif_rx and the driver poll.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "net/fault.hpp"
#include "net/nic.hpp"
#include "sim/core.hpp"
#include "sim/simulator.hpp"
#include "stack/socket.hpp"
#include "stack/stage.hpp"

namespace mflow::stack {

class FlowCache;

struct MachineParams {
  int num_cores = 16;
  net::NicParams nic{};
  CostModel costs{};
  sim::CoreParams core_params{};
  /// RX-queue -> core affinity (like /proc/irq/*/smp_affinity). Default set
  /// in the constructor: queue i -> core 1 + i.
  std::vector<int> irq_affinity{};
};

class Machine {
 public:
  Machine(sim::Simulator& sim, MachineParams params);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Simulator& simulator() { return sim_; }
  net::Nic& nic() { return nic_; }
  const CostModel& costs() const { return params_.costs; }
  const MachineParams& params() const { return params_; }

  sim::Core& core(int id) { return *cores_.at(static_cast<std::size_t>(id)); }
  int num_cores() const { return static_cast<int>(cores_.size()); }

  // --- topology setup --------------------------------------------------------
  /// Install the software path: the ordered stages every received packet
  /// traverses after the driver. Terminal socket ingest is implicit.
  void set_path(std::vector<std::unique_ptr<Stage>> stages);
  std::size_t path_length() const { return path_.size(); }
  Stage& stage_at(std::size_t index) { return *path_.at(index); }
  /// Index of the first stage with this id; throws if absent.
  std::size_t stage_index(StageId id) const;
  bool has_stage(StageId id) const;

  void set_steering(std::unique_ptr<SteeringPolicy> policy);
  SteeringPolicy* steering() { return steering_.get(); }

  /// Per-flow fast-path cache installed on the overlay stages (non-owning;
  /// overlay::install_flow_cache wires the stage-side pointers). Exposed so
  /// control-plane invalidation (MflowEngine::set_flow_degree) can reach it
  /// without the engine knowing about the overlay wiring.
  void set_flow_cache(FlowCache* cache) { flow_cache_ = cache; }
  FlowCache* flow_cache() { return flow_cache_; }

  /// Intercept the transition into path stage `index` (non-owning; the
  /// installer keeps the hook alive).
  void set_transition_hook(std::size_t index, TransitionHook* hook);

  Socket& add_socket(std::uint16_t port, SocketConfig cfg);
  Socket& socket(std::uint16_t port);

  /// Create the default per-queue driver pollables and IRQ wiring.
  /// Call after set_path/set_steering.
  void start();

  /// Replace the driver for `queue` (MFLOW IRQ-splitting installs its
  /// first-half pollable here). Non-owning.
  void override_driver(int queue, sim::Pollable* driver, int core_id);

  // --- runtime plumbing (stages, hooks, workloads) -----------------------------
  /// Stage transition: the packet finished stage `index`; route onward.
  void forward_from(std::size_t index, int from_core, net::PacketPtr pkt) {
    inject_into_path(index + 1, from_core, std::move(pkt));
  }

  /// Route a packet into path stage `index` (hooks/steering applied);
  /// index == path_length() means terminal socket ingest.
  void inject_into_path(std::size_t index, int from_core, net::PacketPtr pkt);

  /// Place a packet directly onto stage `index`'s queue on `target_core`,
  /// bypassing steering (MFLOW's splitter uses this with its own amortized
  /// charging; charge_handoff selects the default per-skb handoff charge).
  void deliver_to_stage(std::size_t index, int target_core, int from_core,
                        net::PacketPtr pkt, bool charge_handoff);

  /// Terminal delivery into the owning socket's queues.
  void socket_ingest(net::PacketPtr pkt, int from_core);

  /// Override the terminal: packets leaving the last stage go to `fn`
  /// instead of socket lookup. Used to model *transmit* pipelines, where
  /// the end of the path is the wire, not a socket.
  using Terminal = std::function<void(net::PacketPtr, int from_core)>;
  void set_terminal(Terminal fn) { terminal_ = std::move(fn); }

  // --- fault injection ---------------------------------------------------------
  /// Perturb packets crossing the inter-core steering handoff (non-owning;
  /// the same injector is usually also installed on the wire and splitter).
  void set_fault_injector(net::FaultInjector* inj) { faults_ = inj; }
  net::FaultInjector* fault_injector() { return faults_; }

  /// Notification that a packet died inside the path (verification drop,
  /// injected fault) — `handler` receives every lost packet that belonged
  /// to a split micro-flow, so merge bookkeeping can retract it.
  using SplitDropHandler = std::function<void(const net::Packet&)>;
  void set_split_drop_handler(SplitDropHandler handler) {
    split_drop_ = std::move(handler);
  }
  /// Stages call this before freeing a packet they refuse to forward.
  void note_lost_in_flight(const net::Packet& pkt);

  // --- measurement ---------------------------------------------------------------
  /// Zero core accounting and socket stats (warmup boundary).
  void reset_measurement();

  std::uint64_t socket_ingest_count() const { return ingested_; }

 private:
  StageQueue& queue(std::size_t index, int core_id);

  struct DriverEntry {
    sim::Pollable* pollable = nullptr;  // points into owned_drivers_ or override
    int core_id = 1;
  };

  sim::Simulator& sim_;
  MachineParams params_;
  std::vector<std::unique_ptr<sim::Core>> cores_;
  net::Nic nic_;

  std::vector<std::unique_ptr<Stage>> path_;
  std::unique_ptr<SteeringPolicy> steering_;
  std::vector<TransitionHook*> hooks_;  // indexed by target stage index

  // queues_[stage index][core id]
  std::vector<std::unordered_map<int, std::unique_ptr<StageQueue>>> queues_;

  std::vector<std::unique_ptr<sim::Pollable>> owned_drivers_;
  std::vector<DriverEntry> drivers_;  // per NIC queue

  std::unordered_map<std::uint16_t, std::unique_ptr<Socket>> sockets_;
  Terminal terminal_;
  net::FaultInjector* faults_ = nullptr;
  FlowCache* flow_cache_ = nullptr;
  SplitDropHandler split_drop_;
  std::uint64_t ingested_ = 0;
};

}  // namespace mflow::stack
