// IP receive: header-checksum verification and local delivery decision.
// Instantiated twice on the overlay path — once for the outer (host) header
// before VXLAN decap and once for the inner (container) header after.
#pragma once

#include <cstdint>

#include "stack/stage.hpp"

namespace mflow::stack {

class IpRxStage : public Stage {
 public:
  /// `outer` selects the StageId so steering policies can place the two
  /// traversals independently (FALCON groups outer IP with VXLAN).
  IpRxStage(const CostModel& costs, bool outer)
      : costs_(costs), outer_(outer) {}

  StageId id() const override {
    return outer_ ? StageId::kIpOuter : StageId::kIp;
  }
  sim::Tag tag() const override { return sim::Tag::kIpRx; }
  Time cost(const net::Packet&) const override {
    return costs_.ip_rx_per_skb;
  }

  void process(net::PacketPtr pkt, StageContext& ctx) override;

  std::uint64_t checksum_drops() const { return checksum_drops_; }
  std::uint64_t accepted() const { return accepted_; }

 private:
  const CostModel& costs_;
  bool outer_;
  std::uint64_t checksum_drops_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace mflow::stack
