#include "stack/vxlan.hpp"

#include "stack/machine.hpp"

namespace mflow::stack {

void VxlanStage::process(net::PacketPtr pkt, StageContext& ctx) {
  const net::DecapResult res = net::vxlan_decap(*pkt);
  if (!res.ok || res.vni != expected_vni_) {
    ++failures_;
    ctx.machine.note_lost_in_flight(*pkt);
    return;  // malformed or foreign-VNI packet: dropped, skb freed
  }
  ++decapsulated_;
  ctx.forward(std::move(pkt));
}

}  // namespace mflow::stack
