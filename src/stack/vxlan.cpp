#include "stack/vxlan.hpp"

namespace mflow::stack {

void VxlanStage::process(net::PacketPtr pkt, StageContext& ctx) {
  const net::DecapResult res = net::vxlan_decap(*pkt);
  if (!res.ok || res.vni != expected_vni_) {
    ++failures_;
    return;  // malformed or foreign-VNI packet: dropped, skb freed
  }
  ++decapsulated_;
  ctx.forward(std::move(pkt));
}

}  // namespace mflow::stack
