#include "stack/vxlan.hpp"

#include "stack/machine.hpp"

namespace mflow::stack {

void VxlanStage::process(net::PacketPtr pkt, StageContext& ctx) {
  if (cache_ != nullptr && cache_->lookup(*pkt) != nullptr) {
    // Fast path: the flow's forwarding decision is cached and sealed.
    // Splice off the outer stack in one step (VNI re-checked against the
    // bytes; checksum/port validation was done by the slow pass that
    // committed the entry) and jump straight to the inner IP stage — the
    // bridge and veth decisions are baked into the entry.
    if (net::vxlan_splice_decap(*pkt, expected_vni_)) {
      ++decapsulated_;
      ++spliced_;
      cache_->note_hit_segs(*pkt, pkt->gro_segs);
      ctx.machine.inject_into_path(ctx.machine.stage_index(StageId::kIp),
                                   ctx.core.id(), std::move(pkt));
      return;
    }
    // Bytes disagree with the committed entry (tunnel changed under the
    // flow): drop the stale decision and take the slow path below.
    cache_->invalidate_flow(pkt->flow_id);
  }
  const net::DecapResult res = net::vxlan_decap(*pkt);
  if (!res.ok || res.vni != expected_vni_) {
    ++failures_;
    ctx.machine.note_lost_in_flight(*pkt);
    return;  // malformed or foreign-VNI packet: dropped, skb freed
  }
  ++decapsulated_;
  if (cache_ != nullptr) cache_->record_vni(*pkt, res.vni);
  ctx.forward(std::move(pkt));
}

}  // namespace mflow::stack
