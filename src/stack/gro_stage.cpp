#include "stack/gro_stage.hpp"

namespace mflow::stack {

net::GroEngine& GroStage::engine(int core_id) {
  auto it = engines_.find(core_id);
  if (it == engines_.end())
    it = engines_.emplace(core_id, net::GroEngine(params_)).first;
  return it->second;
}

void GroStage::process(net::PacketPtr pkt, StageContext& ctx) {
  engine(ctx.core.id()).add(std::move(pkt),
                            [&ctx](net::PacketPtr out) {
                              ctx.forward(std::move(out));
                            });
}

void GroStage::end_batch(StageContext& ctx) {
  engine(ctx.core.id()).flush([&ctx](net::PacketPtr out) {
    ctx.forward(std::move(out));
  });
}

std::uint64_t GroStage::merged_segments() const {
  std::uint64_t total = 0;
  for (const auto& [_, e] : engines_) total += e.merged_segments();
  return total;
}

}  // namespace mflow::stack
