// Driver NAPI poll: stage 1 of the receive pipeline.
//
// Pops raw descriptors from a NIC RX ring, pays descriptor-poll plus
// skb-allocation cost, and injects the fresh skb into the software path.
// This is the stage whose skb-allocation half "cannot be parallelized by
// FALCON or any existing approaches" (paper §II-B) — MFLOW's IRQ-splitting
// function (core/irq_split.hpp) replaces this pollable to split it.
#pragma once

#include "net/nic.hpp"
#include "sim/core.hpp"
#include "stack/stage.hpp"

namespace mflow::stack {

class DriverPollable : public sim::Pollable {
 public:
  DriverPollable(Machine& machine, net::RxRing& ring, int core_id)
      : machine_(machine), ring_(ring), core_id_(core_id) {}

  bool poll(sim::Core& core, int budget) override;
  std::string_view poll_name() const override { return "napi"; }

  int core_id() const { return core_id_; }

 private:
  Machine& machine_;
  net::RxRing& ring_;
  int core_id_;
};

}  // namespace mflow::stack
