// Per-stage CPU cost model (nanoseconds) for the simulated kernel RX path.
//
// Calibration: the paper gives absolute anchors — native single-flow TCP
// saturates one core at 26.6 Gbps (~2.3 Mpps of MSS segments, so the whole
// native per-packet path is ~435 ns); vanilla overlay TCP lands at ~60% of
// native; MFLOW's copy thread saturates core 0 at 29.8 Gbps. The defaults
// below were fit to those anchors and to the relative costs visible in the
// paper's CPU breakdowns (VXLAN decap is the heavyweight device; skb
// allocation is the heavyweight stage-1 function; GRO matters for TCP only).
// Absolute values are a model of the authors' Xeon 5218 testbed, not of this
// host; EXPERIMENTS.md compares shapes, not absolute Gbps.
#pragma once

#include "sim/time.hpp"

namespace mflow::stack {

using sim::Time;

struct CostModel {
  // --- stage 1: IRQ + driver + skb allocation -----------------------------
  Time irq = 2000;                 // per hardware interrupt (top half)
  Time driver_poll_per_pkt = 100;  // descriptor fetch/validate (first half)
  Time skb_alloc = 150;            // skb build (the function FALCON cannot
                                   // split and MFLOW's IRQ-splitting does)
  Time driver_release_update = 500;  // driver ring release (IRQ-split mode),
  int release_batch = 128;           // batched every `release_batch` requests

  // --- GRO -----------------------------------------------------------------
  Time gro_per_seg = 90;      // per incoming TCP segment
  Time gro_udp_passthrough = 20;

  // --- software devices (per super-skb unless noted) ------------------------
  Time ip_rx_per_skb = 250;    // outer or inner IP receive
  Time vxlan_per_skb = 1300;   // decapsulation: the heavyweight device
  Time vxlan_per_seg = 60;     // per coalesced segment inside a super-skb
  Time bridge_per_skb = 150;
  Time veth_per_skb = 200;

  // --- per-flow fast-path cache (stack/flowcache.hpp) -----------------------
  // ONCache-style splice costs: a committed entry replaces the whole
  // vxlan+bridge+veth segment with one lookup + one header splice. Anchored
  // to ONCache's reported per-packet saving (~85% of the intra-host overlay
  // datapath overhead disappears on a hit).
  Time fastpath_lookup = 45;    // flow-keyed hash probe (hit or miss)
  Time fastpath_splice = 110;   // outer-header strip + cached-delta apply
  Time fastpath_per_seg = 15;   // per coalesced segment inside a super-skb
  Time fastpath_insert = 180;   // entry commit after the first slow pass

  // --- stateful NFs (src/nf: NAT / firewall / Maglev LB) ---------------------
  // Per-NF service anchored to reported per-packet middlebox costs (mmb,
  // nfos): a conntrack update is cheaper than a NAT rewrite, an LB table
  // probe cheaper still. The strategy costs model the parallelization tax:
  // an uncontended spinlock acquire is ~100ns; a CONTENDED acquire pays a
  // cache-line bounce plus serialization behind the holder (order-of-1us,
  // scaling with sharers); an SCR replicated update is one compact message
  // absorbed off the peer's cycle budget (SCR paper: state updates compress
  // to tens of bytes, no lock, no bounce).
  Time nf_state_lookup = 60;     // flow-keyed state-table probe
  Time nf_per_seg = 25;          // per coalesced segment in a super-skb
  Time nf_nat_per_skb = 250;     // port binding + header rewrite + checksum
  Time nf_fw_per_skb = 180;      // conntrack flag classification + counters
  Time nf_lb_per_skb = 150;      // consistent-hash lookup + counters
  Time nf_lock_acquire = 120;    // uncontended shared-state lock
  Time nf_lock_contended = 900;  // extra, per peer core sharing the flow
  Time nf_scr_update = 90;       // replicated compact update, charged to
                                 // each peer core holding a replica

  // --- transport -------------------------------------------------------------
  Time tcp_rx_per_skb = 360;
  Time tcp_rx_per_seg = 70;   // per coalesced wire segment (seq/ack/sack
                              // bookkeeping scales with segments)
  Time tcp_ofo_insert = 350;  // kernel per-packet out-of-order queue insert
  Time udp_rx_per_pkt = 200;

  // --- socket & packet-delivery (copy) thread --------------------------------
  Time sock_enqueue = 50;
  Time recv_wakeup = 1200;       // reader wakeup + syscall path, per batch
  double copy_per_byte = 0.19;   // kernel->user copy; caps one core at
                                 // ~30 Gbps, the paper's new bottleneck
  Time copy_per_msg = 500;       // per-message recvmsg bookkeeping

  // --- steering / cross-core ---------------------------------------------------
  Time local_enqueue = 25;
  Time remote_enqueue = 200;  // per-skb cross-core handoff (RPS/FALCON);
                              // the locality+queuing tax the paper critiques
  Time rps_hash_per_pkt = 80;
  Time ipi_cost = 400;        // charged to the core raising the IPI

  // --- MFLOW ---------------------------------------------------------------------
  Time mflow_split_per_pkt = 25;     // batched splitting-queue enqueue
  Time mflow_dispatch_per_batch = 500;  // batch handoff + IPI, amortized
  Time mflow_merge_per_batch = 400;     // locate/switch buffer queue
  Time mflow_merge_per_skb = 40;
  Time mflow_evict_per_batch = 600;     // write off a stalled batch's missing
                                        // segments and force the counter on

  // --- wire ------------------------------------------------------------------------
  Time wire_latency = sim::us(5);

  // --- client (sender) side -----------------------------------------------------
  Time client_tcp_per_seg_native = 120;   // TSO-assisted segmentation
  Time client_tcp_per_seg_overlay = 350;  // GSO + per-segment encap TX
  Time client_udp_per_pkt = 450;
  Time client_overlay_tx_per_pkt = 3400;  // full veth->bridge->vxlan-encap TX
                                          // path (why the paper's UDP clients
                                          // throttle before MFLOW's receiver)
  Time client_per_msg = 3600;             // sendmsg syscall + small-write
                                          // path; makes tiny messages
                                          // client-bound, as the paper's 16B
                                          // TCP results show
  Time client_ack_process = 150;
};

/// Default model calibrated to the paper's testbed anchors.
CostModel default_costs();

}  // namespace mflow::stack
