#include "stack/bridge.hpp"

namespace mflow::stack {

void BridgeStage::process(net::PacketPtr pkt, StageContext& ctx) {
  // Real L2 lookup on the decapsulated inner frame's destination MAC.
  const auto eth = net::EthernetHeader::decode(pkt->buf.data());
  auto it = fdb_.find(eth.dst);
  if (it == fdb_.end()) {
    // Unknown destination: a real bridge floods; with one veth port the
    // effect is identical to forwarding, so count and continue.
    ++flooded_;
  } else {
    ++forwarded_;
  }
  ctx.forward(std::move(pkt));
}

}  // namespace mflow::stack
