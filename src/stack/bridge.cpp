#include "stack/bridge.hpp"

namespace mflow::stack {

void BridgeStage::learn(const net::MacAddr& mac, int port) {
  const auto it = fdb_.find(mac);
  if (it != fdb_.end() && it->second == port) return;  // no-op refresh
  const bool moved = it != fdb_.end();
  fdb_[mac] = port;
  // A MAC that moved port makes every cached decision against it stale;
  // a brand-new entry cannot (nothing was ever resolved to it).
  if (moved && cache_ != nullptr) cache_->invalidate_mac(mac);
}

void BridgeStage::process(net::PacketPtr pkt, StageContext& ctx) {
  // Real L2 lookup on the decapsulated inner frame's destination MAC.
  const auto eth = net::EthernetHeader::decode(pkt->buf.data());
  const auto it = fdb_.find(eth.dst);
  if (it == fdb_.end()) {
    // Unknown destination: a real bridge floods; with one veth port the
    // effect is identical to forwarding, so count and continue.
    ++flooded_;
  } else {
    ++forwarded_;
  }
  if (cache_ != nullptr)
    cache_->record_port(*pkt, eth.dst, it == fdb_.end() ? -1 : it->second);
  ctx.forward(std::move(pkt));
}

}  // namespace mflow::stack
