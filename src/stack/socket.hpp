// Socket layer: backlog/receive queues, the packet-delivery (copy) thread,
// message accounting, and the hook point where MFLOW's reassembler plugs in.
//
// The reader pollable models the kernel thread that copies data from kernel
// buffers to the application (bonded to the application's core — paper
// footnote 1). Under MFLOW, per the paper's implementation section, the
// *merging functionality* runs inside this thread (tcp_recvmsg/udp_recvmsg),
// pulling from per-core buffer queues in micro-flow order.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "net/packet.hpp"
#include "sim/core.hpp"
#include "stack/costs.hpp"
#include "stack/tcp_rx.hpp"
#include "util/histogram.hpp"

namespace mflow::stack {

class Machine;

/// Interface the MFLOW reassembler (core/reassembler.hpp) implements; keeps
/// the stack layer independent of the contribution built on top of it.
class MergeBuffer {
 public:
  virtual ~MergeBuffer() = default;

  /// Softirq side: a splitting core deposits a processed skb.
  virtual void deposit(net::PacketPtr pkt, int from_core) = 0;

  /// Reader side: next skb in original flow order, or nullptr if the
  /// in-order head hasn't arrived yet.
  virtual net::PacketPtr pop_ready() = 0;

  /// CPU charged by merge bookkeeping since the last call (reader drains
  /// this into Tag::kMerge).
  virtual sim::Time take_pending_charge() = 0;

  /// True if pop_ready() would return a packet right now (the reader uses
  /// this to decide whether to stay scheduled).
  virtual bool pop_ready_available() const = 0;

  /// True if any skb is buffered (ready or not).
  virtual bool has_buffered() const = 0;
};

/// Receive-side metrics for one socket, reset at the warmup boundary.
struct RxStats {
  std::uint64_t payload_bytes = 0;      // goodput copied to the application
  std::uint64_t messages = 0;           // completed application messages
  std::uint64_t skbs = 0;               // skbs handed to the reader
  std::uint64_t segments = 0;           // wire segments those skbs carried
  util::Histogram latency{6};           // message latency, ns (first wire
                                        // byte -> copied to application)
  void reset() { *this = RxStats{}; }
};

struct SocketConfig {
  std::uint8_t protocol = net::Ipv4Header::kProtoUdp;
  int app_core = 0;          // where the reader (copy thread) runs
  /// Additional reader (copy) threads on further cores — the paper's
  /// receiver-side future work: once MFLOW parallelizes packet processing,
  /// the single kernel->user copy thread on the app core becomes the new
  /// bottleneck; extra readers parallelize the copy itself. Merging stays
  /// ordered (pops happen in merge order); only the byte copying spreads.
  std::vector<int> extra_reader_cores = {};
  std::uint32_t message_size = 65536;  // TCP stream framing; UDP uses the
                                       // per-packet message_bytes field
  /// TCP processing deferred to the reader (MFLOW full-path mode: merge
  /// happens before the stateful layer, both run in recvmsg context).
  bool tcp_in_reader = false;
  /// Variable-size messages: account TCP deliveries by each packet's
  /// message_id/message_bytes (like UDP) instead of fixed stream framing.
  /// Used by request/response application workloads.
  bool per_message_accounting = false;
};

class Socket {
 public:
  Socket(Machine& machine, SocketConfig config);
  ~Socket();

  /// Ingest from the pipeline (terminal stage). Raises the reader.
  void ingest(net::PacketPtr pkt, int from_core);

  /// Install MFLOW's reassembler; packets then flow through its per-core
  /// buffer queues instead of the single receive queue.
  void set_merge_buffer(MergeBuffer* mb) { merge_ = mb; }

  /// Wake a reader without a new deposit: an eviction or drop retraction
  /// just turned already-buffered data ready.
  void notify_merge_ready();

  /// Only meaningful with tcp_in_reader: the reader-context TCP receiver.
  TcpReceiver& tcp_receiver() { return tcp_rx_; }

  /// Invoked when a complete application message has been copied to user
  /// space: (flow, message id, delivery latency ns). Application workloads
  /// (web serving, data caching) drive their request/response state
  /// machines from this.
  using MessageListener =
      std::function<void(net::FlowId, std::uint64_t, sim::Time)>;
  void set_message_listener(MessageListener fn) {
    listener_ = std::move(fn);
  }

  const RxStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }
  const SocketConfig& config() const { return config_; }

  std::size_t receive_queue_depth() const { return rx_queue_.size(); }

 private:
  class Reader;  // the packet-delivery pollable (copy thread)

  void deliver_to_app(net::PacketPtr pkt, sim::Core& core);
  void account_message_bytes(const net::Packet& pkt, sim::Time now);
  /// Core id of the reader to wake for newly ingested data (round-robin
  /// across the configured reader cores).
  int next_reader_core();

  Machine& machine_;
  SocketConfig config_;
  std::deque<net::PacketPtr> rx_queue_;  // sk_receive_queue
  MergeBuffer* merge_ = nullptr;
  TcpReceiver tcp_rx_;
  std::vector<std::unique_ptr<Reader>> readers_;  // one per reader core
  std::vector<int> reader_cores_;
  std::size_t reader_rr_ = 0;
  RxStats stats_;
  MessageListener listener_;

  // TCP stream -> message framing (all sockperf messages are fixed-size).
  std::uint64_t stream_msg_bytes_ = 0;  // bytes into the current message
  sim::Time stream_msg_start_ = 0;      // t_wire of its first segment

  // UDP datagram reassembly accounting (fragments may be lost).
  struct UdpMsg {
    std::uint32_t bytes = 0;
    sim::Time start = 0;
  };
  std::unordered_map<std::uint64_t, UdpMsg> udp_msgs_;
  std::uint64_t newest_msg_id_ = 0;
};

}  // namespace mflow::stack
