// Virtual bridge: L2 forwarding between the VXLAN device and container veth
// pairs, with a learning FDB keyed by destination MAC. The slow-path half of
// the fast-path cache records the resolved port here, and an FDB relearn
// that moves a MAC invalidates every cached decision made against it.
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "stack/flowcache.hpp"
#include "stack/stage.hpp"

namespace mflow::stack {

class BridgeStage : public Stage {
 public:
  explicit BridgeStage(const CostModel& costs) : costs_(costs) {}

  StageId id() const override { return StageId::kBridge; }
  sim::Tag tag() const override { return sim::Tag::kBridge; }
  Time cost(const net::Packet&) const override {
    return costs_.bridge_per_skb;
  }

  /// Install or update an FDB entry: dst MAC -> logical port. Moving a MAC
  /// to a DIFFERENT port (container migration, veth re-plug) invalidates
  /// every fast-path entry resolved against it — the invalidation half of
  /// the cache's safety contract.
  void learn(const net::MacAddr& mac, int port);

  void process(net::PacketPtr pkt, StageContext& ctx) override;

  /// Install the fast-path cache (nullptr disables; non-owning).
  void set_cache(FlowCache* cache) { cache_ = cache; }

  std::uint64_t flooded() const { return flooded_; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  const CostModel& costs_;
  std::map<net::MacAddr, int> fdb_;
  FlowCache* cache_ = nullptr;
  std::uint64_t flooded_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace mflow::stack
