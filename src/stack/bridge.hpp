// Virtual bridge: L2 forwarding between the VXLAN device and container veth
// pairs, with a learning FDB keyed by destination MAC.
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "stack/stage.hpp"

namespace mflow::stack {

class BridgeStage : public Stage {
 public:
  explicit BridgeStage(const CostModel& costs) : costs_(costs) {}

  StageId id() const override { return StageId::kBridge; }
  sim::Tag tag() const override { return sim::Tag::kBridge; }
  Time cost(const net::Packet&) const override {
    return costs_.bridge_per_skb;
  }

  /// Pre-populate the FDB: dst MAC -> logical port.
  void learn(const net::MacAddr& mac, int port) { fdb_[mac] = port; }

  void process(net::PacketPtr pkt, StageContext& ctx) override;

  std::uint64_t flooded() const { return flooded_; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  const CostModel& costs_;
  std::map<net::MacAddr, int> fdb_;
  std::uint64_t flooded_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace mflow::stack
