#include "stack/stage.hpp"

#include "stack/machine.hpp"
#include "trace/trace.hpp"

namespace mflow::stack {

std::string_view stage_name(StageId id) {
  switch (id) {
    case StageId::kDriver: return "driver";
    case StageId::kGro: return "gro";
    case StageId::kIpOuter: return "ip_outer";
    case StageId::kVxlan: return "vxlan";
    case StageId::kBridge: return "bridge";
    case StageId::kVeth: return "veth";
    case StageId::kIp: return "ip";
    case StageId::kTcp: return "tcp";
    case StageId::kUdp: return "udp";
    case StageId::kSocket: return "socket";
    case StageId::kNf: return "nf";
  }
  return "?";
}

void StageContext::forward(net::PacketPtr pkt) {
  machine.forward_from(stage_index, core.id(), std::move(pkt));
}

bool StageQueue::poll(sim::Core& core, int budget) {
  StageContext ctx{machine_, core, stage_index_};
  int n = 0;
  while (n < budget && !fifo_.empty()) {
    net::PacketPtr pkt = std::move(fifo_.front());
    fifo_.pop_front();
    const sim::Time cost = stage_.cost(*pkt);
    if (trace::Tracer* tr = trace::active()) {
      const auto stage_id = static_cast<std::uint64_t>(stage_.id());
      tr->packet(trace::EventKind::kStageEnter, core.vnow(), core.id(),
                 pkt->flow_id, pkt->wire_seq, pkt->microflow_id, stage_id);
      core.charge(stage_.tag(), cost);
      // Exit is stamped before process() runs so downstream enqueue events
      // sort after the service span; intra-process charges (steer, GRO
      // flush) land in the queueing gap into the next stage.
      tr->packet(trace::EventKind::kStageExit, core.vnow(), core.id(),
                 pkt->flow_id, pkt->wire_seq, pkt->microflow_id, stage_id,
                 cost);
    } else {
      core.charge(stage_.tag(), cost);
    }
    stage_.process(std::move(pkt), ctx);
    ++n;
  }
  stage_.end_batch(ctx);
  return !fifo_.empty();
}

}  // namespace mflow::stack
