// control::CapacityTarget — the ONE seam through which the control plane
// (Controller for split degrees, Autoscaler for worker capacity) drives a
// data-path engine.
//
// It subsumes the previously ad-hoc seams:
//   - the old `ScalingTarget` split-degree retarget (set_flow_degree /
//     max_degree / release_flow),
//   - `core::MflowEngine`'s direct degree/release methods,
//   - the rt engine's epoch rescale messages (EngineConfig::rescales was
//     the only way to change the active worker set; now a live request can
//     be posted mid-run).
// and adds the capacity dimension: how many workers exist (worker_limit),
// how many currently serve traffic (active_workers), and a request to
// change that number (set_active_workers).
//
// Each engine implements the interface in exactly ONE adapter
// (core::MflowCapacityAdapter for the DES engine,
// rt::EngineCapacityAdapter for the rt engine); nothing outside those
// adapters calls the engines' degree/rescale entry points directly. The
// adapters also own the coupling rule between the two dimensions: the
// degree budget visible to the Controller (max_degree) is the CURRENT
// active worker count, not the physical limit, so shrinking capacity
// automatically demotes flows whose degree no longer fits.
//
// Capacity changes follow the same veto-and-retry contract as flow
// release: set_active_workers() may return false when the change cannot
// commit yet (a rescale drain is still in flight on the lanes being
// retired). The caller keeps its desired value and retries next tick —
// all-or-nothing, never half-applied.
#pragma once

#include <cstdint>

#include "net/flow.hpp"

namespace mflow::control {

class CapacityTarget {
 public:
  virtual ~CapacityTarget() = default;

  // --- flow dimension (per-flow split degree) ------------------------------
  /// Retarget one flow's split degree. Degree 0 = unsplit (mouse path:
  /// deliver on the arrival core); degree k in [1, max_degree()] = split
  /// round-robin over the first k active lanes. Takes effect at the flow's
  /// next batch boundary; the reassembler runs the rescale-drain protocol
  /// for the transition.
  virtual void set_flow_degree(net::FlowId flow, std::uint32_t degree) = 0;

  /// Degree budget available to the flow dimension RIGHT NOW. For an
  /// elastic target this is the active worker count, so the Controller
  /// self-clamps to capacity; for a fixed target it equals worker_limit().
  virtual std::uint32_t max_degree() const = 0;

  /// Flow-state expiry handshake: forget everything held for an idle flow
  /// (split-point counters, degree overrides, reassembly bookkeeping,
  /// cached fast-path entries). Return false to veto — e.g. a rescale
  /// drain is still in flight — and the caller keeps the flow's control
  /// state and retries next tick, so reclamation is all-or-nothing: a
  /// reused FlowId can never meet a half-forgotten flow. Targets with no
  /// per-flow state accept by default.
  virtual bool release_flow(net::FlowId flow) {
    (void)flow;
    return true;
  }

  // --- capacity dimension (worker add/remove) ------------------------------
  /// Physical ceiling on workers (splitting cores in DES, spawned threads
  /// in rt). Fixed for the life of the engine. Defaults to max_degree()
  /// so degree-only targets (tests' fakes, the pre-elastic engines) need
  /// not override anything.
  virtual std::uint32_t worker_limit() const { return max_degree(); }

  /// Workers currently serving traffic, in [1, worker_limit()].
  virtual std::uint32_t active_workers() const { return worker_limit(); }

  /// Request `workers` active workers (clamped to [1, worker_limit()]).
  /// Growing commits immediately — the lanes already exist, the flow
  /// dimension starts using them on its next tick. Shrinking may return
  /// false (veto) while in-flight batches still occupy the retiring lanes;
  /// the caller retries. Fixed-capacity targets veto everything by
  /// default.
  virtual bool set_active_workers(std::uint32_t workers) {
    (void)workers;
    return false;
  }
};

/// Deprecated pre-PR-10 name for the seam; the capacity dimension did not
/// exist yet. New code should say CapacityTarget. Kept one PR for external
/// branches; remove next PR.
using ScalingTarget = CapacityTarget;

}  // namespace mflow::control
