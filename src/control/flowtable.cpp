#include "control/flowtable.hpp"

namespace mflow::control::detail {

namespace {

constexpr std::int32_t kNil = ShardIndex::kNil;

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void ShardIndex::init(std::size_t max_entries) {
  cap_ = std::max<std::size_t>(1, max_entries);
  // Bucket ceiling keeps the load factor <= 1/2 even at full capacity, so
  // probe runs stay short; the array starts tiny and grows geometrically.
  max_buckets_ = pow2_at_least(cap_ * 2);
  buckets_.assign(std::min<std::size_t>(max_buckets_, 16), kNil);
  mask_ = buckets_.size() - 1;
  keys_.clear();
  last_seen_.clear();
  prev_.clear();
  next_.clear();
  free_.clear();
  head_ = tail_ = kNil;
  size_ = 0;
}

std::int32_t ShardIndex::find(net::FlowId key) const {
  if (size_ == 0) return kNil;
  std::size_t i = mix64(key) & mask_;
  while (true) {
    const std::int32_t s = buckets_[i];
    if (s == kNil) return kNil;
    if (keys_[static_cast<std::size_t>(s)] == key) return s;
    i = (i + 1) & mask_;
  }
}

std::int32_t ShardIndex::acquire(net::FlowId key, std::int64_t now,
                                 bool& inserted) {
  inserted = false;
  maybe_grow();
  std::size_t i = mix64(key) & mask_;
  while (buckets_[i] != kNil) {
    if (keys_[static_cast<std::size_t>(buckets_[i])] == key)
      return buckets_[i];
    i = (i + 1) & mask_;
  }
  std::int32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else if (keys_.size() < cap_) {
    slot = static_cast<std::int32_t>(keys_.size());
    keys_.push_back(0);
    last_seen_.push_back(0);
    prev_.push_back(kNil);
    next_.push_back(kNil);
  } else {
    return kNil;  // full: the caller evicts oldest() and retries
  }
  buckets_[i] = slot;
  keys_[static_cast<std::size_t>(slot)] = key;
  last_seen_[static_cast<std::size_t>(slot)] = now;
  append(slot);
  ++size_;
  inserted = true;
  return slot;
}

bool ShardIndex::touch(std::int32_t slot, std::int64_t now) {
  auto& stamp = last_seen_[static_cast<std::size_t>(slot)];
  if (now < stamp) return false;  // stale touch: keep the chain sorted
  // Equal stamps are no-ops, not reorders: a concurrent reader replaying
  // the entry's current time (rt workers touching at the flow's latest
  // batch) must not shuffle the chain past entries with newer stamps, or
  // expiry would become schedule-dependent.
  if (now == stamp) return true;
  stamp = now;
  if (slot != tail_) {
    unlink(slot);
    append(slot);
  }
  return true;
}

std::int32_t ShardIndex::erase(net::FlowId key) {
  if (size_ == 0) return kNil;
  std::size_t i = mix64(key) & mask_;
  while (true) {
    const std::int32_t s = buckets_[i];
    if (s == kNil) return kNil;
    if (keys_[static_cast<std::size_t>(s)] == key) break;
    i = (i + 1) & mask_;
  }
  const std::int32_t slot = buckets_[i];
  unlink(slot);
  free_.push_back(slot);
  --size_;
  // Backward-shift deletion: walk the probe run after the hole and pull
  // back every entry whose ideal bucket lies cyclically at-or-before the
  // hole, so later lookups never hit a false empty.
  std::size_t hole = i;
  std::size_t j = i;
  while (true) {
    j = (j + 1) & mask_;
    const std::int32_t s = buckets_[j];
    if (s == kNil) break;
    const std::size_t ideal = mix64(keys_[static_cast<std::size_t>(s)]) & mask_;
    const bool movable = hole <= j ? (ideal <= hole || ideal > j)
                                   : (ideal <= hole && ideal > j);
    if (movable) {
      buckets_[hole] = s;
      hole = j;
    }
  }
  buckets_[hole] = kNil;
  return slot;
}

void ShardIndex::clear() {
  init(cap_);
}

void ShardIndex::unlink(std::int32_t slot) {
  const std::size_t s = static_cast<std::size_t>(slot);
  if (prev_[s] != kNil)
    next_[static_cast<std::size_t>(prev_[s])] = next_[s];
  else
    head_ = next_[s];
  if (next_[s] != kNil)
    prev_[static_cast<std::size_t>(next_[s])] = prev_[s];
  else
    tail_ = prev_[s];
  prev_[s] = next_[s] = kNil;
}

void ShardIndex::append(std::int32_t slot) {
  const std::size_t s = static_cast<std::size_t>(slot);
  prev_[s] = tail_;
  next_[s] = kNil;
  if (tail_ != kNil)
    next_[static_cast<std::size_t>(tail_)] = slot;
  else
    head_ = slot;
  tail_ = slot;
}

void ShardIndex::rehash(std::size_t new_buckets) {
  buckets_.assign(new_buckets, kNil);
  mask_ = new_buckets - 1;
  // Reinsert in chain order — deterministic, and every key gets a fresh
  // minimal probe run.
  for (std::int32_t s = head_; s != kNil;
       s = next_[static_cast<std::size_t>(s)]) {
    std::size_t i = mix64(keys_[static_cast<std::size_t>(s)]) & mask_;
    while (buckets_[i] != kNil) i = (i + 1) & mask_;
    buckets_[i] = s;
  }
}

void ShardIndex::maybe_grow() {
  if ((size_ + 1) * 2 > buckets_.size() && buckets_.size() < max_buckets_)
    rehash(buckets_.size() * 2);
}

}  // namespace mflow::control::detail
