// The engine-neutral reassembly surface (satellite of the dynamic-flow
// control plane).
//
// core::Reassembler (DES, per-flow merge state, sim-time eviction) and
// rt::RtReassembler (real threads, per-worker SPSC buffer rings) grew the
// same conceptual API in different vocabularies. The control plane's
// rescale-drain protocol and the cross-engine tests only need the common
// core — deposit a packet into its micro-flow, pop the next in-order
// packet, retract a known loss, and ask whether the merge layer has fully
// drained — so that surface is pinned down ONCE here as a C++20 concept.
//
// Each engine provides a lightweight adapter ("view") satisfying the
// concept (core::MergeStreamView over one flow of a Reassembler,
// rt::RtMergeStreamView over an RtReassembler); conformance is checked by
// static_assert next to each adapter. Templated test helpers (ordering /
// conservation across a live rescale) are then written once against
// MergeStream and instantiated for both engines — see
// tests/test_control.cpp.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <utility>

namespace mflow::control {

/// One merge stream: a single original-order packet sequence that was split
/// into micro-flow batches and is being merged back. `Item` is the engine's
/// packet handle; `descriptor(item)` recovers the (seq, batch) pair the
/// ordering invariants are expressed in.
template <typename V>
concept MergeStream = requires(V v, const V cv, typename V::Item item,
                               std::uint64_t batch, std::uint32_t segs) {
  typename V::Item;
  /// Deposit one packet of `batch`; false means the stream refused it
  /// (bounded backpressure) and the caller owns the loss.
  { v.deposit(std::move(item)) } -> std::same_as<bool>;
  /// Next packet in original-flow order, or nullopt while the merge head
  /// is dry.
  { v.pop() } -> std::same_as<std::optional<typename V::Item>>;
  /// A dispatched packet was lost before the merge point: retract it so
  /// the merge never stalls waiting for it.
  { v.note_drop(batch, segs) };
  /// (seq, batch) of an item — the vocabulary of the shared invariants.
  { v.descriptor(item) } ->
      std::same_as<std::pair<std::uint64_t, std::uint64_t>>;
  /// Micro-flows fully merged so far.
  { cv.batches_merged() } -> std::convertible_to<std::uint64_t>;
  /// True when nothing is buffered or outstanding — the rescale-drain
  /// protocol's "old split degree fully flushed" condition.
  { cv.drained() } -> std::same_as<bool>;
};

}  // namespace mflow::control
