#include "control/autoscaler.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace mflow::control {

Autoscaler::Autoscaler(AutoscalerParams params, LoadSource source,
                       CapacityTarget* target)
    : params_(params), source_(std::move(source)), target_(target) {}

std::uint32_t Autoscaler::desired_for(double load_pps) const {
  if (params_.per_worker_pps <= 0.0) return params_.min_workers;
  const double want =
      std::ceil(std::max(0.0, load_pps) * params_.headroom /
                params_.per_worker_pps);
  std::uint32_t limit = target_->worker_limit();
  if (params_.max_workers > 0) limit = std::min(limit, params_.max_workers);
  limit = std::max<std::uint32_t>(limit, 1);
  const std::uint32_t floor_w =
      std::min(std::max<std::uint32_t>(params_.min_workers, 1), limit);
  return std::clamp(static_cast<std::uint32_t>(
                        std::min(want, static_cast<double>(limit))),
                    floor_w, limit);
}

void Autoscaler::account(sim::Time now) {
  if (!accounting_started_) {
    accounted_to_ = now;
    accounting_started_ = true;
    return;
  }
  if (now <= accounted_to_) return;
  core_seconds_ += static_cast<double>(target_->active_workers()) *
                   sim::to_seconds(now - accounted_to_);
  accounted_to_ = now;
}

void Autoscaler::tick(sim::Time now) {
  account(now);
  const std::uint32_t current = target_->active_workers();
  const std::uint32_t want = desired_for(source_());

  bool commit = false;
  if (want > current) {
    // A growth request cancels any pending shrink: demand came back.
    down_since_ = -1;
    commit = true;
  } else if (want < current) {
    if (down_since_ < 0) down_since_ = now;
    commit = now - down_since_ >= params_.down_dwell;
  } else {
    down_since_ = -1;
  }
  if (commit && ever_committed_ && now - last_commit_ < params_.cooldown)
    commit = false;

  if (commit) {
    if (target_->set_active_workers(want)) {
      history_.push_back(ScaleEvent{now, current, want});
      if (want > current)
        ++scale_ups_;
      else
        ++scale_downs_;
      last_commit_ = now;
      ever_committed_ = true;
      down_since_ = -1;
    } else {
      // Drain in flight on the retiring lanes (or a fixed-capacity
      // target). Keep the candidate armed — dwell has been served, the
      // retry commits as soon as the target accepts.
      ++vetoes_;
    }
  }

  if (registry_ != nullptr) {
    registry_->set_gauge("elastic.active_workers",
                         static_cast<double>(target_->active_workers()));
    registry_->set_gauge("elastic.core_seconds", core_seconds_);
    registry_->set_counter("elastic.scale_ups", scale_ups_);
    registry_->set_counter("elastic.scale_downs", scale_downs_);
    registry_->set_counter("elastic.vetoes", vetoes_);
  }
}

void Autoscaler::finalize(sim::Time now) { account(now); }

void Autoscaler::reset_accounting(sim::Time now) {
  core_seconds_ = 0.0;
  accounted_to_ = now;
  accounting_started_ = true;
}

}  // namespace mflow::control
