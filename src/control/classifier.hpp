// Elephant/mouse classification with hysteresis (control plane stage 2).
//
// A flow crossing the rate threshold is not reclassified immediately:
// promotion and demotion use separate thresholds (a hysteresis band) AND
// the candidate state must persist for a dwell time before it commits.
// Both are needed — the band alone still flaps when a sender oscillates
// across the whole band, and dwell alone still flaps at exactly the
// threshold. Together a flow bouncing around the promote threshold stays
// put until it spends `dwell` continuously on the far side, which is what
// keeps the scaler from thrashing split degrees (every rescale costs a
// drain through the reassembler).
#pragma once

#include <cstdint>

#include "control/flowtable.hpp"
#include "net/flow.hpp"
#include "sim/time.hpp"

namespace mflow::control {

enum class FlowClass : std::uint8_t { kMouse, kElephant };

inline const char* flow_class_name(FlowClass c) {
  return c == FlowClass::kElephant ? "elephant" : "mouse";
}

struct ClassifierParams {
  /// Rate at or above which a mouse becomes an elephant candidate.
  double promote_pps = 100'000.0;
  /// Rate at or below which an elephant becomes a mouse candidate. Must be
  /// < promote_pps for the band to exist.
  double demote_pps = 50'000.0;
  /// Continuous time a candidate state must hold before it commits.
  sim::Time dwell = sim::us(200);
  /// Backing flow table (bounds hysteresis state under churn; ttl unused —
  /// the Controller erases classifier state when the monitor expires a
  /// flow, so both reclaim atomically).
  FlowTableParams table{};
};

class Classifier {
 public:
  explicit Classifier(ClassifierParams params = {})
      : params_(params), states_(params.table) {}

  /// Observe `flow` at `rate_pps` at time `now`; returns the committed
  /// class after applying hysteresis. New flows start as mice.
  FlowClass update(net::FlowId flow, double rate_pps, sim::Time now);

  /// Committed class (kMouse for never-seen flows).
  FlowClass classify(net::FlowId flow) const;

  /// Committed transitions so far (promotions + demotions) — flap meter.
  std::uint64_t transitions() const { return transitions_; }

  /// Forget one flow's hysteresis state (flow-state expiry): if its id is
  /// later reused, classification starts fresh as a mouse.
  bool erase(net::FlowId flow) { return states_.erase(flow); }

  std::size_t tracked_flows() const { return states_.size(); }

  void clear();

 private:
  struct State {
    FlowClass committed = FlowClass::kMouse;
    FlowClass candidate = FlowClass::kMouse;
    sim::Time candidate_since = 0;
  };

  ClassifierParams params_;
  FlowTable<State> states_;
  std::uint64_t transitions_ = 0;
};

}  // namespace mflow::control
