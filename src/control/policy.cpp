#include "control/policy.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace mflow::control {

std::uint32_t ScalingPolicy::degree_for(FlowClass cls, double rate_pps,
                                        std::uint32_t max_degree,
                                        std::uint32_t current_degree) const {
  if (cls == FlowClass::kMouse) return 0;
  double lanes = 1.0;
  if (params_.per_core_pps > 0.0) {
    lanes = std::ceil(rate_pps / params_.per_core_pps);
  }
  std::uint32_t want = static_cast<std::uint32_t>(
      std::clamp(lanes, 1.0, static_cast<double>(max_degree)));
  want = std::max(want, std::min(params_.min_elephant_degree, max_degree));
  // Shrink deadband: stay at the current degree unless the rate fits the
  // smaller lane count with shrink_margin headroom.
  if (want < current_degree && params_.per_core_pps > 0.0 &&
      rate_pps > static_cast<double>(want) * params_.per_core_pps *
                     params_.shrink_margin)
    return current_degree;
  return want;
}

Controller::Controller(ControllerParams params, Source source,
                       CapacityTarget* target)
    : params_(params),
      source_(std::move(source)),
      target_(target),
      monitor_(params.monitor),
      classifier_(params.classifier),
      policy_(params.scaling),
      degrees_(params.monitor.table) {}

void Controller::tick(sim::Time now) {
  const std::uint32_t max_degree = target_->max_degree();
  for (const FlowTotals& t : source_()) {
    monitor_.record(t.flow, t.segs, t.bytes, now);
    const double pps = monitor_.rate_pps(t.flow);
    const FlowClass cls = classifier_.update(t.flow, pps, now);
    const std::uint32_t* cur = degrees_.find(t.flow);
    const std::uint32_t current = cur != nullptr ? *cur : 0;
    const std::uint32_t want =
        policy_.degree_for(cls, pps, max_degree, current);
    if (current == want) continue;  // mice staying unsplit land here too
    history_.push_back(RescaleEvent{now, t.flow, current, want});
    // Degrees are stored sparsely (split flows only): under churn the
    // overwhelming mouse majority must not leave a zero entry each.
    if (want == 0)
      degrees_.erase(t.flow);
    else
      degrees_.upsert(t.flow, now) = want;
    target_->set_flow_degree(t.flow, want);
  }
  if (params_.monitor.table.ttl > 0) expire_flows(now);
  if (registry_ != nullptr) {
    std::uint64_t lanes = 0;
    degrees_.for_each(
        [&lanes](net::FlowId, const std::uint32_t& deg) { lanes += deg; });
    registry_->set_gauge("control.elephants",
                         static_cast<double>(elephants()));
    registry_->set_gauge("control.active_lanes", static_cast<double>(lanes));
    registry_->set_counter("control.rescales", history_.size());
    registry_->set_gauge("control.tracked_flows",
                         static_cast<double>(monitor_.tracked_flows()));
    registry_->set_counter("control.flows_expired", expired_);
  }
}

void Controller::expire_flows(sim::Time now) {
  idle_scratch_.clear();
  monitor_.collect_idle(now, idle_scratch_);
  for (net::FlowId flow : idle_scratch_) {
    // A still-split idle flow (an elephant that went silent) is demoted
    // first so the data path runs the normal rescale-drain protocol; its
    // state is reclaimed once the drain completes.
    const std::uint32_t* deg = degrees_.find(flow);
    if (deg != nullptr && *deg > 0) {
      history_.push_back(RescaleEvent{now, flow, *deg, 0});
      degrees_.erase(flow);
      target_->set_flow_degree(flow, 0);
    }
    if (!target_->release_flow(flow)) {
      // In-flight work (e.g. unsplit hold not yet drained): keep ALL
      // control state and retry next tick — reclamation is atomic.
      ++release_retries_;
      continue;
    }
    monitor_.erase(flow);  // also retracts the flow's registry gauges
    classifier_.erase(flow);
    degrees_.erase(flow);
    ++expired_;
  }
}

std::uint32_t Controller::degree_of(net::FlowId flow) const {
  const std::uint32_t* deg = degrees_.find(flow);
  return deg == nullptr ? 0 : *deg;
}

std::uint64_t Controller::elephants() const {
  std::uint64_t n = 0;
  degrees_.for_each([this, &n](net::FlowId flow, const std::uint32_t&) {
    if (classifier_.classify(flow) == FlowClass::kElephant) ++n;
  });
  return n;
}

void Controller::export_to(trace::Registry* reg) {
  registry_ = reg;
  monitor_.export_to(reg);
}

}  // namespace mflow::control
