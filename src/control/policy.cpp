#include "control/policy.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace mflow::control {

std::uint32_t ScalingPolicy::degree_for(FlowClass cls, double rate_pps,
                                        std::uint32_t max_degree,
                                        std::uint32_t current_degree) const {
  if (cls == FlowClass::kMouse) return 0;
  double lanes = 1.0;
  if (params_.per_core_pps > 0.0) {
    lanes = std::ceil(rate_pps / params_.per_core_pps);
  }
  std::uint32_t want = static_cast<std::uint32_t>(
      std::clamp(lanes, 1.0, static_cast<double>(max_degree)));
  want = std::max(want, std::min(params_.min_elephant_degree, max_degree));
  // Shrink deadband: stay at the current degree unless the rate fits the
  // smaller lane count with shrink_margin headroom.
  if (want < current_degree && params_.per_core_pps > 0.0 &&
      rate_pps > static_cast<double>(want) * params_.per_core_pps *
                     params_.shrink_margin)
    return current_degree;
  return want;
}

Controller::Controller(ControllerParams params, Source source,
                       ScalingTarget* target)
    : params_(params),
      source_(std::move(source)),
      target_(target),
      monitor_(params.monitor),
      classifier_(params.classifier),
      policy_(params.scaling) {}

void Controller::tick(sim::Time now) {
  const std::uint32_t max_degree = target_->max_degree();
  for (const FlowTotals& t : source_()) {
    monitor_.record(t.flow, t.segs, t.bytes, now);
    const double pps = monitor_.rate_pps(t.flow);
    const FlowClass cls = classifier_.update(t.flow, pps, now);
    auto [it, fresh] = degrees_.try_emplace(t.flow, 0u);
    const std::uint32_t want =
        policy_.degree_for(cls, pps, max_degree, it->second);
    if (!fresh && it->second == want) continue;
    if (fresh && want == 0) continue;  // mice start unsplit: nothing to do
    history_.push_back(RescaleEvent{now, t.flow, it->second, want});
    it->second = want;
    target_->set_flow_degree(t.flow, want);
  }
  if (registry_ != nullptr) {
    std::uint64_t lanes = 0;
    for (const auto& [flow, deg] : degrees_) lanes += deg;
    registry_->set_gauge("control.elephants",
                         static_cast<double>(elephants()));
    registry_->set_gauge("control.active_lanes", static_cast<double>(lanes));
    registry_->set_counter("control.rescales", history_.size());
  }
}

std::uint32_t Controller::degree_of(net::FlowId flow) const {
  auto it = degrees_.find(flow);
  return it == degrees_.end() ? 0 : it->second;
}

std::uint64_t Controller::elephants() const {
  std::uint64_t n = 0;
  for (const auto& [flow, deg] : degrees_) {
    if (classifier_.classify(flow) == FlowClass::kElephant) ++n;
  }
  return n;
}

void Controller::export_to(trace::Registry* reg) {
  registry_ = reg;
  monitor_.export_to(reg);
}

}  // namespace mflow::control
