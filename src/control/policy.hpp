// ScalingPolicy + Controller: the decision stage of the control plane
// (monitor -> classifier -> scaler) and the loop that drives all three.
//
// The policy maps (class, rate) to a split degree: mice get degree 0
// (stay on the arrival core — no split, no reassembly latency), elephants
// get enough micro-flow lanes to absorb their measured rate given a
// per-core service capacity, clamped to the target's core budget. The
// Controller owns one monitor/classifier/policy triple, pulls per-flow
// totals from a source callback on each tick, and pushes degree changes
// into a control::CapacityTarget (capacity.hpp) — the one seam both
// engines implement, each via a single adapter
// (core::MflowCapacityAdapter; rt::EngineCapacityAdapter). max_degree()
// is the target's CURRENT active-worker budget, so when the Autoscaler
// shrinks capacity the Controller auto-clamps degrees on its next tick.
//
// Degree changes are NOT applied instantaneously by the data path: the
// splitter retargets only at batch boundaries and the reassembler holds
// post-unsplit packets until the old degree's in-flight batches drain
// (reusing the pre-split gate grace machinery) — the rescale-drain
// protocol documented in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "control/capacity.hpp"
#include "control/classifier.hpp"
#include "control/flowtable.hpp"
#include "control/monitor.hpp"
#include "net/flow.hpp"
#include "sim/time.hpp"
#include "trace/registry.hpp"

namespace mflow::control {

struct ScalingParams {
  /// Packets/s one kernel lane is assumed to absorb; an elephant at rate R
  /// gets ceil(R / per_core_pps) lanes. Derive from 1/kernel-path-cost.
  double per_core_pps = 150'000.0;
  /// Floor for elephants (even a freshly promoted one gets this many).
  std::uint32_t min_elephant_degree = 1;
  /// Shrink deadband: an elephant's degree only drops to k when its rate
  /// fits k lanes with this much headroom (rate <= k * per_core_pps *
  /// shrink_margin). Without it a rate hovering at a ceil() boundary
  /// flaps the degree every tick — each flap pays the rescale-drain
  /// protocol for nothing. Growing is immediate (underprovisioning costs
  /// throughput now; shrinking can wait for certainty).
  double shrink_margin = 0.8;
};

class ScalingPolicy {
 public:
  explicit ScalingPolicy(ScalingParams params = {}) : params_(params) {}

  /// Desired split degree for one flow given its current degree, clamped
  /// to [0, max_degree]. `current_degree` anchors the shrink deadband (use
  /// 0 for a flow with no split history).
  std::uint32_t degree_for(FlowClass cls, double rate_pps,
                           std::uint32_t max_degree,
                           std::uint32_t current_degree = 0) const;

 private:
  ScalingParams params_;
};

struct ControllerParams {
  MonitorParams monitor;
  ClassifierParams classifier;
  ScalingParams scaling;
};

/// One committed degree change, for tests and the bench's transition plot.
struct RescaleEvent {
  sim::Time at = 0;
  net::FlowId flow = 0;
  std::uint32_t old_degree = 0;
  std::uint32_t new_degree = 0;
};

class Controller {
 public:
  /// Per-flow cumulative totals as counted at the split point. Pull-based:
  /// the controller invokes this each tick so the data path never blocks
  /// on the control plane.
  struct FlowTotals {
    net::FlowId flow = 0;
    std::uint64_t segs = 0;
    std::uint64_t bytes = 0;
  };
  using Source = std::function<std::vector<FlowTotals>()>;

  Controller(ControllerParams params, Source source, CapacityTarget* target);

  /// One control iteration: sample -> classify -> retarget. Only committed
  /// degree changes reach the target (no-op ticks are free).
  void tick(sim::Time now);

  const std::vector<RescaleEvent>& history() const { return history_; }
  std::uint64_t rescales() const { return history_.size(); }
  std::uint32_t degree_of(net::FlowId flow) const;
  std::uint64_t elephants() const;

  /// Flows with live control state (monitor samples). Bounded by the flow
  /// table, not by cumulative arrivals.
  std::size_t tracked_flows() const { return monitor_.tracked_flows(); }
  std::size_t peak_tracked() const { return monitor_.peak_tracked(); }
  /// Flows fully reclaimed by TTL expiry (monitor + classifier + degree +
  /// data-path state).
  std::uint64_t expired_flows() const { return expired_; }
  /// Expiry candidates whose release the target vetoed this tick (drain
  /// in flight); they stay tracked and retry.
  std::uint64_t release_retries() const { return release_retries_; }

  FlowMonitor& monitor() { return monitor_; }
  Classifier& classifier() { return classifier_; }

  /// Publish control.elephants / control.active_lanes / control.rescales
  /// gauges+counters each tick (and per-flow rates via the monitor).
  void export_to(trace::Registry* reg);

 private:
  void expire_flows(sim::Time now);

  ControllerParams params_;
  Source source_;
  CapacityTarget* target_;
  FlowMonitor monitor_;
  Classifier classifier_;
  ScalingPolicy policy_;
  FlowTable<std::uint32_t> degrees_;
  std::vector<RescaleEvent> history_;
  std::vector<net::FlowId> idle_scratch_;
  std::uint64_t expired_ = 0;
  std::uint64_t release_retries_ = 0;
  trace::Registry* registry_ = nullptr;
};

}  // namespace mflow::control
