// control::Autoscaler — the elastic tier ABOVE the Controller.
//
// The Controller decides how traffic spreads over the workers it is given
// (per-flow split degrees); the Autoscaler decides how many workers exist
// at all. It reads one scalar — aggregate offered load in packets/s,
// normally FlowMonitor::aggregate_rate_pps() — sizes a worker count for it
// with provisioning headroom, and drives the engine's
// control::CapacityTarget::set_active_workers(). Capacity changes ride the
// same rescale-drain protocol as degree changes: a shrink that would
// retire lanes with in-flight batches is vetoed by the adapter and
// retried on a later tick.
//
// Policy is deliberately asymmetric (the openNetVM api_gateway scaler
// shape): scale-UP commits on the first tick that wants it (after the
// cooldown) because underprovisioning costs SLO now; scale-DOWN must see
// the lower demand persist for `down_dwell` before committing, because a
// transient dip that flaps capacity pays two drain protocols for nothing.
// A square-wave load whose half-period is shorter than down_dwell
// therefore holds capacity at the peak — the flap guard the tests pin.
//
// The scaler also meters what elasticity costs: core_seconds() integrates
// active_workers over time, so a scenario can report SLO attainment
// against core-seconds consumed and compare with a static full-capacity
// run (bench/ablate_elastic).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "control/capacity.hpp"
#include "sim/time.hpp"
#include "trace/registry.hpp"

namespace mflow::control {

struct AutoscalerParams {
  /// Packets/s one worker is assumed to absorb; demand D asks for
  /// ceil(D * headroom / per_worker_pps) workers. Keep consistent with
  /// ScalingParams::per_core_pps so the two tiers agree on lane capacity.
  double per_worker_pps = 150'000.0;
  /// Provisioning headroom multiplier (>= 1). 1.25 = size for 125% of the
  /// measured load, absorbing monitor lag on a rising edge.
  double headroom = 1.25;
  /// Minimum virtual time between two committed capacity changes, in
  /// either direction. A veto does not restart the cooldown — the change
  /// was already due.
  sim::Time cooldown = sim::ms(1);
  /// A scale-DOWN candidate must persist this long before committing
  /// (scale-up is immediate, modulo cooldown). The flap guard.
  sim::Time down_dwell = sim::ms(2);
  /// Never scale below this many workers.
  std::uint32_t min_workers = 1;
  /// Cap on workers; 0 = the target's worker_limit().
  std::uint32_t max_workers = 0;
};

/// One committed capacity change, for tests and the bench's timeline.
struct ScaleEvent {
  sim::Time at = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

class Autoscaler {
 public:
  /// Aggregate offered load in packets/s, sampled each tick. DES wires
  /// FlowMonitor::aggregate_rate_pps; rt benches feed the known offered
  /// rate or a synthetic curve.
  using LoadSource = std::function<double()>;

  Autoscaler(AutoscalerParams params, LoadSource source,
             CapacityTarget* target);

  /// One control iteration: integrate core-seconds, sample load, decide,
  /// maybe commit through the target. Safe to call at any cadence.
  void tick(sim::Time now);

  /// Close the core-seconds integral at `now` (end of run). Idempotent.
  void finalize(sim::Time now);

  /// Restart the core-seconds integral at `now` (measurement-window
  /// boundary); committed-event history and counters are NOT reset.
  void reset_accounting(sim::Time now);

  const std::vector<ScaleEvent>& history() const { return history_; }
  std::uint64_t scale_ups() const { return scale_ups_; }
  std::uint64_t scale_downs() const { return scale_downs_; }
  /// Shrinks the target refused (drain in flight); each is retried.
  std::uint64_t vetoes() const { return vetoes_; }
  /// The target's current view of active capacity.
  std::uint32_t active() const { return target_->active_workers(); }
  /// Integral of active workers over time since construction (or the last
  /// reset_accounting), in core-seconds.
  double core_seconds() const { return core_seconds_; }

  /// Publish elastic.active_workers / elastic.scale_ups / ... each tick.
  void export_to(trace::Registry* reg) { registry_ = reg; }

 private:
  std::uint32_t desired_for(double load_pps) const;
  void account(sim::Time now);

  AutoscalerParams params_;
  LoadSource source_;
  CapacityTarget* target_;
  std::vector<ScaleEvent> history_;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  std::uint64_t vetoes_ = 0;
  double core_seconds_ = 0.0;
  sim::Time accounted_to_ = 0;
  bool accounting_started_ = false;
  sim::Time last_commit_ = 0;
  bool ever_committed_ = false;
  /// When the current scale-down candidate was first seen; <0 = none.
  sim::Time down_since_ = -1;
  trace::Registry* registry_ = nullptr;
};

}  // namespace mflow::control
