#include "control/monitor.hpp"

#include <algorithm>

namespace mflow::control {

void FlowMonitor::record(net::FlowId flow, std::uint64_t total_segs,
                         std::uint64_t total_bytes, sim::Time now) {
  bool inserted = false;
  PerFlow& pf = flows_.upsert(flow, now, &inserted);
  if (inserted) {
    pf.pps_name = "flow." + std::to_string(flow) + ".rate_pps";
    pf.bps_name = "flow." + std::to_string(flow) + ".rate_bps";
    pf.seq = next_seq_++;
  }
  // Recency in the flow table tracks ACTIVITY, not observation: a source
  // that keeps reporting a finished flow at frozen totals must not keep it
  // alive, or nothing would ever expire.
  const bool active = inserted || pf.samples.empty() ||
                      total_segs > pf.samples.back().segs ||
                      total_bytes > pf.samples.back().bytes;
  pf.samples.push_back(Sample{now, total_segs, total_bytes});
  // Trim so the RETAINED span (front..back) never exceeds the window —
  // comparing against samples[1] here used to let rate() average over up
  // to window + one sampling interval, which kept a stale pre-drop rate
  // alive and delayed demotion dwell. Always keep at least two samples so
  // a sparse sampler (interval > window) still yields a rate.
  while (pf.samples.size() > 2 &&
         (pf.samples.size() > params_.max_samples ||
          pf.samples.back().at - pf.samples.front().at > params_.window)) {
    pf.samples.pop_front();
  }
  if (active) flows_.touch(flow, now);
  if (registry_ != nullptr) {
    registry_->set_gauge(pf.pps_name, rate(flow, /*bytes=*/false));
    registry_->set_gauge(pf.bps_name, rate(flow, /*bytes=*/true));
  }
}

double FlowMonitor::rate(net::FlowId flow, bool bytes) const {
  const PerFlow* pf = flows_.find(flow);
  return pf != nullptr ? window_rate(*pf, bytes) : 0.0;
}

double FlowMonitor::window_rate(const PerFlow& pf, bool bytes) {
  if (pf.samples.size() < 2) return 0.0;
  const Sample& first = pf.samples.front();
  const Sample& last = pf.samples.back();
  const sim::Time span = last.at - first.at;
  if (span <= 0) return 0.0;
  const std::uint64_t delta =
      bytes ? last.bytes - first.bytes : last.segs - first.segs;
  return static_cast<double>(delta) / sim::to_seconds(span);
}

double FlowMonitor::rate_pps(net::FlowId flow) const {
  return rate(flow, /*bytes=*/false);
}

double FlowMonitor::rate_bps(net::FlowId flow) const {
  return rate(flow, /*bytes=*/true) * 8.0;
}

double FlowMonitor::aggregate_rate_pps() const {
  double total = 0.0;
  // Rate straight from the visited entry — for_each holds the shard lock,
  // so re-entering the table via rate()/find() would self-deadlock.
  flows_.for_each([&total](net::FlowId, const PerFlow& pf) {
    total += window_rate(pf, /*bytes=*/false);
  });
  return total;
}

std::uint64_t FlowMonitor::total_segs(net::FlowId flow) const {
  const PerFlow* pf = flows_.find(flow);
  if (pf == nullptr || pf->samples.empty()) return 0;
  return pf->samples.back().segs;
}

std::vector<net::FlowId> FlowMonitor::flows() const {
  std::vector<std::pair<std::uint64_t, net::FlowId>> seq;
  seq.reserve(flows_.size());
  flows_.for_each([&seq](net::FlowId flow, const PerFlow& pf) {
    seq.emplace_back(pf.seq, flow);
  });
  std::sort(seq.begin(), seq.end());
  std::vector<net::FlowId> out;
  out.reserve(seq.size());
  for (const auto& [_, flow] : seq) out.push_back(flow);
  return out;
}

void FlowMonitor::remove_gauges(const PerFlow& pf) {
  if (registry_ == nullptr) return;
  registry_->remove_gauge(pf.pps_name);
  registry_->remove_gauge(pf.bps_name);
}

bool FlowMonitor::erase(net::FlowId flow) {
  if (const PerFlow* pf = flows_.find(flow)) remove_gauges(*pf);
  return flows_.erase(flow);
}

void FlowMonitor::clear() {
  flows_.for_each(
      [this](net::FlowId, const PerFlow& pf) { remove_gauges(pf); });
  flows_.clear();
  next_seq_ = 0;
}

}  // namespace mflow::control
