#include "control/monitor.hpp"

namespace mflow::control {

void FlowMonitor::record(net::FlowId flow, std::uint64_t total_segs,
                         std::uint64_t total_bytes, sim::Time now) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) {
    it = flows_.emplace(flow, PerFlow{}).first;
    it->second.pps_name =
        "flow." + std::to_string(flow) + ".rate_pps";
    it->second.bps_name =
        "flow." + std::to_string(flow) + ".rate_bps";
    order_.push_back(flow);
  }
  PerFlow& pf = it->second;
  pf.samples.push_back(Sample{now, total_segs, total_bytes});
  // Trim to the window, but always keep at least two samples so a sparse
  // sampler (interval > window) still yields a rate.
  while (pf.samples.size() > 2 &&
         (pf.samples.size() > params_.max_samples ||
          pf.samples.back().at - pf.samples[1].at >= params_.window)) {
    pf.samples.pop_front();
  }
  if (registry_ != nullptr) {
    registry_->set_gauge(pf.pps_name, rate(flow, /*bytes=*/false));
    registry_->set_gauge(pf.bps_name, rate(flow, /*bytes=*/true));
  }
}

double FlowMonitor::rate(net::FlowId flow, bool bytes) const {
  auto it = flows_.find(flow);
  if (it == flows_.end() || it->second.samples.size() < 2) return 0.0;
  const Sample& first = it->second.samples.front();
  const Sample& last = it->second.samples.back();
  const sim::Time span = last.at - first.at;
  if (span <= 0) return 0.0;
  const std::uint64_t delta =
      bytes ? last.bytes - first.bytes : last.segs - first.segs;
  return static_cast<double>(delta) / sim::to_seconds(span);
}

double FlowMonitor::rate_pps(net::FlowId flow) const {
  return rate(flow, /*bytes=*/false);
}

double FlowMonitor::rate_bps(net::FlowId flow) const {
  return rate(flow, /*bytes=*/true) * 8.0;
}

std::uint64_t FlowMonitor::total_segs(net::FlowId flow) const {
  auto it = flows_.find(flow);
  if (it == flows_.end() || it->second.samples.empty()) return 0;
  return it->second.samples.back().segs;
}

void FlowMonitor::clear() {
  flows_.clear();
  order_.clear();
}

}  // namespace mflow::control
