// Sharded, expiration-aware flow table: the bounded per-flow state plane
// shared by the control plane (FlowMonitor / Classifier / Controller), the
// DES split point (BatchAssigner) and the rt engine's flow tracking.
//
// Design (after nfos's concurrent-map + concurrent-double-chain pair): the
// key space is partitioned into power-of-two shards by hash; each shard
// owns, under one mutex,
//   - an open-addressing bucket array of slot indices (linear probing,
//     backward-shift deletion — churn is delete-heavy, so tombstones would
//     rot the probe distance),
//   - a slot allocator (parallel key/recency arrays + a free-index stack),
//   - a recency chain (intrusive doubly-linked list over slot indices,
//     oldest at the head) that doubles as the expiration chain.
// Buckets grow geometrically up to the configured capacity so an idle
// table costs little; at capacity the shard evicts its oldest entry, so
// occupancy is bounded by construction, never by caller discipline.
//
// Recency is explicit and *monotone*: upsert() stamps new entries and
// touch() refreshes existing ones, but a touch with a timestamp older than
// the entry's is a no-op. That keeps the chain sorted by last-seen even
// when touches arrive out of order (rt workers processing old batches
// behind the generator), which is what makes expire_idle() deterministic:
// it pops from the head while `last_seen <= now - ttl` and stops at the
// first survivor.
//
// Values live in a per-shard vector parallel to the slot arrays. find() /
// upsert() return pointers/references into it: they remain valid until the
// next mutating call on the same shard — which makes writing through them
// safe ONLY for single-threaded users (the DES control plane). Concurrent
// writers must use upsert_apply(), which runs the value mutation inside
// the shard's critical section; the rt engine's workers only touch().
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "net/flow.hpp"
#include "sim/time.hpp"

namespace mflow::control {

struct FlowTableParams {
  /// Shard count (rounded up to a power of two). More shards cut lock
  /// contention for concurrent users; single-threaded users can use 1.
  std::size_t shards = 8;
  /// Hard bound on resident entries (split evenly across shards). Inserts
  /// past it evict the least-recently-touched entry of the full shard.
  std::size_t capacity = 1 << 20;
  /// Idle horizon for expire_idle()/collect_idle(): an entry whose
  /// last-touch is `ttl` or more behind `now` is expirable. 0 disables
  /// time-based expiry (the table still enforces `capacity`).
  sim::Time ttl = 0;
};

namespace detail {

/// splitmix64 finalizer — cheap, and FlowIds are often small consecutive
/// integers, so the raw key would pile every flow into one shard.
std::uint64_t mix64(std::uint64_t x);

/// One shard's index machinery: key -> slot mapping, slot allocation and
/// the recency chain. Knows nothing about values; the FlowTable template
/// keeps a parallel value vector aligned with the slots handed out here.
class ShardIndex {
 public:
  static constexpr std::int32_t kNil = -1;

  void init(std::size_t max_entries);

  /// Slot holding `key`, or kNil.
  std::int32_t find(net::FlowId key) const;

  /// Find-or-allocate. New entries are stamped `last_seen = now` and
  /// appended to the chain tail; existing entries are returned untouched
  /// (recency refresh is touch()'s job). Returns kNil when the shard is at
  /// capacity — the caller evicts oldest() and retries.
  std::int32_t acquire(net::FlowId key, std::int64_t now, bool& inserted);

  /// Monotone recency refresh: no-op (returns false) when `now` is older
  /// than the slot's stamp, else restamps and moves the slot to the chain
  /// tail. Monotonicity keeps the chain sorted by last_seen.
  bool touch(std::int32_t slot, std::int64_t now);

  /// Unmap `key`, unlink it from the chain and free its slot (backward-
  /// shift deletion closes the probe hole). Returns the freed slot so the
  /// caller can reclaim the parallel value, or kNil if absent.
  std::int32_t erase(net::FlowId key);

  std::int32_t oldest() const { return head_; }
  std::int32_t chain_next(std::int32_t slot) const { return next_[slot]; }
  net::FlowId key_at(std::int32_t slot) const { return keys_[slot]; }
  std::int64_t last_seen(std::int32_t slot) const { return last_seen_[slot]; }
  std::size_t size() const { return size_; }
  void clear();

 private:
  void unlink(std::int32_t slot);
  void append(std::int32_t slot);
  void rehash(std::size_t new_buckets);
  void maybe_grow();

  std::vector<std::int32_t> buckets_;  // bucket -> slot, kNil = empty
  std::vector<net::FlowId> keys_;      // slot -> key
  std::vector<std::int64_t> last_seen_;
  std::vector<std::int32_t> prev_, next_;  // recency chain links
  std::vector<std::int32_t> free_;         // recycled slot indices
  std::int32_t head_ = kNil, tail_ = kNil;
  std::size_t mask_ = 0;         // buckets_.size() - 1
  std::size_t size_ = 0;
  std::size_t cap_ = 0;          // max slots
  std::size_t max_buckets_ = 0;  // bucket array ceiling (load <= 1/2 at cap)
};

}  // namespace detail

template <typename V>
class FlowTable {
 public:
  explicit FlowTable(FlowTableParams params = {}) : params_(params) {
    std::size_t n = 1;
    while (n < std::max<std::size_t>(1, params_.shards)) n <<= 1;
    const std::size_t per_shard =
        std::max<std::size_t>(1, (params_.capacity + n - 1) / n);
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->idx.init(per_shard);
    }
    shard_mask_ = n - 1;
    capacity_ = per_shard * n;
  }
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// Lookup without refreshing recency. The pointer stays valid until the
  /// next mutating call on this key's shard.
  V* find(net::FlowId key) {
    Shard& sh = shard_for(key);
    std::lock_guard lock(sh.mu);
    const std::int32_t slot = sh.idx.find(key);
    return slot == detail::ShardIndex::kNil ? nullptr : &sh.values[slot];
  }
  const V* find(net::FlowId key) const {
    return const_cast<FlowTable*>(this)->find(key);
  }
  bool contains(net::FlowId key) const { return find(key) != nullptr; }

  /// Find-or-insert. New entries are value-initialized and stamped at
  /// `now`; existing entries keep their recency (touch() refreshes it).
  /// When the key's shard is full its least-recently-touched entry is
  /// evicted through the reclaim callback to make room — occupancy is
  /// bounded no matter what the caller does. The returned reference is
  /// invalidated by the next mutating call on this key's shard, so only
  /// single-threaded users may write through it; concurrent writers use
  /// upsert_apply().
  V& upsert(net::FlowId key, sim::Time now, bool* inserted_out = nullptr) {
    V* vp = nullptr;
    const bool evicted = upsert_apply(
        key, now, [&vp](V& v) { vp = &v; }, inserted_out);
    if (evicted && reclaim_) {
      // The reclaim callback ran after fn and may have re-entered the
      // table, relocating this shard's values — re-resolve.
      if (V* re = find(key); re != nullptr) vp = re;
    }
    return *vp;
  }

  /// Find-or-insert and mutate in one critical section: `fn(V&)` runs
  /// under the shard lock, so it cannot race with another thread growing
  /// or reclaiming the shard (vector growth relocates values, which makes
  /// writing through upsert()'s reference unsafe across threads). Capacity
  /// eviction still routes through the reclaim callback after unlock;
  /// returns true when the insert evicted the shard's LRU entry.
  template <typename Fn>
  bool upsert_apply(net::FlowId key, sim::Time now, Fn&& fn,
                    bool* inserted_out = nullptr) {
    Shard& sh = shard_for(key);
    net::FlowId evicted_key{};
    V evicted{};
    bool evicted_any = false;
    bool inserted = false;
    {
      std::lock_guard lock(sh.mu);
      std::int32_t slot = sh.idx.acquire(key, now, inserted);
      if (slot == detail::ShardIndex::kNil) {
        const std::int32_t victim = sh.idx.oldest();
        evicted_key = sh.idx.key_at(victim);
        evicted = std::move(sh.values[victim]);
        sh.values[victim] = V();
        sh.idx.erase(evicted_key);
        size_.fetch_sub(1, std::memory_order_relaxed);
        evicted_any = true;
        slot = sh.idx.acquire(key, now, inserted);
      }
      if (static_cast<std::size_t>(slot) >= sh.values.size())
        sh.values.resize(static_cast<std::size_t>(slot) + 1);
      if (inserted) note_insert();
      fn(sh.values[static_cast<std::size_t>(slot)]);
    }
    if (evicted_any) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (reclaim_) reclaim_(evicted_key, std::move(evicted));
    }
    if (inserted_out != nullptr) *inserted_out = inserted;
    return evicted_any;
  }

  /// Monotone recency refresh; false if the key is absent (a touch never
  /// resurrects an expired entry) or `now` is older than its stamp.
  bool touch(net::FlowId key, sim::Time now) {
    Shard& sh = shard_for(key);
    std::lock_guard lock(sh.mu);
    const std::int32_t slot = sh.idx.find(key);
    if (slot == detail::ShardIndex::kNil) return false;
    return sh.idx.touch(slot, now);
  }

  bool erase(net::FlowId key) {
    Shard& sh = shard_for(key);
    std::lock_guard lock(sh.mu);
    const std::int32_t slot = sh.idx.erase(key);
    if (slot == detail::ShardIndex::kNil) return false;
    sh.values[static_cast<std::size_t>(slot)] = V();
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Keys idle for >= ttl at `now`, in deterministic (shard, oldest-first)
  /// order. Non-destructive: callers that must veto reclamation (e.g. the
  /// Controller waiting on a drain) peek with this and erase() selectively.
  void collect_idle(sim::Time now, std::vector<net::FlowId>& out) const {
    if (params_.ttl <= 0) return;
    const sim::Time deadline = now - params_.ttl;
    for (const auto& shp : shards_) {
      const Shard& sh = *shp;
      std::lock_guard lock(sh.mu);
      for (std::int32_t s = sh.idx.oldest(); s != detail::ShardIndex::kNil;
           s = sh.idx.chain_next(s)) {
        if (sh.idx.last_seen(s) > deadline) break;  // chain is sorted
        out.push_back(sh.idx.key_at(s));
      }
    }
  }

  /// Remove every entry idle for >= ttl at `now`; `fn(key, V&&)` runs for
  /// each AFTER the shard lock is released (safe to re-enter the table).
  /// Returns the number expired.
  template <typename Fn>
  std::size_t expire_idle(sim::Time now, Fn&& fn) {
    if (params_.ttl <= 0) return 0;
    const sim::Time deadline = now - params_.ttl;
    std::vector<std::pair<net::FlowId, V>> out;
    for (const auto& shp : shards_) {
      Shard& sh = *shp;
      std::lock_guard lock(sh.mu);
      std::int32_t s;
      while ((s = sh.idx.oldest()) != detail::ShardIndex::kNil &&
             sh.idx.last_seen(s) <= deadline) {
        const net::FlowId key = sh.idx.key_at(s);
        out.emplace_back(key, std::move(sh.values[s]));
        sh.values[static_cast<std::size_t>(s)] = V();
        sh.idx.erase(key);
        size_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    expirations_.fetch_add(out.size(), std::memory_order_relaxed);
    for (auto& [key, value] : out) fn(key, std::move(value));
    return out.size();
  }
  std::size_t expire_idle(sim::Time now) {
    return expire_idle(now, [](net::FlowId, V&&) {});
  }

  /// Visit every entry as fn(key, const V&), shard by shard in recency
  /// order (oldest first), under each shard's lock. Deterministic for a
  /// deterministic operation history.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& shp : shards_) {
      const Shard& sh = *shp;
      std::lock_guard lock(sh.mu);
      for (std::int32_t s = sh.idx.oldest(); s != detail::ShardIndex::kNil;
           s = sh.idx.chain_next(s)) {
        fn(sh.idx.key_at(s), sh.values[static_cast<std::size_t>(s)]);
      }
    }
  }

  /// Receives entries displaced by capacity eviction (NOT by erase() or
  /// expire_idle(), whose callers already hold the state in hand). Called
  /// outside the shard lock.
  void set_reclaim(std::function<void(net::FlowId, V&&)> fn) {
    reclaim_ = std::move(fn);
  }

  void clear() {
    for (const auto& shp : shards_) {
      Shard& sh = *shp;
      std::lock_guard lock(sh.mu);
      sh.idx.clear();
      sh.values.clear();
    }
    size_.store(0, std::memory_order_relaxed);
  }

  std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }
  /// Effective bound (capacity rounded up to shards * per-shard).
  std::size_t capacity() const { return capacity_; }
  sim::Time ttl() const { return params_.ttl; }
  std::size_t shard_count() const { return shards_.size(); }
  /// High-water resident entries — "occupancy bounded by live flows, not
  /// cumulative flows" is asserted against this.
  std::size_t peak_size() const {
    return peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::uint64_t expirations() const {
    return expirations_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    detail::ShardIndex idx;
    std::vector<V> values;
  };

  Shard& shard_for(net::FlowId key) const {
    // Buckets inside the shard probe on the low hash bits; shard selection
    // uses an upper slice so the two stay independent.
    return *shards_[(detail::mix64(key) >> 32) & shard_mask_];
  }

  void note_insert() {
    const std::size_t n = size_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (n > peak &&
           !peak_.compare_exchange_weak(peak, n, std::memory_order_relaxed)) {
    }
  }

  FlowTableParams params_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;
  std::size_t capacity_ = 0;
  std::function<void(net::FlowId, V&&)> reclaim_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> expirations_{0};
};

}  // namespace mflow::control
