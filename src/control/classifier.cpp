#include "control/classifier.hpp"

namespace mflow::control {

FlowClass Classifier::update(net::FlowId flow, double rate_pps,
                             sim::Time now) {
  State& st = states_.upsert(flow, now);
  states_.touch(flow, now);

  // What does the instantaneous rate argue for, given the hysteresis band?
  // Inside the band (demote_pps < rate < promote_pps) it argues for the
  // committed state — any pending candidate is cancelled.
  FlowClass wanted = st.committed;
  if (rate_pps >= params_.promote_pps) {
    wanted = FlowClass::kElephant;
  } else if (rate_pps <= params_.demote_pps) {
    wanted = FlowClass::kMouse;
  }

  if (wanted == st.committed) {
    st.candidate = st.committed;
    return st.committed;
  }
  if (st.candidate != wanted) {
    st.candidate = wanted;
    st.candidate_since = now;
  }
  if (now - st.candidate_since >= params_.dwell) {
    st.committed = wanted;
    ++transitions_;
  }
  return st.committed;
}

FlowClass Classifier::classify(net::FlowId flow) const {
  const State* st = states_.find(flow);
  return st == nullptr ? FlowClass::kMouse : st->committed;
}

void Classifier::clear() {
  states_.clear();
  transitions_ = 0;
}

}  // namespace mflow::control
