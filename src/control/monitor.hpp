// FlowMonitor: per-flow rate estimation over sliding windows (control
// plane stage 1 of monitor -> classifier -> scaler).
//
// The monitor is pull-based and engine-agnostic: whoever drives the
// control loop periodically feeds it cumulative per-flow totals (wire
// segments + payload bytes, exactly what BatchAssigner already counts at
// the split point for every packet, mice included), and the monitor keeps
// a short ring of timestamped samples per flow. A rate query answers with
// the delta over the samples spanning the configured window — a sliding
// window average, robust to the sampling interval jittering.
//
// Per-flow state lives in a bounded, expiring FlowTable instead of a
// plain map: recency tracks *activity* (a sample whose totals advanced),
// not mere observation, so a dead flow that the source keeps reporting at
// frozen totals still goes idle and can be reclaimed. collect_idle() /
// erase() are the Controller's expiry hooks; erase also retracts the
// flow's registry gauges so exporters stop reporting it.
//
// When a trace::Registry is attached, every sample also publishes
// `flow.<id>.rate_pps` / `flow.<id>.rate_bps` gauges, so the classifier's
// inputs land in the same uniform stat surface the benches and exporters
// already read (names are built once per flow and cached — no per-sample
// formatting).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "control/flowtable.hpp"
#include "net/flow.hpp"
#include "sim/time.hpp"
#include "trace/registry.hpp"

namespace mflow::control {

struct MonitorParams {
  /// Sliding window the rates are averaged over. Short windows react fast
  /// but amplify sender burstiness; the classifier's hysteresis (dwell)
  /// compensates, so the default leans reactive.
  sim::Time window = sim::ms(1);
  /// Samples retained per flow; must cover window / sampling-interval.
  std::size_t max_samples = 32;
  /// Backing flow table: shard count, the hard occupancy bound, and the
  /// idle TTL after which a flow with no activity becomes expirable
  /// (table.ttl == 0 keeps the pre-expiry behaviour: flows live until
  /// clear()). The Controller reads this ttl as the flow-state lifetime.
  FlowTableParams table{};
};

class FlowMonitor {
 public:
  explicit FlowMonitor(MonitorParams params = {})
      : params_(params), flows_(params.table) {
    // Capacity eviction must retract gauges just like erase() does.
    flows_.set_reclaim([this](net::FlowId, PerFlow&& pf) {
      remove_gauges(pf);
    });
  }

  /// Feed one cumulative observation for `flow` at time `now`. Totals are
  /// monotonic (lifetime segments/bytes as counted at the split point);
  /// the monitor differentiates internally.
  void record(net::FlowId flow, std::uint64_t total_segs,
              std::uint64_t total_bytes, sim::Time now);

  /// Average rate over the sliding window ending at the last sample.
  /// 0 until a flow has two samples.
  double rate_pps(net::FlowId flow) const;
  double rate_bps(net::FlowId flow) const;

  /// Sum of rate_pps over every tracked flow — the Autoscaler's load
  /// signal (aggregate offered load the active workers must absorb).
  double aggregate_rate_pps() const;

  /// Currently tracked flows in first-seen order (deterministic iteration
  /// for the classifier loop). Expired flows drop out.
  std::vector<net::FlowId> flows() const;

  std::uint64_t total_segs(net::FlowId flow) const;

  /// Flows with no activity for >= params.table.ttl at `now` — the
  /// Controller's expiry candidates. Non-destructive (the drain protocol
  /// may veto reclamation this tick).
  void collect_idle(sim::Time now, std::vector<net::FlowId>& out) const {
    flows_.collect_idle(now, out);
  }

  /// Drop one flow's samples and retract its registry gauges. Returns
  /// false if the flow was not tracked.
  bool erase(net::FlowId flow);

  std::size_t tracked_flows() const { return flows_.size(); }
  std::size_t peak_tracked() const { return flows_.peak_size(); }

  /// Publish per-flow rate gauges into `reg` on every record(). Pass
  /// nullptr to detach.
  void export_to(trace::Registry* reg) { registry_ = reg; }

  /// Drop all history (measurement-window boundary).
  void clear();

 private:
  struct Sample {
    sim::Time at = 0;
    std::uint64_t segs = 0;
    std::uint64_t bytes = 0;
  };
  struct PerFlow {
    std::deque<Sample> samples;
    std::string pps_name;  // cached gauge names ("flow.<id>.rate_pps")
    std::string bps_name;
    std::uint64_t seq = 0;  // first-seen order for flows()
  };

  double rate(net::FlowId flow, bool bytes) const;
  static double window_rate(const PerFlow& pf, bool bytes);
  void remove_gauges(const PerFlow& pf);

  MonitorParams params_;
  FlowTable<PerFlow> flows_;
  std::uint64_t next_seq_ = 0;
  trace::Registry* registry_ = nullptr;
};

}  // namespace mflow::control
