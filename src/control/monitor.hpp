// FlowMonitor: per-flow rate estimation over sliding windows (control
// plane stage 1 of monitor -> classifier -> scaler).
//
// The monitor is pull-based and engine-agnostic: whoever drives the
// control loop periodically feeds it cumulative per-flow totals (wire
// segments + payload bytes, exactly what BatchAssigner already counts at
// the split point for every packet, mice included), and the monitor keeps
// a short ring of timestamped samples per flow. A rate query answers with
// the delta over the samples spanning the configured window — a sliding
// window average, robust to the sampling interval jittering.
//
// When a trace::Registry is attached, every sample also publishes
// `flow.<id>.rate_pps` / `flow.<id>.rate_bps` gauges, so the classifier's
// inputs land in the same uniform stat surface the benches and exporters
// already read (names are built once per flow and cached — no per-sample
// formatting).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/flow.hpp"
#include "sim/time.hpp"
#include "trace/registry.hpp"

namespace mflow::control {

struct MonitorParams {
  /// Sliding window the rates are averaged over. Short windows react fast
  /// but amplify sender burstiness; the classifier's hysteresis (dwell)
  /// compensates, so the default leans reactive.
  sim::Time window = sim::ms(1);
  /// Samples retained per flow; must cover window / sampling-interval.
  std::size_t max_samples = 32;
};

class FlowMonitor {
 public:
  explicit FlowMonitor(MonitorParams params = {}) : params_(params) {}

  /// Feed one cumulative observation for `flow` at time `now`. Totals are
  /// monotonic (lifetime segments/bytes as counted at the split point);
  /// the monitor differentiates internally.
  void record(net::FlowId flow, std::uint64_t total_segs,
              std::uint64_t total_bytes, sim::Time now);

  /// Average rate over the sliding window ending at the last sample.
  /// 0 until a flow has two samples.
  double rate_pps(net::FlowId flow) const;
  double rate_bps(net::FlowId flow) const;

  /// Flows the monitor has ever seen, in first-seen order (deterministic
  /// iteration for the classifier loop).
  const std::vector<net::FlowId>& flows() const { return order_; }

  std::uint64_t total_segs(net::FlowId flow) const;

  /// Publish per-flow rate gauges into `reg` on every record(). Pass
  /// nullptr to detach.
  void export_to(trace::Registry* reg) { registry_ = reg; }

  /// Drop all history (measurement-window boundary).
  void clear();

 private:
  struct Sample {
    sim::Time at = 0;
    std::uint64_t segs = 0;
    std::uint64_t bytes = 0;
  };
  struct PerFlow {
    std::deque<Sample> samples;
    std::string pps_name;  // cached gauge names ("flow.<id>.rate_pps")
    std::string bps_name;
  };

  double rate(net::FlowId flow, bool bytes) const;

  MonitorParams params_;
  std::unordered_map<net::FlowId, PerFlow> flows_;
  std::vector<net::FlowId> order_;
  trace::Registry* registry_ = nullptr;
};

}  // namespace mflow::control
