#include "rt/pool.hpp"

#include <cstdio>
#include <cstdlib>

namespace mflow::rt {

PacketPool::PacketPool(PoolConfig cfg) : cfg_(cfg), slots_(cfg.slabs) {
  // Pre-reserve every slab's backing buffer once, up front. This is the only
  // place pooled packets ever touch the allocator.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].pkt.buf.reserve(cfg_.buffer_bytes);
    slots_[i].next.store(
        i + 1 < slots_.size() ? static_cast<std::uint32_t>(i + 1) : kNil,
        std::memory_order_relaxed);
  }
  head_.store(pack(slots_.empty() ? kNil : 0, 0), std::memory_order_relaxed);
  free_count_.store(slots_.size(), std::memory_order_relaxed);
}

PacketPool::~PacketPool() {
  // Slabs still live here mean some PacketPtr outlived the pool; its later
  // destruction would recycle into freed memory. Fail fast instead.
  if (in_use() != 0) {
    std::fprintf(stderr,
                 "PacketPool: destroyed with %zu slab(s) still in use\n",
                 in_use());
    std::abort();
  }
}

net::PacketPtr PacketPool::acquire() {
  std::uint64_t head = head_.load(std::memory_order_acquire);
  for (;;) {
    const std::uint32_t idx = index_of(head);
    if (idx == kNil) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    Slot& slot = slots_[idx];
    const std::uint32_t next = slot.next.load(std::memory_order_relaxed);
    if (head_.compare_exchange_weak(head, pack(next, tag_of(head) + 1),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      slot.live.store(true, std::memory_order_relaxed);
      free_count_.fetch_sub(1, std::memory_order_relaxed);
      acquired_.fetch_add(1, std::memory_order_relaxed);
      slot.pkt.reset();
      return net::PacketPtr(&slot.pkt, net::PacketDeleter{this});
    }
  }
}

void PacketPool::recycle(net::Packet* pkt) noexcept {
  // Recover the slot index from the packet's address; the slots live in one
  // contiguous vector, so anything that doesn't land exactly on a slot's
  // pkt member is foreign.
  const auto addr = reinterpret_cast<const char*>(pkt);
  const auto base = reinterpret_cast<const char*>(slots_.data());
  const std::ptrdiff_t diff = addr - base;
  const std::size_t idx = static_cast<std::size_t>(diff) / sizeof(Slot);
  if (diff < 0 || idx >= slots_.size() || &slots_[idx].pkt != pkt) {
    std::fprintf(stderr, "PacketPool: recycle of foreign packet %p\n",
                 static_cast<const void*>(pkt));
    std::abort();
  }
  Slot& slot = slots_[idx];
  if (!slot.live.exchange(false, std::memory_order_relaxed)) {
    std::fprintf(stderr, "PacketPool: double release of slab %zu\n", idx);
    std::abort();
  }

  std::uint64_t head = head_.load(std::memory_order_relaxed);
  for (;;) {
    slot.next.store(index_of(head), std::memory_order_relaxed);
    if (head_.compare_exchange_weak(
            head, pack(static_cast<std::uint32_t>(idx), tag_of(head) + 1),
            std::memory_order_release, std::memory_order_relaxed)) {
      break;
    }
  }
  free_count_.fetch_add(1, std::memory_order_relaxed);
  recycled_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t PacketPool::in_use() const {
  return slots_.size() - free_count_.load(std::memory_order_relaxed);
}

}  // namespace mflow::rt
