// Real-thread MFLOW pipeline engine.
//
// Executes the paper's split/process/merge structure with actual threads
// and lock-free rings, on pooled packets whose per-packet cost is
// calibrated busy-work:
//
//   generator (caller thread)
//        | acquires a pool slab per packet, assigns micro-flow batches
//        | round-robin, pushes CHUNKS into the splitting rings
//        v
//   per-worker SPSC splitting rings                    (1:N fan-out)
//        |            (worker threads: pop a chunk, spin cost_ns of
//        |             "processing" per packet, deposit the chunk)
//        v
//   per-worker SPSC buffer rings                       (N:1 fan-in)
//        |            (consumer thread: batched in-order merge across the
//        |             fan-in rings — batch ownership is implied by the
//        |             splitter's round-robin, so N workers deposit
//        |             concurrently with no global lock anywhere)
//        v
//   in-order output, verified against the generator's sequence.
//
// Slab return is itself a fan-in fabric: delivered slabs go back to the
// generator through a consumer→generator SPSC recycle ring, and slabs
// dropped mid-pipeline (injected faults, shed on backpressure) through one
// drop-return SPSC ring per worker — the pool's CAS free list is only the
// overflow fallback on every path (EngineResult::recycle_* count the
// split).
//
// Steady-state processing performs ZERO heap allocations: every packet
// lives in a pre-sized rt::PacketPool slab, ring handoffs move the RAII
// handle, and recycling is ring-based. tests/test_pool.cpp enforces this
// with an allocation-counting guard; docs/PERFORMANCE.md documents the
// slab lifecycle.
//
// With workers == 1 this degenerates to the vanilla single-core pipeline,
// giving the 1-worker anchor for the scaling-efficiency curves in
// bench/ablate_scaling. NOTE: on a single-CPU host the engine is validated
// for *correctness* (ordering, conservation, no deadlock); wall-clock
// speedup requires real cores — docs/SCALING.md covers the threading
// model, the topology-aware core assignment (EngineConfig::topology), and
// the scalability profiler (EngineConfig::profile) end to end.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "control/capacity.hpp"
#include "nf/nf.hpp"
#include "rt/pool.hpp"
#include "rt/profiler.hpp"
#include "rt/reassembler.hpp"

namespace mflow::rt {

struct EngineConfig {
  /// Worker (processing) thread count, excluding generator and consumer.
  std::size_t workers = 2;
  /// Packets per micro-flow batch (the paper's split granularity).
  std::uint32_t batch_size = 256;
  /// Depth of every SPSC ring (power of two — SpscRing enforces this).
  std::size_t ring_capacity = 1024;
  /// Calibrated busy-work per packet; 0 measures pure framework overhead.
  std::uint32_t cost_ns_per_packet = 300;
  /// Backpressure bound: a full SPSC ring (or an exhausted pool) is
  /// retried (with yield) at most this many times before the packet is
  /// dropped and recovered — the pipeline degrades instead of spinning
  /// behind a stalled consumer. 0 retries forever (lossless).
  std::uint32_t max_push_spins = 1u << 16;
  /// Injected loss probability at the worker->merger deposit, to exercise
  /// the drop-and-recover path under real concurrency.
  double fault_drop_rate = 0.0;
  std::uint64_t fault_seed = 0x5eed;
  /// Packet-pool slabs for this run. 0 auto-sizes to cover every ring plus
  /// in-flight staging, so a lossless run can never exhaust the pool.
  /// Deliberately small values exercise pool backpressure (the generator
  /// waits for recycled slabs instead of allocating).
  std::size_t pool_capacity = 0;
  /// Runtime rescale: once `after_packets` packets have been generated, the
  /// stream's split degree changes to `active_workers` (clamped to
  /// [1, workers]) — the control plane's decision replayed as a
  /// deterministic schedule. Applied at the next micro-flow boundary via an
  /// epoch message on the merger's internal SPSC ring (allocation-free, no
  /// stall: old-epoch batches drain under the old worker mapping while new
  /// ones fill under the new). Entries must be ascending in after_packets.
  struct Rescale {
    std::uint64_t after_packets = 0;
    std::size_t active_workers = 0;
  };
  std::vector<Rescale> rescales;
  /// Overlay mode: the generator builds REAL VXLAN-encapsulated bytes into
  /// every slab (inner Eth/IPv4/UDP + 50-byte outer stack) and the workers
  /// decapsulate them — the rt twin of the DES overlay path. With `cache`
  /// on, each worker keeps a direct-mapped per-flow table (sized before
  /// thread spawn, so the no-alloc invariant holds): a hit validates the
  /// cached outer-header template against the packet's bytes and splices
  /// the outer stack off in one pull; a miss or a rescale-epoch mismatch
  /// runs the full validating decap and (re)installs the entry.
  struct OverlayConfig {
    bool enabled = false;
    bool cache = false;
    /// Distinct inner flows; each micro-flow batch belongs to one flow
    /// (batch % flows), so flow churn scales with this.
    std::uint32_t flows = 16;
    /// Per-worker direct-mapped cache slots (power of two). Values below
    /// `flows` force conflict evictions — the rt miss-storm knob.
    std::size_t cache_slots = 256;
    std::uint32_t vni = 42;
  };
  OverlayConfig overlay;
  /// Flow-state plane (churn mode): the generator registers each batch's
  /// flow in a shared control::FlowTable, workers touch entries while
  /// processing, and the generator sweeps out idle flows — the rt twin of
  /// the control plane's expiring flow table. The table's clock is the
  /// BATCH INDEX, not wall time: worker touches replay a flow's own batch
  /// number, which the monotone-touch rule turns into no-ops against the
  /// generator's newer stamps, so peak/expired/live counts are
  /// deterministic despite real threads.
  struct FlowTableConfig {
    bool enabled = false;
    std::size_t shards = 8;
    /// Resident-entry bound (occupancy stays under it by construction).
    std::size_t capacity = 1 << 14;
    /// Batches of inactivity after which a flow expires.
    std::uint64_t ttl_batches = 1024;
    /// Expiry-sweep cadence, in batches.
    std::uint64_t sweep_every = 256;
    /// Without overlay mode, a fresh FlowId starts every this many batches
    /// (the churn generator). Overlay mode keeps its `batch % flows`
    /// identity and this knob is ignored.
    std::uint64_t flow_lifetime_batches = 8;
  };
  FlowTableConfig flow_table;
  /// Stateful NF plane: every worker runs the configured nf:: chain over
  /// each surviving packet it processes, with per-flow state held per
  /// `strategy` — kSharedLock: one shared control::FlowTable updated
  /// through upsert_apply (the shard mutex is the lock every split packet
  /// serializes on); kScr / kFlowAffinity: one PRIVATE single-writer table
  /// per worker, folded into the merged state after join (exact, because
  /// nf::FlowState is a lattice). In overlay mode the NAT stage rewrites
  /// the real decapsulated header bytes. Tables are sized before thread
  /// spawn, so the no-alloc steady state holds as long as `state_capacity`
  /// covers the live flows.
  struct NfConfig {
    bool enabled = false;
    nf::Strategy strategy = nf::Strategy::kScr;
    nf::ChainConfig chain;
    /// Resident-flow bound per table. Eviction past it DROPS that flow's
    /// replica contribution (reclaim is not wired here), so size it to
    /// cover the flow population when digest equality matters.
    std::size_t state_capacity = 1 << 14;
    /// Shard count of the shared table (kSharedLock contention knob).
    std::size_t shared_shards = 8;
  };
  NfConfig nf;
  /// Scalability profiler (rt/profiler.hpp): every pipeline thread records
  /// per-stage stall episodes (ring empty/full, pool dry), recycle-path
  /// pressure, and sampled ring occupancy into its own cache-line-aligned
  /// counter block, folded into EngineResult::profile after join. Timing
  /// is episode-based (clock reads only when a stage is already blocked),
  /// so the happy path is untouched; off (the default) the counters are
  /// never written at all.
  bool profile = false;
  /// Cache/NUMA-topology-aware core assignment (rt/topology.hpp). With
  /// `pin_threads`, the engine discovers the host topology and pins
  /// workers to distinct physical cores first (SMT siblings only when
  /// cores run out) with generator+consumer co-located on the remaining
  /// cores of the same NUMA node — or leaves everything unpinned when the
  /// host cannot give each pipeline thread its own logical CPU. Explicit
  /// fields override the plan per thread (-1 / missing = use the plan).
  /// The generator (caller) thread's affinity is restored after run().
  struct TopologyConfig {
    bool pin_threads = false;
    int generator_cpu = -1;
    int consumer_cpu = -1;
    std::vector<int> worker_cpus;
  };
  TopologyConfig topology;
};

struct EngineResult {
  std::uint64_t packets = 0;          // delivered (survivors)
  std::uint64_t packets_dropped = 0;  // backpressure + injected drops
  std::uint64_t batches_merged = 0;
  double wall_seconds = 0.0;
  /// Survivor seqs strictly increasing AND delivered + dropped == total
  /// (without drops this is exactly "output seq is 0..packets-1").
  bool in_order = false;
  /// Pool telemetry for the run (see rt::PacketPool counters).
  std::uint64_t pool_acquired = 0;
  std::uint64_t pool_recycled = 0;
  std::uint64_t pool_exhausted = 0;
  /// Epoch changes actually announced to the merger (one per effective
  /// EngineConfig::rescales entry; same-degree entries coalesce to none).
  std::uint64_t rescales_applied = 0;
  /// Overlay-mode accounting (all zero unless overlay.enabled), summed
  /// over the workers after join.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Cache entries discarded because the packet carried a newer rescale
  /// epoch than the entry was installed under.
  std::uint64_t cache_invalidations = 0;
  std::uint64_t decap_failures = 0;
  /// Flow-table telemetry (zero unless flow_table.enabled), nested under
  /// one domain following the `domain.metric` naming convention the
  /// scenario results and bench cases share. Peak is the high-water
  /// resident count — bounded by live flows, not cumulative.
  struct FlowTableStats {
    std::uint64_t peak = 0;
    std::uint64_t expired = 0;
    std::uint64_t live = 0;
  };
  FlowTableStats flow_table;
  /// NF-plane accounting (zero unless nf.enabled). The merged state and
  /// its digest (seeded 0, folded in flow-id order — same convention as
  /// nf::NfLayer::state_digest) cover only SURVIVING packets, so for a
  /// lossless run they are equal across all three strategies and equal to
  /// the single-threaded oracle over the same stream.
  std::uint64_t nf_packets = 0;
  std::uint64_t nf_nat_rewrites = 0;
  std::uint64_t nf_nat_rewrite_failures = 0;
  std::uint64_t nf_lock_acquires = 0;
  std::uint64_t nf_flows = 0;
  std::uint64_t nf_state_digest = 0;
  std::vector<std::pair<net::FlowId, nf::FlowState>> nf_state;
  /// Recycle-fabric accounting (always on — plain per-thread counters):
  /// slabs a worker returned to the generator through its per-worker
  /// drop-return SPSC ring vs. slabs that fell back to the pool's CAS
  /// free list (worker drop-ring overflow + consumer recycle-ring
  /// overflow + generator draws from the pool itself).
  std::uint64_t recycle_ring_returns = 0;
  std::uint64_t recycle_cas_fallbacks = 0;
  /// Threads actually pinned under EngineConfig::topology (0 when pinning
  /// is off or the plan came back unpinned).
  std::uint32_t threads_pinned = 0;
  /// Active workers when the stream ended (differs from config.workers
  /// only if a rescale schedule entry or a live capacity request applied).
  std::uint32_t active_workers_final = 0;
  /// Per-stage stall/occupancy profile (enabled == EngineConfig::profile;
  /// feed to rt::attribute_scaling / rt::export_profile).
  ProfileReport profile;
  double packets_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(packets) / wall_seconds
                            : 0.0;
  }
};

/// Live capacity-request channel between an EngineCapacityAdapter and a
/// running Engine::run(). `requested` is the desired active worker count
/// (0 = no request); the generator samples it at micro-flow boundaries
/// only — the same place the deterministic rescale schedule applies — and
/// runs the identical epoch-announce + ring-flush protocol, then publishes
/// the applied value into `active`. Requests are therefore never torn:
/// between boundaries the old mapping keeps draining untouched.
struct CapacityControl {
  std::atomic<std::uint32_t> requested{0};
  std::atomic<std::uint32_t> active{0};
};

class Engine {
 public:
  explicit Engine(EngineConfig config) : config_(config) {}

  const EngineConfig& config() const { return config_; }

  /// Live capacity channel (see CapacityControl); normally driven through
  /// an EngineCapacityAdapter rather than directly.
  CapacityControl& capacity() { return capacity_; }
  const CapacityControl& capacity() const { return capacity_; }

  /// Push `total` packets through the split/process/merge pipeline.
  /// `on_output` (optional) observes every merged packet in order; the
  /// packet's skb is still attached at that point and is recycled right
  /// after the callback returns (copy-to-user is the end of skb life,
  /// exactly as in the kernel).
  EngineResult run(std::uint64_t total,
                   const std::function<void(const RtPacket&)>& on_output = {});

 private:
  EngineConfig config_;
  CapacityControl capacity_;
};

/// The rt engine's single control::CapacityTarget implementation. The rt
/// pipeline processes ONE generated stream, so the flow dimension reduces
/// to the capacity dimension: a degree-d retarget asks for d active
/// workers. Capacity requests post to the engine's CapacityControl and
/// are applied by the generator at the next micro-flow boundary via the
/// epoch rescale protocol — no veto needed, the epoch machinery IS the
/// drain ordering (old-epoch batches finish under the old mapping).
/// Requests may be posted before run() starts (applied at the first
/// boundary, deterministically) or from any thread mid-run.
class EngineCapacityAdapter final : public control::CapacityTarget {
 public:
  explicit EngineCapacityAdapter(Engine& engine) : engine_(engine) {}

  void set_flow_degree(net::FlowId, std::uint32_t degree) override {
    set_active_workers(std::max<std::uint32_t>(degree, 1));
  }
  std::uint32_t max_degree() const override { return active_workers(); }
  std::uint32_t worker_limit() const override {
    return static_cast<std::uint32_t>(
        std::max<std::size_t>(engine_.config().workers, 1));
  }
  std::uint32_t active_workers() const override {
    const std::uint32_t a =
        engine_.capacity().active.load(std::memory_order_acquire);
    return a != 0 ? a : worker_limit();
  }
  bool set_active_workers(std::uint32_t workers) override {
    engine_.capacity().requested.store(
        std::clamp<std::uint32_t>(workers, 1, worker_limit()),
        std::memory_order_release);
    return true;
  }

 private:
  Engine& engine_;
};

}  // namespace mflow::rt
