// Real-thread MFLOW pipeline engine.
//
// Executes the paper's split/process/merge structure with actual threads
// and lock-free rings, on synthetic packets whose per-packet cost is
// calibrated busy-work:
//
//   generator (caller thread)
//        | assigns micro-flow batches round-robin
//        v
//   per-worker SPSC splitting rings
//        |            (worker threads: spin cost_ns of "processing")
//        v
//   per-worker SPSC buffer rings
//        |            (consumer thread: batch-based merge)
//        v
//   in-order output, verified against the generator's sequence
//
// With workers == 1 this degenerates to the vanilla single-core pipeline,
// giving a baseline for the throughput comparison in bench/micro_rt.
// NOTE: on a single-CPU host the engine is validated for *correctness*
// (ordering, conservation, no deadlock); wall-clock speedup requires real
// cores.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "rt/reassembler.hpp"

namespace mflow::rt {

struct EngineConfig {
  std::size_t workers = 2;
  std::uint32_t batch_size = 256;
  std::size_t ring_capacity = 1024;  // power of two
  std::uint32_t cost_ns_per_packet = 300;
  /// Backpressure bound: a full SPSC ring is retried (with yield) at most
  /// this many times before the packet is dropped and recovered — the
  /// pipeline degrades instead of spinning behind a stalled consumer.
  /// 0 retries forever (the old lossless behaviour).
  std::uint32_t max_push_spins = 1u << 16;
  /// Injected loss probability at the worker->merger deposit, to exercise
  /// the drop-and-recover path under real concurrency.
  double fault_drop_rate = 0.0;
  std::uint64_t fault_seed = 0x5eed;
};

struct EngineResult {
  std::uint64_t packets = 0;          // delivered (survivors)
  std::uint64_t packets_dropped = 0;  // backpressure + injected drops
  std::uint64_t batches_merged = 0;
  double wall_seconds = 0.0;
  /// Survivor seqs strictly increasing AND delivered + dropped == total
  /// (without drops this is exactly "output seq is 0..packets-1").
  bool in_order = false;
  double packets_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(packets) / wall_seconds
                            : 0.0;
  }
};

class Engine {
 public:
  explicit Engine(EngineConfig config) : config_(config) {}

  /// Push `total` packets through the split/process/merge pipeline.
  /// `on_output` (optional) observes every merged packet in order.
  EngineResult run(std::uint64_t total,
                   const std::function<void(const RtPacket&)>& on_output = {});

 private:
  EngineConfig config_;
};

}  // namespace mflow::rt
