// CPU/cache/NUMA topology discovery and core assignment for the rt engine.
//
// True multicore scaling needs threads on the right cores, not just enough
// of them: SMT siblings share execution ports (two workers there run at
// roughly half speed each), and a ring whose producer and consumer sit on
// different NUMA nodes pays cross-socket latency on every cache-line
// handoff. This header gives the engine the three pieces it needs:
//
//  1. `CpuTopology::discover()` — parse the Linux sysfs topology tree
//     (online CPUs, physical core / package ids, NUMA node membership)
//     into a flat table. A non-Linux host, or a container with sysfs
//     masked, degrades to "N independent cores on one node", which makes
//     every placement decision below a no-op-safe default.
//
//  2. `plan_cores()` — the placement policy (documented in
//     docs/SCALING.md §4): workers spread across distinct PHYSICAL cores
//     first (SMT siblings only when cores run out), all on one NUMA node
//     when possible; the generator and consumer — who talk to every
//     worker plus each other through the recycle ring — are co-located on
//     the remaining cores of the same node, preferring the two SMT
//     siblings of one spare core so the recycle ring stays within one
//     core's private cache. If the host cannot give every pipeline thread
//     its own logical CPU the plan comes back unpinned: pinning more
//     threads than CPUs serializes the pipeline behind the scheduler and
//     is strictly worse than letting it balance.
//
//  3. `pin_current_thread()` / `unpin_current_thread()` — apply / undo an
//     assignment (pthread affinity on Linux; no-ops returning false
//     elsewhere). The engine pins its own (generator) thread for the
//     duration of a run and restores the full mask on exit.
//
// tests/test_rt_scaling.cpp drives discovery against a fake sysfs tree and
// pins the plan policy invariants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mflow::rt {

/// One online logical CPU and where it lives.
struct CpuInfo {
  int cpu = 0;           // logical CPU id (the number you pin to)
  int core_id = 0;       // physical core within the package
  int package_id = 0;    // physical socket
  int numa_node = 0;     // NUMA node (0 when the host is not NUMA)
};

struct CpuTopology {
  std::vector<CpuInfo> cpus;  // online CPUs, ascending cpu id

  /// Logical CPUs visible to this process.
  std::size_t size() const { return cpus.size(); }

  /// Parse `<sysfs_root>/devices/system/cpu` + `/devices/system/node`.
  /// `sysfs_root` is overridable so tests can point at a fake tree. Any
  /// missing file degrades gracefully (core_id = cpu, one package, one
  /// node); an absent sysfs yields hardware_concurrency() synthetic CPUs.
  static CpuTopology discover(const std::string& sysfs_root = "/sys");
};

/// Where each pipeline thread should run; -1 (or an empty plan) means
/// "leave this thread unpinned".
struct CorePlan {
  int generator = -1;
  int consumer = -1;
  std::vector<int> workers;  // one entry per worker, -1 = unpinned

  /// True when at least one thread has an assignment.
  bool any() const;
};

/// The placement policy described in the header comment (and in
/// docs/SCALING.md §4). Returns an unpinned plan when `topo` has fewer
/// logical CPUs than `workers + 2` pipeline threads.
CorePlan plan_cores(const CpuTopology& topo, std::size_t workers);

/// Parse a sysfs cpulist ("0-3,5,7-8") into ascending CPU ids. Malformed
/// chunks are skipped. Exposed for tests.
std::vector<int> parse_cpulist(const std::string& list);

/// Pin the calling thread to one logical CPU. Returns false (and changes
/// nothing) when `cpu` < 0, the platform has no affinity API, or the
/// syscall fails (e.g. the CPU is outside the container's cpuset).
bool pin_current_thread(int cpu);

/// Restore the calling thread to the full affinity mask of all online
/// CPUs. Returns false when unsupported.
bool unpin_current_thread();

}  // namespace mflow::rt
