#include "rt/engine.hpp"

#include <atomic>
#include <chrono>

#include "rt/calibrate.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace mflow::rt {

namespace {

/// Thread-local trace buffer for the rt engine. Each thread appends to its
/// own vector while running and hands the whole batch to the tracer with
/// absorb() before the engine joins it — no shared mutable state while the
/// workers are live, which keeps the tsan preset quiet.
class ThreadTrace {
 public:
  ThreadTrace(trace::Tracer* tr,
              std::chrono::steady_clock::time_point t0, int core)
      : tr_(tr), t0_(t0), core_(static_cast<std::int16_t>(core)) {}

  ~ThreadTrace() { flush(); }

  void event(trace::EventKind kind, std::uint64_t seq,
             std::uint64_t microflow, std::uint64_t aux = 0,
             sim::Time dur = 0) {
    if (tr_ == nullptr || !tr_->sampled(seq)) return;
    trace::TraceEvent ev;
    ev.ts = static_cast<sim::Time>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
    ev.dur = dur;
    ev.seq = seq;
    ev.microflow = microflow;
    ev.aux = aux;
    ev.kind = kind;
    ev.core = core_;
    buf_.push_back(ev);
  }

  void flush() {
    if (tr_ != nullptr && !buf_.empty()) tr_->absorb(std::move(buf_));
    buf_.clear();
  }

 private:
  trace::Tracer* tr_;
  std::chrono::steady_clock::time_point t0_;
  std::int16_t core_;
  std::vector<trace::TraceEvent> buf_;
};

}  // namespace

EngineResult Engine::run(
    std::uint64_t total,
    const std::function<void(const RtPacket&)>& on_output) {
  const std::size_t W = config_.workers;
  std::vector<std::unique_ptr<SpscRing<RtPacket>>> split_rings;
  for (std::size_t i = 0; i < W; ++i)
    split_rings.push_back(
        std::make_unique<SpscRing<RtPacket>>(config_.ring_capacity));
  RtReassembler merger(W, config_.ring_capacity);

  std::atomic<bool> produce_done{false};
  std::atomic<std::size_t> workers_done{0};
  // Packets lost to backpressure (retry budget exhausted) or injected
  // faults. The consumer terminates on consumed + dropped == total, so
  // every loss must be counted by whoever gave up on the packet.
  std::atomic<std::uint64_t> dropped{0};

  const auto t0 = std::chrono::steady_clock::now();
  // Captured once before any thread spawns; the spawn happens-before makes
  // the pointer safely visible to every worker without atomics.
  trace::Tracer* tr = trace::active();

  // Worker threads: pop from their splitting ring, "process" (calibrated
  // spin), deposit into their buffer ring.
  std::vector<std::jthread> workers;
  workers.reserve(W);
  for (std::size_t w = 0; w < W; ++w) {
    workers.emplace_back([&, w] {
      auto& in = *split_rings[w];
      util::Rng faults(config_.fault_seed + 0x9e37 * (w + 1));
      ThreadTrace wt(tr, t0, static_cast<int>(w));
      while (true) {
        if (auto pkt = in.try_pop()) {
          const bool last = pkt->last;
          wt.event(trace::EventKind::kRingDequeue, pkt->seq, pkt->batch);
          if (pkt->cost_ns > 0) spin_ns(pkt->cost_ns);
          wt.event(trace::EventKind::kStageExit, pkt->seq, pkt->batch,
                   /*aux=*/0xFF, static_cast<sim::Time>(pkt->cost_ns));
          const bool lost = config_.fault_drop_rate > 0.0 &&
                            faults.chance(config_.fault_drop_rate);
          if (lost || !merger.deposit(w, *pkt, config_.max_push_spins)) {
            dropped.fetch_add(1, std::memory_order_release);
            wt.event(trace::EventKind::kDrop, pkt->seq, pkt->batch);
          } else {
            wt.event(trace::EventKind::kReasmHold, pkt->seq, pkt->batch);
          }
          if (last) break;
        } else if (produce_done.load(std::memory_order_acquire) &&
                   in.empty()) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
      wt.flush();
      workers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // Consumer thread: batch-based merge + order verification. Gap-tolerant:
  // a drop leaves a hole in the seq space, so "in order" means survivor
  // seqs strictly increase (equivalent to exact 0..N-1 when nothing drops).
  std::uint64_t consumed = 0;
  std::uint64_t next_seq_floor = 0;
  bool in_order = true;
  std::jthread consumer([&] {
    ThreadTrace ct(tr, t0, static_cast<int>(W));  // track one past workers
    while (consumed + dropped.load(std::memory_order_acquire) < total) {
      if (auto pkt = merger.pop_ready()) {
        if (pkt->seq < next_seq_floor) in_order = false;
        next_seq_floor = pkt->seq + 1;
        ++consumed;
        ct.event(trace::EventKind::kReasmRelease, pkt->seq, pkt->batch);
        if (on_output) on_output(*pkt);
      } else if (workers_done.load(std::memory_order_acquire) == W) {
        // All producers drained: a dry micro-flow boundary — whether never
        // filled or emptied by drops — can be skipped.
        merger.force_advance();
      } else {
        std::this_thread::yield();
      }
    }
  });

  // Generator (this thread): round-robin micro-flow batches, as the
  // splitting mechanisms do.
  std::uint64_t batch = 0;
  std::uint32_t in_batch = config_.batch_size;
  std::size_t target = W - 1;
  ThreadTrace gt(tr, t0, static_cast<int>(W) + 1);  // generator track
  for (std::uint64_t i = 0; i < total; ++i) {
    if (in_batch >= config_.batch_size) {
      ++batch;
      in_batch = 0;
      target = (target + 1) % W;
    }
    ++in_batch;
    RtPacket pkt{i, batch, config_.cost_ns_per_packet, i + 1 == total};
    gt.event(trace::EventKind::kSplitDeposit, i, batch,
             static_cast<std::uint64_t>(target));
    auto& ring = *split_rings[target];
    std::uint32_t spins = 0;
    while (!ring.try_push(pkt)) {
      if (config_.max_push_spins != 0 &&
          ++spins >= config_.max_push_spins) {
        // Splitting ring stayed full past the retry budget: shed the
        // packet here rather than wedging the generator.
        dropped.fetch_add(1, std::memory_order_release);
        gt.event(trace::EventKind::kDrop, i, batch);
        break;
      }
      std::this_thread::yield();
    }
  }
  produce_done.store(true, std::memory_order_release);
  gt.flush();

  consumer.join();
  workers.clear();  // join all
  const auto t1 = std::chrono::steady_clock::now();

  EngineResult res;
  res.packets = consumed;
  res.packets_dropped = dropped.load(std::memory_order_acquire);
  res.batches_merged = merger.batches_merged();
  res.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  res.in_order = in_order && consumed + res.packets_dropped == total;
  return res;
}

}  // namespace mflow::rt
