#include "rt/engine.hpp"

#include <atomic>
#include <chrono>

#include "rt/calibrate.hpp"
#include "util/rng.hpp"

namespace mflow::rt {

EngineResult Engine::run(
    std::uint64_t total,
    const std::function<void(const RtPacket&)>& on_output) {
  const std::size_t W = config_.workers;
  std::vector<std::unique_ptr<SpscRing<RtPacket>>> split_rings;
  for (std::size_t i = 0; i < W; ++i)
    split_rings.push_back(
        std::make_unique<SpscRing<RtPacket>>(config_.ring_capacity));
  RtReassembler merger(W, config_.ring_capacity);

  std::atomic<bool> produce_done{false};
  std::atomic<std::size_t> workers_done{0};
  // Packets lost to backpressure (retry budget exhausted) or injected
  // faults. The consumer terminates on consumed + dropped == total, so
  // every loss must be counted by whoever gave up on the packet.
  std::atomic<std::uint64_t> dropped{0};

  const auto t0 = std::chrono::steady_clock::now();

  // Worker threads: pop from their splitting ring, "process" (calibrated
  // spin), deposit into their buffer ring.
  std::vector<std::jthread> workers;
  workers.reserve(W);
  for (std::size_t w = 0; w < W; ++w) {
    workers.emplace_back([&, w] {
      auto& in = *split_rings[w];
      util::Rng faults(config_.fault_seed + 0x9e37 * (w + 1));
      while (true) {
        if (auto pkt = in.try_pop()) {
          const bool last = pkt->last;
          if (pkt->cost_ns > 0) spin_ns(pkt->cost_ns);
          const bool lost = config_.fault_drop_rate > 0.0 &&
                            faults.chance(config_.fault_drop_rate);
          if (lost || !merger.deposit(w, *pkt, config_.max_push_spins))
            dropped.fetch_add(1, std::memory_order_release);
          if (last) break;
        } else if (produce_done.load(std::memory_order_acquire) &&
                   in.empty()) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
      workers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // Consumer thread: batch-based merge + order verification. Gap-tolerant:
  // a drop leaves a hole in the seq space, so "in order" means survivor
  // seqs strictly increase (equivalent to exact 0..N-1 when nothing drops).
  std::uint64_t consumed = 0;
  std::uint64_t next_seq_floor = 0;
  bool in_order = true;
  std::jthread consumer([&] {
    while (consumed + dropped.load(std::memory_order_acquire) < total) {
      if (auto pkt = merger.pop_ready()) {
        if (pkt->seq < next_seq_floor) in_order = false;
        next_seq_floor = pkt->seq + 1;
        ++consumed;
        if (on_output) on_output(*pkt);
      } else if (workers_done.load(std::memory_order_acquire) == W) {
        // All producers drained: a dry micro-flow boundary — whether never
        // filled or emptied by drops — can be skipped.
        merger.force_advance();
      } else {
        std::this_thread::yield();
      }
    }
  });

  // Generator (this thread): round-robin micro-flow batches, as the
  // splitting mechanisms do.
  std::uint64_t batch = 0;
  std::uint32_t in_batch = config_.batch_size;
  std::size_t target = W - 1;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (in_batch >= config_.batch_size) {
      ++batch;
      in_batch = 0;
      target = (target + 1) % W;
    }
    ++in_batch;
    RtPacket pkt{i, batch, config_.cost_ns_per_packet, i + 1 == total};
    auto& ring = *split_rings[target];
    std::uint32_t spins = 0;
    while (!ring.try_push(pkt)) {
      if (config_.max_push_spins != 0 &&
          ++spins >= config_.max_push_spins) {
        // Splitting ring stayed full past the retry budget: shed the
        // packet here rather than wedging the generator.
        dropped.fetch_add(1, std::memory_order_release);
        break;
      }
      std::this_thread::yield();
    }
  }
  produce_done.store(true, std::memory_order_release);

  consumer.join();
  workers.clear();  // join all
  const auto t1 = std::chrono::steady_clock::now();

  EngineResult res;
  res.packets = consumed;
  res.packets_dropped = dropped.load(std::memory_order_acquire);
  res.batches_merged = merger.batches_merged();
  res.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  res.in_order = in_order && consumed + res.packets_dropped == total;
  return res;
}

}  // namespace mflow::rt
