#include "rt/engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <map>
#include <memory>

#include "control/flowtable.hpp"
#include "rt/calibrate.hpp"
#include "rt/topology.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace mflow::rt {

namespace {

/// Packets staged per ring operation. Amortizes one acquire-load plus one
/// release-store across the whole chunk; small enough that a chunk never
/// approaches the default ring depth.
constexpr std::size_t kChunk = 128;

/// Thread-local trace buffer for the rt engine. Each thread appends to its
/// own vector while running and hands the whole batch to the tracer with
/// absorb() before the engine joins it — no shared mutable state while the
/// workers are live, which keeps the tsan preset quiet.
class ThreadTrace {
 public:
  ThreadTrace(trace::Tracer* tr,
              std::chrono::steady_clock::time_point t0, int core)
      : tr_(tr), t0_(t0), core_(static_cast<std::int16_t>(core)) {}

  ~ThreadTrace() { flush(); }

  void event(trace::EventKind kind, std::uint64_t seq,
             std::uint64_t microflow, std::uint64_t aux = 0,
             sim::Time dur = 0) {
    if (tr_ == nullptr || !tr_->sampled(seq)) return;
    trace::TraceEvent ev;
    ev.ts = static_cast<sim::Time>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
    ev.dur = dur;
    ev.seq = seq;
    ev.microflow = microflow;
    ev.aux = aux;
    ev.kind = kind;
    ev.core = core_;
    buf_.push_back(ev);
  }

  void flush() {
    if (tr_ != nullptr && !buf_.empty()) tr_->absorb(std::move(buf_));
    buf_.clear();
  }

 private:
  trace::Tracer* tr_;
  std::chrono::steady_clock::time_point t0_;
  std::int16_t core_;
  std::vector<trace::TraceEvent> buf_;
};

/// One per-worker direct-mapped overlay cache slot: the resolved decap
/// decision for a flow, plus the outer-header template bytes a hit is
/// validated against (the outer UDP source port is the only outer field
/// that varies per flow — RFC 7348 entropy — so matching it proves the
/// cached template still describes this packet's outer stack).
struct CacheSlot {
  std::uint64_t flow_id = 0;
  std::uint32_t epoch = 0;  // rescale epoch the entry was installed under
  std::uint8_t sport_hi = 0;
  std::uint8_t sport_lo = 0;
  bool valid = false;
};

/// Offset of the outer UDP source port in an encapsulated packet:
/// Eth(14) + IPv4(20).
constexpr std::size_t kOuterSportOff =
    net::EthernetHeader::kSize + net::Ipv4Header::kSize;

}  // namespace

EngineResult Engine::run(
    std::uint64_t total,
    const std::function<void(const RtPacket&)>& on_output) {
  const std::size_t W = config_.workers;

  // Pool is declared FIRST so it is destroyed LAST: every ring below holds
  // PacketPtrs whose destructors recycle into it. Auto-sizing covers every
  // ring slot plus per-thread chunk staging, so lossless runs never see
  // pool exhaustion.
  const std::size_t pool_cap =
      config_.pool_capacity != 0
          ? config_.pool_capacity
          : config_.ring_capacity * (2 * W + 2) + (W + 3) * kChunk;
  PacketPool pool({.slabs = pool_cap});

  std::vector<std::unique_ptr<SpscRing<RtPacket>>> split_rings;
  for (std::size_t i = 0; i < W; ++i)
    split_rings.push_back(
        std::make_unique<SpscRing<RtPacket>>(config_.ring_capacity));
  RtReassembler merger(W, config_.ring_capacity,
                       std::max<std::size_t>(64, config_.rescales.size()));

  // Consumer -> generator slab return path. Ring-based recycling keeps the
  // steady state free of pool CAS traffic (the Treiber free list is only
  // the fallback when this ring is full/empty — e.g. around drops).
  SpscRing<net::PacketPtr> recycle_ring(std::bit_ceil(pool_cap + 1));

  // Worker -> generator drop-return fan-in: one small SPSC ring per worker
  // so slabs dropped mid-pipeline (injected faults, deposit backpressure)
  // return without CAS-contending on the pool free list — under fan-in, N
  // droppers hammering one Treiber head is a real contention point. The
  // generator batch-drains these only when the main recycle ring is dry;
  // overflow falls back to the CAS list (the PacketPtr destructor).
  std::vector<std::unique_ptr<SpscRing<net::PacketPtr>>> drop_rings;
  for (std::size_t i = 0; i < W; ++i)
    drop_rings.push_back(std::make_unique<SpscRing<net::PacketPtr>>(
        std::bit_ceil(2 * kChunk)));
  struct RecycleCounts {
    std::uint64_t ring_returns = 0, cas_fallbacks = 0;
  };
  std::vector<RecycleCounts> rec_counts(W);
  std::uint64_t consumer_ring_returns = 0;   // consumer-thread private,
  std::uint64_t consumer_cas_fallbacks = 0;  // read only after join

  // Scalability profiler: one cache-line-aligned counter block per
  // pipeline thread, written only by its owner while running and folded
  // after join (rt/profiler.hpp). Null pointers when profiling is off, so
  // the default path never touches them.
  const bool prof_on = config_.profile;
  std::vector<StageCounters> prof_workers(W);
  StageCounters prof_generator, prof_consumer;

  // Topology-aware core assignment: auto-plan from the discovered
  // topology, then apply any explicit per-thread overrides. Worker and
  // consumer threads pin themselves on startup; the generator (caller)
  // thread is pinned here and restored before returning.
  CorePlan plan;
  plan.workers.assign(W, -1);
  std::atomic<std::uint32_t> threads_pinned{0};
  if (config_.topology.pin_threads) {
    plan = plan_cores(CpuTopology::discover(), W);
    if (config_.topology.generator_cpu >= 0)
      plan.generator = config_.topology.generator_cpu;
    if (config_.topology.consumer_cpu >= 0)
      plan.consumer = config_.topology.consumer_cpu;
    for (std::size_t i = 0;
         i < config_.topology.worker_cpus.size() && i < W; ++i)
      if (config_.topology.worker_cpus[i] >= 0)
        plan.workers[i] = config_.topology.worker_cpus[i];
  }
  const bool generator_pinned =
      plan.generator >= 0 && pin_current_thread(plan.generator);
  if (generator_pinned) threads_pinned.fetch_add(1);

  // Overlay-mode state, all sized BEFORE any thread spawns so the steady
  // state stays allocation-free: one direct-mapped cache per worker (only
  // its owner touches it) and one counter block per worker (written once,
  // at worker exit; read after join).
  const bool overlay_on = config_.overlay.enabled;
  const std::uint64_t overlay_flows =
      std::max<std::uint32_t>(config_.overlay.flows, 1);
  std::vector<std::vector<CacheSlot>> caches(W);
  if (overlay_on && config_.overlay.cache) {
    const std::size_t slots =
        std::bit_ceil(std::max<std::size_t>(config_.overlay.cache_slots, 1));
    for (auto& c : caches) c.resize(slots);
  }
  struct OverlayCounts {
    std::uint64_t hits = 0, misses = 0, invals = 0, fails = 0;
  };
  std::vector<OverlayCounts> ov_counts(W);

  // Flow-state plane (churn mode): one shared FlowTable, created before
  // thread spawn. The generator inserts/sweeps; workers only touch() —
  // which never allocates — so the no-alloc steady state holds for them.
  struct FlowStat {
    std::uint64_t batches = 0;
  };
  std::unique_ptr<control::FlowTable<FlowStat>> ftable_storage;
  if (config_.flow_table.enabled) {
    ftable_storage = std::make_unique<control::FlowTable<FlowStat>>(
        control::FlowTableParams{
            config_.flow_table.shards, config_.flow_table.capacity,
            static_cast<sim::Time>(
                std::max<std::uint64_t>(config_.flow_table.ttl_batches, 1))});
  }
  control::FlowTable<FlowStat>* const ftable = ftable_storage.get();
  const std::uint64_t flow_life =
      std::max<std::uint64_t>(config_.flow_table.flow_lifetime_batches, 1);

  // NF plane: Maglev table and every state table built BEFORE thread spawn.
  // The shared table's shard mutex is the kSharedLock lock; the private
  // tables are strictly single-writer (only their owning worker touches
  // them while threads run; folded after join).
  const bool nf_on = config_.nf.enabled && !config_.nf.chain.chain.empty();
  const bool nf_shared =
      nf_on && config_.nf.strategy == nf::Strategy::kSharedLock;
  const bool nf_has_nat =
      nf_on && std::find(config_.nf.chain.chain.begin(),
                         config_.nf.chain.chain.end(),
                         nf::Kind::kNat) != config_.nf.chain.chain.end();
  const bool nf_has_lb =
      nf_on && std::find(config_.nf.chain.chain.begin(),
                         config_.nf.chain.chain.end(),
                         nf::Kind::kLoadBalancer) !=
                   config_.nf.chain.chain.end();
  const nf::MaglevTable nf_maglev =
      nf_has_lb ? nf::MaglevTable::build(config_.nf.chain.lb_backends,
                                         config_.nf.chain.lb_table_size,
                                         config_.nf.chain.lb_seed)
                : nf::MaglevTable{};
  std::unique_ptr<control::FlowTable<nf::FlowState>> nf_shared_table;
  std::vector<std::unique_ptr<control::FlowTable<nf::FlowState>>> nf_tables;
  if (nf_shared) {
    nf_shared_table = std::make_unique<control::FlowTable<nf::FlowState>>(
        control::FlowTableParams{config_.nf.shared_shards,
                                 config_.nf.state_capacity, 0});
  } else if (nf_on) {
    for (std::size_t wi = 0; wi < W; ++wi)
      nf_tables.push_back(
          std::make_unique<control::FlowTable<nf::FlowState>>(
              control::FlowTableParams{1, config_.nf.state_capacity, 0}));
  }
  struct NfCounts {
    std::uint64_t pkts = 0, rewrites = 0, rewrite_fails = 0, locks = 0;
  };
  std::vector<NfCounts> nf_counts(W);

  std::atomic<bool> produce_done{false};
  std::atomic<std::size_t> workers_done{0};
  // Packets lost to backpressure (retry budget exhausted) or injected
  // faults. The consumer terminates on consumed + dropped == total, so
  // every loss must be counted by whoever gave up on the packet.
  std::atomic<std::uint64_t> dropped{0};

  const auto t0 = std::chrono::steady_clock::now();
  // Captured once before any thread spawns; the spawn happens-before makes
  // the pointer safely visible to every worker without atomics.
  trace::Tracer* tr = trace::active();

  // Worker threads: pop a chunk from their splitting ring, "process" each
  // packet (calibrated spin), deposit the surviving chunk into their
  // buffer ring.
  std::vector<std::jthread> workers;
  workers.reserve(W);
  for (std::size_t w = 0; w < W; ++w) {
    workers.emplace_back([&, w] {
      if (plan.workers[w] >= 0 && pin_current_thread(plan.workers[w]))
        threads_pinned.fetch_add(1, std::memory_order_relaxed);
      auto& in = *split_rings[w];
      auto& drop_ring = *drop_rings[w];
      RecycleCounts& rc = rec_counts[w];
      // Drop-site slab return: per-worker SPSC ring first, CAS list only
      // on overflow (try_push moves only on success, so the fallback
      // reset() still owns the slab).
      const auto return_slab = [&](net::PacketPtr&& skb) {
        if (!skb) return;
        if (drop_ring.try_push(std::move(skb))) {
          ++rc.ring_returns;
        } else {
          skb.reset();
          ++rc.cas_fallbacks;
        }
      };
      StageCounters* const pc = prof_on ? &prof_workers[w] : nullptr;
      StallClock input_dry;
      std::uint64_t chunks_seen = 0;
      const auto w_start = std::chrono::steady_clock::now();
      util::Rng faults(config_.fault_seed + 0x9e37 * (w + 1));
      ThreadTrace wt(tr, t0, static_cast<int>(w));
      std::vector<RtPacket> chunk(kChunk);
      bool saw_last = false;
      // Pure-forwarding configuration (no tracer, no synthetic cost, no
      // fault injection, no overlay bytes to decapsulate): nothing in the
      // per-packet loop below would fire, so whole chunks can be forwarded
      // straight to the merger.
      const bool forward_only = tr == nullptr &&
                                config_.cost_ns_per_packet == 0 &&
                                config_.fault_drop_rate <= 0.0 &&
                                !overlay_on && ftable == nullptr && !nf_on;
      auto& cache = caches[w];
      const std::size_t slot_mask = cache.empty() ? 0 : cache.size() - 1;
      OverlayCounts ov;
      while (true) {
        const std::size_t n = in.try_pop_batch(chunk.data(), kChunk);
        if (n == 0) {
          if (saw_last ||
              (produce_done.load(std::memory_order_acquire) && in.empty()))
            break;
          if (pc != nullptr) input_dry.stall();
          std::this_thread::yield();
          continue;
        }
        if (pc != nullptr) {
          input_dry.resolve(pc->input_dry_episodes, pc->input_dry_ns);
          pc->items += n;
          // Sampled queue pressure on this worker's input ring (consumer-
          // side size() is exact for already-published items).
          if ((++chunks_seen & 31) == 0) {
            pc->occupancy_sum += in.size();
            ++pc->occupancy_samples;
          }
        }
        if (forward_only) {
          // The end-of-stream packet is always the final element of its
          // chunk (the generator emits in seq order).
          saw_last = saw_last || chunk[n - 1].last;
          const std::size_t ok = merger.deposit_batch(
              w, chunk.data(), n, config_.max_push_spins, pc);
          for (std::size_t i = ok; i < n; ++i) {
            dropped.fetch_add(1, std::memory_order_release);
            return_slab(std::move(chunk[i].skb));
          }
          continue;
        }
        // Process in place; compact survivors to the front of the chunk so
        // one deposit_batch publishes them all.
        std::size_t m = 0;
        std::uint64_t last_touched = 0;  // flow ids are >= 1 when tracked
        for (std::size_t i = 0; i < n; ++i) {
          RtPacket& pkt = chunk[i];
          saw_last = saw_last || pkt.last;
          wt.event(trace::EventKind::kRingDequeue, pkt.seq, pkt.batch);
          if (ftable != nullptr && !pkt.marker && pkt.skb &&
              pkt.skb->flow_id != last_touched) {
            // Replay the flow's own batch index: monotone against the
            // generator's stamp, so this keeps recency live without ever
            // perturbing the deterministic expiry order.
            ftable->touch(pkt.skb->flow_id,
                          static_cast<sim::Time>(pkt.batch));
            last_touched = pkt.skb->flow_id;
          }
          if (overlay_on && !pkt.marker && pkt.skb) {
            net::Packet& skb = *pkt.skb;
            bool spliced = false;
            if (!cache.empty()) {
              CacheSlot& slot = cache[skb.flow_id & slot_mask];
              if (slot.valid && slot.flow_id == skb.flow_id) {
                if (slot.epoch != pkt.epoch) {
                  // Rescale epoch advanced past the entry: the decision is
                  // stale by protocol, even though the bytes still match.
                  slot.valid = false;
                  ++ov.invals;
                } else {
                  const auto bytes = skb.buf.data();
                  if (bytes.size() >= net::kVxlanOverhead &&
                      bytes[kOuterSportOff] == slot.sport_hi &&
                      bytes[kOuterSportOff + 1] == slot.sport_lo &&
                      net::vxlan_splice_decap(skb, config_.overlay.vni)) {
                    ++ov.hits;
                    spliced = true;
                  }
                }
              }
            }
            if (!spliced) {
              // Slow path: full validating decap, then (re)install the
              // entry with this packet's outer template + epoch.
              const auto bytes = skb.buf.data();
              std::uint8_t hi = 0, lo = 0;
              if (bytes.size() > kOuterSportOff + 1) {
                hi = bytes[kOuterSportOff];
                lo = bytes[kOuterSportOff + 1];
              }
              const net::DecapResult res = net::vxlan_decap(skb);
              if (!res.ok || res.vni != config_.overlay.vni) {
                ++ov.fails;
              } else if (!cache.empty()) {
                ++ov.misses;
                cache[skb.flow_id & slot_mask] =
                    CacheSlot{skb.flow_id, pkt.epoch, hi, lo, true};
              }
            }
          }
          if (pkt.cost_ns > 0) spin_ns(pkt.cost_ns);
          wt.event(trace::EventKind::kStageExit, pkt.seq, pkt.batch,
                   /*aux=*/0xFF, static_cast<sim::Time>(pkt.cost_ns));
          const bool lost = !pkt.marker && config_.fault_drop_rate > 0.0 &&
                            faults.chance(config_.fault_drop_rate);
          if (lost) {
            dropped.fetch_add(1, std::memory_order_release);
            wt.event(trace::EventKind::kDrop, pkt.seq, pkt.batch);
            return_slab(std::move(pkt.skb));  // recycle the slab now
          } else {
            if (nf_on && !pkt.marker && pkt.skb) {
              // NF chain over SURVIVORS only, so the merged state counts
              // exactly the delivered stream (drops upstream of here never
              // enter it). The recency clock is the batch index, as for the
              // churn flow table; ttl is 0 so it only orders evictions.
              net::Packet& skb = *pkt.skb;
              const nf::PacketView view = nf::view_of(skb);
              const nf::MaglevTable* lb = nf_has_lb ? &nf_maglev : nullptr;
              NfCounts& nc = nf_counts[w];
              ++nc.pkts;
              std::uint16_t ext_port = 0;
              auto update = [&](nf::FlowState& st) {
                for (nf::Kind k : config_.nf.chain.chain)
                  nf::apply(config_.nf.chain, lb, k, view, st);
                ext_port = st.nat.ext_port;
              };
              if (nf_shared) {
                ++nc.locks;
                nf_shared_table->upsert_apply(
                    skb.flow_id, static_cast<sim::Time>(pkt.batch), update);
              } else {
                update(nf_tables[w]->upsert(
                    skb.flow_id, static_cast<sim::Time>(pkt.batch)));
              }
              if (nf_has_nat && overlay_on && !skb.encapsulated &&
                  ext_port != 0) {
                if (nf::nat_rewrite(config_.nf.chain, skb, ext_port))
                  ++nc.rewrites;
                else
                  ++nc.rewrite_fails;
              }
              wt.event(trace::EventKind::kNfApply, pkt.seq, pkt.batch);
            }
            if (m != i)
              chunk[m++] = std::move(pkt);
            else
              ++m;
          }
        }
        const std::size_t ok = merger.deposit_batch(
            w, chunk.data(), m, config_.max_push_spins, pc);
        // Scalar metadata survives the move into the ring, so tracing off
        // the staged entries after deposit_batch is safe.
        for (std::size_t i = 0; i < ok; ++i)
          wt.event(trace::EventKind::kReasmHold, chunk[i].seq,
                   chunk[i].batch);
        for (std::size_t i = ok; i < m; ++i) {
          dropped.fetch_add(1, std::memory_order_release);
          wt.event(trace::EventKind::kDrop, chunk[i].seq, chunk[i].batch);
          return_slab(std::move(chunk[i].skb));
        }
      }
      wt.flush();
      ov_counts[w] = ov;  // single write, read only after join
      if (pc != nullptr) {
        input_dry.resolve(pc->input_dry_episodes, pc->input_dry_ns);
        pc->recycle_cas_fallbacks = rc.cas_fallbacks;
        pc->active_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - w_start)
                .count());
      }
      workers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // Consumer thread: batch-based merge + order verification. Gap-tolerant:
  // a drop leaves a hole in the seq space, so "in order" means survivor
  // seqs strictly increase (equivalent to exact 0..N-1 when nothing drops).
  std::uint64_t consumed = 0;
  std::uint64_t next_seq_floor = 0;
  bool in_order = true;
  std::jthread consumer([&] {
    if (plan.consumer >= 0 && pin_current_thread(plan.consumer))
      threads_pinned.fetch_add(1, std::memory_order_relaxed);
    StageCounters* const cc = prof_on ? &prof_consumer : nullptr;
    StallClock merge_dry;
    std::uint64_t pops_seen = 0;
    const auto c_start = std::chrono::steady_clock::now();
    ThreadTrace ct(tr, t0, static_cast<int>(W));  // track one past workers
    std::vector<RtPacket> out(kChunk);
    std::vector<net::PacketPtr> spent(kChunk);
    while (consumed + dropped.load(std::memory_order_acquire) < total) {
      const std::size_t n = merger.pop_ready_batch(out.data(), kChunk);
      if (n == 0) {
        if (workers_done.load(std::memory_order_acquire) == W) {
          // All producers drained: a dry micro-flow boundary — whether
          // never filled or emptied by drops — can be skipped.
          merger.force_advance();
        } else {
          if (cc != nullptr) merge_dry.stall();
          std::this_thread::yield();
        }
        continue;
      }
      if (cc != nullptr) {
        merge_dry.resolve(cc->input_dry_episodes, cc->input_dry_ns);
        cc->items += n;
        // Sampled fan-in backlog (sum of all buffer-ring sizes) — the
        // merge-side queue-pressure signal.
        if ((++pops_seen & 31) == 0) {
          cc->occupancy_sum += merger.occupancy();
          ++cc->occupancy_samples;
        }
      }
      std::size_t s = 0;
      for (std::size_t k = 0; k < n; ++k) {
        RtPacket& pkt = out[k];
        if (pkt.seq < next_seq_floor) in_order = false;
        next_seq_floor = pkt.seq + 1;
        ++consumed;
        ct.event(trace::EventKind::kReasmRelease, pkt.seq, pkt.batch);
        if (on_output) on_output(pkt);
        if (pkt.skb) spent[s++] = std::move(pkt.skb);
      }
      // Copy-to-user done: hand the slabs back to the generator through the
      // recycle ring in one batched push. Overflow is fine — the handle's
      // destructor recycles through the pool free list instead.
      const std::size_t pushed = recycle_ring.try_push_batch(spent.data(), s);
      consumer_ring_returns += pushed;
      for (std::size_t k = pushed; k < s; ++k) {
        spent[k].reset();
        ++consumer_cas_fallbacks;
      }
    }
    if (cc != nullptr) {
      merge_dry.resolve(cc->input_dry_episodes, cc->input_dry_ns);
      cc->recycle_cas_fallbacks = consumer_cas_fallbacks;
      cc->active_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - c_start)
              .count());
    }
  });

  // Generator (this thread): round-robin micro-flow batches, as the
  // splitting mechanisms do. Packets are staged in chunks (never crossing
  // a micro-flow boundary, so a chunk targets exactly one worker) and
  // pushed with one batched ring operation.
  //
  // Runtime rescale: the active worker set is a prefix [0, W_active) of the
  // workers, re-evaluated only at micro-flow boundaries. Each change opens
  // a new epoch starting at the batch being opened and announces it to the
  // merger BEFORE any packet of that batch is pushed — the push's
  // release/acquire chain then guarantees the consumer sees the epoch no
  // later than the epoch's first packet.
  std::uint64_t batch = 0;
  std::uint32_t in_batch = config_.batch_size;
  std::size_t target = 0;
  std::size_t w_active = W;
  std::uint64_t epoch_first = 1;
  std::size_t rescale_idx = 0;
  std::uint64_t rescales_applied = 0;
  capacity_.active.store(static_cast<std::uint32_t>(W),
                         std::memory_order_release);
  // Shared epoch-change protocol for the deterministic schedule AND live
  // capacity requests: open a new epoch at the batch being opened,
  // announce it to the merger before any packet of that batch is pushed,
  // then close every previously-active ring with an epoch-flush marker so
  // the consumer can prove its final old-epoch batch is complete — after
  // a shrink no later batch would ever arrive there to provide the FIFO
  // evidence.
  auto apply_active = [&](std::size_t requested_workers) {
    const std::size_t nw = std::min<std::size_t>(
        std::max<std::size_t>(requested_workers, 1), W);
    if (nw == w_active) return;  // no mapping change, no epoch needed
    const std::size_t old_active = w_active;
    w_active = nw;
    epoch_first = batch;
    if (merger.announce_epoch({batch, static_cast<std::uint32_t>(w_active)}))
      ++rescales_applied;
    for (std::size_t w2 = 0; w2 < old_active; ++w2) {
      RtPacket mark;
      mark.batch = batch;
      mark.marker = true;
      auto& ring2 = *split_rings[w2];
      std::uint32_t spins2 = 0;
      while (!ring2.try_push(std::move(mark))) {
        if (config_.max_push_spins != 0 && ++spins2 >= config_.max_push_spins)
          break;  // shed: end-of-stream force_advance covers the tail
        std::this_thread::yield();
      }
    }
    capacity_.active.store(static_cast<std::uint32_t>(w_active),
                           std::memory_order_release);
  };
  ThreadTrace gt(tr, t0, static_cast<int>(W) + 1);  // generator track
  std::vector<RtPacket> stage(kChunk);
  std::vector<net::PacketPtr> stash(kChunk);  // slabs popped off recycle ring
  std::size_t stash_n = 0, stash_i = 0;
  StageCounters* const gc = prof_on ? &prof_generator : nullptr;
  StallClock pool_dry, out_full;
  std::uint64_t gen_chunks = 0;
  std::uint64_t gen_cas_acquires = 0;  // slabs drawn off the pool CAS list
  std::uint64_t i = 0;
  while (i < total) {
    if (in_batch >= config_.batch_size) {
      ++batch;
      in_batch = 0;
      while (rescale_idx < config_.rescales.size() &&
             i >= config_.rescales[rescale_idx].after_packets) {
        apply_active(config_.rescales[rescale_idx].active_workers);
        ++rescale_idx;
      }
      // Live capacity request (rt::EngineCapacityAdapter). The schedule is
      // replayed first so a test that uses both has a defined order; the
      // request wins ties since it is the operator's latest word.
      if (const std::uint32_t req =
              capacity_.requested.load(std::memory_order_acquire);
          req != 0)
        apply_active(req);
      target = static_cast<std::size_t>((batch - epoch_first) % w_active);
      if (ftable != nullptr) {
        // Register the batch's flow before any of its packets are pushed,
        // so worker touches can never race an unregistered flow into
        // being missed. The clock is the batch index.
        const net::FlowId fid =
            overlay_on ? static_cast<net::FlowId>(batch % overlay_flows + 1)
                       : static_cast<net::FlowId>(batch / flow_life + 1);
        FlowStat& fs =
            ftable->upsert(fid, static_cast<sim::Time>(batch));
        fs.batches += 1;
        ftable->touch(fid, static_cast<sim::Time>(batch));
        if (batch % std::max<std::uint64_t>(
                        config_.flow_table.sweep_every, 1) ==
            0)
          ftable->expire_idle(static_cast<sim::Time>(batch));
      }
    }
    const std::uint64_t room_in_batch = config_.batch_size - in_batch;
    const std::uint64_t want =
        std::min<std::uint64_t>({kChunk, room_in_batch, total - i});

    // Stage `want` packets, acquiring one slab each: recycle ring first
    // (batched pop into the stash), pool free list second, bounded
    // spin-wait third. A packet that never gets a slab is shed here.
    std::size_t staged = 0;
    for (std::uint64_t k = 0; k < want; ++k, ++i, ++in_batch) {
      net::PacketPtr skb;
      std::uint32_t spins = 0;
      for (;;) {
        if (stash_i == stash_n) {
          stash_n = recycle_ring.try_pop_batch(stash.data(), kChunk);
          stash_i = 0;
          // Top up from the per-worker drop-return rings on EVERY refill
          // (not just when the main ring is dry): the drop rings are small,
          // so sweeping them each refill keeps them from overflowing to
          // the pool's CAS list. One consumer (this thread) over N SPSC
          // rings — same fan-in shape as the merge side; an empty ring
          // costs one cached-index check.
          for (std::size_t w2 = 0; stash_n < kChunk && w2 < W; ++w2)
            stash_n += drop_rings[w2]->try_pop_batch(stash.data() + stash_n,
                                                     kChunk - stash_n);
        }
        if (stash_i < stash_n) {
          skb = std::move(stash[stash_i++]);
          break;
        }
        if ((skb = pool.acquire())) {
          ++gen_cas_acquires;
          break;
        }
        if (gc != nullptr) pool_dry.stall();
        if (config_.max_push_spins != 0 &&
            ++spins >= config_.max_push_spins)
          break;
        std::this_thread::yield();
      }
      if (gc != nullptr)
        pool_dry.resolve(gc->pool_dry_episodes, gc->pool_dry_ns);
      gt.event(trace::EventKind::kSplitDeposit, i, batch,
               static_cast<std::uint64_t>(target));
      if (!skb) {
        // Pool stayed dry past the retry budget: shed the packet here
        // rather than wedging the generator.
        dropped.fetch_add(1, std::memory_order_release);
        gt.event(trace::EventKind::kDrop, i, batch);
        continue;
      }
      if (overlay_on) {
        // Build REAL encapsulated bytes into the slab: inner Eth/IPv4/UDP
        // (42 bytes) plus the 50-byte VXLAN outer stack, all within the
        // slab's reserved capacity — allocation-free. Each micro-flow
        // batch belongs to one inner flow, so flow identity (and the
        // worker-side cache key) survives the round-robin split.
        const std::uint64_t fidx = batch % overlay_flows;
        skb = net::make_udp_datagram(
            std::move(skb),
            net::FlowKey{net::Ipv4Addr(10, 0, 1, 2),
                         net::Ipv4Addr(10, 0, 1, 3),
                         static_cast<std::uint16_t>(40000 + (fidx & 0x3FFF)),
                         5000, net::Ipv4Header::kProtoUdp},
            net::kTcpMss);
        net::vxlan_encap(*skb, net::Ipv4Addr(192, 168, 1, 2),
                         net::Ipv4Addr(192, 168, 1, 3), config_.overlay.vni);
        skb->flow_id = static_cast<net::FlowId>(fidx + 1);
        skb->wire_seq = i;
        skb->microflow_id = batch;
      } else {
        // Stamp the skb the way the splitter stamps real packets. With the
        // flow table on, flow identity follows the churn generator (a new
        // flow every flow_lifetime_batches) instead of being per-batch.
        skb->flow_id = ftable != nullptr
                           ? static_cast<net::FlowId>(batch / flow_life + 1)
                           : static_cast<net::FlowId>(batch);
        skb->wire_seq = i;
        skb->microflow_id = batch;
        skb->payload_len = net::kTcpMss;
        if (nf_on) {
          // Give each flow a distinct 5-tuple so the NF bindings (NAT
          // port, LB backend) are per-flow functions, as with real bytes.
          skb->flow = net::FlowKey{
              net::Ipv4Addr(10, 0, 1, 2), net::Ipv4Addr(10, 0, 1, 3),
              static_cast<std::uint16_t>(40000 + (skb->flow_id & 0x3FFF)),
              5000, net::Ipv4Header::kProtoUdp};
        }
      }
      stage[staged++] = RtPacket{i, batch, config_.cost_ns_per_packet,
                                 static_cast<std::uint32_t>(rescales_applied),
                                 i + 1 == total, std::move(skb)};
    }

    // Push the staged chunk; a full ring is retried (with yield) within
    // the shared budget, then the unpushed tail is shed.
    auto& ring = *split_rings[target];
    std::size_t done = 0;
    std::uint32_t spins = 0;
    while (done < staged) {
      const std::size_t n =
          ring.try_push_batch(stage.data() + done, staged - done);
      done += n;
      if (done == staged) break;
      if (n == 0) {
        if (gc != nullptr) out_full.stall();
        if (config_.max_push_spins != 0 &&
            ++spins >= config_.max_push_spins)
          break;
        std::this_thread::yield();
      }
    }
    for (std::size_t k = done; k < staged; ++k) {
      dropped.fetch_add(1, std::memory_order_release);
      gt.event(trace::EventKind::kDrop, stage[k].seq, stage[k].batch);
      stage[k].skb.reset();
    }
    if (gc != nullptr) {
      out_full.resolve(gc->output_full_episodes, gc->output_full_ns);
      gc->items += done;
      // Sampled fan-out pressure on the split ring just written to.
      if ((++gen_chunks & 31) == 0) {
        gc->occupancy_sum += ring.size();
        ++gc->occupancy_samples;
      }
    }
  }
  produce_done.store(true, std::memory_order_release);
  gt.flush();
  if (gc != nullptr) {
    gc->recycle_cas_fallbacks = gen_cas_acquires;
    gc->active_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  // Slabs parked in the stash go back to the pool before the consumer's
  // recycle pushes are cut off.
  for (std::size_t k = stash_i; k < stash_n; ++k) stash[k].reset();

  consumer.join();
  workers.clear();  // join all
  const auto t1 = std::chrono::steady_clock::now();
  if (generator_pinned) unpin_current_thread();

  EngineResult res;
  res.packets = consumed;
  res.packets_dropped = dropped.load(std::memory_order_acquire);
  res.batches_merged = merger.batches_merged();
  res.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  res.in_order = in_order && consumed + res.packets_dropped == total;
  res.pool_acquired = pool.acquired();
  res.pool_recycled = pool.recycled();
  res.pool_exhausted = pool.exhausted();
  res.rescales_applied = rescales_applied;
  res.active_workers_final = static_cast<std::uint32_t>(w_active);
  for (const auto& ov : ov_counts) {
    res.cache_hits += ov.hits;
    res.cache_misses += ov.misses;
    res.cache_invalidations += ov.invals;
    res.decap_failures += ov.fails;
  }
  if (ftable != nullptr) {
    res.flow_table.peak = ftable->peak_size();
    res.flow_table.expired = ftable->expirations();
    res.flow_table.live = ftable->size();
  }
  if (nf_on) {
    for (const auto& nc : nf_counts) {
      res.nf_packets += nc.pkts;
      res.nf_nat_rewrites += nc.rewrites;
      res.nf_nat_rewrite_failures += nc.rewrite_fails;
      res.nf_lock_acquires += nc.locks;
    }
    // Fold every table (shared, or one replica per worker) into the merged
    // per-flow state; the fold is exact because nf::FlowState is a lattice.
    std::map<net::FlowId, nf::FlowState> merged;
    const auto fold = [&merged](net::FlowId fid, const nf::FlowState& st) {
      nf::merge(merged[fid], st);
    };
    if (nf_shared_table) nf_shared_table->for_each(fold);
    for (const auto& t : nf_tables) t->for_each(fold);
    res.nf_flows = merged.size();
    std::uint64_t h = 0;
    res.nf_state.reserve(merged.size());
    for (const auto& [fid, st] : merged) {
      h = nf::fold_digest(h, fid, st);
      res.nf_state.emplace_back(fid, st);
    }
    res.nf_state_digest = h;
  }
  // Recycle-fabric split: ring-path returns vs CAS-list fallbacks, summed
  // over every thread that touched a slab return path.
  for (const auto& rc : rec_counts) {
    res.recycle_ring_returns += rc.ring_returns;
    res.recycle_cas_fallbacks += rc.cas_fallbacks;
  }
  res.recycle_ring_returns += consumer_ring_returns;
  res.recycle_cas_fallbacks += consumer_cas_fallbacks + gen_cas_acquires;
  res.threads_pinned = threads_pinned.load(std::memory_order_acquire);
  if (prof_on) {
    res.profile.enabled = true;
    res.profile.workers = W;
    res.profile.wall_seconds = res.wall_seconds;
    res.profile.generator = prof_generator;
    res.profile.consumer = prof_consumer;
    res.profile.worker = std::move(prof_workers);
  }
  return res;
}

}  // namespace mflow::rt
