#include "rt/engine.hpp"

#include <atomic>
#include <chrono>

#include "rt/calibrate.hpp"

namespace mflow::rt {

EngineResult Engine::run(
    std::uint64_t total,
    const std::function<void(const RtPacket&)>& on_output) {
  const std::size_t W = config_.workers;
  std::vector<std::unique_ptr<SpscRing<RtPacket>>> split_rings;
  for (std::size_t i = 0; i < W; ++i)
    split_rings.push_back(
        std::make_unique<SpscRing<RtPacket>>(config_.ring_capacity));
  RtReassembler merger(W, config_.ring_capacity);

  std::atomic<bool> produce_done{false};
  std::atomic<std::size_t> workers_done{0};

  const auto t0 = std::chrono::steady_clock::now();

  // Worker threads: pop from their splitting ring, "process" (calibrated
  // spin), deposit into their buffer ring.
  std::vector<std::jthread> workers;
  workers.reserve(W);
  for (std::size_t w = 0; w < W; ++w) {
    workers.emplace_back([&, w] {
      auto& in = *split_rings[w];
      while (true) {
        if (auto pkt = in.try_pop()) {
          if (pkt->cost_ns > 0) spin_ns(pkt->cost_ns);
          merger.deposit(w, *pkt);
          if (pkt->last) break;
        } else if (produce_done.load(std::memory_order_acquire) &&
                   in.empty()) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
      workers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // Consumer thread: batch-based merge + order verification.
  std::uint64_t consumed = 0;
  std::uint64_t expected_seq = 0;
  bool in_order = true;
  std::jthread consumer([&] {
    while (consumed < total) {
      if (auto pkt = merger.pop_ready()) {
        if (pkt->seq != expected_seq) in_order = false;
        ++expected_seq;
        ++consumed;
        if (on_output) on_output(*pkt);
      } else if (workers_done.load(std::memory_order_acquire) == W) {
        // All producers drained: a dry micro-flow boundary can be skipped.
        merger.force_advance();
      } else {
        std::this_thread::yield();
      }
    }
  });

  // Generator (this thread): round-robin micro-flow batches, as the
  // splitting mechanisms do.
  std::uint64_t batch = 0;
  std::uint32_t in_batch = config_.batch_size;
  std::size_t target = W - 1;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (in_batch >= config_.batch_size) {
      ++batch;
      in_batch = 0;
      target = (target + 1) % W;
    }
    ++in_batch;
    RtPacket pkt{i, batch, config_.cost_ns_per_packet, i + 1 == total};
    auto& ring = *split_rings[target];
    while (!ring.try_push(pkt)) std::this_thread::yield();
  }
  produce_done.store(true, std::memory_order_release);

  consumer.join();
  workers.clear();  // join all
  const auto t1 = std::chrono::steady_clock::now();

  EngineResult res;
  res.packets = consumed;
  res.batches_merged = merger.batches_merged();
  res.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  res.in_order = in_order && consumed == total;
  return res;
}

}  // namespace mflow::rt
