// rt::RtMergeStreamView — the real-thread reassembler's adapter onto the
// shared control::MergeStream concept (control/reassembly.hpp).
//
// Single-threaded view (test harness / drain checks): deposit routes each
// packet to the ring its batch owns under the current epoch table, exactly
// as the engine's generator would target the owning worker. The cross-
// engine ordering/conservation helpers in tests/test_control.cpp run
// against this and core::MergeStreamView with the same code.
#pragma once

#include <optional>
#include <utility>

#include "control/reassembly.hpp"
#include "rt/reassembler.hpp"

namespace mflow::rt {

class RtMergeStreamView {
 public:
  using Item = RtPacket;

  explicit RtMergeStreamView(RtReassembler& merger) : m_(&merger) {}

  bool deposit(Item item) {
    const std::size_t w = m_->owner_of(item.batch);
    // One retry round only: a full ring refuses (bounded backpressure),
    // matching the engine's shed-don't-wedge contract.
    return m_->deposit(w, std::move(item), /*max_spins=*/1);
  }

  std::optional<Item> pop() { return m_->pop_ready(); }

  void note_drop(std::uint64_t batch, std::uint32_t segs) {
    m_->note_drop(batch, segs);
  }

  std::pair<std::uint64_t, std::uint64_t> descriptor(const Item& item) const {
    return {item.seq, item.batch};
  }

  std::uint64_t batches_merged() const { return m_->batches_merged(); }
  bool drained() const { return m_->drained(); }

 private:
  RtReassembler* m_;
};

static_assert(control::MergeStream<RtMergeStreamView>);

}  // namespace mflow::rt
