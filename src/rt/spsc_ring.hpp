// Lock-free single-producer/single-consumer ring buffer.
//
// The real-thread MFLOW engine (rt/engine.hpp) moves every packet through
// these: splitter -> worker and worker -> merger are each strictly SPSC,
// exactly like the per-core, per-device splitting queues and buffer queues
// of the paper — so no multi-producer machinery is needed anywhere.
//
// Performance shape (the full contract is written up in
// docs/PERFORMANCE.md §SPSC):
//
//  - head_ (producer-owned) and tail_ (consumer-owned) live on separate
//    cache lines, each padded to a full line together with the OTHER side's
//    cached index, so the two threads never false-share;
//  - each side keeps a cached copy of the opposite index (`cached_tail_` on
//    the producer line, `cached_head_` on the consumer line) and only
//    re-reads the shared atomic when the cache says the ring LOOKS full/
//    empty — the common-case push/pop touches no foreign cache line at all;
//  - try_push_batch / try_pop_batch amortize the one acquire-load and one
//    release-store across a whole batch, which is where the engine gets its
//    paper-style batching win.
//
// Memory ordering: the producer publishes slots with a release store of
// head_; the consumer observes them with an acquire load, and symmetrically
// for tail_. Cached indices are conservative (stale values only under-
// estimate available space/items), so they need no ordering of their own.
// Indices are monotonically increasing uint64 (no wrap handling needed in
// practice); capacity must be a power of two — enforced with a hard error
// in ALL build types, because a silent non-power-of-2 mask corrupts data.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace mflow::rt {

template <typename T>
class SpscRing {
 public:
  /// Capacity must be a power of two; throws std::invalid_argument
  /// otherwise (hard error even in release builds — see file header).
  explicit SpscRing(std::size_t capacity_pow2)
      : mask_(capacity_pow2 - 1), slots_(capacity_pow2) {
    if (capacity_pow2 == 0 || !std::has_single_bit(capacity_pow2)) {
      throw std::invalid_argument(
          "SpscRing capacity must be a non-zero power of two");
    }
  }

  /// Producer side. Returns false when full (caller decides to spin/yield).
  bool try_push(const T& value) { return emplace(value); }

  /// Rvalue push: `value` is moved from ONLY on success — on a full ring it
  /// is left intact, so callers holding move-only handles (net::PacketPtr)
  /// can retry without losing the packet.
  bool try_push(T&& value) { return emplace(std::move(value)); }

  /// Push up to `count` items from `items`; returns how many were moved in
  /// (the first `n` elements — the rest are untouched). One release store
  /// publishes the whole batch.
  std::size_t try_push_batch(T* items, std::size_t count) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t space = capacity() - static_cast<std::size_t>(head - cached_tail_);
    if (space < count) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      space = capacity() - static_cast<std::size_t>(head - cached_tail_);
      if (space == 0) return 0;
    }
    const std::size_t n = count < space ? count : space;
    if (n == 0) return 0;  // count == 0: no no-op release store (see §ring
                           // fan-in note in docs/SCALING.md)
    for (std::size_t i = 0; i < n; ++i)
      slots_[(head + i) & mask_] = std::move(items[i]);
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return std::nullopt;
    }
    std::optional<T> value(std::move(slots_[tail & mask_]));
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Pop up to `max` items into `out`; returns how many were written. One
  /// release store frees the whole batch for the producer.
  ///
  /// Cached-index contract on this path (audited for the fan-in fabric,
  /// where one consumer thread batch-drains MANY rings): the cached head
  /// is refreshed with an acquire load whenever it cannot satisfy the full
  /// `max` request, so a short return value always reflects a fresh view
  /// of the producer's published index — there is no window in which items
  /// already published release-side stay invisible to a caller that asked
  /// for them. A stale cache can only ever UNDER-report (the next call
  /// refreshes), never fabricate items.
  std::size_t try_pop_batch(T* out, std::size_t max) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(cached_head_ - tail);
    if (avail < max) {
      cached_head_ = head_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(cached_head_ - tail);
      if (avail == 0) return 0;
    }
    const std::size_t n = max < avail ? max : avail;
    if (n == 0) return 0;  // max == 0: a no-op release store of tail_ would
                           // needlessly dirty the line producers poll
    for (std::size_t i = 0; i < n; ++i)
      out[i] = std::move(slots_[(tail + i) & mask_]);
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Pop consecutive head items while `pred(item)` holds, up to `max`.
  /// The first item that fails the predicate stays in the ring (along with
  /// everything behind it). One release store frees the accepted prefix —
  /// this is how the merger consumes a micro-flow run without giving up
  /// batching at batch boundaries. Consumer-only.
  template <typename Pred>
  std::size_t try_pop_batch_while(T* out, std::size_t max, Pred&& pred) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(cached_head_ - tail);
    if (avail < max) {
      cached_head_ = head_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(cached_head_ - tail);
      if (avail == 0) return 0;
    }
    const std::size_t n = max < avail ? max : avail;
    std::size_t i = 0;
    for (; i < n; ++i) {
      T& slot = slots_[(tail + i) & mask_];
      if (!pred(static_cast<const T&>(slot))) break;
      out[i] = std::move(slot);
    }
    if (i != 0) tail_.store(tail + i, std::memory_order_release);
    return i;
  }

  /// Consumer-side peek without consuming (used by the batch merger to
  /// detect batch boundaries). The reference stays valid until try_pop().
  /// Consumer-only (updates the consumer's cached head index).
  const T* peek() {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return nullptr;
    }
    return &slots_[tail & mask_];
  }

  /// Snapshot of current occupancy; exact only from producer or consumer.
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  template <typename U>
  bool emplace(U&& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false;
    }
    slots_[head & mask_] = std::forward<U>(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Read-mostly header (shared by both sides, never written after ctor).
  std::size_t mask_;
  std::vector<T> slots_;

  // Producer-owned line: published index + cached view of the consumer's.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_{0};

  // Consumer-owned line, padded so nothing trails into a third shared line.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_{0};
  char pad_[64 - 2 * sizeof(std::uint64_t)];
};

}  // namespace mflow::rt
