// Lock-free single-producer/single-consumer ring buffer.
//
// The real-thread MFLOW engine (rt/engine.hpp) moves every packet through
// these: splitter -> worker and worker -> merger are each strictly SPSC,
// exactly like the per-core, per-device splitting queues and buffer queues
// of the paper — so no multi-producer machinery is needed anywhere.
//
// Memory ordering: the producer publishes with a release store of head_; the
// consumer observes with an acquire load, and vice versa for tail_. Indices
// are monotonically increasing uint64 (no wrap handling needed in practice);
// capacity must be a power of two.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

namespace mflow::rt {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_pow2)
      : mask_(capacity_pow2 - 1), slots_(capacity_pow2) {
    assert(std::has_single_bit(capacity_pow2));
  }

  /// Producer side. Returns false when full (caller decides to spin/yield).
  bool try_push(T value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Consumer-side peek without consuming (used by the batch merger to
  /// detect batch boundaries). The reference stays valid until try_pop().
  const T* peek() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return nullptr;
    return &slots_[tail & mask_];
  }

  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  alignas(64) std::atomic<std::uint64_t> head_{0};  // producer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // consumer-owned
  std::size_t mask_;
  std::vector<T> slots_;
};

}  // namespace mflow::rt
