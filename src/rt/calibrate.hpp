// Spin-work calibration: converts "nanoseconds of packet-processing cost"
// into busy-loop iterations on this machine, so the real-thread engine's
// stage costs are wall-clock meaningful.
#pragma once

#include <cstdint>

namespace mflow::rt {

/// Busy-spin performing `iters` dependent integer operations; returns a
/// value the compiler cannot elide.
std::uint64_t spin(std::uint64_t iters);

/// Measured iterations-per-nanosecond of spin() on this host (memoized on
/// first call; thread-safe).
double spin_iters_per_ns();

/// Busy-work approximating `ns` nanoseconds of CPU.
inline std::uint64_t spin_ns(double ns) {
  return spin(static_cast<std::uint64_t>(ns * spin_iters_per_ns()) + 1);
}

}  // namespace mflow::rt
