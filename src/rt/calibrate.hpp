// Spin-work calibration: converts "nanoseconds of packet-processing cost"
// into busy-loop iterations on this machine, so the real-thread engine's
// stage costs are wall-clock meaningful.
//
// The engine charges each packet `cost_ns` of synthetic processing
// (rt/engine.hpp); spin() burns that time as a dependent integer chain the
// compiler cannot elide or vectorize away. The iterations-per-nanosecond
// rate is measured once per process (thread-safe memoization) — cheap, but
// it makes the very first engine run slightly slower, which is why the
// bench harness's warmup runs matter (docs/BENCHMARKS.md).
//
// Accuracy: calibration is best-effort wall-clock — on a loaded or
// frequency-scaling host the realized spin can deviate from the requested
// nanoseconds. Benchmarks treat cost=0 (pure framework overhead) and
// cost>0 (calibrated work) as separate regimes for exactly this reason.
#pragma once

#include <cstdint>

namespace mflow::rt {

/// Busy-spin performing `iters` dependent integer operations; returns a
/// value the compiler cannot elide.
std::uint64_t spin(std::uint64_t iters);

/// Measured iterations-per-nanosecond of spin() on this host (memoized on
/// first call; thread-safe).
double spin_iters_per_ns();

/// Busy-work approximating `ns` nanoseconds of CPU.
inline std::uint64_t spin_ns(double ns) {
  return spin(static_cast<std::uint64_t>(ns * spin_iters_per_ns()) + 1);
}

}  // namespace mflow::rt
