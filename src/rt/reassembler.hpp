// Real-thread batch-based reassembler.
//
// Mirrors core/reassembler.hpp with real concurrency: each worker deposits
// into its own SPSC buffer ring; the consumer thread walks micro-flows in ID
// order, consuming from the owning worker's ring. Batch ownership is
// implied by the splitter's round-robin, so the consumer needs no shared
// mutable state beyond the rings themselves — the "global merging counter"
// is consumer-private, exactly as recvmsg-context merging is in the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rt/spsc_ring.hpp"

namespace mflow::rt {

struct RtPacket {
  std::uint64_t seq = 0;       // position in the original flow
  std::uint64_t batch = 0;     // micro-flow id (1-based)
  std::uint32_t cost_ns = 0;   // synthetic per-packet processing cost
  bool last = false;           // end-of-stream marker
};

class RtReassembler {
 public:
  RtReassembler(std::size_t workers, std::size_t ring_capacity_pow2);

  /// Worker `w` deposits a processed packet (SPSC per worker).
  /// A full ring is retried (with yield) at most `max_spins` times;
  /// 0 means retry forever. Returns false when the retry budget is
  /// exhausted — the caller owns the loss and must account for it so the
  /// consumer's conservation check still terminates.
  [[nodiscard]] bool deposit(std::size_t w, const RtPacket& pkt,
                             std::uint32_t max_spins = 0);

  /// Consumer: next packet in original flow order, or nullopt if the head
  /// of the current micro-flow hasn't arrived yet.
  std::optional<RtPacket> pop_ready();

  std::uint64_t batches_merged() const { return batches_merged_; }

  /// End-of-stream only: skip a micro-flow whose ring is dry after all
  /// producers finished (a batch boundary that will never see more input).
  void force_advance();

 private:
  std::size_t owner_of(std::uint64_t batch) const {
    return static_cast<std::size_t>((batch - 1) % rings_.size());
  }

  std::vector<std::unique_ptr<SpscRing<RtPacket>>> rings_;
  std::uint64_t merge_counter_ = 1;  // consumer-private
  std::uint64_t batches_merged_ = 0;
};

}  // namespace mflow::rt
