// Real-thread batch-based reassembler.
//
// Mirrors core/reassembler.hpp with real concurrency: each worker deposits
// into its own SPSC buffer ring; the consumer thread walks micro-flows in ID
// order, consuming from the owning worker's ring. Batch ownership is
// implied by the splitter's round-robin, so the consumer needs no shared
// mutable state beyond the rings themselves — the "global merging counter"
// is consumer-private, exactly as recvmsg-context merging is in the paper.
//
// Packets are MOVE-ONLY: each RtPacket carries its pooled skb
// (net::PacketPtr, see rt/pool.hpp), so a deposit transfers slab ownership
// worker → consumer and a dropped deposit recycles the slab automatically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "rt/profiler.hpp"
#include "rt/spsc_ring.hpp"

namespace mflow::rt {

/// One unit of work flowing splitter -> worker -> merger. Move-only once an
/// skb is attached (PacketPtr), but remains an aggregate so tests can brace-
/// initialize metadata-only packets (skb == nullptr is legal everywhere).
struct RtPacket {
  std::uint64_t seq = 0;       // position in the original flow
  std::uint64_t batch = 0;     // micro-flow id (1-based)
  std::uint32_t cost_ns = 0;   // synthetic per-packet processing cost
  /// Rescale epoch the generator stamped this packet with (count of applied
  /// EngineConfig::rescales at staging time). The overlay fast path keys
  /// cache validity on it: a worker seeing a newer epoch than its cached
  /// entry re-resolves through the full decap, so a split-degree change
  /// never applies a stale decision.
  std::uint32_t epoch = 0;
  bool last = false;           // end-of-stream marker
  net::PacketPtr skb;          // pooled packet buffer (may be null)
  /// Epoch-flush marker (never delivered): `batch` holds the NEW epoch's
  /// first batch id, and its position in a worker's FIFO proves every
  /// older batch on that ring is fully deposited. Closes the completion
  /// gap on rings a shrink leaves inactive — without it the consumer could
  /// never distinguish "last batch done" from "more packets in flight".
  bool marker = false;
};

class RtReassembler {
 public:
  /// Batch-ownership epoch: batches >= first_batch round-robin over the
  /// first `workers` buffer rings. Epochs are how the engine rescales its
  /// active worker set at runtime — a control message on an internal SPSC
  /// ring, never a shared mutable mapping.
  struct Epoch {
    std::uint64_t first_batch = 1;
    std::uint32_t workers = 0;
  };

  /// `workers` buffer rings, each `ring_capacity_pow2` deep (power of two,
  /// enforced by SpscRing's constructor). Up to `max_epochs` rescale
  /// announcements are accepted over the reassembler's lifetime (storage is
  /// pre-reserved so applying them allocates nothing).
  RtReassembler(std::size_t workers, std::size_t ring_capacity_pow2,
                std::size_t max_epochs = 64);

  /// Worker `w` deposits a processed packet (SPSC per worker).
  /// A full ring is retried (with yield) at most `max_spins` times;
  /// 0 means retry forever. Returns false when the retry budget is
  /// exhausted — `pkt` is then left INTACT (its skb is not consumed), and
  /// the caller owns the loss and must account for it so the consumer's
  /// conservation check still terminates.
  [[nodiscard]] bool deposit(std::size_t w, RtPacket&& pkt,
                             std::uint32_t max_spins = 0);

  /// Deposit `count` packets from `pkts` in order; returns how many were
  /// accepted (a prefix — the rest are left intact for the caller to retry
  /// or drop). Amortizes ring atomics across the batch; spins/yields like
  /// deposit() only when the ring is full mid-batch.
  ///
  /// `prof` (optional): full-ring stall episodes inside the deposit are
  /// charged to `prof->output_full_*` — the fan-in fabric's
  /// merge-backpressure signal (rt::StageCounters; nullptr = no telemetry,
  /// no clock reads).
  [[nodiscard]] std::size_t deposit_batch(std::size_t w, RtPacket* pkts,
                                          std::size_t count,
                                          std::uint32_t max_spins = 0,
                                          StageCounters* prof = nullptr);

  /// Consumer: next packet in original flow order, or nullopt if the head
  /// of the current micro-flow hasn't arrived yet.
  std::optional<RtPacket> pop_ready();

  /// Consumer: pop up to `max` in-order packets into `out`, crossing
  /// micro-flow boundaries when the next micro-flow's head has already
  /// arrived. Returns how many were written; 0 means the merge head is dry
  /// (same condition as pop_ready() == nullopt). Amortizes ring atomics
  /// across whole micro-flow runs — the consumer-side twin of
  /// deposit_batch().
  std::size_t pop_ready_batch(RtPacket* out, std::size_t max);

  /// Micro-flows fully merged so far (consumer-private counter).
  std::uint64_t batches_merged() const { return batches_merged_; }

  /// End-of-stream only: skip a micro-flow whose ring is dry after all
  /// producers finished (a batch boundary that will never see more input).
  void force_advance();

  /// Producer side (the splitter/generator thread): all batches from
  /// `first_batch` on round-robin over the first `e.workers` rings. MUST be
  /// announced before any packet of `first_batch` is pushed toward the
  /// workers — the consumer observes packets only through an
  /// acquire/release chain rooted at that push, so the announcement is then
  /// guaranteed visible by the time the merge counter reaches the epoch.
  /// Returns false when the epoch budget (`max_epochs`) is exhausted.
  [[nodiscard]] bool announce_epoch(Epoch e);

  /// Consumer side: ring index owning `batch` under the epochs applied so
  /// far (drains pending announcements first).
  std::size_t owner_of(std::uint64_t batch);

  /// A packet of `batch` was dropped before its deposit; informational —
  /// the rt merge never stalls on holes (per-worker FIFO implies batch
  /// completion), so this only feeds accounting.
  void note_drop(std::uint64_t batch, std::uint32_t segs) {
    drops_noted_ += segs;
    (void)batch;
  }
  std::uint64_t drops_noted() const { return drops_noted_; }

  /// All buffer rings empty — nothing deposited awaits merging. Quiescent
  /// use only (consumer idle): the rescale-drain completion condition.
  bool drained() const;

  /// Total packets currently buffered across all fan-in rings. Approximate
  /// from any thread (each ring's size is a racy-but-monotone snapshot);
  /// the scalability profiler samples it as the merge-side queue-pressure
  /// signal.
  std::size_t occupancy() const;

 private:
  /// Drain pending epoch announcements into the applied table. Called on
  /// every consumer lookup: cost is one empty-check on the epoch ring.
  void apply_epochs();

  std::vector<std::unique_ptr<SpscRing<RtPacket>>> rings_;
  std::uint64_t merge_counter_ = 1;  // consumer-private
  std::uint64_t batches_merged_ = 0;
  std::uint64_t drops_noted_ = 0;

  SpscRing<Epoch> epoch_ring_;
  std::vector<Epoch> epochs_;  // applied, ascending first_batch; reserved
  std::size_t max_epochs_;
  std::size_t announced_ = 0;  // producer-private budget counter
};

}  // namespace mflow::rt
