#include "rt/calibrate.hpp"

#include <atomic>
#include <chrono>
#include <mutex>

namespace mflow::rt {

std::uint64_t spin(std::uint64_t iters) {
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x *= 0x2545F4914F6CDD1DULL;
  }
  // Publish through an atomic so the loop is not dead code.
  static std::atomic<std::uint64_t> sink{0};
  sink.store(x, std::memory_order_relaxed);
  return x;
}

double spin_iters_per_ns() {
  static std::once_flag flag;
  static double rate = 1.0;
  std::call_once(flag, [] {
    using clock = std::chrono::steady_clock;
    constexpr std::uint64_t kIters = 2'000'000;
    // Warm up, then measure.
    spin(kIters / 10);
    const auto t0 = clock::now();
    spin(kIters);
    const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        clock::now() - t0)
                        .count();
    rate = dt > 0 ? static_cast<double>(kIters) / static_cast<double>(dt)
                  : 1.0;
  });
  return rate;
}

}  // namespace mflow::rt
