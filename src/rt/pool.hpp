// Slab pool of net::Packet objects — the allocator the hot paths use
// instead of the heap (docs/PERFORMANCE.md has the lifecycle diagram).
//
// Kernel-bypass stacks (DPDK mempools, and the openNetVM/NFOS designs this
// mirrors) pre-allocate every packet buffer at startup and move fixed-size
// slabs between free list and pipeline for the life of the process. This
// pool does the same for both engines in this repo:
//
//  - the rt engine (rt/engine.hpp) acquires a slab per generated packet and
//    recycles it at copy-to-user (the consumer) or at any drop point, so
//    steady-state processing performs ZERO heap allocations — enforced by
//    the allocation-counting guard in tests/test_pool.cpp;
//  - the DES workload senders (workload/sender.hpp) rebuild TCP segments /
//    UDP datagrams into recycled slabs, closing the sender → stack →
//    copy-to-user → sender loop without touching the allocator.
//
// Ownership is RAII: acquire() returns an ordinary net::PacketPtr whose
// deleter points back at this pool, so a pooled packet recycles itself no
// matter where it dies. Misuse fails loudly: releasing a slab twice aborts
// (in every build type), and a leaked slab is a visible leak under ASan at
// pool destruction via in_use().
//
// Thread safety: acquire() and recycle() are lock-free (a tagged Treiber
// stack over pre-allocated nodes — no ABA, nothing is ever freed) and may
// be called from any thread concurrently; the rt engine releases from its
// consumer and worker threads while the generator acquires.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace mflow::rt {

struct PoolConfig {
  /// Number of packet slabs pre-allocated at construction.
  std::size_t slabs = 4096;
  /// Backing bytes reserved per slab buffer (headroom included). 256 covers
  /// the deepest header stack in the repo (64B headroom + inner Eth/IPv4/
  /// TCP + 50B VXLAN outer) with slack; an append beyond this still works
  /// but reallocates, breaking the zero-allocation invariant.
  std::size_t buffer_bytes = 256;
  /// Headroom restored on every recycle (matches PacketBuffer's default).
  std::size_t headroom = 64;
};

class PacketPool final : public net::PacketRecycler {
 public:
  explicit PacketPool(PoolConfig cfg = {});
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Pop a slab from the free list, reset to pristine state. Returns null
  /// when the pool is exhausted — callers backpressure (rt engine) or fall
  /// back to the heap (DES senders); the pool NEVER allocates on demand.
  net::PacketPtr acquire();

  /// Return a slab (called by PacketDeleter when a pooled PacketPtr dies).
  /// Releasing a slab that is already free, or a packet this pool does not
  /// own, aborts — ownership bugs must not silently corrupt the free list.
  void recycle(net::Packet* pkt) noexcept override;

  const PoolConfig& config() const { return cfg_; }
  std::size_t capacity() const { return slots_.size(); }
  /// Slabs currently handed out (capacity - free). Exact only when no
  /// other thread is mid-acquire/recycle.
  std::size_t in_use() const;

  // Monotonic counters (relaxed; for stats surfaces and benches).
  std::uint64_t acquired() const {
    return acquired_.load(std::memory_order_relaxed);
  }
  std::uint64_t recycled() const {
    return recycled_.load(std::memory_order_relaxed);
  }
  /// acquire() calls that found the free list empty.
  std::uint64_t exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

 private:
  // Free list: Treiber stack of slot indices. `head_` packs a 32-bit slot
  // index with a 32-bit version tag so a concurrent pop/push/pop of the
  // same slot cannot ABA the list.
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static std::uint64_t pack(std::uint32_t index, std::uint32_t tag) {
    return (static_cast<std::uint64_t>(tag) << 32) | index;
  }
  static std::uint32_t index_of(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed);
  }
  static std::uint32_t tag_of(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed >> 32);
  }

  struct Slot {
    net::Packet pkt;
    std::atomic<std::uint32_t> next{kNil};  // free-list link (slot index)
    std::atomic<bool> live{false};          // handed out right now?
  };

  PoolConfig cfg_;
  std::vector<Slot> slots_;
  alignas(64) std::atomic<std::uint64_t> head_;
  alignas(64) std::atomic<std::size_t> free_count_;
  std::atomic<std::uint64_t> acquired_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> exhausted_{0};
};

}  // namespace mflow::rt
