// Scalability profiler: per-stage stall/occupancy counters and contention
// attribution for the rt engine.
//
// "Runs on N cores" becomes "scales on N cores" only when lost throughput
// has a name. Every pipeline thread (generator, each worker, consumer)
// owns one cache-line-aligned `StageCounters` block and records, while the
// run is live:
//
//   - ring-EMPTY stalls: time spent spinning on a dry upstream ring
//     (a worker starving = the generator's serial section is the
//     bottleneck; the consumer starving = workers are);
//   - ring-FULL stalls: time spent spinning on a full downstream ring
//     (a worker blocked on its buffer ring = the merge/consumer side is
//     the bottleneck);
//   - pool-dry stalls and recycle-path pressure (stash misses that fell
//     back to the pool's CAS free list): the slab return path as a
//     contention point of its own;
//   - sampled downstream-ring occupancy, the queue-pressure signal.
//
// Stall timing is episode-based: the clock is read once when a stage first
// fails to make progress and once when it succeeds again, so the happy
// path pays zero clock reads and the counters stay single-writer (folded
// after join — the same pattern as the engine's other per-worker blocks).
//
// `attribute_scaling()` turns the folded counters into a per-contention-
// point breakdown of lost throughput against the 1-worker anchor:
//
//   lost_pps(point) = stall_seconds(point) x busy-rate of that worker
//   slowdown residual = busy_seconds x (anchor_rate - busy_rate)
//
// which by construction sums to (ideal - measured) up to sampling error —
// the `coverage` field reports how much of the measured loss the named
// points explain, and bench/ablate_scaling enforces coverage within 10%
// on hosts with enough cores to run the pipeline unsliced
// (docs/SCALING.md §5 derives the model and its limits).
#pragma once

#include <cstdint>
#include <chrono>
#include <string>
#include <vector>

namespace mflow::trace {
class Registry;
}

namespace mflow::rt {

/// Per-thread stall/occupancy counters. Written only by the owning thread
/// while the run is live (own cache line — no false sharing), read by the
/// engine after join.
struct alignas(64) StageCounters {
  std::uint64_t items = 0;             // packets through this stage
  std::uint64_t input_dry_episodes = 0;   // upstream ring was empty
  std::uint64_t input_dry_ns = 0;
  std::uint64_t output_full_episodes = 0;  // downstream ring was full
  std::uint64_t output_full_ns = 0;
  std::uint64_t pool_dry_episodes = 0;  // generator: stash+recycle+pool dry
  std::uint64_t pool_dry_ns = 0;
  std::uint64_t recycle_cas_fallbacks = 0;  // slab ops that hit the CAS list
  std::uint64_t occupancy_sum = 0;      // sampled downstream-ring occupancy
  std::uint64_t occupancy_samples = 0;
  std::uint64_t active_ns = 0;          // thread wall time inside the run

  std::uint64_t stall_ns() const {
    return input_dry_ns + output_full_ns + pool_dry_ns;
  }
  double mean_occupancy() const {
    return occupancy_samples == 0
               ? 0.0
               : static_cast<double>(occupancy_sum) /
                     static_cast<double>(occupancy_samples);
  }
};

/// Episode-based stall stopwatch (see file header). Single-threaded; one
/// per stall kind per thread. All call sites are profiler-gated, so a
/// disabled profile pays nothing.
class StallClock {
 public:
  /// A progress attempt failed: arm the clock (first failure of the
  /// episode only — repeated calls while armed are free).
  void stall() {
    if (!armed_) {
      armed_ = true;
      t0_ = std::chrono::steady_clock::now();
    }
  }
  /// Progress resumed (or the stage gave up): close the episode into
  /// `episodes`/`ns`. No-op when not armed.
  void resolve(std::uint64_t& episodes, std::uint64_t& ns) {
    if (!armed_) return;
    armed_ = false;
    ++episodes;
    ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }
  bool armed() const { return armed_; }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point t0_;
};

/// The folded per-run profile (EngineResult::profile).
struct ProfileReport {
  bool enabled = false;
  std::size_t workers = 0;
  double wall_seconds = 0.0;
  StageCounters generator;
  StageCounters consumer;
  std::vector<StageCounters> worker;  // one per worker thread

  /// Element-wise sum over the worker blocks.
  StageCounters workers_total() const;
};

/// One named contention point and the throughput it cost.
struct ContentionPoint {
  std::string name;
  double stall_seconds = 0.0;  // summed over the threads it applies to
  double lost_pps = 0.0;       // estimated packets/s this point cost
  double share = 0.0;          // lost_pps / total attributed
};

struct ScalingAttribution {
  double ideal_pps = 0.0;       // workers x anchor
  double measured_pps = 0.0;
  double lost_pps = 0.0;        // max(0, ideal - measured)
  double attributed_pps = 0.0;  // sum over points
  /// attributed / lost; meaningful only when lost is a sizable fraction
  /// of ideal (tiny losses divide by ~0). 1.0 = the named points explain
  /// exactly the measured loss.
  double coverage = 0.0;
  std::vector<ContentionPoint> points;  // sorted, largest lost_pps first
};

/// Attribute the gap between `workers x anchor_pps_w1` and `measured_pps`
/// to named contention points (model in the file header / SCALING.md §5).
/// `anchor_pps_w1` is the same engine configuration measured at 1 worker.
ScalingAttribution attribute_scaling(const ProfileReport& report,
                                     double anchor_pps_w1,
                                     double measured_pps);

/// Export the profile as `rt.prof.<stage>.<counter>` registry counters
/// (and `rt.prof.<stage>.occupancy` gauges) — the uniform stat surface
/// scenario reports and the trace exporters already speak.
void export_profile(const ProfileReport& report, trace::Registry& registry);

/// Human-readable per-stage stall table, plus the attribution breakdown
/// when one is supplied.
std::string format_profile(const ProfileReport& report,
                           const ScalingAttribution* attr = nullptr);

}  // namespace mflow::rt
