#include "rt/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "trace/registry.hpp"

namespace mflow::rt {

namespace {

/// Busy time of a stage inside the run: active minus measured stalls,
/// clamped to one tick so rates never divide by zero.
std::uint64_t busy_ns(const StageCounters& c) {
  const std::uint64_t stalled = c.stall_ns();
  return c.active_ns > stalled ? c.active_ns - stalled : 1;
}

double frac(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

StageCounters ProfileReport::workers_total() const {
  StageCounters t;
  for (const auto& w : worker) {
    t.items += w.items;
    t.input_dry_episodes += w.input_dry_episodes;
    t.input_dry_ns += w.input_dry_ns;
    t.output_full_episodes += w.output_full_episodes;
    t.output_full_ns += w.output_full_ns;
    t.pool_dry_episodes += w.pool_dry_episodes;
    t.pool_dry_ns += w.pool_dry_ns;
    t.recycle_cas_fallbacks += w.recycle_cas_fallbacks;
    t.occupancy_sum += w.occupancy_sum;
    t.occupancy_samples += w.occupancy_samples;
    t.active_ns += w.active_ns;
  }
  return t;
}

ScalingAttribution attribute_scaling(const ProfileReport& report,
                                     double anchor_pps_w1,
                                     double measured_pps) {
  ScalingAttribution attr;
  attr.measured_pps = measured_pps;
  if (!report.enabled || report.worker.empty() || anchor_pps_w1 <= 0.0 ||
      report.wall_seconds <= 0.0)
    return attr;
  attr.ideal_pps = anchor_pps_w1 * static_cast<double>(report.worker.size());
  attr.lost_pps = std::max(0.0, attr.ideal_pps - measured_pps);

  // Worker-level attribution (the model in the file header): lost packets
  // at a stall point = stall time x that worker's own busy-rate; whatever
  // the stalls do NOT explain must be the worker processing packets more
  // slowly than the 1-worker anchor (cache/SMT contention, pinning
  // spillover) — the slowdown residual.
  const double anchor_per_ns = anchor_pps_w1 / 1e9;
  double starved = 0.0, backpressured = 0.0, slowdown = 0.0;
  double starved_s = 0.0, backpressured_s = 0.0, slowdown_s = 0.0;
  for (const auto& w : report.worker) {
    const std::uint64_t busy = busy_ns(w);
    const double rate = static_cast<double>(w.items) /
                        static_cast<double>(busy);  // pkts per busy ns
    starved += static_cast<double>(w.input_dry_ns) * rate;
    starved_s += static_cast<double>(w.input_dry_ns) / 1e9;
    backpressured += static_cast<double>(w.output_full_ns) * rate;
    backpressured_s += static_cast<double>(w.output_full_ns) / 1e9;
    if (rate < anchor_per_ns) {
      slowdown += static_cast<double>(busy) * (anchor_per_ns - rate);
      slowdown_s += static_cast<double>(busy) / 1e9;
    }
  }
  const double wall = report.wall_seconds;
  auto add = [&](const char* name, double lost_items, double stall_s) {
    attr.points.push_back(
        ContentionPoint{name, stall_s, lost_items / wall, 0.0});
  };
  add("split.starved (upstream: generator serial section / recycle)",
      starved, starved_s);
  add("merge.backpressure (downstream: consumer / fan-in merge)",
      backpressured, backpressured_s);
  add("worker.slowdown (per-packet rate below 1-worker anchor)", slowdown,
      slowdown_s);
  for (const auto& p : attr.points) attr.attributed_pps += p.lost_pps;
  for (auto& p : attr.points)
    p.share = attr.attributed_pps > 0 ? p.lost_pps / attr.attributed_pps : 0;
  std::sort(attr.points.begin(), attr.points.end(),
            [](const ContentionPoint& a, const ContentionPoint& b) {
              return a.lost_pps > b.lost_pps;
            });
  attr.coverage =
      attr.lost_pps > 0.0 ? attr.attributed_pps / attr.lost_pps : 1.0;
  return attr;
}

void export_profile(const ProfileReport& report, trace::Registry& registry) {
  if (!report.enabled) return;
  const auto stage = [&](const std::string& name, const StageCounters& c) {
    const std::string p = "rt.prof." + name + ".";
    registry.set_counter(p + "items", c.items);
    registry.set_counter(p + "input_dry_episodes", c.input_dry_episodes);
    registry.set_counter(p + "input_dry_ns", c.input_dry_ns);
    registry.set_counter(p + "output_full_episodes", c.output_full_episodes);
    registry.set_counter(p + "output_full_ns", c.output_full_ns);
    registry.set_counter(p + "pool_dry_episodes", c.pool_dry_episodes);
    registry.set_counter(p + "pool_dry_ns", c.pool_dry_ns);
    registry.set_counter(p + "recycle_cas_fallbacks",
                         c.recycle_cas_fallbacks);
    registry.set_gauge(p + "stall_frac", frac(c.stall_ns(), c.active_ns));
    registry.set_gauge(p + "occupancy", c.mean_occupancy());
  };
  stage("generator", report.generator);
  stage("consumer", report.consumer);
  for (std::size_t w = 0; w < report.worker.size(); ++w)
    stage("worker" + std::to_string(w), report.worker[w]);
  stage("workers", report.workers_total());
}

std::string format_profile(const ProfileReport& report,
                           const ScalingAttribution* attr) {
  std::ostringstream os;
  if (!report.enabled) {
    os << "profiler disabled (EngineConfig::profile = false)\n";
    return os.str();
  }
  os << "per-stage contention profile (" << report.workers << " workers, "
     << report.wall_seconds << " s wall):\n";
  os << "  stage       items        busy%  in-dry%  out-full%  pool-dry%  "
        "cas-fb  occ\n";
  const auto row = [&](const std::string& name, const StageCounters& c) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  %-10s %-12llu %5.1f    %5.1f      %5.1f      %5.1f  "
                  "%6llu  %5.1f\n",
                  name.c_str(), static_cast<unsigned long long>(c.items),
                  100.0 * frac(busy_ns(c), c.active_ns),
                  100.0 * frac(c.input_dry_ns, c.active_ns),
                  100.0 * frac(c.output_full_ns, c.active_ns),
                  100.0 * frac(c.pool_dry_ns, c.active_ns),
                  static_cast<unsigned long long>(c.recycle_cas_fallbacks),
                  c.mean_occupancy());
    os << buf;
  };
  row("generator", report.generator);
  for (std::size_t w = 0; w < report.worker.size(); ++w)
    row("worker" + std::to_string(w), report.worker[w]);
  row("consumer", report.consumer);
  if (attr != nullptr && !attr->points.empty()) {
    os << "lost-throughput attribution (anchor x" << report.worker.size()
       << " = " << attr->ideal_pps << " pkts/s ideal, " << attr->measured_pps
       << " measured, " << attr->lost_pps << " lost):\n";
    for (const auto& p : attr->points) {
      char buf[200];
      std::snprintf(buf, sizeof(buf), "  %-58s %12.3g pkts/s  (%4.1f%%)\n",
                    p.name.c_str(), p.lost_pps, 100.0 * p.share);
      os << buf;
    }
    char buf[120];
    std::snprintf(buf, sizeof(buf),
                  "  attribution coverage: %.1f%% of measured loss\n",
                  100.0 * attr->coverage);
    os << buf;
  }
  return os.str();
}

}  // namespace mflow::rt
