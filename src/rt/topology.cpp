#include "rt/topology.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace mflow::rt {

namespace {

/// Read a whole small sysfs file; nullopt-style: empty string on failure.
std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Read an integer sysfs attribute; `def` when missing/garbled.
int read_int(const std::string& path, int def) {
  const std::string s = read_file(path);
  if (s.empty()) return def;
  try {
    return std::stoi(s);
  } catch (...) {
    return def;
  }
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::stringstream ss(list);
  std::string chunk;
  while (std::getline(ss, chunk, ',')) {
    // Trim whitespace/newlines the kernel appends.
    while (!chunk.empty() && std::isspace(static_cast<unsigned char>(
                                 chunk.back())))
      chunk.pop_back();
    while (!chunk.empty() && std::isspace(static_cast<unsigned char>(
                                 chunk.front())))
      chunk.erase(chunk.begin());
    if (chunk.empty()) continue;
    const std::size_t dash = chunk.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(chunk));
      } else {
        const int lo = std::stoi(chunk.substr(0, dash));
        const int hi = std::stoi(chunk.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {
      // Malformed chunk: skip it rather than failing discovery outright.
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology CpuTopology::discover(const std::string& sysfs_root) {
  CpuTopology topo;
  const std::string cpu_root = sysfs_root + "/devices/system/cpu";
  std::vector<int> online = parse_cpulist(read_file(cpu_root + "/online"));
  if (online.empty()) {
    // No sysfs (non-Linux, masked container): synthesize N independent
    // cores on one node so every consumer of the table still works.
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned c = 0; c < n; ++c)
      topo.cpus.push_back({static_cast<int>(c), static_cast<int>(c), 0, 0});
    return topo;
  }

  // NUMA membership: node -> cpulist. Missing tree = everything on node 0.
  std::map<int, int> cpu_node;
  for (int node = 0; node < 1024; ++node) {
    const std::string path = sysfs_root + "/devices/system/node/node" +
                             std::to_string(node) + "/cpulist";
    const std::string list = read_file(path);
    if (list.empty()) {
      if (node > 0) break;  // node0 may legitimately be absent; stop at gaps
      continue;
    }
    for (int c : parse_cpulist(list)) cpu_node[c] = node;
  }

  for (int c : online) {
    const std::string base = cpu_root + "/cpu" + std::to_string(c);
    CpuInfo info;
    info.cpu = c;
    info.core_id = read_int(base + "/topology/core_id", c);
    info.package_id = read_int(base + "/topology/physical_package_id", 0);
    const auto it = cpu_node.find(c);
    info.numa_node = it == cpu_node.end() ? 0 : it->second;
    topo.cpus.push_back(info);
  }
  return topo;
}

bool CorePlan::any() const {
  if (generator >= 0 || consumer >= 0) return true;
  return std::any_of(workers.begin(), workers.end(),
                     [](int c) { return c >= 0; });
}

CorePlan plan_cores(const CpuTopology& topo, std::size_t workers) {
  CorePlan plan;
  plan.workers.assign(workers, -1);
  const std::size_t threads = workers + 2;  // + generator + consumer
  if (topo.size() < threads) return plan;   // unpinned: see header comment

  // Pick the NUMA node with the most logical CPUs as home; spill to other
  // nodes only when home cannot hold every thread.
  std::map<int, std::size_t> per_node;
  for (const auto& c : topo.cpus) ++per_node[c.numa_node];
  int home = topo.cpus.front().numa_node;
  for (const auto& [node, n] : per_node)
    if (n > per_node[home]) home = node;

  // Order CPUs home-node-first, then group by physical core: within a
  // group the first CPU is the core's "primary" sibling, the rest are SMT.
  auto sorted = topo.cpus;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](const CpuInfo& a, const CpuInfo& b) {
                     const bool ah = a.numa_node == home;
                     const bool bh = b.numa_node == home;
                     if (ah != bh) return ah;
                     if (a.numa_node != b.numa_node)
                       return a.numa_node < b.numa_node;
                     if (a.package_id != b.package_id)
                       return a.package_id < b.package_id;
                     if (a.core_id != b.core_id) return a.core_id < b.core_id;
                     return a.cpu < b.cpu;
                   });
  // Primary pass: one CPU per distinct (node, package, core) — the
  // physical cores. Secondary pass: everything else (SMT siblings).
  std::vector<int> primaries, siblings;
  std::set<std::tuple<int, int, int>> seen;
  for (const auto& c : sorted) {
    if (seen.insert({c.numa_node, c.package_id, c.core_id}).second)
      primaries.push_back(c.cpu);
    else
      siblings.push_back(c.cpu);
  }

  // Workers claim physical cores first; SMT siblings only when the
  // machine has fewer cores than workers.
  std::size_t p = 0, s = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    if (p < primaries.size())
      plan.workers[w] = primaries[p++];
    else if (s < siblings.size())
      plan.workers[w] = siblings[s++];
  }
  // Generator + consumer: stay on the HOME node first (they talk to every
  // worker through the split/merge rings — cross-node handoffs there cost
  // more than anything SMT pairing can win back), and within that prefer
  // two SMT siblings of one core (ideally a spare one — they share the
  // recycle ring, and co-residency keeps it in one core's private cache).
  std::vector<int> rest;
  for (; p < primaries.size(); ++p) rest.push_back(primaries[p]);
  for (; s < siblings.size(); ++s) rest.push_back(siblings[s]);
  if (rest.size() < 2) return CorePlan{-1, -1, std::vector<int>(workers, -1)};
  auto core_of = [&](int cpu) {
    for (const auto& c : topo.cpus)
      if (c.cpu == cpu) return std::tuple{c.numa_node, c.package_id, c.core_id};
    return std::tuple{-1, -1, cpu};
  };
  auto node_of = [&](int cpu) {
    for (const auto& c : topo.cpus)
      if (c.cpu == cpu) return c.numa_node;
    return -1;
  };
  // Home-node CPUs first so the unranked fallback (first two) is already
  // the right node when no core-sharing pair exists.
  std::stable_partition(rest.begin(), rest.end(),
                        [&](int c) { return node_of(c) == home; });
  int gen = rest[0], cons = rest[1];
  int best_rank = -1;
  for (std::size_t i = 0; i + 1 < rest.size(); ++i)
    for (std::size_t j = i + 1; j < rest.size(); ++j) {
      const bool on_home =
          node_of(rest[i]) == home && node_of(rest[j]) == home;
      const bool share_core = core_of(rest[i]) == core_of(rest[j]);
      const int rank = (on_home ? 2 : 0) + (share_core ? 1 : 0);
      if (rank > best_rank) {
        best_rank = rank;
        gen = rest[i];
        cons = rest[j];
      }
    }
  plan.generator = gen;
  plan.consumer = cons;
  return plan;
}

#if defined(__linux__)

bool pin_current_thread(int cpu) {
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

bool unpin_current_thread() {
  cpu_set_t set;
  CPU_ZERO(&set);
  const unsigned n = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned c = 0; c < n && c < CPU_SETSIZE; ++c) CPU_SET(c, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

#else

bool pin_current_thread(int) { return false; }
bool unpin_current_thread() { return false; }

#endif

}  // namespace mflow::rt
