#include "rt/reassembler.hpp"

#include <bit>
#include <thread>

namespace mflow::rt {

RtReassembler::RtReassembler(std::size_t workers,
                             std::size_t ring_capacity_pow2,
                             std::size_t max_epochs)
    : epoch_ring_(std::bit_ceil(max_epochs + 1)), max_epochs_(max_epochs) {
  for (std::size_t i = 0; i < workers; ++i)
    rings_.push_back(
        std::make_unique<SpscRing<RtPacket>>(ring_capacity_pow2));
  // Reserved up front so apply_epochs() never allocates on the consumer's
  // hot path (the zero-allocation invariant of docs/PERFORMANCE.md).
  epochs_.reserve(max_epochs + 1);
  epochs_.push_back(Epoch{1, static_cast<std::uint32_t>(workers)});
}

bool RtReassembler::announce_epoch(Epoch e) {
  if (announced_ >= max_epochs_) return false;
  if (e.workers == 0 || e.workers > rings_.size()) return false;
  if (!epoch_ring_.try_push(std::move(e))) return false;
  ++announced_;
  return true;
}

void RtReassembler::apply_epochs() {
  while (auto e = epoch_ring_.try_pop()) epochs_.push_back(*e);
}

std::size_t RtReassembler::owner_of(std::uint64_t batch) {
  apply_epochs();
  // Epochs arrive in ascending first_batch order; the newest one at or
  // below `batch` governs it. The table stays tiny (one entry per rescale),
  // so a reverse scan beats any indexed structure.
  for (std::size_t e = epochs_.size(); e-- > 0;) {
    if (batch >= epochs_[e].first_batch)
      return static_cast<std::size_t>((batch - epochs_[e].first_batch) %
                                      epochs_[e].workers);
  }
  return static_cast<std::size_t>((batch - 1) % rings_.size());
}

bool RtReassembler::deposit(std::size_t w, RtPacket&& pkt,
                            std::uint32_t max_spins) {
  auto& ring = *rings_[w];
  std::uint32_t spins = 0;
  // The rvalue try_push only consumes pkt on success, so a false return
  // here leaves the packet (and its skb) with the caller.
  while (!ring.try_push(std::move(pkt))) {
    if (max_spins != 0 && ++spins >= max_spins) return false;
    std::this_thread::yield();
  }
  return true;
}

std::size_t RtReassembler::deposit_batch(std::size_t w, RtPacket* pkts,
                                         std::size_t count,
                                         std::uint32_t max_spins,
                                         StageCounters* prof) {
  auto& ring = *rings_[w];
  std::size_t done = 0;
  std::uint32_t spins = 0;
  StallClock full;
  while (done < count) {
    const std::size_t n = ring.try_push_batch(pkts + done, count - done);
    done += n;
    if (done == count) break;
    if (n == 0) {
      if (prof != nullptr) full.stall();
      if (max_spins != 0 && ++spins >= max_spins) break;
      std::this_thread::yield();
    }
  }
  // Resolve whether the stall ended in progress or in giving up — either
  // way the time was spent blocked on a full merge ring.
  if (prof != nullptr)
    full.resolve(prof->output_full_episodes, prof->output_full_ns);
  return done;
}

std::optional<RtPacket> RtReassembler::pop_ready() {
  // Locate the buffer queue holding the micro-flow under merge; keep
  // consuming it until a packet with a different ID shows up, then advance
  // the merging counter (paper §III-B). The owner lookup re-applies any
  // pending epoch on every iteration, so the counter can never cross a
  // rescale boundary on a stale worker mapping.
  while (true) {
    auto& ring = *rings_[owner_of(merge_counter_)];
    const RtPacket* head = ring.peek();
    if (head == nullptr) return std::nullopt;
    if (head->batch == merge_counter_ && !head->marker)
      return ring.try_pop();
    if (head->batch > merge_counter_) {
      // A later batch (or an epoch-flush marker for one) at the head: the
      // current micro-flow is fully consumed (FIFO per worker), so move
      // the merging counter forward.
      ++merge_counter_;
      ++batches_merged_;
      continue;
    }
    // A marker at or below the counter has served its purpose (real
    // packets can never be below the counter): discard and re-examine.
    (void)ring.try_pop();
  }
}

std::size_t RtReassembler::pop_ready_batch(RtPacket* out, std::size_t max) {
  std::size_t got = 0;
  while (got < max) {
    auto& ring = *rings_[owner_of(merge_counter_)];
    got += ring.try_pop_batch_while(
        out + got, max - got, [this](const RtPacket& p) {
          return p.batch == merge_counter_ && !p.marker;
        });
    const RtPacket* head = ring.peek();
    if (head == nullptr) break;  // merge head dry — caller yields/advances
    if (head->batch == merge_counter_ && !head->marker)
      continue;  // more of this micro-flow arrived — keep draining
    if (head->batch > merge_counter_) {
      // A later batch (or its epoch-flush marker) at the head: this
      // micro-flow is complete (FIFO per worker), advance and keep
      // draining into the same output chunk.
      ++merge_counter_;
      ++batches_merged_;
      continue;
    }
    // Spent epoch-flush marker: discard and re-examine the head.
    (void)ring.try_pop();
  }
  return got;
}

void RtReassembler::force_advance() {
  ++merge_counter_;
  ++batches_merged_;
}

bool RtReassembler::drained() const {
  for (const auto& ring : rings_)
    if (!ring->empty()) return false;
  return true;
}

std::size_t RtReassembler::occupancy() const {
  std::size_t total = 0;
  for (const auto& ring : rings_) total += ring->size();
  return total;
}

}  // namespace mflow::rt
