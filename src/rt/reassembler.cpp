#include "rt/reassembler.hpp"

#include <thread>

namespace mflow::rt {

RtReassembler::RtReassembler(std::size_t workers,
                             std::size_t ring_capacity_pow2) {
  for (std::size_t i = 0; i < workers; ++i)
    rings_.push_back(
        std::make_unique<SpscRing<RtPacket>>(ring_capacity_pow2));
}

bool RtReassembler::deposit(std::size_t w, RtPacket&& pkt,
                            std::uint32_t max_spins) {
  auto& ring = *rings_[w];
  std::uint32_t spins = 0;
  // The rvalue try_push only consumes pkt on success, so a false return
  // here leaves the packet (and its skb) with the caller.
  while (!ring.try_push(std::move(pkt))) {
    if (max_spins != 0 && ++spins >= max_spins) return false;
    std::this_thread::yield();
  }
  return true;
}

std::size_t RtReassembler::deposit_batch(std::size_t w, RtPacket* pkts,
                                         std::size_t count,
                                         std::uint32_t max_spins) {
  auto& ring = *rings_[w];
  std::size_t done = 0;
  std::uint32_t spins = 0;
  while (done < count) {
    const std::size_t n = ring.try_push_batch(pkts + done, count - done);
    done += n;
    if (done == count) break;
    if (n == 0) {
      if (max_spins != 0 && ++spins >= max_spins) break;
      std::this_thread::yield();
    }
  }
  return done;
}

std::optional<RtPacket> RtReassembler::pop_ready() {
  // Locate the buffer queue holding the micro-flow under merge; keep
  // consuming it until a packet with a different ID shows up, then advance
  // the merging counter (paper §III-B).
  while (true) {
    auto& ring = *rings_[owner_of(merge_counter_)];
    const RtPacket* head = ring.peek();
    if (head == nullptr) return std::nullopt;
    if (head->batch == merge_counter_) return ring.try_pop();
    // A later batch is at the head: the current micro-flow is fully
    // consumed (FIFO per worker), so move the merging counter forward.
    ++merge_counter_;
    ++batches_merged_;
  }
}

std::size_t RtReassembler::pop_ready_batch(RtPacket* out, std::size_t max) {
  std::size_t got = 0;
  while (got < max) {
    auto& ring = *rings_[owner_of(merge_counter_)];
    got += ring.try_pop_batch_while(
        out + got, max - got,
        [this](const RtPacket& p) { return p.batch == merge_counter_; });
    const RtPacket* head = ring.peek();
    if (head == nullptr) break;  // merge head dry — caller yields/advances
    if (head->batch == merge_counter_) continue;  // more of this micro-flow
                                                  // arrived — keep draining
    // A later batch at the head: this micro-flow is complete (FIFO per
    // worker), advance and keep draining into the same output chunk.
    ++merge_counter_;
    ++batches_merged_;
  }
  return got;
}

void RtReassembler::force_advance() {
  ++merge_counter_;
  ++batches_merged_;
}

}  // namespace mflow::rt
