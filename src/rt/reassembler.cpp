#include "rt/reassembler.hpp"

#include <thread>

namespace mflow::rt {

RtReassembler::RtReassembler(std::size_t workers,
                             std::size_t ring_capacity_pow2) {
  for (std::size_t i = 0; i < workers; ++i)
    rings_.push_back(
        std::make_unique<SpscRing<RtPacket>>(ring_capacity_pow2));
}

bool RtReassembler::deposit(std::size_t w, const RtPacket& pkt,
                            std::uint32_t max_spins) {
  auto& ring = *rings_[w];
  std::uint32_t spins = 0;
  while (!ring.try_push(pkt)) {
    if (max_spins != 0 && ++spins >= max_spins) return false;
    std::this_thread::yield();
  }
  return true;
}

std::optional<RtPacket> RtReassembler::pop_ready() {
  // Locate the buffer queue holding the micro-flow under merge; keep
  // consuming it until a packet with a different ID shows up, then advance
  // the merging counter (paper §III-B).
  while (true) {
    auto& ring = *rings_[owner_of(merge_counter_)];
    const RtPacket* head = ring.peek();
    if (head == nullptr) return std::nullopt;
    if (head->batch == merge_counter_) return ring.try_pop();
    // A later batch is at the head: the current micro-flow is fully
    // consumed (FIFO per worker), so move the merging counter forward.
    ++merge_counter_;
    ++batches_merged_;
  }
}

void RtReassembler::force_advance() {
  ++merge_counter_;
  ++batches_merged_;
}

}  // namespace mflow::rt
