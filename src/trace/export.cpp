#include "trace/export.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>

#include "trace/attribution.hpp"

namespace mflow::trace {

namespace {

// Chrome timestamps are microseconds; keep ns resolution as decimals.
std::string us(sim::Time ns) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3)
     << static_cast<double>(ns) / 1000.0;
  return os.str();
}

int tid_of(const TraceEvent& ev) {
  return ev.core >= 0 ? static_cast<int>(ev.core) : 1000;
}

std::string span_name(const TraceEvent& ev) {
  switch (ev.kind) {
    case EventKind::kStageExit:
      return std::string("svc:") + std::string(stage_short_name(ev.aux));
    case EventKind::kSkbAlloc: return "svc:driver";
    case EventKind::kCopyDone: return "copy";
    default: return std::string(event_kind_name(ev.kind));
  }
}

std::string packet_id(const TraceEvent& ev) {
  std::ostringstream os;
  os << "0x" << std::hex << ((ev.flow << 24) ^ ev.seq);
  return os.str();
}

void common_args(std::ostream& os, const TraceEvent& ev) {
  os << "\"args\":{\"flow\":" << ev.flow << ",\"seq\":" << ev.seq
     << ",\"microflow\":" << ev.microflow << ",\"aux\":" << ev.aux << "}";
}

}  // namespace

void export_chrome_json(const Tracer& tracer, std::ostream& os) {
  const auto events = tracer.sorted_events();
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Track metadata: one named thread per virtual core (+ the global track).
  sep();
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"mflow\"}}";
  std::map<int, bool> tids;
  for (const TraceEvent& ev : events) tids[tid_of(ev)] = ev.core < 0;
  for (const auto& [tid, global] : tids) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << (global ? std::string("nic/global")
                  : "core " + std::to_string(tid))
       << "\"}}";
  }

  for (const TraceEvent& ev : events) {
    const bool span = ev.dur > 0 && (ev.kind == EventKind::kStageExit ||
                                     ev.kind == EventKind::kSkbAlloc ||
                                     ev.kind == EventKind::kCopyDone);
    if (span) {
      sep();
      os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid_of(ev) << ",\"ts\":"
         << us(ev.ts - ev.dur) << ",\"dur\":" << us(ev.dur)
         << ",\"cat\":\"stage\",\"name\":\"" << span_name(ev) << "\",";
      common_args(os, ev);
      os << "}";
    } else if (ev.kind != EventKind::kStageEnter) {
      // Enter instants are implied by the matching service span.
      sep();
      os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid_of(ev)
         << ",\"ts\":" << us(ev.ts) << ",\"cat\":\"event\",\"name\":\""
         << event_kind_name(ev.kind) << "\",";
      common_args(os, ev);
      os << "}";
    }

    // Flow arrows stitching a packet's journey across core tracks.
    const char* ph = nullptr;
    if (ev.kind == EventKind::kWireArrival) ph = "s";
    else if (ev.kind == EventKind::kRingDequeue ||
             ev.kind == EventKind::kReasmRelease) ph = "t";
    else if (ev.kind == EventKind::kCopyDone) ph = "f";
    if (ph != nullptr) {
      sep();
      os << "{\"ph\":\"" << ph << "\",\"pid\":0,\"tid\":" << tid_of(ev)
         << ",\"ts\":" << us(ev.ts) << ",\"cat\":\"pkt\",\"name\":\"pkt\","
         << "\"id\":\"" << packet_id(ev) << "\"";
      if (ph[0] == 'f') os << ",\"bp\":\"e\"";
      os << "}";
    }
  }
  os << "\n]}\n";
}

void export_csv(const Tracer& tracer, std::ostream& os) {
  os << "ts_ns,core,kind,flow,seq,microflow,aux,dur_ns\n";
  for (const TraceEvent& ev : tracer.sorted_events()) {
    os << ev.ts << "," << ev.core << "," << event_kind_name(ev.kind) << ","
       << ev.flow << "," << ev.seq << "," << ev.microflow << "," << ev.aux
       << "," << ev.dur << "\n";
  }
}

}  // namespace mflow::trace
