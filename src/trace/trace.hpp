// Per-packet tracing & telemetry (DESIGN.md §4d).
//
// Tracepoints at every lifecycle edge — NIC ring enqueue/dequeue, IRQ raise,
// stage enter/exit, split decision + splitting-queue deposit, inter-core
// handoff, reassembly hold/release/eviction, socket enqueue, copy-to-user —
// each stamped with virtual time, core id, flow id, micro-flow id, and
// per-flow wire sequence. The attribution pass (attribution.hpp) folds a
// packet's events into named latency phases that partition its end-to-end
// latency exactly; exporters (export.hpp) emit Chrome trace-event JSON
// (Perfetto / chrome://tracing) and CSV.
//
// Cost model:
//  - compiled out (-DMFLOW_TRACE_DISABLED): active() is a constant nullptr,
//    every tracepoint folds to nothing;
//  - compiled in, disabled (default): one global load + branch per
//    tracepoint — the overhead guard in tests/test_trace.cpp and
//    bench/ablate_trace_overhead keep this honest;
//  - enabled: events go into fixed-capacity per-core ring buffers (oldest
//    overwritten), optionally sampled per packet (sample_period).
//
// Threading: record() is only called from the single-threaded DES. Real
// threads (src/rt) build thread-local vectors and hand them over with
// absorb() (mutex-protected) before the engine joins them; set_current()
// happens-before thread spawn and after join, so the global pointer needs
// no atomics (TSan-clean under the tsan preset).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "trace/registry.hpp"

namespace mflow::trace {

enum class EventKind : std::uint8_t {
  kWireArrival,    // packet hit the receiver NIC (ts = t_wire)
  kRingEnqueue,    // entered a NIC RX ring (aux = queue)
  kRingDrop,       // RX ring full, packet lost
  kIrqRaise,       // hardware interrupt raised (aux = queue; no packet)
  kRingDequeue,    // popped from an RX/request ring by a driver half
  kSkbAlloc,       // skb built (dur = driver poll + alloc cost)
  kStageEnter,     // entered a pipeline stage (aux = StageId)
  kStageExit,      // stage service charged (aux = StageId, dur = cost)
  kSplitDecision,  // MFLOW classified the packet (aux = micro-flow id)
  kSplitDeposit,   // deposited toward a splitting core (aux = target core)
  kHandoff,        // inter-core steering handoff (aux = target core)
  kEnqueue,        // placed on a stage queue (aux = StageId, core = target)
  kReasmHold,      // buffered at the merge point
  kReasmRelease,   // popped from the merge point in flow order
  kReasmEvict,     // merge head force-advanced (aux = batch written off)
  kLateDelivery,   // arrived for an already-merged-past batch
  kSocketEnqueue,  // entered the socket receive queue
  kReaderPop,      // reader (copy thread) picked the packet up
  kCopyStart,      // copy-to-user began
  kCopyDone,       // copy-to-user completed (dur = copy cost)
  kFaultVerdict,   // injector perturbed the packet (aux = FaultAction)
  kDrop,           // packet died inside the path
  kNfApply,        // an NF stage updated per-flow state (aux = nf::Kind)
  kCount,
};

std::string_view event_kind_name(EventKind kind);

struct TraceEvent {
  sim::Time ts = 0;   // virtual ns (DES) or wall ns since run start (rt)
  sim::Time dur = 0;  // service duration for span-like events, else 0
  std::uint64_t flow = 0;       // FlowId (0 = not packet-scoped)
  std::uint64_t seq = 0;        // per-flow wire sequence
  std::uint64_t microflow = 0;  // MFLOW batch id (0 = unsplit)
  std::uint64_t aux = 0;        // kind-specific (stage id, target core, ...)
  std::uint64_t idx = 0;        // global record order (stamped by Tracer)
  EventKind kind = EventKind::kCount;
  std::int16_t core = -1;       // virtual core / rt worker; -1 = no core
};

struct TraceConfig {
  bool enabled = false;
  /// Events retained per core track; the oldest are overwritten.
  std::size_t ring_capacity = 1 << 16;
  /// Trace every Nth packet of each flow (by wire_seq). 1 = all packets.
  /// Non-packet events (IRQs, evictions) are always recorded.
  std::uint64_t sample_period = 1;
};

class Tracer {
 public:
  explicit Tracer(TraceConfig cfg = {});

  const TraceConfig& config() const { return cfg_; }

  /// Should a packet with this per-flow wire sequence be traced?
  bool sampled(std::uint64_t wire_seq) const {
    return cfg_.sample_period <= 1 || wire_seq % cfg_.sample_period == 0;
  }

  /// Record one event (single-threaded DES path).
  void record(TraceEvent ev);

  /// Packet-scoped tracepoint; drops the event if the packet is unsampled.
  void packet(EventKind kind, sim::Time ts, int core, std::uint64_t flow,
              std::uint64_t seq, std::uint64_t microflow,
              std::uint64_t aux = 0, sim::Time dur = 0);

  /// Core/flow-scoped tracepoint with no packet identity (never sampled out).
  void mark(EventKind kind, sim::Time ts, int core, std::uint64_t aux = 0);

  /// Hand over a thread-local event buffer (rt engine threads; thread-safe).
  void absorb(std::vector<TraceEvent>&& events);

  /// Drop all buffered events and registry state (warmup boundary).
  void clear();

  /// All retained events merged across tracks, ordered by (ts, record idx).
  std::vector<TraceEvent> sorted_events() const;

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t overwritten() const { return overwritten_; }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

 private:
  struct Track {
    std::vector<TraceEvent> ring;
    std::size_t next = 0;
    bool wrapped = false;
  };
  Track& track(int core);

  TraceConfig cfg_;
  std::map<int, Track> tracks_;         // keyed by core id (-1 = global)
  std::vector<TraceEvent> rt_events_;   // absorbed thread buffers
  std::mutex rt_mu_;                    // guards rt_events_ and counters
                                        // touched from absorb()
  std::uint64_t next_idx_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
  Registry registry_;
};

/// Install/read the process-wide tracer. set_current is called only while no
/// traced threads run (see threading note above).
void set_current(Tracer* tracer);
Tracer* current();

/// The tracer every tracepoint consults; constant nullptr when tracing is
/// compiled out, so call sites fold away entirely.
inline Tracer* active() {
#ifdef MFLOW_TRACE_DISABLED
  return nullptr;
#else
  return current();
#endif
}

inline constexpr bool compiled_in() {
#ifdef MFLOW_TRACE_DISABLED
  return false;
#else
  return true;
#endif
}

}  // namespace mflow::trace
