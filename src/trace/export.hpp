// Trace exporters.
//
//  - export_chrome_json: Chrome trace-event JSON, loadable in Perfetto /
//    chrome://tracing. Virtual cores become named threads ("core N"; -1 is
//    the "nic/global" track), stage service and copy spans become complete
//    ("X") events, markers become instants, and each sampled packet's
//    journey is stitched across cores with flow arrows (s/t/f events keyed
//    by a flow+seq id).
//  - export_csv: one row per event, for the bench scripts.
#pragma once

#include <iosfwd>

#include "trace/trace.hpp"

namespace mflow::trace {

void export_chrome_json(const Tracer& tracer, std::ostream& os);
void export_csv(const Tracer& tracer, std::ostream& os);

}  // namespace mflow::trace
