// Per-packet latency attribution.
//
// A traced packet's events, ordered by timestamp, partition its life into
// consecutive gaps; each gap is assigned a named phase by the kind of the
// event that closes it (and, where it matters, the kind that opened it):
//
//   ring_wait    NIC ring enqueue -> driver dequeue
//   svc:driver   descriptor poll + skb allocation service
//   svc:<stage>  per-stage service time (gro, vxlan, bridge, ...)
//   queue        softirq queueing between stages (includes steer/dispatch)
//   split_queue  splitting-queue residency (split deposit -> splitting core)
//   reasm_hold   buffered at the MFLOW merge point (incl. merge bookkeeping)
//   socket_wait  socket receive queue -> reader wakeup
//   reader_proc  reader-context work before the copy (deferred TCP, framing)
//   copy         kernel->user copy
//   other        anything unclassified (should stay ~0)
//
// Phases sum to the packet's end-to-end latency (last ts - first ts)
// *exactly*, by construction — the invariant tests/test_trace.cpp asserts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/histogram.hpp"

namespace mflow::trace {

struct PacketKey {
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;
  bool operator<(const PacketKey& o) const {
    return flow != o.flow ? flow < o.flow : seq < o.seq;
  }
};

struct PacketJourney {
  PacketKey key;
  std::uint64_t microflow = 0;
  /// Phase name -> total ns attributed (insertion-ordered by first use).
  std::vector<std::pair<std::string, sim::Time>> phases;
  sim::Time start = 0;  // first event (wire arrival when complete)
  sim::Time end = 0;    // last event (copy done when complete)
  sim::Time e2e = 0;    // end - start == sum of phases
  /// Journey runs wire arrival -> copy completion (not GRO-absorbed,
  /// dropped, or truncated by ring-buffer overwrite).
  bool complete = false;

  sim::Time phase_ns(std::string_view name) const;
};

struct PhaseBreakdown {
  /// Stable display order: first-seen across journeys.
  std::vector<std::string> phase_order;
  /// Per-phase per-packet latency distributions (complete journeys only).
  std::map<std::string, util::Histogram> phases;
  util::Histogram end_to_end{6};
  std::uint64_t complete = 0;
  std::uint64_t incomplete = 0;

  bool empty() const { return complete == 0 && incomplete == 0; }
};

/// Map a kStageEnter/kStageExit aux value to the stage's short name.
/// Mirrors stack::stage_name (enforced by test_trace.cpp; trace sits below
/// the stack layer so it cannot call it); 0xFF names the rt engine's
/// synthetic processing stage.
std::string_view stage_short_name(std::uint64_t aux);

/// Reconstruct every traced packet's journey from the tracer's buffers.
std::vector<PacketJourney> build_journeys(const Tracer& tracer);

/// Fold journeys into per-phase latency histograms.
PhaseBreakdown attribute(const Tracer& tracer);
PhaseBreakdown attribute(const std::vector<PacketJourney>& journeys);

}  // namespace mflow::trace
