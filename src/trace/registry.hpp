// Named counter/gauge registry: the uniform stat surface replacing the
// ad-hoc per-subsystem stat structs at the reporting layer. Components
// increment counters live at tracepoints; run_scenario additionally
// snapshots subsystem totals into canonical names ("nic.drops",
// "reasm.evictions", "latency.p50_us", ...) that experiment/report and the
// bench binaries read back uniformly.
//
// Thread-safe: rt worker threads may add() concurrently (mutex; the DES
// path is single-threaded so contention is nil).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace mflow::trace {

class Registry {
 public:
  /// Monotonic counter increment (creates the counter at 0 first).
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Overwrite a counter with an externally computed total.
  void set_counter(std::string_view name, std::uint64_t value);
  /// Overwrite a gauge (point-in-time double).
  void set_gauge(std::string_view name, double value);

  /// 0 / 0.0 when the name was never touched.
  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;

  /// Drop a stat entirely (flow-state reclamation: exporters must stop
  /// reporting expired flows, not report them frozen at the last value).
  /// Returns false when the name was never registered.
  bool remove_counter(std::string_view name);
  bool remove_gauge(std::string_view name);

  /// Registered-name counts — the churn tests' boundedness probes.
  std::size_t num_counters() const;
  std::size_t num_gauges() const;

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;

    std::uint64_t counter(std::string_view name) const {
      auto it = counters.find(std::string(name));
      return it == counters.end() ? 0 : it->second;
    }
    double gauge(std::string_view name) const {
      auto it = gauges.find(std::string(name));
      return it == gauges.end() ? 0.0 : it->second;
    }
    bool empty() const { return counters.empty() && gauges.empty(); }
  };
  Snapshot snapshot() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
};

}  // namespace mflow::trace
