#include "trace/attribution.hpp"

#include <algorithm>

namespace mflow::trace {

namespace {

// Phase closed by `ev` when `prev` preceded it (see header table).
std::string classify(const TraceEvent& prev, const TraceEvent& ev) {
  switch (ev.kind) {
    case EventKind::kRingDequeue:
      return prev.kind == EventKind::kSplitDeposit ? "split_queue"
                                                   : "ring_wait";
    case EventKind::kSkbAlloc:
      return "svc:driver";
    case EventKind::kStageEnter:
      return prev.kind == EventKind::kSplitDeposit ? "split_queue" : "queue";
    case EventKind::kStageExit:
      return std::string("svc:") + std::string(stage_short_name(ev.aux));
    case EventKind::kReasmRelease:
      return "reasm_hold";
    case EventKind::kReaderPop:
      return "socket_wait";
    case EventKind::kCopyStart:
      return "reader_proc";
    case EventKind::kCopyDone:
      return "copy";
    // NF state updates fire inside the NF stage's service span; the gap
    // into them is svc time, same as the enclosing kStageExit would say.
    case EventKind::kNfApply:
      return "svc:nf";
    // Producer-side markers fire at the producer's charge point; any
    // residual gap into them is queueing delay.
    case EventKind::kWireArrival:
    case EventKind::kRingEnqueue:
    case EventKind::kEnqueue:
    case EventKind::kHandoff:
    case EventKind::kSplitDecision:
    case EventKind::kSplitDeposit:
    case EventKind::kSocketEnqueue:
    case EventKind::kReasmHold:
    case EventKind::kFaultVerdict:
      return "queue";
    default:
      return "other";
  }
}

void add_phase(PacketJourney& j, const std::string& name, sim::Time ns) {
  for (auto& [n, v] : j.phases) {
    if (n == name) {
      v += ns;
      return;
    }
  }
  j.phases.emplace_back(name, ns);
}

}  // namespace

std::string_view stage_short_name(std::uint64_t aux) {
  // Must track stack::StageId order (asserted by test_trace.cpp).
  switch (aux) {
    case 0: return "driver";
    case 1: return "gro";
    case 2: return "ip_outer";
    case 3: return "vxlan";
    case 4: return "bridge";
    case 5: return "veth";
    case 6: return "ip";
    case 7: return "tcp";
    case 8: return "udp";
    case 9: return "socket";
    case 10: return "nf";
    case 0xFF: return "rt";
    default: return "?";
  }
}

sim::Time PacketJourney::phase_ns(std::string_view name) const {
  for (const auto& [n, v] : phases)
    if (n == name) return v;
  return 0;
}

std::vector<PacketJourney> build_journeys(const Tracer& tracer) {
  const std::vector<TraceEvent> events = tracer.sorted_events();

  // Group per packet, preserving the global order within each group.
  std::map<PacketKey, std::vector<const TraceEvent*>> by_packet;
  for (const TraceEvent& ev : events) {
    // Core/flow-scoped marks carry no packet identity.
    if (ev.kind == EventKind::kIrqRaise || ev.kind == EventKind::kReasmEvict)
      continue;
    by_packet[PacketKey{ev.flow, ev.seq}].push_back(&ev);
  }

  std::vector<PacketJourney> out;
  out.reserve(by_packet.size());
  for (auto& [key, evs] : by_packet) {
    PacketJourney j;
    j.key = key;
    j.start = evs.front()->ts;
    j.end = evs.back()->ts;
    j.e2e = j.end - j.start;
    for (const TraceEvent* ev : evs)
      if (ev->microflow != 0) j.microflow = ev->microflow;
    for (std::size_t i = 1; i < evs.size(); ++i) {
      const sim::Time gap = evs[i]->ts - evs[i - 1]->ts;
      if (gap <= 0) continue;
      add_phase(j, classify(*evs[i - 1], *evs[i]), gap);
    }
    j.complete = evs.front()->kind == EventKind::kWireArrival &&
                 evs.back()->kind == EventKind::kCopyDone;
    out.push_back(std::move(j));
  }
  return out;
}

PhaseBreakdown attribute(const std::vector<PacketJourney>& journeys) {
  PhaseBreakdown b;
  for (const PacketJourney& j : journeys) {
    if (!j.complete) {
      ++b.incomplete;
      continue;
    }
    ++b.complete;
    b.end_to_end.record(static_cast<std::uint64_t>(std::max<sim::Time>(
        0, j.e2e)));
    for (const auto& [name, ns] : j.phases) {
      auto it = b.phases.find(name);
      if (it == b.phases.end()) {
        it = b.phases.emplace(name, util::Histogram{6}).first;
        b.phase_order.push_back(name);
      }
      it->second.record(static_cast<std::uint64_t>(std::max<sim::Time>(0, ns)));
    }
  }
  return b;
}

PhaseBreakdown attribute(const Tracer& tracer) {
  return attribute(build_journeys(tracer));
}

}  // namespace mflow::trace
