#include "trace/registry.hpp"

namespace mflow::trace {

void Registry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void Registry::set_counter(std::string_view name, std::uint64_t value) {
  std::lock_guard lock(mu_);
  counters_[std::string(name)] = value;
}

void Registry::set_gauge(std::string_view name, double value) {
  std::lock_guard lock(mu_);
  gauges_[std::string(name)] = value;
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool Registry::remove_counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) return false;
  counters_.erase(it);
  return true;
}

bool Registry::remove_gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) return false;
  gauges_.erase(it);
  return true;
}

std::size_t Registry::num_counters() const {
  std::lock_guard lock(mu_);
  return counters_.size();
}

std::size_t Registry::num_gauges() const {
  std::lock_guard lock(mu_);
  return gauges_.size();
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot s;
  s.counters.insert(counters_.begin(), counters_.end());
  s.gauges.insert(gauges_.begin(), gauges_.end());
  return s;
}

void Registry::clear() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
}

}  // namespace mflow::trace
