#include "trace/trace.hpp"

#include <algorithm>

namespace mflow::trace {

namespace {
Tracer* g_tracer = nullptr;
}  // namespace

void set_current(Tracer* tracer) { g_tracer = tracer; }
Tracer* current() { return g_tracer; }

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kWireArrival: return "wire_arrival";
    case EventKind::kRingEnqueue: return "ring_enqueue";
    case EventKind::kRingDrop: return "ring_drop";
    case EventKind::kIrqRaise: return "irq_raise";
    case EventKind::kRingDequeue: return "ring_dequeue";
    case EventKind::kSkbAlloc: return "skb_alloc";
    case EventKind::kStageEnter: return "stage_enter";
    case EventKind::kStageExit: return "stage_exit";
    case EventKind::kSplitDecision: return "split_decision";
    case EventKind::kSplitDeposit: return "split_deposit";
    case EventKind::kHandoff: return "handoff";
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kReasmHold: return "reasm_hold";
    case EventKind::kReasmRelease: return "reasm_release";
    case EventKind::kReasmEvict: return "reasm_evict";
    case EventKind::kLateDelivery: return "late_delivery";
    case EventKind::kSocketEnqueue: return "socket_enqueue";
    case EventKind::kReaderPop: return "reader_pop";
    case EventKind::kCopyStart: return "copy_start";
    case EventKind::kCopyDone: return "copy_done";
    case EventKind::kFaultVerdict: return "fault_verdict";
    case EventKind::kDrop: return "drop";
    case EventKind::kNfApply: return "nf_apply";
    case EventKind::kCount: break;
  }
  return "?";
}

Tracer::Tracer(TraceConfig cfg) : cfg_(cfg) {
  if (cfg_.ring_capacity == 0) cfg_.ring_capacity = 1;
}

Tracer::Track& Tracer::track(int core) { return tracks_[core]; }

void Tracer::record(TraceEvent ev) {
  ev.idx = next_idx_++;
  ++recorded_;
  Track& t = track(ev.core);
  if (t.ring.size() < cfg_.ring_capacity) {
    t.ring.push_back(ev);
  } else {
    t.ring[t.next] = ev;
    t.next = (t.next + 1) % cfg_.ring_capacity;
    t.wrapped = true;
    ++overwritten_;
  }
}

void Tracer::packet(EventKind kind, sim::Time ts, int core,
                    std::uint64_t flow, std::uint64_t seq,
                    std::uint64_t microflow, std::uint64_t aux,
                    sim::Time dur) {
  if (!sampled(seq)) return;
  TraceEvent ev;
  ev.kind = kind;
  ev.ts = ts;
  ev.dur = dur;
  ev.core = static_cast<std::int16_t>(core);
  ev.flow = flow;
  ev.seq = seq;
  ev.microflow = microflow;
  ev.aux = aux;
  record(ev);
}

void Tracer::mark(EventKind kind, sim::Time ts, int core, std::uint64_t aux) {
  TraceEvent ev;
  ev.kind = kind;
  ev.ts = ts;
  ev.core = static_cast<std::int16_t>(core);
  ev.aux = aux;
  record(ev);
}

void Tracer::absorb(std::vector<TraceEvent>&& events) {
  std::lock_guard lock(rt_mu_);
  for (TraceEvent& ev : events) {
    // Thread buffers already arrive in each thread's program order; stamp a
    // global index after the fact for a stable cross-thread sort.
    ev.idx = next_idx_++;
    ++recorded_;
    rt_events_.push_back(ev);
  }
}

void Tracer::clear() {
  tracks_.clear();
  {
    std::lock_guard lock(rt_mu_);
    rt_events_.clear();
  }
  recorded_ = 0;
  overwritten_ = 0;
  registry_.clear();
}

std::vector<TraceEvent> Tracer::sorted_events() const {
  std::vector<TraceEvent> out;
  for (const auto& [core, t] : tracks_)
    out.insert(out.end(), t.ring.begin(), t.ring.end());
  out.insert(out.end(), rt_events_.begin(), rt_events_.end());
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              return a.idx < b.idx;
            });
  return out;
}

}  // namespace mflow::trace
