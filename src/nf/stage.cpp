#include "nf/stage.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <string>

#include "stack/machine.hpp"
#include "trace/trace.hpp"

namespace mflow::nf {

namespace {

/// Delivers every packet of a flow to its pinned NF core, bypassing the
/// steering policy at this one transition (the handoff charge still
/// applies). Downstream stages continue on the pinned core — which is the
/// point: affinity serializes the flow from the NF onward.
class AffinityHook final : public stack::TransitionHook {
 public:
  AffinityHook(NfLayer& layer, stack::Machine& machine)
      : layer_(layer), machine_(machine) {}

  void on_forward(net::PacketPtr pkt, std::size_t next_index,
                  int from_core) override {
    int target = layer_.affinity_core_for(pkt->flow_id);
    if (target < 0) target = from_core;
    machine_.deliver_to_stage(next_index, target, from_core, std::move(pkt),
                              /*charge_handoff=*/true);
  }

 private:
  NfLayer& layer_;
  stack::Machine& machine_;
};

}  // namespace

NfLayer::NfLayer(LayerParams params, const stack::CostModel& costs)
    : params_(std::move(params)),
      costs_(costs),
      maglev_(MaglevTable::build(params_.chain.lb_backends,
                                 params_.chain.lb_table_size,
                                 params_.chain.lb_seed)),
      sharers_(control::FlowTableParams{1, params_.state_capacity,
                                        params_.state_ttl}) {
  // DES processing is single-threaded, so every table uses one shard —
  // iteration order (and thus expiry and digests) stays deterministic.
  const std::size_t n =
      params_.strategy == Strategy::kScr
          ? static_cast<std::size_t>(std::max(params_.num_cores, 1))
          : 1;
  replicas_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    replicas_.push_back(std::make_unique<control::FlowTable<FlowState>>(
        control::FlowTableParams{1, params_.state_capacity, /*ttl=*/0}));
}

control::FlowTable<FlowState>& NfLayer::table_for(int core_id) {
  if (params_.strategy != Strategy::kScr) return *replicas_[0];
  const std::size_t i = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(core_id, 0)), replicas_.size() - 1);
  return *replicas_[i];
}

sim::Time NfLayer::cost_of(Kind kind, const net::Packet& pkt) const {
  const std::uint32_t segs = std::max<std::uint32_t>(pkt.gro_segs, 1);
  sim::Time c = costs_.nf_state_lookup +
                costs_.nf_per_seg * static_cast<sim::Time>(segs - 1);
  switch (kind) {
    case Kind::kNat: c += costs_.nf_nat_per_skb; break;
    case Kind::kFirewall: c += costs_.nf_fw_per_skb; break;
    case Kind::kLoadBalancer: c += costs_.nf_lb_per_skb; break;
  }
  if (params_.strategy == Strategy::kSharedLock) {
    c += costs_.nf_lock_acquire;
    // Contention scales with the cores currently touching this flow's
    // state: cache-line bouncing plus serialization behind the holder.
    if (const std::uint64_t* mask = sharers_.find(pkt.flow_id)) {
      const int sharers = std::popcount(*mask);
      if (sharers > 1)
        c += costs_.nf_lock_contended * static_cast<sim::Time>(sharers - 1);
    }
  }
  return c;
}

void NfLayer::process(Kind kind, net::Packet& pkt, sim::Core& core,
                      stack::Machine& machine) {
  const sim::Time now = core.vnow();
  const net::FlowId fid = pkt.flow_id;
  const PacketView v = view_of(pkt);
  ++counters_.packets;
  counters_.segs += v.segs;

  // Sharer-mask bookkeeping (simulation-side, not semantic state): which
  // cores have touched this flow. Doubles as the authoritative recency
  // clock for expiry.
  std::uint64_t& mask = sharers_.upsert(fid, now);
  const std::uint64_t self = 1ull << (core.id() & 63);
  const std::uint64_t peers = mask & ~self;
  mask |= self;
  sharers_.touch(fid, now);

  switch (params_.strategy) {
    case Strategy::kSharedLock:
      ++counters_.lock_acquires;
      if (peers != 0) ++counters_.lock_contended;
      break;
    case Strategy::kScr:
      // The compact replicated update: every peer core carrying a replica
      // of this flow absorbs the update off its own cycle budget.
      for (int c = 0; c < params_.num_cores && c < 64; ++c) {
        if ((peers >> c) & 1) {
          machine.core(c).inject(sim::Tag::kNf, costs_.nf_scr_update);
          ++counters_.scr_updates;
        }
      }
      break;
    case Strategy::kFlowAffinity:
      break;  // the hook already paid the handoff
  }

  control::FlowTable<FlowState>& table = table_for(core.id());
  FlowState& st = table.upsert(fid, now);
  if (kind == Kind::kFirewall &&
      v.flow.protocol == net::Ipv4Header::kProtoTcp &&
      (v.tcp_flags & kTcpFlagSyn) == 0 &&
      (st.fw.flags & (kFwSawSyn | kFwSawSynAck)) == 0)
    counters_.fw_unsolicited += v.segs;
  apply(params_.chain, &maglev_, kind, v, st);
  table.touch(fid, now);

  if (kind == Kind::kNat) {
    if (nat_rewrite(params_.chain, pkt, st.nat.ext_port))
      ++counters_.nat_rewrites;
    else
      ++counters_.nat_rewrite_failures;
  }

  if (trace::Tracer* tr = trace::active())
    tr->packet(trace::EventKind::kNfApply, core.vnow(), core.id(),
               pkt.flow_id, pkt.wire_seq, pkt.microflow_id,
               static_cast<std::uint64_t>(kind));
}

std::size_t NfLayer::sweep(sim::Time now) {
  if (params_.state_ttl <= 0) return 0;
  idle_scratch_.clear();
  sharers_.collect_idle(now, idle_scratch_);
  for (const net::FlowId fid : idle_scratch_) {
    // Expiry is atomic per flow: the sharer table's recency is the newest
    // touch on ANY core, so when it says idle, every replica's piece is
    // idle — fold them all out together.
    FlowState total;
    for (const auto& rp : replicas_) {
      if (FlowState* s = rp->find(fid)) {
        merge(total, *s);
        rp->erase(fid);
      }
    }
    sharers_.erase(fid);
    ++counters_.flows_expired;
    counters_.expired_segs += total.fw.segs + total.nat.segs + total.lb.segs;
    if (reg_ != nullptr)
      reg_->remove_gauge("nf.flow." + std::to_string(fid) + ".cores");
  }
  if (reg_ != nullptr) {
    sharers_.for_each([&](net::FlowId fid, const std::uint64_t& mask) {
      reg_->set_gauge("nf.flow." + std::to_string(fid) + ".cores",
                      static_cast<double>(std::popcount(mask)));
    });
    reg_->set_gauge("nf.flows_live", static_cast<double>(sharers_.size()));
  }
  return idle_scratch_.size();
}

void NfLayer::export_stats() {
  if (reg_ == nullptr) return;
  reg_->set_counter("nf.packets", counters_.packets);
  reg_->set_counter("nf.segs", counters_.segs);
  reg_->set_counter("nf.nat_rewrites", counters_.nat_rewrites);
  reg_->set_counter("nf.nat_rewrite_failures",
                    counters_.nat_rewrite_failures);
  reg_->set_counter("nf.fw_unsolicited", counters_.fw_unsolicited);
  reg_->set_counter("nf.lock_acquires", counters_.lock_acquires);
  reg_->set_counter("nf.lock_contended", counters_.lock_contended);
  reg_->set_counter("nf.scr_updates", counters_.scr_updates);
  reg_->set_counter("nf.flows_expired", counters_.flows_expired);
  reg_->set_counter("nf.expired_segs", counters_.expired_segs);
  reg_->set_counter("nf.flows_peak", peak_flows());
  reg_->set_gauge("nf.flows_live", static_cast<double>(live_flows()));
}

void NfLayer::reset_measurement() { counters_ = Counters{}; }

std::vector<std::pair<net::FlowId, FlowState>> NfLayer::merged_state() const {
  std::map<net::FlowId, FlowState> acc;
  for (const auto& rp : replicas_) {
    rp->for_each([&](net::FlowId fid, const FlowState& s) {
      merge(acc[fid], s);
    });
  }
  return {acc.begin(), acc.end()};
}

std::uint64_t NfLayer::state_digest() const {
  std::uint64_t h = 0;
  for (const auto& [fid, st] : merged_state()) h = fold_digest(h, fid, st);
  return h;
}

int NfLayer::affinity_core_for(net::FlowId flow) const {
  if (params_.affinity_cores.empty()) return -1;
  return params_.affinity_cores[(flow * 2654435761ull) %
                                params_.affinity_cores.size()];
}

stack::TransitionHook& NfLayer::affinity_hook(stack::Machine& machine) {
  if (!hook_) hook_ = std::make_unique<AffinityHook>(*this, machine);
  return *hook_;
}

void NfStage::process(net::PacketPtr pkt, stack::StageContext& ctx) {
  layer_.process(kind_, *pkt, ctx.core, ctx.machine);
  ctx.forward(std::move(pkt));
}

std::size_t insert_stages(std::vector<std::unique_ptr<stack::Stage>>& path,
                          NfLayer& layer) {
  std::size_t pos = path.size();
  for (std::size_t i = 0; i < path.size(); ++i)
    if (path[i]->id() == stack::StageId::kIp) pos = i + 1;
  std::size_t at = pos;
  for (Kind k : layer.params().chain.chain)
    path.insert(path.begin() + static_cast<std::ptrdiff_t>(at++),
                std::make_unique<NfStage>(layer, k));
  return pos;
}

}  // namespace mflow::nf
