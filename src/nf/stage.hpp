// DES-side NF layer: the strategy seam between MFLOW's packet-level
// parallelism and stateful middlebox processing.
//
// NfLayer owns the chain configuration, the Maglev table, the per-strategy
// state store(s) — all `control::FlowTable`s with TTL expiry — and the
// counters. One NfStage per chained NF (all StageId::kNf) is inserted into
// the machine path right after the inner IP stage, so both the slow overlay
// path and the flow-cache fast path (which re-enters at inner IP) traverse
// the chain, as does the native path.
//
// Strategies:
//   kSharedLock   one table; every packet charges the lock acquire plus a
//                 contention penalty scaling with the cores currently
//                 sharing the flow — the serialization MFLOW splitting
//                 induces on a naive NF.
//   kFlowAffinity a TransitionHook before the first NF stage delivers every
//                 packet of a flow to its pinned core — state is trivially
//                 single-writer, but the split is defeated from the NF on.
//   kScr          per-core replica tables; processing a packet on core c
//                 updates c's replica only and charges the compact
//                 replicated-update cost to the OTHER cores sharing the
//                 flow (Core::inject). Lock-free, split preserved; the
//                 merged state is exact because nf::FlowState is a lattice.
//
// Expiry is driven by the shared sharer-mask table (its recency = the
// flow's newest touch on ANY core), so a flow's replicas are reclaimed
// atomically: no partial expiry can split a flow's merged state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/flowtable.hpp"
#include "nf/nf.hpp"
#include "stack/costs.hpp"
#include "stack/stage.hpp"
#include "trace/registry.hpp"

namespace mflow::stack {
class Machine;
}

namespace mflow::nf {

struct LayerParams {
  ChainConfig chain;
  Strategy strategy = Strategy::kScr;
  /// Per-table resident-entry bound (the sharer table and every replica).
  std::size_t state_capacity = 1 << 14;
  /// Idle horizon for sweep(); 0 disables TTL expiry (capacity still binds).
  sim::Time state_ttl = 0;
  /// Core count of the machine (replica array size; core ids must be < 64).
  int num_cores = 16;
  /// Pinned-core pool for kFlowAffinity: each flow hashes to one of these.
  std::vector<int> affinity_cores;
};

class NfLayer {
 public:
  NfLayer(LayerParams params, const stack::CostModel& costs);

  const LayerParams& params() const { return params_; }
  const MaglevTable& maglev() const { return maglev_; }

  /// Chargeable CPU for running `kind` over `pkt` on the packet's current
  /// core (NfStage::cost). Includes the strategy's own-core overhead; SCR's
  /// cross-core replication charge is injected during process() instead.
  sim::Time cost_of(Kind kind, const net::Packet& pkt) const;

  /// The state update for one packet at one chained NF.
  void process(Kind kind, net::Packet& pkt, sim::Core& core,
               stack::Machine& machine);

  /// TTL sweep at `now`: expire flows idle on EVERY core, fold their
  /// replicas into the expired accumulators, retract their gauges. Returns
  /// the number of flows expired. No-op when state_ttl == 0.
  std::size_t sweep(sim::Time now);

  /// Registry receiving nf.* counters/gauges (nullable). Per-flow gauges
  /// `nf.flow.<id>.cores` are set on sweep and retracted on expiry.
  void set_registry(trace::Registry* reg) { reg_ = reg; }
  /// Write the final aggregate counters/gauges into the registry.
  void export_stats();

  /// Zero the measurement-window counters (warmup boundary). State tables
  /// keep their entries — warmup-established bindings are the steady state.
  void reset_measurement();

  /// Merged semantic state over every replica, sorted by flow id — the
  /// surface the oracle-equality tests compare.
  std::vector<std::pair<net::FlowId, FlowState>> merged_state() const;
  /// fold_digest over merged_state().
  std::uint64_t state_digest() const;

  struct Counters {
    std::uint64_t packets = 0;        // skbs through any NF stage
    std::uint64_t segs = 0;           // wire segments those carried
    std::uint64_t nat_rewrites = 0;   // skbs with bytes rewritten
    std::uint64_t nat_rewrite_failures = 0;
    std::uint64_t fw_unsolicited = 0; // data segs on flows with no SYN seen
    std::uint64_t lock_acquires = 0;
    std::uint64_t lock_contended = 0; // acquires with >1 core on the flow
    std::uint64_t scr_updates = 0;    // replica updates pushed to peer cores
    std::uint64_t flows_expired = 0;
    std::uint64_t expired_segs = 0;   // segs folded out by expiry
  };
  const Counters& counters() const { return counters_; }
  std::size_t live_flows() const { return sharers_.size(); }
  std::size_t peak_flows() const { return sharers_.peak_size(); }

  /// Pinned core for `flow` under kFlowAffinity.
  int affinity_core_for(net::FlowId flow) const;
  /// TransitionHook delivering packets to their pinned core; install at the
  /// first NF stage's path index. Owned by the layer.
  stack::TransitionHook& affinity_hook(stack::Machine& machine);

 private:
  control::FlowTable<FlowState>& table_for(int core_id);
  const control::FlowTable<FlowState>* table_at(std::size_t i) const;

  LayerParams params_;
  stack::CostModel costs_;  // by value: callers may pass temporaries
  MaglevTable maglev_;
  /// replicas_[core] for kScr; replicas_[0] is the single shared table for
  /// kSharedLock / kFlowAffinity.
  std::vector<std::unique_ptr<control::FlowTable<FlowState>>> replicas_;
  /// flow -> bitmask of cores that processed it (strategy bookkeeping and
  /// the authoritative recency clock; NOT part of the semantic state).
  control::FlowTable<std::uint64_t> sharers_;
  Counters counters_;
  trace::Registry* reg_ = nullptr;
  std::unique_ptr<stack::TransitionHook> hook_;
  std::vector<net::FlowId> idle_scratch_;
};

/// One chained NF as a pipeline stage.
class NfStage final : public stack::Stage {
 public:
  NfStage(NfLayer& layer, Kind kind) : layer_(layer), kind_(kind) {}

  stack::StageId id() const override { return stack::StageId::kNf; }
  sim::Tag tag() const override { return sim::Tag::kNf; }
  sim::Time cost(const net::Packet& pkt) const override {
    return layer_.cost_of(kind_, pkt);
  }
  void process(net::PacketPtr pkt, stack::StageContext& ctx) override;
  Kind kind() const { return kind_; }

 private:
  NfLayer& layer_;
  Kind kind_;
};

/// Insert one NfStage per chained NF right after the LAST IP stage (the
/// container-side position a middlebox chain occupies — downstream of the
/// flow-cache fast-path re-entry, upstream of transport). Appends at the
/// end when the path has no IP stage. Returns the index of the first NF
/// stage — the affinity hook's install point.
std::size_t insert_stages(std::vector<std::unique_ptr<stack::Stage>>& path,
                          NfLayer& layer);

}  // namespace mflow::nf
