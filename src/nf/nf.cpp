#include "nf/nf.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mflow::nf {

namespace {

/// splitmix64 finalizer — the same mixing family the flow table uses.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t key_hash(const net::FlowKey& key, std::uint32_t seed) {
  std::uint64_t h = seed;
  h = mix64(h ^ key.src.value);
  h = mix64(h ^ key.dst.value);
  h = mix64(h ^ ((std::uint64_t{key.src_port} << 32) |
                 (std::uint64_t{key.dst_port} << 16) | key.protocol));
  return h;
}

}  // namespace

std::string_view kind_name(Kind kind) {
  switch (kind) {
    case Kind::kNat: return "nat";
    case Kind::kFirewall: return "fw";
    case Kind::kLoadBalancer: return "lb";
  }
  return "?";
}

std::string_view strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSharedLock: return "lock";
    case Strategy::kFlowAffinity: return "affinity";
    case Strategy::kScr: return "scr";
  }
  return "?";
}

Kind parse_kind(std::string_view name) {
  if (name == "nat") return Kind::kNat;
  if (name == "fw" || name == "firewall") return Kind::kFirewall;
  if (name == "lb" || name == "maglev") return Kind::kLoadBalancer;
  throw std::invalid_argument("unknown NF kind '" + std::string(name) +
                              "' (expected nat|fw|lb)");
}

Strategy parse_strategy(std::string_view name) {
  if (name == "lock") return Strategy::kSharedLock;
  if (name == "affinity") return Strategy::kFlowAffinity;
  if (name == "scr") return Strategy::kScr;
  throw std::invalid_argument("unknown NF strategy '" + std::string(name) +
                              "' (expected lock|affinity|scr)");
}

std::vector<Kind> parse_chain(std::string_view spec) {
  std::vector<Kind> chain;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find_first_of("+,", start);
    if (end == std::string_view::npos) end = spec.size();
    if (end > start) chain.push_back(parse_kind(spec.substr(start, end - start)));
    start = end + 1;
  }
  if (chain.empty())
    throw std::invalid_argument("empty NF chain spec '" + std::string(spec) +
                                "'");
  return chain;
}

std::string chain_name(const std::vector<Kind>& chain) {
  std::string out;
  for (Kind k : chain) {
    if (!out.empty()) out += '+';
    out += kind_name(k);
  }
  return out;
}

void merge(FlowState& into, const FlowState& from) {
  if (into.nat.ext_port == 0) into.nat.ext_port = from.nat.ext_port;
  into.nat.segs += from.nat.segs;
  into.nat.bytes += from.nat.bytes;

  into.fw.flags |= from.fw.flags;
  into.fw.segs += from.fw.segs;
  into.fw.bytes += from.fw.bytes;

  if (into.lb.backend == 0) into.lb.backend = from.lb.backend;
  into.lb.segs += from.lb.segs;
  into.lb.bytes += from.lb.bytes;
}

std::uint64_t digest(const FlowState& s) {
  std::uint64_t h = 0x6e66646967ull;  // 'nfdig'
  for (std::uint64_t v :
       {std::uint64_t{s.nat.ext_port}, s.nat.segs, s.nat.bytes,
        std::uint64_t{s.fw.flags}, s.fw.segs, s.fw.bytes,
        std::uint64_t{s.lb.backend}, s.lb.segs, s.lb.bytes})
    h = mix64(h ^ v);
  return h;
}

std::uint64_t fold_digest(std::uint64_t h, net::FlowId id,
                          const FlowState& s) {
  return mix64(h ^ mix64(id) ^ digest(s));
}

// --- Maglev ----------------------------------------------------------------

MaglevTable MaglevTable::build(std::uint32_t backends,
                               std::uint32_t table_size, std::uint32_t seed) {
  MaglevTable t;
  t.seed_ = seed;
  if (backends == 0 || table_size == 0) return t;
  const std::uint64_t m = table_size;
  // Per-backend permutation parameters (NSDI'16 §3.4: offset + skip).
  std::vector<std::uint64_t> offset(backends), skip(backends), next(backends);
  for (std::uint32_t b = 0; b < backends; ++b) {
    const std::uint64_t h1 = mix64((std::uint64_t{seed} << 32) | b);
    const std::uint64_t h2 = mix64(h1 ^ 0x5bd1e995u);
    offset[b] = h1 % m;
    skip[b] = m > 1 ? h2 % (m - 1) + 1 : 0;
    next[b] = 0;
  }
  t.lookup_.assign(table_size, 0);
  std::vector<bool> taken(table_size, false);
  std::uint64_t filled = 0;
  while (filled < m) {
    for (std::uint32_t b = 0; b < backends && filled < m; ++b) {
      std::uint64_t slot = (offset[b] + next[b] * skip[b]) % m;
      while (taken[slot]) {
        ++next[b];
        slot = (offset[b] + next[b] * skip[b]) % m;
      }
      taken[slot] = true;
      t.lookup_[slot] = b;
      ++next[b];
      ++filled;
    }
  }
  return t;
}

std::size_t MaglevTable::slots_of(std::uint32_t backend) const {
  return static_cast<std::size_t>(
      std::count(lookup_.begin(), lookup_.end(), backend));
}

// --- the state computation ---------------------------------------------------

PacketView view_of(const net::Packet& pkt) {
  PacketView v;
  v.flow = pkt.flow;
  v.wire_bytes = pkt.wire_len();
  v.segs = std::max<std::uint32_t>(pkt.gro_segs, 1);
  if (pkt.flow.protocol == net::Ipv4Header::kProtoTcp && !pkt.encapsulated) {
    const auto bytes = pkt.buf.data();
    constexpr std::size_t kTcpOff =
        net::EthernetHeader::kSize + net::Ipv4Header::kSize;
    if (bytes.size() >= kTcpOff + net::TcpHeader::kSize) {
      const net::TcpHeader tcp = net::TcpHeader::decode(bytes.subspan(kTcpOff));
      if (tcp.flag_syn) v.tcp_flags |= kTcpFlagSyn;
      if (tcp.flag_ack) v.tcp_flags |= kTcpFlagAck;
      if (tcp.flag_fin) v.tcp_flags |= kTcpFlagFin;
    }
  }
  return v;
}

std::uint16_t nat_port_for(const ChainConfig& cfg, const net::FlowKey& key) {
  const std::uint16_t span = std::max<std::uint16_t>(cfg.nat_port_span, 1);
  return static_cast<std::uint16_t>(cfg.nat_port_base +
                                    key_hash(key, cfg.nat_seed) % span);
}

void apply(const ChainConfig& cfg, const MaglevTable* maglev, Kind kind,
           const PacketView& view, FlowState& state) {
  switch (kind) {
    case Kind::kNat:
      if (state.nat.ext_port == 0)
        state.nat.ext_port = nat_port_for(cfg, view.flow);
      state.nat.segs += view.segs;
      state.nat.bytes += view.wire_bytes;
      break;
    case Kind::kFirewall: {
      std::uint8_t cls = 0;
      if (view.tcp_flags & kTcpFlagSyn)
        cls = (view.tcp_flags & kTcpFlagAck) ? kFwSawSynAck : kFwSawSyn;
      else if (view.tcp_flags & kTcpFlagFin)
        cls = kFwSawFin;
      else
        cls = kFwSawData;
      // FIN may ride on a data segment; record teardown regardless.
      if ((view.tcp_flags & kTcpFlagFin) != 0) cls |= kFwSawFin;
      state.fw.flags |= cls;
      state.fw.segs += view.segs;
      state.fw.bytes += view.wire_bytes;
      break;
    }
    case Kind::kLoadBalancer:
      if (state.lb.backend == 0 && maglev != nullptr)
        state.lb.backend = maglev->backend_for(view.flow) + 1;
      state.lb.segs += view.segs;
      state.lb.bytes += view.wire_bytes;
      break;
  }
}

bool nat_rewrite(const ChainConfig& cfg, net::Packet& pkt,
                 std::uint16_t ext_port) {
  if (pkt.encapsulated) return false;
  auto bytes = pkt.buf.data();
  constexpr std::size_t kIpOff = net::EthernetHeader::kSize;
  constexpr std::size_t kL4Off = kIpOff + net::Ipv4Header::kSize;
  if (bytes.size() < kL4Off + 4) return false;
  const net::EthernetHeader eth = net::EthernetHeader::decode(bytes);
  if (eth.ethertype != net::EthernetHeader::kEtherTypeIpv4) return false;
  net::Ipv4Header ip = net::Ipv4Header::decode(bytes.subspan(kIpOff));
  if (ip.protocol != net::Ipv4Header::kProtoTcp &&
      ip.protocol != net::Ipv4Header::kProtoUdp)
    return false;
  ip.src = cfg.nat_external;
  ip.encode(bytes.subspan(kIpOff));  // recomputes the header checksum
  // Source port is the first 16-bit field of both TCP and UDP.
  bytes[kL4Off] = static_cast<std::uint8_t>(ext_port >> 8);
  bytes[kL4Off + 1] = static_cast<std::uint8_t>(ext_port & 0xFF);
  return true;
}

}  // namespace mflow::nf
