// Stateful network functions (NAT, stateful firewall, Maglev L4 LB) with
// per-flow state designed for State-Compute Replication (SCR).
//
// MFLOW's micro-flow splitting sends packets of ONE flow to several cores —
// exactly the access pattern that wrecks a stateful middlebox keyed on the
// 5-tuple. SCR (PAPERS.md: "State-Compute Replication: Parallelizing
// High-Speed Stateful Packet Processing") parallelizes such NFs without a
// shared lock by letting every core run the full state computation on the
// packets it sees and reconciling replicas afterwards. For that merge to be
// EXACT (not approximate), this module formulates each NF's per-flow state
// as a join-semilattice / commutative-monoid value:
//
//   - bindings (NAT external port, LB backend) are PURE deterministic
//     functions of the flow key and replicated configuration — every core
//     computes the same binding independently, no coordination needed;
//   - counters (packets, bytes) are sums — merge is addition;
//   - firewall connection tracking keeps the SET of TCP flag classes seen
//     (SYN / SYN+ACK / FIN / bare data) — merge is bitwise OR, and the
//     conntrack phase is DERIVED from the set, monotone in it.
//
// With that shape, merge(replica_1 .. replica_k) over any partition, in any
// order, with any interleaving, equals the state a single in-order core
// (the shared-lock oracle) would hold after the same packet multiset —
// which is what tests/test_nf.cpp asserts under split, reorder, loss and
// live rescale. The engine-facing strategy seam (shared-lock / flow-
// affinity / SCR) lives in nf/stage.hpp (DES) and rt/engine.cpp (rt); this
// header is engine-agnostic and depends only on src/net.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/flow.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"

namespace mflow::nf {

/// The concrete NFs. A chain is an ordered list of these.
enum class Kind : std::uint8_t {
  kNat,           // dynamic source NAT: port allocation + header rewrite
  kFirewall,      // stateful firewall: TCP conntrack (SYN/EST/FIN machine)
  kLoadBalancer,  // Maglev-style consistent-hash L4 load balancer
};

/// How per-flow NF state is parallelized when MFLOW splits the flow.
enum class Strategy : std::uint8_t {
  kSharedLock,    // one state table, one lock — split packets serialize on it
  kFlowAffinity,  // NF pinned per flow: packets converge on one core,
                  // defeating the split downstream of the NF
  kScr,           // state-compute replication: per-core replicas, lock-free,
                  // merged deterministically
};

std::string_view kind_name(Kind kind);
std::string_view strategy_name(Strategy strategy);
/// Parse "nat" / "fw" ("firewall") / "lb" ("maglev"); throws
/// std::invalid_argument with the accepted spellings.
Kind parse_kind(std::string_view name);
/// Parse "lock" / "affinity" / "scr" (same error contract).
Strategy parse_strategy(std::string_view name);
/// Parse a '+'- or ','-separated chain spec, e.g. "nat+fw+lb".
std::vector<Kind> parse_chain(std::string_view spec);
std::string chain_name(const std::vector<Kind>& chain);

/// Replicated NF configuration: every core holds an identical copy, so any
/// pure function of (config, flow key) is computed consistently everywhere.
struct ChainConfig {
  std::vector<Kind> chain = {Kind::kFirewall};

  // --- dynamic NAT ---------------------------------------------------------
  /// External ports are drawn from [nat_port_base, nat_port_base +
  /// nat_port_span) by a keyed hash (RFC 6056-style algorithm 3); collisions
  /// across flows are tolerated (counted by the caller, never fatal) —
  /// resolving them would need global agreement, which is exactly what SCR
  /// avoids.
  std::uint16_t nat_port_base = 1024;
  std::uint16_t nat_port_span = 60000;
  net::Ipv4Addr nat_external{203, 0, 113, 1};
  std::uint32_t nat_seed = 0x6e61742b;

  // --- Maglev L4 load balancer ---------------------------------------------
  std::uint32_t lb_backends = 8;
  /// Lookup-table size; Maglev wants a prime well above the backend count
  /// for even slices. Not required to be prime here, but the default is.
  std::uint32_t lb_table_size = 251;
  std::uint32_t lb_seed = 0x6d616c76;
};

// --- per-flow state (the mergeable lattice) ---------------------------------

/// Flag classes a firewall conntrack entry accumulates (bitwise-OR lattice).
enum : std::uint8_t {
  kFwSawSyn = 1u << 0,     // SYN without ACK: opener
  kFwSawSynAck = 1u << 1,  // SYN+ACK: responder half observed
  kFwSawFin = 1u << 2,     // FIN: teardown started
  kFwSawData = 1u << 3,    // non-SYN segment (payload/ACK traffic)
};

/// Conntrack phase DERIVED from the flag set (monotone in it, so the phase
/// of a merged entry equals the phase the in-order oracle derives).
enum class FwPhase : std::uint8_t {
  kNew,          // nothing but unsolicited data
  kSynSent,      // opener seen, no responder
  kEstablished,  // both SYN directions seen
  kClosing,      // FIN seen
};

struct NatState {
  std::uint16_t ext_port = 0;  // binding: pure fn of key, 0 = unset
  std::uint64_t segs = 0;      // wire segments (GRO-invariant unit)
  std::uint64_t bytes = 0;
  bool operator==(const NatState&) const = default;
};

struct FwState {
  std::uint8_t flags = 0;  // OR of kFwSaw*
  std::uint64_t segs = 0;
  std::uint64_t bytes = 0;
  FwPhase phase() const {
    if (flags & kFwSawFin) return FwPhase::kClosing;
    if ((flags & kFwSawSyn) && (flags & kFwSawSynAck))
      return FwPhase::kEstablished;
    if (flags & (kFwSawSyn | kFwSawSynAck)) return FwPhase::kSynSent;
    return FwPhase::kNew;
  }
  bool operator==(const FwState&) const = default;
};

struct LbState {
  std::uint32_t backend = 0;  // binding: pure fn of key (+1; 0 = unset)
  std::uint64_t segs = 0;
  std::uint64_t bytes = 0;
  bool operator==(const LbState&) const = default;
};

/// Per-flow state across the whole chain. Only semantic, seg-conserved
/// quantities live here (counts are per wire segment, never per skb, so GRO
/// coalescing timing cannot perturb the digest).
struct FlowState {
  NatState nat;
  FwState fw;
  LbState lb;
  bool operator==(const FlowState&) const = default;
};

/// Join two replicas: sums for counters, OR for flag sets, first-nonzero
/// for bindings (equal whenever both are set, by purity). Commutative and
/// associative — replica merge order cannot matter.
void merge(FlowState& into, const FlowState& from);

/// Order-insensitive digest of one flow's semantic state.
std::uint64_t digest(const FlowState& s);
/// Fold one (flow, state) pair into a table digest. Callers fold over
/// entries sorted by flow id so two tables digest equal iff they hold the
/// same mapping.
std::uint64_t fold_digest(std::uint64_t h, net::FlowId id, const FlowState& s);

// --- Maglev ----------------------------------------------------------------

/// Maglev consistent-hash lookup table (NSDI'16 §3.4): each backend fills
/// table slots following its own permutation until every slot is owned.
/// Deterministic in (backends, size, seed), so replicated construction on
/// every core yields identical tables — backend choice is a pure function.
class MaglevTable {
 public:
  MaglevTable() = default;
  static MaglevTable build(std::uint32_t backends, std::uint32_t table_size,
                           std::uint32_t seed);

  std::uint32_t backend_for(const net::FlowKey& key) const {
    return lookup_.empty()
               ? 0
               : lookup_[net::flow_hash(key, seed_) % lookup_.size()];
  }
  std::size_t size() const { return lookup_.size(); }
  /// Slots owned by `backend` (population-evenness checks in tests).
  std::size_t slots_of(std::uint32_t backend) const;

 private:
  std::vector<std::uint32_t> lookup_;
  std::uint32_t seed_ = 0;
};

// --- the state computation ---------------------------------------------------

/// TCP flag bits as PacketView carries them.
enum : std::uint8_t {
  kTcpFlagSyn = 1u << 0,
  kTcpFlagAck = 1u << 1,
  kTcpFlagFin = 1u << 2,
};

/// Per-packet inputs the state update consumes, decoupled from net::Packet
/// so the rt engine and property tests can feed synthetic streams.
struct PacketView {
  net::FlowKey flow;            // innermost 5-tuple
  std::uint32_t wire_bytes = 0; // headers + virtual payload
  std::uint32_t segs = 1;       // wire segments carried (GRO super-skb > 1)
  std::uint8_t tcp_flags = 0;   // kTcpFlag* bits; 0 for UDP
};

/// Extract the view from a real packet: flow key from metadata, TCP flags
/// decoded from the actual header bytes when the (decapsulated) buffer
/// parses as Eth/IPv4/TCP.
PacketView view_of(const net::Packet& pkt);

/// Deterministic dynamic-NAT port for `key` — the replicated computation
/// every core performs instead of synchronizing on an allocation bitmap.
std::uint16_t nat_port_for(const ChainConfig& cfg, const net::FlowKey& key);

/// Apply one NF's state update for one packet. Pure in (cfg, maglev, view):
/// identical inputs produce identical updates on every core, which is the
/// SCR replication invariant.
void apply(const ChainConfig& cfg, const MaglevTable* maglev, Kind kind,
           const PacketView& view, FlowState& state);

/// Rewrite the packet's real header bytes for source NAT (src address ->
/// cfg.nat_external, src port -> ext_port, IPv4 checksum recomputed).
/// Returns false when the buffer does not parse as Eth/IPv4/{TCP,UDP}
/// (e.g. still encapsulated). Flow METADATA (pkt.flow / flow_id) is left
/// untouched: delivery downstream keys on the destination.
bool nat_rewrite(const ChainConfig& cfg, net::Packet& pkt,
                 std::uint16_t ext_port);

}  // namespace mflow::nf
