// Flow splitting (paper §III-A).
//
// BatchAssigner implements the micro-flow policy shared by both splitting
// mechanisms: consecutive runs of `batch_size` packets form micro-flows,
// each micro-flow is assigned a splitting core round-robin, and the
// micro-flow ID (its position in the original flow) rides in the skb.
//
// FlowSplitter is the stage-transition mechanism: installed as the
// TransitionHook on the edge *into* a heavyweight device (e.g. VXLAN), it
// re-purposes the transition function to enqueue each micro-flow onto its
// target core's per-core, per-device splitting queue and raise a softirq
// there via IPI — instead of the default same-core enqueue.
#pragma once

#include <cstdint>
#include <vector>

#include "control/flowtable.hpp"
#include "control/policy.hpp"
#include "core/config.hpp"
#include "core/reassembler.hpp"
#include "stack/machine.hpp"

namespace mflow::core {

class BatchAssigner {
 public:
  explicit BatchAssigner(const MflowConfig& config)
      : config_(config), flows_(config.flow_table) {}

  struct Assignment {
    std::uint64_t microflow_id = 0;  // 0 => flow not split (mouse flow)
    int target_core = -1;
    bool new_batch = false;  // first packet of its micro-flow
    /// Flow just started (or resumed) splitting with this packet;
    /// microflow_id is the first batch of the new split period.
    bool first_split = false;
    /// Flow just stopped splitting: this packet takes the default path but
    /// earlier micro-flow batches may still be in flight behind it.
    bool unsplit = false;
    /// Default-path segments the flow had sent before (re)splitting — they
    /// may still be in flight, so the new period's first batch must wait
    /// behind them.
    std::uint64_t prior_segs = 0;
  };

  /// Classify + assign one packet of `flow`. `segs` counts the wire
  /// segments the skb carries (1 before GRO); `bytes` its payload size
  /// (rate-monitoring input, 0 when unknown).
  Assignment assign(net::FlowId flow, std::uint32_t segs,
                    std::uint32_t bytes = 0);

  /// Runtime degree override from the control plane: 0 forces the default
  /// (unsplit) path, k splits round-robin over the first k splitting cores.
  /// Takes effect on the flow's next packet; targets change only at batch
  /// boundaries. Overrides win over the static elephant threshold.
  void set_flow_degree(net::FlowId flow, std::uint32_t degree);
  /// Current override (0 = none set or forced-mouse).
  std::uint32_t flow_degree(net::FlowId flow) const;

  /// Packets observed for a flow so far (elephant classification input).
  std::uint64_t observed(net::FlowId flow) const;

  /// Cumulative per-flow totals in first-seen order — the pull source the
  /// control plane's FlowMonitor differentiates into rates.
  void append_totals(std::vector<control::Controller::FlowTotals>& out) const;

  /// Forget one flow entirely — counters, batch cursor AND degree override
  /// (flow-state expiry). Without this an expired elephant's override
  /// would resurrect on the first packet of an unrelated flow that reuses
  /// the FlowId. Returns false if the flow was not tracked.
  bool erase_flow(net::FlowId flow) { return flows_.erase(flow); }

  std::size_t tracked_flows() const { return flows_.size(); }
  std::size_t peak_tracked() const { return flows_.peak_size(); }

 private:
  struct PerFlow {
    std::uint64_t seen_segs = 0;
    std::uint64_t seen_bytes = 0;
    std::uint64_t default_segs = 0;  // segments sent via the default path
    std::uint64_t batch = 0;       // current micro-flow id (1-based)
    std::uint32_t in_batch = 0;    // segments already placed in it
    std::size_t rr = 0;            // next splitting-core index
    int target = -1;
    bool split_active = false;     // currently in a splitting period
    /// Control-plane degree override rides in the same entry as the batch
    /// cursor so expiry reclaims both atomically.
    std::uint32_t override_degree = 0;
    bool has_override = false;
    std::uint64_t seq = 0;  // first-seen order for append_totals
  };

  const MflowConfig& config_;
  control::FlowTable<PerFlow> flows_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t ops_ = 0;  // monotone packet counter = the table's clock
};

class FlowSplitter final : public stack::TransitionHook {
 public:
  /// `reassembler_for` maps a packet to the reassembler of its destination
  /// socket (so dispatch bookkeeping lands where merging happens).
  using ReassemblerLookup =
      std::function<Reassembler*(const net::Packet&)>;

  FlowSplitter(stack::Machine& machine, const MflowConfig& config,
               ReassemblerLookup lookup)
      : machine_(machine),
        config_(config),
        assigner_(config_),
        lookup_(std::move(lookup)) {}

  void on_forward(net::PacketPtr pkt, std::size_t next_index,
                  int from_core) override;

  std::uint64_t packets_split() const { return split_; }
  std::uint64_t packets_passed() const { return passed_; }
  const BatchAssigner& assigner() const { return assigner_; }
  BatchAssigner& assigner() { return assigner_; }

 private:
  stack::Machine& machine_;
  const MflowConfig& config_;
  BatchAssigner assigner_;
  ReassemblerLookup lookup_;
  std::uint64_t split_ = 0;
  std::uint64_t passed_ = 0;
};

}  // namespace mflow::core
