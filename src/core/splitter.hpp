// Flow splitting (paper §III-A).
//
// BatchAssigner implements the micro-flow policy shared by both splitting
// mechanisms: consecutive runs of `batch_size` packets form micro-flows,
// each micro-flow is assigned a splitting core round-robin, and the
// micro-flow ID (its position in the original flow) rides in the skb.
//
// FlowSplitter is the stage-transition mechanism: installed as the
// TransitionHook on the edge *into* a heavyweight device (e.g. VXLAN), it
// re-purposes the transition function to enqueue each micro-flow onto its
// target core's per-core, per-device splitting queue and raise a softirq
// there via IPI — instead of the default same-core enqueue.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/config.hpp"
#include "core/reassembler.hpp"
#include "stack/machine.hpp"

namespace mflow::core {

class BatchAssigner {
 public:
  explicit BatchAssigner(const MflowConfig& config) : config_(config) {}

  struct Assignment {
    std::uint64_t microflow_id = 0;  // 0 => flow not split (mouse flow)
    int target_core = -1;
    bool new_batch = false;  // first packet of its micro-flow
    /// Flow just crossed the elephant threshold with this packet.
    bool first_split = false;
    /// Default-path segments the flow had already sent before it split —
    /// they may still be in flight, so batch 1 must wait behind them.
    std::uint64_t prior_segs = 0;
  };

  /// Classify + assign one packet of `flow`. `segs` counts the wire
  /// segments the skb carries (1 before GRO).
  Assignment assign(net::FlowId flow, std::uint32_t segs);

  /// Packets observed for a flow so far (elephant classification input).
  std::uint64_t observed(net::FlowId flow) const;

 private:
  struct PerFlow {
    std::uint64_t seen_segs = 0;
    std::uint64_t batch = 0;       // current micro-flow id (1-based)
    std::uint32_t in_batch = 0;    // segments already placed in it
    std::size_t rr = 0;            // next splitting-core index
    int target = -1;
  };

  const MflowConfig& config_;
  std::unordered_map<net::FlowId, PerFlow> flows_;
};

class FlowSplitter final : public stack::TransitionHook {
 public:
  /// `reassembler_for` maps a packet to the reassembler of its destination
  /// socket (so dispatch bookkeeping lands where merging happens).
  using ReassemblerLookup =
      std::function<Reassembler*(const net::Packet&)>;

  FlowSplitter(stack::Machine& machine, const MflowConfig& config,
               ReassemblerLookup lookup)
      : machine_(machine),
        config_(config),
        assigner_(config_),
        lookup_(std::move(lookup)) {}

  void on_forward(net::PacketPtr pkt, std::size_t next_index,
                  int from_core) override;

  std::uint64_t packets_split() const { return split_; }
  std::uint64_t packets_passed() const { return passed_; }
  const BatchAssigner& assigner() const { return assigner_; }

 private:
  stack::Machine& machine_;
  const MflowConfig& config_;
  BatchAssigner assigner_;
  ReassemblerLookup lookup_;
  std::uint64_t split_ = 0;
  std::uint64_t passed_ = 0;
};

}  // namespace mflow::core
