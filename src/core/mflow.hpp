// MflowEngine: installs MFLOW onto a Machine.
//
// Ties together the three mechanisms:
//   splitting   — FlowSplitter hook at a stage transition, or IrqSplitter
//                 replacing the driver poll (per MflowConfig::split_point);
//   steering    — per-core splitting queues + optional per-branch pipeline
//                 (the caller installs steer::PairedPipelineSteering);
//   reassembling— a Reassembler per socket, plugged into the socket's
//                 packet-delivery thread (merge at recvmsg).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "control/capacity.hpp"
#include "control/policy.hpp"
#include "core/irq_split.hpp"
#include "core/splitter.hpp"

namespace mflow::core {

class MflowEngine final {
 public:
  MflowEngine(stack::Machine& machine, MflowConfig config);
  ~MflowEngine();

  const MflowConfig& config() const { return config_; }

  /// Live-tunable configuration: the splitters hold a reference to this
  /// instance, so changes (e.g. batch_size from the adaptive controller)
  /// apply from the next micro-flow boundary onward.
  MflowConfig& mutable_config() { return config_; }

  /// Create this socket's reassembler and plug it into the socket's reader.
  /// Must be called for every socket receiving split traffic.
  void attach_socket(std::uint16_t port, stack::Socket& socket);

  /// Install the configured splitting mechanism. Call after Machine::start()
  /// and after all attach_socket() calls.
  void install();

  Reassembler* reassembler_for_port(std::uint16_t port);

  // --- data-path entry points for MflowCapacityAdapter ---------------------
  // The control plane never calls these directly: it goes through a
  // control::CapacityTarget, implemented for this engine by
  // MflowCapacityAdapter below (the one place allowed to call them).
  /// Retarget one flow's split degree on every installed splitting
  /// mechanism. Effective from the flow's next packet; micro-flow targets
  /// change only at batch boundaries, and the reassemblers run the
  /// rescale-drain protocol for the transition.
  void set_flow_degree(net::FlowId flow, std::uint32_t degree);
  std::uint32_t max_degree() const {
    return static_cast<std::uint32_t>(config_.splitting_cores.size());
  }
  /// Flow-state expiry (control-plane TTL): forget the flow everywhere —
  /// split-point counters + degree override, reassembly ledgers, cached
  /// fast-path entries — IF no reassembler holds in-flight work for it;
  /// otherwise refuse (the Controller retries after the drain). All-or-
  /// nothing so a reused FlowId never meets half-stale state.
  bool release_flow(net::FlowId flow);

  /// Cumulative per-flow split-point totals across all splitters — the
  /// pull source for the control plane's FlowMonitor.
  std::vector<control::Controller::FlowTotals> flow_totals() const;

  // --- aggregate statistics ------------------------------------------------
  std::uint64_t ooo_arrivals() const;
  std::uint64_t batches_merged() const;
  std::uint64_t packets_merged() const;
  std::uint64_t drops_recovered() const;
  std::uint64_t evictions() const;
  std::uint64_t late_deliveries() const;
  /// True if any socket's reassembler holds a wedged flow (buffered or
  /// outstanding work with nothing ready).
  bool any_flow_blocked() const;
  /// Every reassembler fully drained (rescale-drain completion).
  bool drained() const;
  util::RunningStats recovery_latency_ns() const;
  void reset_stats();

 private:
  stack::Machine& machine_;
  MflowConfig config_;
  std::unordered_map<std::uint16_t, std::unique_ptr<Reassembler>>
      reassemblers_;
  std::unique_ptr<FlowSplitter> splitter_;
  std::vector<std::unique_ptr<IrqSplitter>> irq_splitters_;
};

/// The DES engine's single control::CapacityTarget implementation.
///
/// Flow dimension: forwards degree/release calls to the engine, deduping
/// no-op degree reissues (each engine-level set_flow_degree invalidates
/// fast-path cache entries, so a redundant call is not free) and clamping
/// every degree to the active-worker budget.
///
/// Capacity dimension: `active` is the worker budget in [1, worker_limit]
/// (worker_limit = the engine's splitting-core count). max_degree()
/// reports the CURRENT budget, so the Controller self-clamps on its next
/// tick. Growing commits immediately. Shrinking first demotes every
/// tracked flow whose degree exceeds the new budget (opening the normal
/// rescale-drain protocol on each), then VETOES the commit until every
/// reassembler reports drained() — the retiring lanes may still carry
/// in-flight micro-flow batches until then. The Autoscaler retries; the
/// shrink target is re-derived fresh on each attempt.
class MflowCapacityAdapter final : public control::CapacityTarget {
 public:
  explicit MflowCapacityAdapter(MflowEngine& engine,
                                std::uint32_t initial_workers = 0);

  void set_flow_degree(net::FlowId flow, std::uint32_t degree) override;
  std::uint32_t max_degree() const override { return active_; }
  bool release_flow(net::FlowId flow) override;

  std::uint32_t worker_limit() const override {
    return engine_.max_degree();
  }
  std::uint32_t active_workers() const override { return active_; }
  bool set_active_workers(std::uint32_t workers) override;

 private:
  std::uint32_t clamp_workers(std::uint32_t workers) const;

  MflowEngine& engine_;
  std::uint32_t active_ = 1;
  /// Mirror of the degrees the adapter has committed to the engine
  /// (split flows only), for dedup and shrink-time demotion.
  std::unordered_map<net::FlowId, std::uint32_t> degrees_;
};

}  // namespace mflow::core
