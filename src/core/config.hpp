// MFLOW configuration (paper §III: parameters for packet-level parallelism).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "control/flowtable.hpp"
#include "sim/time.hpp"
#include "stack/stage.hpp"

namespace mflow::core {

/// Where the flow is split.
enum class SplitPoint {
  /// IRQ-splitting function: split raw packet *requests* before skb
  /// allocation — the earliest software point (full path scaling).
  kIrq,
  /// Flow-splitting function: split skbs at the transition into
  /// `split_before` (single heavyweight-device scaling, e.g. VXLAN).
  kBeforeStage,
};

struct MflowConfig {
  /// Micro-flow batch size. Paper default 256: large enough that order
  /// preservation costs almost nothing (Fig. 7), small enough to spread.
  std::uint32_t batch_size = 256;

  /// Cores that process micro-flows in parallel. Paper default: two.
  std::vector<int> splitting_cores = {2, 3};

  SplitPoint split_point = SplitPoint::kBeforeStage;
  stack::StageId split_before = stack::StageId::kVxlan;

  /// Per-branch pipelining (paper §V TCP full-path layout): each splitting
  /// core only runs skb allocation and hands the rest of its branch to a
  /// partner core (2->4, 3->5). `pipeline_at` is the stage whose transition
  /// applies the mapping (the first stage after the splitting cores' work).
  std::unordered_map<int, int> pipeline_pairs = {};
  stack::StageId pipeline_at = stack::StageId::kGro;

  /// Defer stateful TCP processing to the packet-delivery thread, after the
  /// merge ("merging occurred before packets entered the stateful TCP
  /// transport layer"). UDP always merges at the socket (late merging).
  bool tcp_in_reader = true;

  /// Only flows classified as elephants are split; others pass through
  /// untouched. 0 = split everything (micro-benchmarks).
  std::uint64_t elephant_threshold_pkts = 0;

  /// Merge-head stall duration after which the reassembler evicts the
  /// missing segments of the stuck batch (drops the paper never models).
  /// 0 restores the paper's lossless assumption: a silent loss wedges the
  /// flow forever.
  sim::Time merge_eviction_timeout = sim::ms(1);

  /// Upper bound on how long batch 1 of a freshly split flow waits for the
  /// flow's pre-split packets to drain out of the pipeline. Within the
  /// grace the mouse->elephant transition is reorder-free; past it the gate
  /// opens anyway (a loss or a backlogged core is delaying the stragglers,
  /// and stalling a deadline workload costs more than letting TCP's ofo
  /// queue absorb the residual reorder).
  sim::Time split_gate_grace = sim::us(100);

  /// Split-point per-flow state (batch cursors, counters, degree
  /// overrides) lives in a bounded FlowTable; capacity eviction reclaims
  /// the least-recently-seen flow if the control plane never releases it.
  /// ttl is ignored here — expiry is driven by the Controller, which must
  /// sequence it with the rescale-drain protocol.
  control::FlowTableParams flow_table{/*shards=*/1, /*capacity=*/1 << 20,
                                      /*ttl=*/0};

  std::string describe() const;
};

/// Paper defaults for TCP: full-path scaling (IRQ split, cores 2&3 for skb
/// allocation, partners 4&5 for the remaining stages, merge before TCP).
MflowConfig tcp_full_path_config();

/// Paper defaults for UDP: single-device scaling around VXLAN with late
/// merging at the socket.
MflowConfig udp_device_scaling_config();

}  // namespace mflow::core
