#include "core/config.hpp"

#include <sstream>

namespace mflow::core {

std::string MflowConfig::describe() const {
  std::ostringstream os;
  os << "mflow{batch=" << batch_size << ", cores=[";
  for (std::size_t i = 0; i < splitting_cores.size(); ++i) {
    if (i) os << ",";
    os << splitting_cores[i];
  }
  os << "], split="
     << (split_point == SplitPoint::kIrq
             ? "irq"
             : std::string(stack::stage_name(split_before)))
     << (pipeline_pairs.empty() ? "" : ", per-branch-pipeline")
     << (tcp_in_reader ? ", merge-before-tcp" : "") << "}";
  return os.str();
}

MflowConfig tcp_full_path_config() {
  MflowConfig cfg;
  cfg.split_point = SplitPoint::kIrq;
  cfg.splitting_cores = {2, 3};
  cfg.pipeline_pairs = {{2, 4}, {3, 5}};
  cfg.tcp_in_reader = true;
  return cfg;
}

MflowConfig udp_device_scaling_config() {
  MflowConfig cfg;
  cfg.split_point = SplitPoint::kBeforeStage;
  cfg.split_before = stack::StageId::kVxlan;
  cfg.splitting_cores = {2, 3};
  cfg.tcp_in_reader = false;
  return cfg;
}

}  // namespace mflow::core
