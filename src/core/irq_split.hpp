// IRQ-splitting function (paper §III-A "Splitting mechanism for the first
// stage" and §IV).
//
// Splits packet processing *before any skb exists*: the physical NIC's
// softirq is divided into two halves. The first half runs on the IRQ core —
// it only locates raw packet requests in the driver's request queue,
// dispatches them (as lightweight requests, not skbs) onto per-core request
// ring buffers, and raises softirqs on the splitting cores via IPI. The
// second half runs on each splitting core and performs the heavyweight part
// — skb allocation — in parallel, updating the driver's ring only every
// `release_batch` requests to avoid contention.
//
// Like the paper's implementation, this depends on the driver only through
// (a) its request queue and (b) how to pop requests — here net::RxRing.
#pragma once

#include <memory>
#include <vector>

#include "core/splitter.hpp"
#include "net/ring.hpp"
#include "stack/machine.hpp"

namespace mflow::core {

class IrqSplitter {
 public:
  IrqSplitter(stack::Machine& machine, const MflowConfig& config,
              net::RxRing& driver_ring, int irq_core,
              FlowSplitter::ReassemblerLookup lookup);
  ~IrqSplitter();

  /// Replace the default driver pollable of `queue` with the first half.
  void install(int queue);

  std::uint64_t requests_dispatched() const { return dispatched_; }
  std::uint64_t request_ring_drops() const;
  const BatchAssigner& assigner() const { return assigner_; }
  BatchAssigner& assigner() { return assigner_; }

 private:
  class FirstHalf;
  class SecondHalf;

  /// Index of `core_id` within the configured splitting cores.
  std::size_t core_slot(int core_id) const;

  stack::Machine& machine_;
  const MflowConfig& config_;
  net::RxRing& driver_ring_;
  int irq_core_;
  BatchAssigner assigner_;
  FlowSplitter::ReassemblerLookup lookup_;

  // Per-splitting-core request ring buffers (created at initialization,
  // attached where the splitting core's softirq can reach them — the
  // paper hangs them off softnet_data).
  std::vector<std::unique_ptr<net::RxRing>> request_rings_;
  std::unique_ptr<FirstHalf> first_half_;
  std::vector<std::unique_ptr<SecondHalf>> second_halves_;
  std::uint64_t dispatched_ = 0;
};

}  // namespace mflow::core
