#include "core/reassembler.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace mflow::core {
namespace {

std::uint32_t lookup(const std::map<std::uint64_t, std::uint32_t>& m,
                     std::uint64_t key) {
  const auto it = m.find(key);
  return it == m.end() ? 0 : it->second;
}

}  // namespace

Reassembler::FlowMerge& Reassembler::flow_state(net::FlowId flow) {
  auto [it, inserted] = flows_.try_emplace(flow);
  if (inserted) {
    it->second.id = flow;
    flow_order_.push_back(flow);
  }
  return it->second;
}

void Reassembler::note_dispatch(net::FlowId flow, std::uint64_t batch_id,
                                std::uint32_t segs) {
  flow_state(flow).dispatched[batch_id] += segs;
  segs_dispatched_ += segs;
  ensure_reaper();
}

void Reassembler::note_batch_open(net::FlowId flow, std::uint64_t batch_id) {
  FlowMerge& fm = flow_state(flow);
  fm.open_batch = std::max(fm.open_batch, batch_id);
}

void Reassembler::note_flow_split(net::FlowId flow, std::uint64_t prior_segs,
                                  std::uint64_t first_batch) {
  FlowMerge& fm = flow_state(flow);
  fm.prior_expected = std::max(fm.prior_expected, prior_segs);
  fm.gate_batch = std::max(fm.gate_batch, first_batch);
  if (sim_ != nullptr) {
    fm.split_at = sim_->now();
    // When the grace expires the gate may open with no deposit in sight;
    // wake the reader so queued gated packets do not sit forever.
    if (params_.gate_grace > 0)
      sim_->after(params_.gate_grace, [this] { notify_ready_if_available(); });
  }
  ensure_reaper();
}

void Reassembler::note_flow_unsplit(net::FlowId flow) {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) return;  // never actually split: nothing in flight
  FlowMerge& fm = it->second;
  fm.hold_barrier = std::max(fm.hold_barrier, fm.open_batch);
  if (fm.holding || old_work_drained(fm)) return;
  fm.holding = true;
  // Deadline backstop, mirroring the pre-split gate: if the old batches
  // never fully drain (loss with eviction disabled), release the held
  // packets anyway rather than stall the flow forever.
  if (sim_ != nullptr && params_.gate_grace > 0) {
    sim_->after(params_.gate_grace, [this, flow] {
      const auto it2 = flows_.find(flow);
      if (it2 == flows_.end() || !it2->second.holding) return;
      flush_hold(it2->second, /*force=*/true);
      notify_ready_if_available();
    });
  }
}

bool Reassembler::old_work_drained(const FlowMerge& fm) const {
  if (fm.merge_counter > fm.hold_barrier) return true;
  if (fm.merge_counter < fm.hold_barrier) return false;
  // Sitting exactly on the barrier batch: drained once its queue is empty
  // and every dispatched segment is consumed or written off (the counter
  // itself cannot advance past a still-open batch).
  const auto qit = fm.queues.find(fm.merge_counter);
  if (qit != fm.queues.end() && !qit->second.empty()) return false;
  return lookup(fm.consumed, fm.merge_counter) +
             lookup(fm.dropped, fm.merge_counter) >=
         lookup(fm.dispatched, fm.merge_counter);
}

void Reassembler::flush_hold(FlowMerge& fm, bool force) {
  if (!fm.holding) return;
  if (!force && !old_work_drained(fm)) return;
  if (force && !old_work_drained(fm)) {
    ++forced_hold_releases_;
    ++evictions_;
    if (trace::Tracer* tr = trace::active()) {
      tr->registry().add("reasm.evictions");
      tr->registry().add("reasm.forced_hold_releases");
      tr->mark(trace::EventKind::kReasmEvict,
               sim_ != nullptr ? sim_->now() : 0, /*core=*/-1, fm.id);
    }
  }
  while (!fm.hold.empty()) {
    // Segments are credited to the pre-split gate supply only now, at
    // release: a subsequent re-split's first batch cannot open before the
    // held packets it must stay behind are actually deliverable.
    passthrough_segs_[fm.id] += fm.hold.front()->gro_segs;
    passthrough_.push_back(std::move(fm.hold.front()));
    fm.hold.pop_front();
  }
  fm.holding = false;
}

void Reassembler::note_drop(net::FlowId flow, std::uint64_t batch_id,
                            std::uint32_t segs) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  FlowMerge& fm = it->second;
  // Segments of a batch the merge counter already passed were written off
  // at eviction time; recovering them again would double-count.
  if (batch_id < fm.merge_counter) return;
  const std::uint32_t disp = lookup(fm.dispatched, batch_id);
  const std::uint32_t cons = lookup(fm.consumed, batch_id);
  const std::uint32_t drop = lookup(fm.dropped, batch_id);
  if (cons + drop >= disp) return;  // batch already complete
  const std::uint32_t add = std::min(segs, disp - cons - drop);
  fm.dropped[batch_id] += add;
  drops_recovered_ += add;
  fm.stall_marked = false;  // retraction is progress
  flush_hold(fm, /*force=*/false);
  notify_ready_if_available();
}

void Reassembler::deposit(net::PacketPtr pkt, int /*from_core*/) {
  ++buffered_;
  max_buffered_ = std::max(max_buffered_, buffered_);
  if (pkt->microflow_id == 0) {
    // A demoted flow's default-path packets are parked until its old split
    // batches drain; everything else passes straight through.
    if (const auto it = flows_.find(pkt->flow_id);
        it != flows_.end() && it->second.holding) {
      it->second.hold.push_back(std::move(pkt));
      ensure_reaper();
      return;
    }
    passthrough_segs_[pkt->flow_id] += pkt->gro_segs;
    passthrough_.push_back(std::move(pkt));
    return;
  }
  FlowMerge& fm = flow_state(pkt->flow_id);
  // Out-of-order arrival metric (Figure 7): a packet whose per-flow wire
  // index is below one already seen here would be delivered out of order
  // were it not for the reassembler.
  if (fm.any_seen && pkt->wire_seq < fm.max_wire_seen) {
    ++ooo_arrivals_;
    if (trace::Tracer* tr = trace::active())
      tr->registry().add("reasm.ooo_arrivals");
  }
  fm.max_wire_seen = std::max(fm.max_wire_seen, pkt->wire_seq);
  fm.any_seen = true;
  if (pkt->microflow_id < fm.merge_counter) {
    // Duplicate or post-eviction straggler: its batch is already merged
    // past. Deliver out of order rather than buffer it forever.
    ++late_deliveries_;
    if (trace::Tracer* tr = trace::active()) {
      tr->registry().add("reasm.late_deliveries");
      tr->packet(trace::EventKind::kLateDelivery,
                 sim_ != nullptr ? sim_->now() : 0, /*core=*/-1, pkt->flow_id,
                 pkt->wire_seq, pkt->microflow_id);
    }
    passthrough_.push_back(std::move(pkt));
    return;
  }
  fm.queues[pkt->microflow_id].push_back(std::move(pkt));
  ensure_reaper();
}

bool Reassembler::gate_open_at(const FlowMerge& fm,
                               std::uint64_t batch) const {
  // Only batches of the current split period are gated; batches from
  // before a re-split keep flowing (they are what the gate waits behind).
  if (fm.prior_expected == 0 || batch < fm.gate_batch) return true;
  const auto it = passthrough_segs_.find(fm.id);
  const std::uint64_t seen = it == passthrough_segs_.end() ? 0 : it->second;
  if (seen >= fm.prior_expected) return true;
  // Stragglers are loss-or-backlog delayed: holding a deadline workload's
  // flow costs more than the residual reorder the transport absorbs.
  return sim_ != nullptr && params_.gate_grace > 0 &&
         sim_->now() >= fm.split_at + params_.gate_grace;
}

bool Reassembler::gate_open(const FlowMerge& fm) const {
  return gate_open_at(fm, fm.merge_counter);
}

net::PacketPtr Reassembler::try_pop_flow(FlowMerge& fm, bool charge) {
  while (true) {
    if (!gate_open_at(fm, fm.merge_counter)) return nullptr;
    auto qit = fm.queues.find(fm.merge_counter);
    if (qit != fm.queues.end() && !qit->second.empty()) {
      net::PacketPtr pkt = std::move(qit->second.front());
      qit->second.pop_front();
      fm.consumed[fm.merge_counter] += pkt->gro_segs;
      fm.stall_marked = false;
      if (charge) {
        pending_charge_ += costs_.mflow_merge_per_skb;
        ++packets_merged_;
        segs_merged_ += pkt->gro_segs;
        --buffered_;
      }
      flush_hold(fm, /*force=*/false);
      return pkt;
    }
    // Current batch's queue is dry: advance only when the batch is closed
    // (the splitter moved past it) and fully accounted for — consumed plus
    // retracted segments cover everything dispatched.
    const std::uint32_t disp = lookup(fm.dispatched, fm.merge_counter);
    const std::uint32_t cons = lookup(fm.consumed, fm.merge_counter);
    const std::uint32_t drop = lookup(fm.dropped, fm.merge_counter);
    if (cons + drop >= disp && fm.open_batch > fm.merge_counter) {
      fm.dispatched.erase(fm.merge_counter);
      fm.consumed.erase(fm.merge_counter);
      fm.dropped.erase(fm.merge_counter);
      fm.queues.erase(fm.merge_counter);
      ++fm.merge_counter;
      fm.stall_marked = false;
      if (charge) {
        pending_charge_ += costs_.mflow_merge_per_batch;
        ++batches_merged_;
      }
      flush_hold(fm, /*force=*/false);
      continue;
    }
    return nullptr;
  }
}

bool Reassembler::flow_has_ready(const FlowMerge& fm) const {
  std::uint64_t counter = fm.merge_counter;
  while (true) {
    if (!gate_open_at(fm, counter)) return false;
    const auto qit = fm.queues.find(counter);
    if (qit != fm.queues.end() && !qit->second.empty()) return true;
    if (lookup(fm.consumed, counter) + lookup(fm.dropped, counter) >=
            lookup(fm.dispatched, counter) &&
        fm.open_batch > counter) {
      ++counter;
      continue;
    }
    return false;
  }
}

bool Reassembler::flow_blocked(const FlowMerge& fm) const {
  if (flow_has_ready(fm)) return false;
  // Held default-path packets are blocked work too: without this the
  // reaper would stop watching a demoted flow whose hold can only be
  // released by force (old batches complete but counter parked on the
  // barrier).
  if (!fm.hold.empty()) return true;
  for (const auto& [batch, q] : fm.queues)
    if (!q.empty()) return true;
  for (const auto& [batch, disp] : fm.dispatched)
    if (lookup(fm.consumed, batch) + lookup(fm.dropped, batch) < disp)
      return true;
  return false;
}

bool Reassembler::any_flow_blocked() const {
  for (const auto& [_, fm] : flows_)
    if (flow_blocked(fm)) return true;
  return false;
}

bool Reassembler::flow_quiesced(net::FlowId flow) const {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) return true;
  const FlowMerge& fm = it->second;
  if (fm.holding || !fm.hold.empty()) return false;
  for (const auto& [batch, q] : fm.queues)
    if (!q.empty()) return false;
  for (const auto& [batch, disp] : fm.dispatched)
    if (lookup(fm.consumed, batch) + lookup(fm.dropped, batch) < disp)
      return false;
  return true;
}

void Reassembler::forget_flow(net::FlowId flow) {
  flows_.erase(flow);
  passthrough_segs_.erase(flow);
  const auto it = std::find(flow_order_.begin(), flow_order_.end(), flow);
  if (it != flow_order_.end()) {
    const auto pos = static_cast<std::size_t>(it - flow_order_.begin());
    flow_order_.erase(it);
    if (rr_ > pos) --rr_;
    if (rr_ >= flow_order_.size()) rr_ = 0;
  }
}

bool Reassembler::drained() const {
  if (buffered_ != 0) return false;
  for (const auto& [_, fm] : flows_) {
    if (!fm.hold.empty()) return false;
    for (const auto& [batch, disp] : fm.dispatched)
      if (lookup(fm.consumed, batch) + lookup(fm.dropped, batch) < disp)
        return false;
  }
  return true;
}

bool Reassembler::evict_step(FlowMerge& fm) {
  const sim::Time now = sim_ != nullptr ? sim_->now() : 0;
  if (!gate_open(fm)) {
    // Pre-split packets lost in flight: forgive the gate; stragglers that
    // do arrive later are still delivered (out of order) via passthrough.
    fm.prior_expected = 0;
    ++evictions_;
    if (trace::Tracer* tr = trace::active()) {
      tr->registry().add("reasm.evictions");
      tr->mark(trace::EventKind::kReasmEvict, now, /*core=*/-1, fm.id);
    }
    recovery_ns_.add(static_cast<double>(now - fm.stall_marked_at));
    return true;
  }
  const std::uint64_t head = fm.merge_counter;
  const std::uint32_t disp = lookup(fm.dispatched, head);
  const std::uint32_t cons = lookup(fm.consumed, head);
  const std::uint32_t drop = lookup(fm.dropped, head);
  if (cons + drop < disp) {
    // Missing segments in the head batch: write them off as recovered
    // drops and charge the eviction sweep.
    const std::uint32_t missing = disp - cons - drop;
    fm.dropped[head] += missing;
    drops_recovered_ += missing;
    ++evictions_;
    if (trace::Tracer* tr = trace::active()) {
      tr->registry().add("reasm.evictions");
      tr->registry().add("reasm.drops_recovered", missing);
      tr->mark(trace::EventKind::kReasmEvict, now, /*core=*/-1, fm.id);
    }
    pending_charge_ += costs_.mflow_evict_per_batch;
    recovery_ns_.add(static_cast<double>(now - fm.stall_marked_at));
  }
  // Advance past the (now complete) head if the splitter has moved on;
  // an open head batch stays current — its retraction above already
  // unblocked the flow.
  if (fm.open_batch > head) {
    fm.dispatched.erase(head);
    fm.consumed.erase(head);
    fm.dropped.erase(head);
    fm.queues.erase(head);
    ++fm.merge_counter;
    return true;
  }
  return false;
}

void Reassembler::ensure_reaper() {
  if (reaper_scheduled_ || sim_ == nullptr || params_.eviction_timeout <= 0)
    return;
  reaper_scheduled_ = true;
  sim_->after(params_.eviction_timeout, [this] { reap(); });
}

void Reassembler::reap() {
  reaper_scheduled_ = false;
  bool keep_watching = false;
  for (net::FlowId flow : flow_order_) {
    FlowMerge& fm = flows_[flow];
    if (!flow_blocked(fm)) {
      fm.stall_marked = false;
      continue;
    }
    if (!fm.stall_marked) {
      // First sweep that sees the stall: arm, evict on the next one.
      fm.stall_marked = true;
      fm.stall_marked_at = sim_->now();
      keep_watching = true;
      continue;
    }
    // Blocked for at least one full timeout: force the head forward until
    // the flow is ready or nothing more can be reclaimed.
    while (flow_blocked(fm) && evict_step(fm)) {
    }
    flush_hold(fm, /*force=*/false);
    fm.stall_marked = false;
    if (flow_blocked(fm)) keep_watching = true;
  }
  if (keep_watching) ensure_reaper();
  notify_ready_if_available();
}

void Reassembler::notify_ready_if_available() {
  if (ready_cb_ && pop_ready_available()) ready_cb_();
}

net::PacketPtr Reassembler::pop_ready() {
  if (!passthrough_.empty()) {
    net::PacketPtr pkt = std::move(passthrough_.front());
    passthrough_.pop_front();
    --buffered_;
    return pkt;
  }
  const std::size_t n = flow_order_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (rr_ + i) % n;
    FlowMerge& fm = flows_[flow_order_[idx]];
    if (net::PacketPtr pkt = try_pop_flow(fm, /*charge=*/true)) {
      rr_ = (idx + 1) % n;
      return pkt;
    }
  }
  return nullptr;
}

bool Reassembler::pop_ready_available() const {
  if (!passthrough_.empty()) return true;
  for (const auto& [_, fm] : flows_)
    if (flow_has_ready(fm)) return true;
  return false;
}

bool Reassembler::has_buffered() const { return buffered_ > 0; }

sim::Time Reassembler::take_pending_charge() {
  const sim::Time t = pending_charge_;
  pending_charge_ = 0;
  return t;
}

void Reassembler::reset_stats() {
  ooo_arrivals_ = 0;
  batches_merged_ = 0;
  packets_merged_ = 0;
  segs_dispatched_ = 0;
  segs_merged_ = 0;
  drops_recovered_ = 0;
  evictions_ = 0;
  late_deliveries_ = 0;
  forced_hold_releases_ = 0;
  recovery_ns_.clear();
  max_buffered_ = buffered_;
}

}  // namespace mflow::core
