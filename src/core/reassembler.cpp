#include "core/reassembler.hpp"

#include <algorithm>

namespace mflow::core {
namespace {

std::uint32_t lookup(const std::map<std::uint64_t, std::uint32_t>& m,
                     std::uint64_t key) {
  const auto it = m.find(key);
  return it == m.end() ? 0 : it->second;
}

}  // namespace

void Reassembler::note_dispatch(net::FlowId flow, std::uint64_t batch_id,
                                std::uint32_t segs) {
  auto [it, inserted] = flows_.try_emplace(flow);
  if (inserted) flow_order_.push_back(flow);
  it->second.dispatched[batch_id] += segs;
}

void Reassembler::note_batch_open(net::FlowId flow, std::uint64_t batch_id) {
  auto [it, inserted] = flows_.try_emplace(flow);
  if (inserted) flow_order_.push_back(flow);
  it->second.open_batch = std::max(it->second.open_batch, batch_id);
}

void Reassembler::note_drop(net::FlowId flow, std::uint64_t batch_id,
                            std::uint32_t segs) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  auto dit = it->second.dispatched.find(batch_id);
  if (dit == it->second.dispatched.end()) return;
  dit->second = dit->second > segs ? dit->second - segs : 0;
}

void Reassembler::deposit(net::PacketPtr pkt, int /*from_core*/) {
  ++buffered_;
  max_buffered_ = std::max(max_buffered_, buffered_);
  if (pkt->microflow_id == 0) {
    passthrough_.push_back(std::move(pkt));
    return;
  }
  auto [it, inserted] = flows_.try_emplace(pkt->flow_id);
  if (inserted) flow_order_.push_back(pkt->flow_id);
  FlowMerge& fm = it->second;
  // Out-of-order arrival metric (Figure 7): a packet whose per-flow wire
  // index is below one already seen here would be delivered out of order
  // were it not for the reassembler.
  if (fm.any_seen && pkt->wire_seq < fm.max_wire_seen) ++ooo_arrivals_;
  fm.max_wire_seen = std::max(fm.max_wire_seen, pkt->wire_seq);
  fm.any_seen = true;
  fm.queues[pkt->microflow_id].push_back(std::move(pkt));
}

net::PacketPtr Reassembler::try_pop_flow(FlowMerge& fm, bool charge) {
  while (true) {
    auto qit = fm.queues.find(fm.merge_counter);
    if (qit != fm.queues.end() && !qit->second.empty()) {
      net::PacketPtr pkt = std::move(qit->second.front());
      qit->second.pop_front();
      fm.consumed[fm.merge_counter] += pkt->gro_segs;
      if (charge) {
        pending_charge_ += costs_.mflow_merge_per_skb;
        ++packets_merged_;
        --buffered_;
      }
      return pkt;
    }
    // Current batch's queue is dry: advance only when the batch is closed
    // (the splitter moved past it) and fully consumed.
    const std::uint32_t disp = lookup(fm.dispatched, fm.merge_counter);
    const std::uint32_t cons = lookup(fm.consumed, fm.merge_counter);
    if (cons == disp && fm.open_batch > fm.merge_counter) {
      fm.dispatched.erase(fm.merge_counter);
      fm.consumed.erase(fm.merge_counter);
      fm.queues.erase(fm.merge_counter);
      ++fm.merge_counter;
      if (charge) {
        pending_charge_ += costs_.mflow_merge_per_batch;
        ++batches_merged_;
      }
      continue;
    }
    return nullptr;
  }
}

bool Reassembler::flow_has_ready(const FlowMerge& fm) const {
  std::uint64_t counter = fm.merge_counter;
  while (true) {
    const auto qit = fm.queues.find(counter);
    if (qit != fm.queues.end() && !qit->second.empty()) return true;
    if (lookup(fm.consumed, counter) == lookup(fm.dispatched, counter) &&
        fm.open_batch > counter) {
      ++counter;
      continue;
    }
    return false;
  }
}

net::PacketPtr Reassembler::pop_ready() {
  if (!passthrough_.empty()) {
    net::PacketPtr pkt = std::move(passthrough_.front());
    passthrough_.pop_front();
    --buffered_;
    return pkt;
  }
  const std::size_t n = flow_order_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (rr_ + i) % n;
    FlowMerge& fm = flows_[flow_order_[idx]];
    if (net::PacketPtr pkt = try_pop_flow(fm, /*charge=*/true)) {
      rr_ = (idx + 1) % n;
      return pkt;
    }
  }
  return nullptr;
}

bool Reassembler::pop_ready_available() const {
  if (!passthrough_.empty()) return true;
  for (const auto& [_, fm] : flows_)
    if (flow_has_ready(fm)) return true;
  return false;
}

bool Reassembler::has_buffered() const { return buffered_ > 0; }

sim::Time Reassembler::take_pending_charge() {
  const sim::Time t = pending_charge_;
  pending_charge_ = 0;
  return t;
}

void Reassembler::reset_stats() {
  ooo_arrivals_ = 0;
  batches_merged_ = 0;
  packets_merged_ = 0;
  max_buffered_ = buffered_;
}

}  // namespace mflow::core
