#include "core/irq_split.hpp"

#include "trace/trace.hpp"

namespace mflow::core {

/// Second half: skb allocation on a splitting core, feeding the path.
class IrqSplitter::SecondHalf final : public sim::Pollable {
 public:
  SecondHalf(IrqSplitter& owner, net::RxRing& ring, int core_id)
      : owner_(owner), ring_(ring), core_id_(core_id) {}

  bool poll(sim::Core& core, int budget) override {
    stack::Machine& m = owner_.machine_;
    const stack::CostModel& costs = m.costs();
    trace::Tracer* tr = trace::active();
    int n = 0;
    while (n < budget) {
      net::PacketPtr pkt = ring_.pop();
      if (!pkt) break;
      if (tr != nullptr)
        tr->packet(trace::EventKind::kRingDequeue, core.vnow(), core.id(),
                   pkt->flow_id, pkt->wire_seq, pkt->microflow_id);
      core.charge(sim::Tag::kSkbAlloc, costs.skb_alloc);
      pkt->skb_allocated = true;
      if (tr != nullptr)
        tr->packet(trace::EventKind::kSkbAlloc, core.vnow(), core.id(),
                   pkt->flow_id, pkt->wire_seq, pkt->microflow_id, 0,
                   costs.skb_alloc);
      // Tell the driver its request slot is reusable — batched to limit
      // cross-core contention on the driver ring (paper: every ~128).
      if (++since_release_ >= costs.release_batch) {
        since_release_ = 0;
        core.charge(sim::Tag::kDriver, costs.driver_release_update);
      }
      m.inject_into_path(0, core_id_, std::move(pkt));
      ++n;
    }
    return !ring_.empty();
  }

  std::string_view poll_name() const override { return "irq-split-2nd"; }

 private:
  IrqSplitter& owner_;
  net::RxRing& ring_;
  int core_id_;
  int since_release_ = 0;
};

/// First half: request location + dispatch on the IRQ core.
class IrqSplitter::FirstHalf final : public sim::Pollable {
 public:
  explicit FirstHalf(IrqSplitter& owner) : owner_(owner) {}

  bool poll(sim::Core& core, int budget) override {
    IrqSplitter& o = owner_;
    stack::Machine& m = o.machine_;
    const stack::CostModel& costs = m.costs();
    trace::Tracer* tr = trace::active();
    int n = 0;
    while (n < budget) {
      net::PacketPtr pkt = o.driver_ring_.pop();
      if (!pkt) break;
      ++n;
      if (tr != nullptr)
        tr->packet(trace::EventKind::kRingDequeue, core.vnow(), core.id(),
                   pkt->flow_id, pkt->wire_seq, pkt->microflow_id);
      core.charge(sim::Tag::kDriver, costs.driver_poll_per_pkt);
      const auto a = o.assigner_.assign(pkt->flow_id, 1, pkt->payload_len);
      if (a.microflow_id == 0) {
        // Mouse flow: do the whole stage 1 here, as the stock driver would.
        if (a.unsplit) {
          // Demotion boundary: park this flow's default-path packets at the
          // merge point until its in-flight batches drain.
          if (Reassembler* ra = o.lookup_(*pkt))
            ra->note_flow_unsplit(pkt->flow_id);
        }
        if (tr != nullptr)
          tr->packet(trace::EventKind::kSplitDecision, core.vnow(), core.id(),
                     pkt->flow_id, pkt->wire_seq, 0);
        core.charge(sim::Tag::kSkbAlloc, costs.skb_alloc);
        pkt->skb_allocated = true;
        if (tr != nullptr)
          tr->packet(trace::EventKind::kSkbAlloc, core.vnow(), core.id(),
                     pkt->flow_id, pkt->wire_seq, 0, 0,
                     costs.driver_poll_per_pkt + costs.skb_alloc);
        m.inject_into_path(0, o.irq_core_, std::move(pkt));
        continue;
      }
      pkt->microflow_id = a.microflow_id;
      Reassembler* ra = o.lookup_(*pkt);
      if (a.first_split && ra != nullptr)
        ra->note_flow_split(pkt->flow_id, a.prior_segs, a.microflow_id);
      if (a.new_batch) {
        core.charge(sim::Tag::kSteer, costs.mflow_dispatch_per_batch);
        if (ra != nullptr) ra->note_batch_open(pkt->flow_id, a.microflow_id);
      }
      if (ra != nullptr) ra->note_dispatch(pkt->flow_id, a.microflow_id, 1);
      core.charge(sim::Tag::kSteer, costs.mflow_split_per_pkt);
      if (tr != nullptr) {
        tr->registry().add("split.dispatched");
        tr->packet(trace::EventKind::kSplitDecision, core.vnow(), core.id(),
                   pkt->flow_id, pkt->wire_seq, a.microflow_id,
                   a.microflow_id);
        tr->packet(trace::EventKind::kSplitDeposit, core.vnow(), core.id(),
                   pkt->flow_id, pkt->wire_seq, a.microflow_id,
                   static_cast<std::uint64_t>(a.target_core));
      }

      const std::size_t slot = o.core_slot(a.target_core);
      net::RxRing& ring = *o.request_rings_[slot];
      const std::uint64_t flow = pkt->flow_id;
      const std::uint64_t batch = a.microflow_id;

      if (net::FaultInjector* faults = m.fault_injector()) {
        const auto action = faults->decide(net::FaultPoint::kSplitQueue);
        if (tr != nullptr && action != net::FaultAction::kNone) {
          tr->registry().add("fault.split_queue_verdicts");
          tr->packet(trace::EventKind::kFaultVerdict, core.vnow(), core.id(),
                     flow, pkt->wire_seq, batch,
                     static_cast<std::uint64_t>(action));
        }
        if (action == net::FaultAction::kDrop) {
          // Request lost on the per-core ring: retract the dispatch.
          faults->note_dropped_segs(1);
          if (tr != nullptr)
            tr->packet(trace::EventKind::kDrop, core.vnow(), core.id(), flow,
                       pkt->wire_seq, batch);
          if (ra != nullptr) ra->note_drop(flow, batch, 1);
          continue;
        }
        if (action == net::FaultAction::kCorrupt) {
          faults->corrupt(*pkt);
        } else if (action == net::FaultAction::kDuplicate) {
          auto dup = net::clone_packet(*pkt);
          if (ring.push(std::move(dup)))
            m.core(a.target_core).raise(*o.second_halves_[slot],
                                        /*remote=*/true);
        } else if (action == net::FaultAction::kDelay) {
          // Shared holder keeps the packet owned even if the simulation
          // ends before the delayed event fires (EventFn must be copyable).
          auto held = std::make_shared<net::PacketPtr>(std::move(pkt));
          IrqSplitter* op = &o;
          const int target = a.target_core;
          m.simulator().after(
              faults->delay_ns(net::FaultPoint::kSplitQueue),
              [op, slot, target, held, flow, batch] {
                net::PacketPtr late = std::move(*held);
                core::Reassembler* lra = op->lookup_(*late);
                if (op->request_rings_[slot]->push(std::move(late))) {
                  op->machine_.core(target).raise(*op->second_halves_[slot],
                                                  /*remote=*/true);
                } else if (lra != nullptr) {
                  lra->note_drop(flow, batch, 1);
                }
              });
          continue;
        }
      }

      const std::uint64_t wseq = pkt->wire_seq;
      if (ring.push(std::move(pkt))) {
        ++o.dispatched_;
        m.core(a.target_core).raise(*o.second_halves_[slot], /*remote=*/true);
      } else {
        // Request-ring overrun: retract the dispatch so merging never waits
        // for a packet that will not arrive.
        if (tr != nullptr) {
          tr->registry().add("split.request_ring_drops");
          tr->packet(trace::EventKind::kDrop, core.vnow(), core.id(), flow,
                     wseq, batch);
        }
        if (ra != nullptr) ra->note_drop(flow, batch, 1);
      }
    }
    return !o.driver_ring_.empty();
  }

  std::string_view poll_name() const override { return "irq-split-1st"; }

 private:
  IrqSplitter& owner_;
};

IrqSplitter::IrqSplitter(stack::Machine& machine, const MflowConfig& config,
                         net::RxRing& driver_ring, int irq_core,
                         FlowSplitter::ReassemblerLookup lookup)
    : machine_(machine),
      config_(config),
      driver_ring_(driver_ring),
      irq_core_(irq_core),
      assigner_(config),
      lookup_(std::move(lookup)) {
  for (int core_id : config_.splitting_cores) {
    request_rings_.push_back(std::make_unique<net::RxRing>(8192));
    second_halves_.push_back(std::make_unique<SecondHalf>(
        *this, *request_rings_.back(), core_id));
  }
  first_half_ = std::make_unique<FirstHalf>(*this);
}

IrqSplitter::~IrqSplitter() = default;

std::size_t IrqSplitter::core_slot(int core_id) const {
  for (std::size_t i = 0; i < config_.splitting_cores.size(); ++i)
    if (config_.splitting_cores[i] == core_id) return i;
  throw std::out_of_range("not a splitting core");
}

void IrqSplitter::install(int queue) {
  machine_.override_driver(queue, first_half_.get(), irq_core_);
}

std::uint64_t IrqSplitter::request_ring_drops() const {
  std::uint64_t total = 0;
  for (const auto& r : request_rings_) total += r->drops();
  return total;
}

}  // namespace mflow::core
