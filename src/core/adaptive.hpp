// Adaptive micro-flow batch sizing (extension).
//
// The paper picks batch size 256 by offline measurement (Fig. 7): large
// enough that merge-point reordering is rare, small enough to spread load.
// The right value depends on core-speed skew and interference, so this
// controller tunes it online: every control interval it reads the
// reassembler's out-of-order arrival rate and
//   - doubles the batch when reordering exceeds `hi_ooo_per_sec`,
//   - halves it when the rate falls below `lo_ooo_per_sec` (probing for
//     the smallest batch that still merges cheaply, which minimizes
//     batching latency and maximizes load-balancing granularity).
// Changes take effect at the next micro-flow boundary (BatchAssigner reads
// the config live); in-flight batches are unaffected, so ordering
// guarantees are untouched.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/mflow.hpp"
#include "sim/simulator.hpp"

namespace mflow::core {

struct AdaptiveBatchParams {
  sim::Time interval = sim::ms(1);
  std::uint32_t min_batch = 16;
  std::uint32_t max_batch = 4096;
  double hi_ooo_per_sec = 5000.0;  // grow above this reorder rate
  /// Shrink below this rate. Strictly positive so that trickle reordering
  /// (a handful of OOO arrivals per interval) still lets the batch probe
  /// downward — requiring an *exactly* zero interval left the controller
  /// stuck at max_batch on any link with background noise.
  double lo_ooo_per_sec = 500.0;
};

class AdaptiveBatchController {
 public:
  /// The controller mutates `config.batch_size` in place; `config` must be
  /// the instance the engine was built with (MflowEngine holds it by
  /// value — pass engine.mutable_config()).
  AdaptiveBatchController(sim::Simulator& sim, MflowEngine& engine,
                          AdaptiveBatchParams params = {});

  /// Begin periodic control (idempotent).
  void start();

  std::uint32_t current_batch() const;
  std::uint32_t adjustments() const { return adjustments_; }

 private:
  void tick();

  sim::Simulator& sim_;
  MflowEngine& engine_;
  AdaptiveBatchParams params_;
  bool started_ = false;
  std::uint64_t last_ooo_ = 0;
  std::uint32_t adjustments_ = 0;
};

}  // namespace mflow::core
