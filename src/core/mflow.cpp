#include "core/mflow.hpp"

#include <algorithm>

#include "stack/flowcache.hpp"

namespace mflow::core {

MflowEngine::MflowEngine(stack::Machine& machine, MflowConfig config)
    : machine_(machine), config_(std::move(config)) {}

MflowEngine::~MflowEngine() = default;

void MflowEngine::attach_socket(std::uint16_t port, stack::Socket& socket) {
  auto ra = std::make_unique<Reassembler>(
      machine_.costs(), &machine_.simulator(),
      ReassemblerParams{config_.merge_eviction_timeout,
                        config_.split_gate_grace});
  // Eviction can turn buffered data ready with no deposit in sight; the
  // reader must still wake up or the recovered packets sit forever.
  stack::Socket* sock = &socket;
  ra->set_ready_callback([sock] { sock->notify_merge_ready(); });
  socket.set_merge_buffer(ra.get());
  reassemblers_[port] = std::move(ra);
}

Reassembler* MflowEngine::reassembler_for_port(std::uint16_t port) {
  const auto it = reassemblers_.find(port);
  return it == reassemblers_.end() ? nullptr : it->second.get();
}

void MflowEngine::install() {
  auto lookup = [this](const net::Packet& pkt) {
    return reassembler_for_port(pkt.flow.dst_port);
  };

  // Any split packet that dies inside the path (checksum drop of a
  // corrupted skb, injected handoff loss) is retracted here so its batch
  // does not wait for it.
  machine_.set_split_drop_handler([this](const net::Packet& pkt) {
    if (Reassembler* ra = reassembler_for_port(pkt.flow.dst_port))
      ra->note_drop(pkt.flow_id, pkt.microflow_id, pkt.gro_segs);
  });

  switch (config_.split_point) {
    case SplitPoint::kBeforeStage: {
      const std::size_t idx = machine_.stage_index(config_.split_before);
      splitter_ =
          std::make_unique<FlowSplitter>(machine_, config_, lookup);
      machine_.set_transition_hook(idx, splitter_.get());
      break;
    }
    case SplitPoint::kIrq: {
      for (int q = 0; q < machine_.nic().num_queues(); ++q) {
        const auto& affinity = machine_.params().irq_affinity;
        const int irq_core =
            affinity[static_cast<std::size_t>(q) % affinity.size()];
        irq_splitters_.push_back(std::make_unique<IrqSplitter>(
            machine_, config_, machine_.nic().queue(q), irq_core, lookup));
        irq_splitters_.back()->install(q);
      }
      break;
    }
  }
}

std::uint64_t MflowEngine::ooo_arrivals() const {
  std::uint64_t total = 0;
  for (const auto& [_, ra] : reassemblers_) total += ra->ooo_arrivals();
  return total;
}

std::uint64_t MflowEngine::batches_merged() const {
  std::uint64_t total = 0;
  for (const auto& [_, ra] : reassemblers_) total += ra->batches_merged();
  return total;
}

std::uint64_t MflowEngine::packets_merged() const {
  std::uint64_t total = 0;
  for (const auto& [_, ra] : reassemblers_) total += ra->packets_merged();
  return total;
}

std::uint64_t MflowEngine::drops_recovered() const {
  std::uint64_t total = 0;
  for (const auto& [_, ra] : reassemblers_) total += ra->drops_recovered();
  return total;
}

std::uint64_t MflowEngine::evictions() const {
  std::uint64_t total = 0;
  for (const auto& [_, ra] : reassemblers_) total += ra->evictions();
  return total;
}

std::uint64_t MflowEngine::late_deliveries() const {
  std::uint64_t total = 0;
  for (const auto& [_, ra] : reassemblers_) total += ra->late_deliveries();
  return total;
}

bool MflowEngine::any_flow_blocked() const {
  for (const auto& [_, ra] : reassemblers_)
    if (ra->any_flow_blocked()) return true;
  return false;
}

bool MflowEngine::drained() const {
  for (const auto& [_, ra] : reassemblers_)
    if (!ra->drained()) return false;
  return true;
}

void MflowEngine::set_flow_degree(net::FlowId flow, std::uint32_t degree) {
  if (splitter_ != nullptr) splitter_->assigner().set_flow_degree(flow, degree);
  for (auto& irq : irq_splitters_) irq->assigner().set_flow_degree(flow, degree);
  // A rescale opens a new epoch for the flow: any cached fast-path decision
  // predates it and must not be applied — the first packets under the new
  // degree re-resolve through the slow path and re-commit.
  if (stack::FlowCache* cache = machine_.flow_cache())
    cache->invalidate_flow(flow);
}

bool MflowEngine::release_flow(net::FlowId flow) {
  for (const auto& [_, ra] : reassemblers_)
    if (!ra->flow_quiesced(flow)) return false;
  for (auto& [_, ra] : reassemblers_) ra->forget_flow(flow);
  if (splitter_ != nullptr) splitter_->assigner().erase_flow(flow);
  for (auto& irq : irq_splitters_) irq->assigner().erase_flow(flow);
  if (stack::FlowCache* cache = machine_.flow_cache())
    cache->invalidate_flow(flow);
  return true;
}

std::vector<control::Controller::FlowTotals> MflowEngine::flow_totals()
    const {
  std::vector<control::Controller::FlowTotals> out;
  if (splitter_ != nullptr) splitter_->assigner().append_totals(out);
  // With IRQ splitting each flow's queue is fixed, so the per-queue
  // assigners see disjoint flow sets — concatenation is the union.
  for (const auto& irq : irq_splitters_) irq->assigner().append_totals(out);
  return out;
}

util::RunningStats MflowEngine::recovery_latency_ns() const {
  util::RunningStats all;
  for (const auto& [_, ra] : reassemblers_)
    all.merge(ra->recovery_latency_ns());
  return all;
}

void MflowEngine::reset_stats() {
  for (auto& [_, ra] : reassemblers_) ra->reset_stats();
}

MflowCapacityAdapter::MflowCapacityAdapter(MflowEngine& engine,
                                           std::uint32_t initial_workers)
    : engine_(engine) {
  active_ = clamp_workers(initial_workers == 0 ? engine_.max_degree()
                                               : initial_workers);
}

std::uint32_t MflowCapacityAdapter::clamp_workers(
    std::uint32_t workers) const {
  const std::uint32_t limit = std::max<std::uint32_t>(worker_limit(), 1);
  return std::min(std::max<std::uint32_t>(workers, 1), limit);
}

void MflowCapacityAdapter::set_flow_degree(net::FlowId flow,
                                           std::uint32_t degree) {
  const std::uint32_t want = std::min(degree, active_);
  const auto it = degrees_.find(flow);
  const std::uint32_t current = it == degrees_.end() ? 0 : it->second;
  if (want == current) return;  // dedup: engine calls invalidate caches
  if (want == 0)
    degrees_.erase(it);
  else
    degrees_[flow] = want;
  engine_.set_flow_degree(flow, want);
}

bool MflowCapacityAdapter::release_flow(net::FlowId flow) {
  if (!engine_.release_flow(flow)) return false;
  degrees_.erase(flow);
  return true;
}

bool MflowCapacityAdapter::set_active_workers(std::uint32_t workers) {
  const std::uint32_t want = clamp_workers(workers);
  if (want >= active_) {
    // Growth (or no-op): the lanes already exist, the flow dimension picks
    // them up on its next tick through max_degree().
    active_ = want;
    return true;
  }
  // Shrink: demote every flow whose degree exceeds the new budget. The
  // engine runs the rescale-drain protocol per flow; the demotions are
  // issued once (the mirror map is updated immediately, so a vetoed
  // retry does not re-issue them).
  for (auto it = degrees_.begin(); it != degrees_.end(); ++it) {
    if (it->second > want) {
      it->second = want;
      engine_.set_flow_degree(it->first, want);
    }
  }
  // The retiring lanes may still carry in-flight batches from the old
  // degrees; committing now would hand the Controller a budget the data
  // path has not vacated. Veto until the drain completes.
  if (!engine_.drained()) return false;
  active_ = want;
  return true;
}

}  // namespace mflow::core
