#include "core/adaptive.hpp"

namespace mflow::core {

AdaptiveBatchController::AdaptiveBatchController(sim::Simulator& sim,
                                                 MflowEngine& engine,
                                                 AdaptiveBatchParams params)
    : sim_(sim), engine_(engine), params_(params) {}

std::uint32_t AdaptiveBatchController::current_batch() const {
  return engine_.config().batch_size;
}

void AdaptiveBatchController::start() {
  if (started_) return;
  started_ = true;
  last_ooo_ = engine_.ooo_arrivals();
  sim_.after(params_.interval, [this] { tick(); });
}

void AdaptiveBatchController::tick() {
  const std::uint64_t now_ooo = engine_.ooo_arrivals();
  const double rate = static_cast<double>(now_ooo - last_ooo_) /
                      sim::to_seconds(params_.interval);
  last_ooo_ = now_ooo;

  std::uint32_t& batch = engine_.mutable_config().batch_size;
  if (rate > params_.hi_ooo_per_sec && batch < params_.max_batch) {
    batch = std::min(params_.max_batch, batch * 2);
    ++adjustments_;
  } else if (rate < params_.lo_ooo_per_sec && batch > params_.min_batch) {
    batch = std::max(params_.min_batch, batch / 2);
    ++adjustments_;
  }
  sim_.after(params_.interval, [this] { tick(); });
}

}  // namespace mflow::core
