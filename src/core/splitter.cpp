#include "core/splitter.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace mflow::core {

BatchAssigner::Assignment BatchAssigner::assign(net::FlowId flow,
                                                std::uint32_t segs,
                                                std::uint32_t bytes) {
  bool inserted = false;
  PerFlow& st = flows_.upsert(flow, static_cast<sim::Time>(++ops_), &inserted);
  flows_.touch(flow, static_cast<sim::Time>(ops_));
  // Stagger the starting splitting core per flow so concurrent elephants
  // spread their first micro-flows instead of piling onto the same core.
  if (inserted) {
    st.rr = static_cast<std::size_t>(flow * 7919u) %
            std::max<std::size_t>(1, config_.splitting_cores.size());
    st.seq = next_seq_++;
  }
  st.seen_segs += segs;
  st.seen_bytes += bytes;

  // Split decision: a control-plane override wins; otherwise the static
  // elephant threshold decides (the paper's setup-time policy).
  bool split;
  std::size_t degree = config_.splitting_cores.size();
  if (st.has_override) {
    split = st.override_degree > 0;
    degree = std::min<std::size_t>(st.override_degree, degree);
  } else {
    split = st.seen_segs > config_.elephant_threshold_pkts;
  }

  Assignment out;
  if (!split || degree == 0 || config_.splitting_cores.empty()) {
    // Default path. If a splitting period just ended, flag it so the
    // reassembler can hold this flow's default-path packets behind the
    // period's in-flight batches (rescale-drain protocol).
    st.default_segs += segs;
    out.unsplit = st.split_active;
    st.split_active = false;
    return out;
  }

  if (!st.split_active) {
    out.first_split = true;
    out.prior_segs = st.default_segs;
    st.split_active = true;
  }
  if (out.first_split || st.in_batch >= config_.batch_size) {
    // Open the next micro-flow and pick its splitting core round-robin —
    // equal-size batches spread evenly give similar per-core load (§III-A).
    // Degree changes bite here, never mid-batch.
    ++st.batch;
    st.in_batch = 0;
    st.target = config_.splitting_cores[st.rr % degree];
    ++st.rr;
    out.new_batch = true;
  }
  st.in_batch += segs;
  out.microflow_id = st.batch;
  out.target_core = st.target;
  return out;
}

void BatchAssigner::set_flow_degree(net::FlowId flow, std::uint32_t degree) {
  bool inserted = false;
  PerFlow& st = flows_.upsert(flow, static_cast<sim::Time>(++ops_), &inserted);
  if (inserted) {
    st.rr = static_cast<std::size_t>(flow * 7919u) %
            std::max<std::size_t>(1, config_.splitting_cores.size());
    st.seq = next_seq_++;
  }
  st.has_override = true;
  st.override_degree = degree;
}

std::uint32_t BatchAssigner::flow_degree(net::FlowId flow) const {
  const PerFlow* st = flows_.find(flow);
  return st == nullptr || !st->has_override ? 0 : st->override_degree;
}

std::uint64_t BatchAssigner::observed(net::FlowId flow) const {
  const PerFlow* st = flows_.find(flow);
  return st == nullptr ? 0 : st->seen_segs;
}

void BatchAssigner::append_totals(
    std::vector<control::Controller::FlowTotals>& out) const {
  // The table iterates in recency order; report in first-seen order so the
  // control loop (and its history) stays stable across ticks.
  std::vector<std::pair<std::uint64_t, control::Controller::FlowTotals>> rows;
  rows.reserve(flows_.size());
  flows_.for_each([&rows](net::FlowId flow, const PerFlow& st) {
    rows.emplace_back(st.seq,
                      control::Controller::FlowTotals{flow, st.seen_segs,
                                                      st.seen_bytes});
  });
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [_, totals] : rows) out.push_back(totals);
}

void FlowSplitter::on_forward(net::PacketPtr pkt, std::size_t next_index,
                              int from_core) {
  const auto a =
      assigner_.assign(pkt->flow_id, pkt->gro_segs, pkt->payload_len);
  sim::Core& fc = machine_.core(from_core);
  const stack::CostModel& costs = machine_.costs();
  trace::Tracer* tr = trace::active();

  if (a.microflow_id == 0) {
    // Mouse flow: fall through to the default transition (stay local under
    // the machine's steering policy).
    ++passed_;
    if (a.unsplit) {
      // The flow just stopped splitting: tell its reassembler to hold this
      // flow's default-path packets until the old batches drain (otherwise
      // this packet could overtake still-buffered micro-flows).
      if (Reassembler* ra = lookup_(*pkt)) ra->note_flow_unsplit(pkt->flow_id);
    }
    if (tr != nullptr)
      tr->packet(trace::EventKind::kSplitDecision, fc.vnow(), from_core,
                 pkt->flow_id, pkt->wire_seq, 0);
    fc.charge(sim::Tag::kSteer, costs.local_enqueue);
    machine_.deliver_to_stage(next_index, from_core, from_core,
                              std::move(pkt), /*charge_handoff=*/false);
    return;
  }

  ++split_;
  pkt->microflow_id = a.microflow_id;
  Reassembler* ra = lookup_(*pkt);
  if (a.first_split && ra != nullptr)
    ra->note_flow_split(pkt->flow_id, a.prior_segs, a.microflow_id);
  if (a.new_batch) {
    // Batch handoff + IPI are paid once per micro-flow, which is what makes
    // MFLOW's steering cheaper per packet than FALCON's per-skb handoff.
    fc.charge(sim::Tag::kSteer, costs.mflow_dispatch_per_batch);
    if (ra != nullptr) ra->note_batch_open(pkt->flow_id, a.microflow_id);
  }
  if (ra != nullptr)
    ra->note_dispatch(pkt->flow_id, a.microflow_id, pkt->gro_segs);
  fc.charge(sim::Tag::kSteer, costs.mflow_split_per_pkt);
  if (tr != nullptr) {
    tr->registry().add("split.dispatched");
    tr->packet(trace::EventKind::kSplitDecision, fc.vnow(), from_core,
               pkt->flow_id, pkt->wire_seq, a.microflow_id, a.microflow_id);
    tr->packet(trace::EventKind::kSplitDeposit, fc.vnow(), from_core,
               pkt->flow_id, pkt->wire_seq, a.microflow_id,
               static_cast<std::uint64_t>(a.target_core));
  }

  if (net::FaultInjector* faults = machine_.fault_injector()) {
    const net::FaultAction action =
        faults->decide(net::FaultPoint::kSplitQueue);
    if (tr != nullptr && action != net::FaultAction::kNone) {
      tr->registry().add("fault.split_queue_verdicts");
      tr->packet(trace::EventKind::kFaultVerdict, fc.vnow(), from_core,
                 pkt->flow_id, pkt->wire_seq, a.microflow_id,
                 static_cast<std::uint64_t>(action));
    }
    switch (action) {
      case net::FaultAction::kDrop:
        // Lost at the splitting-queue deposit; the dispatch above is
        // retracted synchronously so the merge never waits for it.
        faults->note_dropped_segs(pkt->gro_segs);
        if (tr != nullptr)
          tr->packet(trace::EventKind::kDrop, fc.vnow(), from_core,
                     pkt->flow_id, pkt->wire_seq, a.microflow_id);
        if (ra != nullptr)
          ra->note_drop(pkt->flow_id, a.microflow_id, pkt->gro_segs);
        return;
      case net::FaultAction::kCorrupt:
        faults->corrupt(*pkt);  // dies at the next verifying stage
        break;
      case net::FaultAction::kDuplicate:
        machine_.deliver_to_stage(next_index, a.target_core, from_core,
                                  net::clone_packet(*pkt),
                                  /*charge_handoff=*/false);
        break;
      case net::FaultAction::kDelay: {
        // Shared holder keeps the packet owned even if the simulation ends
        // before the delayed event fires (EventFn must be copyable).
        auto held = std::make_shared<net::PacketPtr>(std::move(pkt));
        const std::size_t idx = next_index;
        const int target = a.target_core;
        machine_.simulator().after(
            faults->delay_ns(net::FaultPoint::kSplitQueue),
            [this, idx, target, from_core, held] {
              machine_.deliver_to_stage(idx, target, from_core,
                                        std::move(*held),
                                        /*charge_handoff=*/false);
            });
        return;
      }
      case net::FaultAction::kNone:
        break;
    }
  }
  machine_.deliver_to_stage(next_index, a.target_core, from_core,
                            std::move(pkt), /*charge_handoff=*/false);
}

}  // namespace mflow::core
