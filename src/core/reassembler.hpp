// Batch-based flow reassembling (paper §III-B).
//
// Packets of each micro-flow arrive FIFO into that micro-flow's buffer
// queue; a global (per-flow) *merging counter* tracks which micro-flow is
// currently being merged. The reader keeps consuming the current queue until
// the batch is exhausted, then advances the counter — re-ordering at batch
// granularity, which is why it is so much cheaper than the kernel's
// per-packet out-of-order queue.
//
// Batch completion: the splitter registers every dispatch (note_dispatch)
// and the currently-open batch (note_batch_open); a batch is complete when
// its consumed segment count matches dispatched segments AND the splitter
// has moved past it. Everything already dispatched is always consumable in
// order, so merging never stalls behind a partially-filled batch.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "stack/costs.hpp"
#include "stack/socket.hpp"

namespace mflow::core {

class Reassembler final : public stack::MergeBuffer {
 public:
  explicit Reassembler(const stack::CostModel& costs) : costs_(costs) {}

  // --- splitter side ---------------------------------------------------------
  /// A packet carrying `segs` wire segments was dispatched into `batch_id`.
  void note_dispatch(net::FlowId flow, std::uint64_t batch_id,
                     std::uint32_t segs);
  /// The splitter opened `batch_id` (all batches below it are closed).
  void note_batch_open(net::FlowId flow, std::uint64_t batch_id);

  /// A dispatched packet was lost before reaching the merge point (e.g.
  /// request-ring overrun): retract it so merging does not stall.
  void note_drop(net::FlowId flow, std::uint64_t batch_id,
                 std::uint32_t segs);

  // --- stack::MergeBuffer ------------------------------------------------------
  void deposit(net::PacketPtr pkt, int from_core) override;
  net::PacketPtr pop_ready() override;
  bool pop_ready_available() const override;
  bool has_buffered() const override;
  sim::Time take_pending_charge() override;

  // --- statistics --------------------------------------------------------------
  /// Packets that arrived at the merge point out of original flow order
  /// (i.e. would have been delivered out of order without reassembly).
  std::uint64_t ooo_arrivals() const { return ooo_arrivals_; }
  std::uint64_t batches_merged() const { return batches_merged_; }
  std::uint64_t packets_merged() const { return packets_merged_; }
  std::size_t buffered_packets() const { return buffered_; }
  std::size_t max_buffered_packets() const { return max_buffered_; }
  void reset_stats();

 private:
  struct FlowMerge {
    std::uint64_t merge_counter = 1;  // batch currently being merged
    std::uint64_t open_batch = 0;     // splitter's current batch
    std::map<std::uint64_t, std::uint32_t> dispatched;  // batch -> segs
    std::map<std::uint64_t, std::uint32_t> consumed;
    std::map<std::uint64_t, std::deque<net::PacketPtr>> queues;
    std::uint64_t max_wire_seen = 0;
    bool any_seen = false;
  };

  /// Try to pop the next in-order packet for one flow. Advances the merge
  /// counter over completed batches.
  net::PacketPtr try_pop_flow(FlowMerge& fm, bool charge);
  bool flow_has_ready(const FlowMerge& fm) const;

  const stack::CostModel& costs_;
  std::unordered_map<net::FlowId, FlowMerge> flows_;
  std::vector<net::FlowId> flow_order_;  // deterministic round-robin
  std::size_t rr_ = 0;

  /// Unsplit traffic (microflow_id == 0) passes straight through.
  std::deque<net::PacketPtr> passthrough_;

  sim::Time pending_charge_ = 0;
  std::uint64_t ooo_arrivals_ = 0;
  std::uint64_t batches_merged_ = 0;
  std::uint64_t packets_merged_ = 0;
  std::size_t buffered_ = 0;
  std::size_t max_buffered_ = 0;
};

}  // namespace mflow::core
