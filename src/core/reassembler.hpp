// Batch-based flow reassembling (paper §III-B), made loss-tolerant.
//
// Packets of each micro-flow arrive FIFO into that micro-flow's buffer
// queue; a global (per-flow) *merging counter* tracks which micro-flow is
// currently being merged. The reader keeps consuming the current queue until
// the batch is exhausted, then advances the counter — re-ordering at batch
// granularity, which is why it is so much cheaper than the kernel's
// per-packet out-of-order queue.
//
// Batch completion: the splitter registers every dispatch (note_dispatch)
// and the currently-open batch (note_batch_open); a batch is complete when
// its consumed + retracted segment count covers dispatched segments AND the
// splitter has moved past it. Everything already dispatched is always
// consumable in order, so merging never stalls behind a partially-filled
// batch.
//
// Divergence from the paper: the paper's prototype assumes the handoff
// between splitting cores and the merge point is lossless, so a packet lost
// in flight would wedge the merging counter forever. Here every loss is
// survivable:
//  - known losses are retracted synchronously via note_drop (ring overruns,
//    fault-injected drops at the splitting queue);
//  - unknown losses (checksum drops of corrupted packets, packets delayed
//    beyond usefulness) are reclaimed by a sim-time eviction reaper: a flow
//    whose merge head makes no progress for `eviction_timeout` has its head
//    batch's missing segments charged as recovered drops and the counter
//    advanced.
// Both paths feed `drops_recovered`, so at quiescence
//     segs_dispatched == segs_merged + drops_recovered.
// Packets arriving for a batch the counter already passed (duplicates,
// too-late arrivals of evicted batches) are delivered out of order through
// the passthrough queue and counted as `late_deliveries` — the kernel's
// per-packet ofo queue / datagram semantics absorb them above us.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "stack/costs.hpp"
#include "stack/socket.hpp"
#include "util/stats.hpp"

namespace mflow::core {

struct ReassemblerParams {
  /// Merge-head stall duration after which the head batch's missing
  /// segments are evicted. 0 disables eviction (the paper's lossless
  /// assumption); requires a Simulator to be supplied.
  sim::Time eviction_timeout = 0;
  /// Upper bound on the pre-split ordering gate (see note_flow_split):
  /// past this, batch 1 stops waiting for straggling default-path packets.
  /// 0 means the gate is count-only (unit tests); requires a Simulator.
  sim::Time gate_grace = 0;
};

class Reassembler final : public stack::MergeBuffer {
 public:
  explicit Reassembler(const stack::CostModel& costs,
                       sim::Simulator* sim = nullptr,
                       ReassemblerParams params = {})
      : costs_(costs), sim_(sim), params_(params) {}

  // --- splitter side ---------------------------------------------------------
  /// A packet carrying `segs` wire segments was dispatched into `batch_id`.
  void note_dispatch(net::FlowId flow, std::uint64_t batch_id,
                     std::uint32_t segs);
  /// The splitter opened `batch_id` (all batches below it are closed).
  void note_batch_open(net::FlowId flow, std::uint64_t batch_id);

  /// A dispatched packet was lost before reaching the merge point (e.g.
  /// request-ring overrun, injected fault): retract it so merging does not
  /// stall. Idempotent against eviction: segments of batches the merge
  /// counter already passed are not recovered twice.
  void note_drop(net::FlowId flow, std::uint64_t batch_id,
                 std::uint32_t segs);

  /// The flow just started (or resumed) splitting: `prior_segs` default-path
  /// segments were forwarded before micro-flow `first_batch` was opened.
  /// Batches >= first_batch are gated until that many passthrough segments
  /// have been deposited, so split packets can never overtake in-flight
  /// default-path packets. Earlier batches (previous split periods) keep
  /// flowing.
  void note_flow_split(net::FlowId flow, std::uint64_t prior_segs,
                       std::uint64_t first_batch = 1);

  /// The flow just stopped splitting (control-plane demotion): batches up to
  /// the currently open one may still be in flight, so the flow's subsequent
  /// default-path packets are held and released only once those batches have
  /// fully drained — or after gate_grace, whichever comes first (the same
  /// deadline tradeoff as the pre-split gate). The other half of the
  /// rescale-drain protocol.
  void note_flow_unsplit(net::FlowId flow);

  /// Invoked whenever retraction/eviction turns a stalled flow ready while
  /// no deposit is happening (so the socket reader can be re-raised).
  void set_ready_callback(std::function<void()> cb) {
    ready_cb_ = std::move(cb);
  }

  // --- stack::MergeBuffer ------------------------------------------------------
  void deposit(net::PacketPtr pkt, int from_core) override;
  net::PacketPtr pop_ready() override;
  bool pop_ready_available() const override;
  bool has_buffered() const override;
  sim::Time take_pending_charge() override;

  // --- statistics --------------------------------------------------------------
  /// Packets that arrived at the merge point out of original flow order
  /// (i.e. would have been delivered out of order without reassembly).
  std::uint64_t ooo_arrivals() const { return ooo_arrivals_; }
  std::uint64_t batches_merged() const { return batches_merged_; }
  std::uint64_t packets_merged() const { return packets_merged_; }
  std::size_t buffered_packets() const { return buffered_; }
  std::size_t max_buffered_packets() const { return max_buffered_; }
  /// Wire segments registered by note_dispatch / consumed by the merge.
  std::uint64_t segs_dispatched() const { return segs_dispatched_; }
  std::uint64_t segs_merged() const { return segs_merged_; }
  /// Dispatched segments written off as lost (note_drop + eviction).
  std::uint64_t drops_recovered() const { return drops_recovered_; }
  /// Eviction events (head-batch timeouts + forgiven pre-split gates).
  std::uint64_t evictions() const { return evictions_; }
  /// Packets delivered out of order because their batch had already been
  /// merged past (duplicates, post-eviction stragglers).
  std::uint64_t late_deliveries() const { return late_deliveries_; }
  /// Unsplit-hold releases forced by the grace timer instead of a clean
  /// drain (counted into evictions() as well).
  std::uint64_t forced_hold_releases() const { return forced_hold_releases_; }
  /// Nothing buffered and every dispatched segment accounted for — the
  /// rescale-drain protocol's completion condition.
  bool drained() const;
  /// Stall-detection -> eviction latency samples (ns).
  const util::RunningStats& recovery_latency_ns() const {
    return recovery_ns_;
  }
  /// True if some flow has work buffered or outstanding but nothing ready —
  /// with eviction disabled this is a permanent wedge once inputs stop.
  bool any_flow_blocked() const;

  // --- flow-state expiry -------------------------------------------------------
  /// True when the reassembler holds no in-flight work for `flow`: no
  /// buffered packets, no unsplit hold, every dispatched segment consumed
  /// or written off. Untracked flows are trivially quiesced. The safety
  /// predicate for forget_flow().
  bool flow_quiesced(net::FlowId flow) const;
  /// Drop all per-flow merge state — merge counter, batch ledgers AND the
  /// passthrough-segment credit feeding the pre-split gate. Only call when
  /// flow_quiesced(); a reused FlowId then starts from a clean slate
  /// (merge counter 1, gate credit 0) consistent with a fresh assigner.
  void forget_flow(net::FlowId flow);

  void reset_stats();

 private:
  struct FlowMerge {
    net::FlowId id = 0;
    std::uint64_t merge_counter = 1;  // batch currently being merged
    std::uint64_t open_batch = 0;     // splitter's current batch
    std::map<std::uint64_t, std::uint32_t> dispatched;  // batch -> segs
    std::map<std::uint64_t, std::uint32_t> consumed;
    std::map<std::uint64_t, std::uint32_t> dropped;  // retracted/evicted
    std::map<std::uint64_t, std::deque<net::PacketPtr>> queues;
    std::uint64_t max_wire_seen = 0;
    bool any_seen = false;
    /// Pre-split gate: batches >= gate_batch are held until prior_expected
    /// default-path segments of the flow have passed through (see
    /// passthrough_segs_), or until gate_grace elapses from split_at —
    /// whichever comes first. gate_batch > 1 after a re-split (earlier
    /// periods' batches keep flowing).
    std::uint64_t prior_expected = 0;
    std::uint64_t gate_batch = 1;
    sim::Time split_at = 0;
    /// Unsplit hold: default-path packets deposited after a demotion are
    /// parked here until batches <= hold_barrier have drained (or the
    /// grace timer force-releases them).
    std::deque<net::PacketPtr> hold;
    std::uint64_t hold_barrier = 0;
    bool holding = false;
    /// Eviction mark-and-sweep: set by the reaper on a blocked flow,
    /// cleared by any merge progress; a still-marked blocked flow on the
    /// next sweep is evicted.
    bool stall_marked = false;
    sim::Time stall_marked_at = 0;
  };

  FlowMerge& flow_state(net::FlowId flow);
  /// Try to pop the next in-order packet for one flow. Advances the merge
  /// counter over completed batches.
  net::PacketPtr try_pop_flow(FlowMerge& fm, bool charge);
  bool flow_has_ready(const FlowMerge& fm) const;
  bool gate_open_at(const FlowMerge& fm, std::uint64_t batch) const;
  bool gate_open(const FlowMerge& fm) const;
  /// Batches from before the flow's demotion (<= hold_barrier) are fully
  /// merged / written off.
  bool old_work_drained(const FlowMerge& fm) const;
  /// Move the unsplit hold into passthrough_ once old work drained (or
  /// unconditionally when `force`), crediting passthrough_segs_ — which is
  /// what lets a subsequent re-split's gate open.
  void flush_hold(FlowMerge& fm, bool force);
  /// Pending work (buffered or outstanding dispatched segments) with
  /// nothing ready: the state eviction exists to clear.
  bool flow_blocked(const FlowMerge& fm) const;
  /// One eviction step on a blocked flow; returns false when no further
  /// forced progress is possible.
  bool evict_step(FlowMerge& fm);
  void ensure_reaper();
  void reap();
  void notify_ready_if_available();

  const stack::CostModel& costs_;
  sim::Simulator* sim_ = nullptr;
  ReassemblerParams params_;
  std::unordered_map<net::FlowId, FlowMerge> flows_;
  std::vector<net::FlowId> flow_order_;  // deterministic round-robin
  std::size_t rr_ = 0;
  bool reaper_scheduled_ = false;
  std::function<void()> ready_cb_;

  /// Unsplit traffic (microflow_id == 0) and late/duplicate split packets
  /// pass straight through.
  std::deque<net::PacketPtr> passthrough_;
  /// Default-path segments deposited per flow — the supply side of the
  /// pre-split ordering gate.
  std::unordered_map<net::FlowId, std::uint64_t> passthrough_segs_;

  sim::Time pending_charge_ = 0;
  std::uint64_t ooo_arrivals_ = 0;
  std::uint64_t batches_merged_ = 0;
  std::uint64_t packets_merged_ = 0;
  std::uint64_t segs_dispatched_ = 0;
  std::uint64_t segs_merged_ = 0;
  std::uint64_t drops_recovered_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t late_deliveries_ = 0;
  std::uint64_t forced_hold_releases_ = 0;
  util::RunningStats recovery_ns_;
  std::size_t buffered_ = 0;
  std::size_t max_buffered_ = 0;
};

}  // namespace mflow::core
