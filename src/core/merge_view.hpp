// core::MergeStreamView — the DES reassembler's adapter onto the shared
// control::MergeStream concept (control/reassembly.hpp).
//
// A view covers ONE flow of a Reassembler: deposit/pop map to the merge
// buffer surface, note_drop retracts into that flow, and descriptor()
// recovers the (wire_seq, microflow_id) pair the cross-engine ordering
// invariants are expressed in. Templated test helpers instantiate against
// this and rt::RtMergeStreamView identically — see tests/test_control.cpp.
#pragma once

#include <optional>
#include <utility>

#include "control/reassembly.hpp"
#include "core/reassembler.hpp"

namespace mflow::core {

class MergeStreamView {
 public:
  using Item = net::PacketPtr;

  MergeStreamView(Reassembler& ra, net::FlowId flow) : ra_(&ra), flow_(flow) {}

  bool deposit(Item item) {
    ra_->deposit(std::move(item), /*from_core=*/-1);
    return true;  // the DES merge buffer is unbounded: never refuses
  }

  std::optional<Item> pop() {
    Item pkt = ra_->pop_ready();
    if (!pkt) return std::nullopt;
    return pkt;
  }

  void note_drop(std::uint64_t batch, std::uint32_t segs) {
    ra_->note_drop(flow_, batch, segs);
  }

  std::pair<std::uint64_t, std::uint64_t> descriptor(const Item& item) const {
    return {item->wire_seq, item->microflow_id};
  }

  std::uint64_t batches_merged() const { return ra_->batches_merged(); }
  bool drained() const { return ra_->drained(); }

 private:
  Reassembler* ra_;
  net::FlowId flow_;
};

static_assert(control::MergeStream<MergeStreamView>);

}  // namespace mflow::core
