#include "experiment/datacaching.hpp"

namespace mflow::exp {

DataCachingResult run_datacaching(const DataCachingConfig& cfg) {
  ScenarioConfig sc;
  sc.mode = cfg.mode;
  sc.protocol = net::Ipv4Header::kProtoTcp;
  sc.message_size = cfg.object_bytes;
  sc.num_flows = cfg.clients;
  sc.warmup = cfg.warmup;
  sc.measure = cfg.measure;
  sc.seed = cfg.seed;
  sc.costs = cfg.costs;
  sc.interference = cfg.interference;
  // Same receiver layout as the multi-flow experiments: 5 application cores
  // (memcached worker threads' side), 10 kernel packet-processing cores.
  sc.server_cores = 15;
  sc.app_cores = 5;
  sc.first_kernel_core = 5;
  sc.kernel_cores = 10;
  sc.nic_queues = 10;
  sc.pace_per_message =
      static_cast<sim::Time>(1e9 / cfg.requests_per_client);

  if (cfg.mode == Mode::kMflow) {
    core::MflowConfig mcfg = core::tcp_full_path_config();
    mcfg.pipeline_pairs.clear();
    mcfg.splitting_cores.clear();
    for (int c = 5; c < 15; ++c) mcfg.splitting_cores.push_back(c);
    sc.mflow = mcfg;
  }

  const ScenarioResult r = run_scenario(sc);
  DataCachingResult res;
  res.mode = r.mode;
  res.clients = cfg.clients;
  res.achieved_rps =
      static_cast<double>(r.messages) / sim::to_seconds(cfg.measure);
  const double service_us = sim::to_us(cfg.service_time);
  res.avg_latency_us = r.mean_latency_us() + service_us;
  res.p50_latency_us = r.p50_latency_us() + service_us;
  res.p99_latency_us = r.p99_latency_us() + service_us;
  return res;
}

}  // namespace mflow::exp
