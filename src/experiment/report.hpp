// Paper-vs-measured reporting used by every bench binary.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "util/table.hpp"

namespace mflow::exp {

/// One expectation from the paper ("MFLOW/vanilla TCP throughput ~ 1.81x").
struct Expectation {
  std::string label;
  double expected;   // the paper's value (ratio or absolute)
  double measured;
  double tolerance;  // fractional tolerance considered "shape holds"
  bool holds() const;
};

/// Prints an expectation table with OK / DEVIATES flags.
void print_expectations(std::ostream& os, const std::string& title,
                        const std::vector<Expectation>& exps);

/// Per-core CPU breakdown table (Figures 4b / 8b / 12).
void print_core_breakdown(std::ostream& os, const std::string& title,
                          const ScenarioResult& result, int max_cores = 16,
                          double min_total = 0.005);

/// Per-phase latency attribution table (requires cfg.trace.enabled; no-op
/// when the result carries no trace). Shares of the mean end-to-end latency
/// plus per-phase p50/p99 from the trace registry's histograms.
void print_phase_breakdown(std::ostream& os, const std::string& title,
                           const ScenarioResult& result);

/// Counter/gauge registry snapshot (requires cfg.trace.enabled). Counters
/// whose value is zero are skipped unless `include_zero`.
void print_counters(std::ostream& os, const std::string& title,
                    const ScenarioResult& result, bool include_zero = false);

/// Convenience CSV-ish line for sweep outputs.
std::string throughput_row(const ScenarioResult& r);

}  // namespace mflow::exp
