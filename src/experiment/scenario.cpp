#include "experiment/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "core/adaptive.hpp"
#include "core/mflow.hpp"
#include "overlay/topology.hpp"
#include "rt/pool.hpp"
#include "sim/simulator.hpp"
#include "stack/machine.hpp"
#include "steering/modes.hpp"
#include "util/stats.hpp"
#include "workload/sender.hpp"

namespace mflow::exp {

std::string_view mode_name(Mode mode) {
  switch (mode) {
    case Mode::kNative: return "native";
    case Mode::kVanilla: return "vanilla-overlay";
    case Mode::kRps: return "rps";
    case Mode::kFalconDev: return "falcon-dev";
    case Mode::kFalconFun: return "falcon-fun";
    case Mode::kMflow: return "mflow";
  }
  return "?";
}

std::vector<Mode> evaluation_modes() {
  return {Mode::kNative, Mode::kVanilla, Mode::kRps, Mode::kFalconFun,
          Mode::kMflow};
}

std::vector<Mode> motivation_modes() {
  return {Mode::kNative, Mode::kVanilla, Mode::kRps, Mode::kFalconDev,
          Mode::kFalconFun};
}

double ScenarioResult::max_core_utilization() const {
  double best = 0.0;
  for (const auto& c : cores) best = std::max(best, c.total);
  return best;
}

double ScenarioResult::utilization_stddev_pct(int first_core,
                                              int count) const {
  util::RunningStats s;
  for (const auto& c : cores)
    if (c.core_id >= first_core && c.core_id < first_core + count)
      s.add(c.total * 100.0);
  return s.stddev();
}

namespace {

constexpr std::uint16_t kBasePort = 5000;
constexpr std::uint32_t kVni = 42;

const net::Ipv4Addr kHostA{192, 168, 1, 2};   // client (sender) host
const net::Ipv4Addr kHostB{192, 168, 1, 3};   // server (receiver) host
const net::Ipv4Addr kContainerA{10, 0, 1, 2};  // client-side container
const net::Ipv4Addr kContainerB{10, 0, 1, 3};  // server-side container

struct FlowPlan {
  net::FlowKey flow;
  net::FlowId id;
  std::uint16_t port;
  int app_core;
  int client_core;
};

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  const bool overlay = cfg.mode != Mode::kNative;
  const bool is_tcp = cfg.protocol == net::Ipv4Header::kProtoTcp;
  const bool use_mflow = cfg.mode == Mode::kMflow;

  core::MflowConfig mcfg =
      cfg.mflow.value_or(is_tcp ? core::tcp_full_path_config()
                                : core::udp_device_scaling_config());

  // Sender-side slab pool. Declared BEFORE the simulator on purpose: queued
  // events (e.g. delayed-fault redeliveries) can hold PacketPtrs into this
  // pool, so the pool must outlive the simulator's event queue.
  std::unique_ptr<rt::PacketPool> pool;
  if (cfg.packet_pool_slabs > 0)
    pool = std::make_unique<rt::PacketPool>(
        rt::PoolConfig{.slabs = cfg.packet_pool_slabs});

  sim::Simulator sim(cfg.seed);

  // --- tracing ---------------------------------------------------------------
  std::shared_ptr<trace::Tracer> tracer;
  if (cfg.trace.enabled && trace::compiled_in()) {
    tracer = std::make_shared<trace::Tracer>(cfg.trace);
    trace::set_current(tracer.get());
  }

  // --- receiver machine -----------------------------------------------------
  overlay::PathSpec spec;
  spec.overlay = overlay;
  spec.protocol = cfg.protocol;
  spec.vni = kVni;
  spec.tcp_in_reader = use_mflow && is_tcp && mcfg.tcp_in_reader;

  stack::MachineParams mp;
  mp.num_cores = cfg.server_cores;
  mp.costs = cfg.costs;
  mp.nic.num_queues = cfg.nic_queues;
  for (int q = 0; q < cfg.nic_queues; ++q)
    mp.irq_affinity.push_back(cfg.first_kernel_core + q % cfg.kernel_cores);

  stack::Machine server(sim, mp);
  server.set_path(overlay::build_rx_path(server.costs(), spec));

  // Kernel cores not used as IRQ cores: targets for RPS / FALCON pipelines.
  // When every kernel core handles a NIC queue (multi-flow setups), the
  // pipelines share the full kernel-core set instead.
  std::vector<int> helper_cores;
  for (int c = cfg.first_kernel_core + cfg.nic_queues;
       c < cfg.first_kernel_core + cfg.kernel_cores && c < cfg.server_cores;
       ++c)
    helper_cores.push_back(c);
  if (helper_cores.empty()) {
    for (int c = cfg.first_kernel_core;
         c < cfg.first_kernel_core + cfg.kernel_cores && c < cfg.server_cores;
         ++c)
      helper_cores.push_back(c);
  }

  switch (cfg.mode) {
    case Mode::kNative:
    case Mode::kVanilla:
      server.set_steering(steer::make_vanilla());
      break;
    case Mode::kRps:
      server.set_steering(steer::make_rps(helper_cores, overlay,
                                          cfg.costs.rps_hash_per_pkt));
      break;
    case Mode::kFalconDev:
      server.set_steering(steer::make_falcon(
          steer::FalconSteering::Level::kDevice, helper_cores, overlay));
      break;
    case Mode::kFalconFun:
      server.set_steering(steer::make_falcon(
          steer::FalconSteering::Level::kFunction, helper_cores, overlay));
      break;
    case Mode::kMflow:
      if (!mcfg.pipeline_pairs.empty()) {
        server.set_steering(std::make_unique<steer::PairedPipelineSteering>(
            std::unordered_map<int, int>(mcfg.pipeline_pairs.begin(),
                                         mcfg.pipeline_pairs.end()),
            mcfg.pipeline_at));
      } else {
        server.set_steering(steer::make_vanilla());
      }
      break;
  }

  // --- flows & sockets --------------------------------------------------------
  const net::Ipv4Addr src_ip = overlay ? kContainerA : kHostA;
  const net::Ipv4Addr dst_ip = overlay ? kContainerB : kHostB;
  std::vector<FlowPlan> plans;
  if (is_tcp) {
    for (int i = 0; i < cfg.num_flows; ++i) {
      FlowPlan p;
      p.flow = net::FlowKey{src_ip, dst_ip,
                            static_cast<std::uint16_t>(40000 + i),
                            static_cast<std::uint16_t>(kBasePort + i),
                            net::Ipv4Header::kProtoTcp};
      p.id = static_cast<net::FlowId>(i + 1);
      p.port = static_cast<std::uint16_t>(kBasePort + i);
      p.app_core = i % cfg.app_cores;
      p.client_core = i;
      plans.push_back(p);
    }
  } else {
    // The paper's UDP setup: three sockperf clients stress ONE UDP flow
    // (same 5-tuple), so RSS/RPS cannot spread the load — the whole point
    // of the motivation study. All clients share flow id 1.
    for (int i = 0; i < cfg.udp_clients; ++i) {
      FlowPlan p;
      p.flow = net::FlowKey{src_ip, dst_ip, 41000, kBasePort,
                            net::Ipv4Header::kProtoUdp};
      p.id = 1;
      p.port = kBasePort;
      p.app_core = 0;
      p.client_core = i;
      plans.push_back(p);
    }
  }

  std::vector<std::uint16_t> socket_ports;
  for (const auto& p : plans) {
    if (!socket_ports.empty() && socket_ports.back() == p.port) continue;
    stack::SocketConfig sc;
    sc.protocol = cfg.protocol;
    sc.app_core = p.app_core;
    sc.message_size = cfg.message_size;
    sc.tcp_in_reader = spec.tcp_in_reader;
    sc.extra_reader_cores = cfg.extra_reader_cores;
    server.add_socket(p.port, sc);
    socket_ports.push_back(p.port);
  }

  // --- MFLOW -------------------------------------------------------------------
  std::unique_ptr<core::MflowEngine> engine;
  server.start();
  std::unique_ptr<core::AdaptiveBatchController> adaptive;
  if (use_mflow) {
    engine = std::make_unique<core::MflowEngine>(server, mcfg);
    if (cfg.mflow_reassembler) {
      for (std::uint16_t port : socket_ports)
        engine->attach_socket(port, server.socket(port));
    }
    engine->install();
    if (cfg.adaptive_batch) {
      adaptive =
          std::make_unique<core::AdaptiveBatchController>(sim, *engine);
      adaptive->start();
    }
  }

  // --- interference on kernel cores ---------------------------------------------
  sim::Interference interference(sim, cfg.interference, cfg.seed ^ 0xABCD);
  for (int c = cfg.first_kernel_core;
       c < cfg.first_kernel_core + cfg.kernel_cores && c < cfg.server_cores;
       ++c)
    interference.attach(server.core(c));

  // --- clients ---------------------------------------------------------------------
  workload::ClientHost clients(sim, static_cast<int>(plans.size()),
                               cfg.costs);
  workload::WireLink wire(sim, server, cfg.costs.wire_latency);

  net::FaultInjector injector(cfg.faults);
  if (cfg.faults.any()) {
    server.set_fault_injector(&injector);
    wire.set_fault_injector(&injector);
  }

  std::vector<std::unique_ptr<workload::TcpSender>> tcp_senders;
  std::vector<std::unique_ptr<workload::UdpSender>> udp_senders;
  std::unordered_map<net::FlowId, workload::TcpSender*> sender_by_flow;

  for (const auto& p : plans) {
    workload::SenderParams sp;
    sp.flow = p.flow;
    sp.flow_id = p.id;
    sp.overlay = overlay;
    sp.outer_src = kHostA;
    sp.outer_dst = kHostB;
    sp.vni = kVni;
    sp.message_size = cfg.message_size;
    // Fair-share windows: real concurrent TCP flows converge (via congestion
    // control) to sharing the bottleneck, keeping aggregate inflight within
    // buffering. Static division reproduces that steady state.
    sp.window_bytes = cfg.num_flows > 1
                          ? std::max<std::uint64_t>(
                                128ull * net::kTcpMss,
                                cfg.window_bytes /
                                    static_cast<std::uint64_t>(cfg.num_flows))
                          : cfg.window_bytes;
    sp.pace_per_message = cfg.pace_per_message;
    sp.pool = pool.get();
    if (is_tcp) {
      tcp_senders.push_back(std::make_unique<workload::TcpSender>(
          clients, p.client_core, sp, wire));
      sender_by_flow[p.id] = tcp_senders.back().get();
    } else {
      sp.message_id_start = static_cast<std::uint64_t>(p.client_core);
      sp.message_id_stride = static_cast<std::uint64_t>(cfg.udp_clients);
      udp_senders.push_back(std::make_unique<workload::UdpSender>(
          clients, p.client_core, sp, wire));
    }
  }

  // ACK path: receiver-side TCP -> (wire latency) -> client sender.
  if (is_tcp) {
    const sim::Time ack_latency = cfg.costs.wire_latency;
    auto ack_cb = [&sim, &sender_by_flow,
                   ack_latency](net::FlowId flow, std::uint64_t bytes) {
      const auto it = sender_by_flow.find(flow);
      if (it == sender_by_flow.end()) return;
      workload::TcpSender* snd = it->second;
      sim.after(ack_latency, [snd, bytes] { snd->on_ack(bytes); });
    };
    if (spec.tcp_in_reader) {
      for (std::uint16_t port : socket_ports)
        server.socket(port).tcp_receiver().set_ack_callback(ack_cb);
    } else if (auto* rx = overlay::find_softirq_tcp_receiver(server)) {
      rx->set_ack_callback(ack_cb);
    }
  }

  for (auto& s : tcp_senders) s->start();
  for (auto& s : udp_senders) s->start();

  // --- run ---------------------------------------------------------------------------
  std::uint64_t events = sim.run_until(cfg.warmup);
  server.reset_measurement();
  if (engine) engine->reset_stats();
  if (tracer) tracer->clear();  // drop warmup events and counters
  const std::uint64_t drops0 = server.nic().total_drops();
  std::uint64_t offered0 = 0;
  for (const auto& s : tcp_senders) offered0 += s->bytes_sent();
  for (const auto& s : udp_senders) offered0 += s->bytes_sent();
  const std::uint64_t inj_drops0 = injector.total_drops();
  const std::uint64_t inj_drop_segs0 = injector.dropped_segs();
  const std::uint64_t inj_corrupt0 = injector.total_corruptions();
  const std::uint64_t inj_dup0 = injector.total_duplicates();
  const std::uint64_t inj_delay0 = injector.total_delays();

  events += sim.run_until(cfg.warmup + cfg.measure);

  // --- collect --------------------------------------------------------------------------
  ScenarioResult res;
  res.mode = std::string(mode_name(cfg.mode));
  res.events = events;
  const double secs = sim::to_seconds(cfg.measure);

  std::uint64_t bytes = 0;
  for (std::uint16_t port : socket_ports) {
    const auto& st = server.socket(port).stats();
    bytes += st.payload_bytes;
    res.messages += st.messages;
    res.latency.merge(st.latency);
  }
  res.goodput_gbps = static_cast<double>(bytes) * 8.0 / secs / 1e9;

  std::uint64_t offered1 = 0;
  for (const auto& s : tcp_senders) offered1 += s->bytes_sent();
  for (const auto& s : udp_senders) offered1 += s->bytes_sent();
  res.offered_gbps =
      static_cast<double>(offered1 - offered0) * 8.0 / secs / 1e9;

  res.nic_drops = server.nic().total_drops() - drops0;
  res.injected_drops = injector.total_drops() - inj_drops0;
  res.injected_drop_segs = injector.dropped_segs() - inj_drop_segs0;
  res.injected_corruptions = injector.total_corruptions() - inj_corrupt0;
  res.injected_duplicates = injector.total_duplicates() - inj_dup0;
  res.injected_delays = injector.total_delays() - inj_delay0;
  if (engine) {
    res.ooo_arrivals = engine->ooo_arrivals();
    res.batches_merged = engine->batches_merged();
    res.final_batch = engine->config().batch_size;
    res.drops_recovered = engine->drops_recovered();
    res.evictions = engine->evictions();
    res.late_deliveries = engine->late_deliveries();
    res.recovery_latency_ns = engine->recovery_latency_ns();
    res.flows_blocked = engine->any_flow_blocked();
  }

  for (int c = 0; c < server.num_cores(); ++c) {
    CoreUsage u;
    u.core_id = c;
    const auto& core = server.core(c);
    for (std::size_t t = 0; t < sim::kTagCount; ++t)
      u.by_tag[t] =
          static_cast<double>(core.busy_ns(static_cast<sim::Tag>(t))) /
          static_cast<double>(cfg.measure);
    u.total = core.utilization(cfg.measure);
    res.cores.push_back(u);
  }

  if (tracer) {
    trace::set_current(nullptr);
    // Canonical registry names: subsystem totals the live tracepoint
    // counters cannot see (or that are authoritative here) land under the
    // same snapshot the benches read, replacing per-struct field access.
    trace::Registry& reg = tracer->registry();
    reg.set_gauge("goodput_gbps", res.goodput_gbps);
    reg.set_gauge("offered_gbps", res.offered_gbps);
    reg.set_gauge("latency.mean_us", res.mean_latency_us());
    reg.set_gauge("latency.p50_us", res.p50_latency_us());
    reg.set_gauge("latency.p99_us", res.p99_latency_us());
    reg.set_counter("messages", res.messages);
    reg.set_counter("nic.drops", res.nic_drops);
    reg.set_counter("fault.injected_drops", res.injected_drops);
    reg.set_counter("fault.injected_drop_segs", res.injected_drop_segs);
    reg.set_counter("fault.injected_corruptions", res.injected_corruptions);
    reg.set_counter("fault.injected_duplicates", res.injected_duplicates);
    reg.set_counter("fault.injected_delays", res.injected_delays);
    reg.set_counter("reasm.ooo_arrivals", res.ooo_arrivals);
    reg.set_counter("reasm.batches_merged", res.batches_merged);
    reg.set_counter("reasm.drops_recovered", res.drops_recovered);
    reg.set_counter("reasm.evictions", res.evictions);
    reg.set_counter("reasm.late_deliveries", res.late_deliveries);
    reg.set_gauge("fault.recovery_latency_mean_ns",
                  res.recovery_latency_ns.mean());
    if (pool) {
      reg.set_counter("pool.acquired", pool->acquired());
      reg.set_counter("pool.recycled", pool->recycled());
      reg.set_counter("pool.exhausted", pool->exhausted());
    }
    res.phases = trace::attribute(*tracer);
    res.stats = reg.snapshot();
    res.tracer = std::move(tracer);
  }
  return res;
}

}  // namespace mflow::exp
