#include "experiment/scenario.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "core/adaptive.hpp"
#include "core/mflow.hpp"
#include "nf/stage.hpp"
#include "overlay/topology.hpp"
#include "rt/pool.hpp"
#include "sim/simulator.hpp"
#include "stack/flowcache.hpp"
#include "stack/machine.hpp"
#include "steering/modes.hpp"
#include "util/stats.hpp"
#include "workload/sender.hpp"

namespace mflow::exp {

std::vector<Mode> evaluation_modes() {
  return {Mode::kNative, Mode::kVanilla, Mode::kRps, Mode::kFalconFun,
          Mode::kMflow};
}

std::vector<Mode> motivation_modes() {
  return {Mode::kNative, Mode::kVanilla, Mode::kRps, Mode::kFalconDev,
          Mode::kFalconFun};
}

void ScenarioConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("ScenarioConfig: " + msg);
  };
  auto str = [](auto v) { return std::to_string(v); };

  if (server_cores < 1) fail("server_cores must be >= 1");
  if (app_cores < 1 || app_cores > server_cores)
    fail("app_cores=" + str(app_cores) + " must be in [1, server_cores=" +
         str(server_cores) + "]");
  if (kernel_cores < 1) fail("kernel_cores must be >= 1");
  if (first_kernel_core < 0) fail("first_kernel_core must be >= 0");
  if (first_kernel_core + kernel_cores > server_cores)
    fail("kernel core range [" + str(first_kernel_core) + ", " +
         str(first_kernel_core + kernel_cores) + ") exceeds server_cores=" +
         str(server_cores) + "; shrink kernel_cores or grow server_cores");
  if (app_cores > first_kernel_core)
    fail("app cores [0, " + str(app_cores) +
         ") overlap the kernel cores starting at first_kernel_core=" +
         str(first_kernel_core) +
         "; raise first_kernel_core to at least app_cores");
  if (nic_queues < 1 || nic_queues > kernel_cores)
    fail("nic_queues=" + str(nic_queues) +
         " must be in [1, kernel_cores=" + str(kernel_cores) +
         "] (each queue needs an IRQ core)");
  if (!std::has_single_bit(nic_ring_capacity))
    fail("nic_ring_capacity=" + str(nic_ring_capacity) +
         " must be a power of two");
  if (trace.enabled && !std::has_single_bit(trace.ring_capacity))
    fail("trace.ring_capacity=" + str(trace.ring_capacity) +
         " must be a power of two");

  if (protocol != net::Ipv4Header::kProtoTcp &&
      protocol != net::Ipv4Header::kProtoUdp)
    fail("protocol=" + str(int(protocol)) + " is neither TCP(6) nor UDP(17)");
  if (message_size == 0) fail("message_size must be > 0");
  const bool tcp = protocol == net::Ipv4Header::kProtoTcp;
  if (tcp && num_flows < 1) fail("num_flows must be >= 1 for TCP runs");
  if (!tcp && udp_clients < 1) fail("udp_clients must be >= 1 for UDP runs");
  if (tcp && window_bytes == 0) fail("window_bytes must be > 0 for TCP runs");
  if (warmup < 0 || measure <= 0)
    fail("need warmup >= 0 and measure > 0 (got warmup=" + str(warmup) +
         ", measure=" + str(measure) + ")");

  for (int c : extra_reader_cores)
    if (c < 0 || c >= server_cores)
      fail("extra_reader_cores entry " + str(c) +
           " outside [0, server_cores=" + str(server_cores) + ")");

  if (mode == Mode::kMflow) {
    const core::MflowConfig mcfg =
        mflow.value_or(tcp ? core::tcp_full_path_config()
                           : core::udp_device_scaling_config());
    if (mcfg.batch_size == 0) fail("mflow.batch_size must be > 0");
    if (mcfg.splitting_cores.empty())
      fail("mflow.splitting_cores must not be empty in mflow mode");
    for (int c : mcfg.splitting_cores)
      if (c < 0 || c >= server_cores)
        fail("mflow.splitting_cores entry " + str(c) +
             " outside [0, server_cores=" + str(server_cores) + ")");
    for (const auto& [from, to] : mcfg.pipeline_pairs)
      if (from < 0 || from >= server_cores || to < 0 || to >= server_cores)
        fail("mflow.pipeline_pairs entry " + str(from) + "->" + str(to) +
             " outside [0, server_cores=" + str(server_cores) + ")");
  }

  if (fastpath.enabled) {
    if (fastpath.capacity == 0)
      fail("fastpath.enabled with fastpath.capacity=0 — the cache could "
           "never hold an entry, so every packet would pay the probe for "
           "nothing; set capacity >= 1 or disable fastpath");
    if (mode == Mode::kNative)
      fail("fastpath.enabled requires an overlay mode (mode 'native' has no "
           "VXLAN/bridge/veth segment to cache); pick an overlay mode or "
           "disable fastpath");
  }

  if (nf.enabled) {
    if (nf.chain.chain.empty())
      fail("nf.enabled with an empty nf.chain.chain — nothing to run; add "
           "nat/fw/lb to the chain or disable nf");
    if (nf.state_capacity == 0)
      fail("nf.state_capacity must be >= 1 (the tables could never hold a "
           "flow)");
    if (nf.state_ttl > 0 && nf.sweep_interval <= 0)
      fail("nf.state_ttl > 0 requires nf.sweep_interval > 0 — without a "
           "sweep the TTL never fires and expired flows leak");
    const bool has_nat = std::find(nf.chain.chain.begin(),
                                   nf.chain.chain.end(),
                                   nf::Kind::kNat) != nf.chain.chain.end();
    const bool has_lb = std::find(nf.chain.chain.begin(),
                                  nf.chain.chain.end(),
                                  nf::Kind::kLoadBalancer) !=
                        nf.chain.chain.end();
    if (has_nat && nf.chain.nat_port_span == 0)
      fail("nf chain includes nat but nf.chain.nat_port_span=0 — no ports "
           "to allocate");
    if (has_lb && nf.chain.lb_backends == 0)
      fail("nf chain includes lb but nf.chain.lb_backends=0 — no backends "
           "to pick");
    for (int c : nf.affinity_cores)
      if (c < 0 || c >= server_cores)
        fail("nf.affinity_cores entry " + str(c) +
             " outside [0, server_cores=" + str(server_cores) + ")");
  }

  if (control.enabled) {
    if (mode != Mode::kMflow)
      fail("control.enabled requires Mode::kMflow (there is no splitter to "
           "re-target in mode '" + std::string(mode_name(mode)) + "')");
    if (control.interval <= 0) fail("control.interval must be > 0");
    if (control.params.monitor.window <= 0)
      fail("control.params.monitor.window must be > 0");
    if (control.params.classifier.promote_pps <
        control.params.classifier.demote_pps)
      fail("hysteresis band inverted: classifier.promote_pps=" +
           str(control.params.classifier.promote_pps) +
           " < demote_pps=" + str(control.params.classifier.demote_pps));
    if (control.params.scaling.per_core_pps <= 0)
      fail("control.params.scaling.per_core_pps must be > 0");
  }

  if (control.churn.enabled) {
    if (!control.enabled)
      fail("control.churn.enabled requires control.enabled (churn totals "
           "feed the controller's source; with no controller nothing reads "
           "them)");
    if (control.params.monitor.table.ttl <= 0)
      fail("control.churn.enabled requires control.params.monitor.table.ttl "
           "> 0 — without a TTL the sweep never runs and every churned flow "
           "is tracked forever (the exact leak the churn scenario exists to "
           "catch)");
    if (control.churn.flows_per_sec <= 0)
      fail("control.churn.flows_per_sec must be > 0");
    if (control.churn.flow_lifetime <= 0)
      fail("control.churn.flow_lifetime must be > 0");
    if (control.churn.rate_pps <= 0)
      fail("control.churn.rate_pps must be > 0");
  }

  if (elastic.enabled) {
    if (!control.enabled)
      fail("elastic.enabled requires control.enabled — the autoscaler sizes "
           "capacity from the controller's FlowMonitor aggregate, and the "
           "controller is what re-spreads flows over the new budget");
    if (elastic.interval <= 0) fail("elastic.interval must be > 0");
    if (elastic.params.per_worker_pps <= 0)
      fail("elastic.params.per_worker_pps must be > 0");
    if (elastic.params.headroom < 1.0)
      fail("elastic.params.headroom must be >= 1 — provisioning below the "
           "measured load guarantees an SLO miss");
    if (elastic.params.min_workers < 1)
      fail("elastic.params.min_workers must be >= 1 (zero workers cannot "
           "serve the baseline load)");
    if (elastic.params.max_workers != 0 &&
        elastic.params.max_workers < elastic.params.min_workers)
      fail("elastic.params.max_workers=" + str(elastic.params.max_workers) +
           " < min_workers=" + str(elastic.params.min_workers));
    if (elastic.params.cooldown < 0 || elastic.params.down_dwell < 0)
      fail("elastic.params.cooldown and down_dwell must be >= 0");
  }

  const int senders = tcp ? num_flows : udp_clients;
  for (const auto& rc : rate_changes) {
    if (rc.sender_index < 0 || rc.sender_index >= senders)
      fail("rate_changes sender_index=" + str(rc.sender_index) +
           " outside [0, " + str(senders) + ")");
    if (rc.at < 0) fail("rate_changes entry with negative time");
  }
  if (usage_split_at != 0 &&
      (usage_split_at <= warmup || usage_split_at >= warmup + measure))
    fail("usage_split_at=" + str(usage_split_at) +
         " must lie strictly inside the measurement window (" + str(warmup) +
         ", " + str(warmup + measure) + ")");
}

double ScenarioResult::max_core_utilization() const {
  double best = 0.0;
  for (const auto& c : cores) best = std::max(best, c.total);
  return best;
}

double ScenarioResult::utilization_stddev_pct(int first_core,
                                              int count) const {
  util::RunningStats s;
  for (const auto& c : cores)
    if (c.core_id >= first_core && c.core_id < first_core + count)
      s.add(c.total * 100.0);
  return s.stddev();
}

namespace {

constexpr std::uint16_t kBasePort = 5000;
constexpr std::uint32_t kVni = 42;

const net::Ipv4Addr kHostA{192, 168, 1, 2};   // client (sender) host
const net::Ipv4Addr kHostB{192, 168, 1, 3};   // server (receiver) host
const net::Ipv4Addr kContainerA{10, 0, 1, 2};  // client-side container
const net::Ipv4Addr kContainerB{10, 0, 1, 3};  // server-side container

struct FlowPlan {
  net::FlowKey flow;
  net::FlowId id;
  std::uint16_t port;
  int app_core;
  int client_core;
};

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  cfg.validate();
  const bool overlay = cfg.mode != Mode::kNative;
  const bool is_tcp = cfg.protocol == net::Ipv4Header::kProtoTcp;
  const bool use_mflow = cfg.mode == Mode::kMflow;

  core::MflowConfig mcfg =
      cfg.mflow.value_or(is_tcp ? core::tcp_full_path_config()
                                : core::udp_device_scaling_config());
  // With the control plane on, split decisions come exclusively from the
  // controller's per-flow degree overrides; the static packet-count
  // threshold would otherwise promote every flow behind its back.
  if (use_mflow && cfg.control.enabled)
    mcfg.elephant_threshold_pkts =
        std::numeric_limits<std::uint64_t>::max();

  // Sender-side slab pool. Declared BEFORE the simulator on purpose: queued
  // events (e.g. delayed-fault redeliveries) can hold PacketPtrs into this
  // pool, so the pool must outlive the simulator's event queue.
  std::unique_ptr<rt::PacketPool> pool;
  if (cfg.packet_pool_slabs > 0)
    pool = std::make_unique<rt::PacketPool>(
        rt::PoolConfig{.slabs = cfg.packet_pool_slabs});

  sim::Simulator sim(cfg.seed);

  // --- tracing ---------------------------------------------------------------
  std::shared_ptr<trace::Tracer> tracer;
  if (cfg.trace.enabled && trace::compiled_in()) {
    tracer = std::make_shared<trace::Tracer>(cfg.trace);
    trace::set_current(tracer.get());
  }

  // --- receiver machine -----------------------------------------------------
  overlay::PathSpec spec;
  spec.overlay = overlay;
  spec.protocol = cfg.protocol;
  spec.vni = kVni;
  spec.tcp_in_reader = use_mflow && is_tcp && mcfg.tcp_in_reader;

  stack::MachineParams mp;
  mp.num_cores = cfg.server_cores;
  mp.costs = cfg.costs;
  mp.nic.num_queues = cfg.nic_queues;
  mp.nic.ring_capacity = cfg.nic_ring_capacity;
  for (int q = 0; q < cfg.nic_queues; ++q)
    mp.irq_affinity.push_back(cfg.first_kernel_core + q % cfg.kernel_cores);

  // Fast-path cache: declared before the machine only for symmetry with the
  // pool (stages hold non-owning pointers; neither side touches the other
  // at destruction). Installed right after the path exists.
  std::unique_ptr<stack::FlowCache> flowcache;
  if (cfg.fastpath.enabled)
    flowcache = std::make_unique<stack::FlowCache>(
        stack::FlowCacheConfig{cfg.fastpath.capacity});

  stack::Machine server(sim, mp);

  // NF layer: stages are spliced into the path before it is handed to the
  // machine; the affinity hook (if any) is installed at the first NF index.
  std::unique_ptr<nf::NfLayer> nflayer;
  {
    auto path = overlay::build_rx_path(server.costs(), spec);
    std::size_t nf_index = 0;
    if (cfg.nf.enabled) {
      nf::LayerParams np;
      np.chain = cfg.nf.chain;
      np.strategy = cfg.nf.strategy;
      np.state_capacity = cfg.nf.state_capacity;
      np.state_ttl = cfg.nf.state_ttl;
      np.num_cores = cfg.server_cores;
      np.affinity_cores = cfg.nf.affinity_cores;
      if (np.affinity_cores.empty() &&
          np.strategy == nf::Strategy::kFlowAffinity) {
        // Default pin: the first kernel core after the IRQ cores, falling
        // back to the first kernel core when every kernel core owns a queue.
        int pin = cfg.first_kernel_core + cfg.nic_queues;
        if (pin >= cfg.first_kernel_core + cfg.kernel_cores ||
            pin >= cfg.server_cores)
          pin = cfg.first_kernel_core;
        np.affinity_cores = {pin};
      }
      nflayer = std::make_unique<nf::NfLayer>(std::move(np), cfg.costs);
      nf_index = nf::insert_stages(path, *nflayer);
      if (tracer) nflayer->set_registry(&tracer->registry());
    }
    server.set_path(std::move(path));
    if (nflayer && cfg.nf.strategy == nf::Strategy::kFlowAffinity)
      server.set_transition_hook(nf_index, &nflayer->affinity_hook(server));
  }
  if (flowcache) overlay::install_flow_cache(server, *flowcache);

  // Kernel cores not used as IRQ cores: targets for RPS / FALCON pipelines.
  // When every kernel core handles a NIC queue (multi-flow setups), the
  // pipelines share the full kernel-core set instead.
  std::vector<int> helper_cores;
  for (int c = cfg.first_kernel_core + cfg.nic_queues;
       c < cfg.first_kernel_core + cfg.kernel_cores && c < cfg.server_cores;
       ++c)
    helper_cores.push_back(c);
  if (helper_cores.empty()) {
    for (int c = cfg.first_kernel_core;
         c < cfg.first_kernel_core + cfg.kernel_cores && c < cfg.server_cores;
         ++c)
      helper_cores.push_back(c);
  }

  steer::PolicyParams steering;
  steering.helper_cores = helper_cores;
  steering.overlay = overlay;
  steering.rps_hash_cost = cfg.costs.rps_hash_per_pkt;
  steering.pipeline_pairs = mcfg.pipeline_pairs;
  steering.pipeline_at = mcfg.pipeline_at;
  server.set_steering(steer::make_policy(cfg.mode, steering));

  // --- flows & sockets --------------------------------------------------------
  const net::Ipv4Addr src_ip = overlay ? kContainerA : kHostA;
  const net::Ipv4Addr dst_ip = overlay ? kContainerB : kHostB;
  std::vector<FlowPlan> plans;
  if (is_tcp) {
    for (int i = 0; i < cfg.num_flows; ++i) {
      FlowPlan p;
      p.flow = net::FlowKey{src_ip, dst_ip,
                            static_cast<std::uint16_t>(40000 + i),
                            static_cast<std::uint16_t>(kBasePort + i),
                            net::Ipv4Header::kProtoTcp};
      p.id = static_cast<net::FlowId>(i + 1);
      p.port = static_cast<std::uint16_t>(kBasePort + i);
      p.app_core = i % cfg.app_cores;
      p.client_core = i;
      plans.push_back(p);
    }
  } else {
    // The paper's UDP setup: three sockperf clients stress ONE UDP flow
    // (same 5-tuple), so RSS/RPS cannot spread the load — the whole point
    // of the motivation study. All clients share flow id 1.
    for (int i = 0; i < cfg.udp_clients; ++i) {
      FlowPlan p;
      p.flow = net::FlowKey{src_ip, dst_ip, 41000, kBasePort,
                            net::Ipv4Header::kProtoUdp};
      p.id = 1;
      p.port = kBasePort;
      p.app_core = 0;
      p.client_core = i;
      plans.push_back(p);
    }
  }

  std::vector<std::uint16_t> socket_ports;
  for (const auto& p : plans) {
    if (!socket_ports.empty() && socket_ports.back() == p.port) continue;
    stack::SocketConfig sc;
    sc.protocol = cfg.protocol;
    sc.app_core = p.app_core;
    sc.message_size = cfg.message_size;
    sc.tcp_in_reader = spec.tcp_in_reader;
    sc.extra_reader_cores = cfg.extra_reader_cores;
    server.add_socket(p.port, sc);
    socket_ports.push_back(p.port);
  }

  // --- MFLOW -------------------------------------------------------------------
  std::unique_ptr<core::MflowEngine> engine;
  server.start();
  std::unique_ptr<core::AdaptiveBatchController> adaptive;
  if (use_mflow) {
    engine = std::make_unique<core::MflowEngine>(server, mcfg);
    if (cfg.mflow_reassembler) {
      for (std::uint16_t port : socket_ports)
        engine->attach_socket(port, server.socket(port));
    }
    engine->install();
    if (cfg.adaptive_batch) {
      adaptive =
          std::make_unique<core::AdaptiveBatchController>(sim, *engine);
      adaptive->start();
    }
  }

  // --- dynamic flow control plane -------------------------------------------
  std::unique_ptr<core::MflowCapacityAdapter> capacity;
  std::unique_ptr<control::Controller> controller;
  std::unique_ptr<control::Autoscaler> autoscaler;
  std::function<void()> control_tick;  // outlives every queued tick event
  std::function<void()> elastic_tick;
  if (engine && cfg.control.enabled) {
    // With churn on, the synthetic flows ride the same totals vector as the
    // engine's real ones, so the controller monitors/classifies/expires both
    // populations through one code path.
    control::Controller::Source source;
    if (cfg.control.churn.enabled) {
      source = [eng = engine.get(), churn = cfg.control.churn, &sim] {
        auto totals = eng->flow_totals();
        append_churn_totals(churn, sim.now(), totals);
        return totals;
      };
    } else {
      source = [eng = engine.get()] { return eng->flow_totals(); };
    }
    // The control plane reaches the engine ONLY through its CapacityTarget
    // adapter. With the elastic tier on, the budget starts at the
    // configured initial worker count instead of full capacity.
    std::uint32_t initial_workers = 0;  // adapter default: worker_limit
    if (cfg.elastic.enabled)
      initial_workers = cfg.elastic.initial_workers != 0
                            ? cfg.elastic.initial_workers
                            : cfg.elastic.params.min_workers;
    capacity =
        std::make_unique<core::MflowCapacityAdapter>(*engine, initial_workers);
    controller = std::make_unique<control::Controller>(
        cfg.control.params, std::move(source), capacity.get());
    if (tracer) controller->export_to(&tracer->registry());
    // Recurring tick. The chain re-arms itself past the end of the run;
    // the final queued event simply never fires once run_until() stops.
    control_tick = [&sim, &control_tick, ctl = controller.get(),
                    interval = cfg.control.interval] {
      ctl->tick(sim.now());
      sim.after(interval, [&control_tick] { control_tick(); });
    };
    sim.after(cfg.control.interval, [&control_tick] { control_tick(); });

    if (cfg.elastic.enabled) {
      autoscaler = std::make_unique<control::Autoscaler>(
          cfg.elastic.params,
          [mon = &controller->monitor()] { return mon->aggregate_rate_pps(); },
          capacity.get());
      if (tracer) autoscaler->export_to(&tracer->registry());
      elastic_tick = [&sim, &elastic_tick, as = autoscaler.get(),
                      interval = cfg.elastic.interval] {
        as->tick(sim.now());
        sim.after(interval, [&elastic_tick] { elastic_tick(); });
      };
      sim.after(cfg.elastic.interval, [&elastic_tick] { elastic_tick(); });
    }
  }

  // --- NF expiry sweep --------------------------------------------------------
  std::function<void()> nf_sweep;  // outlives every queued sweep event
  if (nflayer && cfg.nf.state_ttl > 0) {
    nf_sweep = [&sim, &nf_sweep, layer = nflayer.get(),
                interval = cfg.nf.sweep_interval] {
      layer->sweep(sim.now());
      sim.after(interval, [&nf_sweep] { nf_sweep(); });
    };
    sim.after(cfg.nf.sweep_interval, [&nf_sweep] { nf_sweep(); });
  }

  // --- interference on kernel cores ---------------------------------------------
  sim::Interference interference(sim, cfg.interference, cfg.seed ^ 0xABCD);
  for (int c = cfg.first_kernel_core;
       c < cfg.first_kernel_core + cfg.kernel_cores && c < cfg.server_cores;
       ++c)
    interference.attach(server.core(c));

  // --- clients ---------------------------------------------------------------------
  workload::ClientHost clients(sim, static_cast<int>(plans.size()),
                               cfg.costs);
  workload::WireLink wire(sim, server, cfg.costs.wire_latency);

  net::FaultInjector injector(cfg.faults);
  if (cfg.faults.any()) {
    server.set_fault_injector(&injector);
    wire.set_fault_injector(&injector);
  }

  std::vector<std::unique_ptr<workload::TcpSender>> tcp_senders;
  std::vector<std::unique_ptr<workload::UdpSender>> udp_senders;
  std::unordered_map<net::FlowId, workload::TcpSender*> sender_by_flow;

  for (const auto& p : plans) {
    workload::SenderParams sp;
    sp.flow = p.flow;
    sp.flow_id = p.id;
    sp.overlay = overlay;
    sp.outer_src = kHostA;
    sp.outer_dst = kHostB;
    sp.vni = kVni;
    sp.message_size = cfg.message_size;
    // Fair-share windows: real concurrent TCP flows converge (via congestion
    // control) to sharing the bottleneck, keeping aggregate inflight within
    // buffering. Static division reproduces that steady state.
    sp.window_bytes = cfg.num_flows > 1
                          ? std::max<std::uint64_t>(
                                128ull * net::kTcpMss,
                                cfg.window_bytes /
                                    static_cast<std::uint64_t>(cfg.num_flows))
                          : cfg.window_bytes;
    sp.pace_per_message = cfg.pace_per_message;
    sp.pool = pool.get();
    if (is_tcp) {
      tcp_senders.push_back(std::make_unique<workload::TcpSender>(
          clients, p.client_core, sp, wire));
      sender_by_flow[p.id] = tcp_senders.back().get();
    } else {
      sp.message_id_start = static_cast<std::uint64_t>(p.client_core);
      sp.message_id_stride = static_cast<std::uint64_t>(cfg.udp_clients);
      udp_senders.push_back(std::make_unique<workload::UdpSender>(
          clients, p.client_core, sp, wire));
    }
  }

  // ACK path: receiver-side TCP -> (wire latency) -> client sender.
  if (is_tcp) {
    const sim::Time ack_latency = cfg.costs.wire_latency;
    auto ack_cb = [&sim, &sender_by_flow,
                   ack_latency](net::FlowId flow, std::uint64_t bytes) {
      const auto it = sender_by_flow.find(flow);
      if (it == sender_by_flow.end()) return;
      workload::TcpSender* snd = it->second;
      sim.after(ack_latency, [snd, bytes] { snd->on_ack(bytes); });
    };
    if (spec.tcp_in_reader) {
      for (std::uint16_t port : socket_ports)
        server.socket(port).tcp_receiver().set_ack_callback(ack_cb);
    } else if (auto* rx = overlay::find_softirq_tcp_receiver(server)) {
      rx->set_ack_callback(ack_cb);
    }
  }

  for (auto& s : tcp_senders) s->start();
  for (auto& s : udp_senders) s->start();

  // Mid-run sender rate changes (cfg.rate_changes, absolute times).
  for (const auto& rc : cfg.rate_changes) {
    const auto idx = static_cast<std::size_t>(rc.sender_index);
    if (is_tcp) {
      workload::TcpSender* s = tcp_senders[idx].get();
      sim.after(rc.at, [s, pace = rc.pace_per_message] { s->set_pace(pace); });
    } else {
      workload::UdpSender* s = udp_senders[idx].get();
      sim.after(rc.at, [s, pace = rc.pace_per_message] { s->set_pace(pace); });
    }
  }

  // Mid-run per-core busy snapshot for the before/after utilization split.
  struct BusySnap {
    std::array<sim::Time, sim::kTagCount> by_tag{};
  };
  auto usage_snap = std::make_shared<std::vector<BusySnap>>();
  if (cfg.usage_split_at != 0) {
    sim.after(cfg.usage_split_at, [&server, usage_snap] {
      usage_snap->resize(static_cast<std::size_t>(server.num_cores()));
      for (int c = 0; c < server.num_cores(); ++c)
        for (std::size_t t = 0; t < sim::kTagCount; ++t)
          (*usage_snap)[static_cast<std::size_t>(c)].by_tag[t] =
              server.core(c).busy_ns(static_cast<sim::Tag>(t));
    });
  }

  // --- run ---------------------------------------------------------------------------
  std::uint64_t events = sim.run_until(cfg.warmup);
  server.reset_measurement();
  if (engine) engine->reset_stats();
  // Core-seconds are metered over the measurement window only (warmup ramp
  // is not what the SLO-vs-cost comparison charges for).
  if (autoscaler) autoscaler->reset_accounting(sim.now());
  if (nflayer) nflayer->reset_measurement();
  if (tracer) tracer->clear();  // drop warmup events and counters
  const std::uint64_t drops0 = server.nic().total_drops();
  std::uint64_t offered0 = 0;
  for (const auto& s : tcp_senders) offered0 += s->bytes_sent();
  for (const auto& s : udp_senders) offered0 += s->bytes_sent();
  // Cache hit/miss ratios are reported over the measurement window only
  // (warmup is where the slow path populates the cache).
  const std::uint64_t cache_hits0 = flowcache ? flowcache->hits() : 0;
  const std::uint64_t cache_misses0 = flowcache ? flowcache->misses() : 0;
  const std::uint64_t cache_hit_segs0 = flowcache ? flowcache->hit_segs() : 0;
  const std::uint64_t inj_drops0 = injector.total_drops();
  const std::uint64_t inj_drop_segs0 = injector.dropped_segs();
  const std::uint64_t inj_corrupt0 = injector.total_corruptions();
  const std::uint64_t inj_dup0 = injector.total_duplicates();
  const std::uint64_t inj_delay0 = injector.total_delays();

  events += sim.run_until(cfg.warmup + cfg.measure);

  // --- collect --------------------------------------------------------------------------
  ScenarioResult res;
  res.mode = std::string(mode_name(cfg.mode));
  res.events = events;
  const double secs = sim::to_seconds(cfg.measure);

  std::uint64_t bytes = 0;
  for (std::uint16_t port : socket_ports) {
    const auto& st = server.socket(port).stats();
    bytes += st.payload_bytes;
    res.messages += st.messages;
    res.latency.merge(st.latency);
    PortStats ps;
    ps.port = port;
    ps.messages = st.messages;
    ps.goodput_gbps =
        static_cast<double>(st.payload_bytes) * 8.0 / secs / 1e9;
    ps.latency = st.latency;
    res.per_port.push_back(std::move(ps));
  }
  res.goodput_gbps = static_cast<double>(bytes) * 8.0 / secs / 1e9;

  std::uint64_t offered1 = 0;
  for (const auto& s : tcp_senders) offered1 += s->bytes_sent();
  for (const auto& s : udp_senders) offered1 += s->bytes_sent();
  res.offered_gbps =
      static_cast<double>(offered1 - offered0) * 8.0 / secs / 1e9;

  res.nic_drops = server.nic().total_drops() - drops0;
  res.injected_drops = injector.total_drops() - inj_drops0;
  res.injected_drop_segs = injector.dropped_segs() - inj_drop_segs0;
  res.injected_corruptions = injector.total_corruptions() - inj_corrupt0;
  res.injected_duplicates = injector.total_duplicates() - inj_dup0;
  res.injected_delays = injector.total_delays() - inj_delay0;
  if (engine) {
    res.ooo_arrivals = engine->ooo_arrivals();
    res.batches_merged = engine->batches_merged();
    res.final_batch = engine->config().batch_size;
    res.drops_recovered = engine->drops_recovered();
    res.evictions = engine->evictions();
    res.late_deliveries = engine->late_deliveries();
    res.recovery_latency_ns = engine->recovery_latency_ns();
    res.flows_blocked = engine->any_flow_blocked();
  }
  if (flowcache) {
    res.cache_hits = flowcache->hits() - cache_hits0;
    res.cache_misses = flowcache->misses() - cache_misses0;
    res.cache_hit_segs = flowcache->hit_segs() - cache_hit_segs0;
    res.cache_inserts = flowcache->inserts();
    res.cache_invalidations = flowcache->invalidations();
    res.cache_evictions = flowcache->evictions();
  }
  if (nflayer) {
    const auto& nc = nflayer->counters();
    res.nf_packets = nc.packets;
    res.nf_segs = nc.segs;
    res.nf_nat_rewrites = nc.nat_rewrites;
    res.nf_lock_acquires = nc.lock_acquires;
    res.nf_lock_contended = nc.lock_contended;
    res.nf_scr_updates = nc.scr_updates;
    res.nf_flows_live = nflayer->live_flows();
    res.nf_flows_peak = nflayer->peak_flows();
    res.nf_flows_expired = nc.flows_expired;
    res.nf_state = nflayer->merged_state();
    res.nf_state_digest = nflayer->state_digest();
  }
  if (controller) {
    res.control.rescales = controller->rescales();
    res.control.elephants = controller->elephants();
    res.control.history = controller->history();
    res.control.tracked = controller->tracked_flows();
    res.control.peak = controller->peak_tracked();
    res.control.expired = controller->expired_flows();
  }
  if (autoscaler) {
    autoscaler->finalize(sim.now());
    res.elastic.scale_ups = autoscaler->scale_ups();
    res.elastic.scale_downs = autoscaler->scale_downs();
    res.elastic.vetoes = autoscaler->vetoes();
    res.elastic.history = autoscaler->history();
    res.elastic.core_seconds = autoscaler->core_seconds();
    res.elastic.workers_final = capacity->active_workers();
    res.elastic.core_seconds_static =
        static_cast<double>(capacity->worker_limit()) *
        sim::to_seconds(cfg.measure);
    res.elastic.workers_low = res.elastic.workers_final;
    res.elastic.workers_high = res.elastic.workers_final;
    for (const control::ScaleEvent& ev : res.elastic.history) {
      res.elastic.workers_low =
          std::min({res.elastic.workers_low, ev.from, ev.to});
      res.elastic.workers_high =
          std::max({res.elastic.workers_high, ev.from, ev.to});
    }
  }

  for (int c = 0; c < server.num_cores(); ++c) {
    CoreUsage u;
    u.core_id = c;
    const auto& core = server.core(c);
    for (std::size_t t = 0; t < sim::kTagCount; ++t)
      u.by_tag[t] =
          static_cast<double>(core.busy_ns(static_cast<sim::Tag>(t))) /
          static_cast<double>(cfg.measure);
    u.total = core.utilization(cfg.measure);
    res.cores.push_back(u);
  }

  if (!usage_snap->empty()) {
    // Busy counters were reset at the warmup boundary, so the snapshot is
    // the busy time of [warmup, split) and the final counters cover the
    // whole measurement window.
    const double before_ns =
        static_cast<double>(cfg.usage_split_at - cfg.warmup);
    const double after_ns =
        static_cast<double>(cfg.warmup + cfg.measure - cfg.usage_split_at);
    for (int c = 0; c < server.num_cores(); ++c) {
      const auto& snap = (*usage_snap)[static_cast<std::size_t>(c)];
      const auto& core = server.core(c);
      CoreUsage before, after;
      before.core_id = after.core_id = c;
      for (std::size_t t = 0; t < sim::kTagCount; ++t) {
        const auto at_split = static_cast<double>(snap.by_tag[t]);
        const auto at_end = static_cast<double>(
            core.busy_ns(static_cast<sim::Tag>(t)));
        before.by_tag[t] = at_split / before_ns;
        after.by_tag[t] = (at_end - at_split) / after_ns;
        before.total += before.by_tag[t];
        after.total += after.by_tag[t];
      }
      res.cores_before.push_back(before);
      res.cores_after.push_back(after);
    }
  }

  if (tracer) {
    trace::set_current(nullptr);
    // Canonical registry names: subsystem totals the live tracepoint
    // counters cannot see (or that are authoritative here) land under the
    // same snapshot the benches read, replacing per-struct field access.
    trace::Registry& reg = tracer->registry();
    reg.set_gauge("goodput_gbps", res.goodput_gbps);
    reg.set_gauge("offered_gbps", res.offered_gbps);
    reg.set_gauge("latency.mean_us", res.mean_latency_us());
    reg.set_gauge("latency.p50_us", res.p50_latency_us());
    reg.set_gauge("latency.p99_us", res.p99_latency_us());
    reg.set_counter("messages", res.messages);
    reg.set_counter("nic.drops", res.nic_drops);
    reg.set_counter("fault.injected_drops", res.injected_drops);
    reg.set_counter("fault.injected_drop_segs", res.injected_drop_segs);
    reg.set_counter("fault.injected_corruptions", res.injected_corruptions);
    reg.set_counter("fault.injected_duplicates", res.injected_duplicates);
    reg.set_counter("fault.injected_delays", res.injected_delays);
    if (flowcache) {
      reg.set_counter("flowcache.hits", res.cache_hits);
      reg.set_counter("flowcache.misses", res.cache_misses);
      reg.set_counter("flowcache.hit_segs", res.cache_hit_segs);
      reg.set_counter("flowcache.inserts", res.cache_inserts);
      reg.set_counter("flowcache.invalidations", res.cache_invalidations);
      reg.set_counter("flowcache.evictions", res.cache_evictions);
      reg.set_gauge("flowcache.hit_rate", res.cache_hit_rate());
    }
    if (nflayer) {
      nflayer->export_stats();
      reg.set_gauge("nf.state_digest",
                    static_cast<double>(res.nf_state_digest));
    }
    if (autoscaler) {
      // Final authoritative values (the per-tick gauges stop at the last
      // tick before the cut; these cover the full measurement window).
      reg.set_gauge("elastic.active_workers",
                    static_cast<double>(res.elastic.workers_final));
      reg.set_gauge("elastic.core_seconds", res.elastic.core_seconds);
      reg.set_counter("elastic.scale_ups", res.elastic.scale_ups);
      reg.set_counter("elastic.scale_downs", res.elastic.scale_downs);
      reg.set_counter("elastic.vetoes", res.elastic.vetoes);
    }
    reg.set_counter("reasm.ooo_arrivals", res.ooo_arrivals);
    reg.set_counter("reasm.batches_merged", res.batches_merged);
    reg.set_counter("reasm.drops_recovered", res.drops_recovered);
    reg.set_counter("reasm.evictions", res.evictions);
    reg.set_counter("reasm.late_deliveries", res.late_deliveries);
    reg.set_gauge("fault.recovery_latency_mean_ns",
                  res.recovery_latency_ns.mean());
    if (pool) {
      reg.set_counter("pool.acquired", pool->acquired());
      reg.set_counter("pool.recycled", pool->recycled());
      reg.set_counter("pool.exhausted", pool->exhausted());
    }
    res.phases = trace::attribute(*tracer);
    res.stats = reg.snapshot();
    res.tracer = std::move(tracer);
  }
  return res;
}

void append_churn_totals(const ScenarioConfig::ControlPlane::Churn& churn,
                         sim::Time now,
                         std::vector<control::Controller::FlowTotals>& out) {
  if (!churn.enabled || now <= 0) return;
  const double t = sim::to_seconds(now);
  const double life = sim::to_seconds(churn.flow_lifetime);
  // Flow i arrives at i / flows_per_sec, advances totals at rate_pps for
  // `life` seconds, then freezes and drops out of the report. Only flows
  // inside the live window [t - life, t] appear, so a tick's cost is
  // O(live flows) even after millions of cumulative arrivals.
  const auto hi =
      static_cast<std::uint64_t>(t * churn.flows_per_sec);
  const auto lo = t > life ? static_cast<std::uint64_t>(
                                 (t - life) * churn.flows_per_sec)
                           : 0ull;
  const std::uint64_t stride = churn.reverse ? 2 : 1;
  for (std::uint64_t i = lo; i <= hi; ++i) {
    const double arrival = static_cast<double>(i) / churn.flows_per_sec;
    if (arrival > t) break;
    const double active = std::min(t - arrival, life);
    // +1 so a flow's very first report already shows traffic (a zero-total
    // flow would be recorded but never touched as active).
    const auto segs =
        static_cast<std::uint64_t>(churn.rate_pps * active) + 1;
    control::Controller::FlowTotals ft;
    ft.flow = churn.first_flow_id + i * stride;
    ft.segs = segs;
    ft.bytes = segs * net::kTcpMss;
    out.push_back(ft);
    if (churn.reverse) {
      ft.flow += 1;
      out.push_back(ft);
    }
  }
}

}  // namespace mflow::exp
