// CloudSuite-style Data Caching benchmark model (paper §V-B, Figure 13).
//
// The paper runs Memcached (4 GB, 4 threads, 550-byte objects) behind the
// Docker overlay, simulating a Twitter caching server, and reports average
// and p99 request latency with 1 and 10 clients.
//
// We model the memcached host's receive side: each client is a persistent
// connection issuing fixed-rate GET/SET requests whose object payloads
// (550 B) cross the overlay RX path; request latency is the delivery
// latency of the request message plus a fixed memcached service time. More
// clients -> more concurrent small-packet flows -> the kernel stack is
// stressed, which is where MFLOW's parallelism shows (paper: -48% average
// and -47% p99 at ten clients).
#pragma once

#include "experiment/scenario.hpp"

namespace mflow::exp {

struct DataCachingConfig {
  Mode mode = Mode::kVanilla;
  int clients = 10;
  std::uint32_t object_bytes = 550;      // paper's object size
  /// Offered rate per client. The default keeps 10 clients just below the
  /// vanilla overlay's hottest RSS core near saturation, matching the
  /// paper's regime where every system keeps up but the vanilla stack is
  /// deeply queued.
  double requests_per_client = 120000;
  sim::Time service_time = sim::us(12);  // memcached lookup
  sim::Time warmup = sim::ms(10);
  sim::Time measure = sim::ms(40);
  std::uint64_t seed = 11;
  stack::CostModel costs = stack::default_costs();
  sim::InterferenceParams interference{};
};

struct DataCachingResult {
  std::string mode;
  int clients = 0;
  double achieved_rps = 0.0;
  double avg_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double p50_latency_us = 0.0;
};

DataCachingResult run_datacaching(const DataCachingConfig& cfg);

}  // namespace mflow::exp
