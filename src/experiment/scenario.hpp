// Scenario runner: assembles one complete experiment — receiver machine,
// RX path, steering mode, optional MFLOW, client hosts, interference — runs
// it with a warmup, and collects the metrics the paper's figures report.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/autoscaler.hpp"
#include "control/policy.hpp"
#include "core/config.hpp"
#include "experiment/mode.hpp"
#include "net/fault.hpp"
#include "nf/nf.hpp"
#include "sim/interference.hpp"
#include "stack/costs.hpp"
#include "trace/attribution.hpp"
#include "trace/registry.hpp"
#include "trace/trace.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace mflow::exp {

/// Prefer building a ScenarioConfig through exp::ScenarioBuilder (below):
/// it validates at build() time and names the option clusters, so a typo'd
/// layout fails where it was written instead of inside run_scenario().
/// Direct field-poking remains supported as a deprecated shim for one PR.
struct ScenarioConfig {
  Mode mode = Mode::kVanilla;
  std::uint8_t protocol = net::Ipv4Header::kProtoTcp;
  std::uint32_t message_size = 65536;

  int num_flows = 1;    // concurrent TCP flows (each its own socket+sender)
  int udp_clients = 3;  // paper: three sockperf clients stress one UDP flow
                        // each (i.e. udp_clients flows into one socket)

  // Receiver machine layout.
  int server_cores = 16;
  int app_cores = 1;          // reader threads spread over cores [0, n)
  int first_kernel_core = 1;  // kernel packet-processing cores start here
  int kernel_cores = 15;
  int nic_queues = 1;
  /// Per-queue NIC ring depth (power of two — net::NicParams requirement).
  std::size_t nic_ring_capacity = 4096;

  // Measurement windows.
  sim::Time warmup = sim::ms(10);
  sim::Time measure = sim::ms(40);
  std::uint64_t seed = 42;

  stack::CostModel costs = stack::default_costs();
  sim::InterferenceParams interference{};

  /// Override MFLOW's configuration (default: the per-protocol paper
  /// defaults from core/config.hpp).
  std::optional<core::MflowConfig> mflow;

  /// Ablation switch: when false, MFLOW splits but does NOT install its
  /// reassembler — reordering is left to the kernel's per-packet TCP
  /// out-of-order queue (bench/ablate_reassembly).
  bool mflow_reassembler = true;

  /// Extra data-copy (reader) threads per socket on these cores — the
  /// receiver-side future-work extension (bench/ablate_copy_scaling).
  std::vector<int> extra_reader_cores = {};

  /// Enable the online batch-size controller (core/adaptive.hpp); the
  /// configured batch_size is then only the starting point.
  bool adaptive_batch = false;

  /// TCP sender window (bytes in flight).
  std::uint64_t window_bytes = 3000ull * net::kTcpMss;

  /// 0 = drive to saturation; otherwise one message per sender per this
  /// interval (latency-under-controlled-load runs).
  sim::Time pace_per_message = 0;

  /// Fault injection (drops/corruption/duplication/delay at the NIC ring,
  /// steering handoff, and splitting-queue deposit). Default: no faults.
  net::FaultPlan faults{};

  /// Per-packet tracing (src/trace). Disabled by default; events recorded
  /// during warmup are discarded at the measurement boundary. No effect
  /// when tracing is compiled out (-DMFLOW_TRACE=OFF).
  trace::TraceConfig trace{};

  /// Per-flow encap/decap fast-path cache (stack/flowcache.hpp): the first
  /// packets of a flow resolve vxlan -> bridge -> veth through the slow
  /// path and record the decision; later packets apply one header splice.
  /// Default OFF, so cache-off runs are byte-identical to pre-cache builds.
  struct FastPath {
    bool enabled = false;
    /// Entry capacity; inserting past it evicts (miss-storm ablations use
    /// a deliberately tiny value to force thrash).
    std::size_t capacity = 1024;
  };
  FastPath fastpath;

  /// Slab-pool size for sender-side packet construction (rt::PacketPool;
  /// 0 disables pooling and every packet heap-allocates as before).
  /// Recycling is deterministic (LIFO, single-threaded in the DES), so
  /// pooled and unpooled runs produce bit-identical metrics.
  std::size_t packet_pool_slabs = 16384;

  /// Dynamic flow control plane (src/control): monitor -> classifier ->
  /// scaler driving each flow's split degree at runtime. Requires
  /// Mode::kMflow; when enabled, the static elephant threshold is disabled
  /// and the controller's degree decisions are the only split trigger.
  struct ControlPlane {
    bool enabled = false;
    /// Controller tick period (sample + classify + retarget).
    sim::Time interval = sim::us(100);
    control::ControllerParams params;
    /// Synthetic flow churn merged into the controller's totals source on
    /// top of the engine's real flow_totals(): `flows_per_sec` new flows
    /// arrive continuously, each advances its totals at `rate_pps` for
    /// `flow_lifetime`, then goes idle and stops being reported — exactly
    /// what the controller's TTL sweep must reclaim. Totals are closed-form
    /// in the tick time (no per-flow simulation state), so a churn run is
    /// deterministic and can sweep millions of cumulative flows cheaply.
    /// Requires params.monitor.table.ttl > 0 so expiry actually runs.
    struct Churn {
      bool enabled = false;
      double flows_per_sec = 1000.0;
      /// Active lifetime of each synthetic flow.
      sim::Time flow_lifetime = sim::ms(1);
      /// Per-flow packet rate while active. Keep it under the classifier's
      /// promote threshold unless the run wants churning elephants.
      double rate_pps = 10000.0;
      /// Emit a reverse twin (flow_id + 1) per flow with the same totals —
      /// the ACK-direction state a connection-tracking table also carries.
      bool reverse = false;
      /// First synthetic FlowId; spaced far above real sender flow ids so
      /// the two populations never collide. With `reverse`, each flow i
      /// takes ids first_flow_id + 2i and first_flow_id + 2i + 1.
      net::FlowId first_flow_id = 1ull << 20;
    };
    Churn churn;
  };
  ControlPlane control;

  /// Stateful NF chain (src/nf): dynamic NAT, stateful firewall and/or a
  /// Maglev L4 load balancer inserted right after the inner IP stage, with
  /// per-flow state parallelized by `strategy` (shared-lock / flow-affinity
  /// / state-compute replication). Default OFF — NF-off runs are
  /// byte-identical to pre-NF builds.
  struct Nf {
    bool enabled = false;
    nf::Strategy strategy = nf::Strategy::kScr;
    /// Chain order + NAT/LB knobs (nf::ChainConfig); chain.chain must be
    /// non-empty when enabled.
    nf::ChainConfig chain;
    /// Per-table resident-entry bound (sharer table and every replica).
    std::size_t state_capacity = 1 << 14;
    /// Idle horizon for NF state expiry; 0 = no TTL (capacity still binds).
    sim::Time state_ttl = 0;
    /// Expiry-sweep cadence; must be > 0 when state_ttl > 0.
    sim::Time sweep_interval = sim::ms(1);
    /// Pinned-core pool for kFlowAffinity (each flow hashes to one). Empty
    /// = auto: the first kernel core after the IRQ cores.
    std::vector<int> affinity_cores;
  };
  Nf nf;

  /// Elastic capacity tier (control::Autoscaler, the tier above the
  /// Controller): sizes the ACTIVE worker budget from the FlowMonitor's
  /// aggregate load and drives it through the engine's
  /// core::MflowCapacityAdapter; the Controller then self-clamps split
  /// degrees to the budget on its next tick. Requires control.enabled (the
  /// autoscaler reads the controller's monitor) and Mode::kMflow.
  struct Elastic {
    bool enabled = false;
    /// Autoscaler tick cadence (the decision loop; commits are further
    /// gated by params.cooldown / params.down_dwell).
    sim::Time interval = sim::us(200);
    control::AutoscalerParams params;
    /// Active workers at t=0. 0 = start cold at params.min_workers; set to
    /// the splitting-core count to start hot and let the trough shrink it.
    std::uint32_t initial_workers = 0;
  };
  Elastic elastic;

  /// Mid-run sender rate changes (the many-flow transition scenario: an
  /// elephant throttling down to mouse rates, or a mouse surging). Times
  /// are absolute simulation time (the measurement window starts at
  /// `warmup`). `pace_per_message` has SenderParams semantics: 0 = drive to
  /// saturation.
  struct RateChange {
    int sender_index = 0;
    sim::Time at = 0;
    sim::Time pace_per_message = 0;
  };
  std::vector<RateChange> rate_changes;

  /// Snapshot per-core busy time at this absolute instant; the result then
  /// reports utilization separately before/after the snapshot
  /// (cores_before/cores_after) — how the transition experiments show
  /// kernel cores released after an elephant demotes. 0 = off. Must lie
  /// inside the measurement window.
  sim::Time usage_split_at = 0;

  /// Reject inconsistent layouts with actionable messages (throws
  /// std::invalid_argument). Called by run_scenario() itself; benches that
  /// build configs programmatically call it early to fail before setup.
  void validate() const;
};

struct CoreUsage {
  int core_id = 0;
  double total = 0.0;  // busy fraction of the measurement window
  std::array<double, sim::kTagCount> by_tag{};
};

/// Per-socket receive metrics: the mixed elephant/mouse scenarios read
/// mouse latency and elephant goodput from *their own* ports instead of
/// the merged aggregate.
struct PortStats {
  std::uint16_t port = 0;
  std::uint64_t messages = 0;
  double goodput_gbps = 0.0;
  util::Histogram latency{6};
};

struct ScenarioResult {
  std::string mode;
  double goodput_gbps = 0.0;   // application payload received
  double offered_gbps = 0.0;   // client payload transmitted
  std::uint64_t messages = 0;
  util::Histogram latency{6};  // per-message latency (ns)
  std::vector<PortStats> per_port;
  std::vector<CoreUsage> cores;  // receiver cores, measurement window
  /// Utilization split at cfg.usage_split_at (empty when disabled):
  /// cores_before covers [warmup, split), cores_after [split, end).
  std::vector<CoreUsage> cores_before;
  std::vector<CoreUsage> cores_after;
  std::uint64_t nic_drops = 0;
  std::uint64_t ooo_arrivals = 0;   // MFLOW merge-point reordering events
  std::uint64_t batches_merged = 0;
  std::uint64_t events = 0;         // simulator events (diagnostics)
  std::uint32_t final_batch = 0;    // batch size at run end (adaptive mode)

  // Fault-injection accounting, deltas over the measurement window.
  std::uint64_t injected_drops = 0;       // packets dropped by the injector
  std::uint64_t injected_drop_segs = 0;   // wire segments those carried
  std::uint64_t injected_corruptions = 0;
  std::uint64_t injected_duplicates = 0;
  std::uint64_t injected_delays = 0;
  // Reassembler recovery (MFLOW only): see core/reassembler.hpp.
  std::uint64_t drops_recovered = 0;   // segments written off via retraction
  std::uint64_t evictions = 0;         // timeout-forced merge-head advances
  std::uint64_t late_deliveries = 0;   // out-of-order post-eviction arrivals
  util::RunningStats recovery_latency_ns;
  /// Some flow had buffered-but-unready merge work at the instant the run
  /// ended. Benign for batches still in flight (the common case mid-
  /// traffic); it is a wedge only if it persists once the pipeline drains —
  /// which run_scenario's fixed-duration cut cannot distinguish. Tests that
  /// need the strict property drain a finite workload to quiescence and ask
  /// the engine directly.
  bool flows_blocked = false;

  // Fast-path cache (populated when cfg.fastpath.enabled), deltas over the
  // measurement window except `cache_inserts`/`cache_evictions`, which
  // count from run start (entries committed during warmup are the ones
  // producing measurement-window hits).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_hit_segs = 0;     // wire segments spliced
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_invalidations = 0;
  std::uint64_t cache_evictions = 0;
  double cache_hit_rate() const {
    const auto total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  /// Control plane (populated when cfg.control.enabled), nested under one
  /// domain per the `domain.metric` naming convention: committed degree
  /// changes, flows classified elephant at the end, the full rescale
  /// history for transition plots/tests, and the flow-state lifecycle
  /// (bounded-state invariant: `peak` must scale with LIVE flows, not
  /// cumulative arrivals; `expired` counts TTL reclamations).
  struct ControlStats {
    std::uint64_t rescales = 0;
    std::uint64_t elephants = 0;
    std::vector<control::RescaleEvent> history;
    std::uint64_t tracked = 0;
    std::uint64_t peak = 0;
    std::uint64_t expired = 0;
  };
  ControlStats control;

  /// Elastic tier (populated when cfg.elastic.enabled). Event counters and
  /// history cover the whole run; core_seconds integrates active workers
  /// over the MEASUREMENT window only, and core_seconds_static is what a
  /// static full-capacity run would consume over that window
  /// (worker_limit x measure) — the denominator of the savings ratio
  /// bench/ablate_elastic reports.
  struct ElasticStats {
    std::uint64_t scale_ups = 0;
    std::uint64_t scale_downs = 0;
    std::uint64_t vetoes = 0;
    std::uint32_t workers_final = 0;
    std::uint32_t workers_low = 0;
    std::uint32_t workers_high = 0;
    double core_seconds = 0.0;
    double core_seconds_static = 0.0;
    std::vector<control::ScaleEvent> history;
  };
  ElasticStats elastic;

  // NF layer (populated when cfg.nf.enabled): measurement-window counters,
  // the flow-state lifecycle, and the merged per-flow semantic state
  // (sorted by flow id) plus its order-insensitive digest — the surface
  // the cross-strategy oracle-equality tests compare.
  std::uint64_t nf_packets = 0;        // skbs through any NF stage
  std::uint64_t nf_segs = 0;           // wire segments those carried
  std::uint64_t nf_nat_rewrites = 0;
  std::uint64_t nf_lock_acquires = 0;
  std::uint64_t nf_lock_contended = 0;
  std::uint64_t nf_scr_updates = 0;
  std::uint64_t nf_flows_live = 0;
  std::uint64_t nf_flows_peak = 0;
  std::uint64_t nf_flows_expired = 0;
  std::uint64_t nf_state_digest = 0;
  std::vector<std::pair<net::FlowId, nf::FlowState>> nf_state;

  // Tracing output (populated only when cfg.trace.enabled and tracing is
  // compiled in). `tracer` keeps the raw event buffers alive for exporters;
  // `phases` is the per-phase latency attribution over the measurement
  // window; `stats` is the counter/gauge registry snapshot — the uniform
  // stat surface benches read instead of the per-subsystem fields above.
  std::shared_ptr<trace::Tracer> tracer;
  trace::PhaseBreakdown phases;
  trace::Registry::Snapshot stats;

  double mean_latency_us() const { return latency.mean() / 1000.0; }
  double p50_latency_us() const {
    return static_cast<double>(latency.p50()) / 1000.0;
  }
  double p99_latency_us() const {
    return static_cast<double>(latency.p99()) / 1000.0;
  }
  /// Busy fraction of the busiest receiver core.
  double max_core_utilization() const;
  /// Std deviation of utilization across the given receiver cores
  /// (percent points, as the paper reports for Figure 12).
  double utilization_stddev_pct(int first_core, int count) const;
};

/// Fluent builder for ScenarioConfig — the supported construction path.
///
/// Scalar knobs are chainable setters; the option clusters (faults,
/// tracing, fastpath, control, nf, elastic) each take a configurator
/// lambda over the named sub-struct and flip the cluster's `enabled` on
/// (passing a cluster at all means you want it). build() runs validate(),
/// so an inconsistent layout throws at the call site that wrote it:
///
///   auto cfg = ScenarioBuilder(Mode::kMflow)
///                  .udp(3)
///                  .windows(sim::ms(2), sim::ms(10))
///                  .control([](auto& c) { c.interval = sim::us(50); })
///                  .elastic([](auto& e) { e.params.headroom = 1.5; })
///                  .build();
///
/// tweak() is the escape hatch for fields without a dedicated setter.
class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;
  explicit ScenarioBuilder(Mode mode) { cfg_.mode = mode; }

  ScenarioBuilder& mode(Mode m) { return set([&](auto& c) { c.mode = m; }); }
  /// TCP with this many concurrent flows (each its own socket + sender).
  ScenarioBuilder& tcp(int flows) {
    return set([&](auto& c) {
      c.protocol = net::Ipv4Header::kProtoTcp;
      c.num_flows = flows;
    });
  }
  /// UDP with this many clients stressing one flow (the paper's setup).
  ScenarioBuilder& udp(int clients) {
    return set([&](auto& c) {
      c.protocol = net::Ipv4Header::kProtoUdp;
      c.udp_clients = clients;
    });
  }
  ScenarioBuilder& message_size(std::uint32_t bytes) {
    return set([&](auto& c) { c.message_size = bytes; });
  }
  /// Receiver machine layout in one call (the fields validate() most often
  /// rejects when poked individually).
  ScenarioBuilder& layout(int server_cores, int app_cores,
                          int first_kernel_core, int kernel_cores) {
    return set([&](auto& c) {
      c.server_cores = server_cores;
      c.app_cores = app_cores;
      c.first_kernel_core = first_kernel_core;
      c.kernel_cores = kernel_cores;
    });
  }
  ScenarioBuilder& nic(int queues, std::size_t ring_capacity = 4096) {
    return set([&](auto& c) {
      c.nic_queues = queues;
      c.nic_ring_capacity = ring_capacity;
    });
  }
  ScenarioBuilder& windows(sim::Time warmup, sim::Time measure) {
    return set([&](auto& c) {
      c.warmup = warmup;
      c.measure = measure;
    });
  }
  ScenarioBuilder& seed(std::uint64_t s) {
    return set([&](auto& c) { c.seed = s; });
  }
  ScenarioBuilder& costs(const stack::CostModel& m) {
    return set([&](auto& c) { c.costs = m; });
  }
  ScenarioBuilder& mflow(const core::MflowConfig& m) {
    return set([&](auto& c) { c.mflow = m; });
  }
  /// 0 = saturation; otherwise one message per sender per interval.
  ScenarioBuilder& pace(sim::Time per_message) {
    return set([&](auto& c) { c.pace_per_message = per_message; });
  }
  ScenarioBuilder& window_bytes(std::uint64_t bytes) {
    return set([&](auto& c) { c.window_bytes = bytes; });
  }
  /// Append one mid-run sender pace change (absolute time).
  ScenarioBuilder& rate_change(int sender, sim::Time at, sim::Time pace) {
    return set([&](auto& c) {
      c.rate_changes.push_back({sender, at, pace});
    });
  }
  ScenarioBuilder& usage_split_at(sim::Time at) {
    return set([&](auto& c) { c.usage_split_at = at; });
  }

  // --- option clusters -----------------------------------------------------
  using FaultsFn = std::function<void(net::FaultPlan&)>;
  using TracingFn = std::function<void(trace::TraceConfig&)>;
  using FastPathFn = std::function<void(ScenarioConfig::FastPath&)>;
  using ControlFn = std::function<void(ScenarioConfig::ControlPlane&)>;
  using NfFn = std::function<void(ScenarioConfig::Nf&)>;
  using ElasticFn = std::function<void(ScenarioConfig::Elastic&)>;

  ScenarioBuilder& faults(const FaultsFn& fn) {
    return set([&](auto& c) { fn(c.faults); });
  }
  ScenarioBuilder& tracing(const TracingFn& fn = {}) {
    return set([&](auto& c) {
      c.trace.enabled = true;
      if (fn) fn(c.trace);
    });
  }
  ScenarioBuilder& fastpath(const FastPathFn& fn = {}) {
    return set([&](auto& c) {
      c.fastpath.enabled = true;
      if (fn) fn(c.fastpath);
    });
  }
  ScenarioBuilder& control(const ControlFn& fn = {}) {
    return set([&](auto& c) {
      c.control.enabled = true;
      if (fn) fn(c.control);
    });
  }
  ScenarioBuilder& nf(const NfFn& fn = {}) {
    return set([&](auto& c) {
      c.nf.enabled = true;
      if (fn) fn(c.nf);
    });
  }
  ScenarioBuilder& elastic(const ElasticFn& fn = {}) {
    return set([&](auto& c) {
      c.elastic.enabled = true;
      if (fn) fn(c.elastic);
    });
  }

  /// Escape hatch for fields without a dedicated setter.
  ScenarioBuilder& tweak(const std::function<void(ScenarioConfig&)>& fn) {
    return set(fn);
  }

  /// Validate-at-build: throws std::invalid_argument with the same
  /// actionable messages as ScenarioConfig::validate().
  ScenarioConfig build() const {
    cfg_.validate();
    return cfg_;
  }

 private:
  template <typename Fn>
  ScenarioBuilder& set(const Fn& fn) {
    fn(cfg_);
    return *this;
  }
  ScenarioConfig cfg_;
};

/// Run one scenario to completion and collect metrics.
ScenarioResult run_scenario(const ScenarioConfig& cfg);

/// Append the closed-form churn totals at tick time `now` (see
/// ScenarioConfig::ControlPlane::Churn). Exposed so benches and tests can
/// drive a control::Controller through the same churn source without a
/// full scenario run.
void append_churn_totals(const ScenarioConfig::ControlPlane::Churn& churn,
                         sim::Time now,
                         std::vector<control::Controller::FlowTotals>& out);

}  // namespace mflow::exp
