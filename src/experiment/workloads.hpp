// Long-horizon workload profiles for the elastic scenarios, expressed as
// ScenarioConfig::RateChange schedules (per-sender pace changes at
// absolute times). Pure schedule generators — deterministic, no state —
// so benches and tests drive the same curves.
//
// Pace semantics follow SenderParams: `pace` is the interval between two
// messages of one sender (0 = drive to saturation); rate interpolation is
// done on 1/pace (messages per second), which is the physically meaningful
// axis for a load curve.
#pragma once

#include <vector>

#include "experiment/scenario.hpp"

namespace mflow::exp {

/// One diurnal cycle over [start, start + period): per-sender pace traces
/// a raised-cosine between trough_pace (slow, at `start`) and peak_pace
/// (fast, at start + period/2), discretized into `steps` plateaus. Every
/// sender follows the same curve, so aggregate load sweeps
/// senders/trough_pace .. senders/peak_pace and back.
void append_diurnal(std::vector<ScenarioConfig::RateChange>& out,
                    int senders, sim::Time start, sim::Time period,
                    int steps, sim::Time trough_pace, sim::Time peak_pace);

/// Flash crowd: all senders idle at idle_pace from `start`, surge to
/// crowd_pace at `at`, and fall back at `at + duration`.
void append_flash_crowd(std::vector<ScenarioConfig::RateChange>& out,
                        int senders, sim::Time start, sim::Time at,
                        sim::Time duration, sim::Time idle_pace,
                        sim::Time crowd_pace);

/// Rotating elephants over a mouse crowd: every sender runs at mouse_pace
/// from `start`, except one "elephant" at elephant_pace (0 = saturation)
/// that rotates round-robin every `rotation` until `end` — the previous
/// elephant demotes back to mouse_pace as the next promotes, so exactly
/// one elephant is live at any instant.
void append_rotating_elephants(std::vector<ScenarioConfig::RateChange>& out,
                               int senders, sim::Time start, sim::Time end,
                               sim::Time rotation, sim::Time mouse_pace,
                               sim::Time elephant_pace = 0);

}  // namespace mflow::exp
