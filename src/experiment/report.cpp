#include "experiment/report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

namespace mflow::exp {

bool Expectation::holds() const {
  if (expected == 0.0) return std::abs(measured) <= tolerance;
  return std::abs(measured - expected) <= tolerance * std::abs(expected);
}

void print_expectations(std::ostream& os, const std::string& title,
                        const std::vector<Expectation>& exps) {
  util::Table t({"check", "paper", "measured", "tol", "verdict"});
  for (const auto& e : exps) {
    t.add({e.label, util::Table::Cell(e.expected, 2),
           util::Table::Cell(e.measured, 2),
           util::Table::Cell(e.tolerance * 100.0, 0),
           e.holds() ? "OK" : "DEVIATES"});
  }
  t.print(os, title);
}

void print_core_breakdown(std::ostream& os, const std::string& title,
                          const ScenarioResult& result, int max_cores,
                          double min_total) {
  util::Table t({"core", "total", "dominant work (util%)"});
  int shown = 0;
  for (const auto& c : result.cores) {
    if (c.total < min_total) continue;
    if (shown++ >= max_cores) break;
    // List tags above 1% of the window, largest first.
    std::vector<std::pair<double, std::size_t>> tags;
    for (std::size_t i = 0; i < c.by_tag.size(); ++i)
      if (c.by_tag[i] >= 0.01) tags.emplace_back(c.by_tag[i], i);
    std::sort(tags.rbegin(), tags.rend());
    std::ostringstream detail;
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (i) detail << " ";
      detail << sim::tag_name(static_cast<sim::Tag>(tags[i].second)) << "="
             << static_cast<int>(tags[i].first * 100.0 + 0.5) << "%";
    }
    t.add({c.core_id, util::fmt_pct(c.total), detail.str()});
  }
  t.print(os, title);
}

void print_phase_breakdown(std::ostream& os, const std::string& title,
                           const ScenarioResult& result) {
  const trace::PhaseBreakdown& pb = result.phases;
  if (pb.empty()) return;
  const double e2e_mean = pb.end_to_end.mean();
  util::Table t({"phase", "packets", "mean us", "p50 us", "p99 us", "share"});
  for (const std::string& name : pb.phase_order) {
    const auto it = pb.phases.find(name);
    if (it == pb.phases.end()) continue;
    const util::Histogram& h = it->second;
    const double share = e2e_mean > 0.0 ? h.mean() / e2e_mean : 0.0;
    t.add({name, static_cast<std::int64_t>(h.count()),
           util::Table::Cell(h.mean() / 1000.0, 2),
           util::Table::Cell(static_cast<double>(h.p50()) / 1000.0, 2),
           util::Table::Cell(static_cast<double>(h.p99()) / 1000.0, 2),
           util::fmt_pct(share)});
  }
  t.add({"= end-to-end", static_cast<std::int64_t>(pb.end_to_end.count()),
         util::Table::Cell(e2e_mean / 1000.0, 2),
         util::Table::Cell(static_cast<double>(pb.end_to_end.p50()) / 1000.0,
                           2),
         util::Table::Cell(static_cast<double>(pb.end_to_end.p99()) / 1000.0,
                           2),
         util::fmt_pct(1.0)});
  t.print(os, title);
  if (pb.incomplete > 0)
    os << "  (" << pb.incomplete
       << " journeys incomplete: dropped, GRO-absorbed, or truncated)\n";
}

void print_counters(std::ostream& os, const std::string& title,
                    const ScenarioResult& result, bool include_zero) {
  if (result.stats.empty()) return;
  util::Table t({"stat", "value"});
  for (const auto& [name, value] : result.stats.counters) {
    if (value == 0 && !include_zero) continue;
    t.add({name, static_cast<std::int64_t>(value)});
  }
  for (const auto& [name, value] : result.stats.gauges)
    t.add({name, util::Table::Cell(value, 3)});
  t.print(os, title);
}

std::string throughput_row(const ScenarioResult& r) {
  std::ostringstream os;
  os << r.mode << ": " << util::fmt_gbps(r.goodput_gbps)
     << " (offered " << util::fmt_gbps(r.offered_gbps) << ", "
     << r.messages << " msgs, p50 " << r.p50_latency_us() << "us, p99 "
     << r.p99_latency_us() << "us)";
  return os.str();
}

}  // namespace mflow::exp
