// Experiment mode vocabulary, split out of scenario.hpp so lower layers
// (notably steering's mode->policy factory) can name the comparison cases
// without pulling in — or linking against — the experiment library. This
// header is intentionally definition-only.
#pragma once

#include <string_view>
#include <vector>

namespace mflow::exp {

enum class Mode { kNative, kVanilla, kRps, kFalconDev, kFalconFun, kMflow };

constexpr std::string_view mode_name(Mode mode) {
  switch (mode) {
    case Mode::kNative: return "native";
    case Mode::kVanilla: return "vanilla-overlay";
    case Mode::kRps: return "rps";
    case Mode::kFalconDev: return "falcon-dev";
    case Mode::kFalconFun: return "falcon-fun";
    case Mode::kMflow: return "mflow";
  }
  return "?";
}

/// The five comparison cases of the paper's evaluation (Figure 8) plus the
/// two FALCON variants of the motivation study (Figure 4). Defined in the
/// experiment library (scenario.cpp).
std::vector<Mode> evaluation_modes();
std::vector<Mode> motivation_modes();

}  // namespace mflow::exp
