#include "experiment/webserving.hpp"

#include <memory>
#include <unordered_map>

#include "core/mflow.hpp"
#include "overlay/topology.hpp"
#include "sim/simulator.hpp"
#include "stack/machine.hpp"
#include "steering/modes.hpp"
#include "workload/injector.hpp"

namespace mflow::exp {

std::vector<WebOpType> default_web_ops() {
  using sim::us;
  return {
      {"login", 512, 131072, us(800), sim::ms(4), 0.05},
      {"browse", 512, 98304, us(600), sim::ms(3), 0.30},
      {"update_activity", 512, 24576, us(300), sim::us(1500), 0.20},
      {"post_wall", 512, 16384, us(250), sim::us(1200), 0.15},
      {"send_chat", 512, 8192, us(200), sim::ms(1), 0.20},
      {"add_friend", 512, 4096, us(150), sim::ms(1), 0.10},
  };
}

namespace {

constexpr std::uint16_t kClientPortBase = 6000;
constexpr std::uint16_t kBackendPortBase = 6100;
constexpr std::uint32_t kVni = 42;

const net::Ipv4Addr kWebHost{192, 168, 2, 3};
const net::Ipv4Addr kClientHostIp{192, 168, 2, 2};
const net::Ipv4Addr kBackendHostIp{192, 168, 2, 4};
const net::Ipv4Addr kNginx{10, 0, 2, 3};
const net::Ipv4Addr kClientTier{10, 0, 2, 2};
const net::Ipv4Addr kBackendTier{10, 0, 2, 4};

struct Op {
  int type = 0;
  int user = 0;
  sim::Time start = 0;
  bool counted = false;  // fired inside the measurement window
  bool done = false;
};

}  // namespace

WebservingResult run_webserving(const WebservingConfig& cfg) {
  const bool use_mflow = cfg.mode == Mode::kMflow;
  const bool overlay = cfg.mode != Mode::kNative;
  sim::Simulator sim(cfg.seed);

  // --- web host machine (5 app cores, 10 kernel cores, RSS everywhere) ----
  stack::MachineParams mp;
  mp.num_cores = 15;
  mp.costs = cfg.costs;
  mp.nic.num_queues = 10;
  for (int q = 0; q < 10; ++q) mp.irq_affinity.push_back(5 + q);

  core::MflowConfig mcfg = core::tcp_full_path_config();
  mcfg.pipeline_pairs.clear();
  mcfg.splitting_cores.clear();
  for (int c = 5; c < 15; ++c) mcfg.splitting_cores.push_back(c);
  // Only long-lived bulk (backend) flows qualify as elephants; request
  // flows never cross this within the run and stay on the default path.
  mcfg.elephant_threshold_pkts = 20000;

  overlay::PathSpec spec;
  spec.overlay = overlay;
  spec.protocol = net::Ipv4Header::kProtoTcp;
  spec.vni = kVni;
  spec.tcp_in_reader = use_mflow && mcfg.tcp_in_reader;

  stack::Machine server(sim, mp);
  server.set_path(overlay::build_rx_path(server.costs(), spec));

  std::vector<int> kernel_cores;
  for (int c = 5; c < 15; ++c) kernel_cores.push_back(c);
  steer::PolicyParams steering;
  steering.helper_cores = kernel_cores;
  steering.overlay = overlay;
  steering.rps_hash_cost = cfg.costs.rps_hash_per_pkt;
  // kMflow stays vanilla here: pipeline_pairs were cleared above, so the
  // factory yields the vanilla policy and the splitter does the spreading.
  server.set_steering(steer::make_policy(cfg.mode, steering));

  // --- sockets: request + backend connections ------------------------------------
  std::vector<std::uint16_t> ports;
  auto add_sock = [&](std::uint16_t port, int app_core) {
    stack::SocketConfig sc;
    sc.protocol = net::Ipv4Header::kProtoTcp;
    sc.app_core = app_core;
    sc.per_message_accounting = true;
    sc.tcp_in_reader = spec.tcp_in_reader;
    server.add_socket(port, sc);
    ports.push_back(port);
  };
  for (int i = 0; i < cfg.client_flows; ++i)
    add_sock(static_cast<std::uint16_t>(kClientPortBase + i), i % 5);
  for (int i = 0; i < cfg.backend_flows; ++i)
    add_sock(static_cast<std::uint16_t>(kBackendPortBase + i), i % 5);

  server.start();
  std::unique_ptr<core::MflowEngine> engine;
  if (use_mflow) {
    engine = std::make_unique<core::MflowEngine>(server, mcfg);
    for (auto port : ports) engine->attach_socket(port, server.socket(port));
    engine->install();
  }

  sim::Interference interference(sim, cfg.interference, cfg.seed ^ 0x5EB);
  for (int c : kernel_cores) interference.attach(server.core(c));

  // --- tier hosts & injectors ------------------------------------------------------
  workload::ClientHost client_tier(sim, cfg.client_flows, cfg.costs);
  workload::ClientHost backend_tier(sim, cfg.backend_flows, cfg.costs);
  workload::WireLink client_wire(sim, server, cfg.costs.wire_latency);
  workload::WireLink backend_wire(sim, server, cfg.costs.wire_latency);

  std::vector<std::unique_ptr<workload::StreamInjector>> req_inj, back_inj;
  for (int i = 0; i < cfg.client_flows; ++i) {
    workload::SenderParams sp;
    sp.flow = net::FlowKey{overlay ? kClientTier : kClientHostIp,
                           overlay ? kNginx : kWebHost,
                           static_cast<std::uint16_t>(52000 + i),
                           static_cast<std::uint16_t>(kClientPortBase + i),
                           net::Ipv4Header::kProtoTcp};
    sp.flow_id = static_cast<net::FlowId>(100 + i);
    sp.overlay = overlay;
    sp.outer_src = kClientHostIp;
    sp.outer_dst = kWebHost;
    sp.vni = kVni;
    req_inj.push_back(std::make_unique<workload::StreamInjector>(
        client_tier, i, sp, client_wire));
  }
  for (int i = 0; i < cfg.backend_flows; ++i) {
    workload::SenderParams sp;
    sp.flow = net::FlowKey{overlay ? kBackendTier : kBackendHostIp,
                           overlay ? kNginx : kWebHost,
                           static_cast<std::uint16_t>(53000 + i),
                           static_cast<std::uint16_t>(kBackendPortBase + i),
                           net::Ipv4Header::kProtoTcp};
    sp.flow_id = static_cast<net::FlowId>(200 + i);
    sp.overlay = overlay;
    sp.outer_src = kBackendHostIp;
    sp.outer_dst = kWebHost;
    sp.vni = kVni;
    back_inj.push_back(std::make_unique<workload::StreamInjector>(
        backend_tier, i, sp, backend_wire));
  }

  // --- closed-loop user state machine ---------------------------------------------
  std::vector<Op> op_log;
  op_log.reserve(65536);
  // message id -> op index; ids are 2*op (request) and 2*op+1 (backend).
  std::vector<WebOpStats> stats(cfg.ops.size());
  for (std::size_t i = 0; i < cfg.ops.size(); ++i)
    stats[i].name = cfg.ops[i].name;

  util::Rng rng = sim.rng().fork();
  const sim::Time t_open = cfg.warmup;
  const sim::Time t_close = cfg.warmup + cfg.measure;

  // Forward declarations via std::function for the recursive loop.
  std::function<void(int)> user_think;

  auto pick_op = [&rng, &cfg]() {
    double x = rng.uniform01();
    for (std::size_t i = 0; i < cfg.ops.size(); ++i) {
      if (x < cfg.ops[i].weight) return static_cast<int>(i);
      x -= cfg.ops[i].weight;
    }
    return static_cast<int>(cfg.ops.size()) - 1;
  };

  auto fire_op = [&](int user) {
    const int type = pick_op();
    const auto op_idx = static_cast<std::uint64_t>(op_log.size());
    Op op;
    op.type = type;
    op.user = user;
    op.start = sim.now();
    op.counted = sim.now() >= t_open && sim.now() < t_close;
    op_log.push_back(op);
    if (op.counted) ++stats[static_cast<std::size_t>(type)].attempted;
    req_inj[static_cast<std::size_t>(user % cfg.client_flows)]->send_message(
        2 * op_idx, cfg.ops[static_cast<std::size_t>(type)].request_bytes);
    // Liveness guard: a user whose op is stuck (e.g. packet loss) re-enters
    // the pool after 10x the deadline; the op counts as failed.
    sim.after(cfg.ops[static_cast<std::size_t>(type)].deadline * 10,
              [&, op_idx, user] {
                if (!op_log[op_idx].done) {
                  op_log[op_idx].done = true;
                  user_think(user);
                }
              });
  };

  user_think = [&](int user) {
    const auto think = static_cast<sim::Time>(
        rng.exponential(static_cast<double>(cfg.think_mean)));
    sim.after(std::max<sim::Time>(1, think), [&, user] { fire_op(user); });
  };

  // Request completion -> backend query; backend completion -> op done.
  auto on_message = [&](net::FlowId, std::uint64_t msg_id, sim::Time) {
    const std::uint64_t op_idx = msg_id / 2;
    if (op_idx >= op_log.size()) return;
    Op& op = op_log[op_idx];
    if (op.done) return;
    const WebOpType& type = cfg.ops[static_cast<std::size_t>(op.type)];
    if (msg_id % 2 == 0) {
      // Request arrived at nginx: query the backend tier.
      sim.after(cfg.backend_delay, [&, op_idx] {
        const Op& o = op_log[op_idx];
        if (o.done) return;
        back_inj[static_cast<std::size_t>(o.user % cfg.backend_flows)]
            ->send_message(2 * op_idx + 1,
                           cfg.ops[static_cast<std::size_t>(o.type)]
                               .backend_bytes);
      });
      return;
    }
    // Backend data arrived: render + respond.
    op.done = true;
    const sim::Time response = sim.now() - op.start + cfg.service_time;
    if (op.counted) {
      auto& s = stats[static_cast<std::size_t>(op.type)];
      ++s.completed;
      if (response <= type.deadline) ++s.succeeded;
      s.response_us.add(sim::to_us(response));
      s.delay_us.add(sim::to_us(std::max<sim::Time>(0, response - type.target)));
    }
    user_think(op.user);
  };
  for (auto port : ports)
    server.socket(port).set_message_listener(on_message);

  // Stagger user arrivals across one think interval.
  for (int u = 0; u < cfg.users; ++u) {
    sim.after(1 + rng.uniform(static_cast<std::uint64_t>(
                      std::max<sim::Time>(1, cfg.think_mean))),
              [&, u] { fire_op(u); });
  }

  sim.run_until(t_open);
  server.reset_measurement();
  std::uint64_t backend0 = 0;
  for (const auto& b : back_inj) backend0 += b->bytes_sent();
  sim.run_until(t_close);

  // --- collect ---------------------------------------------------------------------
  WebservingResult res;
  res.mode = std::string(mode_name(cfg.mode));
  const double secs = sim::to_seconds(cfg.measure);
  util::RunningStats all_resp, all_delay;
  std::uint64_t completed = 0, succeeded = 0;
  for (auto& s : stats) {
    s.success_per_sec = static_cast<double>(s.succeeded) / secs;
    completed += s.completed;
    succeeded += s.succeeded;
    all_resp.merge(s.response_us);
    all_delay.merge(s.delay_us);
    res.per_op.push_back(s);
  }
  res.ops_per_sec = static_cast<double>(completed) / secs;
  res.success_per_sec = static_cast<double>(succeeded) / secs;
  std::uint64_t attempted = 0;
  for (const auto& s : stats) attempted += s.attempted;
  res.success_fraction =
      attempted ? static_cast<double>(succeeded) /
                      static_cast<double>(attempted)
                : 0.0;
  res.avg_response_us = all_resp.mean();
  res.avg_delay_us = all_delay.mean();
  std::uint64_t backend1 = 0;
  for (const auto& b : back_inj) backend1 += b->bytes_sent();
  res.backend_goodput_gbps =
      static_cast<double>(backend1 - backend0) * 8.0 / secs / 1e9;
  return res;
}

}  // namespace mflow::exp
