#include "experiment/workloads.hpp"

#include <cmath>

namespace mflow::exp {

namespace {

constexpr double kPi = 3.14159265358979323846;

double rate_of(sim::Time pace) {
  return pace > 0 ? 1e9 / static_cast<double>(pace) : 0.0;
}

sim::Time pace_of(double rate) {
  return rate > 0.0 ? static_cast<sim::Time>(1e9 / rate) : 0;
}

}  // namespace

void append_diurnal(std::vector<ScenarioConfig::RateChange>& out,
                    int senders, sim::Time start, sim::Time period,
                    int steps, sim::Time trough_pace, sim::Time peak_pace) {
  const double r_lo = rate_of(trough_pace);
  const double r_hi = rate_of(peak_pace);
  for (int s = 0; s < steps; ++s) {
    const sim::Time at =
        start + period * static_cast<sim::Time>(s) /
                    static_cast<sim::Time>(steps);
    // Raised cosine: 0 at the cycle edges (trough), 1 mid-cycle (peak).
    const double frac =
        (1.0 - std::cos(2.0 * kPi * static_cast<double>(s) /
                        static_cast<double>(steps))) /
        2.0;
    const sim::Time pace = pace_of(r_lo + (r_hi - r_lo) * frac);
    for (int snd = 0; snd < senders; ++snd)
      out.push_back({snd, at, pace});
  }
}

void append_flash_crowd(std::vector<ScenarioConfig::RateChange>& out,
                        int senders, sim::Time start, sim::Time at,
                        sim::Time duration, sim::Time idle_pace,
                        sim::Time crowd_pace) {
  for (int snd = 0; snd < senders; ++snd) {
    out.push_back({snd, start, idle_pace});
    out.push_back({snd, at, crowd_pace});
    out.push_back({snd, at + duration, idle_pace});
  }
}

void append_rotating_elephants(std::vector<ScenarioConfig::RateChange>& out,
                               int senders, sim::Time start, sim::Time end,
                               sim::Time rotation, sim::Time mouse_pace,
                               sim::Time elephant_pace) {
  for (int snd = 0; snd < senders; ++snd)
    out.push_back({snd, start, mouse_pace});
  if (senders <= 0 || rotation <= 0) return;
  int turn = 0;
  for (sim::Time at = start; at < end; at += rotation, ++turn) {
    const int elephant = turn % senders;
    if (turn > 0) {
      const int previous = (turn - 1) % senders;
      if (previous != elephant) out.push_back({previous, at, mouse_pace});
    }
    out.push_back({elephant, at, elephant_pace});
  }
}

}  // namespace mflow::exp
