// CloudSuite-style Web Serving benchmark model (paper §V-B, Figure 11).
//
// The paper runs CloudSuite's Elgg stack (nginx + mysql + memcached + 200
// user clients) in containers over the Docker overlay and reports, per
// operation type: successful operations/sec, average response time, and
// average delay (response minus target).
//
// We model the *web host's receive side* — the network path the paper's
// optimizations act on. Each user operation triggers (a) a small request
// message arriving from the client tier and (b) a bulk response arriving
// from the database/cache tier, both crossing the overlay RX path. The
// operation completes when both are delivered and the (fixed) application
// service time elapses. Backend flows are long-lived elephants that MFLOW
// splits; request flows stay below the elephant threshold and pass through
// untouched. Operation mix and sizes are synthetic stand-ins for Elgg's
// pages (documented in DESIGN.md); metrics and comparisons mirror Fig. 11.
#pragma once

#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "util/stats.hpp"

namespace mflow::exp {

struct WebOpType {
  std::string name;
  std::uint32_t request_bytes;
  std::uint32_t backend_bytes;
  sim::Time target;    // unloaded response time (Fig 11c "delay" baseline)
  sim::Time deadline;  // an op completing later counts as unsuccessful
  double weight;       // share of the operation mix
};

/// The default operation mix (Elgg-like page weights/sizes).
std::vector<WebOpType> default_web_ops();

struct WebservingConfig {
  Mode mode = Mode::kVanilla;
  int users = 200;
  sim::Time think_mean = sim::us(350);
  int client_flows = 4;   // persistent client->nginx connections (aggregated)
  int backend_flows = 4;  // persistent db/cache->nginx connections
  sim::Time backend_delay = sim::us(50);   // tier hop + backend lookup
  sim::Time service_time = sim::us(120);   // nginx/php render time
  sim::Time warmup = sim::ms(15);
  sim::Time measure = sim::ms(50);
  std::uint64_t seed = 7;
  stack::CostModel costs = stack::default_costs();
  sim::InterferenceParams interference{};
  std::vector<WebOpType> ops = default_web_ops();
};

struct WebOpStats {
  std::string name;
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::uint64_t succeeded = 0;  // completed within deadline
  util::RunningStats response_us;
  util::RunningStats delay_us;  // max(0, response - target)
  double success_per_sec = 0.0;
};

struct WebservingResult {
  std::string mode;
  std::vector<WebOpStats> per_op;
  double ops_per_sec = 0.0;          // all completions
  double success_per_sec = 0.0;      // completions within deadline
  double success_fraction = 0.0;
  double avg_response_us = 0.0;
  double avg_delay_us = 0.0;
  double backend_goodput_gbps = 0.0;
};

WebservingResult run_webserving(const WebservingConfig& cfg);

}  // namespace mflow::exp
