// On-demand stream injector: sends one application message (of any size)
// over a persistent TCP connection when asked. Used by the request/response
// application workloads (web serving tiers, memcached clients), where
// message timing is driven by a closed-loop state machine rather than a
// saturating generator.
//
// Window enforcement is intentionally absent: these flows run far below the
// bandwidth-delay product, so flow control never binds; modeling it would
// only add ACK events.
#pragma once

#include <cstdint>
#include <deque>

#include "workload/sender.hpp"

namespace mflow::workload {

class StreamInjector : public sim::Pollable {
 public:
  StreamInjector(ClientHost& host, int core_id, SenderParams params,
                 WireLink& wire)
      : host_(host), core_id_(core_id), params_(params), wire_(wire) {}

  /// Queue one `bytes`-long message tagged `msg_id` (must be unique per
  /// flow); segments are emitted in order as the client core gets to them.
  void send_message(std::uint64_t msg_id, std::uint32_t bytes);

  bool poll(sim::Core& core, int budget) override;
  std::string_view poll_name() const override { return "stream-injector"; }

  const SenderParams& params() const { return params_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Pending {
    std::uint64_t id;
    std::uint32_t bytes;
    std::uint32_t sent = 0;
  };

  ClientHost& host_;
  int core_id_;
  SenderParams params_;
  WireLink& wire_;
  std::deque<Pending> queue_;
  std::uint64_t next_off_ = 0;  // TCP stream offset
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace mflow::workload
