// Detailed sender host (extension; paper §VII "one [bottleneck] lies in
// clients/senders").
//
// Models the client machine's overlay egress as a real stage pipeline
// (veth -> bridge -> VXLAN encap -> IP -> driver TX) on the client's cores,
// instead of the lump per-packet cost the micro-benchmarks use. Two modes:
//
//  - single-core: the whole egress path runs on the sending application's
//    core — the configuration whose saturation throttles the paper's UDP
//    clients;
//  - MFLOW-TX: the flow-splitting function is installed before the
//    encapsulation stage, spreading micro-flow batches over splitting
//    cores; a wire-drain thread merges them back into flow order before
//    transmission (batch-based reassembling, unchanged).
#pragma once

#include <memory>

#include "core/mflow.hpp"
#include "stack/machine.hpp"
#include "stack/tx_stages.hpp"
#include "workload/sender.hpp"

namespace mflow::workload {

class TxHost {
 public:
  struct Config {
    int cores = 4;  // core 0 runs the application (sendmsg)
    bool mflow_tx = false;
    std::vector<int> splitting_cores = {1, 2};
    std::uint32_t batch_size = 256;
    int wire_core = 3;  // ordered wire drain (MFLOW-TX mode)

    net::FlowKey flow;  // inner (container) flow
    net::FlowId flow_id = 1;
    net::Ipv4Addr outer_src;
    net::Ipv4Addr outer_dst;
    std::uint32_t vni = 42;
    std::uint32_t message_size = 65536;
    std::uint32_t mss = net::kTcpMss;
    sim::Time pace_per_message = 0;  // 0 = saturate the app core
    stack::CostModel costs{};
  };

  TxHost(sim::Simulator& sim, Config config, WireLink& wire);
  ~TxHost();

  void start();

  stack::Machine& machine() { return machine_; }
  std::uint64_t messages_generated() const;
  std::uint64_t packets_on_wire() const { return on_wire_; }
  double offered_gbps(sim::Time window) const;

 private:
  class App;
  class WireDrain;

  void wire_out(net::PacketPtr pkt, int from_core);

  sim::Simulator& sim_;
  Config config_;
  WireLink& wire_;
  stack::Machine machine_;
  std::unique_ptr<core::MflowConfig> mflow_cfg_;  // referenced by splitter_
  std::unique_ptr<core::Reassembler> merger_;
  std::unique_ptr<core::FlowSplitter> splitter_;
  std::unique_ptr<App> app_;
  std::unique_ptr<WireDrain> drain_;
  std::uint64_t on_wire_ = 0;
  std::uint64_t payload_bytes_out_ = 0;
};

}  // namespace mflow::workload
