#include "workload/sender.hpp"

#include <algorithm>

namespace mflow::workload {

void WireLink::transmit(net::PacketPtr pkt) {
  in_flight_.push_back(std::move(pkt));
  ++packets_;
  sim_.after(latency_, [this] {
    net::PacketPtr p = std::move(in_flight_.front());
    in_flight_.pop_front();
    deliver(std::move(p));
  });
}

void WireLink::deliver(net::PacketPtr pkt) {
  if (faults_ != nullptr) {
    switch (faults_->decide(net::FaultPoint::kNicRing)) {
      case net::FaultAction::kDrop:
        faults_->note_dropped_segs(pkt->gro_segs);
        return;  // ring overrun: the frame never existed as far as
                 // software is concerned
      case net::FaultAction::kCorrupt:
        faults_->corrupt(*pkt);
        break;
      case net::FaultAction::kDuplicate:
        dst_.nic().deliver(net::clone_packet(*pkt), sim_.now());
        break;
      case net::FaultAction::kDelay: {
        // Shared holder keeps the packet owned even if the simulation ends
        // before the delayed event fires (EventFn must be copyable).
        auto held = std::make_shared<net::PacketPtr>(std::move(pkt));
        sim_.after(faults_->delay_ns(net::FaultPoint::kNicRing),
                   [this, held] {
                     dst_.nic().deliver(std::move(*held), sim_.now());
                   });
        return;
      }
      case net::FaultAction::kNone:
        break;
    }
  }
  dst_.nic().deliver(std::move(pkt), sim_.now());
}

ClientHost::ClientHost(sim::Simulator& sim, int num_cores,
                       const stack::CostModel& costs)
    : sim_(sim), costs_(costs) {
  for (int i = 0; i < num_cores; ++i)
    cores_.push_back(std::make_unique<sim::Core>(sim_, i));
}

// --- TCP ----------------------------------------------------------------------

TcpSender::TcpSender(ClientHost& host, int core_id, SenderParams params,
                     WireLink& wire)
    : host_(host), core_id_(core_id), params_(params), wire_(wire) {}

void TcpSender::start() { host_.core(core_id_).raise(*this); }

void TcpSender::on_ack(std::uint64_t cumulative_bytes) {
  acked_ = std::max(acked_, cumulative_bytes);
  // ACK processing cost on the client core, then window re-arm.
  host_.core(core_id_).inject(sim::Tag::kSender,
                              host_.costs().client_ack_process);
  host_.core(core_id_).raise(*this, /*remote=*/false);
}

void TcpSender::set_pace(sim::Time pace_per_message) {
  params_.pace_per_message = pace_per_message;
  if (pace_per_message == 0 && paced_waiting_) {
    // A pacing timer is pending; it would clear the flag and raise us
    // anyway, but resuming now keeps the transition sharp. The stale
    // timer's duplicate raise is harmless.
    paced_waiting_ = false;
    host_.core(core_id_).raise(*this);
  }
}

void TcpSender::arm_rto() {
  if (rto_armed_ || params_.rto <= 0) return;
  rto_armed_ = true;
  const std::uint64_t snapshot = acked_;
  host_.simulator().after(params_.rto, [this, snapshot] {
    rto_armed_ = false;
    if (acked_ == snapshot && next_off_ > acked_) {
      // No progress for a full RTO with data outstanding: a segment was
      // lost (NIC ring overrun). Go-back-N from the last cumulative ACK;
      // the receiver discards duplicates.
      ++retransmits_;
      next_off_ = acked_;
      host_.core(core_id_).raise(*this);
    } else if (next_off_ > acked_) {
      arm_rto();
    }
  });
}

bool TcpSender::poll(sim::Core& core, int budget) {
  const stack::CostModel& costs = host_.costs();
  for (int n = 0; n < budget; ++n) {
    if (next_off_ - acked_ >= params_.window_bytes) {
      arm_rto();
      return false;
    }
    if (paced_waiting_) return false;

    const std::uint64_t msg_off = next_off_ % params_.message_size;
    if (msg_off == 0) core.charge(sim::Tag::kSender, costs.client_per_msg);
    const std::uint32_t len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        params_.mss, params_.message_size - msg_off));
    core.charge(sim::Tag::kSender, params_.overlay
                                       ? costs.client_tcp_per_seg_overlay
                                       : costs.client_tcp_per_seg_native);

    // Build into a recycled slab when a pool is attached (acquire() may
    // return null on exhaustion — make_tcp_segment then heap-allocates).
    auto pkt = net::make_tcp_segment(
        params_.pool ? params_.pool->acquire() : net::PacketPtr{},
        params_.flow, next_off_, len);
    pkt->flow_id = params_.flow_id;
    pkt->message_id = next_off_ / params_.message_size;
    pkt->message_bytes = params_.message_size;
    if (params_.overlay)
      net::vxlan_encap(*pkt, params_.outer_src, params_.outer_dst,
                       params_.vni);
    wire_.transmit(std::move(pkt));
    next_off_ += len;
    ++segments_;

    if (params_.pace_per_message != 0 &&
        next_off_ % params_.message_size == 0) {
      paced_waiting_ = true;
      host_.simulator().after(params_.pace_per_message, [this] {
        paced_waiting_ = false;
        host_.core(core_id_).raise(*this);
      });
      return false;
    }
  }
  return next_off_ - acked_ < params_.window_bytes && !paced_waiting_;
}

// --- UDP ----------------------------------------------------------------------

UdpSender::UdpSender(ClientHost& host, int core_id, SenderParams params,
                     WireLink& wire)
    : host_(host),
      core_id_(core_id),
      params_(params),
      wire_(wire),
      next_message_id_(params.message_id_start) {}

void UdpSender::start() { host_.core(core_id_).raise(*this); }

void UdpSender::set_pace(sim::Time pace_per_message) {
  params_.pace_per_message = pace_per_message;
  // Going unpaced: resume immediately (a pending pacing timer's extra
  // raise is idempotent). Slowing down applies from the next message.
  if (pace_per_message == 0) host_.core(core_id_).raise(*this);
}

void UdpSender::send_fragment(sim::Core& core) {
  const stack::CostModel& costs = host_.costs();
  if (frag_off_ == 0) core.charge(sim::Tag::kSender, costs.client_per_msg);

  const std::uint32_t len =
      std::min<std::uint32_t>(params_.mss, params_.message_size - frag_off_);
  core.charge(sim::Tag::kSender,
              costs.client_udp_per_pkt +
                  (params_.overlay ? costs.client_overlay_tx_per_pkt : 0));

  auto pkt = net::make_udp_datagram(
      params_.pool ? params_.pool->acquire() : net::PacketPtr{},
      params_.flow, len);
  pkt->flow_id = params_.flow_id;
  pkt->message_id = next_message_id_;
  pkt->message_bytes = params_.message_size;
  if (params_.overlay)
    net::vxlan_encap(*pkt, params_.outer_src, params_.outer_dst, params_.vni);
  wire_.transmit(std::move(pkt));
  ++packets_;
  bytes_ += len;

  frag_off_ += len;
  if (frag_off_ >= params_.message_size) {
    frag_off_ = 0;
    next_message_id_ += params_.message_id_stride;
  }
}

bool UdpSender::poll(sim::Core& core, int budget) {
  for (int n = 0; n < budget; ++n) {
    send_fragment(core);
    if (params_.pace_per_message != 0 && frag_off_ == 0) {
      // Message finished: wait out the pacing interval.
      host_.simulator().after(params_.pace_per_message, [this] {
        host_.core(core_id_).raise(*this);
      });
      return false;
    }
  }
  return true;  // unpaced: the client core stays saturated
}

}  // namespace mflow::workload
