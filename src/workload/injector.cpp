#include "workload/injector.hpp"

#include <algorithm>

namespace mflow::workload {

void StreamInjector::send_message(std::uint64_t msg_id, std::uint32_t bytes) {
  queue_.push_back(Pending{msg_id, bytes, 0});
  host_.core(core_id_).raise(*this);
}

bool StreamInjector::poll(sim::Core& core, int budget) {
  const stack::CostModel& costs = host_.costs();
  for (int n = 0; n < budget && !queue_.empty(); ++n) {
    Pending& msg = queue_.front();
    if (msg.sent == 0)
      core.charge(sim::Tag::kSender, costs.client_per_msg);

    const std::uint32_t len =
        std::min<std::uint32_t>(params_.mss, msg.bytes - msg.sent);
    core.charge(sim::Tag::kSender, params_.overlay
                                       ? costs.client_tcp_per_seg_overlay
                                       : costs.client_tcp_per_seg_native);

    auto pkt = net::make_tcp_segment(params_.flow, next_off_, len);
    pkt->flow_id = params_.flow_id;
    pkt->message_id = msg.id;
    pkt->message_bytes = msg.bytes;
    if (params_.overlay)
      net::vxlan_encap(*pkt, params_.outer_src, params_.outer_dst,
                       params_.vni);
    wire_.transmit(std::move(pkt));
    next_off_ += len;
    bytes_sent_ += len;
    msg.sent += len;
    if (msg.sent >= msg.bytes) queue_.pop_front();
  }
  return !queue_.empty();
}

}  // namespace mflow::workload
