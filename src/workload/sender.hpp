// Client-side traffic generation (the sockperf/iperf3 side of the testbed).
//
// Clients are modeled with their own cores because several of the paper's
// results are *client*-limited: TCP with 16 B messages, and UDP through the
// overlay, where the sender pays the full veth->bridge->VXLAN-encap TX path
// (which is why the paper needs three sockperf clients, and why MFLOW's UDP
// receive capacity is not saturated).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "rt/pool.hpp"
#include "sim/core.hpp"
#include "sim/simulator.hpp"
#include "stack/machine.hpp"

namespace mflow::workload {

/// Fixed-latency FIFO wire between a client and the server NIC. FIFO order
/// plus constant latency preserves transmit order on arrival (single cable,
/// no reordering — as in the paper's back-to-back 100GbE link).
class WireLink {
 public:
  WireLink(sim::Simulator& sim, stack::Machine& dst, sim::Time latency)
      : sim_(sim), dst_(dst), latency_(latency) {}

  void transmit(net::PacketPtr pkt);

  /// Perturb packets at the wire->NIC-ring boundary (kNicRing faults:
  /// overruns, bit errors, PFC pauses). Non-owning.
  void set_fault_injector(net::FaultInjector* inj) { faults_ = inj; }

  std::uint64_t packets() const { return packets_; }

 private:
  void deliver(net::PacketPtr pkt);

  sim::Simulator& sim_;
  stack::Machine& dst_;
  sim::Time latency_;
  net::FaultInjector* faults_ = nullptr;
  std::deque<net::PacketPtr> in_flight_;
  std::uint64_t packets_ = 0;
};

/// A client machine: cores running sender applications.
class ClientHost {
 public:
  ClientHost(sim::Simulator& sim, int num_cores,
             const stack::CostModel& costs);

  sim::Core& core(int id) { return *cores_.at(static_cast<std::size_t>(id)); }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  const stack::CostModel& costs() const { return costs_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  sim::Simulator& sim_;
  stack::CostModel costs_;
  std::vector<std::unique_ptr<sim::Core>> cores_;
};

struct SenderParams {
  net::FlowKey flow;       // inner 5-tuple (container addresses if overlay)
  net::FlowId flow_id = 1;
  bool overlay = true;
  net::Ipv4Addr outer_src;  // underlay host addresses (overlay only)
  net::Ipv4Addr outer_dst;
  std::uint32_t vni = 42;
  std::uint32_t message_size = 65536;
  std::uint32_t mss = net::kTcpMss;
  std::uint64_t window_bytes = 3000ull * net::kTcpMss;  // TCP only
  /// Retransmission timeout for the go-back-N recovery that papers over
  /// ring-overrun losses (real TCP would do SACK; goodput effect is the
  /// same at these loss rates).
  sim::Time rto = sim::ms(1);
  /// 0 = send as fast as the client core allows; otherwise one message per
  /// `pace_per_message` ns (used for latency runs below saturation).
  sim::Time pace_per_message = 0;
  /// Message-id sequence (UDP): several clients hammering the same flow
  /// (the paper's 3-client UDP setup) must not collide on message ids.
  std::uint64_t message_id_start = 0;
  std::uint64_t message_id_stride = 1;
  /// Optional slab pool (non-owning): segments/datagrams are built into
  /// recycled slabs instead of fresh heap packets, so steady-state traffic
  /// generation stops touching the allocator. Exhaustion falls back to the
  /// heap — the pool is an optimization, never a correctness constraint.
  rt::PacketPool* pool = nullptr;
};

/// Windowed TCP sender: keeps `window_bytes` in flight, continues on ACKs.
/// With the paper's ~30 Gbps and MTU segments this is ~2000 outstanding
/// packets — the raw material of packet-level parallelism (§III-A).
class TcpSender : public sim::Pollable {
 public:
  TcpSender(ClientHost& host, int core_id, SenderParams params,
            WireLink& wire);

  void start();
  /// Cumulative ACK (stream bytes) — call on the client side, after wire
  /// latency; re-arms sending.
  void on_ack(std::uint64_t cumulative_bytes);

  /// Retarget the pacing interval at runtime (0 = drive to saturation).
  /// Slowing down takes effect at the next message boundary; speeding up to
  /// unpaced resumes immediately. The elephant<->mouse transitions of the
  /// control-plane scenarios are driven through this.
  void set_pace(sim::Time pace_per_message);

  bool poll(sim::Core& core, int budget) override;
  std::string_view poll_name() const override { return "tcp-sender"; }

  std::uint64_t bytes_sent() const { return next_off_; }
  std::uint64_t segments_sent() const { return segments_; }
  std::uint64_t inflight_bytes() const { return next_off_ - acked_; }
  std::uint64_t retransmits() const { return retransmits_; }
  const SenderParams& params() const { return params_; }

 private:
  void arm_rto();

  ClientHost& host_;
  int core_id_;
  SenderParams params_;
  WireLink& wire_;
  std::uint64_t next_off_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t segments_ = 0;
  std::uint64_t retransmits_ = 0;
  bool paced_waiting_ = false;
  bool rto_armed_ = false;
};

/// UDP sender: unpaced it saturates its client core (the paper's overload
/// setup); paced it injects messages at a fixed rate.
class UdpSender : public sim::Pollable {
 public:
  UdpSender(ClientHost& host, int core_id, SenderParams params,
            WireLink& wire);

  void start();

  /// Runtime pacing change; same semantics as TcpSender::set_pace().
  void set_pace(sim::Time pace_per_message);

  bool poll(sim::Core& core, int budget) override;
  std::string_view poll_name() const override { return "udp-sender"; }

  std::uint64_t bytes_sent() const { return bytes_; }
  std::uint64_t packets_sent() const { return packets_; }

 private:
  void send_fragment(sim::Core& core);

  ClientHost& host_;
  int core_id_;
  SenderParams params_;
  WireLink& wire_;
  std::uint64_t next_message_id_ = 0;
  std::uint32_t frag_off_ = 0;  // bytes of the current message already sent
  std::uint64_t bytes_ = 0;
  std::uint64_t packets_ = 0;
};

}  // namespace mflow::workload
