#include "workload/txhost.hpp"

#include "steering/modes.hpp"

namespace mflow::workload {

/// The sending application: generates message fragments into the egress
/// path on the app core (sendmsg syscall + per-fragment socket work).
class TxHost::App final : public sim::Pollable {
 public:
  explicit App(TxHost& host) : host_(host) {}

  bool poll(sim::Core& core, int budget) override {
    TxHost& h = host_;
    const stack::CostModel& costs = h.config_.costs;
    for (int n = 0; n < budget; ++n) {
      if (frag_off_ == 0)
        core.charge(sim::Tag::kApp, costs.client_per_msg);
      const std::uint32_t len = std::min<std::uint32_t>(
          h.config_.mss, h.config_.message_size - frag_off_);
      core.charge(sim::Tag::kSender, costs.client_udp_per_pkt);

      auto pkt = net::make_udp_datagram(h.config_.flow, len);
      pkt->flow_id = h.config_.flow_id;
      pkt->message_id = messages_;
      pkt->message_bytes = h.config_.message_size;
      // wire_seq doubles as the sender-side order stamp so the TX merge has
      // ground truth; the receiver NIC re-stamps it on arrival.
      pkt->wire_seq = order_++;
      h.machine_.inject_into_path(0, core.id(), std::move(pkt));

      frag_off_ += len;
      if (frag_off_ >= h.config_.message_size) {
        frag_off_ = 0;
        ++messages_;
        if (h.config_.pace_per_message != 0) {
          h.sim_.after(h.config_.pace_per_message, [this] {
            host_.machine_.core(0).raise(*this);
          });
          return false;
        }
      }
    }
    return true;
  }

  std::string_view poll_name() const override { return "tx-app"; }
  std::uint64_t messages() const { return messages_; }

 private:
  TxHost& host_;
  std::uint32_t frag_off_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t order_ = 0;
};

/// MFLOW-TX wire drain: merges micro-flows back into flow order and puts
/// them on the wire (runs on its own core, like the NIC TX queue's lock).
class TxHost::WireDrain final : public sim::Pollable {
 public:
  explicit WireDrain(TxHost& host) : host_(host) {}

  bool poll(sim::Core& core, int budget) override {
    TxHost& h = host_;
    for (int n = 0; n < budget; ++n) {
      net::PacketPtr pkt = h.merger_->pop_ready();
      const sim::Time merge_ns = h.merger_->take_pending_charge();
      if (merge_ns > 0) core.charge(sim::Tag::kMerge, merge_ns);
      if (!pkt) return false;
      ++h.on_wire_;
      h.payload_bytes_out_ += pkt->payload_len;
      h.wire_.transmit(std::move(pkt));
    }
    return h.merger_->pop_ready_available();
  }

  std::string_view poll_name() const override { return "tx-wire-drain"; }

 private:
  TxHost& host_;
};

namespace {
stack::MachineParams tx_machine_params(const TxHost::Config& cfg) {
  stack::MachineParams mp;
  mp.num_cores = cfg.cores;
  mp.costs = cfg.costs;
  mp.nic.num_queues = 1;  // unused: this machine only transmits
  return mp;
}
}  // namespace

TxHost::TxHost(sim::Simulator& sim, Config config, WireLink& wire)
    : sim_(sim),
      config_(std::move(config)),
      wire_(wire),
      machine_(sim, tx_machine_params(config_)) {
  machine_.set_path(stack::build_tx_path(machine_.costs(),
                                         config_.outer_src,
                                         config_.outer_dst, config_.vni));
  machine_.set_steering(steer::make_policy(exp::Mode::kVanilla));
  machine_.set_terminal(
      [this](net::PacketPtr pkt, int from_core) {
        wire_out(std::move(pkt), from_core);
      });

  app_ = std::make_unique<App>(*this);
  if (config_.mflow_tx) {
    merger_ = std::make_unique<core::Reassembler>(machine_.costs());
    drain_ = std::make_unique<WireDrain>(*this);
    // Install the flow-splitting function before the encapsulation stage —
    // the heavyweight device of the *egress* path.
    core::MflowConfig mcfg;
    mcfg.batch_size = config_.batch_size;
    mcfg.splitting_cores = config_.splitting_cores;
    mcfg.split_point = core::SplitPoint::kBeforeStage;
    mcfg.split_before = stack::StageId::kVxlan;
    // The splitter holds the config by reference; this TxHost owns it.
    mflow_cfg_ = std::make_unique<core::MflowConfig>(mcfg);
    splitter_ = std::make_unique<core::FlowSplitter>(
        machine_, *mflow_cfg_,
        [this](const net::Packet&) { return merger_.get(); });
    machine_.set_transition_hook(machine_.stage_index(stack::StageId::kVxlan),
                                 splitter_.get());
  }
}

TxHost::~TxHost() = default;

void TxHost::start() { machine_.core(0).raise(*app_); }

std::uint64_t TxHost::messages_generated() const { return app_->messages(); }

double TxHost::offered_gbps(sim::Time window) const {
  return static_cast<double>(payload_bytes_out_) * 8.0 /
         sim::to_seconds(window) / 1e9;
}

void TxHost::wire_out(net::PacketPtr pkt, int from_core) {
  if (config_.mflow_tx) {
    // Order must be restored before the wire: deposit into the per-core
    // buffer queues and let the drain merge micro-flows.
    merger_->deposit(std::move(pkt), from_core);
    const bool remote = from_core != config_.wire_core;
    if (machine_.core(config_.wire_core).raise(*drain_, remote) && remote)
      machine_.core(from_core).charge(sim::Tag::kSteer,
                                      machine_.costs().ipi_cost);
    return;
  }
  ++on_wire_;
  payload_bytes_out_ += pkt->payload_len;
  wire_.transmit(std::move(pkt));
}

}  // namespace mflow::workload
