// Individual device stages: VXLAN validation, bridge FDB, IP checksum
// verification, cost attribution.
#include <gtest/gtest.h>

#include "overlay/topology.hpp"
#include "stack/machine.hpp"
#include "steering/modes.hpp"

using namespace mflow;

namespace {

struct StageRig {
  sim::Simulator sim{1};
  stack::Machine machine;

  StageRig() : machine(sim, make_params()) {
    overlay::PathSpec spec;
    spec.protocol = net::Ipv4Header::kProtoUdp;
    machine.set_path(overlay::build_rx_path(machine.costs(), spec));
    machine.set_steering(steer::make_policy(exp::Mode::kVanilla));
    stack::SocketConfig sc;
    sc.protocol = net::Ipv4Header::kProtoUdp;
    machine.add_socket(5000, sc);
    machine.start();
  }

  static stack::MachineParams make_params() {
    stack::MachineParams mp;
    mp.num_cores = 4;
    return mp;
  }

  template <typename T>
  T& stage(stack::StageId id) {
    return static_cast<T&>(machine.stage_at(machine.stage_index(id)));
  }

  net::PacketPtr packet(std::uint32_t vni = 42) {
    auto p = net::make_udp_datagram(
        net::FlowKey{net::Ipv4Addr(10, 0, 1, 2), net::Ipv4Addr(10, 0, 1, 3),
                     41000, 5000, net::Ipv4Header::kProtoUdp},
        500);
    p->flow_id = 1;
    p->message_bytes = 500;
    net::vxlan_encap(*p, net::Ipv4Addr(192, 168, 1, 2),
                     net::Ipv4Addr(192, 168, 1, 3), vni);
    return p;
  }
};

}  // namespace

TEST(Stages, VxlanCountsDecapsAndRejectsForeignVni) {
  StageRig rig;
  rig.machine.nic().deliver(rig.packet(42), 0);
  rig.machine.nic().deliver(rig.packet(777), 0);  // foreign VNI
  rig.sim.run();
  auto& vx = rig.stage<stack::VxlanStage>(stack::StageId::kVxlan);
  EXPECT_EQ(vx.decapsulated(), 1u);
  EXPECT_EQ(vx.decap_failures(), 1u);
  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 1u);
}

TEST(Stages, IpVerifiesRealChecksums) {
  StageRig rig;
  auto good = rig.packet();
  auto bad = rig.packet();
  bad->buf.data()[net::EthernetHeader::kSize + 12] ^= 0xFF;  // corrupt src IP
  rig.machine.nic().deliver(std::move(good), 0);
  rig.machine.nic().deliver(std::move(bad), 0);
  rig.sim.run();
  auto& outer = rig.stage<stack::IpRxStage>(stack::StageId::kIpOuter);
  EXPECT_EQ(outer.accepted(), 1u);
  EXPECT_EQ(outer.checksum_drops(), 1u);
}

TEST(Stages, BridgeForwardsAfterLearning) {
  StageRig rig;
  auto& bridge = rig.stage<stack::BridgeStage>(stack::StageId::kBridge);
  rig.machine.nic().deliver(rig.packet(), 0);
  rig.sim.run();
  EXPECT_EQ(bridge.flooded(), 1u);  // unknown dst: flooded
  bridge.learn(net::MacAddr{0x02, 0x42, 0xac, 0x11, 0x00, 0x03}, 1);
  rig.machine.nic().deliver(rig.packet(), rig.sim.now());
  rig.sim.run();
  EXPECT_EQ(bridge.forwarded(), 1u);
}

TEST(Stages, VethCountsTransits) {
  StageRig rig;
  for (int i = 0; i < 5; ++i)
    rig.machine.nic().deliver(rig.packet(), rig.sim.now());
  rig.sim.run();
  EXPECT_EQ(rig.stage<stack::VethStage>(stack::StageId::kVeth).transited(),
            5u);
}

TEST(Stages, CostsAttributedToMatchingTags) {
  StageRig rig;
  for (int i = 0; i < 8; ++i)
    rig.machine.nic().deliver(rig.packet(), rig.sim.now());
  rig.sim.run();
  const auto& costs = rig.machine.costs();
  auto& c1 = rig.machine.core(1);
  EXPECT_EQ(c1.busy_ns(sim::Tag::kVxlan),
            8 * (costs.vxlan_per_skb + costs.vxlan_per_seg));
  EXPECT_EQ(c1.busy_ns(sim::Tag::kBridge), 8 * costs.bridge_per_skb);
  EXPECT_EQ(c1.busy_ns(sim::Tag::kVeth), 8 * costs.veth_per_skb);
  EXPECT_EQ(c1.busy_ns(sim::Tag::kUdpRx), 8 * costs.udp_rx_per_pkt);
  // Two IP traversals (outer + inner).
  EXPECT_EQ(c1.busy_ns(sim::Tag::kIpRx), 2 * 8 * costs.ip_rx_per_skb);
}

TEST(Stages, StageNamesDistinct) {
  std::set<std::string_view> names;
  for (auto id : {stack::StageId::kDriver, stack::StageId::kGro,
                  stack::StageId::kIpOuter, stack::StageId::kVxlan,
                  stack::StageId::kBridge, stack::StageId::kVeth,
                  stack::StageId::kIp, stack::StageId::kTcp,
                  stack::StageId::kUdp, stack::StageId::kSocket})
    names.insert(stack::stage_name(id));
  EXPECT_EQ(names.size(), 10u);
}
