// Multi-queue NIC + RSS + per-queue drivers, and MFLOW across queues —
// the multi-flow machine layout of Figures 10/12.
#include <gtest/gtest.h>

#include "core/mflow.hpp"
#include "overlay/topology.hpp"
#include "stack/machine.hpp"
#include "steering/modes.hpp"

using namespace mflow;

namespace {

struct MqRig {
  sim::Simulator sim{3};
  stack::Machine machine;

  explicit MqRig(int queues) : machine(sim, params(queues)) {
    overlay::PathSpec spec;
    spec.protocol = net::Ipv4Header::kProtoUdp;
    machine.set_path(overlay::build_rx_path(machine.costs(), spec));
    machine.set_steering(steer::make_policy(exp::Mode::kVanilla));
    stack::SocketConfig sc;
    sc.protocol = net::Ipv4Header::kProtoUdp;
    machine.add_socket(5000, sc);
    machine.start();
  }

  static stack::MachineParams params(int queues) {
    stack::MachineParams mp;
    mp.num_cores = 12;
    mp.nic.num_queues = queues;
    for (int q = 0; q < queues; ++q) mp.irq_affinity.push_back(1 + q);
    return mp;
  }

  void deliver_flow(std::uint16_t sport, net::FlowId id, int pkts) {
    for (int i = 0; i < pkts; ++i) {
      auto p = net::make_udp_datagram(
          net::FlowKey{net::Ipv4Addr(10, 0, 1, 2),
                       net::Ipv4Addr(10, 0, 1, 3), sport, 5000,
                       net::Ipv4Header::kProtoUdp},
          500);
      p->flow_id = id;
      p->message_id = static_cast<std::uint64_t>(i);
      p->message_bytes = 500;
      net::vxlan_encap(*p, net::Ipv4Addr(192, 168, 1, 2),
                       net::Ipv4Addr(192, 168, 1, 3), 42);
      machine.nic().deliver(std::move(p), sim.now());
    }
  }
};

}  // namespace

TEST(MultiQueue, FlowsSpreadAcrossIrqCores) {
  MqRig rig(4);
  for (std::uint16_t f = 0; f < 16; ++f)
    rig.deliver_flow(static_cast<std::uint16_t>(41000 + f), f + 1, 20);
  rig.sim.run();
  // All 320 messages arrive, and more than one IRQ core did driver work.
  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 320u);
  int active_irq_cores = 0;
  for (int c = 1; c <= 4; ++c)
    if (rig.machine.core(c).busy_ns(sim::Tag::kDriver) > 0)
      ++active_irq_cores;
  EXPECT_GT(active_irq_cores, 1);
}

TEST(MultiQueue, SingleFlowStaysOnOneQueue) {
  MqRig rig(4);
  rig.deliver_flow(41000, 1, 50);
  rig.sim.run();
  int active = 0;
  for (int c = 1; c <= 4; ++c)
    if (rig.machine.core(c).busy_ns(sim::Tag::kDriver) > 0) ++active;
  EXPECT_EQ(active, 1);  // RSS pins the flow — the paper's premise
}

TEST(MultiQueue, MflowSplitsEveryQueueArrival) {
  MqRig rig(4);
  core::MflowConfig mcfg = core::udp_device_scaling_config();
  mcfg.batch_size = 8;
  mcfg.splitting_cores = {6, 7, 8};
  core::MflowEngine engine(rig.machine, mcfg);
  engine.attach_socket(5000, rig.machine.socket(5000));
  engine.install();

  for (std::uint16_t f = 0; f < 6; ++f)
    rig.deliver_flow(static_cast<std::uint16_t>(41000 + f), f + 1, 40);
  rig.sim.run();

  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 240u);
  // VXLAN ran only on the splitting cores, never on the IRQ cores.
  for (int c = 1; c <= 4; ++c)
    EXPECT_EQ(rig.machine.core(c).busy_ns(sim::Tag::kVxlan), 0) << c;
  std::int64_t vxlan_total = 0;
  for (int c = 6; c <= 8; ++c)
    vxlan_total += rig.machine.core(c).busy_ns(sim::Tag::kVxlan);
  EXPECT_GT(vxlan_total, 0);
  EXPECT_GT(engine.batches_merged(), 0u);
}

TEST(MultiQueue, UdpMessagePruneSurvivesIncompleteMessages) {
  // Lost fragments leave stale per-message entries; the socket prunes them
  // rather than growing without bound.
  MqRig rig(1);
  for (int i = 0; i < 10000; ++i) {
    auto p = net::make_udp_datagram(
        net::FlowKey{net::Ipv4Addr(10, 0, 1, 2), net::Ipv4Addr(10, 0, 1, 3),
                     41000, 5000, net::Ipv4Header::kProtoUdp},
        500);
    p->flow_id = 1;
    p->message_id = static_cast<std::uint64_t>(i);
    p->message_bytes = 1000;  // second fragment never arrives
    net::vxlan_encap(*p, net::Ipv4Addr(192, 168, 1, 2),
                     net::Ipv4Addr(192, 168, 1, 3), 42);
    rig.machine.nic().deliver(std::move(p), rig.sim.now());
    if (i % 64 == 63) rig.sim.run();  // drain in bursts (ring capacity)
  }
  rig.sim.run();
  const auto& st = rig.machine.socket(5000).stats();
  EXPECT_EQ(st.messages, 0u);               // nothing ever completes
  EXPECT_GT(st.payload_bytes, 4'000'000u);  // but all bytes were delivered
}
