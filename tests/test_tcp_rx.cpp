// TcpReceiver: in-order delivery, out-of-order queueing, duplicates, ACKs.
#include <gtest/gtest.h>

#include <vector>

#include "stack/tcp_rx.hpp"
#include "util/rng.hpp"

using namespace mflow;
using stack::TcpReceiver;

namespace {

net::PacketPtr seg(net::FlowId flow, std::uint64_t off, std::uint32_t len) {
  auto p = net::make_tcp_segment(
      net::FlowKey{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1,
                   2, net::Ipv4Header::kProtoTcp},
      off, len);
  p->flow_id = flow;
  return p;
}

struct Harness {
  stack::CostModel costs = stack::default_costs();
  TcpReceiver rx{costs};
  std::vector<std::uint64_t> delivered;  // stream offsets
  sim::Time charged = 0;
  std::uint64_t last_ack = 0;

  Harness() {
    rx.set_ack_callback([this](net::FlowId, std::uint64_t bytes) {
      last_ack = bytes;
    });
  }
  void feed(net::PacketPtr p) {
    rx.on_segment(
        std::move(p),
        [this](net::PacketPtr q) { delivered.push_back(q->tcp_seq); },
        [this](sim::Time ns) { charged += ns; });
  }
};

}  // namespace

TEST(TcpReceiver, InOrderDeliversImmediately) {
  Harness h;
  h.feed(seg(1, 0, 1000));
  h.feed(seg(1, 1000, 1000));
  EXPECT_EQ(h.delivered, (std::vector<std::uint64_t>{0, 1000}));
  EXPECT_EQ(h.charged, 0);
  EXPECT_EQ(h.last_ack, 2000u);
  EXPECT_EQ(h.rx.segments_accepted(), 2u);
}

TEST(TcpReceiver, OutOfOrderHeldThenDrained) {
  Harness h;
  h.feed(seg(1, 1000, 1000));  // hole at 0
  EXPECT_TRUE(h.delivered.empty());
  EXPECT_EQ(h.rx.ofo_insertions(), 1u);
  EXPECT_EQ(h.charged, h.costs.tcp_ofo_insert);
  h.feed(seg(1, 0, 1000));  // fills the hole, drains ofo
  EXPECT_EQ(h.delivered, (std::vector<std::uint64_t>{0, 1000}));
  EXPECT_EQ(h.last_ack, 2000u);
}

TEST(TcpReceiver, DuplicateDropped) {
  Harness h;
  h.feed(seg(1, 0, 1000));
  h.feed(seg(1, 0, 1000));  // full duplicate
  EXPECT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.rx.duplicates_dropped(), 1u);
}

TEST(TcpReceiver, GoBackNRetransmitRecovers) {
  Harness h;
  h.feed(seg(1, 0, 1000));
  // 1000..2000 lost; 2000.. arrives out of order.
  h.feed(seg(1, 2000, 1000));
  // Go-back-N: sender resends from 1000 (including already-seen 2000).
  h.feed(seg(1, 1000, 1000));
  h.feed(seg(1, 2000, 1000));
  EXPECT_EQ(h.delivered, (std::vector<std::uint64_t>{0, 1000, 2000}));
  EXPECT_EQ(h.rx.expected_offset(1), 3000u);
}

TEST(TcpReceiver, FlowsIndependent) {
  Harness h;
  h.feed(seg(1, 0, 500));
  h.feed(seg(2, 500, 500));  // flow 2 starts with a hole
  EXPECT_EQ(h.delivered.size(), 1u);
  h.feed(seg(2, 0, 500));
  EXPECT_EQ(h.delivered.size(), 3u);
  EXPECT_EQ(h.rx.expected_offset(1), 500u);
  EXPECT_EQ(h.rx.expected_offset(2), 1000u);
}

TEST(TcpReceiver, RandomPermutationAlwaysInOrder) {
  // Property: any arrival permutation of a window yields in-order delivery.
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    Harness h;
    std::vector<int> order(32);
    for (int i = 0; i < 32; ++i) order[static_cast<size_t>(i)] = i;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.uniform(i)]);
    for (int idx : order)
      h.feed(seg(1, static_cast<std::uint64_t>(idx) * 100, 100));
    ASSERT_EQ(h.delivered.size(), 32u);
    for (std::size_t i = 0; i < 32; ++i)
      EXPECT_EQ(h.delivered[i], i * 100) << "trial " << trial;
    EXPECT_EQ(h.last_ack, 3200u);
  }
}

TEST(TcpReceiver, OfoChargePerInsertion) {
  Harness h;
  h.feed(seg(1, 100, 100));
  h.feed(seg(1, 300, 100));
  h.feed(seg(1, 200, 100));
  EXPECT_EQ(h.charged, 3 * h.costs.tcp_ofo_insert);
  h.feed(seg(1, 0, 100));
  EXPECT_EQ(h.delivered.size(), 4u);
}
