// Client-side senders: TCP windowing/ACK clocking, UDP fragmentation,
// pacing, the wire link, and the on-demand stream injector.
#include <gtest/gtest.h>

#include "overlay/topology.hpp"
#include "stack/machine.hpp"
#include "steering/modes.hpp"
#include "workload/injector.hpp"
#include "workload/sender.hpp"

using namespace mflow;

namespace {

struct NetRig {
  sim::Simulator sim{1};
  stack::Machine server;
  workload::ClientHost clients;
  workload::WireLink wire;

  explicit NetRig(std::uint8_t proto, std::uint32_t msg_size,
                  bool tcp_in_reader = false)
      : server(sim, make_params()),
        clients(sim, 3, server.costs()),
        wire(sim, server, server.costs().wire_latency) {
    overlay::PathSpec spec;
    spec.protocol = proto;
    spec.tcp_in_reader = tcp_in_reader;
    server.set_path(overlay::build_rx_path(server.costs(), spec));
    server.set_steering(steer::make_policy(exp::Mode::kVanilla));
    stack::SocketConfig sc;
    sc.protocol = proto;
    sc.message_size = msg_size;
    sc.tcp_in_reader = tcp_in_reader;
    server.add_socket(5000, sc);
    server.start();
  }

  static stack::MachineParams make_params() {
    stack::MachineParams mp;
    mp.num_cores = 4;
    return mp;
  }

  workload::SenderParams params(std::uint8_t proto, std::uint32_t msg) {
    workload::SenderParams sp;
    sp.flow = net::FlowKey{net::Ipv4Addr(10, 0, 1, 2),
                           net::Ipv4Addr(10, 0, 1, 3), 40000, 5000, proto};
    sp.flow_id = 1;
    sp.overlay = true;
    sp.outer_src = net::Ipv4Addr(192, 168, 1, 2);
    sp.outer_dst = net::Ipv4Addr(192, 168, 1, 3);
    sp.message_size = msg;
    return sp;
  }
};

}  // namespace

TEST(TcpSender, WindowLimitsInflightUntilAcked) {
  NetRig rig(net::Ipv4Header::kProtoTcp, 65536);
  auto sp = rig.params(net::Ipv4Header::kProtoTcp, 65536);
  sp.window_bytes = 10 * net::kTcpMss;
  workload::TcpSender sender(rig.clients, 0, sp, rig.wire);
  auto* rx = overlay::find_softirq_tcp_receiver(rig.server);
  ASSERT_NE(rx, nullptr);
  rx->set_ack_callback([&](net::FlowId, std::uint64_t bytes) {
    rig.sim.after(rig.server.costs().wire_latency,
                  [&sender, bytes] { sender.on_ack(bytes); });
  });
  sender.start();
  rig.sim.run_until(sim::ms(5));
  // Progress far beyond one window proves ACK clocking works...
  EXPECT_GT(sender.bytes_sent(), 50u * net::kTcpMss);
  // ...and inflight never exceeds the window.
  EXPECT_LE(sender.inflight_bytes(), sp.window_bytes);
}

TEST(TcpSender, StallsForeverWithoutAcks) {
  NetRig rig(net::Ipv4Header::kProtoTcp, 65536);
  auto sp = rig.params(net::Ipv4Header::kProtoTcp, 65536);
  sp.window_bytes = 10 * net::kTcpMss;
  sp.rto = 0;  // disable retransmission for this test
  workload::TcpSender sender(rig.clients, 0, sp, rig.wire);
  sender.start();
  rig.sim.run_until(sim::ms(5));
  EXPECT_EQ(sender.bytes_sent(), sp.window_bytes);
}

TEST(TcpSender, RtoTriggersGoBackN) {
  NetRig rig(net::Ipv4Header::kProtoTcp, 65536);
  auto sp = rig.params(net::Ipv4Header::kProtoTcp, 65536);
  sp.window_bytes = 4 * 1448;
  sp.rto = sim::us(500);
  workload::TcpSender sender(rig.clients, 0, sp, rig.wire);
  // No ACKs wired at all: the sender should retransmit repeatedly.
  sender.start();
  rig.sim.run_until(sim::ms(10));
  EXPECT_GT(sender.retransmits(), 5u);
}

TEST(TcpSender, SegmentsRespectMessageBoundaries) {
  NetRig rig(net::Ipv4Header::kProtoTcp, 2000);
  auto sp = rig.params(net::Ipv4Header::kProtoTcp, 2000);
  sp.window_bytes = 100000;
  workload::TcpSender sender(rig.clients, 0, sp, rig.wire);
  sender.start();
  rig.sim.run_until(sim::us(100));
  // 2000-byte messages -> segments of MSS + remainder.
  EXPECT_EQ(sender.bytes_sent() % 2000, 0u);
  EXPECT_EQ(sender.segments_sent() % 2, 0u);
}

TEST(UdpSender, FragmentsLargeMessages) {
  NetRig rig(net::Ipv4Header::kProtoUdp, 65536);
  auto sp = rig.params(net::Ipv4Header::kProtoUdp, 65536);
  workload::UdpSender sender(rig.clients, 0, sp, rig.wire);
  sender.start();
  rig.sim.run_until(sim::ms(2));
  // 65536 / 1460 mss -> 46 fragments per message.
  const auto frags_per_msg = (65536 + net::kTcpMss - 1) / net::kTcpMss;
  EXPECT_GE(sender.packets_sent(), frags_per_msg);
  // Packet count is consistent with full messages plus a partial tail.
  EXPECT_GE(sender.packets_sent() * net::kTcpMss, sender.bytes_sent());
  EXPECT_GT(rig.server.socket(5000).stats().messages, 0u);
}

TEST(UdpSender, PacingControlsRate) {
  NetRig rig(net::Ipv4Header::kProtoUdp, 1000);
  auto sp = rig.params(net::Ipv4Header::kProtoUdp, 1000);
  sp.pace_per_message = sim::us(100);
  workload::UdpSender sender(rig.clients, 0, sp, rig.wire);
  sender.start();
  rig.sim.run_until(sim::ms(10));
  const auto sent = sender.bytes_sent() / 1000;
  EXPECT_NEAR(static_cast<double>(sent), 100.0, 15.0);  // ~10ms / 100us
}

TEST(WireLink, PreservesTransmitOrder) {
  NetRig rig(net::Ipv4Header::kProtoUdp, 1000);
  auto sp = rig.params(net::Ipv4Header::kProtoUdp, 1000);
  workload::UdpSender a(rig.clients, 0, sp, rig.wire);
  a.start();
  rig.sim.run_until(sim::ms(1));
  // wire_seq is stamped in arrival order; socket stats count them all.
  EXPECT_EQ(rig.wire.packets(), rig.server.nic().total_delivered() +
                                    rig.server.nic().total_drops());
}

TEST(StreamInjector, SendsOnDemandInOrder) {
  NetRig rig(net::Ipv4Header::kProtoTcp, 0);
  // Variable messages: per-message accounting socket.
  stack::SocketConfig sc;
  sc.protocol = net::Ipv4Header::kProtoTcp;
  sc.per_message_accounting = true;
  rig.server.add_socket(6000, sc);
  std::vector<std::uint64_t> done;
  rig.server.socket(6000).set_message_listener(
      [&](net::FlowId, std::uint64_t id, sim::Time) { done.push_back(id); });

  auto sp = rig.params(net::Ipv4Header::kProtoTcp, 0);
  sp.flow.dst_port = 6000;
  workload::StreamInjector inj(rig.clients, 1, sp, rig.wire);
  inj.send_message(1, 3000);
  inj.send_message(2, 100);
  inj.send_message(3, 40000);
  rig.sim.run();
  EXPECT_EQ(done, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(inj.bytes_sent(), 43100u);
}
