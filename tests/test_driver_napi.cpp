// Driver NAPI behaviour: IRQ mitigation, batching, backlog drain — the
// stage-1 dynamics that IRQ-splitting later re-partitions.
#include <gtest/gtest.h>

#include "overlay/topology.hpp"
#include "stack/machine.hpp"
#include "steering/modes.hpp"
#include "util/log.hpp"

using namespace mflow;

namespace {

struct Rig {
  sim::Simulator sim{1};
  stack::Machine machine;

  Rig() : machine(sim, params()) {
    overlay::PathSpec spec;
    spec.overlay = false;
    spec.protocol = net::Ipv4Header::kProtoUdp;
    machine.set_path(overlay::build_rx_path(machine.costs(), spec));
    machine.set_steering(steer::make_policy(exp::Mode::kVanilla));
    stack::SocketConfig sc;
    sc.protocol = net::Ipv4Header::kProtoUdp;
    machine.add_socket(5000, sc);
    machine.start();
  }

  static stack::MachineParams params() {
    stack::MachineParams mp;
    mp.num_cores = 3;
    return mp;
  }

  void burst(int n) {
    for (int i = 0; i < n; ++i) {
      auto p = net::make_udp_datagram(
          net::FlowKey{net::Ipv4Addr(1, 1, 1, 2), net::Ipv4Addr(1, 1, 1, 3),
                       41000, 5000, net::Ipv4Header::kProtoUdp},
          500);
      p->flow_id = 1;
      p->message_id = static_cast<std::uint64_t>(i);
      p->message_bytes = 500;
      machine.nic().deliver(std::move(p), sim.now());
    }
  }
};

}  // namespace

TEST(DriverNapi, IrqChargedOncePerBurst) {
  Rig rig;
  rig.burst(50);  // all arrive at the same instant: one IRQ, then polling
  rig.sim.run();
  EXPECT_EQ(rig.machine.core(1).busy_ns(sim::Tag::kIrq),
            rig.machine.costs().irq);
  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 50u);
}

TEST(DriverNapi, IdleGapsReArmIrq) {
  Rig rig;
  rig.burst(1);
  rig.sim.run();  // drain completely; NAPI re-arms the interrupt
  rig.sim.at(rig.sim.now() + sim::ms(1), [&] { rig.burst(1); });
  rig.sim.run();
  EXPECT_EQ(rig.machine.core(1).busy_ns(sim::Tag::kIrq),
            2 * rig.machine.costs().irq);
}

TEST(DriverNapi, PerPacketCostsScaleLinearly) {
  Rig rig;
  rig.burst(100);
  rig.sim.run();
  const auto& costs = rig.machine.costs();
  EXPECT_EQ(rig.machine.core(1).busy_ns(sim::Tag::kDriver),
            100 * costs.driver_poll_per_pkt);
  EXPECT_EQ(rig.machine.core(1).busy_ns(sim::Tag::kSkbAlloc),
            100 * costs.skb_alloc);
}

TEST(DriverNapi, RingOverrunDropsExcess) {
  sim::Simulator sim(1);
  stack::MachineParams mp;
  mp.num_cores = 3;
  mp.nic.ring_capacity = 16;
  stack::Machine m(sim, mp);
  overlay::PathSpec spec;
  spec.overlay = false;
  spec.protocol = net::Ipv4Header::kProtoUdp;
  m.set_path(overlay::build_rx_path(m.costs(), spec));
  m.set_steering(steer::make_policy(exp::Mode::kVanilla));
  stack::SocketConfig sc;
  sc.protocol = net::Ipv4Header::kProtoUdp;
  m.add_socket(5000, sc);
  m.start();
  for (int i = 0; i < 64; ++i) {
    auto p = net::make_udp_datagram(
        net::FlowKey{net::Ipv4Addr(1, 1, 1, 2), net::Ipv4Addr(1, 1, 1, 3),
                     41000, 5000, net::Ipv4Header::kProtoUdp},
        500);
    p->flow_id = 1;
    p->message_bytes = 500;
    m.nic().deliver(std::move(p), 0);  // all at t=0: ring fills
  }
  sim.run();
  EXPECT_GT(m.nic().total_drops(), 0u);
  EXPECT_EQ(m.socket(5000).stats().skbs + m.nic().total_drops(), 64u);
}

TEST(Log, LevelGatesOutput) {
  using util::LogLevel;
  util::set_log_level(LogLevel::kError);
  EXPECT_EQ(util::log_level(), LogLevel::kError);
  // Below-threshold logging must be cheap and side-effect free.
  MFLOW_DEBUG() << "invisible";
  MFLOW_INFO() << "invisible";
  util::set_log_level(LogLevel::kWarn);
  EXPECT_EQ(util::log_level(), LogLevel::kWarn);
}
