// End-to-end MFLOW invariants on full scenarios: order preservation through
// splitting+merging under interference, parameter sweeps, and the engine's
// bookkeeping. Parameterized sweeps act as property tests on the whole
// system.
#include <gtest/gtest.h>

#include "experiment/scenario.hpp"

using namespace mflow;
using exp::Mode;

namespace {

exp::ScenarioResult run_mflow(std::uint8_t proto, core::MflowConfig mcfg,
                              std::uint32_t msg = 65536,
                              std::uint64_t seed = 3) {
  exp::ScenarioConfig cfg;
  cfg.mode = Mode::kMflow;
  cfg.protocol = proto;
  cfg.message_size = msg;
  cfg.warmup = sim::ms(4);
  cfg.measure = sim::ms(12);
  cfg.seed = seed;
  cfg.mflow = std::move(mcfg);
  return exp::run_scenario(cfg);
}

}  // namespace

struct MflowSweep {
  std::uint32_t batch;
  int cores;
  bool irq_split;
};

class MflowParamSweep : public ::testing::TestWithParam<MflowSweep> {};

TEST_P(MflowParamSweep, TcpDeliversEverythingInOrder) {
  const auto p = GetParam();
  core::MflowConfig mcfg;
  mcfg.batch_size = p.batch;
  mcfg.splitting_cores.clear();
  for (int c = 0; c < p.cores; ++c) mcfg.splitting_cores.push_back(2 + c);
  mcfg.split_point =
      p.irq_split ? core::SplitPoint::kIrq : core::SplitPoint::kBeforeStage;
  mcfg.tcp_in_reader = true;

  const auto res = run_mflow(net::Ipv4Header::kProtoTcp, mcfg);
  // Traffic flows at a sane rate...
  EXPECT_GT(res.goodput_gbps, 5.0);
  // ...and the reassembler kept merging batches.
  EXPECT_GT(res.batches_merged, 0u);
  // TCP-level ordering is implicitly proven by throughput: any ofo packet
  // would pay tcp_ofo_insert, and a stall would collapse goodput. Assert
  // the strong form via message completions matching goodput.
  const double expected_msgs = res.goodput_gbps * 1e9 / 8 / 65536 * 0.012;
  EXPECT_NEAR(static_cast<double>(res.messages), expected_msgs,
              expected_msgs * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MflowParamSweep,
    ::testing::Values(MflowSweep{1, 2, false}, MflowSweep{8, 2, false},
                      MflowSweep{64, 2, true}, MflowSweep{256, 2, true},
                      MflowSweep{256, 3, false}, MflowSweep{512, 4, true},
                      MflowSweep{1024, 2, true}, MflowSweep{32, 6, false}));

TEST(MflowIntegration, UdpSplitPreservesAllMessages) {
  for (std::uint32_t batch : {16u, 256u}) {
    auto mcfg = core::udp_device_scaling_config();
    mcfg.batch_size = batch;
    const auto res = run_mflow(net::Ipv4Header::kProtoUdp, mcfg, 4096);
    EXPECT_GT(res.goodput_gbps, 2.0) << "batch " << batch;
    EXPECT_GT(res.messages, 1000u);
  }
}

TEST(MflowIntegration, OooArrivalsDropWithBatchSize) {
  auto mk = [](std::uint32_t batch) {
    auto mcfg = core::udp_device_scaling_config();
    mcfg.tcp_in_reader = true;
    mcfg.batch_size = batch;
    return run_mflow(net::Ipv4Header::kProtoTcp, mcfg).ooo_arrivals;
  };
  const auto small = mk(8);
  const auto big = mk(256);
  EXPECT_GT(small, 0u);
  EXPECT_LT(big, small / 2);
}

TEST(MflowIntegration, MoreSplittingCoresMoreSpread) {
  auto util_on = [](int cores) {
    auto mcfg = core::udp_device_scaling_config();
    mcfg.splitting_cores.clear();
    for (int c = 0; c < cores; ++c) mcfg.splitting_cores.push_back(2 + c);
    const auto res = run_mflow(net::Ipv4Header::kProtoUdp, mcfg);
    double spread = 0;
    for (int c = 2; c < 2 + cores; ++c)
      spread += res.cores.at(static_cast<std::size_t>(c)).total;
    return spread / cores;  // mean utilization of splitting cores
  };
  const double two = util_on(2);
  const double four = util_on(4);
  EXPECT_GT(two, 0.2);
  EXPECT_LT(four, two);  // same offered load over more cores -> less each
}

TEST(MflowIntegration, InterferenceDoesNotBreakOrdering) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    exp::ScenarioConfig cfg;
    cfg.mode = Mode::kMflow;
    cfg.protocol = net::Ipv4Header::kProtoTcp;
    cfg.message_size = 16384;
    cfg.warmup = sim::ms(3);
    cfg.measure = sim::ms(8);
    cfg.seed = seed;
    cfg.interference.mean_interval = sim::us(15);  // heavy jitter
    cfg.interference.max_duration = sim::us(20);
    const auto res = exp::run_scenario(cfg);
    // Heavy interference steals a large CPU share; the flow must still make
    // steady progress without stalling (a single merge stall would wedge
    // the window and collapse both numbers to ~0).
    EXPECT_GT(res.goodput_gbps, 1.0) << "seed " << seed;
    EXPECT_GT(res.messages, 300u) << "seed " << seed;
  }
}

TEST(MflowIntegration, ConfigDescribeMentionsKeyFields) {
  const auto s = core::tcp_full_path_config().describe();
  EXPECT_NE(s.find("batch=256"), std::string::npos);
  EXPECT_NE(s.find("irq"), std::string::npos);
  EXPECT_NE(s.find("merge-before-tcp"), std::string::npos);
  const auto u = core::udp_device_scaling_config().describe();
  EXPECT_NE(u.find("vxlan"), std::string::npos);
}
