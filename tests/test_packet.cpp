// Packet construction, headroom management, VXLAN encap/decap round trips.
#include <gtest/gtest.h>

#include "net/packet.hpp"

using namespace mflow::net;

namespace {
FlowKey tcp_flow() {
  return FlowKey{Ipv4Addr(10, 0, 1, 2), Ipv4Addr(10, 0, 1, 3), 40000, 5001,
                 Ipv4Header::kProtoTcp};
}
FlowKey udp_flow() {
  return FlowKey{Ipv4Addr(10, 0, 1, 2), Ipv4Addr(10, 0, 1, 3), 41000, 5002,
                 Ipv4Header::kProtoUdp};
}
}  // namespace

TEST(PacketBuffer, PushPullSymmetry) {
  PacketBuffer buf(16);
  auto tail = buf.append(4);
  tail[0] = 0xAA;
  auto head = buf.push(2);
  head[0] = 0xBB;
  EXPECT_EQ(buf.size(), 6u);
  EXPECT_EQ(buf.data()[0], 0xBB);
  EXPECT_EQ(buf.data()[2], 0xAA);
  buf.pull(2);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.data()[0], 0xAA);
  EXPECT_EQ(buf.headroom(), 16u);
}

TEST(Packet, TcpSegmentLayout) {
  auto pkt = make_tcp_segment(tcp_flow(), 1'000'000'000'000ull, 1448);
  // Headers only in the buffer; payload is virtual.
  EXPECT_EQ(pkt->buf.size(),
            EthernetHeader::kSize + Ipv4Header::kSize + TcpHeader::kSize);
  EXPECT_EQ(pkt->payload_len, 1448u);
  EXPECT_EQ(pkt->wire_len(), 54u + 1448u);

  const auto bytes = pkt->buf.data();
  const auto eth = EthernetHeader::decode(bytes);
  EXPECT_EQ(eth.ethertype, EthernetHeader::kEtherTypeIpv4);
  const auto l3 = bytes.subspan(EthernetHeader::kSize);
  EXPECT_TRUE(Ipv4Header::verify(l3));
  const auto ip = Ipv4Header::decode(l3);
  EXPECT_EQ(ip.protocol, Ipv4Header::kProtoTcp);
  EXPECT_EQ(ip.total_length, Ipv4Header::kSize + TcpHeader::kSize + 1448);
  const auto tcp = TcpHeader::decode(l3.subspan(Ipv4Header::kSize));
  EXPECT_EQ(tcp.src_port, 40000);
  EXPECT_EQ(tcp.dst_port, 5001);
  // Wire header carries the low 32 bits of the 64-bit stream offset.
  EXPECT_EQ(tcp.seq, static_cast<std::uint32_t>(1'000'000'000'000ull));
}

TEST(Packet, UdpDatagramLayout) {
  auto pkt = make_udp_datagram(udp_flow(), 512);
  const auto bytes = pkt->buf.data();
  const auto l3 = bytes.subspan(EthernetHeader::kSize);
  ASSERT_TRUE(Ipv4Header::verify(l3));
  const auto udp = UdpHeader::decode(l3.subspan(Ipv4Header::kSize));
  EXPECT_EQ(udp.dst_port, 5002);
  EXPECT_EQ(udp.length, UdpHeader::kSize + 512);
}

TEST(Packet, VxlanEncapDecapRoundTrip) {
  auto pkt = make_tcp_segment(tcp_flow(), 777, 1000);
  const auto inner_before = std::vector<std::uint8_t>(
      pkt->buf.data().begin(), pkt->buf.data().end());

  vxlan_encap(*pkt, Ipv4Addr(192, 168, 1, 2), Ipv4Addr(192, 168, 1, 3), 42);
  EXPECT_TRUE(pkt->encapsulated);
  EXPECT_EQ(pkt->buf.size(), inner_before.size() + kVxlanOverhead);

  // Outer headers are well-formed.
  const auto outer = peek_ipv4(*pkt);
  EXPECT_EQ(outer.protocol, Ipv4Header::kProtoUdp);
  EXPECT_EQ(outer.src, Ipv4Addr(192, 168, 1, 2));
  EXPECT_EQ(outer.dst, Ipv4Addr(192, 168, 1, 3));

  const auto res = vxlan_decap(*pkt);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.vni, 42u);
  EXPECT_FALSE(pkt->encapsulated);
  const auto inner_after = std::vector<std::uint8_t>(
      pkt->buf.data().begin(), pkt->buf.data().end());
  EXPECT_EQ(inner_after, inner_before);  // byte-exact restoration
}

TEST(Packet, DecapRejectsNonEncapsulated) {
  auto pkt = make_tcp_segment(tcp_flow(), 0, 100);
  EXPECT_FALSE(vxlan_decap(*pkt).ok);
}

TEST(Packet, DecapRejectsCorruptedOuter) {
  auto pkt = make_udp_datagram(udp_flow(), 100);
  vxlan_encap(*pkt, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 7);
  // Corrupt the outer IP checksum region.
  pkt->buf.data()[EthernetHeader::kSize + 8] ^= 0xFF;
  EXPECT_FALSE(vxlan_decap(*pkt).ok);
}

TEST(Packet, OuterUdpSourcePortHasFlowEntropy) {
  auto a = make_tcp_segment(tcp_flow(), 0, 100);
  FlowKey other = tcp_flow();
  other.src_port = 40001;
  auto b = make_tcp_segment(other, 0, 100);
  vxlan_encap(*a, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 7);
  vxlan_encap(*b, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 7);
  const auto pa = UdpHeader::decode(a->buf.data().subspan(
      EthernetHeader::kSize + Ipv4Header::kSize));
  const auto pb = UdpHeader::decode(b->buf.data().subspan(
      EthernetHeader::kSize + Ipv4Header::kSize));
  EXPECT_EQ(pa.dst_port, VxlanHeader::kUdpPort);
  EXPECT_NE(pa.src_port, pb.src_port);  // RFC 7348 entropy
  EXPECT_GE(pa.src_port, 0xC000);      // ephemeral range
}

TEST(Packet, MssConstantsConsistent) {
  EXPECT_EQ(kVxlanOverhead, 50u);
  EXPECT_EQ(kTcpMss, 1500u - 20u - 20u);
}
