// GRO invariants: payload conservation, order preservation, merge limits.
#include <gtest/gtest.h>

#include <vector>

#include "net/gro.hpp"

using namespace mflow::net;

namespace {

PacketPtr seg(FlowId flow, std::uint64_t seq, std::uint32_t len,
              std::uint64_t msg_id = 0, std::uint64_t microflow = 0) {
  auto p = make_tcp_segment(
      FlowKey{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2,
              Ipv4Header::kProtoTcp},
      seq, len);
  p->flow_id = flow;
  p->message_id = msg_id;
  p->microflow_id = microflow;
  return p;
}

PacketPtr udp_pkt(FlowId flow) {
  auto p = make_udp_datagram(
      FlowKey{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2,
              Ipv4Header::kProtoUdp},
      100);
  p->flow_id = flow;
  return p;
}

struct Collector {
  std::vector<PacketPtr> out;
  GroEngine::Sink sink() {
    return [this](PacketPtr p) { out.push_back(std::move(p)); };
  }
};

}  // namespace

TEST(Gro, MergesConsecutiveSegments) {
  GroEngine gro({.max_segs = 44});
  Collector c;
  for (int i = 0; i < 10; ++i)
    gro.add(seg(1, static_cast<std::uint64_t>(i) * 1448, 1448), c.sink());
  EXPECT_TRUE(c.out.empty());  // all held
  gro.flush(c.sink());
  ASSERT_EQ(c.out.size(), 1u);
  EXPECT_EQ(c.out[0]->gro_segs, 10u);
  EXPECT_EQ(c.out[0]->payload_len, 14480u);  // payload conserved
  EXPECT_EQ(c.out[0]->tcp_seq, 0u);
  EXPECT_EQ(gro.merged_segments(), 9u);
}

TEST(Gro, UdpPassesThrough) {
  GroEngine gro({});
  Collector c;
  gro.add(udp_pkt(1), c.sink());
  gro.add(udp_pkt(1), c.sink());
  EXPECT_EQ(c.out.size(), 2u);
  EXPECT_EQ(gro.merged_segments(), 0u);
}

TEST(Gro, GapBreaksMerge) {
  GroEngine gro({});
  Collector c;
  gro.add(seg(1, 0, 1448), c.sink());
  gro.add(seg(1, 5000, 1448), c.sink());  // hole: flushes the held skb
  ASSERT_EQ(c.out.size(), 1u);
  EXPECT_EQ(c.out[0]->tcp_seq, 0u);
  gro.flush(c.sink());
  ASSERT_EQ(c.out.size(), 2u);
  EXPECT_EQ(c.out[1]->tcp_seq, 5000u);
  // Emission order preserved flow order.
  EXPECT_LT(c.out[0]->tcp_seq, c.out[1]->tcp_seq);
}

TEST(Gro, MaxSegsCapRespected) {
  GroEngine gro({.max_segs = 4});
  Collector c;
  for (int i = 0; i < 10; ++i)
    gro.add(seg(1, static_cast<std::uint64_t>(i) * 100, 100), c.sink());
  gro.flush(c.sink());
  std::uint32_t total = 0;
  for (const auto& p : c.out) {
    EXPECT_LE(p->gro_segs, 4u);
    total += p->payload_len;
  }
  EXPECT_EQ(total, 1000u);
}

TEST(Gro, MaxBytesCapRespected) {
  GroEngine gro({.max_segs = 100, .max_bytes = 4000});
  Collector c;
  for (int i = 0; i < 5; ++i)
    gro.add(seg(1, static_cast<std::uint64_t>(i) * 1448, 1448), c.sink());
  gro.flush(c.sink());
  for (const auto& p : c.out) EXPECT_LE(p->payload_len, 4000u);
}

TEST(Gro, FlowsDontCrossMerge) {
  GroEngine gro({});
  Collector c;
  gro.add(seg(1, 0, 100), c.sink());
  gro.add(seg(2, 100, 100), c.sink());  // different flow, "consecutive" seq
  gro.flush(c.sink());
  ASSERT_EQ(c.out.size(), 2u);
  EXPECT_EQ(c.out[0]->gro_segs, 1u);
  EXPECT_EQ(c.out[1]->gro_segs, 1u);
}

TEST(Gro, MessageBoundaryFlushes) {
  // PSH-at-message-end semantics: no merging across message ids.
  GroEngine gro({});
  Collector c;
  gro.add(seg(1, 0, 1448, /*msg=*/0), c.sink());
  gro.add(seg(1, 1448, 1448, /*msg=*/1), c.sink());
  gro.flush(c.sink());
  ASSERT_EQ(c.out.size(), 2u);
}

TEST(Gro, MicroflowBoundaryFlushes) {
  // MFLOW batches must not merge across each other: they may be processed
  // on different cores.
  GroEngine gro({});
  Collector c;
  gro.add(seg(1, 0, 1448, 0, /*microflow=*/1), c.sink());
  gro.add(seg(1, 1448, 1448, 0, /*microflow=*/2), c.sink());
  gro.flush(c.sink());
  ASSERT_EQ(c.out.size(), 2u);
}

TEST(Gro, DisabledPassesTcpThrough) {
  GroEngine gro({.enabled = false});
  Collector c;
  gro.add(seg(1, 0, 1448), c.sink());
  gro.add(seg(1, 1448, 1448), c.sink());
  EXPECT_EQ(c.out.size(), 2u);
}

TEST(Gro, FlushDeterministicOrder) {
  GroEngine gro({});
  Collector c;
  gro.add(seg(3, 0, 10), c.sink());
  gro.add(seg(1, 0, 10), c.sink());
  gro.add(seg(2, 0, 10), c.sink());
  gro.flush(c.sink());
  ASSERT_EQ(c.out.size(), 3u);
  EXPECT_EQ(c.out[0]->flow_id, 1u);
  EXPECT_EQ(c.out[1]->flow_id, 2u);
  EXPECT_EQ(c.out[2]->flow_id, 3u);
}
