#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/table.hpp"

using mflow::util::Cli;
using mflow::util::Table;

TEST(Table, AlignsColumns) {
  Table t({"a", "bbbb"});
  t.add({"xxxxx", 1});
  t.add({"y", 22});
  std::ostringstream os;
  t.print(os, "title");
  const auto s = os.str();
  EXPECT_NE(s.find("== title =="), std::string::npos);
  EXPECT_NE(s.find("xxxxx"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, CellFormatsDoubles) {
  Table::Cell c(3.14159, 2);
  EXPECT_EQ(c.text, "3.14");
}

TEST(Table, CsvQuoting) {
  Table t({"x", "y"});
  t.add({"a,b", "he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  const auto s = os.str();
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(mflow::util::fmt_gbps(1.234), "1.23 Gbps");
  EXPECT_EQ(mflow::util::fmt_pct(0.421), "42.1%");
  EXPECT_EQ(mflow::util::fmt_us(1500.0), "1.5 us");
}

namespace {
Cli make_cli(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> ptrs;
  ptrs.clear();
  ptrs.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) ptrs.push_back(s.data());
  return Cli(static_cast<int>(ptrs.size()), ptrs.data());
}
}  // namespace

TEST(Cli, ParsesKeyValue) {
  auto cli = make_cli({"--foo=42", "--bar=hello", "--flag", "pos1"});
  EXPECT_EQ(cli.get_int("foo", 0), 42);
  EXPECT_EQ(cli.get("bar", ""), "hello");
  EXPECT_TRUE(cli.get_bool("flag", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, Defaults) {
  auto cli = make_cli({});
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(cli.get_bool("missing", false));
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, BoolSpellings) {
  auto cli = make_cli({"--a=1", "--b=true", "--c=off", "--d=no"});
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_TRUE(cli.get_bool("b", false));
  EXPECT_FALSE(cli.get_bool("c", true));
  EXPECT_FALSE(cli.get_bool("d", true));
}

TEST(Cli, UnusedDetection) {
  auto cli = make_cli({"--used=1", "--typo=2"});
  cli.get_int("used", 0);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}
