// Socket layer: reader behaviour, message accounting modes, listeners.
#include <gtest/gtest.h>

#include "overlay/topology.hpp"
#include "stack/machine.hpp"
#include "steering/modes.hpp"

using namespace mflow;

namespace {

struct SockRig {
  sim::Simulator sim{1};
  stack::Machine machine;

  explicit SockRig(stack::SocketConfig sc, std::uint8_t proto)
      : machine(sim, make_params()) {
    overlay::PathSpec spec;
    spec.overlay = false;  // shortest path: focus on the socket layer
    spec.protocol = proto;
    machine.set_path(overlay::build_rx_path(machine.costs(), spec));
    machine.set_steering(steer::make_policy(exp::Mode::kVanilla));
    machine.add_socket(5000, sc);
    machine.start();
  }

  static stack::MachineParams make_params() {
    stack::MachineParams mp;
    mp.num_cores = 4;
    return mp;
  }

  void deliver_tcp(std::uint64_t off, std::uint32_t len,
                   std::uint64_t msg_id = 0, std::uint32_t msg_bytes = 0) {
    auto p = net::make_tcp_segment(
        net::FlowKey{net::Ipv4Addr(1, 1, 1, 2), net::Ipv4Addr(1, 1, 1, 3),
                     40000, 5000, net::Ipv4Header::kProtoTcp},
        off, len);
    p->flow_id = 1;
    p->message_id = msg_id;
    p->message_bytes = msg_bytes;
    machine.nic().deliver(std::move(p), sim.now());
  }
};

}  // namespace

TEST(Socket, TcpStreamFramingCountsMessages) {
  stack::SocketConfig sc;
  sc.protocol = net::Ipv4Header::kProtoTcp;
  sc.message_size = 1000;
  SockRig rig(sc, net::Ipv4Header::kProtoTcp);
  // 2500 bytes = 2 complete messages + 500 leftover.
  rig.deliver_tcp(0, 1448);
  rig.deliver_tcp(1448, 1052);
  rig.sim.run();
  const auto& st = rig.machine.socket(5000).stats();
  EXPECT_EQ(st.messages, 2u);
  EXPECT_EQ(st.payload_bytes, 2500u);
  // GRO may coalesce the two wire segments into one super-skb.
  EXPECT_GE(st.skbs, 1u);
  EXPECT_EQ(st.segments, 2u);
}

TEST(Socket, PerMessageAccountingVariableSizes) {
  stack::SocketConfig sc;
  sc.protocol = net::Ipv4Header::kProtoTcp;
  sc.per_message_accounting = true;
  SockRig rig(sc, net::Ipv4Header::kProtoTcp);
  // Message 1: 2000 bytes in two segments; message 2: 300 bytes.
  rig.deliver_tcp(0, 1448, 1, 2000);
  rig.deliver_tcp(1448, 552, 1, 2000);
  rig.deliver_tcp(2000, 300, 2, 300);
  rig.sim.run();
  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 2u);
}

TEST(Socket, MessageListenerFires) {
  stack::SocketConfig sc;
  sc.protocol = net::Ipv4Header::kProtoTcp;
  sc.per_message_accounting = true;
  SockRig rig(sc, net::Ipv4Header::kProtoTcp);
  std::vector<std::uint64_t> completed;
  sim::Time latency = -1;
  rig.machine.socket(5000).set_message_listener(
      [&](net::FlowId, std::uint64_t id, sim::Time lat) {
        completed.push_back(id);
        latency = lat;
      });
  rig.deliver_tcp(0, 700, 42, 700);
  rig.sim.run();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0], 42u);
  EXPECT_GT(latency, 0);
}

TEST(Socket, ReaderChargesCopyOnAppCore) {
  stack::SocketConfig sc;
  sc.protocol = net::Ipv4Header::kProtoTcp;
  sc.message_size = 1448;
  sc.app_core = 2;
  SockRig rig(sc, net::Ipv4Header::kProtoTcp);
  rig.deliver_tcp(0, 1448);
  rig.sim.run();
  EXPECT_GT(rig.machine.core(2).busy_ns(sim::Tag::kCopy), 0);
  EXPECT_EQ(rig.machine.core(0).busy_ns(sim::Tag::kCopy), 0);
}

TEST(Socket, LatencyMeasuredFromWireArrival) {
  stack::SocketConfig sc;
  sc.protocol = net::Ipv4Header::kProtoTcp;
  sc.message_size = 1448;
  SockRig rig(sc, net::Ipv4Header::kProtoTcp);
  rig.sim.at(1000, [&] { rig.deliver_tcp(0, 1448); });
  rig.sim.run();
  const auto& st = rig.machine.socket(5000).stats();
  ASSERT_EQ(st.latency.count(), 1u);
  // Latency excludes time before wire arrival but includes the path.
  EXPECT_GT(st.latency.max(), 0u);
  EXPECT_LT(st.latency.max(), 100000u);  // well under 100us unloaded
}

TEST(Socket, StatsResetClearsEverything) {
  stack::SocketConfig sc;
  sc.protocol = net::Ipv4Header::kProtoTcp;
  sc.message_size = 1448;
  SockRig rig(sc, net::Ipv4Header::kProtoTcp);
  rig.deliver_tcp(0, 1448);
  rig.sim.run();
  rig.machine.socket(5000).reset_stats();
  const auto& st = rig.machine.socket(5000).stats();
  EXPECT_EQ(st.messages, 0u);
  EXPECT_EQ(st.payload_bytes, 0u);
  EXPECT_EQ(st.latency.count(), 0u);
}
