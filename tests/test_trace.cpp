// src/trace: tracer buffers, sampling, registry, latency attribution
// (phases must partition end-to-end latency exactly), exporter schemas, the
// rt-engine absorb path, and the disabled-tracing overhead guard.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "experiment/scenario.hpp"
#include "rt/engine.hpp"
#include "stack/stage.hpp"
#include "trace/attribution.hpp"
#include "trace/export.hpp"
#include "trace/registry.hpp"

namespace mflow {
namespace {

// --- minimal JSON parser (validation only; no external deps) ---------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;
  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& string() const { return std::get<std::string>(v); }
  const JsonValue* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = object().find(key);
    return it == object().end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  std::string error() const {
    return "JSON parse error at byte " + std::to_string(pos_);
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        std::string str;
        if (!string(str)) return false;
        out.v = std::move(str);
        return true;
      }
      case 't': out.v = true; return literal("true");
      case 'f': out.v = false; return literal("false");
      case 'n': out.v = nullptr; return literal("null");
      default: return number(out);
    }
  }
  bool object(JsonValue& out) {
    JsonObject obj;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      out.v = std::move(obj);
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue val;
      if (!value(val)) return false;
      obj.emplace(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        out.v = std::move(obj);
        return true;
      }
      return false;
    }
  }
  bool array(JsonValue& out) {
    JsonArray arr;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      out.v = std::move(arr);
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue val;
      if (!value(val)) return false;
      arr.push_back(std::move(val));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        out.v = std::move(arr);
        return true;
      }
      return false;
    }
  }
  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      out.push_back(s_[pos_++]);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return false;
    try {
      out.v = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- tracer basics ----------------------------------------------------------

TEST(Tracer, RecordsAndSortsAcrossTracks) {
  trace::Tracer tr({.enabled = true});
  tr.packet(trace::EventKind::kStageEnter, 300, 2, 1, 0, 0);
  tr.packet(trace::EventKind::kWireArrival, 100, -1, 1, 0, 0);
  tr.packet(trace::EventKind::kRingDequeue, 200, 1, 1, 0, 0);
  const auto evs = tr.sorted_events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].kind, trace::EventKind::kWireArrival);
  EXPECT_EQ(evs[1].kind, trace::EventKind::kRingDequeue);
  EXPECT_EQ(evs[2].kind, trace::EventKind::kStageEnter);
  EXPECT_EQ(tr.recorded(), 3u);
}

TEST(Tracer, SamplePeriodSkipsPacketsButNotMarks) {
  trace::TraceConfig cfg;
  cfg.enabled = true;
  cfg.sample_period = 4;
  trace::Tracer tr(cfg);
  for (std::uint64_t seq = 0; seq < 8; ++seq)
    tr.packet(trace::EventKind::kWireArrival, 10 * seq, -1, 1, seq, 0);
  tr.mark(trace::EventKind::kIrqRaise, 5, 1, 0);
  const auto evs = tr.sorted_events();
  // seq 0 and 4 survive, plus the mark.
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_TRUE(tr.sampled(0));
  EXPECT_FALSE(tr.sampled(3));
  EXPECT_TRUE(tr.sampled(4));
}

TEST(Tracer, RingBufferOverwritesOldest) {
  trace::TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 8;
  trace::Tracer tr(cfg);
  for (std::uint64_t seq = 0; seq < 20; ++seq)
    tr.packet(trace::EventKind::kWireArrival, seq, -1, 1, seq, 0);
  const auto evs = tr.sorted_events();
  ASSERT_EQ(evs.size(), 8u);
  EXPECT_EQ(evs.front().seq, 12u);  // oldest retained
  EXPECT_EQ(evs.back().seq, 19u);
  EXPECT_EQ(tr.overwritten(), 12u);
}

TEST(Tracer, AbsorbMergesThreadBuffers) {
  trace::Tracer tr({.enabled = true});
  tr.packet(trace::EventKind::kWireArrival, 50, -1, 1, 0, 0);
  std::vector<trace::TraceEvent> buf(2);
  buf[0].ts = 10;
  buf[0].kind = trace::EventKind::kRingDequeue;
  buf[1].ts = 90;
  buf[1].kind = trace::EventKind::kCopyDone;
  tr.absorb(std::move(buf));
  const auto evs = tr.sorted_events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].kind, trace::EventKind::kRingDequeue);
  EXPECT_EQ(evs[1].kind, trace::EventKind::kWireArrival);
  EXPECT_EQ(evs[2].kind, trace::EventKind::kCopyDone);
}

TEST(Tracer, ActiveFollowsSetCurrent) {
  EXPECT_EQ(trace::current(), nullptr);
  trace::Tracer tr({.enabled = true});
  trace::set_current(&tr);
  if (trace::compiled_in()) {
    EXPECT_EQ(trace::active(), &tr);
  } else {
    EXPECT_EQ(trace::active(), nullptr);
  }
  trace::set_current(nullptr);
  EXPECT_EQ(trace::active(), nullptr);
}

TEST(Registry, CountersGaugesAndSnapshot) {
  trace::Registry reg;
  reg.add("a.count");
  reg.add("a.count", 4);
  reg.set_counter("b.total", 10);
  reg.set_gauge("c.rate", 2.5);
  EXPECT_EQ(reg.counter("a.count"), 5u);
  EXPECT_EQ(reg.counter("absent"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("c.rate"), 2.5);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("a.count"), 5u);
  EXPECT_EQ(snap.counter("b.total"), 10u);
  EXPECT_DOUBLE_EQ(snap.gauge("c.rate"), 2.5);
  reg.clear();
  EXPECT_EQ(reg.counter("a.count"), 0u);
  EXPECT_TRUE(reg.snapshot().empty());
}

// trace::stage_short_name duplicates stack::stage_name (trace sits below the
// stack layer); this pins the two tables together.
TEST(Attribution, StageShortNamesMatchStackStageNames) {
  for (int id = 0; id <= 9; ++id) {
    EXPECT_EQ(
        trace::stage_short_name(static_cast<std::uint64_t>(id)),
        stack::stage_name(static_cast<stack::StageId>(id)))
        << "stage id " << id;
  }
  EXPECT_EQ(trace::stage_short_name(0xFF), "rt");
}

TEST(Attribution, SyntheticJourneyPartitionsExactly) {
  trace::Tracer tr({.enabled = true});
  const std::uint64_t f = 7, s = 3;
  tr.packet(trace::EventKind::kWireArrival, 1000, -1, f, s, 0);
  tr.packet(trace::EventKind::kRingEnqueue, 1000, -1, f, s, 0);
  tr.packet(trace::EventKind::kRingDequeue, 1400, 1, f, s, 0);
  tr.packet(trace::EventKind::kSkbAlloc, 1650, 1, f, s, 0, 0, 250);
  tr.packet(trace::EventKind::kEnqueue, 1700, 1, f, s, 0, 1);
  tr.packet(trace::EventKind::kStageEnter, 1800, 1, f, s, 0, 1);
  tr.packet(trace::EventKind::kStageExit, 2100, 1, f, s, 0, 1, 300);
  tr.packet(trace::EventKind::kSocketEnqueue, 2200, 1, f, s, 0);
  tr.packet(trace::EventKind::kReaderPop, 2900, 0, f, s, 0);
  tr.packet(trace::EventKind::kCopyStart, 3000, 0, f, s, 0);
  tr.packet(trace::EventKind::kCopyDone, 3500, 0, f, s, 0, 0, 500);

  const auto journeys = trace::build_journeys(tr);
  ASSERT_EQ(journeys.size(), 1u);
  const auto& j = journeys[0];
  EXPECT_TRUE(j.complete);
  EXPECT_EQ(j.e2e, 2500);
  sim::Time total = 0;
  for (const auto& [name, ns] : j.phases) total += ns;
  EXPECT_EQ(total, j.e2e);  // exact partition, not approximate
  EXPECT_EQ(j.phase_ns("ring_wait"), 400);
  EXPECT_EQ(j.phase_ns("svc:driver"), 250);
  EXPECT_EQ(j.phase_ns("svc:gro"), 300);
  EXPECT_EQ(j.phase_ns("socket_wait"), 700);
  EXPECT_EQ(j.phase_ns("copy"), 500);
  EXPECT_EQ(j.phase_ns("other"), 0);
}

// --- full-scenario integration ---------------------------------------------

exp::ScenarioConfig traced_scenario(exp::Mode mode) {
  exp::ScenarioConfig cfg;
  cfg.mode = mode;
  cfg.warmup = sim::ms(2);
  cfg.measure = sim::ms(5);
  cfg.trace.enabled = true;
  return cfg;
}

TEST(ScenarioTrace, PhasesPartitionEndToEndForEveryPacket) {
  if (!trace::compiled_in()) GTEST_SKIP() << "tracing compiled out";
  const auto res = exp::run_scenario(traced_scenario(exp::Mode::kVanilla));
  ASSERT_NE(res.tracer, nullptr);
  const auto journeys = trace::build_journeys(*res.tracer);
  std::uint64_t complete = 0;
  for (const auto& j : journeys) {
    if (!j.complete) continue;
    ++complete;
    sim::Time total = 0;
    for (const auto& [name, ns] : j.phases) total += ns;
    // Acceptance bound is 1%; the gap partition makes it exact.
    ASSERT_EQ(total, j.e2e)
        << "flow " << j.key.flow << " seq " << j.key.seq;
    EXPECT_GT(j.e2e, 0);
  }
  EXPECT_GT(complete, 100u);
  EXPECT_FALSE(res.phases.empty());
  EXPECT_GT(res.phases.end_to_end.count(), 0u);
  EXPECT_GT(res.stats.counter("nic.wire_packets"), 0u);
  EXPECT_GT(res.stats.counter("socket.delivered_skbs"), 0u);
  EXPECT_GT(res.stats.gauge("goodput_gbps"), 0.0);
}

TEST(ScenarioTrace, MflowRunHasSplitAndMergeEvents) {
  if (!trace::compiled_in()) GTEST_SKIP() << "tracing compiled out";
  const auto res = exp::run_scenario(traced_scenario(exp::Mode::kMflow));
  ASSERT_NE(res.tracer, nullptr);
  EXPECT_GT(res.stats.counter("split.dispatched"), 0u);
  std::set<trace::EventKind> kinds;
  for (const auto& ev : res.tracer->sorted_events()) kinds.insert(ev.kind);
  EXPECT_TRUE(kinds.count(trace::EventKind::kSplitDecision));
  EXPECT_TRUE(kinds.count(trace::EventKind::kSplitDeposit));
  EXPECT_TRUE(kinds.count(trace::EventKind::kReasmHold));
  EXPECT_TRUE(kinds.count(trace::EventKind::kReasmRelease));
  EXPECT_TRUE(kinds.count(trace::EventKind::kIrqRaise));
  // split_queue residency shows up as a named phase.
  bool has_split_queue = false;
  for (const auto& name : res.phases.phase_order)
    if (name == "split_queue") has_split_queue = true;
  EXPECT_TRUE(has_split_queue);
}

// The overhead guard: identical fig08-style runs with tracing enabled vs
// disabled must agree on goodput within 2% (acceptance bound; the DES is
// deterministic in virtual time, so they in fact agree exactly).
TEST(ScenarioTrace, OverheadGuardDisabledTracingChangesNothing) {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.warmup = sim::ms(2);
  cfg.measure = sim::ms(5);
  cfg.trace.enabled = false;
  const auto off = exp::run_scenario(cfg);
  cfg.trace.enabled = true;
  const auto on = exp::run_scenario(cfg);
  ASSERT_GT(off.goodput_gbps, 0.0);
  const double delta =
      std::abs(on.goodput_gbps - off.goodput_gbps) / off.goodput_gbps;
  EXPECT_LE(delta, 0.02);
  EXPECT_EQ(off.messages, on.messages);  // virtual time is unperturbed
}

// --- exporters --------------------------------------------------------------

TEST(Export, ChromeJsonIsValidAndWellFormed) {
  if (!trace::compiled_in()) GTEST_SKIP() << "tracing compiled out";
  auto cfg = traced_scenario(exp::Mode::kMflow);
  cfg.trace.sample_period = 8;  // keep the document parseable in-test
  const auto res = exp::run_scenario(cfg);
  ASSERT_NE(res.tracer, nullptr);
  std::ostringstream os;
  trace::export_chrome_json(*res.tracer, os);
  const std::string text = os.str();

  JsonParser parser(text);
  JsonValue doc;
  ASSERT_TRUE(parser.parse(doc)) << parser.error();
  ASSERT_TRUE(doc.is_object());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array().empty());

  std::set<std::string> phases_seen;
  std::size_t flow_starts = 0, flow_finishes = 0, spans = 0;
  for (const JsonValue& ev : events->array()) {
    ASSERT_TRUE(ev.is_object());
    const JsonValue* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    const std::string& phase = ph->string();
    phases_seen.insert(phase);
    ASSERT_NE(ev.find("pid"), nullptr);
    ASSERT_NE(ev.find("tid"), nullptr);
    if (phase == "M") {
      ASSERT_NE(ev.find("name"), nullptr);
      continue;
    }
    const JsonValue* ts = ev.find("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->is_number());
    ASSERT_GE(ts->number(), 0.0);
    if (phase == "X") {
      ++spans;
      const JsonValue* dur = ev.find("dur");
      ASSERT_NE(dur, nullptr);
      ASSERT_TRUE(dur->is_number());
      ASSERT_GT(dur->number(), 0.0);
    } else if (phase == "s" || phase == "t" || phase == "f") {
      ASSERT_NE(ev.find("id"), nullptr);
      if (phase == "s") ++flow_starts;
      if (phase == "f") ++flow_finishes;
    } else {
      ASSERT_EQ(phase, "i") << "unexpected event phase " << phase;
    }
  }
  EXPECT_TRUE(phases_seen.count("M"));  // core-track metadata present
  EXPECT_GT(spans, 0u);                 // stage service spans present
  EXPECT_GT(flow_starts, 0u);           // packet flow arrows present
  EXPECT_GT(flow_finishes, 0u);
}

TEST(Export, CsvHasHeaderAndOneRowPerEvent) {
  trace::Tracer tr({.enabled = true});
  tr.packet(trace::EventKind::kWireArrival, 100, -1, 1, 0, 0);
  tr.packet(trace::EventKind::kCopyDone, 300, 0, 1, 0, 0, 0, 50);
  std::ostringstream os;
  trace::export_csv(tr, os);
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "ts_ns,core,kind,flow,seq,microflow,aux,dur_ns");
  std::size_t rows = 0;
  while (std::getline(is, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, 2u);
}

// --- rt engine (real threads) ----------------------------------------------

TEST(RtTrace, EngineAbsorbsThreadLocalBuffers) {
  if (!trace::compiled_in()) GTEST_SKIP() << "tracing compiled out";
  trace::Tracer tr({.enabled = true});
  trace::set_current(&tr);
  rt::EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 64;
  cfg.cost_ns_per_packet = 0;
  rt::Engine engine(cfg);
  const auto res = engine.run(2000);
  trace::set_current(nullptr);
  EXPECT_TRUE(res.in_order);
  const auto evs = tr.sorted_events();
  ASSERT_FALSE(evs.empty());
  std::uint64_t deposits = 0, releases = 0, rt_spans = 0;
  for (const auto& ev : evs) {
    if (ev.kind == trace::EventKind::kSplitDeposit) ++deposits;
    if (ev.kind == trace::EventKind::kReasmRelease) ++releases;
    if (ev.kind == trace::EventKind::kStageExit) {
      EXPECT_EQ(ev.aux, 0xFFu);
      ++rt_spans;
    }
  }
  EXPECT_EQ(deposits, 2000u);
  EXPECT_EQ(releases, res.packets);
  EXPECT_EQ(rt_spans, 2000u);
}

}  // namespace
}  // namespace mflow

// remove_counter/remove_gauge exist for flow expiry: the monitor retracts
// a dead flow's rate gauges so the stat surface stays bounded under churn.
TEST(Registry, RemoveRetractsStats) {
  mflow::trace::Registry reg;
  reg.add("a.count");
  reg.set_gauge("b.rate", 1.0);
  reg.set_gauge("c.rate", 2.0);
  EXPECT_EQ(reg.num_counters(), 1u);
  EXPECT_EQ(reg.num_gauges(), 2u);
  EXPECT_TRUE(reg.remove_gauge("b.rate"));
  EXPECT_FALSE(reg.remove_gauge("b.rate"));
  EXPECT_EQ(reg.num_gauges(), 1u);
  EXPECT_TRUE(reg.remove_counter("a.count"));
  EXPECT_FALSE(reg.remove_counter("absent"));
  EXPECT_EQ(reg.num_counters(), 0u);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauge("c.rate"), 2.0);
  EXPECT_EQ(snap.counter("a.count"), 0u);
}
