#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

using mflow::util::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedResets) {
  Rng a(42);
  const auto x = a.next();
  a.next();
  a.reseed(42);
  EXPECT_EQ(a.next(), x);
}

TEST(Rng, UniformRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 17ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(r.uniform(bound), bound);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(11);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= v == -3;
    hi_seen |= v == 3;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.exponential(5.0), 0.0);
}

TEST(Rng, ParetoBounds) {
  Rng r(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.pareto(2.0, 1.5, 100.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Rng, ForkIndependent) {
  Rng a(31);
  Rng child = a.fork();
  // The fork advanced the parent; the two streams should differ.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == child.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ChanceExtremes) {
  Rng r(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}
