// Machine + stage pipeline integration: packets traverse a real overlay path
// end to end, stages transform real bytes, accounting lands on the right
// cores, steering places stages.
#include <gtest/gtest.h>

#include "overlay/topology.hpp"
#include "stack/machine.hpp"
#include "steering/modes.hpp"

using namespace mflow;

namespace {

struct Rig {
  sim::Simulator sim{1};
  stack::Machine machine;

  explicit Rig(std::uint8_t proto = net::Ipv4Header::kProtoUdp,
               bool overlay = true, int queues = 1)
      : machine(sim, make_params(queues)) {
    overlay::PathSpec spec;
    spec.overlay = overlay;
    spec.protocol = proto;
    machine.set_path(overlay::build_rx_path(machine.costs(), spec));
    machine.set_steering(steer::make_policy(exp::Mode::kVanilla));
    stack::SocketConfig sc;
    sc.protocol = proto;
    sc.app_core = 0;
    sc.message_size = 1000;
    machine.add_socket(5000, sc);
    machine.start();
  }

  static stack::MachineParams make_params(int queues) {
    stack::MachineParams mp;
    mp.num_cores = 8;
    mp.nic.num_queues = queues;
    return mp;
  }

  void deliver_udp(std::uint32_t len, std::uint64_t msg_id, bool encap) {
    auto p = net::make_udp_datagram(
        net::FlowKey{net::Ipv4Addr(10, 0, 1, 2), net::Ipv4Addr(10, 0, 1, 3),
                     41000, 5000, net::Ipv4Header::kProtoUdp},
        len);
    p->flow_id = 1;
    p->message_id = msg_id;
    p->message_bytes = len;
    if (encap)
      net::vxlan_encap(*p, net::Ipv4Addr(192, 168, 1, 2),
                       net::Ipv4Addr(192, 168, 1, 3), 42);
    machine.nic().deliver(std::move(p), sim.now());
  }
};

}  // namespace

TEST(Machine, UdpPacketTraversesOverlayToApp) {
  Rig rig;
  rig.deliver_udp(1000, 0, /*encap=*/true);
  rig.sim.run();
  const auto& st = rig.machine.socket(5000).stats();
  EXPECT_EQ(st.messages, 1u);
  EXPECT_EQ(st.payload_bytes, 1000u);
  EXPECT_EQ(st.latency.count(), 1u);
}

TEST(Machine, NonEncapsulatedPacketDroppedByVxlan) {
  Rig rig;  // overlay path expects encapsulated traffic
  rig.deliver_udp(1000, 0, /*encap=*/false);
  rig.sim.run();
  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 0u);
}

TEST(Machine, NativePathSkipsOverlayStages) {
  Rig rig(net::Ipv4Header::kProtoUdp, /*overlay=*/false);
  EXPECT_FALSE(rig.machine.has_stage(stack::StageId::kVxlan));
  EXPECT_FALSE(rig.machine.has_stage(stack::StageId::kBridge));
  rig.deliver_udp(1000, 0, /*encap=*/false);
  rig.sim.run();
  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 1u);
}

TEST(Machine, VanillaAccountingLandsOnIrqCore) {
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.deliver_udp(1000, static_cast<std::uint64_t>(i), true);
  rig.sim.run();
  auto& irq_core = rig.machine.core(1);
  EXPECT_GT(irq_core.busy_ns(sim::Tag::kVxlan), 0);
  EXPECT_GT(irq_core.busy_ns(sim::Tag::kDriver), 0);
  EXPECT_GT(irq_core.busy_ns(sim::Tag::kUdpRx), 0);
  // App core only copies.
  auto& app = rig.machine.core(0);
  EXPECT_GT(app.busy_ns(sim::Tag::kCopy), 0);
  EXPECT_EQ(app.busy_ns(sim::Tag::kVxlan), 0);
  // Helper cores untouched under vanilla steering.
  EXPECT_EQ(rig.machine.core(2).total_busy_ns(), 0);
}

TEST(Machine, StageIndexLookup) {
  Rig rig;
  EXPECT_EQ(rig.machine.stage_at(rig.machine.stage_index(
                stack::StageId::kVxlan)).id(),
            stack::StageId::kVxlan);
  EXPECT_THROW(rig.machine.stage_index(stack::StageId::kTcp),
               std::out_of_range);
}

TEST(Machine, DuplicateSocketPortRejected) {
  Rig rig;
  EXPECT_THROW(rig.machine.add_socket(5000, {}), std::invalid_argument);
  EXPECT_THROW(rig.machine.socket(9999), std::out_of_range);
}

TEST(Machine, UnknownPortPacketDropped) {
  Rig rig;
  auto p = net::make_udp_datagram(
      net::FlowKey{net::Ipv4Addr(10, 0, 1, 2), net::Ipv4Addr(10, 0, 1, 3),
                   41000, 6666, net::Ipv4Header::kProtoUdp},
      100);
  net::vxlan_encap(*p, net::Ipv4Addr(192, 168, 1, 2),
                   net::Ipv4Addr(192, 168, 1, 3), 42);
  rig.machine.nic().deliver(std::move(p), 0);
  rig.sim.run();  // must not crash; the packet just vanishes
  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 0u);
}

TEST(Machine, ResetMeasurementZeroes) {
  Rig rig;
  rig.deliver_udp(1000, 0, true);
  rig.sim.run();
  rig.machine.reset_measurement();
  EXPECT_EQ(rig.machine.core(1).total_busy_ns(), 0);
  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 0u);
}

TEST(Machine, FragmentedUdpMessageCompletesOnce) {
  Rig rig;
  // 3000-byte datagram as three fragments of one message.
  for (int i = 0; i < 3; ++i) {
    auto p = net::make_udp_datagram(
        net::FlowKey{net::Ipv4Addr(10, 0, 1, 2), net::Ipv4Addr(10, 0, 1, 3),
                     41000, 5000, net::Ipv4Header::kProtoUdp},
        1000);
    p->flow_id = 1;
    p->message_id = 7;
    p->message_bytes = 3000;
    net::vxlan_encap(*p, net::Ipv4Addr(192, 168, 1, 2),
                     net::Ipv4Addr(192, 168, 1, 3), 42);
    rig.machine.nic().deliver(std::move(p), rig.sim.now());
  }
  rig.sim.run();
  const auto& st = rig.machine.socket(5000).stats();
  EXPECT_EQ(st.messages, 1u);
  EXPECT_EQ(st.payload_bytes, 3000u);
}

TEST(Machine, RpsSteeringMovesInnerStages) {
  sim::Simulator sim(1);
  stack::MachineParams mp;
  mp.num_cores = 8;
  stack::Machine m(sim, mp);
  overlay::PathSpec spec;
  spec.protocol = net::Ipv4Header::kProtoUdp;
  m.set_path(overlay::build_rx_path(m.costs(), spec));
  steer::PolicyParams rps;
  rps.helper_cores = {3};
  rps.rps_hash_cost = m.costs().rps_hash_per_pkt;
  m.set_steering(steer::make_policy(exp::Mode::kRps, rps));
  stack::SocketConfig sc;
  sc.protocol = net::Ipv4Header::kProtoUdp;
  m.add_socket(5000, sc);
  m.start();

  auto p = net::make_udp_datagram(
      net::FlowKey{net::Ipv4Addr(10, 0, 1, 2), net::Ipv4Addr(10, 0, 1, 3),
                   41000, 5000, net::Ipv4Header::kProtoUdp},
      800);
  p->flow_id = 1;
  p->message_bytes = 800;
  net::vxlan_encap(*p, net::Ipv4Addr(192, 168, 1, 2),
                   net::Ipv4Addr(192, 168, 1, 3), 42);
  m.nic().deliver(std::move(p), 0);
  sim.run();
  // VXLAN stayed on the IRQ core; inner IP+UDP ran on core 3.
  EXPECT_GT(m.core(1).busy_ns(sim::Tag::kVxlan), 0);
  EXPECT_EQ(m.core(3).busy_ns(sim::Tag::kVxlan), 0);
  EXPECT_GT(m.core(3).busy_ns(sim::Tag::kUdpRx), 0);
  EXPECT_EQ(m.socket(5000).stats().messages, 1u);
}
