// Stateful-NF layer tests (src/nf): unit checks of the replicated pure
// computations (Maglev, NAT port/rewrite, firewall conntrack) and the
// property SCR rests on — merging per-core state replicas yields EXACTLY
// the state a single shared-lock oracle would hold, for any partition of
// the packet stream across cores, any per-core reordering, any lost
// subset, and a live rescale (repartition mid-stream). Plus end-to-end
// digest-equality runs through both engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "experiment/scenario.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "nf/nf.hpp"
#include "rt/engine.hpp"
#include "util/rng.hpp"

using namespace mflow;

namespace {

net::FlowKey key_of(int i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 1, static_cast<std::uint8_t>(i)),
                      net::Ipv4Addr(10, 0, 2, 1),
                      static_cast<std::uint16_t>(40000 + i), 5000,
                      net::Ipv4Header::kProtoTcp};
}

}  // namespace

// --- Maglev ----------------------------------------------------------------

TEST(NfMaglev, DeterministicAndCoversEveryBackend) {
  const auto a = nf::MaglevTable::build(8, 251, 0xfeed);
  const auto b = nf::MaglevTable::build(8, 251, 0xfeed);
  ASSERT_EQ(a.size(), 251u);
  std::size_t total = 0, lo = 251, hi = 0;
  for (std::uint32_t be = 0; be < 8; ++be) {
    const std::size_t n = a.slots_of(be);
    EXPECT_GT(n, 0u) << "backend " << be << " owns no slots";
    total += n;
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_EQ(total, a.size());
  // Maglev's whole point: near-even slot ownership.
  EXPECT_LE(hi, 2 * lo);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(a.backend_for(key_of(i)), b.backend_for(key_of(i)));
}

TEST(NfMaglev, SeedChangesTheMapping) {
  const auto a = nf::MaglevTable::build(8, 251, 1);
  const auto b = nf::MaglevTable::build(8, 251, 2);
  int diff = 0;
  for (int i = 0; i < 64; ++i)
    diff += a.backend_for(key_of(i)) != b.backend_for(key_of(i));
  EXPECT_GT(diff, 0);
}

// --- dynamic NAT ------------------------------------------------------------

TEST(NfNat, PortDeterministicAndInRange) {
  nf::ChainConfig cfg;
  cfg.nat_port_base = 2048;
  cfg.nat_port_span = 1000;
  for (int i = 0; i < 256; ++i) {
    const auto p = nf::nat_port_for(cfg, key_of(i));
    EXPECT_GE(p, cfg.nat_port_base);
    EXPECT_LT(p, cfg.nat_port_base + cfg.nat_port_span);
    EXPECT_EQ(p, nf::nat_port_for(cfg, key_of(i)));  // pure in the key
  }
}

TEST(NfNat, RewritesRealHeaderBytes) {
  nf::ChainConfig cfg;
  auto pkt = net::make_udp_datagram(key_of(3), 1200);
  ASSERT_TRUE(nf::nat_rewrite(cfg, *pkt, 7777));
  const auto bytes = pkt->buf.data();
  const auto ip =
      net::Ipv4Header::decode(bytes.subspan(net::EthernetHeader::kSize));
  EXPECT_EQ(ip.src, cfg.nat_external);
  EXPECT_EQ(ip.dst, key_of(3).dst);  // destination untouched
  EXPECT_TRUE(net::Ipv4Header::verify(
      bytes.subspan(net::EthernetHeader::kSize)));  // checksum recomputed
  const auto udp = net::UdpHeader::decode(bytes.subspan(
      net::EthernetHeader::kSize + net::Ipv4Header::kSize));
  EXPECT_EQ(udp.src_port, 7777);
  EXPECT_EQ(udp.dst_port, key_of(3).dst_port);
  // Flow METADATA stays: downstream delivery keys on it.
  EXPECT_EQ(pkt->flow, key_of(3));

  auto tcp = net::make_tcp_segment(key_of(4), 0, 1000);
  ASSERT_TRUE(nf::nat_rewrite(cfg, *tcp, 4242));
  const auto th = net::TcpHeader::decode(tcp->buf.data().subspan(
      net::EthernetHeader::kSize + net::Ipv4Header::kSize));
  EXPECT_EQ(th.src_port, 4242);

  auto empty = net::make_packet();  // no parseable headers
  EXPECT_FALSE(nf::nat_rewrite(cfg, *empty, 1));
}

// --- firewall conntrack ------------------------------------------------------

TEST(NfFirewall, PhaseDerivedMonotonicallyFromFlags) {
  nf::ChainConfig cfg;
  cfg.chain = {nf::Kind::kFirewall};
  nf::FlowState st;
  nf::PacketView v;
  v.flow = key_of(1);
  v.wire_bytes = 60;

  EXPECT_EQ(st.fw.phase(), nf::FwPhase::kNew);
  v.tcp_flags = nf::kTcpFlagSyn;
  nf::apply(cfg, nullptr, nf::Kind::kFirewall, v, st);
  EXPECT_EQ(st.fw.phase(), nf::FwPhase::kSynSent);
  v.tcp_flags = nf::kTcpFlagSyn | nf::kTcpFlagAck;
  nf::apply(cfg, nullptr, nf::Kind::kFirewall, v, st);
  EXPECT_EQ(st.fw.phase(), nf::FwPhase::kEstablished);
  v.tcp_flags = nf::kTcpFlagAck;  // data
  nf::apply(cfg, nullptr, nf::Kind::kFirewall, v, st);
  EXPECT_EQ(st.fw.phase(), nf::FwPhase::kEstablished);
  v.tcp_flags = nf::kTcpFlagFin | nf::kTcpFlagAck;
  nf::apply(cfg, nullptr, nf::Kind::kFirewall, v, st);
  EXPECT_EQ(st.fw.phase(), nf::FwPhase::kClosing);
  EXPECT_EQ(st.fw.segs, 4u);

  // Unsolicited bare data only: never leaves kNew.
  nf::FlowState cold;
  v.tcp_flags = nf::kTcpFlagAck;
  nf::apply(cfg, nullptr, nf::Kind::kFirewall, v, cold);
  EXPECT_EQ(cold.fw.phase(), nf::FwPhase::kNew);
}

TEST(NfFirewall, ViewDecodesRealTcpFlagBytes) {
  auto pkt = net::make_tcp_segment(key_of(2), 0, 0);
  // Wire TCP flags byte: offset 13 into the TCP header (FIN=0x01, SYN=0x02,
  // ACK=0x10). Patch the real bytes and check view_of decodes them.
  auto bytes = pkt->buf.data();
  std::uint8_t* flags =
      &bytes[net::EthernetHeader::kSize + net::Ipv4Header::kSize + 13];
  *flags = 0x02;  // SYN
  EXPECT_EQ(nf::view_of(*pkt).tcp_flags, nf::kTcpFlagSyn);
  *flags = 0x12;  // SYN|ACK
  EXPECT_EQ(nf::view_of(*pkt).tcp_flags, nf::kTcpFlagSyn | nf::kTcpFlagAck);
  *flags = 0x11;  // FIN|ACK
  EXPECT_EQ(nf::view_of(*pkt).tcp_flags, nf::kTcpFlagFin | nf::kTcpFlagAck);
  EXPECT_EQ(nf::view_of(*pkt).flow, key_of(2));
}

// --- the SCR exactness property ---------------------------------------------
//
// For a random packet stream: process it (a) in order through ONE state
// table (the shared-lock oracle) and (b) split across K per-core replica
// tables under a random partition, each replica's share randomly reordered,
// with a repartition ("live rescale") half-way — then merge the replicas.
// The merged state must be bit-identical to the oracle, per flow, and the
// fold digests must agree. Loss: a random subset of packets is dropped from
// BOTH sides (a lost packet is lost before the NF everywhere).
TEST(NfScr, MergeEqualsSharedLockOracleUnderSplitReorderLossRescale) {
  nf::ChainConfig cfg;
  cfg.chain = {nf::Kind::kNat, nf::Kind::kFirewall, nf::Kind::kLoadBalancer};
  const auto maglev =
      nf::MaglevTable::build(cfg.lb_backends, cfg.lb_table_size, cfg.lb_seed);
  constexpr int kFlows = 6;
  constexpr int kPackets = 400;

  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    util::Rng rng(seed);

    // Generate the stream: (flow id, view) with plausible TCP flag order
    // not required — the lattice is order-insensitive by design, and the
    // oracle defines whatever "correct" is.
    struct Synth {
      net::FlowId fid;
      nf::PacketView view;
    };
    std::vector<Synth> stream;
    stream.reserve(kPackets);
    for (int i = 0; i < kPackets; ++i) {
      if (rng.chance(0.1)) continue;  // loss: dropped before any NF
      const auto fid = static_cast<net::FlowId>(rng.uniform(kFlows));
      nf::PacketView v;
      v.flow = key_of(static_cast<int>(fid));
      v.wire_bytes = 54 + static_cast<std::uint32_t>(rng.uniform(1446));
      v.segs = 1 + static_cast<std::uint32_t>(rng.uniform(4));  // GRO skb
      const std::uint8_t flag_sets[] = {
          nf::kTcpFlagSyn, nf::kTcpFlagSyn | nf::kTcpFlagAck,
          nf::kTcpFlagAck, nf::kTcpFlagFin | nf::kTcpFlagAck, 0};
      v.tcp_flags = flag_sets[rng.uniform(5)];
      stream.push_back({fid, v});
    }

    const auto run_chain = [&](const Synth& s, nf::FlowState& st) {
      for (const auto kind : cfg.chain)
        nf::apply(cfg, &maglev, kind, s.view, st);
    };

    // (a) shared-lock oracle: one table, in arrival order.
    std::map<net::FlowId, nf::FlowState> oracle;
    for (const auto& s : stream) run_chain(s, oracle[s.fid]);

    // (b) SCR replicas under two partition regimes (live rescale half-way:
    // the split degree AND the packet->core mapping both change).
    const std::size_t k1 = 1 + rng.uniform(4);
    const std::size_t k2 = 1 + rng.uniform(4);
    const std::size_t cores = std::max(k1, k2);
    std::vector<std::vector<Synth>> shares(cores);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const std::size_t k = i < stream.size() / 2 ? k1 : k2;
      shares[rng.uniform(k)].push_back(stream[i]);
    }
    std::vector<std::map<net::FlowId, nf::FlowState>> replicas(cores);
    for (std::size_t c = 0; c < cores; ++c) {
      std::shuffle(shares[c].begin(), shares[c].end(), rng);  // reorder
      for (const auto& s : shares[c]) run_chain(s, replicas[c][s.fid]);
    }
    std::map<net::FlowId, nf::FlowState> merged;
    for (const auto& rep : replicas)
      for (const auto& [fid, st] : rep) nf::merge(merged[fid], st);

    ASSERT_EQ(merged.size(), oracle.size()) << "seed " << seed;
    for (const auto& [fid, st] : oracle)
      EXPECT_EQ(merged.at(fid), st) << "seed " << seed << " flow " << fid;
    std::uint64_t ho = 0, hm = 0;
    for (const auto& [fid, st] : oracle) ho = nf::fold_digest(ho, fid, st);
    for (const auto& [fid, st] : merged) hm = nf::fold_digest(hm, fid, st);
    EXPECT_EQ(ho, hm) << "seed " << seed;
  }
}

// --- DES engine: strategies agree end-to-end --------------------------------
//
// Paced lossless TCP through the full simulated stack with MFLOW splitting
// on; the senders quiesce half-way through the window so the in-flight tail
// drains. All three strategies then process the identical delivered
// multiset and must report the identical merged-state digest.
TEST(NfScenario, StateDigestEqualAcrossStrategiesUnderSplit) {
  std::vector<std::uint64_t> digests;
  std::uint64_t packets = 0;
  for (const auto strat :
       {nf::Strategy::kSharedLock, nf::Strategy::kFlowAffinity,
        nf::Strategy::kScr}) {
    exp::ScenarioConfig cfg;
    cfg.mode = exp::Mode::kMflow;
    cfg.protocol = net::Ipv4Header::kProtoTcp;
    cfg.num_flows = 2;
    cfg.message_size = 65536;
    cfg.measure = sim::ms(10);
    cfg.pace_per_message = sim::ms(1);
    for (int f = 0; f < cfg.num_flows; ++f)
      cfg.rate_changes.push_back(
          {f, cfg.warmup + cfg.measure / 2, sim::seconds(10)});
    cfg.nf.enabled = true;
    cfg.nf.strategy = strat;
    cfg.nf.chain.chain = {nf::Kind::kNat, nf::Kind::kFirewall,
                          nf::Kind::kLoadBalancer};
    const auto res = exp::run_scenario(cfg);
    EXPECT_GT(res.nf_packets, 0u);
    EXPECT_EQ(res.nf_flows_live, static_cast<std::uint64_t>(cfg.num_flows));
    digests.push_back(res.nf_state_digest);
    packets = res.nf_packets;
  }
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]) << "scr diverged from shared-lock oracle"
                                    << " after " << packets << " packets";
}

// TTL sweep: once the senders stop, entries idle past the TTL and the
// periodic sweep retires them (counted, and retracted from the live table).
TEST(NfScenario, IdleFlowStateExpiresUnderTtlSweep) {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.num_flows = 2;
  cfg.message_size = 65536;
  cfg.measure = sim::ms(10);
  cfg.pace_per_message = sim::ms(1);
  for (int f = 0; f < cfg.num_flows; ++f)
    cfg.rate_changes.push_back(
        {f, cfg.warmup + cfg.measure / 2, sim::seconds(10)});
  cfg.nf.enabled = true;
  cfg.nf.strategy = nf::Strategy::kScr;
  cfg.nf.chain.chain = {nf::Kind::kFirewall};
  cfg.nf.state_ttl = sim::ms(1);
  cfg.nf.sweep_interval = sim::ms(1);
  const auto res = exp::run_scenario(cfg);
  EXPECT_GT(res.nf_flows_expired, 0u);
  EXPECT_LT(res.nf_flows_live, res.nf_flows_peak);
}

// --- rt engine: real threads ------------------------------------------------
//
// Lossless config (no push-drop, no faults): every generated packet is
// delivered, so the merged state must account for exactly the delivered
// stream — and identically across all three strategies.
TEST(NfRtEngine, ConservationAndDigestEqualAcrossStrategies) {
  constexpr std::uint64_t kTotal = 4000;
  std::vector<std::uint64_t> digests;
  for (const auto strat :
       {nf::Strategy::kSharedLock, nf::Strategy::kFlowAffinity,
        nf::Strategy::kScr}) {
    rt::EngineConfig rc;
    rc.workers = 2;
    rc.batch_size = 64;
    rc.cost_ns_per_packet = 0;
    rc.max_push_spins = 0;  // lossless backpressure
    rc.overlay.enabled = true;
    rc.overlay.flows = 4;
    rc.nf.enabled = true;
    rc.nf.strategy = strat;
    rc.nf.chain.chain = {nf::Kind::kNat, nf::Kind::kFirewall,
                         nf::Kind::kLoadBalancer};
    const auto res = rt::Engine(rc).run(kTotal);
    EXPECT_EQ(res.packets, kTotal);
    EXPECT_EQ(res.nf_packets, kTotal);
    EXPECT_EQ(res.nf_nat_rewrites, kTotal);  // overlay: real bytes rewritten
    EXPECT_EQ(res.nf_nat_rewrite_failures, 0u);
    std::uint64_t segs = 0;
    for (const auto& [fid, st] : res.nf_state) segs += st.fw.segs;
    EXPECT_EQ(segs, kTotal) << "state lost or double-counted packets";
    digests.push_back(res.nf_state_digest);
  }
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

// With faults on, the NF sees SURVIVORS only: the state seg count must equal
// delivered packets, not generated ones.
TEST(NfRtEngine, StateCountsSurvivorsOnlyUnderLoss) {
  rt::EngineConfig rc;
  rc.workers = 2;
  rc.batch_size = 64;
  rc.cost_ns_per_packet = 0;
  rc.max_push_spins = 0;
  rc.fault_drop_rate = 0.05;
  rc.fault_seed = 7;
  rc.nf.enabled = true;
  rc.nf.strategy = nf::Strategy::kScr;
  rc.nf.chain.chain = {nf::Kind::kFirewall};
  const auto res = rt::Engine(rc).run(8000);
  EXPECT_LT(res.packets, 8000u);  // some were dropped
  std::uint64_t segs = 0;
  for (const auto& [fid, st] : res.nf_state) segs += st.fw.segs;
  EXPECT_EQ(segs, res.packets);
  EXPECT_EQ(res.nf_packets, res.packets);
}
