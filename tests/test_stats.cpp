#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

using mflow::util::RunningStats;

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  mflow::util::Rng rng(3);
  RunningStats a, b, all;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01() * 100.0;
    all.add(x);
    (i % 3 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(RunningStats, NumericallyStableLargeOffset) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(StatsHelpers, SpanMeanStddev) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mflow::util::mean(xs), 2.5);
  EXPECT_NEAR(mflow::util::stddev(xs), 1.1180339887, 1e-9);
}

TEST(StatsHelpers, PercentileInterpolatesBetweenRanks) {
  std::vector<double> xs{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  // Median of an even-sized sample sits between the middle elements; the
  // old nearest-rank ceil() reported 50 here, skewing small-sample p50.
  EXPECT_DOUBLE_EQ(mflow::util::percentile(xs, 0.5), 55.0);
  EXPECT_DOUBLE_EQ(mflow::util::percentile(xs, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(mflow::util::percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(mflow::util::percentile({}, 0.5), 0.0);
}

TEST(StatsHelpers, PercentileExactValues) {
  std::vector<double> odd{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mflow::util::percentile(odd, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(mflow::util::percentile(odd, 0.25), 2.0);
  // q between ranks interpolates linearly: pos = 0.9 * 4 = 3.6.
  EXPECT_DOUBLE_EQ(mflow::util::percentile(odd, 0.9), 4.6);
  std::vector<double> pair{10, 20};
  EXPECT_DOUBLE_EQ(mflow::util::percentile(pair, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(mflow::util::percentile(pair, 0.75), 17.5);
}

TEST(StatsHelpers, PercentileSingleElementAndClamping) {
  std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(mflow::util::percentile(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(mflow::util::percentile(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(mflow::util::percentile(one, 1.0), 42.0);
  // Out-of-range q clamps instead of indexing out of bounds.
  std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(mflow::util::percentile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(mflow::util::percentile(xs, 1.5), 3.0);
}

TEST(StatsHelpers, PercentileUnsortedInput) {
  std::vector<double> xs{90, 10, 50, 30, 70};
  EXPECT_DOUBLE_EQ(mflow::util::percentile(xs, 0.5), 50.0);
}
